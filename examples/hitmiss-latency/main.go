// hitmiss-latency: evaluate hit-miss predictors both statistically (as the
// paper's Figure 10) and end-to-end in the machine (Figure 11), on a
// memory-intensive workload, including the timing enhancement that catches
// dynamic misses through the outstanding-miss queue.
//
//	go run ./examples/hitmiss-latency
package main

import (
	"fmt"
	"os"

	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

const (
	uops   = 150_000
	warmup = 30_000
)

func main() {
	p, _ := trace.TraceByName(trace.GroupSpecFP95, "swim")

	// Part 1: statistical accuracy, trace order, no scheduling effects.
	fmt.Println("Part 1 — statistical accuracy on SpecFP95/swim")
	preds := map[string]hitmiss.Predictor{
		"always-hit": hitmiss.AlwaysHit{},
		"local":      hitmiss.NewLocal(),
		"chooser":    hitmiss.NewChooser(),
	}
	tallies := map[string]*hitmiss.Outcomes{}
	for name := range preds {
		tallies[name] = &hitmiss.Outcomes{}
	}
	g := trace.New(p)
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	for i := 0; i < warmup+uops; i++ {
		u := g.Next()
		if u.Kind == uop.STA {
			h.Access(u.Addr)
		}
		if u.Kind != uop.Load {
			continue
		}
		hit := h.Access(u.Addr) == cache.L1
		for name, pr := range preds {
			if i >= warmup {
				tallies[name].Record(hit, pr.PredictHit(u.IP, u.Addr, 0))
			}
			pr.Update(u.IP, u.Addr, 0, hit)
		}
	}
	t := stats.Table{Columns: []string{"predictor", "AM-PM (caught)", "AM-PH (replays)", "AH-PM (delays)"}}
	for _, name := range []string{"always-hit", "local", "chooser"} {
		o := tallies[name]
		t.AddRow(name,
			fmt.Sprintf("%d (%s)", o.AMPM, stats.Pct(float64(o.AMPM)/float64(max(1, o.Misses())))),
			fmt.Sprintf("%d", o.AMPH), fmt.Sprintf("%d", o.AHPM))
	}
	t.Render(os.Stdout)

	// Part 2: end-to-end speedup on the §4.2 machine (perfect
	// disambiguation, 4 int / 2 mem units).
	fmt.Println("\nPart 2 — machine speedup over always-hit scheduling")
	run := func(h hitmiss.Predictor, timing bool) float64 {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.IntUnits = 4
		cfg.HMP = h
		cfg.UseTimingHMP = timing
		cfg.WarmupUops = warmup
		return ooo.NewEngine(cfg, trace.New(p)).Run(uops).IPC()
	}
	base := run(nil, false)
	t2 := stats.Table{Columns: []string{"predictor", "IPC", "speedup"}}
	t2.AddRow("always-hit", stats.F3(base), "1.000")
	for _, row := range []struct {
		name   string
		pred   hitmiss.Predictor
		timing bool
	}{
		{"local", hitmiss.NewLocal(), false},
		{"local+timing", hitmiss.NewLocal(), true},
		{"chooser+timing", hitmiss.NewChooser(), true},
		{"perfect", &hitmiss.Perfect{}, false},
	} {
		ipc := run(row.pred, row.timing)
		t2.AddRow(row.name, stats.F3(ipc), stats.F3(ipc/base))
	}
	t2.Render(os.Stdout)
	fmt.Println("\nA caught miss (AM-PM) wakes dependents exactly when the data")
	fmt.Println("arrives; an uncaught one (AM-PH) squashes and re-schedules them.")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
