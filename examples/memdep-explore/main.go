// memdep-explore: the paper's §4.1 in miniature — sweep the six memory
// ordering schemes and four CHT organizations on one workload, using the
// internal packages directly for full control.
//
//	go run ./examples/memdep-explore
package main

import (
	"fmt"
	"os"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

const (
	uops   = 150_000
	warmup = 30_000
)

func main() {
	p, ok := trace.TraceByName(trace.GroupSpecInt95, "gcc")
	if !ok {
		panic("trace missing")
	}

	// Part 1: the six ordering schemes with the paper's reference CHT.
	fmt.Println("Part 1 — ordering schemes on SpecInt95/gcc")
	var base float64
	t := stats.Table{Columns: []string{"scheme", "IPC", "speedup", "collisions"}}
	for _, s := range memdep.Schemes() {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = s
		cfg.WarmupUops = warmup
		if s.UsesCHT() {
			cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		}
		st := ooo.NewEngine(cfg, trace.New(p)).Run(uops)
		if s == memdep.Traditional {
			base = st.IPC()
		}
		t.AddRow(s.String(), stats.F3(st.IPC()), stats.F3(st.IPC()/base),
			fmt.Sprintf("%d", st.Collisions))
	}
	t.Render(os.Stdout)

	// Part 2: CHT organizations under the Inclusive scheme. The Full CHT can
	// unlearn (fewest false "colliding" predictions); the sticky tagged-only
	// table never lets a colliding load slip (fewest AC-PNC); the combined
	// table pushes that further.
	fmt.Println("\nPart 2 — CHT organizations (Inclusive scheme)")
	chts := []memdep.Predictor{
		memdep.NewFullCHT(2048, 4, 2, true),
		memdep.NewTaglessCHT(4096, 1, false),
		memdep.NewImplicitCHT(2048, 4, false),
		memdep.NewCombinedCHT(2048, 4, 4096, false),
	}
	t2 := stats.Table{Columns: []string{"CHT", "IPC", "AC-PC", "AC-PNC", "ANC-PC"}}
	for _, cht := range chts {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = memdep.Inclusive
		cfg.CHT = cht
		cfg.WarmupUops = warmup
		st := ooo.NewEngine(cfg, trace.New(p)).Run(uops)
		c := st.Class
		t2.AddRow(cht.Name(), stats.F3(st.IPC()),
			stats.Pct(c.FracOfLoads(c.ACPC)),
			stats.Pct2(c.FracOfLoads(c.ACPNC)),
			stats.Pct(c.FracOfLoads(c.ANCPC)))
	}
	t2.Render(os.Stdout)

	// Part 3: window-size sensitivity — bigger windows expose more
	// reordering opportunity (Figure 6's point).
	fmt.Println("\nPart 3 — Exclusive-scheme speedup vs window size")
	t3 := stats.Table{Columns: []string{"window", "traditional IPC", "exclusive IPC", "speedup"}}
	for _, w := range []int{8, 16, 32, 64, 128} {
		run := func(s memdep.Scheme) float64 {
			cfg := ooo.DefaultConfig()
			cfg.Window = w
			cfg.Scheme = s
			cfg.WarmupUops = warmup
			if s.UsesCHT() {
				cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			}
			return ooo.NewEngine(cfg, trace.New(p)).Run(uops).IPC()
		}
		tr, ex := run(memdep.Traditional), run(memdep.Exclusive)
		t3.AddRow(fmt.Sprintf("%d", w), stats.F3(tr), stats.F3(ex), stats.F3(ex/tr))
	}
	t3.Render(os.Stdout)
}
