// banked-cache: the paper's §2.3 end to end — compare the memory-pipeline
// organizations of Figure 4 (ideal multi-ported, conventional multi-banked,
// predictor-scheduled, and sliced) on one workload, then show the §4.3
// statistical metric for the four bank predictors.
//
//	go run ./examples/banked-cache
package main

import (
	"fmt"
	"os"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

const (
	uops   = 150_000
	warmup = 30_000
)

func main() {
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "vortex")

	// Part 1: pipeline organizations in the machine.
	fmt.Println("Part 1 — memory pipeline organizations on SpecInt95/vortex")
	type org struct {
		name   string
		policy ooo.BankPolicy
		pred   bankpred.Predictor
	}
	orgs := []org{
		{"ideal multi-ported", ooo.BankOff, nil},
		{"conventional banked", ooo.BankConventional, nil},
		{"dual-scheduled", ooo.BankDualScheduled, nil},
		{"predictor-scheduled", ooo.BankPredictive, bankpred.NewPredictorC()},
		{"sliced + predictor C", ooo.BankSliced, bankpred.NewPredictorC()},
		{"sliced + addr pred", ooo.BankSliced, bankpred.NewAddrBank(cache.DefaultBanking())},
	}
	t := stats.Table{Columns: []string{"organization", "IPC", "conflicts", "mispredicts", "duplicated"}}
	for _, o := range orgs {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.WarmupUops = warmup
		cfg.BankPolicy = o.policy
		cfg.BankPredictor = o.pred
		cfg.Banking = cache.DefaultBanking()
		cfg.BankMispredictPenalty = 8
		st := ooo.NewEngine(cfg, trace.New(p)).Run(uops)
		t.AddRow(o.name, stats.F3(st.IPC()),
			fmt.Sprintf("%d", st.BankConflicts),
			fmt.Sprintf("%d", st.BankMispredicts),
			fmt.Sprintf("%d", st.BankDuplicates))
	}
	t.Render(os.Stdout)

	// Part 2: the §4.3 statistical metric (prediction rate and accuracy fold
	// into one gain number; penalty is the cost of a wrong bank).
	fmt.Println("\nPart 2 — statistical metric vs misprediction penalty")
	banking := cache.DefaultBanking()
	preds := []bankpred.Predictor{
		bankpred.NewPredictorA(), bankpred.NewPredictorB(),
		bankpred.NewPredictorC(), bankpred.NewAddrBank(banking),
	}
	tally := make([]bankpred.Stats, len(preds))
	g := trace.New(p)
	for i := 0; i < warmup+uops; i++ {
		u := g.Next()
		if u.Kind != uop.Load {
			continue
		}
		actual := banking.BankOf(u.Addr)
		for j, pr := range preds {
			bank, ok := pr.Predict(u.IP)
			if i >= warmup {
				tally[j].Record(ok, ok && bank == actual)
			}
			if ab, isAddr := pr.(*bankpred.AddrBank); isAddr {
				ab.UpdateAddr(u.IP, u.Addr)
			} else {
				pr.Update(u.IP, actual)
			}
		}
	}
	t2 := stats.Table{Columns: []string{"predictor", "rate", "accuracy", "metric p=0", "p=2", "p=5", "p=10"}}
	for j, pr := range preds {
		s := tally[j]
		t2.AddRow(pr.Name(), stats.Pct(s.Rate()), stats.Pct(s.Accuracy()),
			stats.F2(s.Metric(0)), stats.F2(s.Metric(2)), stats.F2(s.Metric(5)), stats.F2(s.Metric(10)))
	}
	t2.Render(os.Stdout)
	fmt.Println("\nmetric: 1.0 = ideal dual-ported cache, 0 = single-ported; a high")
	fmt.Println("penalty (sliced pipe) demands the accurate predictors (C, Addr).")
}
