// smt-switching: the multithreading use of hit-miss prediction from §2.2 —
// "the prediction may be used to govern a thread switch if a load is
// predicted to miss the L2 cache". Runs a coarse-grained multithreaded
// machine over memory-bound TPC threads and compares thread-switch gating:
// detection-based (always-hit machine), two-stage level predictor, and the
// oracle.
//
//	go run ./examples/smt-switching
package main

import (
	"fmt"
	"os"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/smt"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

func main() {
	const uops = 120_000

	threads := func(n int) []trace.Profile {
		g, _ := trace.GroupByName(trace.GroupTPC)
		var out []trace.Profile
		for i := 0; i < n; i++ {
			p := g.Traces[i%len(g.Traces)]
			p.Seed += int64(i) * 7919
			out = append(out, p)
		}
		return out
	}
	ecfg := ooo.DefaultConfig()
	ecfg.Scheme = memdep.Perfect

	fmt.Println("Coarse-grained multithreading on memory-bound TPC threads")
	t := stats.Table{Columns: []string{"threads", "switch gating", "IPC", "switches", "predicted"}}
	for _, n := range []int{1, 2, 4} {
		for _, g := range []struct {
			name           string
			level, perfect bool
		}{
			{"miss detection (no HMP)", false, false},
			{"two-stage level HMP", true, false},
			{"oracle", false, true},
		} {
			if n == 1 && g.name != "miss detection (no HMP)" {
				continue // gating is irrelevant with one thread
			}
			m := smt.New(smt.Config{
				Threads:     threads(n),
				Engine:      &ecfg,
				UseLevelHMP: g.level,
				PerfectHMP:  g.perfect,
			})
			r := m.Run(uops)
			t.AddRow(fmt.Sprintf("%d", n), g.name, stats.F3(r.IPC()),
				fmt.Sprintf("%d", r.Switches), fmt.Sprintf("%d", r.SwitchesPredicted))
		}
	}
	t.Render(os.Stdout)
	fmt.Println("\nPredicted switches happen at dispatch; detected ones only after")
	fmt.Println("the hit indication — the pipeline difference the HMP monetizes.")
}
