// Quickstart: simulate one workload on the paper's baseline machine, then
// turn on each of the three speculation techniques and watch the IPC move.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"loadsched"
)

func main() {
	w := loadsched.Workload{Group: "SpecInt95", Trace: "gcc", Uops: 150_000, Warmup: 30_000}

	// 1. Today's machine: Traditional ordering, always-hit scheduling.
	base, err := loadsched.Run(w, loadsched.Machine{Scheme: loadsched.Traditional})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (Traditional, always-hit):    IPC %.3f\n", base.IPC())
	fmt.Printf("  loads: %.1f%% collide, %.1f%% conflict-free, L1 miss rate %.2f%%\n",
		100*base.Class.FracOfLoads(base.Class.AC()),
		100*base.Class.FracOfLoads(base.Class.NotConflicting),
		100*base.L1MissRate())

	// 2. Memory-dependence prediction: the Inclusive collision predictor lets
	// non-colliding loads bypass every older store.
	incl, err := loadsched.Run(w, loadsched.Machine{Scheme: loadsched.Inclusive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with collision prediction (Inclusive): IPC %.3f (%+.1f%%)\n",
		incl.IPC(), 100*(incl.IPC()/base.IPC()-1))

	// 3. Add hit-miss prediction with timing information on top.
	hmp, err := loadsched.Run(w, loadsched.Machine{
		Scheme: loadsched.Inclusive, HMP: loadsched.HMPLocal, TimingHMP: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plus hit-miss prediction (+timing):    IPC %.3f (%+.1f%%)\n",
		hmp.IPC(), 100*(hmp.IPC()/base.IPC()-1))
	fmt.Printf("  caught misses (AM-PM): %d of %d; false alarms (AH-PM): %d\n",
		hmp.HM.AMPM, hmp.HM.Misses(), hmp.HM.AHPM)

	// 4. The headroom: perfect disambiguation and a perfect HMP.
	perf, err := loadsched.Run(w, loadsched.Machine{Scheme: loadsched.Perfect, HMP: loadsched.HMPPerfect})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle (Perfect + perfect HMP):        IPC %.3f (%+.1f%%)\n",
		perf.IPC(), 100*(perf.IPC()/base.IPC()-1))
}
