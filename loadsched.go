// Package loadsched reproduces "Speculation Techniques for Improving Load
// Related Instruction Scheduling" (Adi Yoaz, Mattan Erez, Ronny Ronen,
// Stephan Jourdan; ISCA 1999) as a library: a trace-driven out-of-order
// machine simulator plus the paper's three speculation techniques —
// memory-dependence (collision) prediction, data-cache hit-miss prediction,
// and cache-bank prediction.
//
// The facade wires together the internal packages for the common cases:
//
//	res := loadsched.Run(loadsched.Workload{Group: "SysmarkNT", Trace: "ex"},
//	    loadsched.Machine{Scheme: loadsched.Inclusive})
//	fmt.Println(res.IPC(), res.Speedup)
//
// For full control (custom CHT geometries, banked-cache policies, hit-miss
// predictor stacks, synthetic workload profiles) use the internal packages
// directly; examples/ shows both styles.
package loadsched

import (
	"fmt"

	"loadsched/internal/experiments"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/trace"
)

// NoWarmup requests an explicitly empty warmup region. A Workload.Warmup of
// zero means "default" (40000 uops); NoWarmup (or any negative value) means
// measurement starts at the first uop.
const NoWarmup = experiments.NoWarmup

// Scheme selects the memory reference ordering method (§3.1 of the paper).
type Scheme = memdep.Scheme

// The six ordering schemes.
const (
	// Traditional is the P6-style baseline: loads wait for all older store
	// addresses.
	Traditional = memdep.Traditional
	// Opportunistic advances every load as early as possible.
	Opportunistic = memdep.Opportunistic
	// Postponing holds CHT-predicted colliding loads for all older store
	// data.
	Postponing = memdep.Postponing
	// Inclusive advances predicted non-colliding loads past all stores.
	Inclusive = memdep.Inclusive
	// Exclusive additionally predicts the collision distance.
	Exclusive = memdep.Exclusive
	// Perfect is oracle disambiguation.
	Perfect = memdep.Perfect
)

// HMP selects the hit-miss predictor for a Machine.
type HMP string

// Hit-miss predictor choices.
const (
	// HMPNone models today's always-hit scheduling.
	HMPNone HMP = "none"
	// HMPLocal is the 2048-entry local predictor of §2.2.
	HMPLocal HMP = "local"
	// HMPChooser is the hybrid local+gshare+gskew majority predictor.
	HMPChooser HMP = "chooser"
	// HMPPerfect is the oracle.
	HMPPerfect HMP = "perfect"
)

// Workload names a synthetic trace: one of the paper's seven groups and a
// member trace. Zero values default to SysmarkNT/ex.
type Workload struct {
	Group string
	Trace string
	// Uops is the measured length (default 200000).
	Uops int
	// Warmup is the unmeasured prefix (default 40000). Set NoWarmup (or any
	// negative value) to measure from the first uop; zero takes the default.
	Warmup int
}

// Machine selects the interesting knobs of the §3.1 machine; zero values
// take the paper's baseline (32-entry window, 2 int / 2 mem / 1 FP /
// 2 complex units, Traditional ordering, always-hit scheduling).
type Machine struct {
	Scheme Scheme
	// Window is the scheduling-window size (default 32).
	Window int
	// IntUnits / MemUnits widen the machine (defaults 2 / 2).
	IntUnits, MemUnits int
	// HMP selects the hit-miss predictor (default HMPNone).
	HMP HMP
	// TimingHMP adds the outstanding-miss-queue enhancement to HMP.
	TimingHMP bool
	// CHTEntries sizes the Full CHT used by CHT schemes (default 2048).
	CHTEntries int
}

// Result is one simulation's outcome.
type Result struct {
	ooo.Stats
	// Workload and Machine echo the request.
	Workload Workload
	Machine  Machine
}

// Run simulates one workload on one machine. Results are memoized on the
// process-wide cache: repeating a (workload, machine) pair returns the
// recorded statistics without re-simulating.
func Run(w Workload, m Machine) (Result, error) {
	w = w.withDefaults()
	p, ok := trace.TraceByName(w.Group, w.Trace)
	if !ok {
		return Result{}, fmt.Errorf("loadsched: unknown trace %s/%s", w.Group, w.Trace)
	}
	if _, err := m.config(); err != nil {
		return Result{}, err
	}
	st := runner.New(1).Do(runner.Job{
		Build: func() ooo.Config {
			cfg, _ := m.config()
			return cfg
		},
		Profile: p,
		Uops:    w.Uops,
		Warmup:  w.warmup(),
	})
	return Result{Stats: st, Workload: w, Machine: m}, nil
}

// Compare runs the workload under every ordering scheme and returns the
// speedups over Traditional — the experiment of Figure 7 for one trace. The
// schemes run concurrently on the process-wide pool; Traditional is
// simulated once, serving both as the denominator and as its own entry,
// which is therefore exactly 1.0.
func Compare(w Workload, m Machine) (map[Scheme]float64, error) {
	wd := w.withDefaults()
	p, ok := trace.TraceByName(wd.Group, wd.Trace)
	if !ok {
		return nil, fmt.Errorf("loadsched: unknown trace %s/%s", wd.Group, wd.Trace)
	}
	schemes := memdep.Schemes() // schemes[0] is Traditional
	jobs := make([]runner.Job, len(schemes))
	for i, s := range schemes {
		ms := m
		ms.Scheme = s
		if _, err := ms.config(); err != nil {
			return nil, err
		}
		jobs[i] = runner.Job{
			Build: func() ooo.Config {
				cfg, _ := ms.config()
				return cfg
			},
			Profile: p,
			Uops:    wd.Uops,
			Warmup:  w.warmup(),
		}
	}
	sts := runner.New(0).Run(jobs)
	out := make(map[Scheme]float64, len(schemes))
	base := sts[0].IPC()
	for i, s := range schemes {
		out[s] = sts[i].IPC() / base
	}
	out[Traditional] = 1.0
	return out, nil
}

func (w Workload) withDefaults() Workload {
	if w.Group == "" {
		w.Group = trace.GroupSysmarkNT
	}
	if w.Trace == "" {
		w.Trace = "ex"
	}
	if w.Uops == 0 {
		w.Uops = 200_000
	}
	if w.Warmup == 0 {
		w.Warmup = 40_000
	}
	return w
}

// warmup resolves the workload's warmup length after defaults: negative
// (NoWarmup) means an explicitly empty warmup region.
func (w Workload) warmup() int {
	wu := w.withDefaults().Warmup
	if wu < 0 {
		return 0
	}
	return wu
}

func (m Machine) config() (ooo.Config, error) {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = m.Scheme
	if m.Window > 0 {
		cfg.Window = m.Window
	}
	if m.IntUnits > 0 {
		cfg.IntUnits = m.IntUnits
	}
	if m.MemUnits > 0 {
		cfg.MemUnits = m.MemUnits
	}
	if cfg.Scheme.UsesCHT() {
		n := m.CHTEntries
		if n == 0 {
			n = 2048
		}
		cfg.CHT = memdep.NewFullCHT(n, 4, 2, true)
	}
	switch m.HMP {
	case "", HMPNone:
	case HMPLocal:
		cfg.HMP = hitmiss.NewLocal()
	case HMPChooser:
		cfg.HMP = hitmiss.NewChooser()
	case HMPPerfect:
		cfg.HMP = &hitmiss.Perfect{}
	default:
		return cfg, fmt.Errorf("loadsched: unknown HMP %q", m.HMP)
	}
	cfg.UseTimingHMP = m.TimingHMP
	return cfg, nil
}

// CPIBreakdown re-exports the per-cause cycle partition every simulation
// collects: each cycle of Stats.Cycles lands in exactly one cause bucket, so
// the causes sum to the total by construction.
type CPIBreakdown = ooo.CPIStack

// CPIStack simulates one workload on one machine and returns its cycle
// attribution — where the cycles went, by stall cause. It shares the
// process-wide memo cache with Run, so pairing the two costs one simulation.
func CPIStack(w Workload, m Machine) (CPIBreakdown, error) {
	res, err := Run(w, m)
	if err != nil {
		return CPIBreakdown{}, err
	}
	return res.Stats.CPI, nil
}

// Groups lists the seven synthetic trace groups with their member names.
func Groups() map[string][]string {
	out := map[string][]string{}
	for _, g := range trace.Groups() {
		for _, t := range g.Traces {
			out[g.Name] = append(out[g.Name], t.Name)
		}
	}
	return out
}

// Figures re-exports the experiment options type for driving full paper
// figures from library code (see internal/experiments for the FigN
// functions, and cmd/loadsched for the CLI).
type Figures = experiments.Options

// Report re-exports the machine-readable results envelope: versioned,
// typed records (schema results.SchemaVersion) for figures and sweeps,
// emitted as JSON or CSV by the internal/results package.
type Report = results.Report

// FigureReport runs the named figure records ("fig5".."fig12",
// "bankpolicies", "cpistack", or "tournament"; none = all eight paper
// figures) under o and
// returns the
// structured report — the library counterpart of `loadsched all -format
// json`. Record contents are a pure function of o (worker count excluded),
// so reports are identical for every Workers setting.
func FigureReport(o Figures, figures ...string) (Report, error) {
	if len(figures) == 0 {
		figures = experiments.FigureIDs
	}
	recs := make([]results.Record, 0, len(figures))
	for _, id := range figures {
		rec, err := experiments.FigureRecord(id, o)
		if err != nil {
			return Report{}, err
		}
		recs = append(recs, rec)
	}
	rep := results.NewReport("library", results.Options{
		Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup}, recs)
	if err := rep.Validate(); err != nil {
		return Report{}, err
	}
	return rep, nil
}
