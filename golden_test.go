package loadsched

import (
	"os"
	"strings"
	"testing"

	"loadsched/internal/experiments"
	"loadsched/internal/results"
	"loadsched/internal/runner"
)

// TestGoldenAllFigures is the refactor-equivalence gate: the engine must
// reproduce the committed pre-refactor figure records byte-for-byte. The
// golden was captured with
//
//	loadsched all -quick -format json -j 1 > testdata/golden_all_quick.json
//
// and the test rebuilds the identical report in-process. Any change to
// simulation behavior — intended or not — shows up here as a byte diff;
// regenerate the golden only for deliberate model changes, and say so in the
// commit.
func TestGoldenAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("golden figure run is a few seconds; skipped under -short")
	}
	want, err := os.ReadFile("testdata/golden_all_quick.json")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}

	o := experiments.Quick()
	o.Pool = runner.NewIsolated(1, runner.NewCache())
	recs := experiments.AllRecords(o)
	report := results.NewReport("all", results.Options{
		Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup}, recs)
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := results.WriteJSON(&b, report); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Fatalf("all-figure records diverge from pre-refactor golden\n"+
			"got %d bytes, want %d bytes\n%s", len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestGoldenTournament pins the policy-zoo tournament the same way: the
// golden was captured with
//
//	loadsched tournament -quick -format json -j 1 > testdata/golden_tournament_quick.json
//
// and guards both the zoo policies' behavior (any drift in a predictor
// shows up as a byte diff) and the results/v1 emission of the tournament
// record kind.
func TestGoldenTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("golden tournament run is a few seconds; skipped under -short")
	}
	want, err := os.ReadFile("testdata/golden_tournament_quick.json")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}

	o := experiments.Quick()
	o.Pool = runner.NewIsolated(1, runner.NewCache())
	rec := experiments.TournamentRecord(o, experiments.Tournament(o))
	report := results.NewReport("tournament", results.Options{
		Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
		[]results.Record{rec})
	if err := report.Validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := results.WriteJSON(&b, report); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Fatalf("tournament record diverges from golden\n"+
			"got %d bytes, want %d bytes\n%s", len(got), len(want), firstDiff(got, string(want)))
	}
}

// firstDiff locates the first divergent line for a readable failure message.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "first diff at line " + itoa(i+1) + ":\n  got:  " + g[i] + "\n  want: " + w[i]
		}
	}
	return "outputs differ in length only"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
