package loadsched

// Cross-module integration tests: these exercise the whole stack — trace
// generation → out-of-order engine → predictors → statistics — and pin the
// qualitative results the paper's evaluation rests on. They use reduced
// trace lengths, so thresholds are loose; the full-size numbers live in
// EXPERIMENTS.md.

import (
	"testing"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/experiments"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

func TestIntegrationCentralResult(t *testing.T) {
	// The paper's central claim, end to end: on SysmarkNT, collision
	// prediction recovers most of the headroom between Traditional and
	// Perfect disambiguation.
	if testing.Short() {
		t.Skip("integration")
	}
	o := experiments.Options{Uops: 100_000, Warmup: 25_000, TracesPerGroup: 4}
	r := experiments.Fig7(o)
	perf := r.Average(memdep.Perfect)
	incl := r.Average(memdep.Inclusive)
	excl := r.Average(memdep.Exclusive)
	if perf < 1.05 {
		t.Fatalf("perfect disambiguation speedup %.3f — headroom collapsed", perf)
	}
	gotFrac := (incl - 1) / (perf - 1)
	if gotFrac < 0.6 {
		t.Fatalf("inclusive captures only %.0f%% of the headroom (paper: most of it)", 100*gotFrac)
	}
	if excl < incl-0.01 {
		t.Fatalf("exclusive (%.3f) fell below inclusive (%.3f)", excl, incl)
	}
}

func TestIntegrationCHTOneBitSuffices(t *testing.T) {
	// §2.1: "in its simplest form our dependence predictor needs only a
	// single bit". The tagless 1-bit CHT must recover a comparable share of
	// the perfect-disambiguation headroom as the Full CHT.
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "cd")
	run := func(cht memdep.Predictor, scheme memdep.Scheme) float64 {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = scheme
		cfg.CHT = cht
		cfg.WarmupUops = 20_000
		return ooo.NewEngine(cfg, trace.New(p)).Run(80_000).IPC()
	}
	base := run(nil, memdep.Traditional)
	oneBit := run(memdep.NewTaglessCHT(4096, 1, false), memdep.Inclusive)
	full := run(memdep.NewFullCHT(2048, 4, 2, false), memdep.Inclusive)
	if oneBit <= base {
		t.Fatalf("1-bit CHT gained nothing: %.3f vs %.3f", oneBit, base)
	}
	if oneBit < base+(full-base)*0.5 {
		t.Fatalf("1-bit CHT (%.3f) far below full CHT (%.3f) over base %.3f", oneBit, full, base)
	}
}

func TestIntegrationHMPReducesReplays(t *testing.T) {
	// §2.2: the HMP's value is fewer replays (AM-PH) traded for few delays
	// (AH-PM).
	p, _ := trace.TraceByName(trace.GroupSpecFP95, "tomcatv")
	run := func(h hitmiss.Predictor) ooo.Stats {
		cfg := ooo.DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.HMP = h
		cfg.WarmupUops = 20_000
		return ooo.NewEngine(cfg, trace.New(p)).Run(80_000)
	}
	base := run(nil)
	local := run(hitmiss.NewLocal())
	if base.HM.AMPM != 0 {
		t.Fatal("always-hit cannot catch misses")
	}
	if local.HM.AMPH >= base.HM.AMPH {
		t.Fatalf("local HMP did not reduce replays: %d vs %d", local.HM.AMPH, base.HM.AMPH)
	}
	caught := float64(local.HM.AMPM) / float64(local.HM.Misses())
	if caught < 0.3 {
		t.Fatalf("local HMP caught only %.0f%% of FP misses (paper: 85%%)", 100*caught)
	}
}

func TestIntegrationBankPredictorsOnAllGroups(t *testing.T) {
	// Bank prediction must be far more often right than wrong on every
	// group, and abstention keeps it that way.
	if testing.Short() {
		t.Skip("integration")
	}
	banking := cache.DefaultBanking()
	for _, gname := range trace.GroupNames() {
		g, _ := trace.GroupByName(gname)
		pred := 0
		var tally struct{ total, correct, wrong int }
		pr := trace.New(g.Traces[0])
		bp := fig12Predictor(banking)
		for i := 0; i < 80_000; i++ {
			u := pr.Next()
			if u.Kind != uop.Load {
				continue
			}
			actual := banking.BankOf(u.Addr)
			bank, ok := bp.Predict(u.IP)
			tally.total++
			if ok && i > 20_000 {
				pred++
				if bank == actual {
					tally.correct++
				} else {
					tally.wrong++
				}
			}
			bp.Update(u.IP, actual)
		}
		if pred == 0 {
			t.Errorf("%s: predictor never predicted", gname)
			continue
		}
		if tally.correct < tally.wrong*5 {
			t.Errorf("%s: accuracy too low (%d correct / %d wrong)", gname, tally.correct, tally.wrong)
		}
	}
}

// fig12Predictor gives the integration test its own predictor A instance.
func fig12Predictor(cache.Banking) bankpred.Predictor {
	return bankpred.NewPredictorA()
}

func TestIntegrationWindowScalingMatters(t *testing.T) {
	// Figure 6 premise end to end: the predictor's payoff grows with the
	// scheduling window.
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "pm")
	gain := func(window int) float64 {
		run := func(s memdep.Scheme) float64 {
			cfg := ooo.DefaultConfig()
			cfg.Window = window
			cfg.Scheme = s
			cfg.WarmupUops = 20_000
			if s.UsesCHT() {
				cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			}
			return ooo.NewEngine(cfg, trace.New(p)).Run(80_000).IPC()
		}
		return run(memdep.Exclusive) / run(memdep.Traditional)
	}
	if g8, g64 := gain(8), gain(64); g64 < g8-0.02 {
		t.Fatalf("predictor payoff shrank with window: %.3f (w=8) vs %.3f (w=64)", g8, g64)
	}
}

func TestIntegrationTraceDistributions(t *testing.T) {
	// Group-level invariants the experiments rely on, measured on the raw
	// trace streams.
	type groupStat struct{ loads, stores, uops int }
	for _, gname := range trace.GroupNames() {
		g, _ := trace.GroupByName(gname)
		gen := trace.New(g.Traces[0])
		var st groupStat
		for i := 0; i < 60_000; i++ {
			u := gen.Next()
			st.uops++
			switch u.Kind {
			case uop.Load:
				st.loads++
			case uop.STA:
				st.stores++
			}
		}
		loadFrac := float64(st.loads) / float64(st.uops)
		if loadFrac < 0.1 || loadFrac > 0.4 {
			t.Errorf("%s: load fraction %.2f implausible", gname, loadFrac)
		}
		if st.stores == 0 {
			t.Errorf("%s: no stores", gname)
		}
	}
}
