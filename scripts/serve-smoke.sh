#!/bin/sh
# serve-smoke: end-to-end check of the serve job API and the persistent
# result store, as a client sees them.
#
#   1. run a quick sweep locally (no store) — the reference bytes
#   2. start `loadsched serve -store DIR`, run the same sweep via -remote
#   3. RESTART the server on the same store directory (fresh process, so
#      nothing can hide in the in-memory memo cache) and run the sweep again
#   4. assert the post-restart job reported zero simulations and nonzero
#      disk hits, and that every run's records are byte-identical
#
# The -v counter run and the byte-comparison runs are separate because -v
# embeds the (timing-bearing) runner counters in the JSON envelope; the
# first job after the restart is the -v one, since only the first can see
# disk hits before the server's in-memory cache rewarms.
#
# Exits non-zero on any failure. Needs only a Go toolchain and a free port.
set -eu

WORK="$(mktemp -d /tmp/loadsched-serve-smoke.XXXXXX)"
BIN="$WORK/loadsched"
STORE="$WORK/store"
SERVER_PID=""

cleanup() {
	[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

SWEEP_FLAGS="-format json -uops 8000 -warmup 2000 -traces 1"

echo "serve-smoke: building"
go build -o "$BIN" ./cmd/loadsched

start_server() {
	"$BIN" serve -addr 127.0.0.1:0 -store "$STORE" 2>"$WORK/serve.log" &
	SERVER_PID=$!
	# The server logs its resolved address; poll until it appears and the
	# health endpoint (reached through a tiny real job) answers.
	ADDR=""
	for _ in $(seq 1 50); do
		ADDR="$(sed -n 's/.*listening on http:\/\///p' "$WORK/serve.log" | head -1)"
		if [ -n "$ADDR" ] && "$BIN" sweep chtsize -remote "$ADDR" -format json -uops 100 -warmup 0 -traces 1 >/dev/null 2>&1; then
			return 0
		fi
		sleep 0.1
	done
	echo "serve-smoke: server never came up"
	cat "$WORK/serve.log"
	exit 1
}

stop_server() {
	kill "$SERVER_PID" 2>/dev/null || true
	wait "$SERVER_PID" 2>/dev/null || true
	SERVER_PID=""
}

echo "serve-smoke: local reference run"
# shellcheck disable=SC2086
"$BIN" sweep chtsize $SWEEP_FLAGS >"$WORK/direct.json"

echo "serve-smoke: remote cold run (populates the store)"
start_server
# shellcheck disable=SC2086
"$BIN" sweep chtsize -remote "$ADDR" $SWEEP_FLAGS >"$WORK/cold.json"
stop_server

echo "serve-smoke: restarting the server on the same store"
start_server
# First post-restart job: counters must show everything came off disk.
# shellcheck disable=SC2086
"$BIN" sweep chtsize -remote "$ADDR" $SWEEP_FLAGS -v >/dev/null 2>"$WORK/warm.err"
# Second job re-streams the records for the byte comparison.
# shellcheck disable=SC2086
"$BIN" sweep chtsize -remote "$ADDR" $SWEEP_FLAGS >"$WORK/warm.json"
stop_server

cmp "$WORK/direct.json" "$WORK/cold.json" || {
	echo "serve-smoke: FAIL remote cold output differs from local run"; exit 1; }
cmp "$WORK/cold.json" "$WORK/warm.json" || {
	echo "serve-smoke: FAIL warm output differs from cold output"; exit 1; }

grep -q "(0 simulated" "$WORK/warm.err" || {
	echo "serve-smoke: FAIL warm run simulated something:"; cat "$WORK/warm.err"; exit 1; }
grep -q "disk hits" "$WORK/warm.err" || {
	echo "serve-smoke: FAIL warm run reported no disk hits:"; cat "$WORK/warm.err"; exit 1; }

echo "serve-smoke: OK (warm restart: zero simulations, byte-identical records)"
