package loadsched

import (
	"bytes"
	"encoding/json"
	"testing"

	"loadsched/internal/experiments"
	"loadsched/internal/runner"
)

func TestRunDefaults(t *testing.T) {
	r, err := Run(Workload{Uops: 30000, Warmup: 5000}, Machine{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Uops < 30000 {
		t.Fatalf("retired %d uops", r.Uops)
	}
	if r.IPC() <= 0 {
		t.Fatal("non-positive IPC")
	}
	if r.Workload.Group != "SysmarkNT" || r.Workload.Trace != "ex" {
		t.Fatalf("defaults not applied: %+v", r.Workload)
	}
}

func TestRunUnknownTrace(t *testing.T) {
	if _, err := Run(Workload{Group: "Nope", Trace: "x"}, Machine{}); err == nil {
		t.Fatal("unknown trace must error")
	}
	if _, err := Run(Workload{Group: "SpecInt95", Trace: "nope"}, Machine{}); err == nil {
		t.Fatal("unknown trace name must error")
	}
}

func TestRunUnknownHMP(t *testing.T) {
	if _, err := Run(Workload{Uops: 1000, Warmup: 100}, Machine{HMP: "bogus"}); err == nil {
		t.Fatal("unknown HMP must error")
	}
}

func TestRunSchemes(t *testing.T) {
	for _, s := range []Scheme{Traditional, Opportunistic, Postponing, Inclusive, Exclusive, Perfect} {
		r, err := Run(Workload{Uops: 20000, Warmup: 5000}, Machine{Scheme: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if r.IPC() <= 0 {
			t.Fatalf("%v: zero IPC", s)
		}
	}
}

func TestRunHMPs(t *testing.T) {
	for _, h := range []HMP{HMPNone, HMPLocal, HMPChooser, HMPPerfect} {
		r, err := Run(Workload{Uops: 20000, Warmup: 5000}, Machine{HMP: h, TimingHMP: h == HMPLocal})
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if h == HMPPerfect && r.HM.AMPH != 0 {
			t.Fatalf("perfect HMP mispredicted %d misses", r.HM.AMPH)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	sp, err := Compare(Workload{Group: "SysmarkNT", Trace: "pp", Uops: 80000, Warmup: 20000}, Machine{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp) != 6 {
		t.Fatalf("expected 6 schemes, got %d", len(sp))
	}
	if sp[Traditional] != 1.0 {
		t.Fatalf("baseline speedup = %v, want exactly 1", sp[Traditional])
	}
	if sp[Perfect] < 1.0 {
		t.Fatalf("perfect disambiguation slower than traditional: %v", sp[Perfect])
	}
	// The paper's central result, loosely: the predictor schemes sit between
	// the baseline and perfect.
	if sp[Inclusive] < 0.97 || sp[Inclusive] > sp[Perfect]*1.03 {
		t.Fatalf("inclusive speedup %v outside [0.97, perfect+3%%]", sp[Inclusive])
	}
}

func TestGroups(t *testing.T) {
	gs := Groups()
	if len(gs) != 7 {
		t.Fatalf("expected 7 groups, got %d", len(gs))
	}
	total := 0
	for _, names := range gs {
		total += len(names)
	}
	if total != 46 {
		t.Fatalf("expected 46 traces, got %d", total)
	}
}

func TestMachineKnobs(t *testing.T) {
	small, err := Run(Workload{Uops: 40000, Warmup: 10000}, Machine{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(Workload{Uops: 40000, Warmup: 10000}, Machine{Window: 128, IntUnits: 4, MemUnits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if big.IPC() <= small.IPC() {
		t.Fatalf("wide machine (%.3f) should beat narrow (%.3f)", big.IPC(), small.IPC())
	}
}

func TestDeterministicFacade(t *testing.T) {
	w := Workload{Uops: 30000, Warmup: 5000}
	m := Machine{Scheme: Exclusive}
	a, _ := Run(w, m)
	b, _ := Run(w, m)
	if a.Stats != b.Stats {
		t.Fatal("identical runs diverged")
	}
}

func TestWarmupDefaultsAndSentinel(t *testing.T) {
	for _, tc := range []struct {
		in   int
		want int
	}{
		{0, 40_000},    // zero means default
		{5_000, 5_000}, // explicit values pass through
		{NoWarmup, 0},  // the sentinel requests a truly empty warmup
		{-7, 0},        // any negative value behaves like NoWarmup
	} {
		if got := (Workload{Warmup: tc.in}).warmup(); got != tc.want {
			t.Errorf("Workload{Warmup: %d}.warmup() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestNoWarmupObservable: with the sentinel, measurement starts cold, which
// must be visible in the statistics (the old coercion to 40K made a
// zero-warmup run impossible to request).
func TestNoWarmupObservable(t *testing.T) {
	cold, err := Run(Workload{Uops: 20_000, Warmup: NoWarmup}, Machine{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(Workload{Uops: 20_000, Warmup: 20_000}, Machine{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats == warm.Stats {
		t.Fatal("zero-warmup run produced identical stats to a warmed run; sentinel ignored")
	}
}

// TestCompareReusesBaseline: a prior Run of the Traditional machine must
// make Compare skip re-simulating it — only the five non-Traditional
// schemes are new work.
func TestCompareReusesBaseline(t *testing.T) {
	w := Workload{Group: "SysmarkNT", Trace: "wd", Uops: 17_345, Warmup: 3_456}
	if _, err := Run(w, Machine{Scheme: Traditional}); err != nil {
		t.Fatal(err)
	}
	before := runner.Shared().Len()
	sp, err := Compare(w, Machine{})
	if err != nil {
		t.Fatal(err)
	}
	if got := runner.Shared().Len() - before; got != 5 {
		t.Fatalf("Compare added %d cache entries after a Traditional Run, want 5", got)
	}
	if sp[Traditional] != 1.0 {
		t.Fatalf("Traditional speedup = %v, want exactly 1.0", sp[Traditional])
	}
}

// TestFigureReport drives the library counterpart of `loadsched all -format
// json`: a valid report whose records are a pure function of the options,
// so two runs at different worker counts marshal identically.
func TestFigureReport(t *testing.T) {
	opts := func(workers int) Figures {
		o := experiments.Quick()
		o.Uops, o.Warmup = 15_000, 4_000
		o.TracesPerGroup = 1
		o.Pool = runner.NewIsolated(workers, runner.NewCache())
		return o
	}
	rep, err := FigureReport(opts(1), "fig5", "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || rep.Records[0].ID != "fig5" || rep.Records[1].ID != "fig7" {
		t.Fatalf("records = %+v", rep.Records)
	}
	wide, err := FigureReport(opts(8), "fig5", "fig7")
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(rep)
	j8, _ := json.Marshal(wide)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("reports differ across worker counts:\n%s\n%s", j1, j8)
	}

	if _, err := FigureReport(opts(1), "fig99"); err == nil {
		t.Fatal("unknown figure must error")
	}
}
