package loadsched

// Warm-store determinism acceptance: a store-backed run that loads every
// result from disk must emit byte-identical records to a cold run that
// computed them — and must perform zero simulations doing it. This is the
// contract that makes the persistent store safe to put under the paper's
// figures: the disk layer can only change wall-clock time, never output.

import (
	"bytes"
	"encoding/json"
	"testing"

	"loadsched/internal/experiments"
	"loadsched/internal/runner"
	"loadsched/internal/store"
)

func TestWarmStoreDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	opts := experiments.Options{Uops: 8_000, Warmup: 2_000, TracesPerGroup: 1}
	ids := []string{"fig7", "cpistack", "tournament"}

	marshalRun := func(pool *runner.Pool) []byte {
		o := opts
		o.Pool = pool
		var buf bytes.Buffer
		for _, id := range ids {
			rec, err := experiments.FigureRecord(id, o)
			if err != nil {
				t.Fatalf("FigureRecord(%s): %v", id, err)
			}
			raw, err := json.Marshal(rec)
			if err != nil {
				t.Fatalf("marshal %s: %v", id, err)
			}
			buf.Write(raw)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}

	// Reference: a plain cold run with no store anywhere near it.
	direct := marshalRun(runner.NewIsolated(0, runner.NewCache()))

	// Cold store-backed run: simulates everything, populates the store.
	dir := t.TempDir()
	openPool := func() *runner.Pool {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		c := runner.NewCache()
		c.SetStore(s)
		return runner.NewIsolated(0, c)
	}
	coldPool := openPool()
	cold := marshalRun(coldPool)
	if !bytes.Equal(direct, cold) {
		t.Fatalf("store-backed cold run differs from direct run")
	}
	cc := coldPool.Counters()
	if cc.Simulated == 0 {
		t.Fatalf("cold run simulated nothing: %+v", cc)
	}
	if dc, ok := coldPool.DiskCounters(); !ok || dc.Writes == 0 {
		t.Fatalf("cold run wrote nothing to the store: %+v ok=%v", dc, ok)
	}

	// Warm run: a fresh cache over the same directory — as a restarted
	// process would see it. Zero simulations, byte-identical records.
	warmPool := openPool()
	warm := marshalRun(warmPool)
	if !bytes.Equal(direct, warm) {
		t.Fatalf("warm-store records differ from the cold run's")
	}
	wc := warmPool.Counters()
	if wc.Simulated != 0 {
		t.Fatalf("warm run simulated %d jobs, want 0 (%+v)", wc.Simulated, wc)
	}
	if wc.DiskHits == 0 {
		t.Fatalf("warm run reports no disk hits: %+v", wc)
	}
}
