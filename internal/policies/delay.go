package policies

import (
	"loadsched/internal/cache"
	"loadsched/internal/ooo"
)

// Real-time load-delay tracking (Diavastos & Carlson): instead of
// predicting a discrete hierarchy level, track each load IP's observed
// delay directly — an exponentially weighted moving average of the
// latencies its retirements actually saw — and schedule dependents for the
// level whose latency is nearest that average. Loads with stable behavior
// converge to their true level; loads that alternate land between levels
// and quantize to the safer (nearer) one.
const (
	// delayIndexBits sizes the tagless per-IP delay table.
	delayIndexBits = 12
	// delayUntrained marks an entry with no observations yet.
	delayUntrained = -1
)

// loadDelayKey canonically describes the tracker geometry and EWMA for
// memo keys.
const loadDelayKey = "loaddelay(4096,ewma3/4)"

// loadDelayPolicy wraps the default policy with the delay tracker.
type loadDelayPolicy struct {
	ooo.SpeculationPolicy
	lat   cache.Latencies
	delay [1 << delayIndexBits]int32
}

func newLoadDelay(base ooo.Config, deps ooo.PolicyDeps) ooo.SpeculationPolicy {
	p := &loadDelayPolicy{
		SpeculationPolicy: ooo.DefaultPolicy(base, deps),
		lat:               base.Lat,
	}
	for i := range p.delay {
		p.delay[i] = delayUntrained
	}
	return p
}

func delayIndex(ip uint64) uint64 {
	return hermesMix(ip) & (1<<delayIndexBits - 1)
}

// PredictLevel quantizes the tracked delay to the hierarchy level with the
// nearest latency; ties go to the shallower level. Untracked IPs fall back
// to the base policy.
func (p *loadDelayPolicy) PredictLevel(ip, addr uint64, now int64) cache.Level {
	d := p.delay[delayIndex(ip)]
	if d == delayUntrained {
		return p.SpeculationPolicy.PredictLevel(ip, addr, now)
	}
	best, bestDist := cache.L1, int32(0)
	for _, lv := range []cache.Level{cache.L1, cache.L2, cache.Memory} {
		dist := d - int32(p.lat.Of(lv))
		if dist < 0 {
			dist = -dist
		}
		if lv == cache.L1 || dist < bestDist {
			best, bestDist = lv, dist
		}
	}
	return best
}

// TrainRetire trains the base predictors first, then folds the observed
// servicing latency into the IP's moving average (weight 1/4 to the new
// observation).
func (p *loadDelayPolicy) TrainRetire(ev ooo.TrainEvent) {
	p.SpeculationPolicy.TrainRetire(ev)
	obs := int32(p.lat.Of(ev.Level))
	slot := &p.delay[delayIndex(ev.IP)]
	if *slot == delayUntrained {
		*slot = obs
	} else {
		*slot = (3**slot + obs) >> 2
	}
}

// Reset implements ooo.PolicyResetter.
func (p *loadDelayPolicy) Reset() {
	resetBase(p.SpeculationPolicy)
	for i := range p.delay {
		p.delay[i] = delayUntrained
	}
}
