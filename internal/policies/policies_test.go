package policies

import (
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/trace"
)

// baseConfig is the zoo's host machine for tests: the paper's baseline
// with the Inclusive scheme and a Full CHT, so ordering prediction and
// training are exercised alongside the level-prediction overrides.
func baseConfig() ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = memdep.Inclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	return cfg
}

func twoProfiles(t *testing.T) (trace.Profile, trace.Profile) {
	t.Helper()
	for _, g := range trace.Groups() {
		if len(g.Traces) >= 2 {
			return g.Traces[0], g.Traces[1]
		}
	}
	t.Fatal("no trace group with two members")
	return trace.Profile{}, trace.Profile{}
}

func TestInstallErrors(t *testing.T) {
	cfg := baseConfig()
	if err := Install(&cfg, "no-such-policy"); err == nil {
		t.Fatal("unknown policy installed without error")
	}
	if err := Install(&cfg, "hermes"); err != nil {
		t.Fatal(err)
	}
	if err := Install(&cfg, "cachelevel"); err == nil {
		t.Fatal("double install accepted")
	}
}

// TestInstalledConfigsMemoizable: every zoo policy yields a describable
// config, the keys are pairwise distinct and differ from the base machine.
func TestInstalledConfigsMemoizable(t *testing.T) {
	base, ok := runner.ConfigKey(baseConfig())
	if !ok {
		t.Fatal("base config must be memoizable")
	}
	seen := map[string]string{"": "base", base: "base"}
	for _, name := range Names() {
		cfg := baseConfig()
		if err := Install(&cfg, name); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: installed config invalid: %v", name, err)
		}
		k, ok := runner.ConfigKey(cfg)
		if !ok {
			t.Fatalf("%s: installed config not memoizable", name)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s shares memo key with %s", name, prev)
		}
		seen[k] = name
	}
}

// TestZooDeterministic: two freshly built engines per policy must agree
// bit for bit — the determinism half of the PolicyKey promise.
func TestZooDeterministic(t *testing.T) {
	p, _ := twoProfiles(t)
	for _, name := range Names() {
		run := func() ooo.Stats {
			cfg := baseConfig()
			cfg.WarmupUops = 500
			if err := Install(&cfg, name); err != nil {
				t.Fatal(err)
			}
			return ooo.NewEngine(cfg, trace.New(p)).Run(3_000)
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: repeated runs diverged\nfirst:  %+v\nsecond: %+v", name, a, b)
		}
	}
}

// TestZooOverridesReachEngine: each zoo policy must actually change the
// schedule relative to the base machine — a policy whose override never
// reaches the engine would silently race as a copy of the default.
func TestZooOverridesReachEngine(t *testing.T) {
	p, _ := twoProfiles(t)
	mk := func(name string) ooo.Stats {
		cfg := baseConfig()
		cfg.WarmupUops = 500
		if name != "" {
			if err := Install(&cfg, name); err != nil {
				t.Fatal(err)
			}
		}
		return ooo.NewEngine(cfg, trace.New(p)).Run(10_000)
	}
	base := mk("")
	for _, name := range Names() {
		if got := mk(name); got == base {
			t.Fatalf("%s: statistics identical to the default policy", name)
		}
	}
}

// TestZooResetReuse extends the PR 5 reset-reuse property to every zoo
// policy: an engine dirtied on one workload, Reset, and rerun must produce
// bit-identical Stats to a freshly built engine — the contract that lets
// the runner's engine pool recycle zoo engines.
func TestZooResetReuse(t *testing.T) {
	target, other := twoProfiles(t)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			const warmup, uops = 500, 3_000
			mk := func() ooo.Config {
				cfg := baseConfig()
				cfg.WarmupUops = warmup
				if err := Install(&cfg, name); err != nil {
					t.Fatal(err)
				}
				return cfg
			}
			fresh := ooo.NewEngine(mk(), trace.New(target)).Run(uops)

			e := ooo.NewEngine(mk(), trace.New(other))
			e.Run(uops)
			if !e.Reset(trace.New(target)) {
				t.Fatalf("Reset refused for zoo policy %s", name)
			}
			if reused := e.Run(uops); reused != fresh {
				t.Errorf("reused engine diverged from fresh engine\nfresh:  %+v\nreused: %+v", fresh, reused)
			}

			if !e.Reset(trace.New(target)) {
				t.Fatal("second Reset refused")
			}
			if again := e.Run(uops); again != fresh {
				t.Errorf("second reuse diverged\nfresh: %+v\nagain: %+v", fresh, again)
			}
		})
	}
}

// TestZooPooledCountersProveReuse is the ISSUE 6 acceptance criterion: a
// sweep containing described zoo policies shows nonzero memo hits and
// engine reuses in the runner counters.
func TestZooPooledCountersProveReuse(t *testing.T) {
	// One worker makes reuse deterministic: the two traces of each policy
	// run back-to-back, so the second always finds the first's parked
	// engine. (With N workers same-key jobs can run concurrently and each
	// build fresh; parallel reuse is the runner's own tests' concern.)
	a, b := twoProfiles(t)
	pool := runner.NewIsolated(1, runner.NewCache())
	var jobs []runner.Job
	for _, name := range Names() {
		name := name
		for _, prof := range []trace.Profile{a, b} {
			jobs = append(jobs, runner.Job{
				Build: func() ooo.Config {
					cfg := baseConfig()
					if err := Install(&cfg, name); err != nil {
						t.Error(err)
					}
					return cfg
				},
				Profile: prof,
				Uops:    3_000,
				Warmup:  500,
			})
		}
	}
	first := pool.Run(jobs)
	second := pool.Run(jobs) // every job now memoized
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("job %d: memoized rerun diverged", i)
		}
	}
	c := pool.Counters()
	if c.Uncached != 0 {
		t.Fatalf("Uncached = %d, want 0 (zoo configs must be describable)", c.Uncached)
	}
	if c.MemoHits+c.Coalesced < int64(len(jobs)) {
		t.Fatalf("MemoHits(%d)+Coalesced(%d) < %d: second sweep was not served from cache",
			c.MemoHits, c.Coalesced, len(jobs))
	}
	if c.EngineReuses == 0 {
		t.Fatal("EngineReuses = 0: zoo engines were never recycled")
	}
}
