package policies

import (
	"loadsched/internal/cache"
	"loadsched/internal/ooo"
)

// Hermes-style perceptron off-chip load prediction (Bera et al., MICRO
// 2022). Hermes observes that the binary question that matters most is
// whether a load leaves the chip entirely: off-chip loads dominate stall
// time, and a cheap perceptron over hashed program features predicts them
// accurately enough to act on. Here the prediction feeds the scheduler
// instead of a prefetch request: a predicted off-chip load wakes its
// dependents at the memory latency (the AM-PM case of §2.2, where catching
// the miss early is free), and everything else falls back to the base
// policy's prediction.
//
// The predictor is a hashed-perceptron: one signed weight table per
// feature, indexed by a mixed hash of the feature value; the weight sum
// against a fixed activation threshold is the prediction, and training
// nudges the weights on mispredictions or low-confidence sums (the classic
// perceptron margin rule).
const (
	// hermesTables is the number of feature tables (ip, line, page, and
	// the ip-xor combinations — the spirit of Hermes' program features).
	hermesTables = 5
	// hermesIndexBits sizes each weight table.
	hermesIndexBits = 11
	// hermesWeightMax / hermesWeightMin clamp weights to 6-bit signed.
	hermesWeightMax = 31
	hermesWeightMin = -32
	// hermesActivate is the sum threshold above which the load is
	// predicted off-chip.
	hermesActivate = 2
	// hermesTheta is the training margin: correct predictions with
	// |sum| <= hermesTheta still train.
	hermesTheta = 14
)

// hermesKey canonically describes the predictor geometry for memo keys.
const hermesKey = "hermes(perceptron,t5x2048,w6,act2,theta14)"

// hermesPolicy wraps the default policy with the off-chip perceptron.
type hermesPolicy struct {
	ooo.SpeculationPolicy
	weights [hermesTables][1 << hermesIndexBits]int8
}

func newHermes(base ooo.Config, deps ooo.PolicyDeps) ooo.SpeculationPolicy {
	return &hermesPolicy{SpeculationPolicy: ooo.DefaultPolicy(base, deps)}
}

// hermesMix finalizes a feature value into a table index (the 64-bit
// variant of the splitmix64 finalizer — deterministic and well spread).
func hermesMix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 29
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 32
	return v
}

// features derives the per-table feature values for one access.
func hermesFeatures(ip, addr uint64) [hermesTables]uint64 {
	line, page := addr>>6, addr>>12
	return [hermesTables]uint64{ip, line, page, ip ^ line, ip ^ page}
}

// sum accumulates the perceptron response for one access.
func (p *hermesPolicy) sum(ip, addr uint64) int {
	const mask = 1<<hermesIndexBits - 1
	s := 0
	for t, f := range hermesFeatures(ip, addr) {
		s += int(p.weights[t][hermesMix(f)&mask])
	}
	return s
}

// PredictLevel overrides the base policy: a perceptron-predicted off-chip
// load is scheduled for the memory latency; otherwise the base policy
// (typically always-hit) decides.
func (p *hermesPolicy) PredictLevel(ip, addr uint64, now int64) cache.Level {
	if p.sum(ip, addr) >= hermesActivate {
		return cache.Memory
	}
	return p.SpeculationPolicy.PredictLevel(ip, addr, now)
}

// TrainRetire trains the base predictors (CHT, bank) first, then applies
// the perceptron margin rule against the load's actual servicing level.
func (p *hermesPolicy) TrainRetire(ev ooo.TrainEvent) {
	p.SpeculationPolicy.TrainRetire(ev)
	const mask = 1<<hermesIndexBits - 1
	s := p.sum(ev.IP, ev.Addr)
	offchip := ev.Level == cache.Memory
	predicted := s >= hermesActivate
	if predicted == offchip && abs(s) > hermesTheta {
		return
	}
	for t, f := range hermesFeatures(ev.IP, ev.Addr) {
		w := &p.weights[t][hermesMix(f)&mask]
		if offchip {
			if *w < hermesWeightMax {
				*w++
			}
		} else if *w > hermesWeightMin {
			*w--
		}
	}
}

// Reset implements ooo.PolicyResetter: base predictors and every weight
// table return to construction state.
func (p *hermesPolicy) Reset() {
	resetBase(p.SpeculationPolicy)
	for t := range p.weights {
		p.weights[t] = [1 << hermesIndexBits]int8{}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
