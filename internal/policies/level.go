package policies

import (
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/ooo"
)

// Cache-level prediction (Jalili & Erez): generalize the paper's binary
// hit/miss HMP to predict which hierarchy level services the load, so the
// scheduler wakes dependents at the L1, L2 or memory latency instead of
// collapsing every miss to one penalty class. The predictor is the
// cascaded TwoStage of internal/hitmiss — the §2.2 local predictor deciding
// L1 hit vs miss, with a smaller second stage splitting misses into L2 vs
// memory — here driven through the policy seam rather than the Config.HMP
// field, which keeps the base machine's always-hit accounting untouched
// for every other decision.

// cacheLevelKey canonically describes the two-stage geometry (the
// NewTwoStage construction parameters) for memo keys.
const cacheLevelKey = "cachelevel(two-stage,l1=local(11,8,2),l2=local(9,6,2))"

// cacheLevelPolicy wraps the default policy with the level predictor.
type cacheLevelPolicy struct {
	ooo.SpeculationPolicy
	levels *hitmiss.TwoStage
}

func newCacheLevel(base ooo.Config, deps ooo.PolicyDeps) ooo.SpeculationPolicy {
	return &cacheLevelPolicy{
		SpeculationPolicy: ooo.DefaultPolicy(base, deps),
		levels:            hitmiss.NewTwoStage(),
	}
}

// PredictLevel overrides the base policy with the cascaded prediction.
func (p *cacheLevelPolicy) PredictLevel(ip, addr uint64, now int64) cache.Level {
	return p.levels.PredictLevel(ip, addr, now)
}

// TrainRetire trains the base predictors first, then the level cascade
// with the actual servicing level.
func (p *cacheLevelPolicy) TrainRetire(ev ooo.TrainEvent) {
	p.SpeculationPolicy.TrainRetire(ev)
	p.levels.UpdateLevel(ev.IP, ev.Addr, ev.Now, ev.Level)
}

// Reset implements ooo.PolicyResetter.
func (p *cacheLevelPolicy) Reset() {
	resetBase(p.SpeculationPolicy)
	p.levels.Reset()
}
