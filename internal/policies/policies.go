// Package policies is a zoo of related-work speculation policies expressed
// as ooo.SpeculationPolicy constructors — the head-to-head the ROADMAP asks
// for, made practical by the runner's described-custom-policy support. Each
// entry wraps the built-in DefaultPolicy (so ordering, bank steering and
// CHT training stay exactly the paper's §3.1 machine) and replaces the
// load-latency prediction the scheduler uses to wake dependents:
//
//   - hermes: perceptron off-chip prediction in the style of Hermes
//     (Bera et al., MICRO 2022) — multiple hashed program features vote on
//     whether the load leaves the chip entirely.
//   - cachelevel: L1/L2/memory cache-level prediction generalizing the
//     paper's binary HMP (Jalili & Erez), via the cascaded two-stage
//     predictor of internal/hitmiss.
//   - loaddelay: real-time per-IP load-delay tracking (Diavastos & Carlson)
//     — an EWMA of each load's observed latency, quantized back to the
//     nearest hierarchy level.
//
// Every policy is deterministic, fully determined by its Entry.Key plus the
// base configuration, and implements ooo.PolicyResetter — so installed
// configs are memoizable by runner.ConfigKey and reusable by the engine
// pool, the contract DESIGN.md §12 documents.
package policies

import (
	"fmt"

	"loadsched/internal/ooo"
)

// Entry names one zoo policy.
type Entry struct {
	// Name is the short label used by Install, the tournament experiment
	// and the CLI.
	Name string
	// Key is the canonical ooo.Config.PolicyKey component: it encodes the
	// policy's algorithm and table geometry, so two configs with equal Key
	// (and equal remaining fields) simulate identically.
	Key string
	// Paper cites the related work the policy models.
	Paper string
	// build constructs the policy over the base (pre-Install) config.
	build func(base ooo.Config, deps ooo.PolicyDeps) ooo.SpeculationPolicy
}

// entries is the registry, in tournament order.
var entries = []Entry{
	{
		Name:  "hermes",
		Key:   hermesKey,
		Paper: "Bera et al., \"Hermes: Accelerating Long-Latency Load Requests via Perceptron-Based Off-Chip Load Prediction\", MICRO 2022",
		build: newHermes,
	},
	{
		Name:  "cachelevel",
		Key:   cacheLevelKey,
		Paper: "Jalili & Erez, cache-level prediction generalizing binary hit-miss prediction",
		build: newCacheLevel,
	},
	{
		Name:  "loaddelay",
		Key:   loadDelayKey,
		Paper: "Diavastos & Carlson, real-time load-delay tracking for instruction scheduling",
		build: newLoadDelay,
	},
}

// Entries returns the registry in tournament order.
func Entries() []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out
}

// Names lists the zoo policy names in tournament order.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// Install rewrites cfg to run the named zoo policy: it snapshots the
// current configuration as the base machine, then sets NewPolicy to the
// entry's constructor and PolicyKey to its canonical description, making
// the result memoizable and poolable by internal/runner. The constructed
// policy reads the base snapshot, not the installed config, so later
// mutations (e.g. the runner pinning WarmupUops) do not reach it — no zoo
// policy consults WarmupUops. Installing over a config that already
// carries a custom policy is an error.
func Install(cfg *ooo.Config, name string) error {
	if cfg.NewPolicy != nil {
		return fmt.Errorf("policies: config already carries a custom policy (key %q)", cfg.PolicyKey)
	}
	for _, e := range entries {
		if e.Name != name {
			continue
		}
		base := *cfg
		cfg.PolicyKey = e.Key
		cfg.NewPolicy = func(deps ooo.PolicyDeps) ooo.SpeculationPolicy {
			return e.build(base, deps)
		}
		return nil
	}
	return fmt.Errorf("policies: unknown policy %q (have %v)", name, Names())
}

// resetBase resets the embedded default policy; every zoo policy's Reset
// starts here. Interface embedding does not promote the concrete Reset, so
// the forwarding is explicit.
func resetBase(p ooo.SpeculationPolicy) { p.(ooo.PolicyResetter).Reset() }
