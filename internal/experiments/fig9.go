package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig9Row is one CHT configuration's behavior on the SysmarkNT collision
// stream: the four predicted/actual buckets as fractions of conflicting
// loads (the figure's stacked bars) and of all loads (the values quoted in
// the text, e.g. "2K Full-CHT: 3.4% ANC-PC and 0.9% AC-PNC").
type Fig9Row struct {
	// Kind is full / tagless / tagged / combined.
	Kind string
	// Entries is the table size swept.
	Entries int
	// Class tallies the four buckets; NotConflicting loads are excluded
	// from the figure but tracked for the of-all-loads percentages.
	Class memdep.Classification
}

// fig9Sweep defines the paper's size sweeps per organization.
type fig9Sweep struct {
	kind    string
	entries []int
	make    func(entries int) memdep.Predictor
}

func fig9Sweeps() []fig9Sweep {
	return []fig9Sweep{
		{"full", []int{128, 256, 512, 1024, 2048},
			func(n int) memdep.Predictor { return memdep.NewFullCHT(n, 4, 2, true) }},
		{"tagless", []int{2048, 4096, 8192, 16384, 32768},
			func(n int) memdep.Predictor { return memdep.NewTaglessCHT(n, 1, false) }},
		{"tagged", []int{128, 256, 512, 1024, 2048},
			func(n int) memdep.Predictor { return memdep.NewImplicitCHT(n, 4, false) }},
		{"combined", []int{128, 256, 512, 1024, 2048},
			func(n int) memdep.Predictor { return memdep.NewCombinedCHT(n, 4, 4096, false) }},
	}
}

// Fig9 reproduces Figure 9 (CHT Performance): each table organization and
// size is fed the same collision stream — gathered from one simulator pass
// per SysmarkNT trace — and classified into AC-PC / AC-PNC / ANC-PC /
// ANC-PNC. The paper's shape: the Full CHT minimizes ANC-PC (it can unlearn);
// the sticky tagged-only table minimizes AC-PNC at the cost of ANC-PC; the
// combined table pushes AC-PNC lowest of all; the tagless table improves
// steadily with size as aliasing fades.
//
// The simulator passes that gather the collision streams are independent
// per trace and execute concurrently; the predictors, whose state carries
// across trace boundaries, then classify the captured streams serially in
// trace order — exactly the event sequence the serial pass produced.
func Fig9(o Options) []Fig9Row {
	type slot struct {
		pred memdep.Predictor
		row  *Fig9Row
	}
	var slots []slot
	var rows []Fig9Row
	for _, sw := range fig9Sweeps() {
		for _, n := range sw.entries {
			rows = append(rows, Fig9Row{Kind: sw.kind, Entries: n})
		}
	}
	i := 0
	for _, sw := range fig9Sweeps() {
		for _, n := range sw.entries {
			slots = append(slots, slot{pred: sw.make(n), row: &rows[i]})
			i++
		}
	}

	traces := o.groupTraces(trace.GroupSysmarkNT)
	streams := runner.Map(o.pool(), len(traces), func(ti int) []ooo.LoadEvent {
		var evs []ooo.LoadEvent
		cfg := baseConfig(memdep.Traditional)
		cfg.WarmupUops = o.EffectiveWarmup()
		cfg.OnLoadRetire = func(ev ooo.LoadEvent) { evs = append(evs, ev) }
		ooo.NewEngine(cfg, trace.Replay(traces[ti])).Run(o.Uops)
		return evs
	})
	for _, evs := range streams {
		for _, ev := range evs {
			for _, s := range slots {
				pred := s.pred.Lookup(ev.IP).Colliding
				s.row.Class.Loads++
				switch {
				case !ev.Conflicting:
					s.row.Class.NotConflicting++
				case ev.Colliding && pred:
					s.row.Class.ACPC++
				case ev.Colliding && !pred:
					s.row.Class.ACPNC++
				case !ev.Colliding && pred:
					s.row.Class.ANCPC++
				default:
					s.row.Class.ANCPNC++
				}
				s.pred.Record(ev.IP, ev.Colliding, ev.Distance)
			}
		}
	}
	return rows
}

// Fig9Table renders Figure 9 (fractions of conflicting loads, as the
// figure's y-axis) plus the of-all-loads numbers the text quotes.
func Fig9Table(rows []Fig9Row) stats.Table {
	t := stats.Table{
		Title: "Figure 9 — CHT Performance (SysmarkNT)",
		Note:  "bucket shares of conflicting loads; (all) columns are % of all loads as quoted in §4.1",
		Columns: []string{"CHT", "entries", "AC-PC", "AC-PNC", "ANC-PC", "ANC-PNC",
			"ANC-PC(all)", "AC-PNC(all)"},
	}
	for _, r := range rows {
		c := r.Class
		t.AddRow(r.Kind, fmt.Sprintf("%d", r.Entries),
			stats.Pct(c.FracOfConflicting(c.ACPC)),
			stats.Pct(c.FracOfConflicting(c.ACPNC)),
			stats.Pct(c.FracOfConflicting(c.ANCPC)),
			stats.Pct(c.FracOfConflicting(c.ANCPNC)),
			stats.Pct2(c.FracOfLoads(c.ANCPC)),
			stats.Pct2(c.FracOfLoads(c.ACPNC)))
	}
	return t
}
