package experiments

import (
	"strings"
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

func TestFig5Chart(t *testing.T) {
	rows := []Fig5Row{
		{Group: "A", Class: memdep.Classification{Loads: 100, ACPC: 10, ANCPNC: 60, NotConflicting: 30}},
		{Group: "B", Class: memdep.Classification{Loads: 100, ACPC: 5, ANCPNC: 65, NotConflicting: 30}},
	}
	out := Fig5Chart(rows).String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "10.0%") {
		t.Fatalf("chart missing data: %q", out)
	}
}

func TestFig6Chart(t *testing.T) {
	rows := []Fig6Row{
		{Window: 8, Class: memdep.Classification{Loads: 100, ACPC: 2}},
		{Window: 128, Class: memdep.Classification{Loads: 100, ACPC: 12}},
	}
	out := Fig6Chart(rows).String()
	if !strings.Contains(out, "window 8") || !strings.Contains(out, "window 128") {
		t.Fatalf("chart missing windows: %q", out)
	}
}

func TestFig7Chart(t *testing.T) {
	r := Fig7Result{
		Traces: []string{"x"},
		Speedup: map[memdep.Scheme][]float64{
			memdep.Traditional:   {1.0},
			memdep.Opportunistic: {1.09},
			memdep.Postponing:    {1.06},
			memdep.Inclusive:     {1.14},
			memdep.Exclusive:     {1.16},
			memdep.Perfect:       {1.17},
		},
	}
	out := Fig7Chart(r).String()
	// The Perfect bar must be the longest and Traditional empty.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var tradBlocks, perfBlocks int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.Contains(l, "Traditional") {
			tradBlocks = n
		}
		if strings.Contains(l, "Perfect") {
			perfBlocks = n
		}
	}
	if tradBlocks != 0 {
		t.Fatalf("baseline bar must be empty: %q", out)
	}
	if perfBlocks == 0 {
		t.Fatalf("perfect bar empty: %q", out)
	}
}

func TestFig11And12Charts(t *testing.T) {
	cells := []Fig11Cell{
		{Group: trace.GroupSpecInt95, Predictor: "local", Speedup: 1.02},
		{Group: trace.GroupSysmarkNT, Predictor: "local", Speedup: 1.01},
		{Group: trace.GroupSpecInt95, Predictor: "chooser", Speedup: 1.01},
		{Group: trace.GroupSysmarkNT, Predictor: "chooser", Speedup: 1.0},
		{Group: trace.GroupSpecInt95, Predictor: "local+timing", Speedup: 1.03},
		{Group: trace.GroupSysmarkNT, Predictor: "local+timing", Speedup: 1.02},
		{Group: trace.GroupSpecInt95, Predictor: "chooser+timing", Speedup: 1.02},
		{Group: trace.GroupSysmarkNT, Predictor: "chooser+timing", Speedup: 1.01},
		{Group: trace.GroupSpecInt95, Predictor: "perfect", Speedup: 1.06},
		{Group: trace.GroupSysmarkNT, Predictor: "perfect", Speedup: 1.04},
	}
	out := Fig11Chart(cells).String()
	if !strings.Contains(out, "perfect") {
		t.Fatalf("fig11 chart: %q", out)
	}
	rows := []Fig12Row{{Group: "G", Predictor: "A"}}
	rows[0].Stats.Total = 100
	rows[0].Stats.Correct = 49
	rows[0].Stats.Wrong = 1
	out = Fig12Chart(rows, 5).String()
	if !strings.Contains(out, "G/A") {
		t.Fatalf("fig12 chart: %q", out)
	}
}

func TestBankPolicies(t *testing.T) {
	rows := BankPolicies(Options{Uops: 40000, Warmup: 10000, TracesPerGroup: 1})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]BankPolicyRow{}
	for _, r := range rows {
		if r.Stats.Total == 0 {
			t.Fatalf("%s saw no loads", r.Policy)
		}
		byName[r.Policy] = r
	}
	// The confidence-gated policies must trade rate for accuracy relative
	// to the plain majority vote.
	maj := byName["majority"]
	for _, n := range []string{"high-confidence", "confidence-weighted"} {
		r := byName[n]
		if r.Stats.Rate() > maj.Stats.Rate() {
			t.Errorf("%s rate (%.2f) above majority (%.2f)", n, r.Stats.Rate(), maj.Stats.Rate())
		}
		if r.Stats.Accuracy()+0.01 < maj.Stats.Accuracy() {
			t.Errorf("%s accuracy (%.3f) clearly below majority (%.3f)", n, r.Stats.Accuracy(), maj.Stats.Accuracy())
		}
	}
	_ = BankPoliciesTable(rows)
}
