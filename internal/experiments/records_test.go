package experiments

import (
	"testing"

	"loadsched/internal/results"
)

// TestAllRecords runs the full record sweep once on a quick preset and
// checks the structural contract the CLI and facade rely on: one valid
// record per figure ID, in order, with non-empty rows and the echoed
// options.
func TestAllRecords(t *testing.T) {
	o := parallelOptions(8)
	recs := AllRecords(o)
	if len(recs) != len(FigureIDs) {
		t.Fatalf("AllRecords returned %d records, want %d", len(recs), len(FigureIDs))
	}
	for i, rec := range recs {
		if rec.ID != FigureIDs[i] {
			t.Errorf("record %d has id %q, want %q", i, rec.ID, FigureIDs[i])
		}
		if err := rec.Validate(); err != nil {
			t.Errorf("record %q invalid: %v", rec.ID, err)
		}
		if rec.Options != recordOptions(o) {
			t.Errorf("record %q echoes options %+v", rec.ID, rec.Options)
		}
		if n := rowCount(rec); n == 0 {
			t.Errorf("record %q has no rows", rec.ID)
		}
	}
}

func rowCount(rec results.Record) int {
	switch rows := rec.Rows.(type) {
	case []results.ClassificationRow:
		return len(rows)
	case []results.SpeedupRow:
		return len(rows)
	case []results.CHTRow:
		return len(rows)
	case []results.HitMissRow:
		return len(rows)
	case []results.BankRow:
		return len(rows)
	case [][]string:
		return len(rows)
	}
	return 0
}

// TestFigureRecordUnknownID pins the error path the CLI surfaces.
func TestFigureRecordUnknownID(t *testing.T) {
	if _, err := FigureRecord("fig99", parallelOptions(1)); err == nil {
		t.Fatal("unknown figure id must error")
	}
}

// TestFig5RecordShape spot-checks one record's semantic content: a row per
// trace group plus the aggregate, with load-share fractions summing to 1.
func TestFig5RecordShape(t *testing.T) {
	o := parallelOptions(8)
	rec := Fig5Record(o, Fig5(o))
	rows := rec.Rows.([]results.ClassificationRow)
	if len(rows) < 2 {
		t.Fatalf("fig5 record has %d rows", len(rows))
	}
	if last := rows[len(rows)-1]; last.Key != "average" {
		t.Errorf("last row key = %q, want average", last.Key)
	}
	for _, r := range rows {
		if r.Loads == 0 {
			t.Errorf("row %q simulated no loads", r.Key)
			continue
		}
		sum := r.FracAC + r.FracANC + r.FracNoConflict
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("row %q fractions sum to %v, want 1", r.Key, sum)
		}
	}
}
