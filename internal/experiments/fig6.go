package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig6Windows are the scheduling-window sizes Figure 6 sweeps.
var Fig6Windows = []int{8, 16, 32, 64, 128}

// Fig6Row is one window size's classification on the SysmarkNT traces.
type Fig6Row struct {
	Window int
	Class  memdep.Classification
}

// Fig6 reproduces Figure 6 (Opportunities vs Window Size): as the scheduling
// window grows from 8 to 128 entries, more stores are in flight when each
// load schedules, so the AC share rises steadily while the no-conflict share
// falls — enlarging the payoff of a collision predictor. All (window, trace)
// runs execute concurrently; the 32-entry column shares its memoized
// baseline with Figure 5.
func Fig6(o Options) []Fig6Row {
	traces := o.groupTraces(trace.GroupSysmarkNT)
	var jobs []runner.Job
	for _, w := range Fig6Windows {
		for _, p := range traces {
			jobs = append(jobs, o.job(func() ooo.Config {
				cfg := baseConfig(memdep.Traditional)
				cfg.Window = w
				return cfg
			}, p))
		}
	}
	sts := o.pool().Run(jobs)
	rows := make([]Fig6Row, len(Fig6Windows))
	for i, w := range Fig6Windows {
		var cl memdep.Classification
		for _, st := range sts[i*len(traces) : (i+1)*len(traces)] {
			cl.Add(st.Class)
		}
		rows[i] = Fig6Row{Window: w, Class: cl}
	}
	return rows
}

// Fig6Table renders Figure 6.
func Fig6Table(rows []Fig6Row) stats.Table {
	t := stats.Table{
		Title:   "Figure 6 — Opportunities vs Scheduling Window Size (SysmarkNT)",
		Note:    "paper: AC share grows and no-conflict share shrinks as the window widens",
		Columns: []string{"window", "AC", "ANC", "no-conflict"},
	}
	for _, r := range rows {
		c := r.Class
		t.AddRow(fmt.Sprintf("%d", r.Window),
			stats.Pct(c.FracOfLoads(c.AC())),
			stats.Pct(c.FracOfLoads(c.ANC())),
			stats.Pct(c.FracOfLoads(c.NotConflicting)))
	}
	return t
}
