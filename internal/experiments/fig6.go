package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig6Windows are the scheduling-window sizes Figure 6 sweeps.
var Fig6Windows = []int{8, 16, 32, 64, 128}

// Fig6Row is one window size's classification on the SysmarkNT traces.
type Fig6Row struct {
	Window int
	Class  memdep.Classification
}

// Fig6 reproduces Figure 6 (Opportunities vs Window Size): as the scheduling
// window grows from 8 to 128 entries, more stores are in flight when each
// load schedules, so the AC share rises steadily while the no-conflict share
// falls — enlarging the payoff of a collision predictor.
func Fig6(o Options) []Fig6Row {
	var rows []Fig6Row
	for _, w := range Fig6Windows {
		cfg := baseConfig(memdep.Traditional)
		cfg.Window = w
		var cl memdep.Classification
		for _, p := range o.groupTraces(trace.GroupSysmarkNT) {
			st := o.run(cfg, p)
			cl.Add(st.Class)
		}
		rows = append(rows, Fig6Row{Window: w, Class: cl})
	}
	return rows
}

// Fig6Table renders Figure 6.
func Fig6Table(rows []Fig6Row) stats.Table {
	t := stats.Table{
		Title:   "Figure 6 — Opportunities vs Scheduling Window Size (SysmarkNT)",
		Note:    "paper: AC share grows and no-conflict share shrinks as the window widens",
		Columns: []string{"window", "AC", "ANC", "no-conflict"},
	}
	for _, r := range rows {
		c := r.Class
		t.AddRow(fmt.Sprintf("%d", r.Window),
			stats.Pct(c.FracOfLoads(c.AC())),
			stats.Pct(c.FracOfLoads(c.ANC())),
			stats.Pct(c.FracOfLoads(c.NotConflicting)))
	}
	return t
}
