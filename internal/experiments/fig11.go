package experiments

import (
	"fmt"

	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig11Predictors are the HMP configurations of Figure 11, in display order.
var Fig11Predictors = []string{"local", "chooser", "local+timing", "chooser+timing", "perfect"}

// Fig11Groups are the figure's workloads.
var Fig11Groups = []string{trace.GroupSpecInt95, trace.GroupSysmarkNT}

// Fig11Cell is one (group, predictor) speedup over the no-HMP (always-hit)
// machine.
type Fig11Cell struct {
	Group     string
	Predictor string
	Speedup   float64
	// Dropped counts non-positive per-trace speedups excluded from the
	// cell's geometric mean; non-zero flags a degenerate simulation.
	Dropped int
}

// fig11Config builds the measurement machine of §4.2: the highest-performing
// configuration — 4 general and 2 memory execution units with perfect
// disambiguation — plus the requested hit-miss predictor.
func fig11Config(predictor string) ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = memdep.Perfect
	cfg.IntUnits = 4
	switch predictor {
	case "none":
	case "local":
		cfg.HMP = hitmiss.NewLocal()
	case "chooser":
		cfg.HMP = hitmiss.NewChooser()
	case "local+timing":
		cfg.HMP = hitmiss.NewLocal()
		cfg.UseTimingHMP = true
	case "chooser+timing":
		cfg.HMP = hitmiss.NewChooser()
		cfg.UseTimingHMP = true
	case "perfect":
		cfg.HMP = &hitmiss.Perfect{}
	default:
		panic("experiments: unknown HMP " + predictor)
	}
	return cfg
}

// Fig11 reproduces Figure 11 (Speedup of Hit-Miss Prediction). The paper's
// shape: a perfect HMP is worth ≈6% on this machine; the local predictor
// with timing information achieves about 45% of that (≈2.5%); timing
// information helps every predictor. All (group, predictor, trace) runs —
// including the always-hit baseline — execute concurrently.
func Fig11(o Options) []Fig11Cell {
	type block struct {
		gname string
		n     int
		start int // index of the group's "none" baseline jobs
	}
	var blocks []block
	var jobs []runner.Job
	for _, gname := range Fig11Groups {
		traces := o.groupTraces(gname)
		blocks = append(blocks, block{gname: gname, n: len(traces), start: len(jobs)})
		for _, pred := range append([]string{"none"}, Fig11Predictors...) {
			for _, p := range traces {
				jobs = append(jobs, o.job(func() ooo.Config { return fig11Config(pred) }, p))
			}
		}
	}
	sts := o.pool().Run(jobs)
	var cells []Fig11Cell
	for _, b := range blocks {
		base := make([]float64, b.n)
		for i := 0; i < b.n; i++ {
			base[i] = sts[b.start+i].IPC()
		}
		for pi, pred := range Fig11Predictors {
			sp := make([]float64, b.n)
			for i := 0; i < b.n; i++ {
				sp[i] = sts[b.start+(pi+1)*b.n+i].IPC() / base[i]
			}
			mean, dropped := stats.GeoMeanCounted(sp)
			cells = append(cells, Fig11Cell{Group: b.gname, Predictor: pred, Speedup: mean, Dropped: dropped})
		}
	}
	return cells
}

// Fig11Table renders Figure 11.
func Fig11Table(cells []Fig11Cell) stats.Table {
	t := stats.Table{
		Title:   "Figure 11 — Speedup of Hit-Miss Prediction (perfect disambiguation, EU4/MEM2)",
		Note:    "speedup over the always-hit machine; paper: perfect ≈ 1.06, local+timing ≈ 1.025",
		Columns: append([]string{"group"}, Fig11Predictors...),
	}
	byGroup := map[string]map[string]float64{}
	dropped := 0
	for _, c := range cells {
		if byGroup[c.Group] == nil {
			byGroup[c.Group] = map[string]float64{}
		}
		byGroup[c.Group][c.Predictor] = c.Speedup
		dropped += c.Dropped
	}
	var avg []string
	for _, g := range Fig11Groups {
		row := []string{g}
		for _, p := range Fig11Predictors {
			row = append(row, stats.F3(byGroup[g][p]))
		}
		t.AddRow(row...)
	}
	avg = append(avg, "average")
	for _, p := range Fig11Predictors {
		var xs []float64
		for _, g := range Fig11Groups {
			xs = append(xs, byGroup[g][p])
		}
		mean, d := stats.GeoMeanCounted(xs)
		dropped += d
		avg = append(avg, stats.F3(mean))
	}
	t.AddRow(avg...)
	if dropped > 0 {
		t.Note += fmt.Sprintf(" [warning: %d non-positive speedups excluded from means]", dropped)
	}
	return t
}
