package experiments

import (
	"loadsched/internal/memdep"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig7Result holds per-trace speedups of the ordering schemes over the
// Traditional baseline.
type Fig7Result struct {
	// Traces are the SysmarkNT trace names (cd ex fl pd pm pp wd wp).
	Traces []string
	// Speedup maps each scheme to its per-trace speedups (parallel to
	// Traces).
	Speedup map[memdep.Scheme][]float64
}

// Average returns a scheme's geometric-mean speedup across traces.
func (r *Fig7Result) Average(s memdep.Scheme) float64 {
	return stats.GeoMean(r.Speedup[s])
}

// Fig7 reproduces Figure 7 (Speedup vs Memory Ordering Scheme) on the
// SysmarkNT traces with the baseline machine and the paper's reference CHT
// (2K entries, 4-way, 2-bit counters). The paper's curve: Postponing ≈ +6%,
// Opportunistic ≈ +9%, Inclusive ≈ +14%, Exclusive ≈ +16%, Perfect ≈ +17% —
// the two predictor schemes capture most of the disambiguation headroom.
func Fig7(o Options) Fig7Result {
	res := Fig7Result{Speedup: map[memdep.Scheme][]float64{}}
	traces := o.groupTraces(trace.GroupSysmarkNT)
	base := make([]float64, len(traces))
	for i, p := range traces {
		res.Traces = append(res.Traces, p.Name)
		base[i] = o.run(baseConfig(memdep.Traditional), p).IPC()
	}
	for _, s := range memdep.Schemes() {
		for i, p := range traces {
			var ipc float64
			if s == memdep.Traditional {
				ipc = base[i]
			} else {
				ipc = o.run(baseConfig(s), p).IPC()
			}
			res.Speedup[s] = append(res.Speedup[s], ipc/base[i])
		}
	}
	return res
}

// Fig7Table renders Figure 7.
func Fig7Table(r Fig7Result) stats.Table {
	t := stats.Table{
		Title: "Figure 7 — Speedup vs Memory Ordering Scheme (SysmarkNT, 2K Full CHT)",
		Note:  "paper averages: Postponing 1.06, Opportunistic 1.09, Inclusive 1.14, Exclusive 1.16, Perfect 1.17",
	}
	t.Columns = append([]string{"scheme"}, r.Traces...)
	t.Columns = append(t.Columns, "NT_avg")
	for _, s := range memdep.Schemes() {
		row := []string{s.String()}
		for _, v := range r.Speedup[s] {
			row = append(row, stats.F3(v))
		}
		row = append(row, stats.F3(r.Average(s)))
		t.AddRow(row...)
	}
	return t
}
