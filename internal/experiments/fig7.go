package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig7Result holds per-trace speedups of the ordering schemes over the
// Traditional baseline.
type Fig7Result struct {
	// Traces are the SysmarkNT trace names (cd ex fl pd pm pp wd wp).
	Traces []string
	// Speedup maps each scheme to its per-trace speedups (parallel to
	// Traces).
	Speedup map[memdep.Scheme][]float64
}

// Average returns a scheme's geometric-mean speedup across traces.
func (r *Fig7Result) Average(s memdep.Scheme) float64 {
	return stats.GeoMean(r.Speedup[s])
}

// AverageCounted returns the geometric-mean speedup plus the number of
// non-positive per-trace values the mean had to exclude; a non-zero count
// flags a degenerate simulation that table and record producers surface.
func (r *Fig7Result) AverageCounted(s memdep.Scheme) (float64, int) {
	return stats.GeoMeanCounted(r.Speedup[s])
}

// Fig7 reproduces Figure 7 (Speedup vs Memory Ordering Scheme) on the
// SysmarkNT traces with the baseline machine and the paper's reference CHT
// (2K entries, 4-way, 2-bit counters). The paper's curve: Postponing ≈ +6%,
// Opportunistic ≈ +9%, Inclusive ≈ +14%, Exclusive ≈ +16%, Perfect ≈ +17% —
// the two predictor schemes capture most of the disambiguation headroom.
// All (scheme, trace) runs execute concurrently; the Traditional baseline
// appears once in the job list, serving both as the denominator and as its
// own table row (pinned to exactly 1.0 by x/x division).
func Fig7(o Options) Fig7Result {
	res := Fig7Result{Speedup: map[memdep.Scheme][]float64{}}
	traces := o.groupTraces(trace.GroupSysmarkNT)
	for _, p := range traces {
		res.Traces = append(res.Traces, p.Name)
	}
	schemes := memdep.Schemes()
	jobs := make([]runner.Job, 0, len(schemes)*len(traces))
	for _, s := range schemes {
		for _, p := range traces {
			jobs = append(jobs, o.schemeJob(s, p))
		}
	}
	sts := o.pool().Run(jobs)
	base := make([]float64, len(traces))
	for i := range traces {
		base[i] = sts[i].IPC() // schemes[0] is Traditional
	}
	for si, s := range schemes {
		for i := range traces {
			res.Speedup[s] = append(res.Speedup[s], sts[si*len(traces)+i].IPC()/base[i])
		}
	}
	return res
}

// Fig7Table renders Figure 7.
func Fig7Table(r Fig7Result) stats.Table {
	t := stats.Table{
		Title: "Figure 7 — Speedup vs Memory Ordering Scheme (SysmarkNT, 2K Full CHT)",
		Note:  "paper averages: Postponing 1.06, Opportunistic 1.09, Inclusive 1.14, Exclusive 1.16, Perfect 1.17",
	}
	t.Columns = append([]string{"scheme"}, r.Traces...)
	t.Columns = append(t.Columns, "NT_avg")
	dropped := 0
	for _, s := range memdep.Schemes() {
		row := []string{s.String()}
		for _, v := range r.Speedup[s] {
			row = append(row, stats.F3(v))
		}
		avg, d := r.AverageCounted(s)
		dropped += d
		row = append(row, stats.F3(avg))
		t.AddRow(row...)
	}
	if dropped > 0 {
		t.Note += fmt.Sprintf(" [warning: %d non-positive speedups excluded from averages]", dropped)
	}
	return t
}
