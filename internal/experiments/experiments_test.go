package experiments

import (
	"strings"
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// tiny returns options small enough for unit tests yet large enough for the
// distributional assertions below.
func tiny() Options {
	return Options{Uops: 40_000, Warmup: 10_000, TracesPerGroup: 2}
}

func TestFig5ShapesAndRendering(t *testing.T) {
	rows := Fig5(tiny())
	if len(rows) != 6 {
		t.Fatalf("Fig5 rows = %d, want 6 groups (SpecFP excluded)", len(rows))
	}
	for _, r := range rows {
		c := r.Class
		if c.Loads == 0 {
			t.Fatalf("%s: no loads", r.Group)
		}
		if c.NotConflicting+c.Conflicting() != c.Loads {
			t.Fatalf("%s: classification does not partition", r.Group)
		}
		ac := c.FracOfLoads(c.AC())
		if ac > 0.30 {
			t.Errorf("%s: AC fraction %.2f implausibly high (paper ≈0.10)", r.Group, ac)
		}
		if r.Group == trace.GroupSpecFP95 {
			t.Error("SpecFP95 must be excluded from the disambiguation runs")
		}
	}
	tbl := Fig5Table(rows)
	if !strings.Contains(tbl.String(), "Figure 5") {
		t.Error("table missing title")
	}
	if len(tbl.Rows) != len(rows)+1 { // + average row
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig6WindowTrend(t *testing.T) {
	rows := Fig6(tiny())
	if len(rows) != len(Fig6Windows) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's claim: AC grows with window size, no-conflict shrinks.
	first, last := rows[0].Class, rows[len(rows)-1].Class
	if last.FracOfLoads(last.AC()) <= first.FracOfLoads(first.AC()) {
		t.Errorf("AC share should grow with window: %.3f -> %.3f",
			first.FracOfLoads(first.AC()), last.FracOfLoads(last.AC()))
	}
	if last.FracOfLoads(last.NotConflicting) >= first.FracOfLoads(first.NotConflicting) {
		t.Errorf("no-conflict share should shrink with window: %.3f -> %.3f",
			first.FracOfLoads(first.NotConflicting), last.FracOfLoads(last.NotConflicting))
	}
	_ = Fig6Table(rows)
}

func TestFig7SchemeOrdering(t *testing.T) {
	r := Fig7(tiny())
	if len(r.Traces) != 2 {
		t.Fatalf("traces = %v", r.Traces)
	}
	trad := r.Average(memdep.Traditional)
	if trad != 1.0 {
		t.Fatalf("traditional average = %v, want 1", trad)
	}
	perf := r.Average(memdep.Perfect)
	incl := r.Average(memdep.Inclusive)
	excl := r.Average(memdep.Exclusive)
	opp := r.Average(memdep.Opportunistic)
	post := r.Average(memdep.Postponing)
	if perf <= 1.0 {
		t.Errorf("perfect disambiguation should speed up NT: %v", perf)
	}
	// The paper's ordering, with slack for short runs: the predictor schemes
	// approach Perfect and beat Postponing; Opportunistic trails Exclusive.
	if excl < post {
		t.Errorf("exclusive (%v) below postponing (%v)", excl, post)
	}
	if perf < incl*0.97 {
		t.Errorf("perfect (%v) far below inclusive (%v)", perf, incl)
	}
	if excl < opp*0.97 {
		t.Errorf("exclusive (%v) clearly below opportunistic (%v)", excl, opp)
	}
	tbl := Fig7Table(r)
	if len(tbl.Columns) != len(r.Traces)+2 {
		t.Errorf("table columns = %d", len(tbl.Columns))
	}
}

func TestFig8WidthTrend(t *testing.T) {
	o := Options{Uops: 25_000, Warmup: 8_000, TracesPerGroup: 1}
	cells := Fig8(o)
	want := len(Fig8Groups) * len(Fig8Machines) * len(fig8Schemes)
	if len(cells) != want {
		t.Fatalf("cells = %d want %d", len(cells), want)
	}
	// Perfect-speedup of the widest machine should be >= the narrowest one
	// on SysmarkNT (wider machines gain more, §4.1) — allow slack for the
	// small run.
	get := func(m MachineConfig) float64 {
		for _, c := range cells {
			if c.Group == trace.GroupSysmarkNT && c.Machine == m && c.Scheme == memdep.Perfect {
				return c.Speedup
			}
		}
		t.Fatal("cell missing")
		return 0
	}
	narrow, wide := get(Fig8Machines[0]), get(Fig8Machines[2])
	if wide < narrow*0.9 {
		t.Errorf("wide machine gains (%v) collapsed vs narrow (%v)", wide, narrow)
	}
	_ = Fig8Table(cells)
}

func TestFig9CHTShapes(t *testing.T) {
	rows := Fig9(tiny())
	if len(rows) != 20 {
		t.Fatalf("rows = %d want 20 (4 kinds × 5 sizes)", len(rows))
	}
	byKind := map[string][]Fig9Row{}
	for _, r := range rows {
		if r.Class.Loads == 0 {
			t.Fatalf("%s/%d saw no loads", r.Kind, r.Entries)
		}
		byKind[r.Kind] = append(byKind[r.Kind], r)
	}
	full := byKind["full"][4]     // 2K
	tagged := byKind["tagged"][4] // 2K
	comb := byKind["combined"][4] // 2K
	// Paper shape 1: the sticky tagged-only table has fewer AC-PNC but more
	// ANC-PC than the Full CHT.
	if tagged.Class.FracOfLoads(tagged.Class.ACPNC) > full.Class.FracOfLoads(full.Class.ACPNC) {
		t.Errorf("tagged AC-PNC (%.4f) should not exceed full (%.4f)",
			tagged.Class.FracOfLoads(tagged.Class.ACPNC), full.Class.FracOfLoads(full.Class.ACPNC))
	}
	if tagged.Class.FracOfLoads(tagged.Class.ANCPC) < full.Class.FracOfLoads(full.Class.ANCPC) {
		t.Errorf("tagged ANC-PC (%.4f) should exceed full (%.4f)",
			tagged.Class.FracOfLoads(tagged.Class.ANCPC), full.Class.FracOfLoads(full.Class.ANCPC))
	}
	// Paper shape 2: the combined table minimizes AC-PNC.
	if comb.Class.ACPNC > tagged.Class.ACPNC {
		t.Errorf("combined AC-PNC (%d) should not exceed tagged-only (%d)",
			comb.Class.ACPNC, tagged.Class.ACPNC)
	}
	// Paper shape 3: the tagless table improves (fewer mispredictions) with
	// size.
	tl := byKind["tagless"]
	smallBad := tl[0].Class.ANCPC + tl[0].Class.ACPNC
	bigBad := tl[len(tl)-1].Class.ANCPC + tl[len(tl)-1].Class.ACPNC
	if bigBad > smallBad {
		t.Errorf("tagless mispredictions grew with size: %d -> %d", smallBad, bigBad)
	}
	_ = Fig9Table(rows)
}

func TestFig10PredictorQuality(t *testing.T) {
	rows := Fig10(tiny())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var fp, others Fig10Row
	for _, r := range rows {
		if r.Local.Loads() == 0 {
			t.Fatalf("%s: no loads", r.Group)
		}
		switch r.Group {
		case trace.GroupSpecFP95:
			fp = r
		case "Others":
			others = r
		}
		// The chooser must not produce more false miss alarms than local
		// (its purpose, §2.2) — equality tolerated on tiny runs.
		if r.Chooser.AHPM > r.Local.AHPM+r.Local.AHPM/10+5 {
			t.Errorf("%s: chooser AH-PM (%d) above local (%d)", r.Group, r.Chooser.AHPM, r.Local.AHPM)
		}
	}
	// FP must be the most predictable group, Others the least (caught-miss
	// fraction ordering).
	caught := func(r Fig10Row) float64 {
		if r.Local.Misses() == 0 {
			return 0
		}
		return float64(r.Local.AMPM) / float64(r.Local.Misses())
	}
	if caught(fp) <= caught(others) {
		t.Errorf("FP caught fraction (%.2f) should exceed Others (%.2f)", caught(fp), caught(others))
	}
	_ = Fig10Table(rows)
}

func TestFig11HMPOrdering(t *testing.T) {
	o := Options{Uops: 40_000, Warmup: 10_000, TracesPerGroup: 2}
	cells := Fig11(o)
	if len(cells) != len(Fig11Groups)*len(Fig11Predictors) {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(g, p string) float64 {
		for _, c := range cells {
			if c.Group == g && c.Predictor == p {
				return c.Speedup
			}
		}
		t.Fatalf("cell %s/%s missing", g, p)
		return 0
	}
	for _, g := range Fig11Groups {
		perfect := get(g, "perfect")
		if perfect < 1.0 {
			t.Errorf("%s: perfect HMP slower than always-hit (%v)", g, perfect)
		}
		// Real predictors cannot beat the oracle (small tolerance for run
		// noise on tiny traces).
		for _, p := range []string{"local", "chooser", "local+timing", "chooser+timing"} {
			if v := get(g, p); v > perfect*1.02 {
				t.Errorf("%s: %s (%v) beats perfect (%v)", g, p, v, perfect)
			}
		}
		// Timing info must not hurt.
		if get(g, "local+timing") < get(g, "local")*0.99 {
			t.Errorf("%s: timing info hurt the local predictor", g)
		}
	}
	_ = Fig11Table(cells)
}

func TestFig12OperatingPoints(t *testing.T) {
	rows := Fig12(tiny())
	if len(rows) != len(Fig12Groups)*len(Fig12Predictors) {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(g, p string) Fig12Row {
		for _, r := range rows {
			if r.Group == g && r.Predictor == p {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", g, p)
		return Fig12Row{}
	}
	for _, g := range Fig12Groups {
		a, b := get(g, "A"), get(g, "B")
		c, addr := get(g, "C"), get(g, "Addr")
		// Rates: C and Addr are the high-rate predictors.
		if c.Stats.Rate() <= a.Stats.Rate() {
			t.Errorf("%s: C rate (%.2f) should exceed A (%.2f)", g, c.Stats.Rate(), a.Stats.Rate())
		}
		if addr.Stats.Rate() <= a.Stats.Rate() {
			t.Errorf("%s: Addr rate should exceed A", g)
		}
		// Every predictor must be far more often right than wrong.
		for _, r := range []Fig12Row{a, b, c, addr} {
			if r.Stats.Accuracy() < 0.9 {
				t.Errorf("%s/%s accuracy %.2f < 0.9", g, r.Predictor, r.Stats.Accuracy())
			}
			// The metric must decline with penalty.
			if r.Metric(0) < r.Metric(10) {
				t.Errorf("%s/%s metric grows with penalty", g, r.Predictor)
			}
		}
		// Addr is the most accurate, so its curve is flattest.
		slope := func(r Fig12Row) float64 { return r.Metric(0) - r.Metric(10) }
		if slope(addr) > slope(c) {
			t.Errorf("%s: Addr slope (%.3f) steeper than C (%.3f)", g, slope(addr), slope(c))
		}
	}
	_ = Fig12Table(rows)
}

func TestOptionsHelpers(t *testing.T) {
	o := DefaultOptions()
	if o.Uops <= 0 || o.Warmup <= 0 {
		t.Fatal("bad defaults")
	}
	q := Quick()
	if q.Uops >= o.Uops {
		t.Fatal("Quick should be smaller than default")
	}
	g, _ := trace.GroupByName(trace.GroupSpecInt95)
	if n := len(Options{TracesPerGroup: 3}.traces(g)); n != 3 {
		t.Fatalf("traces cap = %d", n)
	}
	if n := len(Options{}.traces(g)); n != len(g.Traces) {
		t.Fatalf("uncapped traces = %d", n)
	}
}

func TestGroupTracesPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Options{}.groupTraces("NoSuchGroup")
}
