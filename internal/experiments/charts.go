package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/stats"
)

// Chart builders: terminal bar-chart views of the figures that the paper
// draws as bar graphs. The CLI's -chart flag renders these under the
// tables.

// Fig5Chart draws the AC share per group.
func Fig5Chart(rows []Fig5Row) *stats.BarChart {
	c := &stats.BarChart{
		Title:       "AC (colliding) share of loads per group",
		FormatValue: stats.Pct,
	}
	for _, r := range rows {
		c.Add(r.Group, r.Class.FracOfLoads(r.Class.AC()))
	}
	return c
}

// Fig6Chart draws the AC share per window size.
func Fig6Chart(rows []Fig6Row) *stats.BarChart {
	c := &stats.BarChart{
		Title:       "AC share vs scheduling window (SysmarkNT)",
		FormatValue: stats.Pct,
	}
	for _, r := range rows {
		c.Add(fmt.Sprintf("window %d", r.Window), r.Class.FracOfLoads(r.Class.AC()))
	}
	return c
}

// Fig7Chart draws the average speedup per scheme, baseline-relative as the
// paper's y-axis (1.00 at the origin).
func Fig7Chart(r Fig7Result) *stats.BarChart {
	c := &stats.BarChart{
		Title:    "NT-average speedup over Traditional",
		Baseline: 1,
	}
	for _, s := range memdep.Schemes() {
		c.Add(s.String(), r.Average(s))
	}
	return c
}

// Fig11Chart draws the per-predictor average HMP speedup. Matching the
// sweep and table producers, non-positive speedups are excluded from the
// geometric means and surfaced as a caption instead of silently absorbed.
func Fig11Chart(cells []Fig11Cell) *stats.BarChart {
	c := &stats.BarChart{
		Title:    "Average speedup over always-hit scheduling",
		Baseline: 1,
	}
	sums := map[string][]float64{}
	dropped := 0
	for _, cell := range cells {
		sums[cell.Predictor] = append(sums[cell.Predictor], cell.Speedup)
		dropped += cell.Dropped
	}
	for _, p := range Fig11Predictors {
		mean, d := stats.GeoMeanCounted(sums[p])
		dropped += d
		c.Add(p, mean)
	}
	if dropped > 0 {
		c.Note = fmt.Sprintf("[warning: %d non-positive speedups excluded from means]", dropped)
	}
	return c
}

// Fig12Chart draws each predictor's metric at a representative penalty.
func Fig12Chart(rows []Fig12Row, penalty float64) *stats.BarChart {
	c := &stats.BarChart{
		Title: fmt.Sprintf("Bank-prediction gain metric at penalty %.0f (1.0 = ideal dual port)", penalty),
		Max:   1,
	}
	for _, r := range rows {
		c.Add(fmt.Sprintf("%s/%s", r.Group, r.Predictor), r.Metric(penalty))
	}
	return c
}
