package experiments

import (
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// CPIStackSchemes are the ordering schemes the CPI-stack view contrasts:
// the Traditional baseline (where ordering-wait cycles dominate the stall
// mix) against the Inclusive CHT scheme (where collision prediction
// converts most of them into base cycles, at the price of occasional
// collision-recovery bubbles).
var CPIStackSchemes = []memdep.Scheme{memdep.Traditional, memdep.Inclusive}

// CPIStackRow is one (trace group, scheme) pooled cycle attribution.
type CPIStackRow struct {
	Group  string
	Scheme memdep.Scheme
	// Stats is the pooled run statistics; Stats.CPI partitions Stats.Cycles.
	Stats ooo.Stats
}

// CPIStacks attributes every simulated cycle to a stall cause for each
// trace group under the contrast schemes. Cycle attribution is a pure
// observation layered on the stage boundaries, so these runs share memo
// entries with Figures 5–8 (same machine configurations).
func CPIStacks(o Options) []CPIStackRow {
	type span struct {
		group  string
		scheme memdep.Scheme
		lo, hi int
	}
	var spans []span
	var jobs []runner.Job
	for _, gname := range trace.GroupNames() {
		for _, s := range CPIStackSchemes {
			start := len(jobs)
			for _, p := range o.groupTraces(gname) {
				jobs = append(jobs, o.schemeJob(s, p))
			}
			spans = append(spans, span{gname, s, start, len(jobs)})
		}
	}
	sts := o.pool().Run(jobs)
	rows := make([]CPIStackRow, len(spans))
	for i, sp := range spans {
		var pooled ooo.Stats
		for _, st := range sts[sp.lo:sp.hi] {
			pooled.Add(st)
		}
		rows[i] = CPIStackRow{Group: sp.group, Scheme: sp.scheme, Stats: pooled}
	}
	return rows
}

// CPIStackTable renders the CPI stacks as per-cause shares of all cycles.
func CPIStackTable(rows []CPIStackRow) stats.Table {
	t := stats.Table{
		Title: "CPI Stack — cycle attribution by stall cause",
		Note:  "per-cause cycles partition total cycles; shares of all cycles shown",
		Columns: []string{"group", "scheme", "CPI", "base", "frontend", "window",
			"ports", "ordering", "bank", "coll-rec", "miss-replay", "data"},
	}
	for _, r := range rows {
		c := r.Stats.CPI
		cyc := float64(r.Stats.Cycles)
		if cyc == 0 {
			cyc = 1
		}
		share := func(v int64) string { return stats.Pct(float64(v) / cyc) }
		t.AddRow(r.Group, r.Scheme.String(),
			stats.F2(float64(r.Stats.Cycles)/float64(max64(1, int64(r.Stats.Uops)))),
			share(c.Base), share(c.Frontend), share(c.WindowFull),
			share(c.PortContention), share(c.OrderingWait), share(c.BankConflict),
			share(c.CollisionRecovery), share(c.MissReplay), share(c.DataStall))
	}
	return t
}

// CPIStackRecord builds the structured cpistack record; Validate enforces
// the partition invariant on every row.
func CPIStackRecord(o Options, rows []CPIStackRow) results.Record {
	out := make([]results.CPIStackRow, 0, len(rows))
	for _, r := range rows {
		c := r.Stats.CPI
		cyc := r.Stats.Cycles
		frac := func(v int64) float64 {
			if cyc == 0 {
				return 0
			}
			return float64(v) / float64(cyc)
		}
		cpi := 0.0
		if r.Stats.Uops > 0 {
			cpi = float64(cyc) / float64(r.Stats.Uops)
		}
		out = append(out, results.CPIStackRow{
			Key:    r.Group + "/" + r.Scheme.String(),
			Cycles: cyc, Uops: r.Stats.Uops, CPI: cpi,
			Base: c.Base, Frontend: c.Frontend, WindowFull: c.WindowFull,
			PortContention: c.PortContention, OrderingWait: c.OrderingWait,
			BankConflict: c.BankConflict, CollisionRecovery: c.CollisionRecovery,
			MissReplay: c.MissReplay, DataStall: c.DataStall,
			FracBase:     frac(c.Base),
			FracOrdering: frac(c.OrderingWait),
			FracData:     frac(c.DataStall),
		})
	}
	return results.New("cpistack", results.KindCPIStack,
		"CPI Stack — cycle attribution by stall cause", "", recordOptions(o), out)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
