package experiments

import (
	"fmt"
	"os"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// SweepKinds lists the sensitivity sweeps SweepTable accepts.
var SweepKinds = []string{"window", "penalty", "chtsize", "bankpolicies"}

// SweepTable runs one sensitivity sweep — design-space exploration beyond
// the paper's figures — and returns its rendered table. kind selects the
// axis (window size, collision penalty, Full-CHT size, or the §2.3 bank
// combination policies); group names the trace group the geomeans run over
// (ignored by bankpolicies, which is defined on SpecInt95).
//
// Previously this logic lived in the CLI; it moved here so the serve job
// API and the CLI execute the identical sweep.
func SweepTable(kind, group string, o Options) (stats.Table, error) {
	if kind == "bankpolicies" {
		return BankPoliciesTable(BankPolicies(o)), nil
	}
	g, ok := trace.GroupByName(group)
	if !ok {
		return stats.Table{}, fmt.Errorf("experiments: unknown group %q", group)
	}
	traces := o.traces(g)
	pool := o.pool()

	// runPoint executes one machine point over every trace concurrently (the
	// pool's cache reuses any point an earlier row already simulated) and
	// geo-means the IPCs. mut must be a pure config mutation: it is re-run
	// for every trace.
	var t stats.Table
	runPoint := func(mut func(*ooo.Config)) float64 {
		jobs := make([]runner.Job, len(traces))
		for i, p := range traces {
			jobs[i] = o.job(func() ooo.Config {
				cfg := ooo.DefaultConfig()
				mut(&cfg)
				return cfg
			}, p)
		}
		sts := pool.Run(jobs)
		ipc := make([]float64, len(sts))
		for i, st := range sts {
			ipc[i] = st.IPC()
		}
		m, dropped := stats.GeoMeanCounted(ipc)
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "loadsched: sweep %s: %d of %d traces produced non-positive IPC, excluded from the mean\n",
				kind, dropped, len(ipc))
		}
		return m
	}
	switch kind {
	case "window":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — IPC vs scheduling window (%s)", group),
			Columns: []string{"window", "Traditional", "Exclusive", "Perfect", "Excl speedup"},
		}
		for _, w := range []int{8, 16, 32, 64, 128} {
			trad := runPoint(func(c *ooo.Config) { c.Window = w })
			excl := runPoint(func(c *ooo.Config) {
				c.Window = w
				c.Scheme = memdep.Exclusive
				c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			})
			perf := runPoint(func(c *ooo.Config) { c.Window = w; c.Scheme = memdep.Perfect })
			t.AddRow(fmt.Sprintf("%d", w), stats.F3(trad), stats.F3(excl), stats.F3(perf),
				stats.F3(excl/trad))
		}
	case "penalty":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — ordering-scheme speedup vs collision penalty (%s)", group),
			Note:    "the paper's constant is 8 cycles (§3.1)",
			Columns: []string{"penalty", "Opportunistic", "Inclusive", "Perfect"},
		}
		for _, pen := range []int{0, 4, 8, 16, 32} {
			base := runPoint(func(c *ooo.Config) { c.CollisionPenalty = pen })
			row := []string{fmt.Sprintf("%d", pen)}
			for _, s := range []memdep.Scheme{memdep.Opportunistic, memdep.Inclusive, memdep.Perfect} {
				v := runPoint(func(c *ooo.Config) {
					c.CollisionPenalty = pen
					c.Scheme = s
					if s.UsesCHT() {
						c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
					}
				})
				row = append(row, stats.F3(v/base))
			}
			t.AddRow(row...)
		}
	case "chtsize":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — Inclusive-scheme speedup vs Full-CHT size (%s)", group),
			Columns: []string{"entries", "speedup"},
		}
		base := runPoint(func(c *ooo.Config) {})
		for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
			v := runPoint(func(c *ooo.Config) {
				c.Scheme = memdep.Inclusive
				c.CHT = memdep.NewFullCHT(n, 4, 2, true)
			})
			t.AddRow(fmt.Sprintf("%d", n), stats.F3(v/base))
		}
	default:
		return stats.Table{}, fmt.Errorf("experiments: unknown sweep %q (want window | penalty | chtsize | bankpolicies)", kind)
	}
	return t, nil
}

// SweepRecord runs one sweep and wraps the rendered table as a table-kind
// results/v1 record (positional string cells under the table's column
// names), exactly as the CLI has always emitted sweeps.
func SweepRecord(kind, group string, o Options) (results.Record, error) {
	t, err := SweepTable(kind, group, o)
	if err != nil {
		return results.Record{}, err
	}
	return results.NewTable("sweep-"+kind, t.Title, t.Note,
		results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
		t.Columns, t.Rows), nil
}
