package experiments

import (
	"fmt"
	"os"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// SweepKinds lists the sensitivity sweeps SweepTable accepts.
var SweepKinds = []string{"window", "penalty", "chtsize", "bankpolicies"}

// SweepTable runs one sensitivity sweep — design-space exploration beyond
// the paper's figures — and returns its rendered table. kind selects the
// axis (window size, collision penalty, Full-CHT size, or the §2.3 bank
// combination policies); group names the trace group the geomeans run over
// (ignored by bankpolicies, which is defined on SpecInt95).
//
// Previously this logic lived in the CLI; it moved here so the serve job
// API and the CLI execute the identical sweep.
func SweepTable(kind, group string, o Options) (stats.Table, error) {
	if kind == "bankpolicies" {
		return BankPoliciesTable(BankPolicies(o)), nil
	}
	g, ok := trace.GroupByName(group)
	if !ok {
		return stats.Table{}, fmt.Errorf("experiments: unknown group %q", group)
	}
	traces := o.traces(g)
	pool := o.pool()

	// The sweep is built in two passes so the whole design space executes as
	// ONE pool.Run: registration walks the axis and appends every point's
	// jobs (one per trace) to a single list, then the batch runner groups
	// the cross-product by workload and steps same-trace engines in
	// lockstep. point() closures read the shared result slice afterwards,
	// geo-meaning their span, so the rendered rows are byte-identical to
	// the old one-Run-per-point structure.
	var jobs []runner.Job
	var sts []ooo.Stats
	// addPoint registers one machine point over every trace and returns its
	// geomean-IPC thunk. mut must be a pure config mutation: it is re-run
	// for every trace.
	addPoint := func(mut func(*ooo.Config)) func() float64 {
		off := len(jobs)
		for _, p := range traces {
			jobs = append(jobs, o.job(func() ooo.Config {
				cfg := ooo.DefaultConfig()
				mut(&cfg)
				return cfg
			}, p))
		}
		return func() float64 {
			ipc := make([]float64, len(traces))
			for i := range ipc {
				ipc[i] = sts[off+i].IPC()
			}
			m, dropped := stats.GeoMeanCounted(ipc)
			if dropped > 0 {
				fmt.Fprintf(os.Stderr, "loadsched: sweep %s: %d of %d traces produced non-positive IPC, excluded from the mean\n",
					kind, dropped, len(ipc))
			}
			return m
		}
	}
	var t stats.Table
	var render []func()
	switch kind {
	case "window":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — IPC vs scheduling window (%s)", group),
			Columns: []string{"window", "Traditional", "Exclusive", "Perfect", "Excl speedup"},
		}
		for _, w := range []int{8, 16, 32, 64, 128} {
			trad := addPoint(func(c *ooo.Config) { c.Window = w })
			excl := addPoint(func(c *ooo.Config) {
				c.Window = w
				c.Scheme = memdep.Exclusive
				c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			})
			perf := addPoint(func(c *ooo.Config) { c.Window = w; c.Scheme = memdep.Perfect })
			w := w
			render = append(render, func() {
				tv, ev := trad(), excl()
				t.AddRow(fmt.Sprintf("%d", w), stats.F3(tv), stats.F3(ev), stats.F3(perf()),
					stats.F3(ev/tv))
			})
		}
	case "penalty":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — ordering-scheme speedup vs collision penalty (%s)", group),
			Note:    "the paper's constant is 8 cycles (§3.1)",
			Columns: []string{"penalty", "Opportunistic", "Inclusive", "Perfect"},
		}
		for _, pen := range []int{0, 4, 8, 16, 32} {
			base := addPoint(func(c *ooo.Config) { c.CollisionPenalty = pen })
			var pts []func() float64
			for _, s := range []memdep.Scheme{memdep.Opportunistic, memdep.Inclusive, memdep.Perfect} {
				pts = append(pts, addPoint(func(c *ooo.Config) {
					c.CollisionPenalty = pen
					c.Scheme = s
					if s.UsesCHT() {
						c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
					}
				}))
			}
			pen := pen
			render = append(render, func() {
				b := base()
				row := []string{fmt.Sprintf("%d", pen)}
				for _, pt := range pts {
					row = append(row, stats.F3(pt()/b))
				}
				t.AddRow(row...)
			})
		}
	case "chtsize":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — Inclusive-scheme speedup vs Full-CHT size (%s)", group),
			Columns: []string{"entries", "speedup"},
		}
		base := addPoint(func(c *ooo.Config) {})
		for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
			v := addPoint(func(c *ooo.Config) {
				c.Scheme = memdep.Inclusive
				c.CHT = memdep.NewFullCHT(n, 4, 2, true)
			})
			n := n
			render = append(render, func() {
				t.AddRow(fmt.Sprintf("%d", n), stats.F3(v()/base()))
			})
		}
	default:
		return stats.Table{}, fmt.Errorf("experiments: unknown sweep %q (want window | penalty | chtsize | bankpolicies)", kind)
	}
	sts = pool.Run(jobs)
	for _, r := range render {
		r()
	}
	return t, nil
}

// SweepRecord runs one sweep and wraps the rendered table as a table-kind
// results/v1 record (positional string cells under the table's column
// names), exactly as the CLI has always emitted sweeps.
func SweepRecord(kind, group string, o Options) (results.Record, error) {
	t, err := SweepTable(kind, group, o)
	if err != nil {
		return results.Record{}, err
	}
	return results.NewTable("sweep-"+kind, t.Title, t.Note,
		results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
		t.Columns, t.Rows), nil
}
