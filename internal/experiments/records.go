package experiments

import (
	"fmt"

	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/results"
	"loadsched/internal/stats"
)

// Record builders: every figure driver's structured counterpart to its
// FigNTable renderer. Each builder derives a versioned results.Record from
// the same rows the table is assembled from, so the machine-readable and
// human-readable views of a run can never disagree. Records carry only
// values that are pure functions of the Options (never worker counts or
// wall times), keeping emitted JSON/CSV byte-identical across -j settings.

// FigureIDs lists the figure record IDs in paper order.
var FigureIDs = []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}

// recordOptions echoes the deterministic subset of the options into a
// record envelope (Workers deliberately excluded).
func recordOptions(o Options) results.Options {
	return results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup}
}

// classificationRow flattens one Classification tally under a row key.
func classificationRow(key string, c memdep.Classification) results.ClassificationRow {
	return results.ClassificationRow{
		Key: key, Loads: c.Loads,
		ACPC: c.ACPC, ACPNC: c.ACPNC, ANCPC: c.ANCPC, ANCPNC: c.ANCPNC,
		NotConflicting: c.NotConflicting,
		FracAC:         c.FracOfLoads(c.AC()),
		FracANC:        c.FracOfLoads(c.ANC()),
		FracNoConflict: c.FracOfLoads(c.NotConflicting),
	}
}

// Fig5Record builds the structured record for Figure 5, including the
// all-groups aggregate row the table prints as "average".
func Fig5Record(o Options, rows []Fig5Row) results.Record {
	out := make([]results.ClassificationRow, 0, len(rows)+1)
	var total memdep.Classification
	for _, r := range rows {
		out = append(out, classificationRow(r.Group, r.Class))
		total.Add(r.Class)
	}
	out = append(out, classificationRow("average", total))
	return results.New("fig5", results.KindClassification,
		"Load Scheduling Classification (32-entry window)", "", recordOptions(o), out)
}

// Fig6Record builds the structured record for Figure 6.
func Fig6Record(o Options, rows []Fig6Row) results.Record {
	out := make([]results.ClassificationRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, classificationRow(fmt.Sprintf("window-%d", r.Window), r.Class))
	}
	return results.New("fig6", results.KindClassification,
		"Opportunities vs Scheduling Window Size (SysmarkNT)", "", recordOptions(o), out)
}

// Fig7Record builds the structured record for Figure 7: one row per
// (scheme, trace) speedup plus one aggregate row per scheme carrying the
// geometric mean and its excluded-value count.
func Fig7Record(o Options, r Fig7Result) results.Record {
	var out []results.SpeedupRow
	for _, s := range memdep.Schemes() {
		for i, v := range r.Speedup[s] {
			out = append(out, results.SpeedupRow{Scheme: s.String(), Trace: r.Traces[i], Speedup: v})
		}
		mean, dropped := r.AverageCounted(s)
		out = append(out, results.SpeedupRow{Scheme: s.String(), Aggregate: true,
			Speedup: mean, Dropped: dropped})
	}
	return results.New("fig7", results.KindSpeedup,
		"Speedup vs Memory Ordering Scheme (SysmarkNT, 2K Full CHT)", "", recordOptions(o), out)
}

// Fig8Record builds the structured record for Figure 8.
func Fig8Record(o Options, cells []Fig8Cell) results.Record {
	out := make([]results.SpeedupRow, 0, len(cells))
	for _, c := range cells {
		out = append(out, results.SpeedupRow{Group: c.Group, Machine: c.Machine.Label(),
			Scheme: c.Scheme.String(), Aggregate: true, Speedup: c.Speedup, Dropped: c.Dropped})
	}
	return results.New("fig8", results.KindSpeedup,
		"Speedup vs Machine Configuration", "", recordOptions(o), out)
}

// Fig9Record builds the structured record for Figure 9.
func Fig9Record(o Options, rows []Fig9Row) results.Record {
	out := make([]results.CHTRow, 0, len(rows))
	for _, r := range rows {
		c := r.Class
		out = append(out, results.CHTRow{
			Kind: r.Kind, Entries: r.Entries, Loads: c.Loads,
			ACPC: c.ACPC, ACPNC: c.ACPNC, ANCPC: c.ANCPC, ANCPNC: c.ANCPNC,
			FracACPC:     c.FracOfConflicting(c.ACPC),
			FracACPNC:    c.FracOfConflicting(c.ACPNC),
			FracANCPC:    c.FracOfConflicting(c.ANCPC),
			FracANCPNC:   c.FracOfConflicting(c.ANCPNC),
			ANCPCOfLoads: c.FracOfLoads(c.ANCPC),
			ACPNCOfLoads: c.FracOfLoads(c.ACPNC),
		})
	}
	return results.New("fig9", results.KindCHT,
		"CHT Performance (SysmarkNT)", "", recordOptions(o), out)
}

// Fig10Record builds the structured record for Figure 10: one row per
// (group, predictor) outcome tally.
func Fig10Record(o Options, rows []Fig10Row) results.Record {
	hm := func(group, predictor string, oc hitmiss.Outcomes) results.HitMissRow {
		caught := 0.0
		if oc.Misses() > 0 {
			caught = float64(oc.AMPM) / float64(oc.Misses())
		}
		return results.HitMissRow{
			Group: group, Predictor: predictor,
			AHPH: oc.AHPH, AHPM: oc.AHPM, AMPH: oc.AMPH, AMPM: oc.AMPM,
			FracAHPM:   oc.Frac(oc.AHPM),
			FracAMPM:   oc.Frac(oc.AMPM),
			FracMisses: oc.Frac(oc.Misses()),
			CaughtFrac: caught,
		}
	}
	out := make([]results.HitMissRow, 0, 2*len(rows))
	for _, r := range rows {
		out = append(out, hm(r.Group, "local", r.Local), hm(r.Group, "chooser", r.Chooser))
	}
	return results.New("fig10", results.KindHitMiss,
		"Hit-Miss Predictor Performance (statistical)", "", recordOptions(o), out)
}

// Fig11Record builds the structured record for Figure 11, including the
// cross-group aggregate row per predictor.
func Fig11Record(o Options, cells []Fig11Cell) results.Record {
	out := make([]results.SpeedupRow, 0, len(cells)+len(Fig11Predictors))
	byPred := map[string][]float64{}
	for _, c := range cells {
		out = append(out, results.SpeedupRow{Group: c.Group, Predictor: c.Predictor,
			Aggregate: true, Speedup: c.Speedup, Dropped: c.Dropped})
		byPred[c.Predictor] = append(byPred[c.Predictor], c.Speedup)
	}
	for _, p := range Fig11Predictors {
		mean, dropped := stats.GeoMeanCounted(byPred[p])
		out = append(out, results.SpeedupRow{Group: "average", Predictor: p,
			Aggregate: true, Speedup: mean, Dropped: dropped})
	}
	return results.New("fig11", results.KindSpeedup,
		"Speedup of Hit-Miss Prediction (perfect disambiguation, EU4/MEM2)", "",
		recordOptions(o), out)
}

// Fig12Record builds the structured record for Figure 12, with the §4.3
// gain metric evaluated over the figure's penalty axis.
func Fig12Record(o Options, rows []Fig12Row) results.Record {
	out := make([]results.BankRow, 0, len(rows))
	for _, r := range rows {
		metric := make([]float64, len(Fig12Penalties))
		for i, p := range Fig12Penalties {
			metric[i] = r.Metric(p)
		}
		out = append(out, results.BankRow{
			Group: r.Group, Predictor: r.Predictor,
			Total: r.Stats.Total, Correct: r.Stats.Correct, Wrong: r.Stats.Wrong,
			Rate: r.Stats.Rate(), Accuracy: r.Stats.Accuracy(),
			MetricByPenalty: metric,
		})
	}
	return results.New("fig12", results.KindBank,
		"Bank Predictor Comparison (metric vs penalty)", "", recordOptions(o), out)
}

// BankPoliciesRecord builds the structured record for the §2.3 combination
// policy sweep.
func BankPoliciesRecord(o Options, rows []BankPolicyRow) results.Record {
	out := make([]results.BankRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, results.BankRow{
			Policy: r.Policy,
			Total:  r.Stats.Total, Correct: r.Stats.Correct, Wrong: r.Stats.Wrong,
			Rate: r.Stats.Rate(), Accuracy: r.Stats.Accuracy(),
			MetricByPenalty: []float64{r.Stats.Metric(0), r.Stats.Metric(5), r.Stats.Metric(10)},
		})
	}
	return results.New("bankpolicies", results.KindBank,
		"§2.3 combination policies for bank prediction (SpecInt95)", "", recordOptions(o), out)
}

// FigureRecord runs one figure by ID and returns its structured record.
func FigureRecord(id string, o Options) (results.Record, error) {
	switch id {
	case "fig5":
		return Fig5Record(o, Fig5(o)), nil
	case "fig6":
		return Fig6Record(o, Fig6(o)), nil
	case "fig7":
		return Fig7Record(o, Fig7(o)), nil
	case "fig8":
		return Fig8Record(o, Fig8(o)), nil
	case "fig9":
		return Fig9Record(o, Fig9(o)), nil
	case "fig10":
		return Fig10Record(o, Fig10(o)), nil
	case "fig11":
		return Fig11Record(o, Fig11(o)), nil
	case "fig12":
		return Fig12Record(o, Fig12(o)), nil
	case "bankpolicies":
		return BankPoliciesRecord(o, BankPolicies(o)), nil
	case "cpistack":
		return CPIStackRecord(o, CPIStacks(o)), nil
	case "tournament":
		return TournamentRecord(o, Tournament(o)), nil
	default:
		return results.Record{}, fmt.Errorf("experiments: unknown figure record %q", id)
	}
}

// AllRecords runs every paper figure under o and returns the records in
// paper order — the structured counterpart of `loadsched all`.
func AllRecords(o Options) []results.Record {
	recs := make([]results.Record, 0, len(FigureIDs))
	for _, id := range FigureIDs {
		rec, err := FigureRecord(id, o)
		if err != nil {
			panic(err) // unreachable: FigureIDs are all known
		}
		recs = append(recs, rec)
	}
	return recs
}
