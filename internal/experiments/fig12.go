package experiments

import (
	"fmt"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// Fig12Predictors are the figure's bank predictors, in display order.
var Fig12Predictors = []string{"A", "B", "C", "Addr"}

// Fig12Groups are the figure's workloads (SysmarkNT behaved like SpecINT in
// the paper and is included as a bonus column by the CLI's full run).
var Fig12Groups = []string{trace.GroupSpecInt95, trace.GroupSpecFP95}

// Fig12Penalties is the x-axis of Figure 12.
var Fig12Penalties = []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// Fig12Row is one (group, predictor) statistical result; the metric curve
// over penalties derives from Stats via the §4.3 formula.
type Fig12Row struct {
	Group     string
	Predictor string
	Stats     bankpred.Stats
}

// Metric evaluates the row's gain metric at a penalty.
func (r Fig12Row) Metric(penalty float64) float64 { return r.Stats.Metric(penalty) }

func fig12Make(name string, banking cache.Banking) bankpred.Predictor {
	switch name {
	case "A":
		return bankpred.NewPredictorA()
	case "B":
		return bankpred.NewPredictorB()
	case "C":
		return bankpred.NewPredictorC()
	case "Addr":
		return bankpred.NewAddrBank(banking)
	default:
		panic("experiments: unknown bank predictor " + name)
	}
}

// Fig12 reproduces Figure 12 (Bank Predictor Comparison): each predictor
// observes the load stream in program order (statistical evaluation, §3.2)
// against a two-bank 64-byte-interleaved L1. The paper's operating points:
// prediction rates ≈50% for A and B, ≈70% for C and Addr; accuracies ≈97%
// for A and C, ≈98% for B and Addr. The metric at penalty 0 reads off the
// prediction rate; the slope reads off the accuracy.
//
// The predictor tables are reset between traces (per-trace runs), so each
// trace's replay is independent: all (group, trace) replays run concurrently
// with fresh predictors, and their tallies merge in trace order.
func Fig12(o Options) []Fig12Row {
	banking := cache.DefaultBanking()
	var profiles []trace.Profile
	var spans [][2]int
	for _, gname := range Fig12Groups {
		start := len(profiles)
		profiles = append(profiles, o.groupTraces(gname)...)
		spans = append(spans, [2]int{start, len(profiles)})
	}
	warmup := o.EffectiveWarmup()
	parts := runner.Map(o.pool(), len(profiles), func(ti int) []bankpred.Stats {
		preds := make([]bankpred.Predictor, len(Fig12Predictors))
		tallies := make([]bankpred.Stats, len(Fig12Predictors))
		for i, n := range Fig12Predictors {
			preds[i] = fig12Make(n, banking)
		}
		replayUops(profiles[ti], warmup+o.Uops, func(us []uop.UOp, base int) {
			for j := range us {
				up := &us[j]
				if up.Kind != uop.Load {
					continue
				}
				actual := banking.BankOf(up.Addr)
				for i, pr := range preds {
					bank, ok := pr.Predict(up.IP)
					if base+j >= warmup {
						tallies[i].Record(ok, ok && bank == actual)
					}
					if ab, isAddr := pr.(*bankpred.AddrBank); isAddr {
						ab.UpdateAddr(up.IP, up.Addr)
					} else {
						pr.Update(up.IP, actual)
					}
				}
			}
		})
		return tallies
	})
	var rows []Fig12Row
	for gi, gname := range Fig12Groups {
		tallies := make([]bankpred.Stats, len(Fig12Predictors))
		for _, part := range parts[spans[gi][0]:spans[gi][1]] {
			for i := range tallies {
				tallies[i].Add(part[i])
			}
		}
		for i, n := range Fig12Predictors {
			rows = append(rows, Fig12Row{Group: gname, Predictor: n, Stats: tallies[i]})
		}
	}
	return rows
}

// Fig12Table renders Figure 12 as the metric across penalties plus the
// underlying rate/accuracy operating points.
func Fig12Table(rows []Fig12Row) stats.Table {
	t := stats.Table{
		Title: "Figure 12 — Bank Predictor Comparison (metric vs penalty)",
		Note:  "paper: rate ≈50% (A,B) / ≈70% (C,Addr); accuracy ≈97% (A,C) / ≈98% (B,Addr)",
	}
	t.Columns = []string{"group", "pred", "rate", "acc"}
	for _, p := range Fig12Penalties {
		t.Columns = append(t.Columns, fmt.Sprintf("m%d", int(p)))
	}
	for _, r := range rows {
		row := []string{r.Group, r.Predictor,
			stats.Pct(r.Stats.Rate()), stats.Pct(r.Stats.Accuracy())}
		for _, p := range Fig12Penalties {
			row = append(row, stats.F2(r.Metric(p)))
		}
		t.AddRow(row...)
	}
	return t
}
