package experiments

import (
	"bytes"
	"testing"

	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
)

// parallelOptions builds the quick preset on an isolated pool, so the test
// runs do not share results with each other (or anything else in the
// process) through the shared cache.
func parallelOptions(workers int) Options {
	o := Quick()
	o.Uops, o.Warmup = 15_000, 4_000
	o.TracesPerGroup = 1
	o.Pool = runner.NewIsolated(workers, runner.NewCache())
	return o
}

// TestFiguresDeterministicAcrossWorkers renders every figure's table and
// machine-readable record serially and on a wide pool and requires
// byte-identical text and JSON — the property that makes -j safe to
// default on and lets shape checks diff emitted records across runs.
func TestFiguresDeterministicAcrossWorkers(t *testing.T) {
	figures := map[string]struct {
		table  func(Options) stats.Table
		record string // FigureRecord id; the table and record share o's pool
	}{
		"fig5":     {func(o Options) stats.Table { return Fig5Table(Fig5(o)) }, "fig5"},
		"fig6":     {func(o Options) stats.Table { return Fig6Table(Fig6(o)) }, "fig6"},
		"fig7":     {func(o Options) stats.Table { return Fig7Table(Fig7(o)) }, "fig7"},
		"fig8":     {func(o Options) stats.Table { return Fig8Table(Fig8(o)) }, "fig8"},
		"fig9":     {func(o Options) stats.Table { return Fig9Table(Fig9(o)) }, "fig9"},
		"fig10":    {func(o Options) stats.Table { return Fig10Table(Fig10(o)) }, "fig10"},
		"fig11":    {func(o Options) stats.Table { return Fig11Table(Fig11(o)) }, "fig11"},
		"fig12":    {func(o Options) stats.Table { return Fig12Table(Fig12(o)) }, "fig12"},
		"policies": {func(o Options) stats.Table { return BankPoliciesTable(BankPolicies(o)) }, "bankpolicies"},
	}
	emit := func(t *testing.T, id string, o Options) []byte {
		t.Helper()
		rec, err := FigureRecord(id, o)
		if err != nil {
			t.Fatalf("FigureRecord(%q): %v", id, err)
		}
		if err := rec.Validate(); err != nil {
			t.Fatalf("record %q invalid: %v", id, err)
		}
		var buf bytes.Buffer
		if err := results.WriteJSON(&buf, results.NewReport("test", rec.Options, []results.Record{rec})); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for name, fig := range figures {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			o1, o8 := parallelOptions(1), parallelOptions(8)
			serialTbl, wideTbl := fig.table(o1), fig.table(o8)
			serial, wide := serialTbl.String(), wideTbl.String()
			if serial != wide {
				t.Fatalf("-j1 and -j8 tables differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, wide)
			}
			j1, j8 := emit(t, fig.record, o1), emit(t, fig.record, o8)
			if !bytes.Equal(j1, j8) {
				t.Fatalf("-j1 and -j8 JSON records differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", j1, j8)
			}
		})
	}
}

// TestMemoizationSharesBaseline runs Figure 5 then Figure 7 on one pool and
// checks the cache grew by less than the two figures' combined job count:
// the Traditional baseline submitted by both figures is keyed identically
// and simulated once.
func TestMemoizationSharesBaseline(t *testing.T) {
	cache := runner.NewCache()
	o := parallelOptions(4)
	o.Pool = runner.NewIsolated(4, cache)
	Fig5(o)
	afterFig5 := cache.Len()
	if afterFig5 == 0 {
		t.Fatal("Fig5 populated no cache entries")
	}
	Fig7(o)
	afterFig7 := cache.Len()
	// Fig7 adds one entry per (non-Traditional scheme, trace); its
	// Traditional jobs must all be cache hits from Fig5.
	tracesNT := len(o.groupTraces("SysmarkNT"))
	wantNew := 5 * tracesNT // Opportunistic..Perfect
	if got := afterFig7 - afterFig5; got != wantNew {
		t.Fatalf("Fig7 added %d cache entries, want %d (Traditional baseline must be shared)",
			got, wantNew)
	}
}

// TestEffectiveWarmup pins the sentinel semantics: zero stays zero at this
// layer (defaults are the caller's business), negatives clamp to zero.
func TestEffectiveWarmup(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{40_000, 40_000}, {0, 0}, {NoWarmup, 0}, {-5, 0},
	} {
		if got := (Options{Warmup: tc.in}).EffectiveWarmup(); got != tc.want {
			t.Errorf("EffectiveWarmup(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
