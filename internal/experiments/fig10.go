package experiments

import (
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// Fig10Groups are the figure's workload columns; "Others" pools Games, Java
// and TPC.
var Fig10Groups = []string{trace.GroupSpecFP95, trace.GroupSpecInt95, trace.GroupSysmarkNT, "Others"}

// Fig10Row is one group's hit-miss predictor statistics, for the local-only
// predictor and the hybrid chooser.
type Fig10Row struct {
	Group   string
	Local   hitmiss.Outcomes
	Chooser hitmiss.Outcomes
}

// Fig10 reproduces Figure 10 (Hit-Miss Predictor Performance). Following
// §3.2, this is a statistical simulation: the load stream is replayed
// through the data hierarchy in trace order with no scheduling effects, and
// both predictor configurations observe every load. The paper's shape: the
// local predictor catches 34–85% of misses (AM-PM) at 0.07–0.32% AH-PM; the
// chooser cuts AH-PM to 0.04–0.2% while giving up little AM-PM; FP traces
// predict best, "Others" worst; AM-PM outweighs AH-PM at least 5:1.
//
// Every replay owns fresh predictors and a fresh hierarchy, so the
// per-trace tallies are independent: they run concurrently and merge per
// group in trace order.
func Fig10(o Options) []Fig10Row {
	type part struct {
		local, chooser hitmiss.Outcomes
	}
	var profiles []trace.Profile
	var spans [][2]int
	for _, gname := range Fig10Groups {
		start := len(profiles)
		profiles = append(profiles, fig10Traces(o, gname)...)
		spans = append(spans, [2]int{start, len(profiles)})
	}
	parts := runner.Map(o.pool(), len(profiles), func(ti int) part {
		var pt part
		local, chooser := hitmiss.NewLocal(), hitmiss.NewChooser()
		replayLoads(profiles[ti], o, func(ip, addr uint64, hit, measured bool) {
			if measured {
				pt.local.Record(hit, local.PredictHit(ip, addr, 0))
				pt.chooser.Record(hit, chooser.PredictHit(ip, addr, 0))
			}
			local.Update(ip, addr, 0, hit)
			chooser.Update(ip, addr, 0, hit)
		})
		return pt
	})
	var rows []Fig10Row
	for gi, gname := range Fig10Groups {
		row := Fig10Row{Group: gname}
		for _, pt := range parts[spans[gi][0]:spans[gi][1]] {
			row.Local.Add(pt.local)
			row.Chooser.Add(pt.chooser)
		}
		rows = append(rows, row)
	}
	return rows
}

// fig10Traces resolves a figure column, pooling "Others".
func fig10Traces(o Options, gname string) []trace.Profile {
	if gname != "Others" {
		return o.groupTraces(gname)
	}
	var out []trace.Profile
	for _, g := range []string{trace.GroupGames, trace.GroupJava, trace.GroupTPC} {
		out = append(out, o.groupTraces(g)...)
	}
	return out
}

// replayLoads streams a trace's loads through a fresh hierarchy in program
// order, calling fn with each load's actual L1 outcome. measured=false for
// warmup loads.
func replayLoads(p trace.Profile, o Options, fn func(ip, addr uint64, hit, measured bool)) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	warmup := o.EffectiveWarmup()
	replayUops(p, warmup+o.Uops, func(us []uop.UOp, base int) {
		for j := range us {
			u := &us[j]
			switch u.Kind {
			case uop.Load:
				hit := h.Access(u.Addr) == cache.L1
				fn(u.IP, u.Addr, hit, base+j >= warmup)
			case uop.STA:
				h.Access(u.Addr)
			}
		}
	})
}

// Fig10Table renders Figure 10: per group, the mispredicted hits (AH-PM,
// lower is better), the caught misses (AM-PM, higher is better) and the
// total misses, all as percentages of loads.
func Fig10Table(rows []Fig10Row) stats.Table {
	t := stats.Table{
		Title: "Figure 10 — Hit-Miss Predictor Performance (statistical)",
		Note:  "percent of all loads; paper: local catches 34-85% of misses, chooser halves AH-PM",
		Columns: []string{"group", "AH-PM loc", "AH-PM cho", "AM-PM loc", "AM-PM cho",
			"MISSES", "caught loc", "caught cho"},
	}
	for _, r := range rows {
		l, c := r.Local, r.Chooser
		caught := func(o hitmiss.Outcomes) float64 {
			if o.Misses() == 0 {
				return 0
			}
			return float64(o.AMPM) / float64(o.Misses())
		}
		t.AddRow(r.Group,
			stats.Pct2(l.Frac(l.AHPM)), stats.Pct2(c.Frac(c.AHPM)),
			stats.Pct2(l.Frac(l.AMPM)), stats.Pct2(c.Frac(c.AMPM)),
			stats.Pct2(l.Frac(l.Misses())),
			stats.Pct(caught(l)), stats.Pct(caught(c)))
	}
	return t
}
