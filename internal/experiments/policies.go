package experiments

import (
	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/predict"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// BankPolicyRow is one §2.3 combination policy's statistical result.
type BankPolicyRow struct {
	Policy string
	Stats  bankpred.Stats
}

// BankPolicies evaluates the four vote-combination policies §2.3 lists for
// merging the component bank predictors ("the prediction was a simple
// majority vote", "a weight was assigned to each predictor ... only if this
// sum exceeded a predefined threshold", "only those predictions with a high
// confidence were taken into account", "a different weight was assigned
// according to the confidence level"), over the SpecInt95 load stream. The
// combined predictors are reset between traces, so each trace's replay is
// independent: replays run concurrently with fresh predictors and their
// tallies merge in trace order.
func BankPolicies(o Options) []BankPolicyRow {
	banking := cache.DefaultBanking()
	mk := func(policy predict.Policy, threshold, minConf int) *predict.Combined {
		return &predict.Combined{
			Components: []predict.Binary{
				predict.NewLocal(9, 8, 3),
				predict.NewGShare(11, 11, 3),
				predict.NewGSkew(10, 17, 3),
			},
			Policy:        policy,
			Threshold:     threshold,
			MinConfidence: minConf,
		}
	}
	type policyConfig struct {
		name      string
		policy    predict.Policy
		threshold int
		minConf   int
	}
	configs := []policyConfig{
		{"majority", predict.Majority, 0, 0},
		{"weighted-sum", predict.WeightedSum, 2, 0},
		{"high-confidence", predict.HighConfidence, 0, 2},
		{"confidence-weighted", predict.ConfidenceWeighted, 8, 0},
	}
	profiles := o.groupTraces(trace.GroupSpecInt95)
	warmup := o.EffectiveWarmup()
	parts := runner.Map(o.pool(), len(profiles), func(ti int) []bankpred.Stats {
		combs := make([]*predict.Combined, len(configs))
		for i, c := range configs {
			combs[i] = mk(c.policy, c.threshold, c.minConf)
		}
		tallies := make([]bankpred.Stats, len(configs))
		replayUops(profiles[ti], warmup+o.Uops, func(us []uop.UOp, base int) {
			for j := range us {
				u := &us[j]
				if u.Kind != uop.Load {
					continue
				}
				actual := banking.BankOf(u.Addr) == 1
				for k, comb := range combs {
					r := comb.PredictRated(u.IP)
					if base+j >= warmup {
						tallies[k].Record(r.Predicted, r.Predicted && r.Taken == actual)
					}
					comb.Update(u.IP, actual)
				}
			}
		})
		return tallies
	})
	tallies := make([]bankpred.Stats, len(configs))
	for _, part := range parts {
		for i := range tallies {
			tallies[i].Add(part[i])
		}
	}
	rows := make([]BankPolicyRow, len(configs))
	for i, c := range configs {
		rows[i] = BankPolicyRow{Policy: c.name, Stats: tallies[i]}
	}
	return rows
}

// BankPoliciesTable renders the policy comparison.
func BankPoliciesTable(rows []BankPolicyRow) stats.Table {
	t := stats.Table{
		Title:   "§2.3 combination policies for bank prediction (SpecInt95)",
		Note:    "rate/accuracy trade-off of the four vote-merging rules the paper lists",
		Columns: []string{"policy", "rate", "accuracy", "metric p=0", "p=5", "p=10"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, stats.Pct(r.Stats.Rate()), stats.Pct(r.Stats.Accuracy()),
			stats.F2(r.Stats.Metric(0)), stats.F2(r.Stats.Metric(5)), stats.F2(r.Stats.Metric(10)))
	}
	return t
}
