package experiments

import (
	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/predict"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// BankPolicyRow is one §2.3 combination policy's statistical result.
type BankPolicyRow struct {
	Policy string
	Stats  bankpred.Stats
}

// BankPolicies evaluates the four vote-combination policies §2.3 lists for
// merging the component bank predictors ("the prediction was a simple
// majority vote", "a weight was assigned to each predictor ... only if this
// sum exceeded a predefined threshold", "only those predictions with a high
// confidence were taken into account", "a different weight was assigned
// according to the confidence level"), over the SpecInt95 load stream.
func BankPolicies(o Options) []BankPolicyRow {
	banking := cache.DefaultBanking()
	mk := func(policy predict.Policy, threshold, minConf int) *predict.Combined {
		return &predict.Combined{
			Components: []predict.Binary{
				predict.NewLocal(9, 8, 3),
				predict.NewGShare(11, 11, 3),
				predict.NewGSkew(10, 17, 3),
			},
			Policy:        policy,
			Threshold:     threshold,
			MinConfidence: minConf,
		}
	}
	configs := []struct {
		name string
		comb *predict.Combined
	}{
		{"majority", mk(predict.Majority, 0, 0)},
		{"weighted-sum", mk(predict.WeightedSum, 2, 0)},
		{"high-confidence", mk(predict.HighConfidence, 0, 2)},
		{"confidence-weighted", mk(predict.ConfidenceWeighted, 8, 0)},
	}
	tallies := make([]bankpred.Stats, len(configs))
	for _, p := range o.groupTraces(trace.GroupSpecInt95) {
		g := trace.New(p)
		total := o.Warmup + o.Uops
		for i := 0; i < total; i++ {
			u := g.Next()
			if u.Kind != uop.Load {
				continue
			}
			actual := banking.BankOf(u.Addr) == 1
			for j, c := range configs {
				r := c.comb.PredictRated(u.IP)
				if i >= o.Warmup {
					tallies[j].Record(r.Predicted, r.Predicted && r.Taken == actual)
				}
				c.comb.Update(u.IP, actual)
			}
		}
		for _, c := range configs {
			c.comb.Reset()
		}
	}
	rows := make([]BankPolicyRow, len(configs))
	for i, c := range configs {
		rows[i] = BankPolicyRow{Policy: c.name, Stats: tallies[i]}
	}
	return rows
}

// BankPoliciesTable renders the policy comparison.
func BankPoliciesTable(rows []BankPolicyRow) stats.Table {
	t := stats.Table{
		Title:   "§2.3 combination policies for bank prediction (SpecInt95)",
		Note:    "rate/accuracy trade-off of the four vote-merging rules the paper lists",
		Columns: []string{"policy", "rate", "accuracy", "metric p=0", "p=5", "p=10"},
	}
	for _, r := range rows {
		t.AddRow(r.Policy, stats.Pct(r.Stats.Rate()), stats.Pct(r.Stats.Accuracy()),
			stats.F2(r.Stats.Metric(0)), stats.F2(r.Stats.Metric(5)), stats.F2(r.Stats.Metric(10)))
	}
	return t
}
