package experiments

import (
	"sort"
	"strconv"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/policies"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// The tournament races the built-in policy against the related-work zoo of
// internal/policies on the same host machine — the §3.1 baseline with the
// Inclusive scheme and the reference 2K Full CHT, the configuration the
// paper's own speedup figures center on. Every participant differs only in
// its SpeculationPolicy, so the CPI gap between rows is purely the
// scheduling value of its load-latency prediction; the per-row CPI stack
// shows where the cycles moved (a good predictor converts data-stall and
// miss-replay cycles into base cycles).
//
// All participants are describable (the zoo via PolicyKey) and resettable,
// so the sweep runs fully memoized and engine-pooled — the capability the
// ISSUE 6 bugfix restored. The "default" entry reuses the exact Inclusive
// baseline config of Figures 7/8, sharing its memo entries.

// tournamentScheme is the host machine's ordering scheme.
const tournamentScheme = memdep.Inclusive

// TournamentPolicies lists the participant labels in emission order: the
// built-in policy first, then the zoo in registry order.
func TournamentPolicies() []string {
	return append([]string{"default"}, policies.Names()...)
}

// TournamentRow is one (trace group, policy) race entry.
type TournamentRow struct {
	Group  string
	Policy string
	// Rank orders the group's entries by CPI, 1 = fastest; ties keep
	// TournamentPolicies order.
	Rank int
	// Stats is the pooled run statistics; Stats.CPI partitions Stats.Cycles.
	Stats ooo.Stats
	// CPI is cycles per measured uop; Speedup is the group's default-policy
	// CPI over this entry's (>1 beats the built-in policy).
	CPI, Speedup float64
}

// tournamentJob builds one participant's job: the unmodified host machine
// for "default", or the host machine with the named zoo policy installed.
func (o Options) tournamentJob(policy string, p trace.Profile) runner.Job {
	if policy == "default" {
		return o.schemeJob(tournamentScheme, p)
	}
	return o.job(func() ooo.Config {
		cfg := baseConfig(tournamentScheme)
		if err := policies.Install(&cfg, policy); err != nil {
			panic(err) // unreachable: TournamentPolicies names are registered
		}
		return cfg
	}, p)
}

// Tournament races every participant over every trace group and returns the
// rows grouped by trace group, ranked fastest-first within each.
func Tournament(o Options) []TournamentRow {
	names := TournamentPolicies()
	type span struct {
		group, policy string
		lo, hi        int
	}
	var spans []span
	var jobs []runner.Job
	for _, gname := range trace.GroupNames() {
		for _, name := range names {
			start := len(jobs)
			for _, p := range o.groupTraces(gname) {
				jobs = append(jobs, o.tournamentJob(name, p))
			}
			spans = append(spans, span{gname, name, start, len(jobs)})
		}
	}
	sts := o.pool().Run(jobs)

	rows := make([]TournamentRow, 0, len(spans))
	for g := 0; g < len(spans); g += len(names) {
		group := make([]TournamentRow, 0, len(names))
		var defaultCPI float64
		for i, sp := range spans[g : g+len(names)] {
			var pooled ooo.Stats
			for _, st := range sts[sp.lo:sp.hi] {
				pooled.Add(st)
			}
			cpi := 0.0
			if pooled.Uops > 0 {
				cpi = float64(pooled.Cycles) / float64(pooled.Uops)
			}
			if i == 0 { // "default" leads TournamentPolicies
				defaultCPI = cpi
			}
			group = append(group, TournamentRow{
				Group: sp.group, Policy: sp.policy, Stats: pooled, CPI: cpi,
			})
		}
		for i := range group {
			if group[i].CPI > 0 {
				group[i].Speedup = defaultCPI / group[i].CPI
			}
		}
		// Rank by CPI, fastest first; SliceStable keeps registration order
		// on exact ties, so the ordering is deterministic.
		sort.SliceStable(group, func(a, b int) bool { return group[a].CPI < group[b].CPI })
		for i := range group {
			group[i].Rank = i + 1
		}
		rows = append(rows, group...)
	}
	return rows
}

// TournamentTable renders the race as a per-group leaderboard.
func TournamentTable(rows []TournamentRow) stats.Table {
	t := stats.Table{
		Title: "Policy Tournament — related-work zoo vs built-in policy (Inclusive, 2K Full CHT)",
		Note:  "speedup is the group's default-policy CPI over the row's; stack shares are of all cycles",
		Columns: []string{"group", "rank", "policy", "CPI", "speedup",
			"base", "ordering", "miss-replay", "data"},
	}
	for _, r := range rows {
		c := r.Stats.CPI
		cyc := float64(r.Stats.Cycles)
		if cyc == 0 {
			cyc = 1
		}
		share := func(v int64) string { return stats.Pct(float64(v) / cyc) }
		t.AddRow(r.Group, strconv.Itoa(r.Rank), r.Policy,
			stats.F2(r.CPI), stats.F2(r.Speedup),
			share(c.Base), share(c.OrderingWait), share(c.MissReplay), share(c.DataStall))
	}
	return t
}

// TournamentRecord builds the structured tournament record; Validate
// enforces the CPI-partition invariant on every row.
func TournamentRecord(o Options, rows []TournamentRow) results.Record {
	out := make([]results.TournamentRow, 0, len(rows))
	for _, r := range rows {
		c := r.Stats.CPI
		cyc := r.Stats.Cycles
		frac := func(v int64) float64 {
			if cyc == 0 {
				return 0
			}
			return float64(v) / float64(cyc)
		}
		out = append(out, results.TournamentRow{
			Group: r.Group, Policy: r.Policy, Rank: r.Rank,
			Cycles: cyc, Uops: r.Stats.Uops, CPI: r.CPI, Speedup: r.Speedup,
			Base: c.Base, Frontend: c.Frontend, WindowFull: c.WindowFull,
			PortContention: c.PortContention, OrderingWait: c.OrderingWait,
			BankConflict: c.BankConflict, CollisionRecovery: c.CollisionRecovery,
			MissReplay: c.MissReplay, DataStall: c.DataStall,
			FracBase:     frac(c.Base),
			FracOrdering: frac(c.OrderingWait),
			FracData:     frac(c.DataStall),
		})
	}
	return results.New("tournament", results.KindTournament,
		"Policy Tournament — related-work zoo vs built-in policy", "",
		recordOptions(o), out)
}
