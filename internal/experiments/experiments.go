// Package experiments reproduces every figure of the paper's evaluation
// (§4): each FigN function runs the corresponding workloads through the
// simulator (or through the statistical replay harness, where the paper's
// evaluation was statistical) and returns both structured results and a
// rendered text table. EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
//
// Every figure executes its independent simulations through
// internal/runner: a bounded worker pool (Options.Workers) with
// order-preserving collection and a process-wide memoization cache, so the
// Traditional baseline shared by Figures 5–8 (and by repeated sweeps) is
// simulated exactly once per process. Tables are assembled from results in
// job order, which keeps rendered output byte-identical across worker
// counts.
package experiments

import (
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// NoWarmup is the sentinel for an explicitly zero warmup region. A Warmup
// of 0 means "default" wherever defaults apply (the CLI, the facade);
// negative values always mean "no warmup at all".
const NoWarmup = -1

// Options scale every experiment. Benchmarks use small values; the CLI
// defaults are large enough for stable percentages.
type Options struct {
	// Uops is the number of measured uops per trace.
	Uops int
	// Warmup is the number of uops simulated before measurement, letting
	// caches and predictors reach steady state. Negative values (NoWarmup)
	// request an explicitly empty warmup region.
	Warmup int
	// TracesPerGroup caps how many traces of each group run (0 = all).
	TracesPerGroup int
	// Workers bounds the number of concurrent simulations (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for every setting; only wall-clock
	// time changes.
	Workers int
	// Pool, when non-nil, overrides the simulation pool (and with it the
	// memoization cache) the experiments run on. Tests and benchmarks use
	// isolated pools; nil selects a pool of Workers workers sharing the
	// process-wide cache.
	Pool *runner.Pool
}

// DefaultOptions is the CLI default: every trace, 200K measured uops each.
func DefaultOptions() Options {
	return Options{Uops: 200_000, Warmup: 40_000}
}

// Quick is a fast configuration for tests and short benchmark runs.
func Quick() Options {
	return Options{Uops: 60_000, Warmup: 15_000, TracesPerGroup: 2}
}

// EffectiveWarmup resolves the warmup sentinel: negative Warmup means zero.
func (o Options) EffectiveWarmup() int {
	if o.Warmup < 0 {
		return 0
	}
	return o.Warmup
}

// pool resolves the simulation pool the experiment runs on.
func (o Options) pool() *runner.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return runner.New(o.Workers)
}

// traces returns the group's traces under the cap.
func (o Options) traces(g trace.Group) []trace.Profile {
	if o.TracesPerGroup > 0 && o.TracesPerGroup < len(g.Traces) {
		return g.Traces[:o.TracesPerGroup]
	}
	return g.Traces
}

// groupTraces resolves a group by name and applies the cap.
func (o Options) groupTraces(name string) []trace.Profile {
	g, ok := trace.GroupByName(name)
	if !ok {
		panic("experiments: unknown group " + name)
	}
	return o.traces(g)
}

// job wraps one (config, trace) simulation for the runner. build must
// construct a fresh Config on every call (predictors are stateful).
func (o Options) job(build func() ooo.Config, p trace.Profile) runner.Job {
	return runner.Job{Build: build, Profile: p, Uops: o.Uops, Warmup: o.EffectiveWarmup()}
}

// schemeJob is the common case: the §3.1 baseline machine under one
// ordering scheme. Every figure that shares the Traditional baseline
// builds it through here, so the memo keys coincide across figures.
func (o Options) schemeJob(s memdep.Scheme, p trace.Profile) runner.Job {
	return o.job(func() ooo.Config { return baseConfig(s) }, p)
}

// run simulates one trace on one machine configuration (through the pool's
// cache, serially on the calling goroutine).
func (o Options) run(cfg ooo.Config, p trace.Profile) ooo.Stats {
	return o.pool().Do(o.job(func() ooo.Config { return cfg }, p))
}

// baseConfig is the §3.1 machine with the given ordering scheme; CHT-based
// schemes get the paper's reference predictor (2K-entry 4-way Full CHT with
// 2-bit counters and distance tracking).
func baseConfig(s memdep.Scheme) ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = s
	if s.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	return cfg
}

// replayUops streams exactly total uops of p through fn in whole decoded
// chunks — read-only views straight out of the shared recording, no per-uop
// copy or cursor call. base is the stream index of us[0]; the statistical
// figures use it to tell warmup uops from measured ones.
func replayUops(p trace.Profile, total int, fn func(us []uop.UOp, base int)) {
	g := trace.Replay(p)
	for seen := 0; seen < total; {
		us, _, _ := g.NextBatchRef()
		if n := total - seen; len(us) > n {
			us = us[:n]
		}
		fn(us, seen)
		seen += len(us)
	}
}
