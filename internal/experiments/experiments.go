// Package experiments reproduces every figure of the paper's evaluation
// (§4): each FigN function runs the corresponding workloads through the
// simulator (or through the statistical replay harness, where the paper's
// evaluation was statistical) and returns both structured results and a
// rendered text table. EXPERIMENTS.md records the paper-vs-measured
// comparison for each.
package experiments

import (
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// Options scale every experiment. Benchmarks use small values; the CLI
// defaults are large enough for stable percentages.
type Options struct {
	// Uops is the number of measured uops per trace.
	Uops int
	// Warmup is the number of uops simulated before measurement, letting
	// caches and predictors reach steady state.
	Warmup int
	// TracesPerGroup caps how many traces of each group run (0 = all).
	TracesPerGroup int
}

// DefaultOptions is the CLI default: every trace, 200K measured uops each.
func DefaultOptions() Options {
	return Options{Uops: 200_000, Warmup: 40_000}
}

// Quick is a fast configuration for tests and short benchmark runs.
func Quick() Options {
	return Options{Uops: 60_000, Warmup: 15_000, TracesPerGroup: 2}
}

// traces returns the group's traces under the cap.
func (o Options) traces(g trace.Group) []trace.Profile {
	if o.TracesPerGroup > 0 && o.TracesPerGroup < len(g.Traces) {
		return g.Traces[:o.TracesPerGroup]
	}
	return g.Traces
}

// groupTraces resolves a group by name and applies the cap.
func (o Options) groupTraces(name string) []trace.Profile {
	g, ok := trace.GroupByName(name)
	if !ok {
		panic("experiments: unknown group " + name)
	}
	return o.traces(g)
}

// run simulates one trace on one machine configuration.
func (o Options) run(cfg ooo.Config, p trace.Profile) ooo.Stats {
	cfg.WarmupUops = o.Warmup
	e := ooo.NewEngine(cfg, trace.New(p))
	return e.Run(o.Uops)
}

// baseConfig is the §3.1 machine with the given ordering scheme; CHT-based
// schemes get the paper's reference predictor (2K-entry 4-way Full CHT with
// 2-bit counters and distance tracking).
func baseConfig(s memdep.Scheme) ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = s
	if s.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	return cfg
}
