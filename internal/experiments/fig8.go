package experiments

import (
	"fmt"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// MachineConfig is one execution-width point of Figure 8.
type MachineConfig struct {
	// IntUnits and MemUnits are the figure's EU# and MEM# labels.
	IntUnits, MemUnits int
}

// Label renders the paper's "EU2 MEM1" style label.
func (m MachineConfig) Label() string { return fmt.Sprintf("EU%d MEM%d", m.IntUnits, m.MemUnits) }

// Fig8Machines are the three machine widths of Figure 8.
var Fig8Machines = []MachineConfig{{2, 1}, {2, 2}, {4, 2}}

// Fig8Groups are the figure's workload columns; "Other" pools Games, Java
// and TPC as the paper does.
var Fig8Groups = []string{trace.GroupSysmarkNT, trace.GroupSpecInt95, trace.GroupSysmark95, "Other"}

// fig8Schemes are the bars of Figure 8 (Traditional is the baseline).
var fig8Schemes = []memdep.Scheme{
	memdep.Postponing, memdep.Opportunistic, memdep.Inclusive, memdep.Exclusive, memdep.Perfect,
}

// Fig8Cell is one (group, machine, scheme) speedup.
type Fig8Cell struct {
	Group   string
	Machine MachineConfig
	Scheme  memdep.Scheme
	Speedup float64
	// Dropped counts non-positive per-trace speedups excluded from the
	// cell's geometric mean; non-zero flags a degenerate simulation.
	Dropped int
}

// Fig8 reproduces Figure 8 (Speedup vs Machine Configuration): wider
// machines gain more from better memory ordering; SysmarkNT and SpecInt
// benefit most (8–17% in the paper), the Others less (5–10%). Every
// (group, machine, scheme, trace) run executes concurrently; the EU2 MEM2
// Traditional point is the §3.1 baseline, so it shares its memoized result
// with Figures 5–7.
func Fig8(o Options) []Fig8Cell {
	type block struct {
		gname  string
		m      MachineConfig
		traces []trace.Profile
		start  int // index of the block's Traditional jobs; schemes follow
	}
	var blocks []block
	var jobs []runner.Job
	for _, gname := range Fig8Groups {
		traces := fig8Traces(o, gname)
		for _, m := range Fig8Machines {
			mk := func(s memdep.Scheme) func() ooo.Config {
				return func() ooo.Config {
					cfg := baseConfig(s)
					cfg.IntUnits = m.IntUnits
					cfg.MemUnits = m.MemUnits
					return cfg
				}
			}
			blocks = append(blocks, block{gname: gname, m: m, traces: traces, start: len(jobs)})
			for _, p := range traces {
				jobs = append(jobs, o.job(mk(memdep.Traditional), p))
			}
			for _, s := range fig8Schemes {
				for _, p := range traces {
					jobs = append(jobs, o.job(mk(s), p))
				}
			}
		}
	}
	sts := o.pool().Run(jobs)
	var cells []Fig8Cell
	for _, b := range blocks {
		n := len(b.traces)
		base := make([]float64, n)
		for i := 0; i < n; i++ {
			base[i] = sts[b.start+i].IPC()
		}
		for si, s := range fig8Schemes {
			sp := make([]float64, n)
			for i := 0; i < n; i++ {
				sp[i] = sts[b.start+(si+1)*n+i].IPC() / base[i]
			}
			mean, dropped := stats.GeoMeanCounted(sp)
			cells = append(cells, Fig8Cell{
				Group: b.gname, Machine: b.m, Scheme: s, Speedup: mean, Dropped: dropped,
			})
		}
	}
	return cells
}

// fig8Traces resolves the figure's group columns, pooling "Other".
func fig8Traces(o Options, gname string) []trace.Profile {
	if gname != "Other" {
		return o.groupTraces(gname)
	}
	var out []trace.Profile
	for _, g := range []string{trace.GroupGames, trace.GroupJava, trace.GroupTPC} {
		out = append(out, o.groupTraces(g)...)
	}
	return out
}

// Fig8Table renders Figure 8.
func Fig8Table(cells []Fig8Cell) stats.Table {
	t := stats.Table{
		Title: "Figure 8 — Speedup vs Machine Configuration",
		Note:  "paper: wider machines gain more; NT/ISPEC 8-17%, Sys95/Other 5-10%",
	}
	t.Columns = []string{"group", "machine"}
	for _, s := range fig8Schemes {
		t.Columns = append(t.Columns, s.String())
	}
	type key struct {
		g string
		m MachineConfig
	}
	rows := map[key]map[memdep.Scheme]float64{}
	var order []key
	dropped := 0
	for _, c := range cells {
		k := key{c.Group, c.Machine}
		if rows[k] == nil {
			rows[k] = map[memdep.Scheme]float64{}
			order = append(order, k)
		}
		rows[k][c.Scheme] = c.Speedup
		dropped += c.Dropped
	}
	if dropped > 0 {
		t.Note += fmt.Sprintf(" [warning: %d non-positive speedups excluded from means]", dropped)
	}
	for _, k := range order {
		row := []string{k.g, k.m.Label()}
		for _, s := range fig8Schemes {
			row = append(row, stats.F3(rows[k][s]))
		}
		t.AddRow(row...)
	}
	return t
}
