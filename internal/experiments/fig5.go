package experiments

import (
	"loadsched/internal/memdep"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// Fig5Row is one trace group's load-scheduling classification.
type Fig5Row struct {
	Group string
	Class memdep.Classification
}

// Fig5 reproduces Figure 5 (Load Scheduling Classification): the share of
// dynamic loads that actually collide (AC), conflict without colliding
// (ANC), or have no ordering conflict at schedule time, per trace group,
// with the 32-entry baseline scheduling window. The paper's headline: ≈10%
// AC, ≈60% ANC, ≈30% no-conflict, so 60–70% of loads can benefit from a
// collision predictor. All (group, trace) baseline runs execute
// concurrently; the per-group tallies merge in group/trace order.
func Fig5(o Options) []Fig5Row {
	var groups []string
	var spans [][2]int
	var jobs []runner.Job
	for _, gname := range trace.GroupNames() {
		if gname == trace.GroupSpecFP95 {
			continue // the paper's disambiguation runs exclude SpecFP95 (§4.1)
		}
		start := len(jobs)
		for _, p := range o.groupTraces(gname) {
			jobs = append(jobs, o.schemeJob(memdep.Traditional, p))
		}
		groups = append(groups, gname)
		spans = append(spans, [2]int{start, len(jobs)})
	}
	sts := o.pool().Run(jobs)
	rows := make([]Fig5Row, len(groups))
	for i, gname := range groups {
		var cl memdep.Classification
		for _, st := range sts[spans[i][0]:spans[i][1]] {
			cl.Add(st.Class)
		}
		rows[i] = Fig5Row{Group: gname, Class: cl}
	}
	return rows
}

// Fig5Table renders Figure 5.
func Fig5Table(rows []Fig5Row) stats.Table {
	t := stats.Table{
		Title:   "Figure 5 — Load Scheduling Classification (32-entry window)",
		Note:    "paper: ~10% AC, ~60% ANC, ~30% no-conflict across groups",
		Columns: []string{"group", "AC", "ANC", "no-conflict"},
	}
	var total memdep.Classification
	for _, r := range rows {
		c := r.Class
		t.AddRow(r.Group,
			stats.Pct(c.FracOfLoads(c.AC())),
			stats.Pct(c.FracOfLoads(c.ANC())),
			stats.Pct(c.FracOfLoads(c.NotConflicting)))
		total.Add(c)
	}
	t.AddRow("average",
		stats.Pct(total.FracOfLoads(total.AC())),
		stats.Pct(total.FracOfLoads(total.ANC())),
		stats.Pct(total.FracOfLoads(total.NotConflicting)))
	return t
}
