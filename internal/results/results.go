// Package results defines the machine-readable results layer: typed,
// versioned records for every paper figure and sensitivity sweep, plus JSON
// and CSV emitters. Where internal/stats renders a figure for humans, this
// package renders the same data for programs — regression tracking, the
// BENCH_results.json perf trajectory, and cross-PR shape checks against the
// paper's published distributions all consume these records.
//
// Determinism contract: a Record built from a figure run contains only
// values that are a pure function of the experiment options (never worker
// counts, timestamps or wall times), so emitted JSON and CSV are
// byte-identical across -j settings. Runner counters, which are
// timing-dependent, ride in the Report envelope's optional Runner field and
// are only attached on explicit request (the CLI's -v).
package results

import (
	"fmt"
	"time"
)

// SchemaVersion names the record layout this package emits. Consumers pin
// on it; bump it when a row type changes incompatibly.
const SchemaVersion = "loadsched.results/v1"

// Kind discriminates the typed row layout of a Record.
type Kind string

// The row kinds.
const (
	// KindClassification rows bucket dynamic loads (Figures 5 and 6).
	KindClassification Kind = "classification"
	// KindSpeedup rows report IPC ratios over a baseline (Figures 7, 8, 11).
	KindSpeedup Kind = "speedup"
	// KindCHT rows report collision-history-table bucket shares (Figure 9).
	KindCHT Kind = "cht"
	// KindHitMiss rows report hit-miss predictor outcomes (Figure 10).
	KindHitMiss Kind = "hitmiss"
	// KindBank rows report bank-predictor operating points (Figure 12 and
	// the §2.3 combination policies).
	KindBank Kind = "bank"
	// KindTable rows are positional strings mirroring a rendered text table
	// (sensitivity sweeps).
	KindTable Kind = "table"
	// KindCPIStack rows attribute every simulated cycle to a stall cause;
	// per-cause cycles sum to the row's total cycles by construction.
	KindCPIStack Kind = "cpistack"
	// KindTournament rows race speculation policies per trace group, ranked
	// on CPI; each row carries its full cycle-attribution stack.
	KindTournament Kind = "tournament"
)

// Options echoes the experiment configuration a record was produced with.
// Worker count is deliberately absent: records must not depend on it.
type Options struct {
	Uops           int `json:"uops"`
	Warmup         int `json:"warmup"`
	TracesPerGroup int `json:"traces_per_group,omitempty"`
}

// Record is the versioned envelope for one figure or sweep.
type Record struct {
	Schema  string  `json:"schema"`
	ID      string  `json:"id"`
	Kind    Kind    `json:"kind"`
	Title   string  `json:"title"`
	Note    string  `json:"note,omitempty"`
	Options Options `json:"options"`
	// Columns names the positional cells of KindTable rows; empty for the
	// typed kinds, whose column set is fixed by the row struct.
	Columns []string `json:"columns,omitempty"`
	// Rows is a slice of the kind's row type: []ClassificationRow,
	// []SpeedupRow, []CHTRow, []HitMissRow, []BankRow or [][]string.
	Rows any `json:"rows"`
}

// Report is the top-level envelope one CLI invocation emits.
type Report struct {
	Schema  string   `json:"schema"`
	Command string   `json:"command,omitempty"`
	Options Options  `json:"options"`
	Records []Record `json:"records"`
	// Runner carries pool counters when observability was requested (-v);
	// it is omitted otherwise because its values are timing-dependent.
	Runner *RunnerCounters `json:"runner,omitempty"`
}

// RunnerCounters mirrors runner.Counters for the JSON envelope.
type RunnerCounters struct {
	// Jobs is the number of engine simulations requested through the pool.
	Jobs int64 `json:"jobs"`
	// Simulated is how many of those actually ran (the rest were served by
	// the memo cache or coalesced onto an in-flight computation).
	Simulated int64 `json:"simulated"`
	// MemoHits served a completed cached result; Coalesced waited on an
	// identical in-flight simulation; Uncached ran outside the cache
	// (non-describable configs).
	MemoHits  int64 `json:"memo_hits"`
	Coalesced int64 `json:"coalesced"`
	Uncached  int64 `json:"uncached"`
	// DiskHits served results from the persistent store (zero simulations in
	// any process); the Store* fields snapshot the store's own counters —
	// process-wide totals, unlike the per-pool numbers above. All four are
	// omitted when no store is attached.
	DiskHits     int64 `json:"disk_hits,omitempty"`
	StoreWrites  int64 `json:"store_writes,omitempty"`
	StoreCorrupt int64 `json:"store_corrupt,omitempty"`
	StoreHits    int64 `json:"store_hits,omitempty"`
	// MapTasks counts fan-out units dispatched through runner.Map,
	// including the Do calls Pool.Run routes through it.
	MapTasks int64 `json:"map_tasks"`
	// EngineBuilds and EngineReuses split the executed describable
	// simulations by whether a fresh engine was constructed or a pooled one
	// was reset and reused.
	EngineBuilds int64 `json:"engine_builds"`
	EngineReuses int64 `json:"engine_reuses"`
	// SimMillis is wall time spent inside simulations, summed over jobs
	// (exceeds elapsed time when workers overlap).
	SimMillis float64 `json:"sim_millis"`
	// CacheEntries is the memo cache size after the run.
	CacheEntries int `json:"cache_entries"`
}

// String renders the counters as the CLI's one-line -v summary. The disk
// clause appears only when a persistent store saw any traffic.
func (c RunnerCounters) String() string {
	s := fmt.Sprintf(
		"runner: %d jobs (%d simulated, %d memo hits, %d coalesced, %d uncached), %d map tasks, %d engines built, %d reused, %s sim time, %d cache entries",
		c.Jobs, c.Simulated, c.MemoHits, c.Coalesced, c.Uncached,
		c.MapTasks, c.EngineBuilds, c.EngineReuses,
		time.Duration(c.SimMillis*float64(time.Millisecond)).Round(time.Millisecond),
		c.CacheEntries)
	if c.DiskHits != 0 || c.StoreWrites != 0 || c.StoreCorrupt != 0 || c.StoreHits != 0 {
		s += fmt.Sprintf(", %d disk hits (store: %d writes, %d corrupt)",
			c.DiskHits, c.StoreWrites, c.StoreCorrupt)
	}
	return s
}

// ClassificationRow is one load-scheduling classification tally: Figure 5
// keys rows by trace group, Figure 6 by scheduling-window size.
type ClassificationRow struct {
	Key    string `json:"key"`
	Loads  uint64 `json:"loads"`
	ACPC   uint64 `json:"ac_pc"`
	ACPNC  uint64 `json:"ac_pnc"`
	ANCPC  uint64 `json:"anc_pc"`
	ANCPNC uint64 `json:"anc_pnc"`
	// NotConflicting loads had no older unresolved store address.
	NotConflicting uint64 `json:"not_conflicting"`
	// FracAC / FracANC / FracNoConflict are shares of all loads (the
	// figure's y-axis).
	FracAC         float64 `json:"frac_ac"`
	FracANC        float64 `json:"frac_anc"`
	FracNoConflict float64 `json:"frac_no_conflict"`
}

// SpeedupRow is one IPC ratio over a figure's baseline machine. The label
// fields used vary by figure: Figure 7 sets Scheme and Trace (or Aggregate
// for the geomean row), Figure 8 sets Group, Machine and Scheme, Figure 11
// sets Group and Predictor.
type SpeedupRow struct {
	Group     string `json:"group,omitempty"`
	Machine   string `json:"machine,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	Predictor string `json:"predictor,omitempty"`
	Trace     string `json:"trace,omitempty"`
	// Aggregate marks geometric-mean rows.
	Aggregate bool    `json:"aggregate,omitempty"`
	Speedup   float64 `json:"speedup"`
	// Dropped counts non-positive speedups excluded from an aggregate's
	// geometric mean; non-zero values flag a degenerate simulation.
	Dropped int `json:"dropped,omitempty"`
}

// CHTRow is one collision-history-table configuration's bucket tally
// (Figure 9).
type CHTRow struct {
	Kind    string `json:"kind"`
	Entries int    `json:"entries"`
	Loads   uint64 `json:"loads"`
	ACPC    uint64 `json:"ac_pc"`
	ACPNC   uint64 `json:"ac_pnc"`
	ANCPC   uint64 `json:"anc_pc"`
	ANCPNC  uint64 `json:"anc_pnc"`
	// The fractions mirror the rendered table: bucket shares of conflicting
	// loads, plus the of-all-loads rates §4.1 quotes.
	FracACPC     float64 `json:"frac_ac_pc"`
	FracACPNC    float64 `json:"frac_ac_pnc"`
	FracANCPC    float64 `json:"frac_anc_pc"`
	FracANCPNC   float64 `json:"frac_anc_pnc"`
	ANCPCOfLoads float64 `json:"anc_pc_of_loads"`
	ACPNCOfLoads float64 `json:"ac_pnc_of_loads"`
}

// HitMissRow is one (group, predictor) hit-miss outcome tally (Figure 10).
type HitMissRow struct {
	Group     string `json:"group"`
	Predictor string `json:"predictor"`
	AHPH      uint64 `json:"ah_ph"`
	AHPM      uint64 `json:"ah_pm"`
	AMPH      uint64 `json:"am_ph"`
	AMPM      uint64 `json:"am_pm"`
	// FracAHPM / FracAMPM / FracMisses are shares of all loads; CaughtFrac
	// is AM-PM over all actual misses (the "% of misses caught" headline).
	FracAHPM   float64 `json:"frac_ah_pm"`
	FracAMPM   float64 `json:"frac_am_pm"`
	FracMisses float64 `json:"frac_misses"`
	CaughtFrac float64 `json:"caught_frac"`
}

// BankRow is one bank predictor's (or combination policy's) operating point
// (Figure 12, §2.3 policies). MetricByPenalty is the §4.3 gain metric
// evaluated at integer penalties 0..len-1.
type BankRow struct {
	Group           string    `json:"group,omitempty"`
	Predictor       string    `json:"predictor,omitempty"`
	Policy          string    `json:"policy,omitempty"`
	Total           uint64    `json:"total"`
	Correct         uint64    `json:"correct"`
	Wrong           uint64    `json:"wrong"`
	Rate            float64   `json:"rate"`
	Accuracy        float64   `json:"accuracy"`
	MetricByPenalty []float64 `json:"metric_by_penalty,omitempty"`
}

// CPIStackRow is one machine/workload's cycle-attribution stack. The cause
// columns partition Cycles (they sum to it exactly); the Frac* columns are
// the same causes as shares of all cycles — the stacked-bar y-axis.
type CPIStackRow struct {
	Key    string  `json:"key"`
	Cycles int64   `json:"cycles"`
	Uops   uint64  `json:"uops"`
	CPI    float64 `json:"cpi"`
	// The cause partition, in pipeline order.
	Base              int64 `json:"base"`
	Frontend          int64 `json:"frontend"`
	WindowFull        int64 `json:"window_full"`
	PortContention    int64 `json:"port_contention"`
	OrderingWait      int64 `json:"ordering_wait"`
	BankConflict      int64 `json:"bank_conflict"`
	CollisionRecovery int64 `json:"collision_recovery"`
	MissReplay        int64 `json:"miss_replay"`
	DataStall         int64 `json:"data_stall"`
	// Shares of all cycles for the dominant stall causes.
	FracBase     float64 `json:"frac_base"`
	FracOrdering float64 `json:"frac_ordering"`
	FracData     float64 `json:"frac_data"`
}

// TournamentRow is one (trace group, policy) entry of the policy-zoo race:
// pooled run statistics, the CPI ranking within the group, the speedup over
// the group's default-policy entry, and the full cycle-attribution stack
// (the cause columns partition Cycles exactly, as in CPIStackRow).
type TournamentRow struct {
	Group  string `json:"group"`
	Policy string `json:"policy"`
	// Rank orders the group's entries by CPI, 1 = fastest; ties keep
	// registration order.
	Rank    int     `json:"rank"`
	Cycles  int64   `json:"cycles"`
	Uops    uint64  `json:"uops"`
	CPI     float64 `json:"cpi"`
	Speedup float64 `json:"speedup"`
	// The cause partition, in pipeline order.
	Base              int64 `json:"base"`
	Frontend          int64 `json:"frontend"`
	WindowFull        int64 `json:"window_full"`
	PortContention    int64 `json:"port_contention"`
	OrderingWait      int64 `json:"ordering_wait"`
	BankConflict      int64 `json:"bank_conflict"`
	CollisionRecovery int64 `json:"collision_recovery"`
	MissReplay        int64 `json:"miss_replay"`
	DataStall         int64 `json:"data_stall"`
	// Shares of all cycles for the causes the zoo policies move.
	FracBase     float64 `json:"frac_base"`
	FracOrdering float64 `json:"frac_ordering"`
	FracData     float64 `json:"frac_data"`
}

// New assembles a Record with the current schema version.
func New(id string, kind Kind, title, note string, opts Options, rows any) Record {
	return Record{Schema: SchemaVersion, ID: id, Kind: kind, Title: title,
		Note: note, Options: opts, Rows: rows}
}

// NewTable assembles a table-kind Record from a rendered table's columns
// and positional string rows (the sweep path).
func NewTable(id, title, note string, opts Options, columns []string, rows [][]string) Record {
	return Record{Schema: SchemaVersion, ID: id, Kind: KindTable, Title: title,
		Note: note, Options: opts, Columns: columns, Rows: rows}
}

// NewReport wraps records in a Report envelope.
func NewReport(command string, opts Options, recs []Record) Report {
	return Report{Schema: SchemaVersion, Command: command, Options: opts, Records: recs}
}

// Validate checks a record's structural invariants: schema version, a known
// kind, and rows of the kind's type. Decoded and freshly built records both
// pass through it in tests and in the CLI's self-checks.
func (r Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("results: record %q has schema %q, want %q", r.ID, r.Schema, SchemaVersion)
	}
	if r.ID == "" {
		return fmt.Errorf("results: record with empty id")
	}
	ok := false
	switch r.Kind {
	case KindClassification:
		_, ok = r.Rows.([]ClassificationRow)
	case KindSpeedup:
		_, ok = r.Rows.([]SpeedupRow)
	case KindCHT:
		_, ok = r.Rows.([]CHTRow)
	case KindHitMiss:
		_, ok = r.Rows.([]HitMissRow)
	case KindBank:
		_, ok = r.Rows.([]BankRow)
	case KindCPIStack:
		rows, typed := r.Rows.([]CPIStackRow)
		ok = typed
		// The defining invariant of a CPI stack: causes partition cycles.
		for _, row := range rows {
			sum := row.Base + row.Frontend + row.WindowFull + row.PortContention +
				row.OrderingWait + row.BankConflict + row.CollisionRecovery +
				row.MissReplay + row.DataStall
			if sum != row.Cycles {
				return fmt.Errorf("results: cpistack record %q row %q: causes sum to %d, cycles are %d",
					r.ID, row.Key, sum, row.Cycles)
			}
		}
	case KindTournament:
		rows, typed := r.Rows.([]TournamentRow)
		ok = typed
		// Tournament rows inherit the CPI-stack partition invariant.
		for _, row := range rows {
			sum := row.Base + row.Frontend + row.WindowFull + row.PortContention +
				row.OrderingWait + row.BankConflict + row.CollisionRecovery +
				row.MissReplay + row.DataStall
			if sum != row.Cycles {
				return fmt.Errorf("results: tournament record %q row %s/%s: causes sum to %d, cycles are %d",
					r.ID, row.Group, row.Policy, sum, row.Cycles)
			}
			if row.Rank < 1 {
				return fmt.Errorf("results: tournament record %q row %s/%s: rank %d < 1",
					r.ID, row.Group, row.Policy, row.Rank)
			}
		}
	case KindTable:
		_, ok = r.Rows.([][]string)
		if ok && len(r.Columns) == 0 {
			return fmt.Errorf("results: table record %q has no columns", r.ID)
		}
	default:
		return fmt.Errorf("results: record %q has unknown kind %q", r.ID, r.Kind)
	}
	if !ok {
		return fmt.Errorf("results: record %q rows are %T, not the %s row type", r.ID, r.Rows, r.Kind)
	}
	return nil
}

// Validate checks the report envelope and every record in it.
func (r Report) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("results: report has schema %q, want %q", r.Schema, SchemaVersion)
	}
	for _, rec := range r.Records {
		if err := rec.Validate(); err != nil {
			return err
		}
	}
	return nil
}
