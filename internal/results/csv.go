package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"
)

// WriteCSV emits one record as a CSV block: a `# id — title` comment line, a
// header row, then one line per row. Headers come from the row type's json
// tags, so the CSV and JSON column vocabularies coincide. Field values
// format deterministically (shortest float representation; []float64 joined
// with ';'), keeping emitted bytes identical across -j settings.
func WriteCSV(w io.Writer, rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", rec.ID, rec.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if rec.Kind == KindTable {
		if err := cw.Write(rec.Columns); err != nil {
			return err
		}
		for _, row := range rec.Rows.([][]string) {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	rows := reflect.ValueOf(rec.Rows)
	rowType := rows.Type().Elem()
	fields := csvFields(rowType)
	if err := cw.Write(csvHeader(rowType, fields)); err != nil {
		return err
	}
	for i := 0; i < rows.Len(); i++ {
		if err := cw.Write(csvCells(rows.Index(i), fields)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReportCSV emits every record of a report as consecutive CSV blocks
// separated by blank lines.
func WriteReportCSV(w io.Writer, r Report) error {
	for i, rec := range r.Records {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := WriteCSV(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// csvFields lists the field indices that participate in CSV emission.
// Fields tagged `json:"-"` are excluded — from the header AND the cells, so
// the two always agree — matching encoding/json's exclusion rule (the
// literal column name "-" is still expressible as `json:"-,"`).
func csvFields(t reflect.Type) []int {
	idx := make([]int, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Tag.Get("json") == "-" {
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

// csvHeader derives column names for the participating fields from the row
// struct's json tags, in field declaration order. A tag with an empty name
// part (like `json:",omitempty"`) falls back to the Go field name, as
// encoding/json does.
func csvHeader(t reflect.Type, fields []int) []string {
	cols := make([]string, len(fields))
	for j, i := range fields {
		tag := t.Field(i).Tag.Get("json")
		name, _, found := strings.Cut(tag, ",")
		if (found || tag != "") && name != "" {
			cols[j] = name
		} else {
			cols[j] = t.Field(i).Name
		}
	}
	return cols
}

// csvCells formats one row struct's participating fields.
func csvCells(v reflect.Value, fields []int) []string {
	cells := make([]string, len(fields))
	for j, i := range fields {
		cells[j] = csvValue(v.Field(i))
	}
	return cells
}

func csvValue(f reflect.Value) string {
	switch f.Kind() {
	case reflect.String:
		return f.String()
	case reflect.Bool:
		return strconv.FormatBool(f.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(f.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(f.Uint(), 10)
	case reflect.Float32:
		// bitSize 32 keeps float32 values at their shortest exact form
		// ("0.1", not the float64 rendering "0.10000000149011612").
		return strconv.FormatFloat(f.Float(), 'g', -1, 32)
	case reflect.Float64:
		return strconv.FormatFloat(f.Float(), 'g', -1, 64)
	case reflect.Slice:
		parts := make([]string, f.Len())
		for i := range parts {
			parts[i] = csvValue(f.Index(i))
		}
		return strings.Join(parts, ";")
	default:
		return fmt.Sprintf("%v", f.Interface())
	}
}
