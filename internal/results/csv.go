package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"
)

// WriteCSV emits one record as a CSV block: a `# id — title` comment line, a
// header row, then one line per row. Headers come from the row type's json
// tags, so the CSV and JSON column vocabularies coincide. Field values
// format deterministically (shortest float representation; []float64 joined
// with ';'), keeping emitted bytes identical across -j settings.
func WriteCSV(w io.Writer, rec Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# %s — %s\n", rec.ID, rec.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if rec.Kind == KindTable {
		if err := cw.Write(rec.Columns); err != nil {
			return err
		}
		for _, row := range rec.Rows.([][]string) {
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	rows := reflect.ValueOf(rec.Rows)
	rowType := rows.Type().Elem()
	if err := cw.Write(csvHeader(rowType)); err != nil {
		return err
	}
	for i := 0; i < rows.Len(); i++ {
		if err := cw.Write(csvCells(rows.Index(i))); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteReportCSV emits every record of a report as consecutive CSV blocks
// separated by blank lines.
func WriteReportCSV(w io.Writer, r Report) error {
	for i, rec := range r.Records {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := WriteCSV(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader derives column names from the row struct's json tags, in field
// declaration order.
func csvHeader(t reflect.Type) []string {
	cols := make([]string, t.NumField())
	for i := range cols {
		tag := t.Field(i).Tag.Get("json")
		if name, _, found := strings.Cut(tag, ","); found || tag != "" {
			cols[i] = name
		} else {
			cols[i] = t.Field(i).Name
		}
	}
	return cols
}

// csvCells formats one row struct's fields.
func csvCells(v reflect.Value) []string {
	cells := make([]string, v.NumField())
	for i := range cells {
		cells[i] = csvValue(v.Field(i))
	}
	return cells
}

func csvValue(f reflect.Value) string {
	switch f.Kind() {
	case reflect.String:
		return f.String()
	case reflect.Bool:
		return strconv.FormatBool(f.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(f.Int(), 10)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(f.Uint(), 10)
	case reflect.Float32, reflect.Float64:
		return strconv.FormatFloat(f.Float(), 'g', -1, 64)
	case reflect.Slice:
		parts := make([]string, f.Len())
		for i := range parts {
			parts[i] = csvValue(f.Index(i))
		}
		return strings.Join(parts, ";")
	default:
		return fmt.Sprintf("%v", f.Interface())
	}
}
