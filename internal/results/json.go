package results

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON emits the report as indented JSON. Output is deterministic: the
// encoder visits struct fields in declaration order and the records carry no
// timing-dependent values (unless Runner was attached explicitly).
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses JSON produced by WriteJSON, re-typing each record's
// rows by its kind so the result round-trips: re-encoding a decoded report
// reproduces the original bytes.
func DecodeReport(data []byte) (Report, error) {
	var raw struct {
		Schema  string            `json:"schema"`
		Command string            `json:"command"`
		Options Options           `json:"options"`
		Records []json.RawMessage `json:"records"`
		Runner  *RunnerCounters   `json:"runner"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return Report{}, fmt.Errorf("results: decoding report: %w", err)
	}
	rep := Report{Schema: raw.Schema, Command: raw.Command, Options: raw.Options, Runner: raw.Runner}
	for _, msg := range raw.Records {
		rec, err := DecodeRecord(msg)
		if err != nil {
			return Report{}, err
		}
		rep.Records = append(rep.Records, rec)
	}
	return rep, nil
}

// DecodeRecord parses one record, re-typing Rows by Kind.
func DecodeRecord(data []byte) (Record, error) {
	var raw struct {
		Schema  string          `json:"schema"`
		ID      string          `json:"id"`
		Kind    Kind            `json:"kind"`
		Title   string          `json:"title"`
		Note    string          `json:"note"`
		Options Options         `json:"options"`
		Columns []string        `json:"columns"`
		Rows    json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return Record{}, fmt.Errorf("results: decoding record: %w", err)
	}
	rec := Record{Schema: raw.Schema, ID: raw.ID, Kind: raw.Kind, Title: raw.Title,
		Note: raw.Note, Options: raw.Options, Columns: raw.Columns}
	var err error
	switch raw.Kind {
	case KindClassification:
		err = decodeRows[ClassificationRow](raw.Rows, &rec)
	case KindSpeedup:
		err = decodeRows[SpeedupRow](raw.Rows, &rec)
	case KindCHT:
		err = decodeRows[CHTRow](raw.Rows, &rec)
	case KindHitMiss:
		err = decodeRows[HitMissRow](raw.Rows, &rec)
	case KindBank:
		err = decodeRows[BankRow](raw.Rows, &rec)
	case KindCPIStack:
		err = decodeRows[CPIStackRow](raw.Rows, &rec)
	case KindTournament:
		err = decodeRows[TournamentRow](raw.Rows, &rec)
	case KindTable:
		err = decodeRows[[]string](raw.Rows, &rec)
	default:
		return Record{}, fmt.Errorf("results: record %q has unknown kind %q", raw.ID, raw.Kind)
	}
	if err != nil {
		return Record{}, fmt.Errorf("results: record %q: %w", raw.ID, err)
	}
	return rec, nil
}

func decodeRows[T any](data []byte, rec *Record) error {
	var rows []T
	if err := json.Unmarshal(data, &rows); err != nil {
		return err
	}
	rec.Rows = rows
	return nil
}
