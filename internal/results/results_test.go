package results

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureReport builds one hand-assembled record per row kind, with values
// that exercise the formatting paths (long float fractions, zeros, omitted
// optional labels, metric vectors).
func fixtureReport() Report {
	recs := []Record{
		New("fig5", KindClassification, "Load Scheduling Classification", "quick fixture",
			Options{Uops: 1000, Warmup: 100, TracesPerGroup: 1},
			[]ClassificationRow{
				{Key: "SysmarkNT", Loads: 300, ACPC: 10, ACPNC: 20, ANCPC: 30, ANCPNC: 140,
					NotConflicting: 100, FracAC: 0.1, FracANC: 0.5666666666666667, FracNoConflict: 1.0 / 3},
				{Key: "average", Loads: 0},
			}),
		New("fig7", KindSpeedup, "Speedup vs Memory Ordering Scheme", "",
			Options{Uops: 1000, Warmup: 100},
			[]SpeedupRow{
				{Scheme: "Inclusive", Trace: "ex", Speedup: 1.1437},
				{Scheme: "Inclusive", Aggregate: true, Speedup: 1.15, Dropped: 1},
				{Group: "SpecInt95", Machine: "EU4 MEM2", Scheme: "Perfect", Aggregate: true, Speedup: 1.17},
			}),
		New("fig9", KindCHT, "CHT Performance", "",
			Options{Uops: 1000, Warmup: 100},
			[]CHTRow{
				{Kind: "full", Entries: 2048, Loads: 500, ACPC: 40, ACPNC: 5, ANCPC: 17, ANCPNC: 238,
					FracACPC: 40.0 / 300, FracACPNC: 5.0 / 300, FracANCPC: 17.0 / 300,
					FracANCPNC: 238.0 / 300, ANCPCOfLoads: 0.034, ACPNCOfLoads: 0.009},
			}),
		New("fig10", KindHitMiss, "Hit-Miss Predictor Performance", "",
			Options{Uops: 1000, Warmup: 100},
			[]HitMissRow{
				{Group: "SpecFP95", Predictor: "local", AHPH: 800, AHPM: 3, AMPH: 50, AMPM: 147,
					FracAHPM: 0.003, FracAMPM: 0.147, FracMisses: 0.197, CaughtFrac: 147.0 / 197},
				{Group: "Others", Predictor: "chooser"},
			}),
		New("fig12", KindBank, "Bank Predictor Comparison", "",
			Options{Uops: 1000, Warmup: 100},
			[]BankRow{
				{Group: "SpecInt95", Predictor: "Addr", Total: 1000, Correct: 686, Wrong: 14,
					Rate: 0.7, Accuracy: 0.98, MetricByPenalty: []float64{0.7, 0.65, 0.6}},
				{Policy: "majority", Total: 1000, Correct: 490, Wrong: 10, Rate: 0.5, Accuracy: 0.98},
			}),
		New("cpistack", KindCPIStack, "CPI Stack — cycle attribution by stall cause", "",
			Options{Uops: 1000, Warmup: 100},
			[]CPIStackRow{
				// The causes must sum to Cycles — Validate enforces it.
				{Key: "SysmarkNT/Traditional", Cycles: 1000, Uops: 1800, CPI: 1000.0 / 1800,
					Base: 420, Frontend: 8, WindowFull: 30, PortContention: 135,
					OrderingWait: 260, BankConflict: 0, CollisionRecovery: 9,
					MissReplay: 19, DataStall: 119,
					FracBase: 0.42, FracOrdering: 0.26, FracData: 0.119},
				{Key: "SysmarkNT/Inclusive", Cycles: 900, Uops: 1800, CPI: 0.5,
					Base: 520, Frontend: 9, WindowFull: 42, PortContention: 150,
					OrderingWait: 44, CollisionRecovery: 2, MissReplay: 23, DataStall: 110,
					FracBase: 520.0 / 900, FracOrdering: 44.0 / 900, FracData: 110.0 / 900},
			}),
		NewTable("sweep-window", "IPC vs scheduling window", "paper constant is 32",
			Options{Uops: 1000, Warmup: 100},
			[]string{"window", "Traditional", "Perfect"},
			[][]string{{"8", "0.912", "0.934"}, {"128", "1.214", "1.402"}}),
	}
	return NewReport("fixture", Options{Uops: 1000, Warmup: 100}, recs)
}

// TestGoldenJSON pins the exact JSON byte layout of every row kind: schema
// consumers parse these files, so layout drift must be deliberate
// (regenerate with -update and bump SchemaVersion when incompatible).
func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fixtureReport()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "report.json", buf.Bytes())
}

// TestGoldenCSV pins the CSV layout the same way.
func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportCSV(&buf, fixtureReport()); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "report.csv", buf.Bytes())
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s — if intentional, regenerate with -update\n--- got ---\n%s", path, got)
	}
}

// TestJSONRoundTrip decodes emitted JSON back into typed records and
// re-emits it: the bytes must be identical and the decoded rows must equal
// the originals, so downstream consumers can rely on lossless parsing.
func TestJSONRoundTrip(t *testing.T) {
	orig := fixtureReport()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := decoded.Validate(); err != nil {
		t.Fatalf("decoded report invalid: %v", err)
	}
	if !reflect.DeepEqual(orig, decoded) {
		t.Fatalf("decode changed the report:\norig: %+v\ndecoded: %+v", orig, decoded)
	}
	var again bytes.Buffer
	if err := WriteJSON(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding a decoded report changed the bytes")
	}
}

func TestValidate(t *testing.T) {
	if err := fixtureReport().Validate(); err != nil {
		t.Fatalf("fixture must validate: %v", err)
	}
	bad := []Record{
		{Schema: "bogus/v9", ID: "x", Kind: KindSpeedup, Rows: []SpeedupRow{}},
		{Schema: SchemaVersion, ID: "", Kind: KindSpeedup, Rows: []SpeedupRow{}},
		{Schema: SchemaVersion, ID: "x", Kind: "nope", Rows: []SpeedupRow{}},
		{Schema: SchemaVersion, ID: "x", Kind: KindSpeedup, Rows: []BankRow{}},
		{Schema: SchemaVersion, ID: "x", Kind: KindTable, Rows: [][]string{{"a"}}},
		// cpistack rows whose causes do not sum to the cycle count.
		{Schema: SchemaVersion, ID: "x", Kind: KindCPIStack, Rows: []CPIStackRow{
			{Key: "g/s", Cycles: 100, Base: 60, DataStall: 30}}},
	}
	for i, rec := range bad {
		if err := rec.Validate(); err == nil {
			t.Errorf("bad record %d validated", i)
		}
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := DecodeRecord([]byte(`{"id":"x","kind":"mystery","rows":[]}`)); err == nil {
		t.Fatal("unknown kind must fail to decode")
	}
	if _, err := DecodeRecord([]byte(`{"id":"x","kind":"speedup","rows":[{"speedup":"NaN-ish"}]}`)); err == nil {
		t.Fatal("mistyped rows must fail to decode")
	}
}

func TestCSVHasHeaderPerRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportCSV(&buf, fixtureReport()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# fig5 —", "key,loads,ac_pc",
		"# fig7 —", "group,machine,scheme,predictor,trace,aggregate,speedup,dropped",
		"# cpistack —", "key,cycles,uops,cpi,base,frontend,window_full",
		"# sweep-window —", "window,Traditional,Perfect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRunnerCountersString(t *testing.T) {
	s := RunnerCounters{Jobs: 10, Simulated: 4, MemoHits: 5, Coalesced: 1,
		MapTasks: 10, SimMillis: 1234.5, CacheEntries: 4}.String()
	for _, want := range []string{"10 jobs", "4 simulated", "5 memo hits", "1 coalesced", "4 cache entries"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
	// No store traffic → no disk clause.
	if strings.Contains(s, "disk hits") {
		t.Errorf("summary mentions disk hits without a store: %s", s)
	}
	s = RunnerCounters{Jobs: 10, DiskHits: 10, StoreWrites: 3, StoreCorrupt: 1}.String()
	for _, want := range []string{"10 disk hits", "3 writes", "1 corrupt"} {
		if !strings.Contains(s, want) {
			t.Errorf("store summary missing %q: %s", want, s)
		}
	}
}

// TestCSVFloat32Shortest: float32 fields must format at 32-bit precision —
// FormatFloat with bitSize 64 would render float32(0.1) as
// "0.10000000149011612".
func TestCSVFloat32Shortest(t *testing.T) {
	row := struct {
		A float32
		B float64
	}{A: 0.1, B: 0.1}
	cells := csvCells(reflect.ValueOf(row), []int{0, 1})
	if cells[0] != "0.1" {
		t.Errorf("float32 cell = %q, want \"0.1\"", cells[0])
	}
	if cells[1] != "0.1" {
		t.Errorf("float64 cell = %q, want \"0.1\"", cells[1])
	}
	big := struct{ A float32 }{A: 16777217} // rounds to 1.6777216e+07 in float32
	if got := csvCells(reflect.ValueOf(big), []int{0})[0]; got != "1.6777216e+07" {
		t.Errorf("large float32 cell = %q, want \"1.6777216e+07\"", got)
	}
}

// TestCSVSkipsDashFields: `json:"-"` must exclude a field from the header
// and the cells together (the header used to emit a literal "-" column
// while the cells still emitted the value, shifting every later column).
func TestCSVSkipsDashFields(t *testing.T) {
	type row struct {
		Name    string  `json:"name"`
		Secret  string  `json:"-"`
		Dash    string  `json:"-,"` // encoding/json: a column actually named "-"
		NoName  float64 `json:",omitempty"`
		Untaged int
	}
	typ := reflect.TypeOf(row{})
	fields := csvFields(typ)
	header := csvHeader(typ, fields)
	want := []string{"name", "-", "NoName", "Untaged"}
	if !reflect.DeepEqual(header, want) {
		t.Fatalf("header = %v, want %v", header, want)
	}
	cells := csvCells(reflect.ValueOf(row{Name: "n", Secret: "s", Dash: "d", NoName: 1.5, Untaged: 7}), fields)
	if !reflect.DeepEqual(cells, []string{"n", "d", "1.5", "7"}) {
		t.Fatalf("cells = %v; header and cells must agree on the field set", cells)
	}
	if len(cells) != len(header) {
		t.Fatalf("cells (%d) and header (%d) diverge in width", len(cells), len(header))
	}
}

// TestTournamentRoundTrip: tournament records must decode like every other
// kind (DecodeRecord used to reject them, breaking remote streaming).
func TestTournamentRoundTrip(t *testing.T) {
	rec := New("tournament", KindTournament, "Policy tournament", "",
		Options{Uops: 1000, Warmup: 100},
		[]TournamentRow{
			{Group: "SysmarkNT", Policy: "default", Rank: 1, Cycles: 100, Uops: 120,
				CPI: 100.0 / 120, Speedup: 1, Base: 60, OrderingWait: 30, DataStall: 10,
				FracBase: 0.6, FracOrdering: 0.3, FracData: 0.1},
		})
	rep := NewReport("tournament", rec.Options, []Record{rec})
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding a tournament report: %v", err)
	}
	if !reflect.DeepEqual(rep, decoded) {
		t.Fatalf("decode changed the report:\norig: %+v\ndecoded: %+v", rep, decoded)
	}
	var again bytes.Buffer
	if err := WriteJSON(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding a decoded tournament report changed the bytes")
	}
}
