package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// BarChart renders labelled horizontal bars as text — the terminal stand-in
// for the paper's bar figures. Bars scale to Width characters at the
// maximum value (or at Max when set, e.g. 1.0 for fractions).
type BarChart struct {
	// Title heads the chart.
	Title string
	// Note is an optional caption line under the title (e.g. a warning that
	// degenerate values were excluded from an aggregate).
	Note string
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Max pins the full-scale value; 0 means scale to the largest bar.
	Max float64
	// Baseline, when nonzero, draws bars from that value instead of zero —
	// speedup charts use Baseline 1 so a 1.15 speedup shows as a 0.15 bar.
	Baseline float64
	// FormatValue renders the value label (default "%.3f").
	FormatValue func(float64) string

	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart. Out-of-range values clamp rather than corrupt
// the drawing: values below Baseline draw an empty bar, values above Max a
// full-scale one, and NaN/Inf values draw empty with their label printed,
// so a degenerate data point is visible without breaking the layout. An
// empty chart renders just its title and note.
func (c *BarChart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	if c.Note != "" {
		fmt.Fprintln(w, c.Note)
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.FormatValue
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3f", v) }
	}
	scale := c.Max - c.Baseline
	if c.Max == 0 {
		scale = 0
		for _, v := range c.values {
			if rel := v - c.Baseline; rel > scale && !math.IsInf(rel, 1) && !math.IsNaN(rel) {
				scale = rel
			}
		}
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range c.labels {
		rel := c.values[i] - c.Baseline
		n := 0
		if scale > 0 && rel > 0 && !math.IsNaN(rel) && !math.IsInf(rel, 1) {
			n = int(rel/scale*float64(width) + 0.5)
			if n > width {
				n = width
			}
		}
		fmt.Fprintf(w, "%-*s %s%s %s\n", labelW, l,
			strings.Repeat("█", n), strings.Repeat("·", width-n), format(c.values[i]))
	}
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}
