package stats

import (
	"fmt"
	"io"
	"strings"
)

// BarChart renders labelled horizontal bars as text — the terminal stand-in
// for the paper's bar figures. Bars scale to Width characters at the
// maximum value (or at Max when set, e.g. 1.0 for fractions).
type BarChart struct {
	// Title heads the chart.
	Title string
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Max pins the full-scale value; 0 means scale to the largest bar.
	Max float64
	// Baseline, when nonzero, draws bars from that value instead of zero —
	// speedup charts use Baseline 1 so a 1.15 speedup shows as a 0.15 bar.
	Baseline float64
	// FormatValue renders the value label (default "%.3f").
	FormatValue func(float64) string

	labels []string
	values []float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.FormatValue
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3f", v) }
	}
	scale := c.Max - c.Baseline
	if c.Max == 0 {
		for _, v := range c.values {
			if v-c.Baseline > scale {
				scale = v - c.Baseline
			}
		}
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range c.labels {
		rel := c.values[i] - c.Baseline
		n := 0
		if scale > 0 && rel > 0 {
			n = int(rel/scale*float64(width) + 0.5)
			if n > width {
				n = width
			}
		}
		fmt.Fprintf(w, "%-*s %s%s %s\n", labelW, l,
			strings.Repeat("█", n), strings.Repeat("·", width-n), format(c.values[i]))
	}
}

// String renders the chart to a string.
func (c *BarChart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}
