package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "Demo",
		Note:    "a note",
		Columns: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1.0")
	tbl.AddRow("a-much-longer-name", "2.25")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if lines[1] != "====" {
		t.Fatalf("underline = %q", lines[1])
	}
	if lines[2] != "a note" {
		t.Fatalf("note = %q", lines[2])
	}
	// Header and body rows must align: the value column is right-aligned.
	if !strings.HasSuffix(lines[3], "value") {
		t.Fatalf("header = %q", lines[3])
	}
	if !strings.HasSuffix(lines[5], " 1.0") {
		t.Fatalf("row = %q", lines[5])
	}
	// All body lines equal width (alignment).
	if len(lines[5]) != len(lines[6]) {
		t.Fatalf("rows not aligned: %q vs %q", lines[5], lines[6])
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := Table{Columns: []string{"a"}}
	tbl.AddRow("x")
	out := tbl.String()
	if strings.Contains(out, "=") && strings.Index(out, "=") < strings.Index(out, "a") {
		t.Fatalf("unexpected title underline: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Pct2(0.12345) != "12.35%" {
		t.Errorf("Pct2 = %q", Pct2(0.12345))
	}
	if F3(1.23456) != "1.235" {
		t.Errorf("F3 = %q", F3(1.23456))
	}
	if F2(1.23456) != "1.23" {
		t.Errorf("F2 = %q", F2(1.23456))
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	// Non-positive entries are skipped, not fatal.
	if g := GeoMean([]float64{0, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean with zero = %v", g)
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("all non-positive should give 0")
	}
}

func TestPropertyGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 && x > 1e-100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		g := GeoMean(xs)
		return g >= lo*(1-1e-9) && g <= hi*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGeoMeanLEArithMean(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarChartRender(t *testing.T) {
	c := BarChart{Title: "Chart", Width: 10}
	c.Add("a", 1.0)
	c.Add("bb", 0.5)
	c.Add("c", 0.0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Chart" {
		t.Fatalf("title = %q", lines[0])
	}
	if !strings.Contains(lines[1], "██████████") {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], "█████·····") {
		t.Fatalf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "█") {
		t.Fatalf("zero bar drew blocks: %q", lines[3])
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[1], "a  ") || !strings.HasPrefix(lines[2], "bb ") {
		t.Fatalf("labels misaligned: %q / %q", lines[1], lines[2])
	}
}

func TestBarChartBaseline(t *testing.T) {
	c := BarChart{Width: 10, Baseline: 1, Max: 2}
	c.Add("speedup", 1.5)
	c.Add("baseline", 1.0)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "█████·····") {
		t.Fatalf("baseline-relative bar wrong: %q", lines[0])
	}
	if strings.Contains(lines[1], "█") {
		t.Fatalf("baseline bar should be empty: %q", lines[1])
	}
}

func TestBarChartCustomFormat(t *testing.T) {
	c := BarChart{Width: 4, FormatValue: func(v float64) string { return Pct(v) }}
	c.Add("x", 0.5)
	if !strings.Contains(c.String(), "50.0%") {
		t.Fatalf("custom format ignored: %q", c.String())
	}
}

func TestGeoMeanCounted(t *testing.T) {
	for _, tc := range []struct {
		name    string
		in      []float64
		want    float64
		dropped int
	}{
		{"all-positive", []float64{1, 1, 1}, 1, 0},
		{"one-zero", []float64{2, 0, 8}, 4, 1},
		{"one-negative", []float64{2, -3, 8}, 4, 1},
		{"all-dropped", []float64{0, -1}, 0, 2},
		{"empty", nil, 0, 0},
	} {
		m, d := GeoMeanCounted(tc.in)
		if math.Abs(m-tc.want) > 1e-12 || d != tc.dropped {
			t.Errorf("%s: GeoMeanCounted(%v) = (%v, %d), want (%v, %d)",
				tc.name, tc.in, m, d, tc.want, tc.dropped)
		}
	}
}

// TestGeoMeanMatchesCounted: the plain form is exactly the counted form's
// mean, for any input.
func TestGeoMeanMatchesCounted(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		m, _ := GeoMeanCounted(xs)
		return GeoMean(xs) == m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTableRaggedRows pins the ragged-row fix: a row with more cells than
// Columns must still align — before the fix its trailing cells were sized
// with width 0, collapsing the layout.
func TestTableRaggedRows(t *testing.T) {
	tbl := Table{Columns: []string{"name", "v"}}
	tbl.AddRow("a", "1", "extra-wide-cell", "x")
	tbl.AddRow("b", "2", "short", "yy")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// lines: header, separator, row a, row b.
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("ragged rows not aligned:\n%q\n%q", lines[2], lines[3])
	}
	if !strings.Contains(lines[2], "extra-wide-cell") {
		t.Fatalf("trailing cell lost: %q", lines[2])
	}
	// The separator must span every materialised column, not just Columns.
	if n := strings.Count(lines[1], "-"); n < len("extra-wide-cell") {
		t.Fatalf("separator too short (%d dashes): %q", n, lines[1])
	}
	// The wide trailing cell must win the width for the shorter row too:
	// row b's "yy" column starts where row a's "x" column starts.
	if strings.Index(lines[2], " x") < strings.Index(lines[2], "extra-wide-cell") {
		t.Fatalf("column order broken: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := Table{Title: "skip me", Note: "and me", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "with,comma")
	tbl.AddRow("2", `with"quote`)
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"with,comma\"\n2,\"with\"\"quote\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
	if strings.Contains(b.String(), "skip me") {
		t.Fatal("Title leaked into CSV")
	}
}

// TestBarChartClamping pins the out-of-range rendering contract: below
// Baseline draws empty, above Max draws exactly full scale, NaN draws empty
// — none of them corrupt the layout.
func TestBarChartClamping(t *testing.T) {
	c := BarChart{Width: 10, Baseline: 1, Max: 2}
	c.Add("below", 0.5)
	c.Add("above", 9.9)
	c.Add("nan", math.NaN())
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if strings.Contains(lines[0], "█") {
		t.Fatalf("below-baseline bar drew blocks: %q", lines[0])
	}
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) || strings.Count(lines[1], "█") != 10 {
		t.Fatalf("above-max bar not clamped to full width: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Fatalf("NaN bar drew blocks: %q", lines[2])
	}
	for _, l := range lines {
		if n := strings.Count(l, "█") + strings.Count(l, "·"); n != 10 {
			t.Fatalf("bar area is %d cells, want 10: %q", n, l)
		}
	}
}

// TestBarChartAutoScaleIgnoresDegenerate: with Max unset the scale comes
// from the largest finite bar, so one Inf value cannot flatten the rest.
func TestBarChartAutoScaleIgnoresDegenerate(t *testing.T) {
	c := BarChart{Width: 10}
	c.Add("inf", math.Inf(1))
	c.Add("real", 2.0)
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if !strings.Contains(lines[1], strings.Repeat("█", 10)) {
		t.Fatalf("finite max did not set the scale: %q", lines[1])
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := BarChart{Title: "Empty", Note: "nothing to plot"}
	if got := c.String(); got != "Empty\nnothing to plot\n" {
		t.Fatalf("empty chart = %q", got)
	}
	var zero BarChart
	if got := zero.String(); got != "" {
		t.Fatalf("zero chart = %q", got)
	}
}

func TestBarChartNote(t *testing.T) {
	c := BarChart{Title: "T", Note: "[warning: 2 dropped]", Width: 4}
	c.Add("x", 1)
	lines := strings.Split(c.String(), "\n")
	if lines[1] != "[warning: 2 dropped]" {
		t.Fatalf("note not under title: %q", lines[1])
	}
}
