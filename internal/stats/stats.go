// Package stats provides the small table/number formatting layer the
// experiment drivers and the CLI share: every paper figure is reproduced as
// an aligned text table.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells rendered as aligned text.
type Table struct {
	// Title heads the rendered table (e.g. "Figure 7 — Speedup vs Memory
	// Ordering Scheme").
	Title string
	// Note is an optional caption line under the title.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows are the body cells; each row should have len(Columns) cells.
	Rows [][]string
}

// AddRow appends a body row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text. Column widths are sized over the
// widest row, not just the header: a row carrying more cells than Columns
// still aligns (its trailing cells get real widths instead of width 0).
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	ncols := len(t.Columns)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, cell := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%-*s", wdt, cell))
			} else {
				parts = append(parts, fmt.Sprintf("%*s", wdt, cell))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, ncols)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table's header and body as CSV — the table-shaped half of
// the machine-readable results layer (internal/results wraps it in versioned
// records). Title and Note are presentation and do not appear; ragged rows
// emit as-is.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Pct formats a fraction as "12.3%".
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Pct2 formats a fraction as "12.34%" (for the sub-percent quantities of
// Figures 9 and 10).
func Pct2(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// F3 formats a ratio with three decimals (speedups, metrics).
func F3(x float64) string { return fmt.Sprintf("%.3f", x) }

// F2 formats with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice); speedup
// averages across traces use it, as is conventional. Non-positive values,
// for which the geometric mean is undefined, are excluded; callers that need
// to detect such values use GeoMeanCounted.
func GeoMean(xs []float64) float64 {
	m, _ := GeoMeanCounted(xs)
	return m
}

// GeoMeanCounted returns the geometric mean of the positive values of xs and
// the number of non-positive values that had to be excluded. A non-zero
// count signals a degenerate input — a zero-IPC simulation or a corrupted
// speedup — that a plain GeoMean would silently absorb; table producers
// surface it as a warning. The mean is 0 when no positive values remain.
func GeoMeanCounted(xs []float64) (mean float64, dropped int) {
	logSum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			dropped++
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0, dropped
	}
	return math.Exp(logSum / float64(n)), dropped
}
