package predict

// Tournament is McFarling's combining predictor ([Mcfa93], cited by the
// paper): two component predictors plus a per-key table of 2-bit chooser
// counters that learns which component to trust for each key. Where the
// paper's hybrid HMP votes by majority, the tournament *selects* — useful
// when one component dominates for some loads and the other elsewhere. The
// chooser counters live in a flat ctrTable byte array.
type Tournament struct {
	a, b      Binary
	chooser   ctrTable
	indexBits uint
}

// NewTournament builds a tournament of a and b with 2^indexBits chooser
// counters. The chooser predicts "use B" when its counter is high.
func NewTournament(a, b Binary, indexBits uint) *Tournament {
	return &Tournament{
		a: a, b: b, indexBits: indexBits,
		chooser: newCtrTable(1<<indexBits, 2, satInit(2)),
	}
}

func (t *Tournament) index(key uint64) uint64 { return hashIP(key) & mask(t.indexBits) }

// Predict implements Binary.
func (t *Tournament) Predict(key uint64) Prediction {
	if t.chooser.taken(t.index(key)) {
		return t.b.Predict(key)
	}
	return t.a.Predict(key)
}

// Update implements Binary: both components train; the chooser moves toward
// whichever component was right when exactly one of them was.
func (t *Tournament) Update(key uint64, outcome bool) {
	pa := t.a.Predict(key).Taken == outcome
	pb := t.b.Predict(key).Taken == outcome
	if pa != pb {
		t.chooser.train(t.index(key), pb)
	}
	t.a.Update(key, outcome)
	t.b.Update(key, outcome)
}

// Reset implements Binary.
func (t *Tournament) Reset() {
	t.a.Reset()
	t.b.Reset()
	t.chooser.reset()
}
