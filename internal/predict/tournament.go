package predict

// Tournament is McFarling's combining predictor ([Mcfa93], cited by the
// paper): two component predictors plus a per-key table of 2-bit chooser
// counters that learns which component to trust for each key. Where the
// paper's hybrid HMP votes by majority, the tournament *selects* — useful
// when one component dominates for some loads and the other elsewhere.
type Tournament struct {
	a, b      Binary
	chooser   []SatCounter
	indexBits uint
}

// NewTournament builds a tournament of a and b with 2^indexBits chooser
// counters. The chooser predicts "use B" when its counter is high.
func NewTournament(a, b Binary, indexBits uint) *Tournament {
	t := &Tournament{a: a, b: b, indexBits: indexBits}
	t.resetChooser()
	return t
}

func (t *Tournament) resetChooser() {
	if t.chooser == nil {
		t.chooser = make([]SatCounter, 1<<t.indexBits)
	}
	init := NewSatCounter(2)
	for i := range t.chooser {
		t.chooser[i] = init
	}
}

func (t *Tournament) index(key uint64) uint64 { return hashIP(key) & mask(t.indexBits) }

// Predict implements Binary.
func (t *Tournament) Predict(key uint64) Prediction {
	if t.chooser[t.index(key)].Taken() {
		return t.b.Predict(key)
	}
	return t.a.Predict(key)
}

// Update implements Binary: both components train; the chooser moves toward
// whichever component was right when exactly one of them was.
func (t *Tournament) Update(key uint64, outcome bool) {
	pa := t.a.Predict(key).Taken == outcome
	pb := t.b.Predict(key).Taken == outcome
	if pa != pb {
		t.chooser[t.index(key)].Train(pb)
	}
	t.a.Update(key, outcome)
	t.b.Update(key, outcome)
}

// Reset implements Binary.
func (t *Tournament) Reset() {
	t.a.Reset()
	t.b.Reset()
	t.resetChooser()
}
