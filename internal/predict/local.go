package predict

// Local is the two-level local-history predictor adapted in the paper for
// hit-miss prediction ("instead of recording the taken/not-taken history of
// each branch, we record the hit/miss history of each load"). Level one is a
// tagless table of per-address history registers; level two is a pattern
// table of saturating counters indexed by the history value. Both levels
// are flat primitive arrays: histories are uint32 (historyLen is at most
// 24 bits) and the pattern counters live in a ctrTable byte array.
type Local struct {
	histories   []uint32
	pattern     ctrTable
	indexBits   uint
	historyLen  uint
	counterBits uint
}

// NewLocal returns a local predictor with 2^indexBits history registers of
// historyLen bits each, and a 2^historyLen-entry pattern table of
// counterBits-bit counters. The paper's HMP uses indexBits=11 (2048 entries)
// and historyLen=8 (~2KB).
func NewLocal(indexBits, historyLen, counterBits uint) *Local {
	if historyLen == 0 || historyLen > 24 {
		panic("predict: local history length out of range")
	}
	l := &Local{indexBits: indexBits, historyLen: historyLen, counterBits: counterBits}
	l.histories = make([]uint32, 1<<indexBits)
	l.pattern = newCtrTable(1<<historyLen, counterBits, satInit(counterBits))
	return l
}

func (l *Local) index(key uint64) uint64 { return hashIP(key) & mask(l.indexBits) }

// Predict implements Binary.
func (l *Local) Predict(key uint64) Prediction {
	return l.pattern.predict(uint64(l.histories[l.index(key)]))
}

// Update implements Binary.
func (l *Local) Update(key uint64, outcome bool) {
	i := l.index(key)
	h := l.histories[i]
	l.pattern.train(uint64(h), outcome)
	h = (h << 1) & uint32(mask(l.historyLen))
	if outcome {
		h |= 1
	}
	l.histories[i] = h
}

// WithInit sets the initial pattern-counter value and re-initializes the
// predictor. Rare-event adapters (e.g. hit-miss prediction, where a "taken"
// outcome is a cache miss) initialize at 0 (strongly not-taken) so that a
// single stray outcome in a shared pattern entry does not flip predictions
// for every load whose history maps there.
func (l *Local) WithInit(v uint8) *Local {
	l.pattern.init = v
	l.Reset()
	return l
}

// Reset implements Binary. Both levels are allocated once and reinitialized
// in place, so a reset predictor is reusable without regrowing the heap.
func (l *Local) Reset() {
	clear(l.histories)
	l.pattern.reset()
}

// Size returns the number of level-one entries.
func (l *Local) Size() int { return len(l.histories) }
