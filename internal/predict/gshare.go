package predict

// GShare is McFarling's global-history predictor: one pattern table indexed
// by the XOR of the key hash with a global outcome history. The paper's
// hybrid HMP uses an 11-outcome load-global history; bank predictors use a
// history of recent bank outcomes. The counters live in a flat ctrTable
// byte array.
type GShare struct {
	table       ctrTable
	history     uint64
	indexBits   uint
	historyLen  uint
	counterBits uint
}

// NewGShare returns a gshare predictor with 2^indexBits counters and a
// historyLen-outcome global history (historyLen <= indexBits is typical but
// not required; the history is folded to the index width).
func NewGShare(indexBits, historyLen, counterBits uint) *GShare {
	g := &GShare{indexBits: indexBits, historyLen: historyLen, counterBits: counterBits}
	g.table = newCtrTable(1<<indexBits, counterBits, satInit(counterBits))
	return g
}

func (g *GShare) index(key uint64) uint64 {
	h := g.history & mask(g.historyLen)
	// Fold a history longer than the index down to the index width.
	for bits := g.historyLen; bits > g.indexBits; bits -= g.indexBits {
		h = (h & mask(g.indexBits)) ^ (h >> g.indexBits)
	}
	return (hashIP(key) ^ h) & mask(g.indexBits)
}

// Predict implements Binary.
func (g *GShare) Predict(key uint64) Prediction {
	return g.table.predict(g.index(key))
}

// Update implements Binary.
func (g *GShare) Update(key uint64, outcome bool) {
	g.table.train(g.index(key), outcome)
	g.history <<= 1
	if outcome {
		g.history |= 1
	}
}

// WithInit sets the initial counter value and re-initializes; rare-event
// adapters (hit-miss prediction) use 0 so shared entries default strongly to
// the common outcome.
func (g *GShare) WithInit(v uint8) *GShare {
	g.table.init = v
	g.Reset()
	return g
}

// Reset implements Binary. The table is allocated once and reinitialized in
// place, so a reset predictor is reusable without regrowing the heap.
func (g *GShare) Reset() {
	g.table.reset()
	g.history = 0
}

// History returns the current global history value (low historyLen bits).
func (g *GShare) History() uint64 { return g.history & mask(g.historyLen) }
