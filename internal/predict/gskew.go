package predict

// GSkew is the skewed global predictor of Michaud, Seznec and Uhlig
// ([Mich97]): three counter banks indexed by three different hash functions
// of (key, global history), with a majority vote across banks. Skewing
// spreads aliases so that two keys that collide in one bank rarely collide in
// another. The paper's hybrid HMP uses 3 tables of 1K entries over a
// 20-outcome history; bank predictors A and C use a 17-outcome history.
//
// The three banks live in ONE flat ctrTable: bank b occupies entries
// [b<<indexBits, (b+1)<<indexBits), so a vote touches one byte array.
type GSkew struct {
	banks       ctrTable
	history     uint64
	indexBits   uint
	historyLen  uint
	counterBits uint
}

// NewGSkew returns a gskew predictor with three 2^indexBits-entry banks and a
// historyLen-outcome global history.
func NewGSkew(indexBits, historyLen, counterBits uint) *GSkew {
	g := &GSkew{indexBits: indexBits, historyLen: historyLen, counterBits: counterBits}
	g.banks = newCtrTable(3<<indexBits, counterBits, satInit(counterBits))
	return g
}

// skewHash mixes key and history with a per-bank multiplier so that the three
// bank indices are decorrelated, then offsets into the bank's slice of the
// flat table. This stands in for the H/H^-1 skewing functions of [Mich97];
// only the decorrelation property matters here.
func (g *GSkew) skewHash(bank int, key uint64) uint64 {
	var muls = [3]uint64{0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f, 0x165667b19e3779f9}
	v := hashIP(key) ^ (g.history & mask(g.historyLen))
	v *= muls[bank]
	v ^= v >> 31
	return uint64(bank)<<g.indexBits | v&mask(g.indexBits)
}

// vote tallies the three banks for key; it returns the majority direction
// and the agreeing bank count.
func (g *GSkew) vote(key uint64) (taken bool, agree int) {
	votes := 0
	for b := 0; b < 3; b++ {
		if g.banks.taken(g.skewHash(b, key)) {
			votes++
		}
	}
	taken = votes >= 2
	if taken {
		agree = votes
	} else {
		agree = 3 - votes
	}
	return taken, agree
}

// Predict implements Binary. Confidence is 0 for a 2-1 vote and 2 for a
// unanimous vote, scaled so it is comparable with counter confidences.
func (g *GSkew) Predict(key uint64) Prediction {
	taken, agree := g.vote(key)
	return Prediction{Taken: taken, Confidence: (agree - 2) * 2}
}

// Update implements Binary. Banks follow partial update: all banks train on
// a correct prediction only if they agreed; on a misprediction every bank
// trains toward the outcome ([Mich97] partial-update policy).
func (g *GSkew) Update(key uint64, outcome bool) {
	predicted, _ := g.vote(key)
	for b := 0; b < 3; b++ {
		i := g.skewHash(b, key)
		if predicted == outcome && g.banks.taken(i) != outcome {
			continue // correct overall; do not disturb the dissenting bank
		}
		g.banks.train(i, outcome)
	}
	g.history <<= 1
	if outcome {
		g.history |= 1
	}
}

// WithInit sets the initial counter value and re-initializes; see
// GShare.WithInit.
func (g *GSkew) WithInit(v uint8) *GSkew {
	g.banks.init = v
	g.Reset()
	return g
}

// Reset implements Binary. The flat bank table is allocated once and
// reinitialized in place, so a reset predictor is reusable without regrowing
// the heap.
func (g *GSkew) Reset() {
	g.banks.reset()
	g.history = 0
}
