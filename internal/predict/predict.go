// Package predict provides the reusable binary-predictor kit the paper's
// three techniques are built from. Hit-miss prediction, bank prediction and
// the front-end branch predictor all adapt "well-known branch predictors"
// (local two-level, gshare, gskew, bimodal) to a binary decision keyed by an
// instruction pointer; this package implements those predictors once.
//
// All predictors implement the Binary interface: Predict is pure (no state
// change), Update records the actual outcome and advances any internal
// history. Confidence is a small non-negative integer where larger means more
// confident; each predictor documents its own scale.
package predict

import "fmt"

// Prediction is a binary prediction with a confidence estimate.
type Prediction struct {
	// Taken is the predicted outcome. The meaning of "taken" is up to the
	// adapter: branch taken, load colliding, cache miss, bank 1, ...
	Taken bool
	// Confidence grows with the predictor's certainty. Zero means a guess
	// (e.g. an unwarmed counter at the weakly-taken boundary).
	Confidence int
}

// Binary is a two-outcome predictor keyed by an address (typically a load's
// instruction pointer).
type Binary interface {
	// Predict returns the prediction for key without mutating state.
	Predict(key uint64) Prediction
	// Update records the true outcome for key and advances internal history.
	Update(key uint64, outcome bool)
	// Reset clears all tables and history.
	Reset()
}

// SatCounter is an n-bit saturating counter. The zero value is a 2-bit
// counter at its weakly-not-taken state only after Init; use NewSatCounter
// or embed counters in tables which initialize them explicitly.
type SatCounter struct {
	value uint8
	max   uint8
}

// NewSatCounter returns an n-bit counter (1 <= bits <= 7) initialized to the
// weakly-not-taken value (max/2, rounded down).
func NewSatCounter(bits uint) SatCounter {
	if bits < 1 || bits > 7 {
		panic(fmt.Sprintf("predict: invalid counter width %d", bits))
	}
	max := uint8(1)<<bits - 1
	return SatCounter{value: max / 2, max: max}
}

// Inc increments toward saturation.
func (c *SatCounter) Inc() {
	if c.value < c.max {
		c.value++
	}
}

// Dec decrements toward zero.
func (c *SatCounter) Dec() {
	if c.value > 0 {
		c.value--
	}
}

// Train moves the counter toward the outcome.
func (c *SatCounter) Train(outcome bool) {
	if outcome {
		c.Inc()
	} else {
		c.Dec()
	}
}

// Taken reports the predicted direction (counter in the upper half).
func (c *SatCounter) Taken() bool { return c.value > c.max/2 }

// Value returns the raw counter value.
func (c *SatCounter) Value() uint8 { return c.value }

// Max returns the saturation value.
func (c *SatCounter) Max() uint8 { return c.max }

// Confidence returns the distance from the decision boundary, in counter
// steps: 0 at the boundary, up to max/2+ at saturation.
func (c *SatCounter) Confidence() int {
	mid := int(c.max) / 2
	v := int(c.value)
	if v > mid {
		return v - mid - 1 + boundaryBias(c.max)
	}
	return mid - v
}

// boundaryBias makes confidence symmetric for even-state counters: a 2-bit
// counter (max=3, mid=1) yields confidence {1,0,0,1} for values {0,1,2,3}.
func boundaryBias(max uint8) int {
	if max%2 == 1 {
		return 0
	}
	return 1
}

// ctrTable is a flat table of n-bit saturating counters in
// structure-of-arrays form: one raw byte per counter plus a single
// table-wide saturation value and init value, instead of a []SatCounter
// whose every entry carries its own max. Half the footprint, and reset is a
// dense byte fill. Semantics (Taken boundary, Train clamping, Confidence
// scale) are identical to SatCounter's, per entry.
type ctrTable struct {
	v    []uint8
	max  uint8
	init uint8
}

// newCtrTable builds a size-entry table of counterBits-bit counters
// initialized to init (pass satInit(counterBits) for the canonical
// weakly-not-taken start).
func newCtrTable(size int, counterBits uint, init uint8) ctrTable {
	if counterBits < 1 || counterBits > 7 {
		panic(fmt.Sprintf("predict: invalid counter width %d", counterBits))
	}
	t := ctrTable{v: make([]uint8, size), max: uint8(1)<<counterBits - 1, init: init}
	t.reset()
	return t
}

// satInit is the weakly-not-taken initial value of a counterBits-bit
// counter — what NewSatCounter starts at.
func satInit(counterBits uint) uint8 { return (uint8(1)<<counterBits - 1) / 2 }

// reset refills every counter with the init value, in place.
func (t *ctrTable) reset() {
	for i := range t.v {
		t.v[i] = t.init
	}
}

// taken reports counter i's predicted direction (upper half of the range).
func (t *ctrTable) taken(i uint64) bool { return t.v[i] > t.max/2 }

// train moves counter i toward the outcome, saturating.
func (t *ctrTable) train(i uint64, outcome bool) {
	if outcome {
		if t.v[i] < t.max {
			t.v[i]++
		}
	} else if t.v[i] > 0 {
		t.v[i]--
	}
}

// confidence returns counter i's distance from the decision boundary, on
// SatCounter.Confidence's scale.
func (t *ctrTable) confidence(i uint64) int {
	mid := int(t.max) / 2
	v := int(t.v[i])
	if v > mid {
		return v - mid - 1 + boundaryBias(t.max)
	}
	return mid - v
}

// predict bundles counter i's direction and confidence.
func (t *ctrTable) predict(i uint64) Prediction {
	return Prediction{Taken: t.taken(i), Confidence: t.confidence(i)}
}

func mask(bits uint) uint64 { return (uint64(1) << bits) - 1 }

// hashIP folds an instruction pointer so that low entropy in the byte-aligned
// bits does not alias whole regions of the table.
func hashIP(ip uint64) uint64 {
	ip ^= ip >> 33
	ip *= 0xff51afd7ed558ccd
	ip ^= ip >> 29
	return ip
}
