package predict

// Bimodal is the classic per-address table of saturating counters, indexed by
// a hash of the key with no history. It is the simplest component predictor
// the paper combines into bank predictor B. The counters live in a flat
// ctrTable byte array.
type Bimodal struct {
	table       ctrTable
	indexBits   uint
	counterBits uint
}

// NewBimodal returns a bimodal predictor with 2^indexBits counters of
// counterBits each.
func NewBimodal(indexBits, counterBits uint) *Bimodal {
	b := &Bimodal{indexBits: indexBits, counterBits: counterBits}
	b.table = newCtrTable(1<<indexBits, counterBits, satInit(counterBits))
	return b
}

func (b *Bimodal) index(key uint64) uint64 { return hashIP(key) & mask(b.indexBits) }

// Predict implements Binary.
func (b *Bimodal) Predict(key uint64) Prediction {
	return b.table.predict(b.index(key))
}

// Update implements Binary.
func (b *Bimodal) Update(key uint64, outcome bool) {
	b.table.train(b.index(key), outcome)
}

// Reset implements Binary. The table is allocated once and reinitialized in
// place, so a reset predictor is reusable without regrowing the heap.
func (b *Bimodal) Reset() {
	b.table.reset()
}

// Size returns the number of table entries.
func (b *Bimodal) Size() int { return len(b.table.v) }
