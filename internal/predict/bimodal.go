package predict

// Bimodal is the classic per-address table of saturating counters, indexed by
// a hash of the key with no history. It is the simplest component predictor
// the paper combines into bank predictor B.
type Bimodal struct {
	table       []SatCounter
	indexBits   uint
	counterBits uint
}

// NewBimodal returns a bimodal predictor with 2^indexBits counters of
// counterBits each.
func NewBimodal(indexBits, counterBits uint) *Bimodal {
	b := &Bimodal{indexBits: indexBits, counterBits: counterBits}
	b.Reset()
	return b
}

func (b *Bimodal) index(key uint64) uint64 { return hashIP(key) & mask(b.indexBits) }

// Predict implements Binary.
func (b *Bimodal) Predict(key uint64) Prediction {
	c := b.table[b.index(key)]
	return Prediction{Taken: c.Taken(), Confidence: c.Confidence()}
}

// Update implements Binary.
func (b *Bimodal) Update(key uint64, outcome bool) {
	b.table[b.index(key)].Train(outcome)
}

// Reset implements Binary.
func (b *Bimodal) Reset() {
	b.table = make([]SatCounter, 1<<b.indexBits)
	for i := range b.table {
		b.table[i] = NewSatCounter(b.counterBits)
	}
}

// Size returns the number of table entries.
func (b *Bimodal) Size() int { return len(b.table) }
