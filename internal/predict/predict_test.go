package predict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSatCounterBounds(t *testing.T) {
	for _, bits := range []uint{1, 2, 3, 4} {
		c := NewSatCounter(bits)
		max := uint8(1)<<bits - 1
		for i := 0; i < 100; i++ {
			c.Inc()
		}
		if c.Value() != max {
			t.Errorf("bits=%d: after many Inc value=%d want %d", bits, c.Value(), max)
		}
		if !c.Taken() {
			t.Errorf("bits=%d: saturated counter should predict taken", bits)
		}
		for i := 0; i < 100; i++ {
			c.Dec()
		}
		if c.Value() != 0 {
			t.Errorf("bits=%d: after many Dec value=%d want 0", bits, c.Value())
		}
		if c.Taken() {
			t.Errorf("bits=%d: zero counter should predict not-taken", bits)
		}
	}
}

func TestSatCounterInitWeak(t *testing.T) {
	c := NewSatCounter(2)
	if c.Value() != 1 {
		t.Fatalf("2-bit counter should init to 1, got %d", c.Value())
	}
	if c.Taken() {
		t.Fatal("weakly-not-taken should predict not-taken")
	}
	c.Train(true)
	c.Train(true)
	if !c.Taken() {
		t.Fatal("two taken outcomes should flip a 2-bit counter")
	}
}

func TestSatCounterConfidenceSymmetric(t *testing.T) {
	c := NewSatCounter(2)
	// Values 0..3 should have confidences 1,0,0,1.
	want := []int{1, 0, 0, 1}
	for v := 0; v < 4; v++ {
		c.value = uint8(v)
		if got := c.Confidence(); got != want[v] {
			t.Errorf("value=%d confidence=%d want %d", v, got, want[v])
		}
	}
}

func TestSatCounterInvalidWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0-bit counter")
		}
	}()
	NewSatCounter(0)
}

func TestSatCounterTrainNeverEscapesRange(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewSatCounter(uint(n%3 + 1))
		for i := 0; i < 200; i++ {
			c.Train(rng.Intn(2) == 0)
			if c.Value() > c.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// testLearnsFixedBehavior replays a fixed cyclic sequence of keys, each with
// a fixed outcome. The deterministic order keeps global history periodic, so
// every predictor family (per-address and global-history alike) should learn
// the behavior almost perfectly.
func testLearnsFixedBehavior(t *testing.T, p Binary, name string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	keys := make([]uint64, 32)
	out := make([]bool, 32)
	for i := range keys {
		keys[i] = uint64(0x4000 + i*16)
		out[i] = rng.Intn(2) == 0
	}
	// Warmup.
	for step := 0; step < 4000; step++ {
		i := step % len(keys)
		p.Update(keys[i], out[i])
	}
	correct, total := 0, 0
	for step := 0; step < 2000; step++ {
		i := step % len(keys)
		if p.Predict(keys[i]).Taken == out[i] {
			correct++
		}
		total++
		p.Update(keys[i], out[i])
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("%s: accuracy on fixed per-key behavior = %.3f, want >= 0.95", name, acc)
	}
}

func TestBimodalLearnsFixedBehavior(t *testing.T) {
	testLearnsFixedBehavior(t, NewBimodal(12, 2), "bimodal")
}

func TestLocalLearnsFixedBehavior(t *testing.T) {
	testLearnsFixedBehavior(t, NewLocal(11, 8, 2), "local")
}

func TestGShareLearnsFixedBehavior(t *testing.T) {
	testLearnsFixedBehavior(t, NewGShare(12, 11, 2), "gshare")
}

func TestGSkewLearnsFixedBehavior(t *testing.T) {
	testLearnsFixedBehavior(t, NewGSkew(10, 17, 2), "gskew")
}

func TestMajorityLearnsFixedBehavior(t *testing.T) {
	c := NewMajority(NewLocal(9, 8, 2), NewGShare(11, 11, 2), NewGSkew(10, 17, 2))
	testLearnsFixedBehavior(t, c, "majority(local,gshare,gskew)")
}

func TestLocalLearnsAlternatingPattern(t *testing.T) {
	// A local predictor must learn a per-key alternating pattern that defeats
	// a bimodal table.
	l := NewLocal(11, 8, 2)
	key := uint64(0x1234)
	outcome := false
	for i := 0; i < 200; i++ {
		l.Update(key, outcome)
		outcome = !outcome
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if l.Predict(key).Taken == outcome {
			correct++
		}
		l.Update(key, outcome)
		outcome = !outcome
	}
	if correct < 98 {
		t.Errorf("local predictor got %d/100 on alternating pattern", correct)
	}
}

func TestGShareLearnsCorrelatedPattern(t *testing.T) {
	// Outcome of key B equals the previous outcome of key A: global history
	// predictors learn this, per-address ones cannot.
	g := NewGShare(12, 8, 2)
	rng := rand.New(rand.NewSource(7))
	prevA := false
	train := func(n int, score *int, total *int) {
		for i := 0; i < n; i++ {
			a := rng.Intn(2) == 0
			g.Update(0xA000, a)
			if score != nil {
				if g.Predict(0xB000).Taken == a {
					*score++
				}
				*total++
			}
			g.Update(0xB000, a)
			prevA = a
		}
	}
	_ = prevA
	train(3000, nil, nil)
	score, total := 0, 0
	train(1000, &score, &total)
	if acc := float64(score) / float64(total); acc < 0.9 {
		t.Errorf("gshare accuracy on correlated pattern = %.3f, want >= 0.9", acc)
	}
}

func TestCombinedPolicies(t *testing.T) {
	yes := &constPred{taken: true, conf: 3}
	no := &constPred{taken: false, conf: 0}
	t.Run("majority", func(t *testing.T) {
		c := &Combined{Components: []Binary{yes, yes, no}, Policy: Majority}
		r := c.PredictRated(1)
		if !r.Predicted || !r.Taken {
			t.Fatalf("majority of {T,T,F} = %+v, want predicted taken", r)
		}
	})
	t.Run("weighted-sum-threshold", func(t *testing.T) {
		c := &Combined{Components: []Binary{yes, no}, Weights: []int{2, 1}, Policy: WeightedSum, Threshold: 2}
		r := c.PredictRated(1)
		if r.Predicted {
			t.Fatalf("sum=+1 below threshold 2 should abstain, got %+v", r)
		}
		c.Threshold = 1
		r = c.PredictRated(1)
		if !r.Predicted || !r.Taken {
			t.Fatalf("sum=+1 at threshold 1 should predict taken, got %+v", r)
		}
	})
	t.Run("high-confidence", func(t *testing.T) {
		c := &Combined{Components: []Binary{yes, no, no}, Policy: HighConfidence, MinConfidence: 2}
		r := c.PredictRated(1)
		if !r.Predicted || !r.Taken {
			t.Fatalf("only the confident component should vote, got %+v", r)
		}
	})
	t.Run("confidence-weighted", func(t *testing.T) {
		c := &Combined{Components: []Binary{yes, no, no}, Policy: ConfidenceWeighted}
		r := c.PredictRated(1)
		// yes has weight 4, the two no's weight 1 each → sum=+2.
		if !r.Taken || r.Confidence != 2 {
			t.Fatalf("confidence weighting wrong: %+v", r)
		}
	})
}

func TestCombinedUpdateAndReset(t *testing.T) {
	b1, b2 := NewBimodal(4, 2), NewBimodal(4, 2)
	c := NewMajority(b1, b2)
	for i := 0; i < 10; i++ {
		c.Update(5, true)
	}
	if !b1.Predict(5).Taken || !b2.Predict(5).Taken {
		t.Fatal("Update must train all components")
	}
	c.Reset()
	if b1.Predict(5).Taken || b2.Predict(5).Taken {
		t.Fatal("Reset must clear all components")
	}
}

func TestPredictIsPure(t *testing.T) {
	preds := map[string]Binary{
		"bimodal": NewBimodal(8, 2),
		"local":   NewLocal(8, 8, 2),
		"gshare":  NewGShare(8, 8, 2),
		"gskew":   NewGSkew(8, 8, 2),
	}
	for name, p := range preds {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 500; i++ {
			p.Update(uint64(rng.Intn(64)), rng.Intn(2) == 0)
		}
		key := uint64(17)
		first := p.Predict(key)
		for i := 0; i < 10; i++ {
			if got := p.Predict(key); got != first {
				t.Errorf("%s: Predict mutated state (call %d: %+v != %+v)", name, i, got, first)
			}
		}
	}
}

func TestGShareHistoryFolding(t *testing.T) {
	// historyLen > indexBits must not panic and must still learn.
	g := NewGShare(8, 20, 2)
	testLearnsFixedBehavior(t, g, "gshare-folded")
}

func TestResetClearsLearning(t *testing.T) {
	for name, p := range map[string]Binary{
		"bimodal": NewBimodal(8, 2),
		"local":   NewLocal(8, 8, 2),
		"gshare":  NewGShare(8, 8, 2),
		"gskew":   NewGSkew(8, 8, 2),
	} {
		for i := 0; i < 50; i++ {
			p.Update(99, true)
		}
		if !p.Predict(99).Taken {
			t.Errorf("%s: did not learn before reset", name)
			continue
		}
		p.Reset()
		if p.Predict(99).Taken {
			t.Errorf("%s: still predicts taken after Reset", name)
		}
	}
}

// constPred is a test stub with a fixed prediction.
type constPred struct {
	taken bool
	conf  int
}

func (c *constPred) Predict(uint64) Prediction { return Prediction{Taken: c.taken, Confidence: c.conf} }
func (c *constPred) Update(uint64, bool)       {}
func (c *constPred) Reset()                    {}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Majority:           "majority",
		WeightedSum:        "weighted-sum",
		HighConfidence:     "high-confidence",
		ConfidenceWeighted: "confidence-weighted",
	} {
		if p.String() != want {
			t.Errorf("Policy(%d).String()=%q want %q", p, p.String(), want)
		}
	}
}
