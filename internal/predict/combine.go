package predict

// This file implements the combination policies of paper §2.3: several
// component binary predictors each supply a prediction and a confidence, and
// a policy merges them. The hybrid hit-miss predictor of §2.2 is the Majority
// policy over {local, gshare, gskew}.

// Policy selects how component predictions are merged by a Combined
// predictor.
type Policy int

const (
	// Majority takes a simple majority vote of the component directions.
	Majority Policy = iota
	// WeightedSum assigns a static weight to each component, sums signed
	// votes, and predicts only if |sum| >= Threshold.
	WeightedSum
	// HighConfidence counts only components whose confidence is at least
	// MinConfidence; if none qualify there is no prediction.
	HighConfidence
	// ConfidenceWeighted weighs each component's vote by its reported
	// confidence plus one.
	ConfidenceWeighted
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Majority:
		return "majority"
	case WeightedSum:
		return "weighted-sum"
	case HighConfidence:
		return "high-confidence"
	case ConfidenceWeighted:
		return "confidence-weighted"
	default:
		return "policy(?)"
	}
}

// Combined merges several Binary predictors under a Policy. It implements
// Binary itself (Predict always produces a direction) and additionally
// PredictRated, which may abstain — abstention is what the bank-prediction
// "prediction rate" measures.
type Combined struct {
	// Components are the underlying predictors.
	Components []Binary
	// Weights are per-component weights for WeightedSum/ConfidenceWeighted.
	// Nil means all ones.
	Weights []int
	// Policy selects the merge rule.
	Policy Policy
	// Threshold is the minimum |signed vote sum| for WeightedSum and
	// ConfidenceWeighted to produce a prediction; below it the predictor
	// abstains in PredictRated (and falls back to the sign in Predict).
	Threshold int
	// MinConfidence is the per-component confidence floor for
	// HighConfidence.
	MinConfidence int
}

// NewMajority builds a majority-vote combination of the given components.
func NewMajority(components ...Binary) *Combined {
	return &Combined{Components: components, Policy: Majority}
}

// Rated is a prediction that may abstain.
type Rated struct {
	Prediction
	// Predicted is false when the policy abstained (no confident consensus).
	Predicted bool
}

func (c *Combined) weight(i int) int {
	if c.Weights == nil {
		return 1
	}
	return c.Weights[i]
}

// PredictRated merges component predictions; it may abstain depending on the
// policy. The confidence of the result is the absolute signed vote margin.
func (c *Combined) PredictRated(key uint64) Rated {
	sum, total := 0, 0
	for i, comp := range c.Components {
		p := comp.Predict(key)
		w := c.weight(i)
		switch c.Policy {
		case HighConfidence:
			if p.Confidence < c.MinConfidence {
				continue
			}
		case ConfidenceWeighted:
			w *= p.Confidence + 1
		}
		total += w
		if p.Taken {
			sum += w
		} else {
			sum -= w
		}
	}
	abs := sum
	if abs < 0 {
		abs = -abs
	}
	r := Rated{Prediction: Prediction{Taken: sum > 0, Confidence: abs}, Predicted: true}
	switch c.Policy {
	case Majority:
		r.Predicted = total > 0 && sum != 0
	case HighConfidence:
		r.Predicted = total > 0 && sum != 0
	case WeightedSum, ConfidenceWeighted:
		r.Predicted = abs >= c.Threshold && c.Threshold > 0 || c.Threshold == 0 && sum != 0
	}
	return r
}

// Predict implements Binary; abstentions fall back to the (possibly tied)
// vote direction.
func (c *Combined) Predict(key uint64) Prediction {
	return c.PredictRated(key).Prediction
}

// Update implements Binary by training every component.
func (c *Combined) Update(key uint64, outcome bool) {
	for _, comp := range c.Components {
		comp.Update(key, outcome)
	}
}

// Reset implements Binary.
func (c *Combined) Reset() {
	for _, comp := range c.Components {
		comp.Reset()
	}
}
