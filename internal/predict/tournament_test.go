package predict

import "testing"

func TestTournamentLearnsFixedBehavior(t *testing.T) {
	tr := NewTournament(NewBimodal(10, 2), NewGShare(10, 8, 2), 10)
	testLearnsFixedBehavior(t, tr, "tournament(bimodal,gshare)")
}

func TestTournamentSelectsBetterComponent(t *testing.T) {
	// Key A behaves per-address (bimodal wins); key B's outcome equals key
	// A's previous outcome (gshare wins). The tournament must learn to use
	// the right component for each.
	tr := NewTournament(NewBimodal(10, 2), NewGShare(12, 12, 2), 10)
	// Period-4 cycle: with interleaved updates the pattern spans 8 history
	// outcomes, well within the 12-outcome gshare history.
	outcomes := []bool{true, false, false, true}
	// Warmup with a deterministic cycle so both patterns are learnable.
	pos := 0
	// Each key is scored immediately before its own update, so the global
	// history at query time matches training time.
	step := func(score *int, total *int) {
		a := outcomes[pos%len(outcomes)]
		pos++
		if score != nil {
			if tr.Predict(0xA0).Taken == true {
				*score++
			}
			*total++
		}
		tr.Update(0xA0, true) // key A: always taken → bimodal perfect
		if score != nil {
			if tr.Predict(0xB0).Taken == a {
				*score++
			}
			*total++
		}
		tr.Update(0xB0, a) // key B: follows the cycle → gshare learns it
	}
	for i := 0; i < 4000; i++ {
		step(nil, nil)
	}
	score, total := 0, 0
	for i := 0; i < 1000; i++ {
		step(&score, &total)
	}
	if acc := float64(score) / float64(total); acc < 0.95 {
		t.Fatalf("tournament accuracy %.3f on mixed workload", acc)
	}
}

func TestTournamentChooserOnlyTrainsOnDisagreement(t *testing.T) {
	// With two identical always-agreeing components the chooser must stay
	// at its initial state.
	a, b := &constPred{taken: true}, &constPred{taken: true}
	tr := NewTournament(a, b, 4)
	before := make([]uint8, len(tr.chooser.v))
	copy(before, tr.chooser.v)
	for i := 0; i < 50; i++ {
		tr.Update(uint64(i), true)
	}
	for i := range tr.chooser.v {
		if tr.chooser.v[i] != before[i] {
			t.Fatal("chooser trained despite agreement")
		}
	}
}

func TestTournamentReset(t *testing.T) {
	tr := NewTournament(NewBimodal(8, 2), NewGShare(8, 8, 2), 8)
	for i := 0; i < 100; i++ {
		tr.Update(7, true)
	}
	if !tr.Predict(7).Taken {
		t.Fatal("did not learn")
	}
	tr.Reset()
	if tr.Predict(7).Taken {
		t.Fatal("Reset did not clear")
	}
}
