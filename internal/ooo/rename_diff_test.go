package ooo

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"loadsched/internal/trace"
)

// Differential property tests for side-car rename: producer resolution from
// the trace layer's precomputed dependence side-car (the default whenever
// the source publishes one) must agree exactly — same Stats, same cycle
// count, same CPI stack — with the legacy per-engine alias-table rename
// (Config.LegacyAliasRename), across randomized machines, mixed trace
// groups, reused pooled engines and wrapping file replay.

// TestRenameSidecarDiff pins side-car rename to the alias-table oracle on
// randomized machine+workload configurations over shared-recording cursors
// (the sweep hot path).
func TestRenameSidecarDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51deca6))
	profiles := diffProfiles(rng, 5)

	var cases []diffCase
	for i := 0; i < 16; i++ {
		cases = append(cases, diffCase{
			name:  fmt.Sprintf("random-%d", i),
			prof:  profiles[rng.Intn(len(profiles))],
			build: diffConfig(rng),
		})
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const warmup, uops = 1000, 4000
			run := func(legacy bool) Stats {
				cfg := tc.build()
				cfg.WarmupUops = warmup
				cfg.LegacyAliasRename = legacy
				e := NewEngine(cfg, trace.Replay(tc.prof))
				if legacy == (e.depSrc != nil) {
					t.Fatalf("legacy=%v but depSrc=%v", legacy, e.depSrc != nil)
				}
				return e.Run(uops)
			}
			side, legacy := run(false), run(true)
			if side != legacy {
				t.Errorf("side-car and alias-table rename diverged\nside-car: %+v\nlegacy:   %+v", side, legacy)
			}
			if got, want := side.CPI.Total(), side.Cycles; got != want {
				t.Errorf("side-car CPI stack sums to %d, want Cycles=%d", got, want)
			}
		})
	}
}

// TestRenameSidecarDiffPooledReuse drives one engine per rename mode
// through Reset across a mixed sequence of trace groups — the engine-pool
// reuse pattern — and requires the modes to agree run by run. This is what
// catches stale per-slot state the trimmed clearSlot no longer rewrites.
func TestRenameSidecarDiffPooledReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9001ed))
	profiles := diffProfiles(rng, 4)
	mk := func(legacy bool) Config {
		cfg := DefaultConfig()
		cfg.WarmupUops = 500
		cfg.LegacyAliasRename = legacy
		return cfg
	}
	side := NewEngine(mk(false), trace.Replay(profiles[0]))
	legacy := NewEngine(mk(true), trace.Replay(profiles[0]))
	// Revisit groups so reuse happens both across and back onto a profile.
	order := []int{0, 1, 2, 1, 3, 0, 2}
	for i, pi := range order {
		if i > 0 {
			if !side.Reset(trace.Replay(profiles[pi])) || !legacy.Reset(trace.Replay(profiles[pi])) {
				t.Fatal("default policy should be pool-reusable")
			}
		}
		s, l := side.Run(3000), legacy.Run(3000)
		if s != l {
			t.Fatalf("run %d (profile %d): side-car and legacy diverged after reuse\nside-car: %+v\nlegacy:   %+v",
				i, pi, s, l)
		}
	}
}

// TestRenameSidecarDiffStreamWrap replays a recorded trace file through
// StreamReader past its end, so the side-car's renumbering-invariant deltas
// and per-pass store bases are exercised across wrap-around.
func TestRenameSidecarDiffStreamWrap(t *testing.T) {
	rng := rand.New(rand.NewSource(0x77a9))
	prof := diffProfiles(rng, 1)[0]
	path := filepath.Join(t.TempDir(), "wrap.trace")
	if err := trace.WriteTraceFile(path, prof, 6000); err != nil {
		t.Fatal(err)
	}
	run := func(legacy bool) Stats {
		r, err := trace.StreamTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		cfg := DefaultConfig()
		cfg.WarmupUops = 2000
		cfg.LegacyAliasRename = legacy
		// 2000 warmup + 10000 measured = two full wraps of the 6000-uop file.
		return NewEngine(cfg, r).Run(10000)
	}
	side, legacy := run(false), run(true)
	if side != legacy {
		t.Errorf("side-car and legacy diverged across file wrap\nside-car: %+v\nlegacy:   %+v", side, legacy)
	}
}
