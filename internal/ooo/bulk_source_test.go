package ooo

import (
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// scalarOnly strips a source's NextBatch so the engine's fallback scalar
// fetch path is exercised even when the underlying source is bulk-capable.
type scalarOnly struct{ src Source }

func (s scalarOnly) Next() uop.UOp { return s.src.Next() }

// TestBulkSourceMatchesScalar pins the fetch-buffer seam: feeding the
// engine through BulkSource.NextBatch must produce bit-identical stats to
// feeding it one uop at a time. The buffering is an engine-internal detail
// and must never be observable in results.
func TestBulkSourceMatchesScalar(t *testing.T) {
	p := trace.Profile{Name: "bulk-eq", Seed: 77}
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Inclusive
	cfg.CHT = memdep.NewFullCHT(1024, 4, 2, true)
	cfg.WarmupUops = 5000

	bulk := NewEngine(cfg, trace.Replay(p))
	cfg2 := cfg
	cfg2.CHT = memdep.NewFullCHT(1024, 4, 2, true)
	scalar := NewEngine(cfg2, scalarOnly{src: trace.Replay(p)})

	sb := bulk.Run(60000)
	ss := scalar.Run(60000)
	if sb != ss {
		t.Fatalf("bulk-fed stats diverge from scalar-fed:\nbulk:   %+v\nscalar: %+v", sb, ss)
	}
}

// TestResetClearsFetchBuffer pins Reset semantics with buffered fetch: a
// reset engine re-fed from a fresh cursor must reproduce its first run.
func TestResetClearsFetchBuffer(t *testing.T) {
	p := trace.Profile{Name: "bulk-reset", Seed: 78}
	cfg := DefaultConfig()
	e := NewEngine(cfg, trace.Replay(p))
	first := e.Run(30000)
	e.Reset(trace.Replay(p))
	second := e.Run(30000)
	if first != second {
		t.Fatalf("reset run diverges:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
