package ooo

import (
	"math/rand"

	"loadsched/internal/trace"
)

// Re-exports for the external batch differential test (package ooo_test).
// The batched lockstep runner lives in internal/runner, which imports ooo,
// so a test driving both Engine and Pool.RunBatch cannot be an in-package
// ooo test; these shims hand it the same randomized machine and workload
// generators the in-package differential tests use.

// DiffProfilesForBatch exposes diffProfiles.
func DiffProfilesForBatch(rng *rand.Rand, n int) []trace.Profile { return diffProfiles(rng, n) }

// DiffConfigForBatch exposes diffConfig.
func DiffConfigForBatch(rng *rand.Rand) func() Config { return diffConfig(rng) }

// CoincidentProfileForBatch exposes the ready-list edge-case workload.
func CoincidentProfileForBatch() trace.Profile { return coincidentProfile }
