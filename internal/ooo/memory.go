package ooo

// Memory-order buffer (MOB) stage: tracks every in-flight store's two
// halves, classifies loads against older stores (the paper's
// conflicting/colliding taxonomy), answers the ordering queries the
// speculation policy asks through MOBView, and resolves collided loads once
// the offending store's data timing is known.

// mobIdx maps an offset from mobFirst to its ring position. The offset is
// always < len(e.mob), so one conditional wrap replaces a modulo.
func (e *Engine) mobIdx(off int) int {
	i := e.mobStart + off
	if i >= len(e.mob) {
		i -= len(e.mob)
	}
	return i
}

// mobGrow doubles the ring, re-laying the live records out from position 0.
// Live stores are bounded by the rename pool the ring was sized from, so
// this is a degenerate-workload escape hatch, not a steady-state path.
func (e *Engine) mobGrow() {
	grown := make([]storeRec, 2*len(e.mob))
	for i := 0; i < e.mobLen; i++ {
		grown[i] = e.mob[e.mobIdx(i)]
	}
	e.mob = grown
	e.mobStart = 0
}

func (e *Engine) mobEnsure(id int64) *storeRec {
	for e.mobFirst+int64(e.mobLen) <= id {
		if e.mobLen == len(e.mob) {
			e.mobGrow()
		}
		e.mob[e.mobIdx(e.mobLen)] = storeRec{id: e.mobFirst + int64(e.mobLen)}
		e.mobLen++
	}
	return &e.mob[e.mobIdx(int(id-e.mobFirst))]
}

func (e *Engine) mobGet(id int64) *storeRec {
	off := id - e.mobFirst
	if off < 0 || off >= int64(e.mobLen) {
		return nil
	}
	return &e.mob[e.mobIdx(int(off))]
}

// lastStoreID returns the id of the youngest store renamed so far.
func (e *Engine) lastStoreID() int64 { return e.mobFirst + int64(e.mobLen) - 1 }

// mobPrune drops fully retired stores from the MOB head.
func (e *Engine) mobPrune() {
	for e.mobLen > 0 {
		r := &e.mob[e.mobStart]
		if !(r.staRetired && r.stdRetired) {
			return
		}
		e.mobStart++
		if e.mobStart == len(e.mob) {
			e.mobStart = 0
		}
		e.mobLen--
		e.mobFirst++
	}
}

// overlap reports whether two accesses touch common bytes.
func overlap(a uint64, asz int, b uint64, bsz int) bool {
	return a < b+uint64(bsz) && b < a+uint64(asz)
}

// classifyLoad computes the AC/ANC/not-conflicting status of Figure 1.
//
// A load is *conflicting* when an older in-window store is incomplete at the
// load's schedule time, and *colliding* when such a store also overlaps the
// load's address — i.e. advancing the load would make it consume stale data
// and pay the collision penalty. (The paper defines conflict through
// unresolved STAs only; we fold in pending STDs so that the classification,
// the collision penalty, and CHT training all describe the same event — see
// DESIGN.md.)
func (e *Engine) classifyLoad(en *entry) {
	en.classified = true
	conflicting, colliding, dist := false, false, 0
	for id := e.mobFirst; id <= en.olderStores; id++ {
		rec := e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if e.storeDone(rec) {
			// Both halves have at least dispatched: the scheduler knows the
			// address and the data timing, so no ambiguity remains.
			continue
		}
		conflicting = true
		if overlap(rec.addr, rec.size, en.u.Addr, int(en.u.Size)) {
			colliding = true
			d := int(en.olderStores - rec.id + 1)
			if dist == 0 || d < dist {
				dist = d
			}
		}
	}
	en.conflicting = conflicting
	en.colliding = colliding
	en.collDist = dist
}

// barrierBlocked reports an in-flight incomplete store the [Hess95] barrier
// cache flagged at rename; loads may not pass it regardless of scheme.
func (e *Engine) barrierBlocked(maxID int64) bool {
	for id := e.mobFirst; id <= maxID; id++ {
		rec := e.mobGet(id)
		if rec != nil && rec.barrier && !e.storeDone(rec) {
			return true
		}
	}
	return false
}

func (e *Engine) storeDone(rec *storeRec) bool {
	return rec.staExec && rec.stdExec
}

// mobView hands the speculation policy a read-only window onto the MOB.
func (e *Engine) mobView() MOBView { return engineMOB{e} }

// engineMOB adapts the engine's MOB to the policy-facing MOBView.
type engineMOB struct{ e *Engine }

func (m engineMOB) FirstStore() int64 { return m.e.mobFirst }

// StoresComplete reports whether all in-window stores with id ≤ maxID have
// dispatched their STA (and, if withSTD, their STD).
func (m engineMOB) StoresComplete(maxID int64, withSTD bool) bool {
	for id := m.e.mobFirst; id <= maxID; id++ {
		rec := m.e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if !rec.staExec {
			return false
		}
		if withSTD && !rec.stdExec {
			return false
		}
	}
	return true
}

func (m engineMOB) OverlapIncomplete(maxID int64, addr uint64, size int) bool {
	for id := m.e.mobFirst; id <= maxID; id++ {
		rec := m.e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if overlap(rec.addr, rec.size, addr, size) && !m.e.storeDone(rec) {
			return true
		}
	}
	return false
}

// finishCollidedLoad completes a collided load once the colliding store's
// data time is known. The wrongly-advanced load re-executes after the store
// data arrives: it pays the forwarding/cache latency again plus the
// recovery penalty. A correctly-delayed load would have dispatched at
// stdDone and seen its data one cache latency later, so the collision costs
// exactly CollisionPenalty extra — the paper's accounting.
func (e *Engine) finishCollidedLoad(en *entry, stdDone int64) {
	en.done = true
	en.doneCycle = stdDone + int64(e.cfg.Lat.L1+e.cfg.CollisionPenalty)
	if en.cacheDone > en.doneCycle {
		en.doneCycle = en.cacheDone
	}
	// A machine without the P6 stall-in-RS ability re-executes the load and
	// its dependents "until the STD is successfully completed" (§1.1): one
	// replay round per cache latency of waiting, each burning issue slots.
	rounds := 1 + int(stdDone-en.dispCycle)/e.cfg.Lat.L1
	if rounds < 1 {
		rounds = 1
	}
	e.replayMemDebt += rounds
	e.replayIntDebt += rounds * e.cfg.CollisionReplayUops
	e.wakeDependents(en)
}

// resolveCollisions completes loads whose colliding STD has now executed.
func (e *Engine) resolveCollisions() {
	if len(e.pendingColl) == 0 {
		return
	}
	kept := e.pendingColl[:0]
	for _, idx := range e.pendingColl {
		en := &e.rob[idx]
		rec := e.mobGet(en.waitStore)
		if rec == nil {
			// The store fully retired in this very cycle's retire phase (its
			// STD completed just before we ran). The collision still
			// happened — resolve it against the current cycle so the penalty
			// is not silently dropped.
			e.finishCollidedLoad(en, e.now)
			continue
		}
		if rec.stdExec && rec.stdExecCyc <= e.now {
			e.finishCollidedLoad(en, rec.stdExecCyc)
			// The violation is detected now: the scheduler spends a bubble
			// re-sequencing the load's dependence tree.
			until := e.now + int64(e.cfg.CollisionRecoveryBubble)
			if until > e.recoveryStallUntil {
				e.recoveryStallUntil = until
				e.recoveryCause = stallCollision
			}
			continue
		}
		kept = append(kept, idx)
	}
	e.pendingColl = kept
}
