package ooo

// Memory-order buffer (MOB) stage: tracks every in-flight store's two
// halves, classifies loads against older stores (the paper's
// conflicting/colliding taxonomy), answers the ordering queries the
// speculation policy asks through MOBView, and resolves collided loads once
// the offending store's data timing is known. The MOB is mobState
// (engine.go): a ring of parallel arrays addressed by ring position, each
// record's status a single flag byte, with store ids implicit in the ring
// offset — the classification walks below stream a dense byte array and
// never chase a pointer.

// mobIdx maps an offset from mob.first to its ring position. The offset is
// always < capacity, so one conditional wrap replaces a modulo.
func (e *Engine) mobIdx(off int) int {
	i := e.mob.start + off
	if n := e.mob.capacity(); i >= n {
		i -= n
	}
	return i
}

// mobGrow doubles the ring, re-laying the live records out from position 0.
// Live stores are bounded by the rename pool the ring was sized from, so
// this is a degenerate-workload escape hatch, not a steady-state path.
func (e *Engine) mobGrow() {
	old := e.mob
	grown := newMOB(2 * old.capacity())
	for i := 0; i < old.length; i++ {
		src := e.mobIdx(i)
		grown.ip[i] = old.ip[src]
		grown.addr[i] = old.addr[src]
		grown.size[i] = old.size[src]
		grown.flags[i] = old.flags[src]
		grown.staExecCycle[i] = old.staExecCycle[src]
		grown.stdExecCyc[i] = old.stdExecCyc[src]
	}
	grown.start, grown.length, grown.first = 0, old.length, old.first
	e.mob = grown
}

// mobEnsure materializes ring records up through store id and returns id's
// ring position.
func (e *Engine) mobEnsure(id int64) int {
	for e.mob.first+int64(e.mob.length) <= id {
		if e.mob.length == e.mob.capacity() {
			e.mobGrow()
		}
		pos := e.mobIdx(e.mob.length)
		e.mob.ip[pos], e.mob.addr[pos], e.mob.size[pos] = 0, 0, 0
		e.mob.flags[pos] = 0
		e.mob.staExecCycle[pos], e.mob.stdExecCyc[pos] = 0, 0
		e.mob.length++
	}
	return e.mobIdx(int(id - e.mob.first))
}

// mobGet returns store id's ring position, or -1 when the record has been
// pruned (or never existed).
func (e *Engine) mobGet(id int64) int {
	off := id - e.mob.first
	if off < 0 || off >= int64(e.mob.length) {
		return -1
	}
	return e.mobIdx(int(off))
}

// lastStoreID returns the id of the youngest store renamed so far.
func (e *Engine) lastStoreID() int64 { return e.mob.first + int64(e.mob.length) - 1 }

// mobSegs returns the ring positions of the in-window stores with id ≤
// maxID as up to two contiguous index ranges, [a0,a1) then [b0,b1), over
// the MOB's parallel arrays. Walking the ranges in order visits stores
// oldest first (ids mob.first, mob.first+1, …): the wrap point is resolved
// once here so the classification loops below scan dense flag bytes with no
// per-record bounds or wrap arithmetic.
func (e *Engine) mobSegs(maxID int64) (a0, a1, b0, b1 int) {
	k := maxID - e.mob.first + 1
	if k <= 0 {
		return 0, 0, 0, 0
	}
	if n := int64(e.mob.length); k > n {
		k = n
	}
	n := e.mob.capacity()
	a0 = e.mob.start
	a1 = a0 + int(k)
	if a1 > n {
		b1 = a1 - n
		a1 = n
	}
	return a0, a1, 0, b1
}

// storesDoneTo advances a completed-store watermark and returns it: the id
// of the oldest in-window store that is not known complete for want (or one
// past the youngest record when all are). A record counts as complete when
// its STA has renamed and the want bits are all set; records whose STA has
// not renamed yet (gap-filled by mobEnsure, or an STD arriving first) halt
// the advance — they may become blocking later, and the rename STA case
// rolls the watermarks back below any id whose mStaSeen arrives late, so
// ids below the returned watermark never block an ordering query. MOB flag
// bits are only ever set on a live record, which is what makes the cached
// value monotone between rollbacks.
func (e *Engine) storesDoneTo(cached *int64, want uint8) int64 {
	id := *cached
	if id < e.mob.first {
		id = e.mob.first
	}
	end := e.mob.first + int64(e.mob.length)
	for id < end {
		f := e.mob.flags[e.mobIdx(int(id-e.mob.first))]
		if f&mStaSeen == 0 || f&want != want {
			break
		}
		id++
	}
	*cached = id
	return id
}

// mobSegsFrom is mobSegs restricted to ids ≥ minID: the ring positions of
// the in-window stores with minID ≤ id ≤ maxID as up to two contiguous
// ranges. The classification walks pass the allDoneTo watermark as minID,
// skipping the known-complete prefix that cannot satisfy their predicates.
func (e *Engine) mobSegsFrom(minID, maxID int64) (a0, a1, b0, b1 int) {
	lo := minID - e.mob.first
	if lo < 0 {
		lo = 0
	}
	k := maxID - e.mob.first + 1
	if n := int64(e.mob.length); k > n {
		k = n
	}
	if k <= lo {
		return 0, 0, 0, 0
	}
	n := e.mob.capacity()
	a0 = e.mob.start + int(lo)
	a1 = e.mob.start + int(k)
	switch {
	case a0 >= n: // whole range is past the wrap point
		return a0 - n, a1 - n, 0, 0
	case a1 > n: // range straddles the wrap point
		return a0, n, 0, a1 - n
	}
	return a0, a1, 0, 0
}

// mobPrune drops fully retired stores from the MOB head.
func (e *Engine) mobPrune() {
	const retired = mStaRetired | mStdRetired
	for e.mob.length > 0 {
		if e.mob.flags[e.mob.start]&retired != retired {
			return
		}
		e.mob.start++
		if e.mob.start == e.mob.capacity() {
			e.mob.start = 0
		}
		e.mob.length--
		e.mob.first++
	}
}

// overlap reports whether two accesses touch common bytes.
func overlap(a uint64, asz int, b uint64, bsz int) bool {
	return a < b+uint64(bsz) && b < a+uint64(asz)
}

// classifyLoad computes the AC/ANC/not-conflicting status of Figure 1 for
// the load in slot idx.
//
// A load is *conflicting* when an older in-window store is incomplete at the
// load's schedule time, and *colliding* when such a store also overlaps the
// load's address — i.e. advancing the load would make it consume stale data
// and pay the collision penalty. (The paper defines conflict through
// unresolved STAs only; we fold in pending STDs so that the classification,
// the collision penalty, and CHT training all describe the same event — see
// DESIGN.md.)
func (e *Engine) classifyLoad(idx int32) {
	r := &e.rob
	r.flags[idx] |= fClassified
	if !e.naive {
		// The load was counted unclassified when it entered the ready list
		// (insertReady); the naive walk never maintains that list.
		e.readyUnclass--
	}
	addr, size := r.u[idx].Addr, int(r.u[idx].Size)
	conflicting, colliding, dist := false, false, int64(0)
	older := r.olderStores[idx]
	const executed = mStaExec | mStdExec
	flags, addrs, sizes := e.mob.flags, e.mob.addr, e.mob.size
	// Stores below the both-halves watermark can satisfy neither the
	// conflicting nor the colliding predicate; walk only the live suffix.
	lo := e.storesDoneTo(&e.allDoneTo, executed) // ≥ mob.first
	a0, a1, b0, b1 := e.mobSegsFrom(lo, older)
	id := lo
	// Both ring segments walked with the same body, unrolled so the hot
	// pre-wrap segment runs without per-segment range setup.
	for pos := a0; pos < a1; pos++ {
		// A store is ambiguous only while a half is undispatched: once
		// both halves have at least dispatched, the scheduler knows the
		// address and the data timing.
		if f := flags[pos]; f&mStaSeen != 0 && f&executed != executed {
			conflicting = true
			if overlap(addrs[pos], int(sizes[pos]), addr, size) {
				colliding = true
				d := older - id + 1
				if dist == 0 || d < dist {
					dist = d
				}
			}
		}
		id++
	}
	for pos := b0; pos < b1; pos++ {
		if f := flags[pos]; f&mStaSeen != 0 && f&executed != executed {
			conflicting = true
			if overlap(addrs[pos], int(sizes[pos]), addr, size) {
				colliding = true
				d := older - id + 1
				if dist == 0 || d < dist {
					dist = d
				}
			}
		}
		id++
	}
	if conflicting {
		r.flags[idx] |= fConflicting
	}
	if colliding {
		r.flags[idx] |= fColliding
	}
	r.collDist[idx] = int32(dist)
}

// barrierBlocked reports an in-flight incomplete store the [Hess95] barrier
// cache flagged at rename; loads may not pass it regardless of scheme.
func (e *Engine) barrierBlocked(maxID int64) bool {
	const executed = mStaExec | mStdExec
	flags := e.mob.flags
	// mBarrier is only ever set together with mStaSeen, so stores below the
	// both-halves watermark cannot be blocking barriers.
	a0, a1, b0, b1 := e.mobSegsFrom(e.storesDoneTo(&e.allDoneTo, executed), maxID)
	for pos := a0; pos < a1; pos++ {
		if f := flags[pos]; f&mBarrier != 0 && f&executed != executed {
			return true
		}
	}
	for pos := b0; pos < b1; pos++ {
		if f := flags[pos]; f&mBarrier != 0 && f&executed != executed {
			return true
		}
	}
	return false
}

// storeDone reports whether both halves of the store at ring position pos
// have dispatched.
func (e *Engine) storeDone(pos int) bool {
	const executed = mStaExec | mStdExec
	return e.mob.flags[pos]&executed == executed
}

// mobView hands the speculation policy a read-only window onto the MOB.
func (e *Engine) mobView() MOBView { return engineMOB{e} }

// engineMOB adapts the engine's MOB to the policy-facing MOBView.
type engineMOB struct{ e *Engine }

func (m engineMOB) FirstStore() int64 { return m.e.mob.first }

// StoresComplete reports whether all in-window stores with id ≤ maxID have
// dispatched their STA (and, if withSTD, their STD). The watermark compare
// makes this O(1) amortized: it is the per-cycle ordering query the
// Traditional and Conservative schemes ask for every held load, and before
// the watermarks a long MOB meant rescanning it from the oldest store each
// time.
func (m engineMOB) StoresComplete(maxID int64, withSTD bool) bool {
	// Fast path: the cached watermark already clears maxID. Watermarks only
	// regress at an STA rename rollback, so a clearing cache needs no
	// re-examination — the advance loop (and its MOB flag loads) is skipped
	// entirely in the steady state where the queried load trails the
	// completed-store frontier.
	if withSTD {
		return m.e.allDoneTo > maxID ||
			m.e.storesDoneTo(&m.e.allDoneTo, mStaExec|mStdExec) > maxID
	}
	return m.e.staDoneTo > maxID ||
		m.e.storesDoneTo(&m.e.staDoneTo, mStaExec) > maxID
}

func (m engineMOB) OverlapIncomplete(maxID int64, addr uint64, size int) bool {
	const executed = mStaExec | mStdExec
	flags, addrs, sizes := m.e.mob.flags, m.e.mob.addr, m.e.mob.size
	a0, a1, b0, b1 := m.e.mobSegsFrom(m.e.storesDoneTo(&m.e.allDoneTo, executed), maxID)
	for _, sg := range [2][2]int{{a0, a1}, {b0, b1}} {
		for pos := sg[0]; pos < sg[1]; pos++ {
			f := flags[pos]
			if f&mStaSeen != 0 && f&executed != executed &&
				overlap(addrs[pos], int(sizes[pos]), addr, size) {
				return true
			}
		}
	}
	return false
}

// finishCollidedLoad completes a collided load once the colliding store's
// data time is known. The wrongly-advanced load re-executes after the store
// data arrives: it pays the forwarding/cache latency again plus the
// recovery penalty. A correctly-delayed load would have dispatched at
// stdDone and seen its data one cache latency later, so the collision costs
// exactly CollisionPenalty extra — the paper's accounting.
func (e *Engine) finishCollidedLoad(idx int32, stdDone int64) {
	r := &e.rob
	r.flags[idx] |= fDone
	done := stdDone + int64(e.cfg.Lat.L1+e.cfg.CollisionPenalty)
	if r.cacheDone[idx] > done {
		done = r.cacheDone[idx]
	}
	r.doneCycle[idx] = done
	// A machine without the P6 stall-in-RS ability re-executes the load and
	// its dependents "until the STD is successfully completed" (§1.1): one
	// replay round per cache latency of waiting, each burning issue slots.
	rounds := 1 + int(stdDone-r.dispCycle[idx])/e.cfg.Lat.L1
	if rounds < 1 {
		rounds = 1
	}
	e.replayMemDebt += rounds
	e.replayIntDebt += rounds * e.cfg.CollisionReplayUops
	e.wakeDependents(idx)
}

// resolveCollisions completes loads whose colliding STD has now executed.
func (e *Engine) resolveCollisions() {
	if len(e.pendingColl) == 0 {
		return
	}
	kept := e.pendingColl[:0]
	for _, idx := range e.pendingColl {
		pos := e.mobGet(e.rob.waitStore[idx])
		if pos < 0 {
			// The store fully retired in this very cycle's retire phase (its
			// STD completed just before we ran). The collision still
			// happened — resolve it against the current cycle so the penalty
			// is not silently dropped.
			e.finishCollidedLoad(idx, e.now)
			continue
		}
		if e.mob.flags[pos]&mStdExec != 0 && e.mob.stdExecCyc[pos] <= e.now {
			e.finishCollidedLoad(idx, e.mob.stdExecCyc[pos])
			// The violation is detected now: the scheduler spends a bubble
			// re-sequencing the load's dependence tree.
			until := e.now + int64(e.cfg.CollisionRecoveryBubble)
			if until > e.recoveryStallUntil {
				e.recoveryStallUntil = until
				e.recoveryCause = stallCollision
			}
			continue
		}
		kept = append(kept, idx)
	}
	e.pendingColl = kept
}
