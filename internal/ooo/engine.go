package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
	"loadsched/internal/uop"
)

// The engine is decomposed into one file per pipeline stage, all operating
// on the shared machine state below:
//
//	frontend.go  fetch + rename (branch stall, producer tracking, MOB entry)
//	schedule.go  dispatch walk, port allocation, replay debt
//	ready.go     event-driven core: wakeup links, ready set, fast-forward
//	memory.go    MOB queries, load classification, collision resolution
//	execute.go   load execution: cache access, latency speculation, penalties
//	retire.go    in-order retirement, stat finalization, predictor training
//	policy.go    the SpeculationPolicy seam the stages consult
//	cpi.go       per-cycle stall attribution (the CPI stack)
//
// Hot state is laid out structure-of-arrays: the ROB is robState — parallel
// slices indexed by rename-pool slot, with per-slot booleans packed into one
// flag word and wakeup lists kept as intrusive index links instead of
// per-entry slices — and the MOB is mobState, a ring of parallel arrays.
// Stage code addresses everything by slot index, so the working set per
// field is one dense array and slot reuse never allocates.
//
// Every speculation decision flows through the SpeculationPolicy seam, so
// stage code contains machine mechanics only.

// Source supplies the dynamic uop stream (a trace generator).
type Source interface {
	Next() uop.UOp
}

// BulkSource is an optional Source extension for suppliers that can copy a
// run of uops at once — trace replay cursors and stream readers gather
// straight out of decoded chunk columns. The engine refills its fetch
// buffer through it, turning the per-uop interface call into a slice read.
// A stride of NextBatch calls must yield exactly the stream Next would.
type BulkSource interface {
	Source
	NextBatch(dst []uop.UOp) int
}

// DepBatchSource is the bulk seam extended with the static dependence
// side-car (see internal/trace deplink.go): NextBatchRef exposes the
// source's current decoded run as direct slices — uops and side-car
// entries in lockstep, valid until the next call on the source — plus the
// store base the run's Dep.LastStore deltas are relative to (-1: invalid
// for this run, the engine falls back to its own MOB watermark). Handing
// out references instead of filling caller buffers removes a ~52-byte copy
// per uop from the fetch path; the engine treats the slices as read-only
// (shared recording chunks back them for every sweep engine at once). The
// side-car lets rename resolve producers by position arithmetic instead of
// alias-table lookups; the contract that makes that exact is that the
// consumer has observed the stream from its beginning, so side-car
// position deltas and the engine's rename count share an origin.
type DepBatchSource interface {
	BulkSource
	NextBatchRef() (us []uop.UOp, deps []uop.Dep, storeBase int64)
}

// fetchBufUops sizes the engine's fetch refill buffer: a few rename
// groups' worth, small enough to stay hot in L1.
const fetchBufUops = 64

// LoadEvent describes one retired load for statistical consumers.
type LoadEvent struct {
	// IP and Addr identify the access.
	IP, Addr uint64
	// Colliding and Distance are the load's actual collision behavior.
	Colliding bool
	Distance  int
	// Hit reports an L1 hit.
	Hit bool
	// Conflicting reports an older incomplete store at schedule time.
	Conflicting bool
}

// Per-slot ROB flag bits (robState.flags).
const (
	fValid uint16 = 1 << iota
	// fInRS marks residence in the scheduling window (entered at rename,
	// left at dispatch).
	fInRS
	fDispatched
	fDone
	// fBlockingBranch marks the mispredicted branch the front end stalls on.
	fBlockingBranch
	// Load-only bits.
	fClassified
	fConflicting
	fColliding
	fPredHit
	fActualHit
	fCollided // paid the collision penalty
)

// robState is the instruction window in structure-of-arrays layout: one
// parallel slice per field, indexed by rename-pool slot. Compared to a slice
// of per-entry structs, a stage touching one field (the dispatch walk reads
// ages, retire reads done cycles) streams through one dense array instead of
// striding across fat records, and clearing a slot at rename writes a few
// words instead of copying a struct.
type robState struct {
	u     []uop.UOp
	flags []uint16
	// kind and seq mirror u[i].Kind and u[i].Seq as dense arrays: the
	// dispatch walk's switch and the producer seq-guard compares read small
	// dense columns instead of striding across 40-byte uop records.
	kind []uint8
	seq  []int64

	doneCycle []int64

	// Register dependencies: slot index + seq guard of each source producer
	// (-1 when the value is already architectural).
	src1Prod, src2Prod []int32
	src1Seq, src2Seq   []int64

	// Event-driven scheduling state (see ready.go), as intrusive index
	// links: waitHead[p] heads producer p's wakeup list (-1 = empty); list
	// nodes are identified as idx<<1|src — each slot owns exactly two
	// preallocated nodes, one per source operand — and chained through
	// waitNext. A node is live exactly while its slot waits on that source's
	// producer, so there is no separate freelist to maintain. nwaiting
	// counts a slot's producers whose completion time is still unknown;
	// readyAt accumulates the latest known producer completion and is final
	// once nwaiting reaches 0. age orders the ready set by rename order
	// (robust against sources that do not populate Seq).
	waitHead []int32
	waitNext []int32
	nwaiting []int8
	readyAt  []int64
	age      []int64

	// Load-only state.
	olderStores []int64 // StoreID of the youngest store older than this load
	// lv caches the slot's policy-visible LoadView, built once when the
	// load is first offered (its fields are all fixed at rename): a load
	// held for many cycles is re-offered with a pointer into this array
	// instead of re-gathering the view from five parallel slices per
	// cycle.
	lv        []LoadView
	ipHash    []uint32
	collDist  []int32
	pred      []memdep.Prediction
	level     []cache.Level
	waitStore []int64 // store id whose STD must complete to resolve this load
	cacheDone []int64 // completion time before collision resolution
	bankDelay []int64 // stall/flush cycles from banked-cache conflicts
	dispCycle []int64 // cycle the load dispatched (for replay accounting)
}

// newROB allocates every parallel slice at the rename-pool size.
func newROB(pool int) robState {
	return robState{
		u:           make([]uop.UOp, pool),
		flags:       make([]uint16, pool),
		kind:        make([]uint8, pool),
		seq:         make([]int64, pool),
		doneCycle:   make([]int64, pool),
		src1Prod:    make([]int32, pool),
		src2Prod:    make([]int32, pool),
		src1Seq:     make([]int64, pool),
		src2Seq:     make([]int64, pool),
		waitHead:    make([]int32, pool),
		waitNext:    make([]int32, 2*pool),
		nwaiting:    make([]int8, pool),
		readyAt:     make([]int64, pool),
		age:         make([]int64, pool),
		olderStores: make([]int64, pool),
		lv:          make([]LoadView, pool),
		ipHash:      make([]uint32, pool),
		collDist:    make([]int32, pool),
		pred:        make([]memdep.Prediction, pool),
		level:       make([]cache.Level, pool),
		waitStore:   make([]int64, pool),
		cacheDone:   make([]int64, pool),
		bankDelay:   make([]int64, pool),
		dispCycle:   make([]int64, pool),
	}
}

// size returns the rename-pool capacity.
func (r *robState) size() int { return len(r.flags) }

// clearSlot claims one slot for freshly renamed u: valid, in the scheduling
// window. Every other per-slot field is left stale on purpose — each is
// proven write-before-read along its lifecycle: the rename paths write both
// producer pairs explicitly; linkDeps writes age/readyAt and only
// increments nwaiting (0 at slot entry: a slot is reused only after it
// dispatched, which requires nwaiting to have drained, and reset zeroes it
// between runs); waitHead is -1 whenever a slot frees (wakeDependents
// detaches the chain at completion, reset re-arms it); the load fields
// (olderStores/ipHash/pred at rename, collDist and the cached lv at
// classify, level/cacheDone/dispCycle/bankDelay at dispatch/execute,
// waitStore on the collision path) are each written before their first
// read, and read only for loads; doneCycle is read only under fDone, which complete() sets
// together with it. Keeping the clear to two writes is what makes rename
// cheap enough to be dominated by producer resolution.
func (r *robState) clearSlot(idx int, u uop.UOp) {
	r.u[idx] = u
	r.flags[idx] = fValid | fInRS
	r.kind[idx] = uint8(u.Kind)
	r.seq[idx] = u.Seq
}

// reset rewinds every slot (Reset/engine-pool path); allocations are kept.
// nwaiting must be zeroed here: a run can end with uops still in flight
// whose wakeup counts never drained, and clearSlot relies on reused slots
// starting at 0.
func (r *robState) reset() {
	for i := range r.flags {
		r.flags[i] = 0
		r.waitHead[i] = -1
		r.nwaiting[i] = 0
	}
}

// loadView projects the policy-visible slice of a load slot.
func (e *Engine) loadView(idx int32) LoadView {
	u := &e.rob.u[idx]
	return LoadView{
		IP: u.IP, Addr: u.Addr, Size: int(u.Size),
		IPHash:      e.rob.ipHash[idx],
		OlderStores: e.rob.olderStores[idx], Pred: e.rob.pred[idx],
	}
}

// Per-store MOB flag bits (mobState.flags). Exactly eight, so a store's
// whole status is one byte.
const (
	// renamed halves present in the window.
	mStaSeen uint8 = 1 << iota
	mStdSeen
	// Execution status of each half.
	mStaExec
	mStdExec
	// Retirement status of each half (both retired → the record can be
	// pruned once it reaches the MOB head).
	mStaRetired
	mStdRetired
	// mBarrier marks a store the [Hess95] barrier cache flagged at rename;
	// mViolated records whether a load was wrongly ordered against it.
	mBarrier
	mViolated
)

// mobState is the memory-order buffer as a ring of parallel arrays: the
// record for StoreID id lives at ring offset id-first, and length records
// are live starting at ring position start. Store ids are implicit in the
// ring position (first + offset), and each record's status is a single flag
// byte, so the classification walks in memory.go stream a dense byte array.
// The ring is sized once from Config.RenamePool (live stores are bounded by
// the instruction window) and doubles only in the degenerate case that
// bound is exceeded, so steady-state MOB traffic allocates nothing.
type mobState struct {
	ip           []uint64
	addr         []uint64
	size         []int32
	flags        []uint8
	staExecCycle []int64
	stdExecCyc   []int64

	start, length int
	first         int64
}

// newMOB allocates the ring's parallel arrays.
func newMOB(capacity int) mobState {
	return mobState{
		ip:           make([]uint64, capacity),
		addr:         make([]uint64, capacity),
		size:         make([]int32, capacity),
		flags:        make([]uint8, capacity),
		staExecCycle: make([]int64, capacity),
		stdExecCyc:   make([]int64, capacity),
	}
}

// capacity returns the ring size.
func (m *mobState) capacity() int { return len(m.flags) }

// Engine is the out-of-order machine.
type Engine struct {
	cfg Config
	src Source
	// bulk is src's BulkSource form (nil when unsupported); fetchBuf with
	// fetchPos/fetchLen is the refill buffer nextUop drains. depSrc is the
	// side-car-capable form (nil when unsupported or disabled by config);
	// when set, rename reads fetchRefU/fetchRefD — zero-copy views into the
	// source's decoded chunk, uops and side-car entries in lockstep — and
	// fetchStoreBase anchors the current run's Dep.LastStore deltas.
	bulk               BulkSource
	depSrc             DepBatchSource
	fetchBuf           []uop.UOp
	fetchRefU          []uop.UOp
	fetchRefD          []uop.Dep
	fetchStoreBase     int64
	fetchPos, fetchLen int
	hier               *cache.Hierarchy
	missq              *cache.MissQueue
	// policy is the speculation seam every prediction decision goes
	// through; oracle caches policy.Oracle(). defPol is non-nil when the
	// seam is the built-in adapter — the per-load call sites dispatch to
	// it directly, skipping the interface table (custom policies take the
	// interface path unchanged).
	policy SpeculationPolicy
	defPol *defaultPolicy
	oracle bool

	rob   robState
	head  int // slot of the oldest entry
	count int
	// rsCount tracks scheduling-window occupancy incrementally.
	rsCount int

	// Event-driven scheduling core (ready.go): readyList holds the slots of
	// window entries whose operands are ready, in age order; wakeQ holds
	// entries whose operands complete at a known future cycle. renameAge is
	// the monotone counter behind rob.age. naive selects the retained
	// full-walk reference scheduler (Config.NaiveSchedule).
	readyList []int32
	// readyUnclass counts the loads in readyList still awaiting their
	// schedule-time classification; the dispatch walk may only early-exit
	// on port exhaustion when it reaches zero (classification reads MOB
	// state at the cycle of the load's first offer).
	readyUnclass int
	wakeQ        wakeHeap
	renameAge    int64
	naive        bool

	now int64

	regProd [uop.MaxArchRegs]int32
	regSeq  [uop.MaxArchRegs]int64

	mob mobState

	// Completed-store watermarks (memory.go): every in-window store with id
	// below the watermark whose STA has renamed is known to have dispatched
	// its STA (staDoneTo) or both halves (allDoneTo). They advance lazily at
	// query time and roll back at the one place mStaSeen is set, so the
	// per-cycle ordering checks and load classification walk only the
	// suffix of the MOB that can still change instead of rescanning from
	// the oldest store.
	staDoneTo, allDoneTo int64

	// pendingColl lists slots of dispatched loads awaiting a colliding
	// STD's completion time.
	pendingColl []int32

	// Front-end stall state.
	awaitingBranch bool
	resumeAt       int64

	// Per-cycle port usage.
	intUsed, memUsed, fpUsed, cplxUsed, stdUsed int

	// Replay debt: execution-port slots owed to re-executed loads and their
	// dependents (collision and miss replays). Drained before real dispatch
	// each cycle, modelling the bandwidth the recovery consumes.
	replayMemDebt, replayIntDebt int

	// recoveryStallUntil blocks dispatch while a memory-ordering violation
	// is being repaired; recoveryCause remembers which repair set it, for
	// the CPI stack.
	recoveryStallUntil int64
	recoveryCause      stallCause
	// missDetections are the future cycles at which AM-PH misses are
	// discovered (dispatch + hit-indication); each triggers a
	// MissRecoveryBubble when it comes due.
	missDetections []int64

	// Per-cycle CPI-stack evidence (see cpi.go).
	cycleRetired       int
	cycleRenameStalled bool
	schedHold          stallCause

	// Incremental run state (BeginRun/StepRun/EndRun).
	run runState

	stats Stats
}

// runState tracks an in-progress BeginRun/StepRun run: which phase the run
// is in, that phase's retirement target and livelock guard, and the cycle
// the measured phase started at.
type runState struct {
	phase  runPhase
	n      int    // measured uop count, set by BeginRun
	target uint64 // stats.Uops value that completes the current phase
	guard  int64  // livelock bound for the current phase
	start  int64  // e.now at measured-phase entry
}

type runPhase uint8

const (
	runIdle runPhase = iota
	runWarmup
	runMeasure
)

// NewEngine builds an engine; it panics on an invalid configuration
// (configurations are static here, so an error return would only be
// rethrown by every caller). Every variable-size structure is allocated
// here, sized from the configuration; the per-run churn (ready set, wake
// heap, MOB ring, pending-collision and miss-detection buffers) recycles
// those arrays, so a warmed-up engine simulates without allocating.
func NewEngine(cfg Config, src Source) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mobCap := cfg.RenamePool
	if mobCap < 16 {
		mobCap = 16
	}
	e := &Engine{
		cfg:            cfg,
		fetchBuf:       make([]uop.UOp, fetchBufUops),
		hier:           cache.NewHierarchy(cfg.Hier),
		missq:          cache.NewMissQueue(16),
		rob:            newROB(cfg.RenamePool),
		readyList:      make([]int32, 0, cfg.Window),
		wakeQ:          make(wakeHeap, 0, cfg.RenamePool),
		mob:            newMOB(mobCap),
		pendingColl:    make([]int32, 0, 16),
		missDetections: make([]int64, 0, 16),
		naive:          cfg.NaiveSchedule,
	}
	e.setSource(src)
	deps := PolicyDeps{Hier: e.hier, MissQ: e.missq}
	if cfg.NewPolicy != nil {
		e.policy = cfg.NewPolicy(deps)
	} else {
		e.policy = DefaultPolicy(cfg, deps)
	}
	e.defPol, _ = e.policy.(*defaultPolicy)
	e.oracle = e.policy.Oracle()
	e.resetState()
	return e
}

// resetState restores the construction-time machine state in place, keeping
// every allocated structure (the ROB's parallel slices, ready list, wake
// heap, MOB ring, buffers).
func (e *Engine) resetState() {
	e.rob.reset()
	e.head, e.count, e.rsCount = 0, 0, 0
	e.readyList = e.readyList[:0]
	e.readyUnclass = 0
	e.wakeQ = e.wakeQ[:0]
	e.renameAge = 0
	e.now = 0
	for i := range e.regProd {
		e.regProd[i] = -1
		e.regSeq[i] = 0
	}
	e.mob.start, e.mob.length = 0, 0
	e.mob.first = 1
	e.staDoneTo, e.allDoneTo = 1, 1
	e.pendingColl = e.pendingColl[:0]
	e.awaitingBranch, e.resumeAt = false, 0
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.replayMemDebt, e.replayIntDebt = 0, 0
	e.recoveryStallUntil, e.recoveryCause = 0, stallNone
	e.missDetections = e.missDetections[:0]
	e.cycleRetired, e.cycleRenameStalled, e.schedHold = 0, false, stallNone
	e.run = runState{}
	e.stats = Stats{}
}

// Reset restores the engine to the state NewEngine left it in — same
// configuration, fresh machine — reusing every allocation: the caches and
// miss queue reset in place (so policies holding the Hierarchy pointer stay
// wired), the speculation policy resets its predictor tables, and the
// engine-side structures rewind via resetState. src supplies the next run's
// uop stream. It returns false, leaving the engine untouched, when the
// policy does not implement PolicyResetter — such engines cannot be reused
// and callers must build a fresh one. A Reset engine produces bit-identical
// statistics to a newly constructed engine with the same configuration.
func (e *Engine) Reset(src Source) bool {
	rp, ok := e.policy.(PolicyResetter)
	if !ok {
		return false
	}
	rp.Reset()
	e.hier.Reset()
	e.missq.Reset()
	e.setSource(src)
	e.resetState()
	return true
}

// setSource wires a (possibly bulk-capable) uop supplier and discards any
// buffered tail of the previous one. Side-car rename engages only when the
// source provides it, the configuration has not pinned the legacy
// alias-table path, and the rename pool is small enough that a saturated
// producer delta always compares as retired (the exactness condition of
// the watermark test).
func (e *Engine) setSource(src Source) {
	e.src = src
	e.bulk, _ = src.(BulkSource)
	e.depSrc, _ = src.(DepBatchSource)
	if e.cfg.LegacyAliasRename || e.cfg.RenamePool >= uop.DepSaturated {
		e.depSrc = nil
	}
	e.fetchRefU, e.fetchRefD = nil, nil
	e.fetchPos, e.fetchLen = 0, 0
}

// nextUop pulls one uop, draining the fetch buffer and refilling it in
// bulk when the source supports that. Buffering is invisible to the
// simulation — the engine consumes the identical stream either way.
func (e *Engine) nextUop() uop.UOp {
	if e.fetchPos < e.fetchLen {
		u := e.fetchBuf[e.fetchPos]
		e.fetchPos++
		return u
	}
	if e.bulk != nil {
		if n := e.bulk.NextBatch(e.fetchBuf); n > 0 {
			e.fetchLen, e.fetchPos = n, 1
			return e.fetchBuf[0]
		}
	}
	return e.src.Next()
}

// Hierarchy exposes the simulated data hierarchy (read-only use).
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.hier }

// Policy exposes the active speculation policy (read-only use).
func (e *Engine) Policy() SpeculationPolicy { return e.policy }

// StepCycle advances the machine by exactly one clock. External
// coordinators (e.g. the coarse-grained multithreading model in
// internal/smt) interleave several engines this way; Run remains the
// single-machine driver.
func (e *Engine) StepCycle() { e.cycle() }

// Retired returns the number of uops retired so far (across warmup too).
func (e *Engine) Retired() uint64 { return e.stats.Uops }

// Now returns the engine-local cycle count.
func (e *Engine) Now() int64 { return e.now }

// Run simulates until n uops retire after warmup and returns the measured
// statistics. It is BeginRun + StepRun-to-completion + EndRun; batch
// drivers (runner.RunBatch) use those pieces directly to interleave several
// engines over one trace window.
func (e *Engine) Run(n int) Stats {
	e.BeginRun(n)
	for !e.StepRun(1 << 30) {
	}
	return e.EndRun()
}

// BeginRun starts an incremental run that measures n retired uops after the
// configured warmup, from the engine's current state (a fresh or Reset
// engine gives the canonical from-zero run). Drive it with StepRun until
// completion, then collect the measured statistics with EndRun.
func (e *Engine) BeginRun(n int) {
	e.run.n = n
	if e.cfg.WarmupUops > 0 {
		e.run.phase = runWarmup
		e.run.target = e.stats.Uops + uint64(e.cfg.WarmupUops)
		e.run.guard = e.now + int64(e.cfg.WarmupUops)*1000 + 1_000_000
		return
	}
	e.startMeasure()
}

// startMeasure enters the measured phase: statistics from here to the
// phase's retirement target are the run's result.
func (e *Engine) startMeasure() {
	e.run.phase = runMeasure
	e.run.start = e.now
	e.run.target = e.stats.Uops + uint64(e.run.n)
	e.run.guard = e.now + int64(e.run.n)*1000 + 1_000_000
}

// StepRun advances an in-progress run until stride more uops retire, the
// warmup/measurement boundary is reached, or the run completes; it reports
// completion. The warmup boundary always returns control (without consuming
// stride), so external steppers observe it and statistics reset exactly
// where a monolithic run would have reset them. Cycle-for-cycle, a run
// driven by any stride sequence is identical to Run(n): the livelock guard
// is fixed per phase at phase entry, and fast-forward never crosses a
// boundary because the retirement target bounds every inner loop.
func (e *Engine) StepRun(stride int) bool {
	if e.run.phase == runIdle {
		return true
	}
	limit := e.run.target
	if s := e.stats.Uops + uint64(stride); s < limit {
		limit = s
	}
	for e.stats.Uops < limit {
		if !e.naive {
			// Jump over cycles where the machine provably cannot act,
			// attributing them in bulk (see ready.go). Sits before cycle()
			// so a measurement boundary never lands inside a skipped span.
			e.fastForward()
		}
		e.cycle()
		if e.now > e.run.guard {
			panic("ooo: livelock — no retirement progress")
		}
	}
	if e.stats.Uops < e.run.target {
		return false // stride exhausted mid-phase
	}
	if e.run.phase == runWarmup {
		e.stats = Stats{}
		e.hier.L1D().ResetStats()
		e.hier.L2().ResetStats()
		e.startMeasure()
		return false
	}
	e.run.phase = runIdle
	return true
}

// EndRun finalizes a completed run and returns the measured statistics.
func (e *Engine) EndRun() Stats {
	e.stats.Cycles = e.now - e.run.start
	return e.stats
}

// cycle advances the machine one clock: retire, resolve collisions,
// dispatch, then fetch/rename. Dispatch precedes rename so a uop spends at
// least one cycle in the scheduling window. After the stages run, the cycle
// is attributed to exactly one CPI-stack cause.
func (e *Engine) cycle() {
	e.now++
	e.cycleRetired = 0
	e.cycleRenameStalled = false
	e.schedHold = stallNone
	e.retire()
	e.resolveCollisions()
	e.dispatch()
	e.fetchRename()
	e.attributeCycle()
}

// robIdx maps a head-relative window position to its slot. Every caller
// passes pos < size (rename stalls before count reaches the pool size), so
// one conditional wrap replaces the modulo on this rename/dispatch-hot
// helper.
func (e *Engine) robIdx(pos int) int {
	i := e.head + pos
	if n := e.rob.size(); i >= n {
		i -= n
	}
	return i
}
