package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/uop"
)

// Source supplies the dynamic uop stream (a trace generator).
type Source interface {
	Next() uop.UOp
}

// LoadEvent describes one retired load for statistical consumers.
type LoadEvent struct {
	// IP and Addr identify the access.
	IP, Addr uint64
	// Colliding and Distance are the load's actual collision behavior.
	Colliding bool
	Distance  int
	// Hit reports an L1 hit.
	Hit bool
	// Conflicting reports an older incomplete store at schedule time.
	Conflicting bool
}

// entry is one in-flight uop in the instruction window.
type entry struct {
	u     uop.UOp
	valid bool
	// inRS marks residence in the scheduling window (entered at rename,
	// left at dispatch).
	inRS       bool
	dispatched bool
	done       bool
	doneCycle  int64

	// Register dependencies: rob index + seq guard of each source producer
	// (-1 when the value is already architectural).
	src1Prod, src2Prod int32
	src1Seq, src2Seq   int64

	// blockingBranch marks the mispredicted branch the front end stalls on.
	blockingBranch bool

	// Load-only state.
	olderStores int64 // StoreID of the youngest store older than this load
	classified  bool
	conflicting bool
	colliding   bool
	collDist    int
	pred        memdep.Prediction
	predHit     bool
	actualHit   bool
	level       cache.Level
	collided    bool  // paid the collision penalty
	waitStore   int64 // store id whose STD must complete to resolve this load
	cacheDone   int64 // completion time before collision resolution
	bankDelay   int64 // stall/flush cycles from banked-cache conflicts
	dispCycle   int64 // cycle the load dispatched (for replay accounting)
}

// storeRec is the MOB's view of one in-flight store.
type storeRec struct {
	id   int64
	ip   uint64
	addr uint64
	size int
	// barrier marks a store the [Hess95] barrier cache flagged at rename;
	// violated records whether a load was wrongly ordered against it.
	barrier, violated bool
	// Execution status of each half.
	staExec, stdExec         bool
	staExecCycle, stdExecCyc int64
	// Retirement status of each half (both retired → the record can be
	// pruned once it reaches the MOB head).
	staRetired, stdRetired bool
	// renamed halves present in the window.
	staSeen, stdSeen bool
}

// Engine is the out-of-order machine.
type Engine struct {
	cfg   Config
	src   Source
	hier  *cache.Hierarchy
	missq *cache.MissQueue
	cht   memdep.Predictor
	hmp   hitmiss.Predictor
	// hmpOracle marks the perfect predictor: it is granted knowledge of
	// dynamic misses (in-flight fills) that the directory probe cannot see.
	hmpOracle bool

	rob   []entry
	head  int // index of the oldest entry
	count int
	// rsCount tracks scheduling-window occupancy incrementally.
	rsCount int

	now int64

	regProd [uop.MaxArchRegs]int32
	regSeq  [uop.MaxArchRegs]int64

	// mob is indexed by StoreID - mobFirst.
	mob      []storeRec
	mobFirst int64

	// pendingColl lists rob indexes of dispatched loads awaiting a colliding
	// STD's completion time.
	pendingColl []int32

	// Front-end stall state.
	awaitingBranch bool
	resumeAt       int64

	// Per-cycle port usage.
	intUsed, memUsed, fpUsed, cplxUsed, stdUsed int

	// Replay debt: execution-port slots owed to re-executed loads and their
	// dependents (collision and miss replays). Drained before real dispatch
	// each cycle, modelling the bandwidth the recovery consumes.
	replayMemDebt, replayIntDebt int

	// recoveryStallUntil blocks dispatch while a memory-ordering violation
	// is being repaired.
	recoveryStallUntil int64
	// missDetections are the future cycles at which AM-PH misses are
	// discovered (dispatch + hit-indication); each triggers a
	// MissRecoveryBubble when it comes due.
	missDetections []int64

	bank *bankState

	stats Stats
}

// NewEngine builds an engine; it panics on an invalid configuration
// (configurations are static here, so an error return would only be
// rethrown by every caller).
func NewEngine(cfg Config, src Source) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	e := &Engine{
		cfg:      cfg,
		src:      src,
		hier:     cache.NewHierarchy(cfg.Hier),
		missq:    cache.NewMissQueue(16),
		cht:      cfg.CHT,
		rob:      make([]entry, cfg.RenamePool),
		mobFirst: 1,
	}
	for i := range e.regProd {
		e.regProd[i] = -1
	}
	e.hmp = cfg.HMP
	if e.hmp == nil {
		e.hmp = hitmiss.AlwaysHit{}
	}
	if p, ok := e.hmp.(*hitmiss.Perfect); ok {
		if p.Hierarchy == nil {
			p.Hierarchy = e.hier
		}
		e.hmpOracle = true
	}
	if p, ok := e.hmp.(*hitmiss.PerfectLevel); ok {
		if p.Hierarchy == nil {
			p.Hierarchy = e.hier
		}
		e.hmpOracle = true
	}
	if cfg.UseTimingHMP {
		e.hmp = hitmiss.NewTiming(e.hmp, e.missq)
	}
	e.bank = newBankState(cfg)
	return e
}

// Hierarchy exposes the simulated data hierarchy (read-only use).
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.hier }

// StepCycle advances the machine by exactly one clock. External
// coordinators (e.g. the coarse-grained multithreading model in
// internal/smt) interleave several engines this way; Run remains the
// single-machine driver.
func (e *Engine) StepCycle() { e.cycle() }

// Retired returns the number of uops retired so far (across warmup too).
func (e *Engine) Retired() uint64 { return e.stats.Uops }

// Now returns the engine-local cycle count.
func (e *Engine) Now() int64 { return e.now }

// Run simulates until n uops retire after warmup and returns the measured
// statistics.
func (e *Engine) Run(n int) Stats {
	if e.cfg.WarmupUops > 0 {
		e.runUops(e.cfg.WarmupUops)
		e.stats = Stats{}
		e.hier.L1D().ResetStats()
		e.hier.L2().ResetStats()
	}
	start := e.now
	e.runUops(n)
	e.stats.Cycles = e.now - start
	return e.stats
}

func (e *Engine) runUops(n int) {
	target := e.stats.Uops + uint64(n)
	guard := e.now + int64(n)*1000 + 1_000_000 // fail loudly on livelock
	for e.stats.Uops < target {
		e.cycle()
		if e.now > guard {
			panic("ooo: livelock — no retirement progress")
		}
	}
}

// cycle advances the machine one clock: retire, resolve collisions,
// dispatch, then fetch/rename. Dispatch precedes rename so a uop spends at
// least one cycle in the scheduling window.
func (e *Engine) cycle() {
	e.now++
	e.retire()
	e.resolveCollisions()
	e.dispatch()
	e.fetchRename()
}

func (e *Engine) robIdx(pos int) int { return (e.head + pos) % len(e.rob) }

// ---------- fetch / rename ----------

func (e *Engine) fetchRename() {
	if e.awaitingBranch || e.now < e.resumeAt {
		return
	}
	for i := 0; i < e.cfg.FetchWidth; i++ {
		if e.count >= len(e.rob) || e.rsCount >= e.cfg.Window {
			e.stats.RenameStalls++
			return
		}
		u := e.src.Next()
		e.rename(u)
		if u.Kind == uop.Branch && u.Mispredicted {
			// Fetch goes down the wrong path; stall until this branch
			// resolves plus the refill bubble.
			e.stats.BranchMispredicts++
			e.awaitingBranch = true
			return
		}
	}
}

func (e *Engine) rename(u uop.UOp) {
	idx := e.robIdx(e.count)
	e.count++
	en := &e.rob[idx]
	*en = entry{u: u, valid: true, inRS: true, src1Prod: -1, src2Prod: -1}
	e.rsCount++

	en.src1Prod, en.src1Seq = e.lookupProducer(u.Src1)
	en.src2Prod, en.src2Seq = e.lookupProducer(u.Src2)
	if u.Dst != uop.NoReg {
		e.regProd[u.Dst] = int32(idx)
		e.regSeq[u.Dst] = u.Seq
	}
	if u.Kind == uop.Branch && u.Mispredicted {
		en.blockingBranch = true
	}

	switch u.Kind {
	case uop.STA:
		rec := e.mobEnsure(u.StoreID)
		rec.ip = u.IP
		rec.addr = u.Addr
		rec.size = int(u.Size)
		rec.staSeen = true
		if e.cfg.Barrier != nil && e.cfg.Barrier.ShouldBarrier(u.IP) {
			rec.barrier = true
		}
	case uop.STD:
		rec := e.mobEnsure(u.StoreID)
		rec.stdSeen = true
	case uop.Load:
		en.olderStores = e.lastStoreID()
		if e.cfg.Scheme.UsesCHT() {
			en.pred = e.cht.Lookup(u.IP)
		}
	}
}

// lookupProducer resolves a source register to its in-flight producer.
func (e *Engine) lookupProducer(r uop.Reg) (int32, int64) {
	if r == uop.NoReg {
		return -1, 0
	}
	idx := e.regProd[r]
	if idx < 0 {
		return -1, 0
	}
	en := &e.rob[idx]
	if !en.valid || en.u.Seq != e.regSeq[r] || en.u.Dst != r {
		return -1, 0 // producer already retired
	}
	return idx, en.u.Seq
}

// ---------- MOB ----------

func (e *Engine) mobEnsure(id int64) *storeRec {
	for int64(len(e.mob)) <= id-e.mobFirst {
		e.mob = append(e.mob, storeRec{id: e.mobFirst + int64(len(e.mob))})
	}
	return &e.mob[id-e.mobFirst]
}

func (e *Engine) mobGet(id int64) *storeRec {
	if id < e.mobFirst || id-e.mobFirst >= int64(len(e.mob)) {
		return nil
	}
	return &e.mob[id-e.mobFirst]
}

// lastStoreID returns the id of the youngest store renamed so far.
func (e *Engine) lastStoreID() int64 { return e.mobFirst + int64(len(e.mob)) - 1 }

// mobPrune drops fully retired stores from the MOB head.
func (e *Engine) mobPrune() {
	for len(e.mob) > 0 {
		r := &e.mob[0]
		if !(r.staRetired && r.stdRetired) {
			return
		}
		e.mob = e.mob[1:]
		e.mobFirst++
	}
}

// overlap reports whether two accesses touch common bytes.
func overlap(a uint64, asz int, b uint64, bsz int) bool {
	return a < b+uint64(bsz) && b < a+uint64(asz)
}

// ---------- dispatch ----------

func (e *Engine) dispatch() {
	if len(e.missDetections) > 0 {
		kept := e.missDetections[:0]
		for _, d := range e.missDetections {
			if d <= e.now {
				if until := e.now + int64(e.cfg.MissRecoveryBubble); until > e.recoveryStallUntil {
					e.recoveryStallUntil = until
				}
				continue
			}
			kept = append(kept, d)
		}
		e.missDetections = kept
	}
	if e.now < e.recoveryStallUntil {
		return // replay/collision recovery in progress: no dispatch this cycle
	}
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.drainReplayDebt()
	e.bank.begin()
	for pos := 0; pos < e.count; pos++ {
		idx := e.robIdx(pos)
		en := &e.rob[idx]
		if !en.valid || !en.inRS || en.dispatched {
			continue
		}
		if !e.sourcesReady(en) {
			continue
		}
		switch en.u.Kind {
		case uop.Load:
			e.maybeDispatchLoad(int32(idx), en)
		case uop.STA:
			if e.memUsed < e.cfg.MemUnits {
				e.memUsed++
				e.dispatchSTA(en)
			}
		case uop.STD:
			if e.stdUsed < e.cfg.STDPorts {
				e.stdUsed++
				e.dispatchSTD(en)
			}
		case uop.FPU:
			if e.fpUsed < e.cfg.FPUnits {
				e.fpUsed++
				e.complete(en, e.cfg.latencyOf(uop.FPU))
			}
		case uop.Complex:
			if e.cplxUsed < e.cfg.ComplexUnits {
				e.cplxUsed++
				e.complete(en, e.cfg.latencyOf(uop.Complex))
			}
		default: // IntALU, Branch, Nop
			if e.intUsed < e.cfg.IntUnits {
				e.intUsed++
				e.complete(en, e.cfg.latencyOf(en.u.Kind))
				if en.blockingBranch {
					e.awaitingBranch = false
					e.resumeAt = en.doneCycle + int64(e.cfg.FrontEndRefill)
				}
			}
		}
	}
}

// drainReplayDebt spends owed replay slots against this cycle's ports.
func (e *Engine) drainReplayDebt() {
	for e.replayMemDebt > 0 && e.memUsed < e.cfg.MemUnits {
		e.memUsed++
		e.replayMemDebt--
	}
	for e.replayIntDebt > 0 && e.intUsed < e.cfg.IntUnits {
		e.intUsed++
		e.replayIntDebt--
	}
}

func (e *Engine) sourcesReady(en *entry) bool {
	return e.producerReady(en.src1Prod, en.src1Seq) && e.producerReady(en.src2Prod, en.src2Seq)
}

func (e *Engine) producerReady(idx int32, seq int64) bool {
	if idx < 0 {
		return true
	}
	p := &e.rob[idx]
	if !p.valid || p.u.Seq != seq {
		return true // retired
	}
	return p.done && p.doneCycle <= e.now
}

// complete marks a fixed-latency uop dispatched with its completion time.
func (e *Engine) complete(en *entry, lat int) {
	en.dispatched = true
	en.inRS = false
	e.rsCount--
	en.done = true
	en.doneCycle = e.now + int64(lat)
}

func (e *Engine) dispatchSTA(en *entry) {
	e.complete(en, e.cfg.LatSTA)
	rec := e.mobGet(en.u.StoreID)
	rec.staExec = true
	rec.staExecCycle = en.doneCycle
	// The store allocates its line (write-allocate) once its address is
	// known; timing-wise the fill rides the store buffer, so no load-visible
	// latency is modelled here.
	e.hier.Access(en.u.Addr)
}

func (e *Engine) dispatchSTD(en *entry) {
	e.complete(en, e.cfg.LatSTD)
	rec := e.mobGet(en.u.StoreID)
	rec.stdExec = true
	rec.stdExecCyc = en.doneCycle
}

// ---------- load scheduling ----------

// maybeDispatchLoad applies classification and the active ordering scheme,
// then executes the load if allowed.
func (e *Engine) maybeDispatchLoad(idx int32, en *entry) {
	// Classification happens at schedule time: the first cycle the load's
	// operands are ready (paper §2.1 definition of a conflicting load).
	if !en.classified {
		e.classifyLoad(en)
	}
	if e.memUsed >= e.cfg.MemUnits {
		return
	}
	if !e.orderingAllows(en) {
		return
	}
	if !e.bank.admit(e, en) {
		return
	}
	e.memUsed++
	e.executeLoad(idx, en)
}

// classifyLoad computes the AC/ANC/not-conflicting status of Figure 1.
//
// A load is *conflicting* when an older in-window store is incomplete at the
// load's schedule time, and *colliding* when such a store also overlaps the
// load's address — i.e. advancing the load would make it consume stale data
// and pay the collision penalty. (The paper defines conflict through
// unresolved STAs only; we fold in pending STDs so that the classification,
// the collision penalty, and CHT training all describe the same event — see
// DESIGN.md.)
func (e *Engine) classifyLoad(en *entry) {
	en.classified = true
	conflicting, colliding, dist := false, false, 0
	for id := e.mobFirst; id <= en.olderStores; id++ {
		rec := e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if e.storeDone(rec) {
			// Both halves have at least dispatched: the scheduler knows the
			// address and the data timing, so no ambiguity remains.
			continue
		}
		conflicting = true
		if overlap(rec.addr, rec.size, en.u.Addr, int(en.u.Size)) {
			colliding = true
			d := int(en.olderStores - rec.id + 1)
			if dist == 0 || d < dist {
				dist = d
			}
		}
	}
	en.conflicting = conflicting
	en.colliding = colliding
	en.collDist = dist
}

// orderingAllows applies the six schemes of §3.1, plus the optional
// [Hess95] store-barrier constraint.
func (e *Engine) orderingAllows(en *entry) bool {
	if e.cfg.Barrier != nil {
		for id := e.mobFirst; id <= en.olderStores; id++ {
			rec := e.mobGet(id)
			if rec != nil && rec.barrier && !e.storeDone(rec) {
				return false
			}
		}
	}
	switch e.cfg.Scheme {
	case memdep.Traditional:
		return e.storesComplete(en.olderStores, 0, false)
	case memdep.Opportunistic:
		return true
	case memdep.Postponing:
		if !e.storesComplete(en.olderStores, 0, false) {
			return false
		}
		if en.pred.Colliding {
			return e.storesComplete(en.olderStores, 0, true)
		}
		return true
	case memdep.Inclusive:
		if en.pred.Colliding {
			return e.storesComplete(en.olderStores, 0, true)
		}
		return true
	case memdep.Exclusive:
		if en.pred.Colliding {
			// Wait only for stores at the predicted distance or farther.
			maxID := en.olderStores
			if en.pred.Distance != memdep.NoDistance {
				maxID = en.olderStores - int64(en.pred.Distance) + 1
			}
			return e.storesComplete(maxID, 0, true)
		}
		return true
	default: // Perfect
		for id := e.mobFirst; id <= en.olderStores; id++ {
			rec := e.mobGet(id)
			if rec == nil || !rec.staSeen {
				continue
			}
			if overlap(rec.addr, rec.size, en.u.Addr, int(en.u.Size)) && !e.storeDone(rec) {
				return false
			}
		}
		return true
	}
}

// storesComplete reports whether all in-window stores with id ≤ maxID have
// dispatched their STA (and, if withSTD, their STD). A dispatched half's
// completion time is known to the scheduler, so "dispatched" is the point at
// which the ambiguity disappears.
func (e *Engine) storesComplete(maxID, _ int64, withSTD bool) bool {
	for id := e.mobFirst; id <= maxID; id++ {
		rec := e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if !rec.staExec {
			return false
		}
		if withSTD && !rec.stdExec {
			return false
		}
	}
	return true
}

func (e *Engine) storeDone(rec *storeRec) bool {
	return rec.staExec && rec.stdExec
}

// executeLoad performs the cache access, hit-miss prediction accounting and
// collision detection for a dispatching load.
func (e *Engine) executeLoad(idx int32, en *entry) {
	en.dispatched = true
	en.inRS = false
	e.rsCount--
	en.dispCycle = e.now

	// Hit-miss prediction must precede the access (the perfect predictor
	// probes current cache state). Level predictors refine the binary
	// hit/miss to the servicing level (§2.2 "for all levels").
	predLevel := cache.L1
	if lp, ok := e.hmp.(hitmiss.LevelPredictor); ok {
		predLevel = lp.PredictLevel(en.u.IP, en.u.Addr, e.now)
		en.predHit = predLevel == cache.L1
	} else {
		en.predHit = e.hmp.PredictHit(en.u.IP, en.u.Addr, e.now)
		if !en.predHit {
			predLevel = cache.L2
		}
	}
	en.level = e.hier.Access(en.u.Addr)
	en.actualHit = en.level == cache.L1

	actualLat := e.cfg.Lat.Of(en.level)
	// Dynamic miss: the line's fill is still in flight (the cache model
	// fills eagerly, so the directory says hit, but the data has not
	// arrived). The load waits out the remaining fill time — and only the
	// timing-enhanced predictor can anticipate it (§2.2).
	dynamicMiss := false
	e.missq.Advance(e.now)
	if ready, ok := e.missq.ReadyAt(en.u.Addr); ok && ready > e.now {
		en.actualHit = false
		dynamicMiss = true
		if rem := int(ready-e.now) + e.cfg.Lat.L1; rem > actualLat {
			actualLat = rem
		}
	}
	if e.hmpOracle {
		en.predHit = en.actualHit
		predLevel = en.level
		if dynamicMiss {
			predLevel = cache.L2 // any non-L1 value: the oracle is exact below
		}
	}
	predLat := e.cfg.Lat.Of(predLevel)
	switch {
	case en.actualHit && en.predHit: // AH-PH
		en.cacheDone = e.now + int64(actualLat)
	case en.actualHit && !en.predHit: // AH-PM: wait for the hit indication
		en.cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
	case !en.actualHit && en.predHit: // AM-PH: dependents replay
		en.cacheDone = e.now + int64(actualLat+e.cfg.MissReplayPenalty)
		e.replayIntDebt += e.cfg.MissReplayUops
		if e.cfg.MissRecoveryBubble > 0 {
			// The miss is discovered when the hit indication arrives; the
			// squash-and-reschedule bubble lands then.
			e.missDetections = append(e.missDetections, e.now+int64(e.cfg.Lat.HitIndication))
		}
	default: // AM-PM: dependents scheduled for the predicted level's latency
		en.cacheDone = e.now + int64(actualLat)
		switch {
		case dynamicMiss || e.hmpOracle:
			// The MSHR (or the oracle) supplies the exact arrival time.
		case actualLat > predLat:
			// Serviced deeper than scheduled (e.g. predicted L2, went to
			// memory): the dependents scheduled for predLat replay.
			en.cacheDone += int64(e.cfg.MissReplayPenalty)
		case actualLat < predLat:
			// Serviced shallower than scheduled: dependents sleep until the
			// early indication wakes them.
			en.cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
		}
	}
	en.cacheDone += en.bankDelay
	if !en.actualHit {
		e.missq.RecordMiss(en.u.Addr, e.now+int64(actualLat))
	}

	if e.cfg.OnMemoryLoad != nil && en.level == cache.Memory && !dynamicMiss {
		if predLevel == cache.Memory {
			// The predictor anticipated the full miss at dispatch.
			e.cfg.OnMemoryLoad(en.cacheDone-e.now, true)
		} else {
			// Discovered only when the hit indication arrives.
			rem := en.cacheDone - e.now - int64(e.cfg.Lat.HitIndication)
			if rem < 0 {
				rem = 0
			}
			e.cfg.OnMemoryLoad(rem, false)
		}
	}

	// Collision detection: the youngest older overlapping store whose data
	// is not complete at dispatch forces the paper's collision penalty.
	var match *storeRec
	for id := en.olderStores; id >= e.mobFirst; id-- {
		rec := e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if overlap(rec.addr, rec.size, en.u.Addr, int(en.u.Size)) {
			match = rec
			break
		}
	}
	if match != nil && !match.stdExec {
		// Ordering violation: the matching store's data has not even been
		// scheduled. The load is parked until the STD executes; detection of
		// the violation then costs a recovery bubble and replay bandwidth.
		en.collided = true
		e.stats.Collisions++
		en.waitStore = match.id
		e.pendingColl = append(e.pendingColl, idx)
		if e.cfg.Barrier != nil {
			match.violated = true
			e.cfg.Barrier.RecordViolation(match.ip)
		}
		return
	}
	en.done = true
	en.doneCycle = en.cacheDone
	if match != nil && match.stdExecCyc >= e.now {
		// The data is in flight with a known completion time: plain
		// store-to-load forwarding, one extra cycle, no penalty.
		if fwd := match.stdExecCyc + 1; fwd > en.doneCycle {
			en.doneCycle = fwd
		}
	}
	if e.cfg.DistanceForwarding && e.cfg.Scheme == memdep.Exclusive &&
		en.pred.Colliding && en.pred.Distance != memdep.NoDistance && match != nil {
		// Load-store pairing through the predicted distance: when the
		// predicted distance names the matching store, the load's data comes
		// from the store queue at ForwardLatency instead of the cache.
		if d := int(en.olderStores - match.id + 1); d == en.pred.Distance {
			fwd := match.stdExecCyc + int64(e.cfg.ForwardLatency)
			if fwd < e.now+int64(e.cfg.ForwardLatency) {
				fwd = e.now + int64(e.cfg.ForwardLatency)
			}
			if fwd < en.doneCycle {
				en.doneCycle = fwd
				e.stats.Forwards++
			}
		}
	}
}

// finishCollidedLoad completes a collided load once the colliding store's
// data time is known. The wrongly-advanced load re-executes after the store
// data arrives: it pays the forwarding/cache latency again plus the
// recovery penalty. A correctly-delayed load would have dispatched at
// stdDone and seen its data one cache latency later, so the collision costs
// exactly CollisionPenalty extra — the paper's accounting.
func (e *Engine) finishCollidedLoad(en *entry, stdDone int64) {
	en.done = true
	en.doneCycle = stdDone + int64(e.cfg.Lat.L1+e.cfg.CollisionPenalty)
	if en.cacheDone > en.doneCycle {
		en.doneCycle = en.cacheDone
	}
	// A machine without the P6 stall-in-RS ability re-executes the load and
	// its dependents "until the STD is successfully completed" (§1.1): one
	// replay round per cache latency of waiting, each burning issue slots.
	rounds := 1 + int(stdDone-en.dispCycle)/e.cfg.Lat.L1
	if rounds < 1 {
		rounds = 1
	}
	e.replayMemDebt += rounds
	e.replayIntDebt += rounds * e.cfg.CollisionReplayUops
}

// resolveCollisions completes loads whose colliding STD has now executed.
func (e *Engine) resolveCollisions() {
	if len(e.pendingColl) == 0 {
		return
	}
	kept := e.pendingColl[:0]
	for _, idx := range e.pendingColl {
		en := &e.rob[idx]
		rec := e.mobGet(en.waitStore)
		if rec == nil {
			// The store fully retired in this very cycle's retire phase (its
			// STD completed just before we ran). The collision still
			// happened — resolve it against the current cycle so the penalty
			// is not silently dropped.
			e.finishCollidedLoad(en, e.now)
			continue
		}
		if rec.stdExec && rec.stdExecCyc <= e.now {
			e.finishCollidedLoad(en, rec.stdExecCyc)
			// The violation is detected now: the scheduler spends a bubble
			// re-sequencing the load's dependence tree.
			until := e.now + int64(e.cfg.CollisionRecoveryBubble)
			if until > e.recoveryStallUntil {
				e.recoveryStallUntil = until
			}
			continue
		}
		kept = append(kept, idx)
	}
	e.pendingColl = kept
}

// ---------- retire ----------

func (e *Engine) retire() {
	for n := 0; n < e.cfg.RetireWidth && e.count > 0; n++ {
		idx := e.head
		en := &e.rob[idx]
		if !en.done || en.doneCycle > e.now {
			return
		}
		e.retireEntry(en)
		en.valid = false
		e.head = (e.head + 1) % len(e.rob)
		e.count--
	}
}

func (e *Engine) retireEntry(en *entry) {
	e.stats.Uops++
	switch en.u.Kind {
	case uop.Load:
		e.retireLoad(en)
	case uop.STA:
		e.stats.Stores++
		e.mobGet(en.u.StoreID).staRetired = true
	case uop.STD:
		rec := e.mobGet(en.u.StoreID)
		rec.stdRetired = true
		if e.cfg.Barrier != nil && !rec.violated {
			e.cfg.Barrier.RecordClean(rec.ip)
		}
		e.mobPrune()
	case uop.Branch:
		e.stats.Branches++
	}
}

func (e *Engine) retireLoad(en *entry) {
	e.stats.Loads++
	switch en.level {
	case cache.L1:
		e.stats.L1Hits++
	case cache.L2:
		e.stats.L1Misses++
	default:
		e.stats.L1Misses++
		e.stats.L2Misses++
	}

	// Figure 1 classification bookkeeping.
	c := &e.stats.Class
	c.Loads++
	predColl := en.pred.Colliding
	switch {
	case !en.conflicting:
		c.NotConflicting++
	case en.colliding && predColl:
		c.ACPC++
	case en.colliding && !predColl:
		c.ACPNC++
	case !en.colliding && predColl:
		c.ANCPC++
	default:
		c.ANCPNC++
	}

	// Predictor training.
	if e.cfg.Scheme.UsesCHT() {
		e.cht.Record(en.u.IP, en.colliding, en.collDist)
	}
	e.stats.HM.Record(en.actualHit, en.predHit)
	if lp, ok := e.hmp.(hitmiss.LevelPredictor); ok {
		lp.UpdateLevel(en.u.IP, en.u.Addr, e.now, en.level)
	} else {
		e.hmp.Update(en.u.IP, en.u.Addr, e.now, en.actualHit)
	}
	e.bank.train(en)
	if e.cfg.OnLoadRetire != nil {
		e.cfg.OnLoadRetire(LoadEvent{
			IP: en.u.IP, Addr: en.u.Addr,
			Colliding: en.colliding, Distance: en.collDist,
			Hit: en.actualHit, Conflicting: en.conflicting,
		})
	}
}
