package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
	"loadsched/internal/uop"
)

// The engine is decomposed into one file per pipeline stage, all operating
// on the shared machine state below:
//
//	frontend.go  fetch + rename (branch stall, producer tracking, MOB entry)
//	schedule.go  dispatch walk, port allocation, replay debt
//	ready.go     event-driven core: wakeup lists, ready set, fast-forward
//	memory.go    MOB queries, load classification, collision resolution
//	execute.go   load execution: cache access, latency speculation, penalties
//	retire.go    in-order retirement, stat finalization, predictor training
//	policy.go    the SpeculationPolicy seam the stages consult
//	cpi.go       per-cycle stall attribution (the CPI stack)
//
// Every speculation decision flows through the SpeculationPolicy seam, so
// stage code contains machine mechanics only.

// Source supplies the dynamic uop stream (a trace generator).
type Source interface {
	Next() uop.UOp
}

// LoadEvent describes one retired load for statistical consumers.
type LoadEvent struct {
	// IP and Addr identify the access.
	IP, Addr uint64
	// Colliding and Distance are the load's actual collision behavior.
	Colliding bool
	Distance  int
	// Hit reports an L1 hit.
	Hit bool
	// Conflicting reports an older incomplete store at schedule time.
	Conflicting bool
}

// entry is one in-flight uop in the instruction window.
type entry struct {
	u     uop.UOp
	valid bool
	// inRS marks residence in the scheduling window (entered at rename,
	// left at dispatch).
	inRS       bool
	dispatched bool
	done       bool
	doneCycle  int64

	// Register dependencies: rob index + seq guard of each source producer
	// (-1 when the value is already architectural).
	src1Prod, src2Prod int32
	src1Seq, src2Seq   int64

	// blockingBranch marks the mispredicted branch the front end stalls on.
	blockingBranch bool

	// Event-driven scheduling state (see ready.go). waiters lists the rob
	// indexes of register consumers to wake when this entry completes; its
	// backing array is retained across slot reuse. nwaiting counts this
	// entry's producers whose completion time is still unknown; readyAt
	// accumulates the latest known producer completion and is final once
	// nwaiting reaches 0. age orders the ready set by rename order (robust
	// against sources that do not populate Seq).
	waiters  []int32
	nwaiting int8
	readyAt  int64
	age      int64

	// Load-only state.
	olderStores int64 // StoreID of the youngest store older than this load
	classified  bool
	conflicting bool
	colliding   bool
	collDist    int
	pred        memdep.Prediction
	predHit     bool
	actualHit   bool
	level       cache.Level
	collided    bool  // paid the collision penalty
	waitStore   int64 // store id whose STD must complete to resolve this load
	cacheDone   int64 // completion time before collision resolution
	bankDelay   int64 // stall/flush cycles from banked-cache conflicts
	dispCycle   int64 // cycle the load dispatched (for replay accounting)
}

// loadView projects the policy-visible slice of a load entry.
func loadView(en *entry) LoadView {
	return LoadView{
		IP: en.u.IP, Addr: en.u.Addr, Size: int(en.u.Size),
		OlderStores: en.olderStores, Pred: en.pred,
	}
}

// storeRec is the MOB's view of one in-flight store.
type storeRec struct {
	id   int64
	ip   uint64
	addr uint64
	size int
	// barrier marks a store the [Hess95] barrier cache flagged at rename;
	// violated records whether a load was wrongly ordered against it.
	barrier, violated bool
	// Execution status of each half.
	staExec, stdExec         bool
	staExecCycle, stdExecCyc int64
	// Retirement status of each half (both retired → the record can be
	// pruned once it reaches the MOB head).
	staRetired, stdRetired bool
	// renamed halves present in the window.
	staSeen, stdSeen bool
}

// Engine is the out-of-order machine.
type Engine struct {
	cfg   Config
	src   Source
	hier  *cache.Hierarchy
	missq *cache.MissQueue
	// policy is the speculation seam every prediction decision goes
	// through; oracle caches policy.Oracle().
	policy SpeculationPolicy
	oracle bool

	rob   []entry
	head  int // index of the oldest entry
	count int
	// rsCount tracks scheduling-window occupancy incrementally.
	rsCount int

	// Event-driven scheduling core (ready.go): readyList holds the rob
	// indexes of window entries whose operands are ready, in age order;
	// wakeQ holds entries whose operands complete at a known future cycle.
	// renameAge is the monotone counter behind entry.age. naive selects the
	// retained full-walk reference scheduler (Config.NaiveSchedule).
	readyList []int32
	wakeQ     wakeHeap
	renameAge int64
	naive     bool

	now int64

	regProd [uop.MaxArchRegs]int32
	regSeq  [uop.MaxArchRegs]int64

	// mob is a ring buffer of in-flight store records: the record for
	// StoreID id lives at mob[(mobStart + id - mobFirst) % len(mob)], and
	// mobLen records are live. The ring is sized once from Config.RenamePool
	// (live stores are bounded by the instruction window) and doubles only
	// in the degenerate case that bound is exceeded, so steady-state MOB
	// traffic allocates nothing.
	mob      []storeRec
	mobStart int
	mobLen   int
	mobFirst int64

	// pendingColl lists rob indexes of dispatched loads awaiting a colliding
	// STD's completion time.
	pendingColl []int32

	// Front-end stall state.
	awaitingBranch bool
	resumeAt       int64

	// Per-cycle port usage.
	intUsed, memUsed, fpUsed, cplxUsed, stdUsed int

	// Replay debt: execution-port slots owed to re-executed loads and their
	// dependents (collision and miss replays). Drained before real dispatch
	// each cycle, modelling the bandwidth the recovery consumes.
	replayMemDebt, replayIntDebt int

	// recoveryStallUntil blocks dispatch while a memory-ordering violation
	// is being repaired; recoveryCause remembers which repair set it, for
	// the CPI stack.
	recoveryStallUntil int64
	recoveryCause      stallCause
	// missDetections are the future cycles at which AM-PH misses are
	// discovered (dispatch + hit-indication); each triggers a
	// MissRecoveryBubble when it comes due.
	missDetections []int64

	// Per-cycle CPI-stack evidence (see cpi.go).
	cycleRetired       int
	cycleRenameStalled bool
	schedHold          stallCause

	stats Stats
}

// NewEngine builds an engine; it panics on an invalid configuration
// (configurations are static here, so an error return would only be
// rethrown by every caller). Every variable-size structure is allocated
// here, sized from the configuration; the per-run churn (ready set, wake
// heap, MOB ring, pending-collision and miss-detection buffers) recycles
// those arrays, so a warmed-up engine simulates without allocating.
func NewEngine(cfg Config, src Source) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mobCap := cfg.RenamePool
	if mobCap < 16 {
		mobCap = 16
	}
	e := &Engine{
		cfg:            cfg,
		src:            src,
		hier:           cache.NewHierarchy(cfg.Hier),
		missq:          cache.NewMissQueue(16),
		rob:            make([]entry, cfg.RenamePool),
		readyList:      make([]int32, 0, cfg.Window),
		wakeQ:          make(wakeHeap, 0, cfg.RenamePool),
		mob:            make([]storeRec, mobCap),
		pendingColl:    make([]int32, 0, 16),
		missDetections: make([]int64, 0, 16),
		naive:          cfg.NaiveSchedule,
	}
	deps := PolicyDeps{Hier: e.hier, MissQ: e.missq}
	if cfg.NewPolicy != nil {
		e.policy = cfg.NewPolicy(deps)
	} else {
		e.policy = DefaultPolicy(cfg, deps)
	}
	e.oracle = e.policy.Oracle()
	e.resetState()
	return e
}

// resetState restores the construction-time machine state in place, keeping
// every allocated structure (rob, ready list, wake heap, MOB ring, buffers —
// including each entry's wakeup-list backing array).
func (e *Engine) resetState() {
	for i := range e.rob {
		en := &e.rob[i]
		*en = entry{waiters: en.waiters[:0]}
	}
	e.head, e.count, e.rsCount = 0, 0, 0
	e.readyList = e.readyList[:0]
	e.wakeQ = e.wakeQ[:0]
	e.renameAge = 0
	e.now = 0
	for i := range e.regProd {
		e.regProd[i] = -1
		e.regSeq[i] = 0
	}
	e.mobStart, e.mobLen = 0, 0
	e.mobFirst = 1
	e.pendingColl = e.pendingColl[:0]
	e.awaitingBranch, e.resumeAt = false, 0
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.replayMemDebt, e.replayIntDebt = 0, 0
	e.recoveryStallUntil, e.recoveryCause = 0, stallNone
	e.missDetections = e.missDetections[:0]
	e.cycleRetired, e.cycleRenameStalled, e.schedHold = 0, false, stallNone
	e.stats = Stats{}
}

// Reset restores the engine to the state NewEngine left it in — same
// configuration, fresh machine — reusing every allocation: the caches and
// miss queue reset in place (so policies holding the Hierarchy pointer stay
// wired), the speculation policy resets its predictor tables, and the
// engine-side structures rewind via resetState. src supplies the next run's
// uop stream. It returns false, leaving the engine untouched, when the
// policy does not implement PolicyResetter — such engines cannot be reused
// and callers must build a fresh one. A Reset engine produces bit-identical
// statistics to a newly constructed engine with the same configuration.
func (e *Engine) Reset(src Source) bool {
	rp, ok := e.policy.(PolicyResetter)
	if !ok {
		return false
	}
	rp.Reset()
	e.hier.Reset()
	e.missq.Reset()
	e.src = src
	e.resetState()
	return true
}

// Hierarchy exposes the simulated data hierarchy (read-only use).
func (e *Engine) Hierarchy() *cache.Hierarchy { return e.hier }

// Policy exposes the active speculation policy (read-only use).
func (e *Engine) Policy() SpeculationPolicy { return e.policy }

// StepCycle advances the machine by exactly one clock. External
// coordinators (e.g. the coarse-grained multithreading model in
// internal/smt) interleave several engines this way; Run remains the
// single-machine driver.
func (e *Engine) StepCycle() { e.cycle() }

// Retired returns the number of uops retired so far (across warmup too).
func (e *Engine) Retired() uint64 { return e.stats.Uops }

// Now returns the engine-local cycle count.
func (e *Engine) Now() int64 { return e.now }

// Run simulates until n uops retire after warmup and returns the measured
// statistics.
func (e *Engine) Run(n int) Stats {
	if e.cfg.WarmupUops > 0 {
		e.runUops(e.cfg.WarmupUops)
		e.stats = Stats{}
		e.hier.L1D().ResetStats()
		e.hier.L2().ResetStats()
	}
	start := e.now
	e.runUops(n)
	e.stats.Cycles = e.now - start
	return e.stats
}

func (e *Engine) runUops(n int) {
	target := e.stats.Uops + uint64(n)
	guard := e.now + int64(n)*1000 + 1_000_000 // fail loudly on livelock
	for e.stats.Uops < target {
		if !e.naive {
			// Jump over cycles where the machine provably cannot act,
			// attributing them in bulk (see ready.go). Sits before cycle()
			// so a measurement boundary never lands inside a skipped span.
			e.fastForward()
		}
		e.cycle()
		if e.now > guard {
			panic("ooo: livelock — no retirement progress")
		}
	}
}

// cycle advances the machine one clock: retire, resolve collisions,
// dispatch, then fetch/rename. Dispatch precedes rename so a uop spends at
// least one cycle in the scheduling window. After the stages run, the cycle
// is attributed to exactly one CPI-stack cause.
func (e *Engine) cycle() {
	e.now++
	e.cycleRetired = 0
	e.cycleRenameStalled = false
	e.schedHold = stallNone
	e.retire()
	e.resolveCollisions()
	e.dispatch()
	e.fetchRename()
	e.attributeCycle()
}

func (e *Engine) robIdx(pos int) int { return (e.head + pos) % len(e.rob) }
