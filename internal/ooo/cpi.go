package ooo

// CPI-stack accounting: every simulated cycle is attributed to exactly one
// cause, so the per-cause cycle counts sum to the total cycle count by
// construction. Attribution is retirement-centric (the classic CPI-stack
// construction): a cycle that retires work is base; a cycle that retires
// nothing is charged, in priority order, to a dispatch-gating recovery
// bubble, an empty window (front-end refill), the oldest ready uop the
// scheduler actively HELD (ordering / bank / port — the actionable causes
// the paper's predictors attack), and otherwise to the oldest instruction's
// own waiting (window pressure or operand/execution latency).
//
// The stack is observational only — it reads per-cycle evidence the stages
// already produce and never influences scheduling — so enabling it cannot
// perturb figure output.

// stallCause is the engine-internal evidence tag for why the window head
// (or the whole machine) could not make progress this cycle.
type stallCause uint8

const (
	stallNone stallCause = iota
	// stallCollision / stallMissReplay mark which repair set the current
	// recovery bubble.
	stallCollision
	stallMissReplay
	// stallOrdering / stallBank / stallPort record why the oldest ready
	// window uop was held by the scheduler.
	stallOrdering
	stallBank
	stallPort
)

// CPIStack is the per-cause cycle attribution of one run. Each simulated
// cycle increments exactly one field, so Total always equals Stats.Cycles
// over the measured region.
type CPIStack struct {
	// Base counts cycles that retired at least one uop.
	Base int64
	// Frontend counts empty-window cycles: the front end is refilling after
	// a mispredicted branch (or has not yet delivered the first uops).
	Frontend int64
	// WindowFull counts cycles where the oldest uop is executing, nothing
	// retired, and rename stalled for window/pool space — the window is too
	// small to find more ILP under the in-flight latency.
	WindowFull int64
	// PortContention counts cycles the oldest ready uop was held because all
	// suitable execution ports were taken (including slots consumed by
	// replay debt).
	PortContention int64
	// OrderingWait counts cycles the oldest ready uop — a load — was held by
	// the memory-ordering scheme (or a store barrier): the cost the paper's
	// collision prediction attacks.
	OrderingWait int64
	// BankConflict counts cycles the oldest ready uop — a load — was held by
	// the banked-cache steering policy.
	BankConflict int64
	// CollisionRecovery counts dispatch-gating bubble cycles spent repairing
	// a memory-ordering violation.
	CollisionRecovery int64
	// MissReplay counts dispatch-gating bubble cycles spent squashing and
	// rescheduling the dependents of a load that was predicted to hit but
	// missed (AM-PH).
	MissReplay int64
	// DataStall counts the remaining no-retire cycles: no ready uop was held
	// by a scheduler decision; the oldest instruction is waiting on operand
	// producers or on its own execution latency (cache miss service,
	// collision resolution) without the window being full.
	DataStall int64
}

// Total sums every cause; it equals Stats.Cycles over the measured region.
func (c CPIStack) Total() int64 {
	return c.Base + c.Frontend + c.WindowFull + c.PortContention +
		c.OrderingWait + c.BankConflict + c.CollisionRecovery + c.MissReplay + c.DataStall
}

// Add accumulates another run's stack (trace-group pooling).
func (c *CPIStack) Add(o CPIStack) {
	c.Base += o.Base
	c.Frontend += o.Frontend
	c.WindowFull += o.WindowFull
	c.PortContention += o.PortContention
	c.OrderingWait += o.OrderingWait
	c.BankConflict += o.BankConflict
	c.CollisionRecovery += o.CollisionRecovery
	c.MissReplay += o.MissReplay
	c.DataStall += o.DataStall
}

// noteSchedHold records why a schedule-stage decision held a ready uop.
// The dispatch walk visits window entries oldest-first, so the first note
// of a cycle belongs to the oldest held uop — the one the CPI stack charges
// a no-retire cycle to. (A uop whose operands are not ready is waiting, not
// held, and never notes a hold.)
func (e *Engine) noteSchedHold(cause stallCause) {
	if e.schedHold == stallNone {
		e.schedHold = cause
	}
}

// attributeCycle charges the cycle that just ran to exactly one cause. It
// runs after all stages, so it sees the cycle's retire count, recovery
// state, scheduler-hold evidence and rename-stall flag.
func (e *Engine) attributeCycle() {
	c := &e.stats.CPI
	switch {
	case e.cycleRetired > 0:
		c.Base++
	case e.now < e.recoveryStallUntil:
		if e.recoveryCause == stallMissReplay {
			c.MissReplay++
		} else {
			c.CollisionRecovery++
		}
	case e.count == 0:
		c.Frontend++
	default:
		// The scheduler held a ready uop: the hold is the actionable cause
		// (the ordering/bank predictors exist to remove exactly these).
		switch e.schedHold {
		case stallOrdering:
			c.OrderingWait++
			return
		case stallBank:
			c.BankConflict++
			return
		case stallPort:
			c.PortContention++
			return
		}
		// Nothing was held: the oldest instruction is executing or waiting
		// on operands. If rename also stalled for space, the window itself
		// is the limiter; otherwise it is a data/latency stall.
		if e.cycleRenameStalled {
			c.WindowFull++
		} else {
			c.DataStall++
		}
	}
}
