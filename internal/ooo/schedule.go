package ooo

import "loadsched/internal/uop"

// Schedule/dispatch stage: offers operand-ready window slots to the
// execution ports oldest-first each cycle, pays down replay debt, and
// applies the speculation policy's ordering and bank-steering decisions to
// ready loads. Readiness is tracked event-driven (ready.go): completions
// wake their register consumers into an age-ordered ready list, so the walk
// below touches only ready slots — reading the ROB's parallel flag and age
// arrays — instead of re-scanning the whole window. Recovery bubbles
// (collision repair, late-discovered misses) gate the whole stage. The age
// (= rename) order makes the first scheduler hold noted per cycle the
// oldest one, which is what feeds the CPI stack.

func (e *Engine) dispatch() {
	e.processMissDetections()
	if e.now < e.recoveryStallUntil {
		return // replay/collision recovery in progress: no dispatch this cycle
	}
	if e.naive {
		e.dispatchNaive()
		return
	}
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.drainReplayDebt()
	if p := e.defPol; p != nil {
		p.bank.begin()
	} else {
		e.policy.BeginCycle()
	}
	e.drainWakeQ()
	// Indexed loop: a zero-latency completion inside the walk may insert a
	// same-cycle consumer, which (being younger) always lands after i. Held
	// entries compact toward the front in the same pass (w never catches
	// i, so the writes stay behind the read cursor and appended entries
	// are untouched until visited).
	w := 0
	for i := 0; i < len(e.readyList); i++ {
		idx := e.readyList[i]
		e.dispatchEntry(idx)
		if e.rob.flags[idx]&fDispatched == 0 {
			e.readyList[w] = idx // still held: re-offer next cycle
			w++
		}
		// Early exit: with every port class exhausted nothing further can
		// dispatch, and visiting the rest would only re-note holds — the
		// CPI stack keeps just the first note, and every remaining entry
		// would note exactly stallPort. The walk must still reach any
		// unclassified load (its first offer classifies against this
		// cycle's MOB state); readyUnclass tracks whether one remains.
		if e.readyUnclass == 0 && i+1 < len(e.readyList) &&
			e.intUsed >= e.cfg.IntUnits && e.memUsed >= e.cfg.MemUnits &&
			e.fpUsed >= e.cfg.FPUnits && e.cplxUsed >= e.cfg.ComplexUnits &&
			e.stdUsed >= e.cfg.STDPorts {
			e.noteSchedHold(stallPort)
			w += copy(e.readyList[w:], e.readyList[i+1:])
			break
		}
	}
	e.readyList = e.readyList[:w]
}

// processMissDetections arms the miss-recovery bubble for every AM-PH miss
// whose hit indication has come due. It runs even while dispatch is
// recovery-stalled (a due detection extends the stall).
func (e *Engine) processMissDetections() {
	if len(e.missDetections) == 0 {
		return
	}
	kept := e.missDetections[:0]
	for _, d := range e.missDetections {
		if d <= e.now {
			if until := e.now + int64(e.cfg.MissRecoveryBubble); until > e.recoveryStallUntil {
				e.recoveryStallUntil = until
				e.recoveryCause = stallMissReplay
			}
			continue
		}
		kept = append(kept, d)
	}
	// The backing array is deliberately retained (capacity is bounded by the
	// loads in flight): detections recur throughout a run, and pooled engines
	// reuse the buffer across runs.
	e.missDetections = kept
}

// dispatchNaive is the retained reference scheduler (Config.NaiveSchedule):
// the original full-window walk that polls sourcesReady on every slot. The
// differential property test pins the event-driven core against it.
func (e *Engine) dispatchNaive() {
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.drainReplayDebt()
	if p := e.defPol; p != nil {
		p.bank.begin()
	} else {
		e.policy.BeginCycle()
	}
	for pos := 0; pos < e.count; pos++ {
		idx := int32(e.robIdx(pos))
		f := e.rob.flags[idx]
		if f&fValid == 0 || f&fInRS == 0 || f&fDispatched != 0 {
			continue
		}
		if !e.sourcesReady(idx) {
			continue
		}
		e.dispatchEntry(idx)
	}
}

// dispatchEntry offers one operand-ready slot to its execution port. Both
// schedulers funnel through here, so port allocation, hold accounting and
// completion are identical by construction.
func (e *Engine) dispatchEntry(idx int32) {
	switch uop.Kind(e.rob.kind[idx]) {
	case uop.Load:
		e.maybeDispatchLoad(idx)
	case uop.STA:
		if e.memUsed < e.cfg.MemUnits {
			e.memUsed++
			e.dispatchSTA(idx)
		} else {
			e.noteSchedHold(stallPort)
		}
	case uop.STD:
		if e.stdUsed < e.cfg.STDPorts {
			e.stdUsed++
			e.dispatchSTD(idx)
		} else {
			e.noteSchedHold(stallPort)
		}
	case uop.FPU:
		if e.fpUsed < e.cfg.FPUnits {
			e.fpUsed++
			e.complete(idx, e.cfg.latencyOf(uop.FPU))
		} else {
			e.noteSchedHold(stallPort)
		}
	case uop.Complex:
		if e.cplxUsed < e.cfg.ComplexUnits {
			e.cplxUsed++
			e.complete(idx, e.cfg.latencyOf(uop.Complex))
		} else {
			e.noteSchedHold(stallPort)
		}
	default: // IntALU, Branch, Nop
		if e.intUsed < e.cfg.IntUnits {
			e.intUsed++
			e.complete(idx, e.cfg.latencyOf(uop.Kind(e.rob.kind[idx])))
			if e.rob.flags[idx]&fBlockingBranch != 0 {
				e.awaitingBranch = false
				e.resumeAt = e.rob.doneCycle[idx] + int64(e.cfg.FrontEndRefill)
			}
		} else {
			e.noteSchedHold(stallPort)
		}
	}
}

// maybeDispatchLoad applies classification and the active ordering scheme,
// then executes the load if allowed.
func (e *Engine) maybeDispatchLoad(idx int32) {
	// Classification happens at schedule time: the first cycle the load's
	// operands are ready (paper §2.1 definition of a conflicting load).
	// The policy-visible view is built once alongside it — every field is
	// fixed at rename — and held loads are re-offered with a pointer into
	// the slot's cached view.
	if e.rob.flags[idx]&fClassified == 0 {
		e.classifyLoad(idx)
		e.rob.lv[idx] = e.loadView(idx)
	}
	if e.memUsed >= e.cfg.MemUnits {
		e.noteSchedHold(stallPort)
		return
	}
	lv := &e.rob.lv[idx]
	if !e.orderingAllows(idx, lv) {
		e.noteSchedHold(stallOrdering)
		return
	}
	var d BankDecision
	if p := e.defPol; p != nil {
		d = p.bank.admit(lv)
	} else {
		d = e.policy.AdmitBank(lv)
	}
	if d.Conflict {
		e.stats.BankConflicts++
	}
	if d.Mispredict {
		e.stats.BankMispredicts++
	}
	if d.Duplicate {
		e.stats.BankDuplicates++
	}
	if !d.Admit {
		e.noteSchedHold(stallBank)
		return
	}
	e.rob.bankDelay[idx] = d.Delay
	e.memUsed++
	e.executeLoad(idx)
}

// orderingAllows applies the optional [Hess95] store-barrier constraint (a
// MOB property layered on every scheme) and then the policy's ordering
// decision.
// lv is the caller's already-built view of slot idx — maybeDispatchLoad
// shares one construction between this check and AdmitBank.
func (e *Engine) orderingAllows(idx int32, lv *LoadView) bool {
	if e.cfg.Barrier != nil && e.barrierBlocked(e.rob.olderStores[idx]) {
		return false
	}
	if p := e.defPol; p != nil {
		return p.AllowOrdering(lv, e.mobView())
	}
	return e.policy.AllowOrdering(lv, e.mobView())
}

// drainReplayDebt spends owed replay slots against this cycle's ports.
func (e *Engine) drainReplayDebt() {
	for e.replayMemDebt > 0 && e.memUsed < e.cfg.MemUnits {
		e.memUsed++
		e.replayMemDebt--
	}
	for e.replayIntDebt > 0 && e.intUsed < e.cfg.IntUnits {
		e.intUsed++
		e.replayIntDebt--
	}
}

func (e *Engine) sourcesReady(idx int32) bool {
	r := &e.rob
	return e.producerReady(r.src1Prod[idx], r.src1Seq[idx]) &&
		e.producerReady(r.src2Prod[idx], r.src2Seq[idx])
}

func (e *Engine) producerReady(idx int32, seq int64) bool {
	if idx < 0 {
		return true
	}
	if e.rob.flags[idx]&fValid == 0 || e.rob.seq[idx] != seq {
		return true // retired
	}
	return e.rob.flags[idx]&fDone != 0 && e.rob.doneCycle[idx] <= e.now
}

// complete marks a fixed-latency uop dispatched with its completion time,
// which is final — so its register consumers can be woken immediately.
func (e *Engine) complete(idx int32, lat int) {
	e.rob.flags[idx] = e.rob.flags[idx]&^fInRS | fDispatched | fDone
	e.rsCount--
	e.rob.doneCycle[idx] = e.now + int64(lat)
	e.wakeDependents(idx)
}

func (e *Engine) dispatchSTA(idx int32) {
	e.complete(idx, e.cfg.LatSTA)
	pos := e.mobGet(e.rob.u[idx].StoreID)
	e.mob.flags[pos] |= mStaExec
	e.mob.staExecCycle[pos] = e.rob.doneCycle[idx]
	// The store allocates its line (write-allocate) once its address is
	// known; timing-wise the fill rides the store buffer, so no load-visible
	// latency is modelled here.
	e.hier.Access(e.rob.u[idx].Addr)
}

func (e *Engine) dispatchSTD(idx int32) {
	e.complete(idx, e.cfg.LatSTD)
	pos := e.mobGet(e.rob.u[idx].StoreID)
	e.mob.flags[pos] |= mStdExec
	e.mob.stdExecCyc[pos] = e.rob.doneCycle[idx]
}
