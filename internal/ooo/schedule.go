package ooo

import "loadsched/internal/uop"

// Schedule/dispatch stage: walks the scheduling window oldest-first each
// cycle, allocates execution ports, pays down replay debt, and applies the
// speculation policy's ordering and bank-steering decisions to ready loads.
// Recovery bubbles (collision repair, late-discovered misses) gate the whole
// stage. The oldest-first walk order makes the first scheduler hold noted
// per cycle the oldest one, which is what feeds the CPI stack.

func (e *Engine) dispatch() {
	if len(e.missDetections) > 0 {
		kept := e.missDetections[:0]
		for _, d := range e.missDetections {
			if d <= e.now {
				if until := e.now + int64(e.cfg.MissRecoveryBubble); until > e.recoveryStallUntil {
					e.recoveryStallUntil = until
					e.recoveryCause = stallMissReplay
				}
				continue
			}
			kept = append(kept, d)
		}
		e.missDetections = kept
	}
	if e.now < e.recoveryStallUntil {
		return // replay/collision recovery in progress: no dispatch this cycle
	}
	e.intUsed, e.memUsed, e.fpUsed, e.cplxUsed, e.stdUsed = 0, 0, 0, 0, 0
	e.drainReplayDebt()
	e.policy.BeginCycle()
	for pos := 0; pos < e.count; pos++ {
		idx := e.robIdx(pos)
		en := &e.rob[idx]
		if !en.valid || !en.inRS || en.dispatched {
			continue
		}
		if !e.sourcesReady(en) {
			continue
		}
		switch en.u.Kind {
		case uop.Load:
			e.maybeDispatchLoad(int32(idx), en)
		case uop.STA:
			if e.memUsed < e.cfg.MemUnits {
				e.memUsed++
				e.dispatchSTA(en)
			} else {
				e.noteSchedHold(stallPort)
			}
		case uop.STD:
			if e.stdUsed < e.cfg.STDPorts {
				e.stdUsed++
				e.dispatchSTD(en)
			} else {
				e.noteSchedHold(stallPort)
			}
		case uop.FPU:
			if e.fpUsed < e.cfg.FPUnits {
				e.fpUsed++
				e.complete(en, e.cfg.latencyOf(uop.FPU))
			} else {
				e.noteSchedHold(stallPort)
			}
		case uop.Complex:
			if e.cplxUsed < e.cfg.ComplexUnits {
				e.cplxUsed++
				e.complete(en, e.cfg.latencyOf(uop.Complex))
			} else {
				e.noteSchedHold(stallPort)
			}
		default: // IntALU, Branch, Nop
			if e.intUsed < e.cfg.IntUnits {
				e.intUsed++
				e.complete(en, e.cfg.latencyOf(en.u.Kind))
				if en.blockingBranch {
					e.awaitingBranch = false
					e.resumeAt = en.doneCycle + int64(e.cfg.FrontEndRefill)
				}
			} else {
				e.noteSchedHold(stallPort)
			}
		}
	}
}

// maybeDispatchLoad applies classification and the active ordering scheme,
// then executes the load if allowed.
func (e *Engine) maybeDispatchLoad(idx int32, en *entry) {
	// Classification happens at schedule time: the first cycle the load's
	// operands are ready (paper §2.1 definition of a conflicting load).
	if !en.classified {
		e.classifyLoad(en)
	}
	if e.memUsed >= e.cfg.MemUnits {
		e.noteSchedHold(stallPort)
		return
	}
	if !e.orderingAllows(en) {
		e.noteSchedHold(stallOrdering)
		return
	}
	d := e.policy.AdmitBank(loadView(en))
	if d.Conflict {
		e.stats.BankConflicts++
	}
	if d.Mispredict {
		e.stats.BankMispredicts++
	}
	if d.Duplicate {
		e.stats.BankDuplicates++
	}
	if !d.Admit {
		e.noteSchedHold(stallBank)
		return
	}
	en.bankDelay = d.Delay
	e.memUsed++
	e.executeLoad(idx, en)
}

// orderingAllows applies the optional [Hess95] store-barrier constraint (a
// MOB property layered on every scheme) and then the policy's ordering
// decision.
func (e *Engine) orderingAllows(en *entry) bool {
	if e.cfg.Barrier != nil && e.barrierBlocked(en.olderStores) {
		return false
	}
	return e.policy.AllowOrdering(loadView(en), e.mobView())
}

// drainReplayDebt spends owed replay slots against this cycle's ports.
func (e *Engine) drainReplayDebt() {
	for e.replayMemDebt > 0 && e.memUsed < e.cfg.MemUnits {
		e.memUsed++
		e.replayMemDebt--
	}
	for e.replayIntDebt > 0 && e.intUsed < e.cfg.IntUnits {
		e.intUsed++
		e.replayIntDebt--
	}
}

func (e *Engine) sourcesReady(en *entry) bool {
	return e.producerReady(en.src1Prod, en.src1Seq) && e.producerReady(en.src2Prod, en.src2Seq)
}

func (e *Engine) producerReady(idx int32, seq int64) bool {
	if idx < 0 {
		return true
	}
	p := &e.rob[idx]
	if !p.valid || p.u.Seq != seq {
		return true // retired
	}
	return p.done && p.doneCycle <= e.now
}

// complete marks a fixed-latency uop dispatched with its completion time.
func (e *Engine) complete(en *entry, lat int) {
	en.dispatched = true
	en.inRS = false
	e.rsCount--
	en.done = true
	en.doneCycle = e.now + int64(lat)
}

func (e *Engine) dispatchSTA(en *entry) {
	e.complete(en, e.cfg.LatSTA)
	rec := e.mobGet(en.u.StoreID)
	rec.staExec = true
	rec.staExecCycle = en.doneCycle
	// The store allocates its line (write-allocate) once its address is
	// known; timing-wise the fill rides the store buffer, so no load-visible
	// latency is modelled here.
	e.hier.Access(en.u.Addr)
}

func (e *Engine) dispatchSTD(en *entry) {
	e.complete(en, e.cfg.LatSTD)
	rec := e.mobGet(en.u.StoreID)
	rec.stdExec = true
	rec.stdExecCyc = en.doneCycle
}
