package ooo

import (
	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
)

// BankPolicy selects how the engine models the multi-banked L1 and uses the
// bank predictor. The paper evaluates bank prediction statistically (§4.3);
// these policies are the end-to-end integration DESIGN.md lists as an
// extension, letting the conventional / predictor-scheduled / sliced
// organizations of Figure 4 be compared in one machine.
type BankPolicy int

const (
	// BankOff models an ideal (truly multi-ported) cache: no conflicts.
	BankOff BankPolicy = iota
	// BankConventional models a multi-banked cache without prediction:
	// same-cycle same-bank loads serialize, costing a stall cycle.
	BankConventional
	// BankPredictive uses the bank predictor for scheduling only: loads
	// predicted to hit a bank already claimed this cycle are held back;
	// conflicts still cost a stall when the prediction was wrong or absent.
	BankPredictive
	// BankSliced models the sliced pipeline: predicted loads go to a single
	// bank pipe (a wrong bank costs a flush and re-execution); unpredicted
	// loads are duplicated to all pipes and need every bank free.
	BankSliced
	// BankDualScheduled models the dual-scheduling designs of
	// [Simo95]/[Hunt95] (Figure 4): after address generation every load
	// enters a second-level scheduler that assigns banks conflict-free, at
	// the cost of a fixed extra latency on every load. It needs no
	// predictor — it is the complexity the sliced pipe avoids.
	BankDualScheduled
)

// String names the policy.
func (p BankPolicy) String() string {
	switch p {
	case BankOff:
		return "ideal"
	case BankConventional:
		return "conventional"
	case BankPredictive:
		return "predict-sched"
	case BankSliced:
		return "sliced"
	case BankDualScheduled:
		return "dual-scheduled"
	default:
		return "bank-policy(?)"
	}
}

// bankState is the bank-steering half of the default speculation policy:
// per-cycle bank claims plus the predictor that steers loads. Its decisions
// are pure — stat events and delays ride back in BankDecision for the
// engine to apply.
type bankState struct {
	policy  BankPolicy
	banking cache.Banking
	pred    bankpred.Predictor
	// dualLatency / mispredictPenalty are the organization costs from the
	// machine configuration.
	dualLatency       int64
	mispredictPenalty int64
	// uses counts accesses per bank in the current cycle.
	uses []int
}

func newBankState(cfg Config) *bankState {
	b := &bankState{
		policy: cfg.BankPolicy, banking: cfg.Banking, pred: cfg.BankPredictor,
		dualLatency:       int64(cfg.BankDualSchedLatency),
		mispredictPenalty: int64(cfg.BankMispredictPenalty),
	}
	if b.policy != BankOff {
		if b.banking.Banks == 0 {
			b.banking = cache.DefaultBanking()
		}
		b.uses = make([]int, b.banking.Banks)
	}
	return b
}

func (b *bankState) begin() {
	for i := range b.uses {
		b.uses[i] = 0
	}
}

// reset restores construction state: the steering predictor's tables and the
// per-cycle claims.
func (b *bankState) reset() {
	if b.pred != nil {
		b.pred.Reset()
	}
	b.begin()
}

// admit decides whether a ready load may dispatch this cycle under the bank
// policy; conflict/mispredict events and extra latency ride in the decision.
func (b *bankState) admit(ld *LoadView) BankDecision {
	if b.policy == BankOff {
		return BankDecision{Admit: true}
	}
	real := b.banking.BankOf(ld.Addr)
	switch b.policy {
	case BankDualScheduled:
		// The second-level scheduler eliminates conflicts but adds its own
		// pipeline stage(s) to every load.
		return BankDecision{Admit: true, Delay: b.dualLatency}

	case BankConventional:
		if b.uses[real] > 0 {
			// The bank is taken this cycle: the access stalls and retries —
			// a lost scheduling slot, the cost bank prediction removes.
			return BankDecision{Conflict: true}
		}
		b.uses[real]++
		return BankDecision{Admit: true}

	case BankPredictive:
		predBank, ok := -1, false
		if b.pred != nil {
			predBank, ok = b.pred.Predict(ld.IP)
		}
		if ok && b.uses[predBank] > 0 {
			// The scheduler believes this bank is taken: hold the load
			// without burning the slot (prediction-guided scheduling).
			return BankDecision{}
		}
		if b.uses[real] > 0 {
			// Unpredicted (or mispredicted) conflict: stall as conventional.
			return BankDecision{Conflict: true, Mispredict: ok && predBank != real}
		}
		b.uses[real]++
		return BankDecision{Admit: true}

	default: // BankSliced
		predBank, ok := -1, false
		if b.pred != nil {
			predBank, ok = b.pred.Predict(ld.IP)
		}
		if !ok {
			// Duplicate to all pipes: every bank must be free.
			for _, u := range b.uses {
				if u > 0 {
					return BankDecision{}
				}
			}
			for i := range b.uses {
				b.uses[i]++
			}
			return BankDecision{Admit: true, Duplicate: true}
		}
		if b.uses[predBank] > 0 {
			return BankDecision{} // the predicted pipe is busy this cycle
		}
		b.uses[predBank]++
		if predBank != real {
			// Wrong pipe: the load is flushed and re-executed.
			return BankDecision{Admit: true, Delay: b.mispredictPenalty, Mispredict: true}
		}
		return BankDecision{Admit: true}
	}
}

// train updates the bank predictor with a retired load's actual bank.
func (b *bankState) train(ip, addr uint64) {
	if b.policy == BankOff || b.pred == nil {
		return
	}
	if ab, ok := b.pred.(*bankpred.AddrBank); ok {
		ab.UpdateAddr(ip, addr)
		return
	}
	b.pred.Update(ip, b.banking.BankOf(addr))
}
