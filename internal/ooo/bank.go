package ooo

import (
	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
)

// BankPolicy selects how the engine models the multi-banked L1 and uses the
// bank predictor. The paper evaluates bank prediction statistically (§4.3);
// these policies are the end-to-end integration DESIGN.md lists as an
// extension, letting the conventional / predictor-scheduled / sliced
// organizations of Figure 4 be compared in one machine.
type BankPolicy int

const (
	// BankOff models an ideal (truly multi-ported) cache: no conflicts.
	BankOff BankPolicy = iota
	// BankConventional models a multi-banked cache without prediction:
	// same-cycle same-bank loads serialize, costing a stall cycle.
	BankConventional
	// BankPredictive uses the bank predictor for scheduling only: loads
	// predicted to hit a bank already claimed this cycle are held back;
	// conflicts still cost a stall when the prediction was wrong or absent.
	BankPredictive
	// BankSliced models the sliced pipeline: predicted loads go to a single
	// bank pipe (a wrong bank costs a flush and re-execution); unpredicted
	// loads are duplicated to all pipes and need every bank free.
	BankSliced
	// BankDualScheduled models the dual-scheduling designs of
	// [Simo95]/[Hunt95] (Figure 4): after address generation every load
	// enters a second-level scheduler that assigns banks conflict-free, at
	// the cost of a fixed extra latency on every load. It needs no
	// predictor — it is the complexity the sliced pipe avoids.
	BankDualScheduled
)

// String names the policy.
func (p BankPolicy) String() string {
	switch p {
	case BankOff:
		return "ideal"
	case BankConventional:
		return "conventional"
	case BankPredictive:
		return "predict-sched"
	case BankSliced:
		return "sliced"
	case BankDualScheduled:
		return "dual-scheduled"
	default:
		return "bank-policy(?)"
	}
}

// bankState is the engine's per-cycle banked-cache bookkeeping.
type bankState struct {
	policy  BankPolicy
	banking cache.Banking
	pred    bankpred.Predictor
	// uses counts accesses per bank in the current cycle.
	uses []int
}

func newBankState(cfg Config) *bankState {
	b := &bankState{policy: cfg.BankPolicy, banking: cfg.Banking, pred: cfg.BankPredictor}
	if b.policy != BankOff {
		if b.banking.Banks == 0 {
			b.banking = cache.DefaultBanking()
		}
		b.uses = make([]int, b.banking.Banks)
	}
	return b
}

func (b *bankState) begin() {
	for i := range b.uses {
		b.uses[i] = 0
	}
}

// admit decides whether a ready load may dispatch this cycle under the bank
// policy, and records any conflict/mispredict delay in en.bankDelay.
func (b *bankState) admit(e *Engine, en *entry) bool {
	en.bankDelay = 0
	if b.policy == BankOff {
		return true
	}
	real := b.banking.BankOf(en.u.Addr)
	switch b.policy {
	case BankDualScheduled:
		// The second-level scheduler eliminates conflicts but adds its own
		// pipeline stage(s) to every load.
		en.bankDelay = int64(e.cfg.BankDualSchedLatency)
		return true

	case BankConventional:
		if b.uses[real] > 0 {
			// The bank is taken this cycle: the access stalls and retries —
			// a lost scheduling slot, the cost bank prediction removes.
			e.stats.BankConflicts++
			return false
		}
		b.uses[real]++
		return true

	case BankPredictive:
		predBank, ok := -1, false
		if b.pred != nil {
			predBank, ok = b.pred.Predict(en.u.IP)
		}
		if ok && b.uses[predBank] > 0 {
			// The scheduler believes this bank is taken: hold the load
			// without burning the slot (prediction-guided scheduling).
			return false
		}
		if b.uses[real] > 0 {
			// Unpredicted (or mispredicted) conflict: stall as conventional.
			e.stats.BankConflicts++
			if ok && predBank != real {
				e.stats.BankMispredicts++
			}
			return false
		}
		b.uses[real]++
		return true

	default: // BankSliced
		predBank, ok := -1, false
		if b.pred != nil {
			predBank, ok = b.pred.Predict(en.u.IP)
		}
		if !ok {
			// Duplicate to all pipes: every bank must be free.
			for _, u := range b.uses {
				if u > 0 {
					return false
				}
			}
			for i := range b.uses {
				b.uses[i]++
			}
			e.stats.BankDuplicates++
			return true
		}
		if b.uses[predBank] > 0 {
			return false // the predicted pipe is busy this cycle
		}
		b.uses[predBank]++
		if predBank != real {
			// Wrong pipe: the load is flushed and re-executed.
			en.bankDelay = int64(e.cfg.BankMispredictPenalty)
			e.stats.BankMispredicts++
		}
		return true
	}
}

// train updates the bank predictor with a retired load's actual bank.
func (b *bankState) train(en *entry) {
	if b.policy == BankOff || b.pred == nil {
		return
	}
	if ab, ok := b.pred.(*bankpred.AddrBank); ok {
		ab.UpdateAddr(en.u.IP, en.u.Addr)
		return
	}
	b.pred.Update(en.u.IP, b.banking.BankOf(en.u.Addr))
}
