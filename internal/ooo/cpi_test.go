package ooo

import (
	"testing"

	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// TestCPIStackSumsToCycles is the partition property: on every trace group,
// under machine configurations exercising each attribution path (ordering
// holds, recovery bubbles, miss replays, bank steering), every simulated
// cycle lands in exactly one CPI-stack bucket — the causes sum to the total
// cycle count.
func TestCPIStackSumsToCycles(t *testing.T) {
	configs := map[string]func() Config{
		"traditional": func() Config {
			return DefaultConfig()
		},
		"inclusive-hmp": func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Inclusive
			cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			cfg.HMP = hitmiss.NewLocal()
			cfg.WarmupUops = 3000 // the partition must survive the stats reset
			return cfg
		},
		"opportunistic-banked": func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Opportunistic
			cfg.Banking = cache.Banking{Banks: 4, LineBytes: 64}
			cfg.BankPolicy = BankConventional
			return cfg
		},
	}
	for name, build := range configs {
		for _, g := range trace.Groups() {
			p := g.Traces[0]
			e := NewEngine(build(), trace.New(p))
			st := e.Run(15000)
			if got := st.CPI.Total(); got != st.Cycles {
				t.Errorf("%s %s/%s: CPI stack sums to %d, want Cycles = %d",
					name, g.Name, p.Name, got, st.Cycles)
			}
			if st.CPI.Base == 0 {
				t.Errorf("%s %s/%s: no base cycles attributed", name, g.Name, p.Name)
			}
		}
	}
}

// TestCPIStackAddPools checks group pooling: summing two runs' stacks keeps
// the partition property over the summed cycle counts.
func TestCPIStackAddPools(t *testing.T) {
	g, _ := trace.GroupByName(trace.GroupSysmarkNT)
	var pooled Stats
	for _, p := range g.Traces[:2] {
		e := NewEngine(DefaultConfig(), trace.New(p))
		pooled.Add(e.Run(8000))
	}
	if got := pooled.CPI.Total(); got != pooled.Cycles {
		t.Fatalf("pooled CPI stack sums to %d, want %d", got, pooled.Cycles)
	}
}
