package ooo

import (
	"math"
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// TestNewPolicyWrapsDefault checks the seam is transparent: installing a
// NewPolicy constructor that just returns the built-in policy must
// reproduce the default path's statistics exactly.
func TestNewPolicyWrapsDefault(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	// Each engine needs its own config: the CHT instance is stateful, so
	// sharing one across runs would leak training from the first run into
	// the second.
	mkCfg := func() Config {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Inclusive
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		return cfg
	}
	base := NewEngine(mkCfg(), trace.New(p)).Run(20000)

	wrapped := mkCfg()
	wrapped.NewPolicy = func(deps PolicyDeps) SpeculationPolicy {
		return DefaultPolicy(wrapped, deps)
	}
	got := NewEngine(wrapped, trace.New(p)).Run(20000)
	if got != base {
		t.Fatalf("wrapping DefaultPolicy changed the run:\nbase: %+v\ngot:  %+v", base, got)
	}
}

// extremeCHT is a stub collision predictor returning a fixed, possibly
// pathological distance for every load.
type extremeCHT struct{ dist int }

func (c extremeCHT) Lookup(uint64) memdep.Prediction {
	return memdep.Prediction{Colliding: true, Distance: c.dist}
}
func (extremeCHT) Record(uint64, bool, int) {}
func (extremeCHT) Reset()                   {}
func (extremeCHT) Name() string             { return "stub" }

// TestExclusiveExtremeDistances: regression for the maxID underflow in the
// Exclusive scheme's ordering decision. A hostile predicted distance
// (negative, or far larger than the in-flight store window) must neither
// wrap the store-id arithmetic nor hand StoresComplete an unbounded range
// to walk.
func TestExclusiveExtremeDistances(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	run := func(dist int) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Exclusive
		cfg.CHT = extremeCHT{dist}
		return NewEngine(cfg, trace.New(p)).Run(10_000)
	}
	// Colliding with no distance information: wait for every older store.
	conservative := run(memdep.NoDistance)
	// A negative distance carries no usable store identity and must degrade
	// to exactly the no-distance behavior.
	for _, d := range []int{-1, math.MinInt + 1, math.MinInt} {
		if got := run(d); got != conservative {
			t.Fatalf("distance %d diverged from the no-distance run:\nwant %+v\ngot  %+v",
				d, conservative, got)
		}
	}
	// A distance beyond every in-flight store waits for nothing, so every
	// load advances immediately — the Opportunistic schedule. The run must
	// terminate (pre-clamp, an overflowed maxID sent StoresComplete walking
	// an astronomically long id range) and reproduce that schedule.
	oppCfg := DefaultConfig()
	oppCfg.Scheme = memdep.Opportunistic
	opp := NewEngine(oppCfg, trace.New(p)).Run(10_000)
	for _, d := range []int{1 << 40, math.MaxInt} {
		got := run(d)
		if got.Uops != conservative.Uops {
			t.Fatalf("distance %d: simulated %d uops, want %d", d, got.Uops, conservative.Uops)
		}
		if got.Cycles != opp.Cycles || got.Collisions != opp.Collisions {
			t.Fatalf("distance %d (cycles=%d collisions=%d) != Opportunistic (cycles=%d collisions=%d)",
				d, got.Cycles, got.Collisions, opp.Cycles, opp.Collisions)
		}
	}
}

// allowAllPolicy overrides one decision of the default policy: every load
// may pass every store — the Opportunistic scheme expressed as a custom
// policy instead of a cycle-loop edit.
type allowAllPolicy struct{ SpeculationPolicy }

func (allowAllPolicy) AllowOrdering(*LoadView, MOBView) bool { return true }

// TestNewPolicyOverridesOrdering checks a custom policy actually steers the
// schedule stage: an always-allow ordering policy on a Traditional machine
// must match the built-in Opportunistic scheme.
func TestNewPolicyOverridesOrdering(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	oppCfg := DefaultConfig()
	oppCfg.Scheme = memdep.Opportunistic
	opp := NewEngine(oppCfg, trace.New(p)).Run(20000)

	cfg := DefaultConfig() // Traditional
	cfg.NewPolicy = func(deps PolicyDeps) SpeculationPolicy {
		return allowAllPolicy{DefaultPolicy(cfg, deps)}
	}
	got := NewEngine(cfg, trace.New(p)).Run(20000)
	if got.Cycles != opp.Cycles || got.Collisions != opp.Collisions {
		t.Fatalf("always-allow policy (cycles=%d collisions=%d) != Opportunistic (cycles=%d collisions=%d)",
			got.Cycles, got.Collisions, opp.Cycles, opp.Collisions)
	}
	if got.Collisions == 0 {
		t.Fatal("expected the advanced loads to collide sometimes")
	}
}
