package ooo

import (
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// TestNewPolicyWrapsDefault checks the seam is transparent: installing a
// NewPolicy constructor that just returns the built-in policy must
// reproduce the default path's statistics exactly.
func TestNewPolicyWrapsDefault(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	// Each engine needs its own config: the CHT instance is stateful, so
	// sharing one across runs would leak training from the first run into
	// the second.
	mkCfg := func() Config {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Inclusive
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		return cfg
	}
	base := NewEngine(mkCfg(), trace.New(p)).Run(20000)

	wrapped := mkCfg()
	wrapped.NewPolicy = func(deps PolicyDeps) SpeculationPolicy {
		return DefaultPolicy(wrapped, deps)
	}
	got := NewEngine(wrapped, trace.New(p)).Run(20000)
	if got != base {
		t.Fatalf("wrapping DefaultPolicy changed the run:\nbase: %+v\ngot:  %+v", base, got)
	}
}

// allowAllPolicy overrides one decision of the default policy: every load
// may pass every store — the Opportunistic scheme expressed as a custom
// policy instead of a cycle-loop edit.
type allowAllPolicy struct{ SpeculationPolicy }

func (allowAllPolicy) AllowOrdering(LoadView, MOBView) bool { return true }

// TestNewPolicyOverridesOrdering checks a custom policy actually steers the
// schedule stage: an always-allow ordering policy on a Traditional machine
// must match the built-in Opportunistic scheme.
func TestNewPolicyOverridesOrdering(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	oppCfg := DefaultConfig()
	oppCfg.Scheme = memdep.Opportunistic
	opp := NewEngine(oppCfg, trace.New(p)).Run(20000)

	cfg := DefaultConfig() // Traditional
	cfg.NewPolicy = func(deps PolicyDeps) SpeculationPolicy {
		return allowAllPolicy{DefaultPolicy(cfg, deps)}
	}
	got := NewEngine(cfg, trace.New(p)).Run(20000)
	if got.Cycles != opp.Cycles || got.Collisions != opp.Collisions {
		t.Fatalf("always-allow policy (cycles=%d collisions=%d) != Opportunistic (cycles=%d collisions=%d)",
			got.Cycles, got.Collisions, opp.Cycles, opp.Collisions)
	}
	if got.Collisions == 0 {
		t.Fatal("expected the advanced loads to collide sometimes")
	}
}
