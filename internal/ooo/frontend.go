package ooo

import "loadsched/internal/uop"

// Front-end stage: fetch + rename. Pulls up to FetchWidth uops per cycle
// from the source, allocates ROB/scheduling-window slots (clearing the
// slot's parallel-array fields in place — no struct copy, no allocation),
// resolves register producers, opens MOB records for store halves, and
// consults the speculation policy for each load's collision prediction. A
// mispredicted branch stalls fetch until the branch resolves plus the
// refill bubble.

func (e *Engine) fetchRename() {
	if e.awaitingBranch || e.now < e.resumeAt {
		return
	}
	for i := 0; i < e.cfg.FetchWidth; i++ {
		if e.count >= e.rob.size() || e.rsCount >= e.cfg.Window {
			e.stats.RenameStalls++
			e.cycleRenameStalled = true
			return
		}
		u := e.nextUop()
		e.rename(u)
		if u.Kind == uop.Branch && u.Mispredicted {
			// Fetch goes down the wrong path; stall until this branch
			// resolves plus the refill bubble.
			e.stats.BranchMispredicts++
			e.awaitingBranch = true
			return
		}
	}
}

func (e *Engine) rename(u uop.UOp) {
	idx := e.robIdx(e.count)
	e.count++
	r := &e.rob
	r.clearSlot(idx, u)
	e.rsCount++

	r.src1Prod[idx], r.src1Seq[idx] = e.lookupProducer(u.Src1)
	r.src2Prod[idx], r.src2Seq[idx] = e.lookupProducer(u.Src2)
	if u.Dst != uop.NoReg {
		e.regProd[u.Dst] = int32(idx)
		e.regSeq[u.Dst] = u.Seq
	}
	if u.Kind == uop.Branch && u.Mispredicted {
		r.flags[idx] |= fBlockingBranch
	}

	switch u.Kind {
	case uop.STA:
		pos := e.mobEnsure(u.StoreID)
		e.mob.ip[pos] = u.IP
		e.mob.addr[pos] = u.Addr
		e.mob.size[pos] = int32(u.Size)
		e.mob.flags[pos] |= mStaSeen
		if e.cfg.Barrier != nil && e.cfg.Barrier.ShouldBarrier(u.IP) {
			e.mob.flags[pos] |= mBarrier
		}
	case uop.STD:
		pos := e.mobEnsure(u.StoreID)
		e.mob.flags[pos] |= mStdSeen
	case uop.Load:
		r.olderStores[idx] = e.lastStoreID()
		r.pred[idx] = e.policy.PredictCollision(u.IP)
	}

	e.linkDeps(int32(idx))
}

// lookupProducer resolves a source register to its in-flight producer.
func (e *Engine) lookupProducer(r uop.Reg) (int32, int64) {
	if r == uop.NoReg {
		return -1, 0
	}
	idx := e.regProd[r]
	if idx < 0 {
		return -1, 0
	}
	u := &e.rob.u[idx]
	if e.rob.flags[idx]&fValid == 0 || u.Seq != e.regSeq[r] || u.Dst != r {
		return -1, 0 // producer already retired
	}
	return idx, u.Seq
}
