package ooo

import "loadsched/internal/uop"

// Front-end stage: fetch + rename. Pulls up to FetchWidth uops per cycle
// from the source, allocates ROB/scheduling-window entries, resolves
// register producers, opens MOB records for store halves, and consults the
// speculation policy for each load's collision prediction. A mispredicted
// branch stalls fetch until the branch resolves plus the refill bubble.

func (e *Engine) fetchRename() {
	if e.awaitingBranch || e.now < e.resumeAt {
		return
	}
	for i := 0; i < e.cfg.FetchWidth; i++ {
		if e.count >= len(e.rob) || e.rsCount >= e.cfg.Window {
			e.stats.RenameStalls++
			e.cycleRenameStalled = true
			return
		}
		u := e.src.Next()
		e.rename(u)
		if u.Kind == uop.Branch && u.Mispredicted {
			// Fetch goes down the wrong path; stall until this branch
			// resolves plus the refill bubble.
			e.stats.BranchMispredicts++
			e.awaitingBranch = true
			return
		}
	}
}

func (e *Engine) rename(u uop.UOp) {
	idx := e.robIdx(e.count)
	e.count++
	en := &e.rob[idx]
	// Reuse the slot's wakeup-list backing array (always drained by now:
	// dependents are woken before an entry can retire).
	waiters := en.waiters[:0]
	*en = entry{u: u, valid: true, inRS: true, src1Prod: -1, src2Prod: -1, waiters: waiters}
	e.rsCount++

	en.src1Prod, en.src1Seq = e.lookupProducer(u.Src1)
	en.src2Prod, en.src2Seq = e.lookupProducer(u.Src2)
	if u.Dst != uop.NoReg {
		e.regProd[u.Dst] = int32(idx)
		e.regSeq[u.Dst] = u.Seq
	}
	if u.Kind == uop.Branch && u.Mispredicted {
		en.blockingBranch = true
	}

	switch u.Kind {
	case uop.STA:
		rec := e.mobEnsure(u.StoreID)
		rec.ip = u.IP
		rec.addr = u.Addr
		rec.size = int(u.Size)
		rec.staSeen = true
		if e.cfg.Barrier != nil && e.cfg.Barrier.ShouldBarrier(u.IP) {
			rec.barrier = true
		}
	case uop.STD:
		rec := e.mobEnsure(u.StoreID)
		rec.stdSeen = true
	case uop.Load:
		en.olderStores = e.lastStoreID()
		en.pred = e.policy.PredictCollision(u.IP)
	}

	e.linkDeps(int32(idx), en)
}

// lookupProducer resolves a source register to its in-flight producer.
func (e *Engine) lookupProducer(r uop.Reg) (int32, int64) {
	if r == uop.NoReg {
		return -1, 0
	}
	idx := e.regProd[r]
	if idx < 0 {
		return -1, 0
	}
	en := &e.rob[idx]
	if !en.valid || en.u.Seq != e.regSeq[r] || en.u.Dst != r {
		return -1, 0 // producer already retired
	}
	return idx, en.u.Seq
}
