package ooo

import (
	"loadsched/internal/memdep"
	"loadsched/internal/uop"
)

// Front-end stage: fetch + rename. Pulls up to FetchWidth uops per cycle
// from the source, allocates ROB/scheduling-window slots (clearing the
// slot's parallel-array fields in place — no struct copy, no allocation),
// resolves register producers, opens MOB records for store halves, and
// consults the speculation policy for each load's collision prediction. A
// mispredicted branch stalls fetch until the branch resolves plus the
// refill bubble.
//
// Producer resolution has two implementations that yield bit-identical
// machines:
//
//   - Side-car rename (renameDep), used when the source publishes the
//     static dependence side-car (DepBatchSource). The trace layer has
//     already answered "who produces this register?" as a backward
//     stream-position delta, so rename reduces to a watermark compare:
//     a producer delta db is in flight exactly when db <= count, and its
//     slot is then robIdx(count-db) — rename and retire are both in order,
//     so the last count stream positions occupy the ROB densely. No alias
//     tables are maintained at all.
//   - Legacy alias-table rename (rename/lookupProducer), the original
//     per-engine derivation. Retained as the differential oracle behind
//     Config.LegacyAliasRename and used whenever the source has no
//     side-car (plain generators) or the rename pool is too large for the
//     delta saturation bound.
//
// The mode is fixed per source: alias tables are not maintained while the
// side-car path runs, so the two cannot be mixed within a run.

func (e *Engine) fetchRename() {
	if e.awaitingBranch || e.now < e.resumeAt {
		return
	}
	if e.depSrc != nil {
		e.fetchRenameDep()
		return
	}
	for i := 0; i < e.cfg.FetchWidth; i++ {
		if e.count >= e.rob.size() || e.rsCount >= e.cfg.Window {
			e.stats.RenameStalls++
			e.cycleRenameStalled = true
			return
		}
		u := e.nextUop()
		e.rename(u)
		if u.Kind == uop.Branch && u.Mispredicted {
			// Fetch goes down the wrong path; stall until this branch
			// resolves plus the refill bubble.
			e.stats.BranchMispredicts++
			e.awaitingBranch = true
			return
		}
	}
}

// fetchRenameDep is fetchRename's side-car path: the fetch views refill
// through NextBatchRef so every uop arrives with its dependence links
// straight out of the source's decoded chunk — no copy into a fetch buffer
// at all — and uops are renamed in place by pointer.
func (e *Engine) fetchRenameDep() {
	for i := 0; i < e.cfg.FetchWidth; i++ {
		if e.count >= e.rob.size() || e.rsCount >= e.cfg.Window {
			e.stats.RenameStalls++
			e.cycleRenameStalled = true
			return
		}
		if e.fetchPos == e.fetchLen {
			us, ds, base := e.depSrc.NextBatchRef()
			if len(us) == 0 {
				// Sources are endless by contract; running dry would desync
				// the side-car from the rename count.
				panic("ooo: dep batch source ran dry")
			}
			e.fetchRefU, e.fetchRefD = us, ds
			e.fetchLen, e.fetchPos, e.fetchStoreBase = len(us), 0, base
		}
		j := e.fetchPos
		e.fetchPos++
		u := &e.fetchRefU[j]
		e.renameDep(u, &e.fetchRefD[j])
		if u.Kind == uop.Branch && u.Mispredicted {
			e.stats.BranchMispredicts++
			e.awaitingBranch = true
			return
		}
	}
}

// renameDep allocates and links one uop using its side-car entry. cnt is
// the in-flight population before this uop: in-flight entries occupy window
// positions 0..cnt-1 (head-relative), so a producer db positions back in
// the stream is in flight iff db <= cnt, at slot robIdx(cnt-db) — stream
// distance equals window distance because rename and retire are both in
// order. A saturated delta compares as retired, which is exact under the
// RenamePool bound setSource enforces.
func (e *Engine) renameDep(u *uop.UOp, d *uop.Dep) {
	idx := e.robIdx(e.count)
	cnt := e.count
	e.count++
	r := &e.rob
	r.clearSlot(idx, *u)
	e.rsCount++

	if db := int(d.Src1Back); db != 0 && db <= cnt {
		p := int32(e.robIdx(cnt - db))
		r.src1Prod[idx], r.src1Seq[idx] = p, r.seq[p]
	} else {
		r.src1Prod[idx], r.src1Seq[idx] = -1, 0
	}
	if db := int(d.Src2Back); db != 0 && db <= cnt {
		p := int32(e.robIdx(cnt - db))
		r.src2Prod[idx], r.src2Seq[idx] = p, r.seq[p]
	} else {
		r.src2Prod[idx], r.src2Seq[idx] = -1, 0
	}
	if u.Kind == uop.Branch && u.Mispredicted {
		r.flags[idx] |= fBlockingBranch
	}

	switch u.Kind {
	case uop.STA:
		pos := e.mobEnsure(u.StoreID)
		e.mob.ip[pos] = u.IP
		e.mob.addr[pos] = u.Addr
		e.mob.size[pos] = int32(u.Size)
		e.mob.flags[pos] |= mStaSeen
		// An STA arriving after younger stores were already scanned past
		// (its record was gap-filled by mobEnsure) may make a previously
		// ignorable id blocking: drag the completed-store watermarks back
		// below it so the ordering queries re-examine it.
		if u.StoreID < e.staDoneTo {
			e.staDoneTo = u.StoreID
		}
		if u.StoreID < e.allDoneTo {
			e.allDoneTo = u.StoreID
		}
		if e.cfg.Barrier != nil && e.cfg.Barrier.ShouldBarrier(u.IP) {
			e.mob.flags[pos] |= mBarrier
		}
	case uop.STD:
		pos := e.mobEnsure(u.StoreID)
		e.mob.flags[pos] |= mStdSeen
	case uop.Load:
		if e.fetchStoreBase >= 0 {
			r.olderStores[idx] = e.fetchStoreBase + int64(d.LastStore)
		} else {
			r.olderStores[idx] = e.lastStoreID()
		}
		r.ipHash[idx] = d.IPHash
		r.pred[idx] = e.predictCollision(u.IP)
	}

	e.linkDeps(int32(idx))
}

func (e *Engine) rename(u uop.UOp) {
	idx := e.robIdx(e.count)
	e.count++
	r := &e.rob
	r.clearSlot(idx, u)
	e.rsCount++

	r.src1Prod[idx], r.src1Seq[idx] = e.lookupProducer(u.Src1)
	r.src2Prod[idx], r.src2Seq[idx] = e.lookupProducer(u.Src2)
	if u.Dst != uop.NoReg {
		e.regProd[u.Dst] = int32(idx)
		e.regSeq[u.Dst] = u.Seq
	}
	if u.Kind == uop.Branch && u.Mispredicted {
		r.flags[idx] |= fBlockingBranch
	}

	switch u.Kind {
	case uop.STA:
		pos := e.mobEnsure(u.StoreID)
		e.mob.ip[pos] = u.IP
		e.mob.addr[pos] = u.Addr
		e.mob.size[pos] = int32(u.Size)
		e.mob.flags[pos] |= mStaSeen
		// An STA arriving after younger stores were already scanned past
		// (its record was gap-filled by mobEnsure) may make a previously
		// ignorable id blocking: drag the completed-store watermarks back
		// below it so the ordering queries re-examine it.
		if u.StoreID < e.staDoneTo {
			e.staDoneTo = u.StoreID
		}
		if u.StoreID < e.allDoneTo {
			e.allDoneTo = u.StoreID
		}
		if e.cfg.Barrier != nil && e.cfg.Barrier.ShouldBarrier(u.IP) {
			e.mob.flags[pos] |= mBarrier
		}
	case uop.STD:
		pos := e.mobEnsure(u.StoreID)
		e.mob.flags[pos] |= mStdSeen
	case uop.Load:
		r.olderStores[idx] = e.lastStoreID()
		r.ipHash[idx] = uop.HashIP(u.IP)
		r.pred[idx] = e.predictCollision(u.IP)
	}

	e.linkDeps(int32(idx))
}

// lookupProducer resolves a source register to its in-flight producer.
func (e *Engine) lookupProducer(r uop.Reg) (int32, int64) {
	if r == uop.NoReg {
		return -1, 0
	}
	idx := e.regProd[r]
	if idx < 0 {
		return -1, 0
	}
	u := &e.rob.u[idx]
	if e.rob.flags[idx]&fValid == 0 || u.Seq != e.regSeq[r] || u.Dst != r {
		return -1, 0 // producer already retired
	}
	return idx, u.Seq
}

// predictCollision routes the per-load rename prediction through the
// devirtualized fast path when the built-in policy is active.
func (e *Engine) predictCollision(ip uint64) memdep.Prediction {
	if p := e.defPol; p != nil {
		return p.PredictCollision(ip)
	}
	return e.policy.PredictCollision(ip)
}
