package ooo

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// Edge-case coverage for the event-driven scheduling core (ready.go): the
// wake heap under duplicate wake times, idle fast-forward over spans bounded
// by several coincident events, and engine reuse (Reset) with schemes that
// hold ready loads in the window.

// TestWakeHeapDuplicateWakeTimes pushes a shuffled stream with heavy time
// duplication and checks the heap drains in non-decreasing time order with
// no event lost or invented. Pop order among equal times is documented as
// arbitrary; insertReady is what re-establishes age order afterwards.
func TestWakeHeapDuplicateWakeTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var events []wakeEvent
	for i := int32(0); i < 200; i++ {
		events = append(events, wakeEvent{at: int64(rng.Intn(8)), idx: i})
	}
	var h wakeHeap
	for _, ev := range events {
		h.push(ev)
	}

	var drained []wakeEvent
	for len(h) > 0 {
		drained = append(drained, h.pop())
	}
	if len(drained) != len(events) {
		t.Fatalf("drained %d events, pushed %d", len(drained), len(events))
	}
	for i := 1; i < len(drained); i++ {
		if drained[i].at < drained[i-1].at {
			t.Fatalf("pop order not time-sorted: %d after %d at position %d",
				drained[i].at, drained[i-1].at, i)
		}
	}
	// Same multiset: every pushed (at, idx) pair comes back exactly once.
	key := func(ev wakeEvent) string { return fmt.Sprintf("%d/%d", ev.at, ev.idx) }
	want := make([]string, len(events))
	got := make([]string, len(drained))
	for i := range events {
		want[i], got[i] = key(events[i]), key(drained[i])
	}
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event multiset changed: got %s, want %s", got[i], want[i])
		}
	}
}

// TestInsertReadyRestoresAgeOrder drains duplicate-time wake events through
// insertReady on a constructed engine and checks the ready list comes out in
// age (rename) order — the invariant the dispatch walk depends on.
func TestInsertReadyRestoresAgeOrder(t *testing.T) {
	cfg := DefaultConfig()
	e := NewEngine(cfg, trace.New(trace.Profile{Name: "unused", Seed: 1}))
	// Give a handful of rob entries distinct ages, then wake them all for the
	// same cycle in a scrambled push order.
	idxs := []int32{3, 0, 7, 5, 1}
	for i, idx := range idxs {
		e.rob.age[idx] = int64(10 + i) // age follows idxs order
	}
	e.now = 0
	for _, idx := range []int32{7, 3, 1, 0, 5} { // scrambled
		e.wakeQ.push(wakeEvent{at: 1, idx: idx})
	}
	e.now = 1
	e.drainWakeQ()
	if len(e.readyList) != len(idxs) {
		t.Fatalf("readyList has %d entries, want %d", len(e.readyList), len(idxs))
	}
	for i := 1; i < len(e.readyList); i++ {
		if e.rob.age[e.readyList[i]] <= e.rob.age[e.readyList[i-1]] {
			t.Fatalf("readyList not age-ordered: ages %d then %d",
				e.rob.age[e.readyList[i-1]], e.rob.age[e.readyList[i]])
		}
	}
}

// coincidentProfile is tuned so many loads issue together and complete
// together (shared latencies), making idle spans end on several coincident
// events — completion, wakeup and miss detection landing on the same cycle.
var coincidentProfile = trace.Profile{
	Name:             "coincident",
	Seed:             0xc01dc1de,
	SlowStoreFrac:    0.4,
	SlowAddrFrac:     0.5,
	LoadFrac:         0.35,
	StoreFrac:        0.12,
	ChaseFrac:        0.5, // heavy pointer chasing: long miss waits to skip
	ChaseWorkingSet:  64 << 10,
	StreamWorkingSet: 32 << 10,
	BranchTakenBias:  0.6,
}

// TestFastForwardCoincidentEventsDiff pins idle fast-forward against the
// naive per-cycle walk on machines that generate long idle spans bounded by
// coincident events: a narrow machine with default (always-hit) prediction
// mispredicts every miss, so deferred miss detections, recovery-bubble
// expiries and data wakeups all land on shared cycles.
func TestFastForwardCoincidentEventsDiff(t *testing.T) {
	builds := map[string]func() Config{
		"narrow-mispredicting": func() Config {
			cfg := DefaultConfig()
			cfg.FetchWidth, cfg.RetireWidth = 1, 1
			cfg.Window, cfg.RenamePool = 8, 8
			cfg.IntUnits, cfg.MemUnits, cfg.STDPorts = 1, 1, 1
			cfg.MissRecoveryBubble = 6
			cfg.MissReplayPenalty = 8
			return cfg
		},
		"traditional-held-loads": func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Traditional
			cfg.FetchWidth = 2
			cfg.Window, cfg.RenamePool = 16, 24
			return cfg
		},
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			const warmup, uops = 500, 3000
			run := func(naive bool) Stats {
				cfg := build()
				cfg.WarmupUops = warmup
				cfg.NaiveSchedule = naive
				return NewEngine(cfg, trace.New(coincidentProfile)).Run(uops)
			}
			event, naive := run(false), run(true)
			if event != naive {
				t.Errorf("fast-forward diverged from naive walk\nevent: %+v\nnaive: %+v", event, naive)
			}
			if event.CPI.Total() != event.Cycles {
				t.Errorf("CPI stack sums to %d, want Cycles=%d", event.CPI.Total(), event.Cycles)
			}
		})
	}
}

// TestEngineResetReuseDiff is the reuse property behind the runner's engine
// pool: running a job on a Reset engine that already simulated a different
// workload must produce bit-identical Stats to a freshly built engine. The
// configurations deliberately hold ready loads in the window (Traditional
// ordering, bank-predictive steering), so the test covers held loads
// re-entering the ready set on the reused engine.
func TestEngineResetReuseDiff(t *testing.T) {
	builds := map[string]func() Config{
		"traditional": func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Traditional
			return cfg
		},
		"cht-inclusive": func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Inclusive
			cfg.CHT = memdep.NewFullCHT(256, 2, 2, true)
			return cfg
		},
		"bank-predictive": func() Config {
			cfg := DefaultConfig()
			cfg.Banking = cache.DefaultBanking()
			cfg.BankPolicy = BankPredictive
			cfg.BankPredictor = bankpred.NewPredictorC()
			return cfg
		},
	}
	warmupOther := trace.Profile{
		Name: "warm-other", Seed: 7, SlowStoreFrac: 0.5, SlowAddrFrac: 0.3,
		LoadFrac: 0.3, StoreFrac: 0.1, ChaseFrac: 0.2,
		ChaseWorkingSet: 32 << 10, StreamWorkingSet: 32 << 10, BranchTakenBias: 0.5,
	}
	for name, build := range builds {
		t.Run(name, func(t *testing.T) {
			const warmup, uops = 500, 3000
			mk := func() Config {
				cfg := build()
				cfg.WarmupUops = warmup
				return cfg
			}
			fresh := NewEngine(mk(), trace.New(coincidentProfile)).Run(uops)

			// Dirty an engine on a different workload, then Reset and rerun.
			e := NewEngine(mk(), trace.New(warmupOther))
			e.Run(uops)
			if !e.Reset(trace.New(coincidentProfile)) {
				t.Fatal("Reset refused for the built-in policy")
			}
			reused := e.Run(uops)
			if reused != fresh {
				t.Errorf("reused engine diverged from fresh engine\nfresh:  %+v\nreused: %+v", fresh, reused)
			}

			// A second reset must be just as clean as the first.
			if !e.Reset(trace.New(coincidentProfile)) {
				t.Fatal("second Reset refused")
			}
			if again := e.Run(uops); again != fresh {
				t.Errorf("second reuse diverged from fresh engine\nfresh: %+v\nagain: %+v", fresh, again)
			}
		})
	}
}
