package ooo

import (
	"testing"

	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// sliceSource replays a fixed uop sequence, then pads with independent ALU
// uops so the engine can keep retiring.
type sliceSource struct {
	uops []uop.UOp
	pos  int
	seq  int64
}

func newSliceSource(uops []uop.UOp) *sliceSource {
	s := &sliceSource{uops: uops}
	for i := range s.uops {
		s.uops[i].Seq = int64(i)
	}
	s.seq = int64(len(uops))
	return s
}

func (s *sliceSource) Next() uop.UOp {
	if s.pos < len(s.uops) {
		u := s.uops[s.pos]
		s.pos++
		return u
	}
	u := uop.UOp{Seq: s.seq, IP: 0x700000 + uint64(s.seq%8)*4, Kind: uop.IntALU, Dst: 1}
	s.seq++
	return u
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Opportunistic
	return cfg
}

// mkStore returns the STA/STD pair of a store.
func mkStore(ip, addr uint64, id int64, dataSrc uop.Reg) []uop.UOp {
	return []uop.UOp{
		{IP: ip, Kind: uop.STA, Addr: addr, Size: 8, StoreID: id},
		{IP: ip + 4, Kind: uop.STD, StoreID: id, Src1: dataSrc},
	}
}

func TestEngineRunsSimpleALU(t *testing.T) {
	e := NewEngine(testConfig(), newSliceSource(nil))
	st := e.Run(1000)
	if st.Uops != 1000 {
		t.Fatalf("retired %d uops, want 1000", st.Uops)
	}
	if st.IPC() <= 0.5 || st.IPC() > 6 {
		t.Fatalf("independent ALU IPC = %.2f, expected high throughput", st.IPC())
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	// A chain of dependent ALU ops must run at IPC ≈ 1 regardless of width.
	var us []uop.UOp
	for i := 0; i < 500; i++ {
		us = append(us, uop.UOp{IP: 0x400000 + uint64(i%4)*4, Kind: uop.IntALU, Dst: 5, Src1: 5})
	}
	e := NewEngine(testConfig(), newSliceSource(us))
	st := e.Run(500)
	if st.IPC() > 1.15 {
		t.Fatalf("dependent chain IPC = %.2f, must be ≈1", st.IPC())
	}
}

func TestLoadHitLatency(t *testing.T) {
	// One load; a dependent chain follows. The dependent chain can only start
	// after the L1 latency, so cycles >= lat.L1 + chain length.
	var us []uop.UOp
	us = append(us, uop.UOp{IP: 0x400000, Kind: uop.Load, Dst: 9, Addr: 0x1000, Size: 8})
	for i := 0; i < 50; i++ {
		us = append(us, uop.UOp{IP: 0x400100 + uint64(i)*4, Kind: uop.IntALU, Dst: 9, Src1: 9})
	}
	cfg := testConfig()
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(51)
	min := int64(cfg.Lat.L1 + 50)
	if st.Cycles < min {
		t.Fatalf("cycles = %d, want >= %d (L1 latency + chain)", st.Cycles, min)
	}
}

func TestRetirementInOrder(t *testing.T) {
	// A slow Complex op fetched first must not retire after 500 uops have
	// been counted unless it truly finished — indirectly checked by the fact
	// total cycles must exceed its latency even though later uops are ready.
	var us []uop.UOp
	us = append(us, uop.UOp{IP: 0x400000, Kind: uop.Complex, Dst: 3})
	for i := 0; i < 20; i++ {
		us = append(us, uop.UOp{IP: 0x400100 + uint64(i)*4, Kind: uop.IntALU, Dst: 4})
	}
	cfg := testConfig()
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(21)
	if st.Cycles < int64(cfg.LatComplex) {
		t.Fatalf("cycles = %d < complex latency %d: retired out of order?", st.Cycles, cfg.LatComplex)
	}
}

// collisionTrace builds: slow producer → store address AND data; load to
// the same address ready immediately, with dependents. At the load's
// schedule time the STA is unresolved (ambiguity), so under Opportunistic
// the load advances and collides.
func collisionTrace(n int) []uop.UOp {
	var us []uop.UOp
	addr := uint64(0x2000)
	var id int64
	for i := 0; i < n; i++ {
		// Slow producer feeding the store's address and data registers.
		us = append(us, uop.UOp{IP: 0x400000, Kind: uop.Complex, Dst: 7})
		us = append(us, uop.UOp{IP: 0x400010, Kind: uop.Complex, Dst: 7, Src1: 7})
		id++
		us = append(us, []uop.UOp{
			{IP: 0x400020, Kind: uop.STA, Addr: addr, Size: 8, StoreID: id, Src1: 7},
			{IP: 0x400024, Kind: uop.STD, StoreID: id, Src1: 7},
		}...)
		// The colliding load: address ready at once (no sources).
		us = append(us, uop.UOp{IP: 0x400040, Kind: uop.Load, Dst: 8, Addr: addr, Size: 8})
		// Dependents of the load, so collision latency matters.
		for j := 0; j < 4; j++ {
			us = append(us, uop.UOp{IP: 0x400050 + uint64(j)*4, Kind: uop.IntALU, Dst: 8, Src1: 8})
		}
	}
	return us
}

// stdLateTrace builds stores whose STA resolves immediately but whose STD is
// slow: the Traditional scheme dispatches such loads (all STAs done) and
// still pays the collision on the late STD.
func stdLateTrace(n int) []uop.UOp {
	var us []uop.UOp
	addr := uint64(0x2000)
	var id int64
	for i := 0; i < n; i++ {
		us = append(us, uop.UOp{IP: 0x400000, Kind: uop.Complex, Dst: 7})
		us = append(us, uop.UOp{IP: 0x400010, Kind: uop.Complex, Dst: 7, Src1: 7})
		id++
		us = append(us, mkStore(0x400020, addr, id, 7)...)
		us = append(us, uop.UOp{IP: 0x400040, Kind: uop.Load, Dst: 8, Addr: addr, Size: 8})
		for j := 0; j < 4; j++ {
			us = append(us, uop.UOp{IP: 0x400050 + uint64(j)*4, Kind: uop.IntALU, Dst: 8, Src1: 8})
		}
	}
	return us
}

func TestOpportunisticCollides(t *testing.T) {
	us := collisionTrace(50)
	cfg := testConfig()
	cfg.Scheme = memdep.Opportunistic
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(len(us))
	if st.Collisions < 40 {
		t.Fatalf("collisions = %d, want ≈50 (every load collides)", st.Collisions)
	}
	if st.Class.AC() < 40 {
		t.Fatalf("AC loads = %d, want ≈50", st.Class.AC())
	}
}

func TestPerfectNeverCollides(t *testing.T) {
	us := collisionTrace(50)
	cfg := testConfig()
	cfg.Scheme = memdep.Perfect
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(len(us))
	if st.Collisions != 0 {
		t.Fatalf("perfect disambiguation collided %d times", st.Collisions)
	}
}

func TestTraditionalAvoidsSTAButPaysSTD(t *testing.T) {
	// With the STA's address ready early but the STD late, Traditional
	// dispatches after the STA and still pays the collision on the STD.
	us := stdLateTrace(50)
	cfg := testConfig()
	cfg.Scheme = memdep.Traditional
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(len(us))
	if st.Collisions < 40 {
		t.Fatalf("traditional should still collide on late STDs, got %d", st.Collisions)
	}
}

func TestInclusiveCHTLearnsToWait(t *testing.T) {
	us := collisionTrace(200)
	cfg := testConfig()
	cfg.Scheme = memdep.Inclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, false)
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(len(us))
	// After warmup the CHT predicts the load colliding, so nearly all later
	// instances wait: collisions far below the 200 of Opportunistic.
	if st.Collisions > 20 {
		t.Fatalf("inclusive+CHT still collided %d times (should learn)", st.Collisions)
	}
	if st.Class.ACPC < 150 {
		t.Fatalf("AC-PC = %d, want most of ~200 predicted", st.Class.ACPC)
	}
}

func TestInclusiveFasterThanTraditionalOnCollisions(t *testing.T) {
	// End-to-end: the predictor-based scheme must beat Opportunistic on a
	// collision-heavy trace (it avoids the 8-cycle penalties).
	mk := func(scheme memdep.Scheme, cht memdep.Predictor) Stats {
		cfg := testConfig()
		cfg.Scheme = scheme
		cfg.CHT = cht
		e := NewEngine(cfg, newSliceSource(collisionTrace(300)))
		return e.Run(2000)
	}
	opp := mk(memdep.Opportunistic, nil)
	inc := mk(memdep.Inclusive, memdep.NewFullCHT(2048, 4, 2, false))
	if inc.IPC() <= opp.IPC() {
		t.Fatalf("inclusive IPC %.3f should beat opportunistic %.3f on colliding trace",
			inc.IPC(), opp.IPC())
	}
}

func TestCollisionPenaltyDelaysData(t *testing.T) {
	// Measure that a collided load's dependent sees the penalty: compare
	// cycle counts with penalty 0 vs 8.
	run := func(pen int) int64 {
		cfg := testConfig()
		cfg.Scheme = memdep.Opportunistic
		cfg.CollisionPenalty = pen
		us := collisionTrace(100)
		e := NewEngine(cfg, newSliceSource(us))
		st := e.Run(len(us))
		return st.Cycles
	}
	if c30, c0 := run(30), run(0); c30 <= c0 {
		t.Fatalf("penalty 30 cycles (%d) should cost more than penalty 0 (%d)", c30, c0)
	}
}

func TestMispredictedBranchStallsFetch(t *testing.T) {
	run := func(mispredict bool) int64 {
		var us []uop.UOp
		for i := 0; i < 200; i++ {
			us = append(us, uop.UOp{IP: 0x400000 + uint64(i%16)*4, Kind: uop.IntALU, Dst: 1})
			us = append(us, uop.UOp{IP: 0x401000 + uint64(i%16)*4, Kind: uop.Branch, Taken: true, Mispredicted: mispredict})
		}
		e := NewEngine(testConfig(), newSliceSource(us))
		return e.Run(len(us)).Cycles
	}
	if bad, good := run(true), run(false); bad <= good {
		t.Fatalf("mispredicted branches (%d cycles) must cost more than predicted (%d)", bad, good)
	}
}

func TestWindowSizeLimitsILP(t *testing.T) {
	run := func(window int) float64 {
		cfg := testConfig()
		cfg.Window = window
		p := trace.Profile{Name: "w", Seed: 42}
		e := NewEngine(cfg, trace.New(p))
		return e.Run(30000).IPC()
	}
	small, big := run(8), run(128)
	if big <= small {
		t.Fatalf("IPC(window=128)=%.3f should exceed IPC(window=8)=%.3f", big, small)
	}
}

func TestClassificationPartitionsLoads(t *testing.T) {
	p := trace.Profile{Name: "c", Seed: 7}
	cfg := testConfig()
	e := NewEngine(cfg, trace.New(p))
	st := e.Run(50000)
	c := st.Class
	if c.Loads == 0 {
		t.Fatal("no loads classified")
	}
	if c.NotConflicting+c.Conflicting() != c.Loads {
		t.Fatalf("classification does not partition: %d + %d != %d",
			c.NotConflicting, c.Conflicting(), c.Loads)
	}
	if st.Loads != c.Loads {
		t.Fatalf("classified loads %d != retired loads %d", c.Loads, st.Loads)
	}
}

func TestSchemeOrderingOnRealTrace(t *testing.T) {
	// The fundamental result (Fig 7): Perfect >= Exclusive ≈ Inclusive >=
	// Traditional. Checked loosely on one synthetic trace.
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	run := func(scheme memdep.Scheme) float64 {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.WarmupUops = 20000
		if scheme.UsesCHT() {
			cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		}
		e := NewEngine(cfg, trace.New(p))
		return e.Run(100000).IPC()
	}
	trad := run(memdep.Traditional)
	incl := run(memdep.Inclusive)
	perf := run(memdep.Perfect)
	if perf < trad {
		t.Fatalf("perfect (%.3f) must not lose to traditional (%.3f)", perf, trad)
	}
	if incl < trad*0.98 {
		t.Fatalf("inclusive (%.3f) should not lose noticeably to traditional (%.3f)", incl, trad)
	}
}

func TestHMPPerfectNotSlower(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "gcc")
	run := func(hmp string) float64 {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.IntUnits = 4
		cfg.WarmupUops = 20000
		if hmp == "perfect" {
			cfg.HMP = &hitmiss.Perfect{}
		}
		e := NewEngine(cfg, trace.New(p))
		return e.Run(100000).IPC()
	}
	base := run("always-hit")
	perf := run("perfect")
	if perf < base*0.995 {
		t.Fatalf("perfect HMP (%.3f) should not lose to always-hit (%.3f)", perf, base)
	}
}

func TestStatsSpeedupAndIPC(t *testing.T) {
	a := Stats{Cycles: 100, Uops: 150}
	b := Stats{Cycles: 100, Uops: 100}
	if a.IPC() != 1.5 {
		t.Fatal("IPC")
	}
	if a.Speedup(b) != 1.5 {
		t.Fatal("Speedup")
	}
	var z Stats
	if z.IPC() != 0 || a.Speedup(z) != 0 {
		t.Fatal("zero-cycle edge cases")
	}
	var sum Stats
	sum.Add(a)
	sum.Add(b)
	if sum.Cycles != 200 || sum.Uops != 250 {
		t.Fatal("Add")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.FetchWidth = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.Window = c.RenamePool + 1 },
		func(c *Config) { c.MemUnits = 0 },
		func(c *Config) { c.Scheme = memdep.Inclusive; c.CHT = nil },
		func(c *Config) { c.CollisionPenalty = -1 },
		func(c *Config) { c.MissRecoveryBubble = -1 },
		func(c *Config) { c.CollisionRecoveryBubble = -1 },
		func(c *Config) { c.CollisionReplayUops = -1 },
		func(c *Config) { c.MissReplayUops = -1 },
		func(c *Config) { c.BankMispredictPenalty = -1 },
		func(c *Config) { c.BankDualSchedLatency = -1 },
		func(c *Config) { c.ForwardLatency = -1 },
		func(c *Config) { c.Hier.L1D.LineBytes = 48 },
		func(c *Config) { c.Hier.L1I.SizeBytes = 48 }, // non-zero L1I must cohere
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewEnginePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Window = 0
	NewEngine(cfg, newSliceSource(nil))
}

func TestWarmupExcludedFromStats(t *testing.T) {
	p := trace.Profile{Name: "warm", Seed: 3}
	cfg := testConfig()
	cfg.WarmupUops = 10000
	e := NewEngine(cfg, trace.New(p))
	st := e.Run(20000)
	if st.Uops < 20000 || st.Uops >= 20000+uint64(cfg.RetireWidth) {
		t.Fatalf("measured uops = %d, want 20000 (± retire width, warmup excluded)", st.Uops)
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := trace.Profile{Name: "det", Seed: 9}
	run := func() Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Inclusive
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		e := NewEngine(cfg, trace.New(p))
		return e.Run(50000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestLatencyOfPanicsOnLoad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("latencyOf(Load) must panic: load latency is dynamic")
		}
	}()
	DefaultConfig().latencyOf(uop.Load)
}

func TestEngineAccessors(t *testing.T) {
	e := NewEngine(testConfig(), newSliceSource(nil))
	if e.Hierarchy() == nil {
		t.Fatal("nil hierarchy")
	}
	if e.Now() != 0 || e.Retired() != 0 {
		t.Fatal("fresh engine not at cycle 0")
	}
	e.StepCycle()
	if e.Now() != 1 {
		t.Fatalf("StepCycle advanced to %d", e.Now())
	}
}

func TestSTDPortLimit(t *testing.T) {
	// A burst of stores with ready data: STD throughput is bounded by
	// STDPorts per cycle.
	var us []uop.UOp
	var id int64
	for i := 0; i < 60; i++ {
		id++
		us = append(us, mkStore(0x400000+uint64(i)*8, uint64(0x3000+i*64), id, 0)...)
	}
	cfg := testConfig()
	cfg.STDPorts = 1
	one := NewEngine(cfg, newSliceSource(us)).Run(len(us)).Cycles
	cfg.STDPorts = 4
	four := NewEngine(cfg, newSliceSource(us)).Run(len(us)).Cycles
	if four > one {
		t.Fatalf("more STD ports cannot be slower: %d vs %d cycles", four, one)
	}
}
