package ooo_test

import (
	"fmt"
	"math/rand"
	"testing"

	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/trace"
)

// Differential tests for batched lockstep execution: running a job under
// Pool.RunBatch — whatever unit its grouping lands it in — must be
// observably absent, producing Stats byte-identical to the same machine
// running alone. The batch runner varies only WHEN each engine's StepRun
// slices execute, never what they compute, so any divergence here is a
// shared-state leak between unit mates.

// soloStats runs each job alone on a fresh engine, the reference the
// batched runs must reproduce exactly.
func soloStats(jobs []runner.Job) []ooo.Stats {
	out := make([]ooo.Stats, len(jobs))
	for i, j := range jobs {
		cfg := j.Build()
		cfg.WarmupUops = j.Warmup
		out[i] = ooo.NewEngine(cfg, trace.Replay(j.Profile)).Run(j.Uops)
	}
	return out
}

// TestRunBatchMatchesSoloDiff extends the scheduler differential to the
// batch runner: randomized machines over mixed workloads, executed at
// worker counts that produce unit sizes of 1, 3 and a full same-workload
// sweep, must match solo runs per engine.
func TestRunBatchMatchesSoloDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(0xba7c4))
	profiles := ooo.DiffProfilesForBatch(rng, 2)
	const warmup, uops = 1000, 4000

	// Six machines on profile 0 (one full-sweep unit at workers=1), three
	// on profile 1; a couple of jobs also run the naive reference
	// scheduler so both dispatch paths batch.
	var jobs []runner.Job
	for i := 0; i < 9; i++ {
		build := ooo.DiffConfigForBatch(rng)
		naive := i%4 == 1
		prof := profiles[0]
		if i >= 6 {
			prof = profiles[1]
		}
		jobs = append(jobs, runner.Job{
			Build: func() ooo.Config {
				cfg := build()
				cfg.NaiveSchedule = naive
				return cfg
			},
			Profile: prof,
			Uops:    uops,
			Warmup:  warmup,
		})
	}
	solo := soloStats(jobs)

	// workers=1 → units of 6 and 3; workers=3 → units of 3; workers=9 →
	// every engine alone in its unit.
	for _, workers := range []int{1, 3, 9} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			got := runner.NewIsolated(workers, nil).RunBatch(jobs)
			for i := range jobs {
				if got[i] != solo[i] {
					t.Errorf("job %d diverged under batch (workers=%d)\nbatch: %+v\nsolo:  %+v",
						i, workers, got[i], solo[i])
				}
			}
		})
	}
}

// TestRunBatchCoincidentEdgeCases extends the ready-list fast-forward edge
// cases: machines that pile wakeups, deferred miss detections and bubble
// expiries onto shared cycles (the coincident workload), batched into one
// lockstep unit, must match solo — window boundaries may never split or
// reorder an engine's coincident events.
func TestRunBatchCoincidentEdgeCases(t *testing.T) {
	prof := ooo.CoincidentProfileForBatch()
	narrow := func() ooo.Config {
		cfg := ooo.DefaultConfig()
		cfg.FetchWidth, cfg.RetireWidth = 1, 1
		cfg.Window, cfg.RenamePool = 8, 8
		cfg.IntUnits, cfg.MemUnits, cfg.STDPorts = 1, 1, 1
		cfg.MissRecoveryBubble = 6
		cfg.MissReplayPenalty = 8
		return cfg
	}
	const warmup, uops = 500, 3000
	var jobs []runner.Job
	for _, naive := range []bool{false, true} {
		for _, bubble := range []int{0, 6} {
			naive, bubble := naive, bubble
			jobs = append(jobs, runner.Job{
				Build: func() ooo.Config {
					cfg := narrow()
					cfg.NaiveSchedule = naive
					cfg.MissRecoveryBubble = bubble
					return cfg
				},
				Profile: prof,
				Uops:    uops,
				Warmup:  warmup,
			})
		}
	}
	solo := soloStats(jobs)
	got := runner.NewIsolated(1, nil).RunBatch(jobs) // one unit of 4
	for i := range jobs {
		if got[i] != solo[i] {
			t.Errorf("coincident job %d diverged under lockstep batch\nbatch: %+v\nsolo:  %+v",
				i, got[i], solo[i])
		}
	}
}

// TestRunBatchDedupsInUnit pins the in-unit coalescing path: identical
// describable jobs landing in one unit must simulate once (the followers
// ride the owner's engine) and still return per-job results identical to
// solo execution.
func TestRunBatchDedupsInUnit(t *testing.T) {
	prof := ooo.CoincidentProfileForBatch()
	job := runner.Job{
		Build:   ooo.DefaultConfig,
		Profile: prof,
		Uops:    3000,
		Warmup:  500,
	}
	jobs := []runner.Job{job, job, job, job}
	solo := soloStats(jobs[:1])
	p := runner.NewIsolated(1, runner.NewCache()) // one unit of 4, memoized
	got := p.RunBatch(jobs)
	for i := range got {
		if got[i] != solo[0] {
			t.Errorf("deduped job %d diverged: %+v != %+v", i, got[i], solo[0])
		}
	}
	c := p.Counters()
	if c.Simulated != 1 {
		t.Errorf("Simulated = %d, want 1 (in-unit dedup)", c.Simulated)
	}
	if c.Coalesced != 3 {
		t.Errorf("Coalesced = %d, want 3 (followers)", c.Coalesced)
	}
}
