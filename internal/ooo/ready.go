package ooo

import (
	"math"

	"loadsched/internal/uop"
)

// Event-driven scheduling core. The naive scheduler re-scans the whole
// window every cycle asking "are your operands ready yet?"; this file keeps
// that question answered incrementally instead:
//
//   - At rename, linkDeps registers the new uop on each unfinished
//     producer's wakeup list. The lists are intrusive index links over the
//     ROB's parallel slices (rob.waitHead / rob.waitNext): each slot owns
//     two preallocated link nodes, one per source operand, identified as
//     idx<<1|src — no per-entry backing slice exists. A uop whose producers
//     all have known completion times goes straight to the ready
//     structures.
//   - When a producer's completion time becomes known (complete,
//     executeLoad's non-collided exit, finishCollidedLoad), wakeDependents
//     walks the producer's link chain, folds that time into each waiter's
//     readyAt and, once the last unknown producer reports in, schedules the
//     waiter: into readyList if ready now, into the wakeQ time heap
//     otherwise. Pushing links at the head visits waiters in reverse
//     registration order, which is observably neutral: every effect funnels
//     through insertReady (a total order on unique ages) or the wake heap
//     (observed only through its minimum, with ties age-ordered on drain).
//   - dispatch drains the wakeQ up to the current cycle and walks only
//     readyList — in age order, which is rename order, so the walk visits
//     exactly the entries the naive oldest-first window scan would have
//     found ready, in the same order. Entries held by a scheduling decision
//     (ordering/bank/port) stay on the list and are re-offered every cycle,
//     preserving the per-cycle policy-call sequence and the
//     first-hold-wins CPI evidence.
//
// On top of the ready structures, fastForward jumps over spans of cycles
// where the machine provably cannot act, attributing them to the CPI stack
// in bulk with the same per-cycle causes attributeCycle would have chosen —
// so causes still sum to Cycles, and the golden figure output is
// byte-identical to the per-cycle walk.

// wakeEvent schedules ROB slot idx to become ready at cycle at.
type wakeEvent struct {
	at  int64
	idx int32
}

// wakeHeap is a 4-ary min-heap of wakeEvents ordered by at. Pop order
// among equal cycles is arbitrary; insertReady re-establishes age order.
// The wider node halves the sift depth of a binary heap: pushes — one per
// operand-waiting uop — compare against a quarter as many ancestors, and
// the extra sibling compares on pop stay in one cache line of events.
type wakeHeap []wakeEvent

func (h *wakeHeap) push(ev wakeEvent) {
	q := append(*h, ev)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if q[p].at <= q[i].at {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
}

func (h *wakeHeap) pop() wakeEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		hi := c + 4
		if hi > n {
			hi = n
		}
		for s := c + 1; s < hi; s++ {
			if q[s].at < q[c].at {
				c = s
			}
		}
		if q[i].at <= q[c].at {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	return top
}

// linkDeps wires a freshly renamed slot into the wakeup graph. Producers
// whose completion time is already known contribute it to readyAt;
// unfinished producers get the slot's link node (idx<<1|src) pushed onto
// their chain. With no unfinished producers the slot is scheduled
// immediately.
func (e *Engine) linkDeps(idx int32) {
	r := &e.rob
	r.age[idx] = e.renameAge
	e.renameAge++
	if e.naive {
		return
	}
	var ready int64
	if p := r.src1Prod[idx]; p >= 0 {
		if r.flags[p]&fDone != 0 {
			if d := r.doneCycle[p]; d > ready {
				ready = d
			}
		} else {
			n := idx << 1 // source-0 link node
			r.waitNext[n] = r.waitHead[p]
			r.waitHead[p] = n
			r.nwaiting[idx]++
		}
	}
	if p := r.src2Prod[idx]; p >= 0 {
		if r.flags[p]&fDone != 0 {
			if d := r.doneCycle[p]; d > ready {
				ready = d
			}
		} else {
			n := idx<<1 | 1 // source-1 link node
			r.waitNext[n] = r.waitHead[p]
			r.waitHead[p] = n
			r.nwaiting[idx]++
		}
	}
	r.readyAt[idx] = ready
	if r.nwaiting[idx] == 0 {
		e.enqueueReady(idx, ready)
	}
}

// wakeDependents reports slot idx's now-final doneCycle to every waiter on
// its link chain. A waiter whose last unknown producer this was gets
// scheduled. Called exactly once per slot, at the one point its doneCycle
// becomes final; the chain is detached up front, which frees every visited
// link node (a node is live only while its slot waits on this producer).
func (e *Engine) wakeDependents(idx int32) {
	r := &e.rob
	n := r.waitHead[idx]
	if n < 0 {
		return
	}
	r.waitHead[idx] = -1
	done := r.doneCycle[idx]
	for n >= 0 {
		w := n >> 1
		n = r.waitNext[n]
		if done > r.readyAt[w] {
			r.readyAt[w] = done
		}
		r.nwaiting[w]--
		if r.nwaiting[w] == 0 {
			e.enqueueReady(w, r.readyAt[w])
		}
	}
}

// enqueueReady schedules an operand-complete slot: the wakeQ if its data
// arrives in the future, the ready list if it is dispatchable already.
func (e *Engine) enqueueReady(idx int32, at int64) {
	if at > e.now {
		e.wakeQ.push(wakeEvent{at: at, idx: idx})
		return
	}
	e.insertReady(idx)
}

// insertReady places idx into readyList keeping age order. The common case
// — waking an entry younger than everything already ready — is a plain
// append. Insertion during the dispatch walk is safe: a same-cycle waker's
// consumer is younger than its producer, so it lands after the walk index.
func (e *Engine) insertReady(idx int32) {
	if uop.Kind(e.rob.kind[idx]) == uop.Load && e.rob.flags[idx]&fClassified == 0 {
		// An unclassified load's first offer runs classification, which
		// reads the MOB at that exact cycle — the dispatch walk may not
		// early-exit past it (see dispatch).
		e.readyUnclass++
	}
	rl := e.readyList
	ages := e.rob.age
	age := ages[idx]
	if n := len(rl); n == 0 || ages[rl[n-1]] < age {
		e.readyList = append(rl, idx)
		return
	}
	lo, hi := 0, len(rl)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ages[rl[mid]] < age {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	rl = append(rl, 0)
	copy(rl[lo+1:], rl[lo:])
	rl[lo] = idx
	e.readyList = rl
}

// drainWakeQ moves every entry whose operands have arrived by the current
// cycle from the time heap into the ready list.
func (e *Engine) drainWakeQ() {
	for len(e.wakeQ) > 0 && e.wakeQ[0].at <= e.now {
		e.insertReady(e.wakeQ.pop().idx)
	}
}

// fastForward jumps e.now to just before the next cycle the machine can
// act, bulk-attributing the skipped idle cycles. Run by StepRun immediately
// before cycle(), so a warmup/measurement boundary never lands inside a
// skipped span.
func (e *Engine) fastForward() {
	next := e.idleSpan()
	if next == 0 {
		return
	}
	n := next - e.now - 1
	if n <= 0 {
		return
	}
	e.bulkIdle(n)
	e.now += n
}

// idleSpan returns the earliest future cycle at which any pipeline stage
// can act, or 0 when the very next cycle can. A cycle k is provably inert
// when: retire has nothing completed (head not done, or done later than k);
// no pending collision resolves by k; no miss detection comes due by k;
// dispatch is either recovery-stalled through k or has an empty ready set,
// zero replay debt and no wakeup due by k; and the front end is blocked (by
// a mispredicted branch or the refill window) or out of window/pool space.
// Every one of those conditions is pinned by an explicit event cycle below,
// so state cannot change anywhere inside the returned span.
func (e *Engine) idleSpan() int64 {
	k := e.now + 1 // the next cycle, the first candidate to skip
	next := int64(math.MaxInt64)
	upd := func(ev int64) {
		if ev < next {
			next = ev
		}
	}

	// Retire: the window head's completion is the only retire trigger.
	if e.count > 0 {
		if h := e.head; e.rob.flags[h]&fDone != 0 {
			d := e.rob.doneCycle[h]
			if d <= k {
				return 0
			}
			upd(d)
		}
	}
	// Collision resolution: a pending collided load resolves when its
	// store's STD completes. (The store cannot retire out from under the
	// record inside an idle span — retirement is already excluded above.)
	for _, idx := range e.pendingColl {
		pos := e.mobGet(e.rob.waitStore[idx])
		if pos < 0 {
			return 0
		}
		if e.mob.flags[pos]&mStdExec != 0 {
			c := e.mob.stdExecCyc[pos]
			if c <= k {
				return 0
			}
			upd(c)
		}
	}
	// Deferred miss detections arm recovery bubbles even while dispatch is
	// already stalled, so they bound every span.
	for _, d := range e.missDetections {
		if d <= k {
			return 0
		}
		upd(d)
	}
	if k < e.recoveryStallUntil {
		// Dispatch is bubble-stalled: ready entries and wakeups cannot act
		// until the stall lifts, which is itself the bounding event.
		upd(e.recoveryStallUntil)
	} else {
		if len(e.readyList) > 0 || e.replayMemDebt > 0 || e.replayIntDebt > 0 {
			return 0
		}
		if len(e.wakeQ) > 0 {
			if e.wakeQ[0].at <= k {
				return 0
			}
			upd(e.wakeQ[0].at)
		}
	}
	// Front end: an open front end with window space fetches next cycle.
	// Capacity cannot change inside a span (nothing retires or dispatches),
	// so a full window stays full.
	if !e.awaitingBranch {
		if k < e.resumeAt {
			upd(e.resumeAt)
		} else if e.count < e.rob.size() && e.rsCount < e.cfg.Window {
			return 0
		}
	}
	if next == math.MaxInt64 {
		// No future event at all (a wedged machine): don't skip, let the
		// livelock guard in StepRun fail loudly.
		return 0
	}
	return next
}

// bulkIdle attributes n skipped cycles exactly as attributeCycle would have
// per cycle: nothing retires in a skipped span, so each cycle goes — in the
// same priority order — to the active recovery bubble, an empty window, or
// the window-full/data-stall split; and a capacity-blocked front end counts
// its rename stalls cycle for cycle. The span never crosses a state
// boundary (recoveryStallUntil, resumeAt and every completion are span
// events), so one attribution holds for all n cycles.
func (e *Engine) bulkIdle(n int64) {
	c := &e.stats.CPI
	frontOpen := !e.awaitingBranch && e.now+1 >= e.resumeAt
	renameStalled := frontOpen &&
		(e.count >= e.rob.size() || e.rsCount >= e.cfg.Window)
	if renameStalled {
		e.stats.RenameStalls += uint64(n)
	}
	switch {
	case e.now+1 < e.recoveryStallUntil:
		if e.recoveryCause == stallMissReplay {
			c.MissReplay += n
		} else {
			c.CollisionRecovery += n
		}
	case e.count == 0:
		c.Frontend += n
	case renameStalled:
		c.WindowFull += n
	default:
		c.DataStall += n
	}
}
