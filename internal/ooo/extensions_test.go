package ooo

import (
	"testing"

	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// ---- store barrier cache [Hess95] ----

func TestBarrierLearnsToHoldLoads(t *testing.T) {
	us := collisionTrace(200)
	run := func(barrier *memdep.StoreBarrier) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Opportunistic
		cfg.Barrier = barrier
		return NewEngine(cfg, newSliceSource(us)).Run(len(us))
	}
	without := run(nil)
	with := run(memdep.NewStoreBarrier(1024))
	if with.Collisions >= without.Collisions {
		t.Fatalf("barrier cache should cut collisions: %d vs %d", with.Collisions, without.Collisions)
	}
}

func TestBarrierCoarserThanCHT(t *testing.T) {
	// The paper's point about [Hess95]: the barrier keys on stores, so one
	// bad store delays every following load. On a mixed trace the CHT
	// (load-keyed) should win.
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "cd")
	run := func(mut func(*Config)) float64 {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Opportunistic
		cfg.WarmupUops = 20000
		mut(&cfg)
		return NewEngine(cfg, trace.New(p)).Run(80000).IPC()
	}
	barrier := run(func(c *Config) { c.Barrier = memdep.NewStoreBarrier(1024) })
	cht := run(func(c *Config) {
		c.Scheme = memdep.Inclusive
		c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	})
	if cht < barrier*0.98 {
		t.Fatalf("CHT (%.3f) should not lose to the store barrier (%.3f)", cht, barrier)
	}
}

func TestBarrierCountersDecay(t *testing.T) {
	b := memdep.NewStoreBarrier(256)
	ip := uint64(0x400100)
	b.RecordViolation(ip)
	b.RecordViolation(ip)
	if !b.ShouldBarrier(ip) {
		t.Fatal("two violations should set the barrier")
	}
	b.RecordClean(ip)
	b.RecordClean(ip)
	if b.ShouldBarrier(ip) {
		t.Fatal("clean executions should clear the barrier")
	}
	b.RecordViolation(ip)
	b.Reset()
	if b.ShouldBarrier(ip) {
		t.Fatal("Reset must clear counters")
	}
}

func TestBarrierBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	memdep.NewStoreBarrier(100)
}

// ---- dual-scheduled banked pipe ----

func TestDualScheduledNoConflictsButSlower(t *testing.T) {
	us := bankHeavyTrace(400)
	run := func(policy BankPolicy) Stats {
		cfg := bankConfig(policy, nil)
		return NewEngine(cfg, newSliceSource(bankHeavyTrace(400))).Run(len(us))
	}
	dual := run(BankDualScheduled)
	ideal := run(BankOff)
	if dual.BankConflicts != 0 {
		t.Fatalf("dual scheduling eliminates conflicts, got %d", dual.BankConflicts)
	}
	if dual.IPC() > ideal.IPC() {
		t.Fatalf("dual-scheduled (%.3f) cannot beat the ideal pipe (%.3f)", dual.IPC(), ideal.IPC())
	}
	// Its extra scheduler stage must cost something on load-latency-bound
	// code.
	if dual.Cycles <= ideal.Cycles {
		t.Fatalf("dual scheduling latency did not show: %d vs %d cycles", dual.Cycles, ideal.Cycles)
	}
}

// ---- multi-level hit-miss prediction ----

func TestLevelPredictorBeatsBinaryOnMemoryMisses(t *testing.T) {
	// TPC has a large irregular working set with many full misses: a level
	// predictor schedules those for the memory latency, the binary one
	// replays them at the L2 latency.
	p, _ := trace.TraceByName(trace.GroupTPC, "tpcc")
	run := func(h hitmiss.Predictor) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.HMP = h
		cfg.WarmupUops = 20000
		return NewEngine(cfg, trace.New(p)).Run(80000)
	}
	oracleBinary := run(&hitmiss.Perfect{})
	oracleLevel := run(&hitmiss.PerfectLevel{})
	if oracleLevel.IPC() < oracleBinary.IPC()*0.999 {
		t.Fatalf("level oracle (%.3f) should not lose to binary oracle (%.3f)",
			oracleLevel.IPC(), oracleBinary.IPC())
	}
}

func TestTwoStageInEngine(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupGames, "pod")
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Perfect
	cfg.HMP = hitmiss.NewTwoStage()
	cfg.WarmupUops = 15000
	st := NewEngine(cfg, trace.New(p)).Run(60000)
	if st.HM.Loads() != st.Loads {
		t.Fatal("HM accounting broken with level predictor")
	}
	if st.HM.AMPM == 0 {
		t.Fatal("two-stage predictor caught no misses on a miss-heavy trace")
	}
}

func TestPerfectLevelNoReplays(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupTPC, "tpcd")
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Perfect
	cfg.HMP = &hitmiss.PerfectLevel{}
	cfg.WarmupUops = 10000
	st := NewEngine(cfg, trace.New(p)).Run(50000)
	if st.HM.AMPH != 0 {
		t.Fatalf("level oracle suffered %d replays", st.HM.AMPH)
	}
}

// ---- trace-file replay through the engine ----

func TestEngineRunsFromRecordedTrace(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "perl")
	dir := t.TempDir()
	path := dir + "/t.lsut"
	if err := trace.WriteTraceFile(path, p, 60000); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Exclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	cfg.WarmupUops = 10000

	live := NewEngine(cfg, trace.New(p)).Run(40000)
	replay := NewEngine(cfg2(cfg), rd).Run(40000)
	if live != replay {
		t.Fatalf("recorded replay diverged from live generation:\n%+v\n%+v", live, replay)
	}
}

// cfg2 deep-copies the parts of a config that carry predictor state.
func cfg2(c Config) Config {
	c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	return c
}

var _ = cache.DefaultBanking

// ---- distance-based value forwarding (§2.1 extension) ----

func TestDistanceForwardingSpeedsUpPairs(t *testing.T) {
	// The colliding parameter-pair trace: with forwarding, the load takes
	// the store's value from the store queue instead of re-reading the
	// cache, shaving latency on every predicted pair.
	run := func(forward bool) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Exclusive
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		cfg.DistanceForwarding = forward
		us := collisionTrace(300)
		return NewEngine(cfg, newSliceSource(us)).Run(2500)
	}
	plain := run(false)
	fwd := run(true)
	if fwd.Forwards == 0 {
		t.Fatal("forwarding never triggered on a pair-heavy trace")
	}
	if fwd.IPC() < plain.IPC() {
		t.Fatalf("forwarding (%.3f) should not lose to plain exclusive (%.3f)",
			fwd.IPC(), plain.IPC())
	}
}

func TestDistanceForwardingOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Exclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	st := NewEngine(cfg, newSliceSource(collisionTrace(100))).Run(800)
	if st.Forwards != 0 {
		t.Fatalf("forwarding counted %d events while disabled", st.Forwards)
	}
}

func TestDistanceForwardingOnRealTrace(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupJava, "javac")
	run := func(forward bool) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Exclusive
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		cfg.DistanceForwarding = forward
		cfg.WarmupUops = 15000
		return NewEngine(cfg, trace.New(p)).Run(60000)
	}
	fwd := run(true)
	plain := run(false)
	if fwd.Forwards == 0 {
		t.Fatal("no forwards on a call-heavy Java trace")
	}
	if fwd.IPC() < plain.IPC()*0.99 {
		t.Fatalf("forwarding hurt IPC: %.3f vs %.3f", fwd.IPC(), plain.IPC())
	}
}
