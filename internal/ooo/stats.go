package ooo

import (
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
)

// Stats is everything one simulation run measures.
type Stats struct {
	// Cycles is the simulated cycle count over the measured region.
	Cycles int64
	// Uops / Loads / Stores / Branches count retired uops by class (stores
	// count STA+STD pairs once).
	Uops, Loads, Stores, Branches uint64

	// Class is the load-classification tally of Figure 1 (conflicting /
	// colliding × predicted), gathered at schedule time and finalized at
	// retire.
	Class memdep.Classification

	// HM tallies hit-miss prediction outcomes (Figure 10).
	HM hitmiss.Outcomes

	// Collisions counts loads that paid the collision penalty (wrong
	// memory ordering).
	Collisions uint64

	// L1Hits/L1Misses/L2Misses are load data-cache outcomes.
	L1Hits, L1Misses, L2Misses uint64

	// BranchMispredicts counts front-end mispredictions encountered.
	BranchMispredicts uint64

	// RenameStalls counts cycles the front end could not rename a uop for
	// lack of window/pool space.
	RenameStalls uint64

	// BankConflicts / BankMispredicts / BankDuplicates count banked-cache
	// events when banking is enabled.
	BankConflicts, BankMispredicts, BankDuplicates uint64

	// Forwards counts loads that took their data from the store queue via
	// distance-predicted load-store pairing (the §2.1 forwarding extension).
	Forwards uint64

	// CPI attributes every measured cycle to one stall cause;
	// CPI.Total() == Cycles over the measured region (see cpi.go).
	CPI CPIStack
}

// IPC returns retired uops per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Uops) / float64(s.Cycles)
}

// L1MissRate returns load L1 misses over all loads.
func (s Stats) L1MissRate() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Loads)
}

// Speedup returns this run's IPC relative to a baseline run's (the unit of
// Figures 7, 8 and 11).
func (s Stats) Speedup(baseline Stats) float64 {
	b := baseline.IPC()
	if b == 0 {
		return 0
	}
	return s.IPC() / b
}

// Add accumulates another run's stats (used to average trace groups by
// pooling counts).
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.Uops += o.Uops
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Branches += o.Branches
	s.Class.Add(o.Class)
	s.HM.Add(o.HM)
	s.Collisions += o.Collisions
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.L2Misses += o.L2Misses
	s.BranchMispredicts += o.BranchMispredicts
	s.RenameStalls += o.RenameStalls
	s.BankConflicts += o.BankConflicts
	s.BankMispredicts += o.BankMispredicts
	s.BankDuplicates += o.BankDuplicates
	s.Forwards += o.Forwards
	s.CPI.Add(o.CPI)
}
