package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/uop"
)

// Retire stage: drains up to RetireWidth completed uops per cycle from the
// ROB head in program order (reading the flat flag/done-cycle arrays),
// finalizes the figure statistics, prunes the MOB, and feeds every retired
// load back through the speculation policy's training hook.

func (e *Engine) retire() {
	for n := 0; n < e.cfg.RetireWidth && e.count > 0; n++ {
		idx := int32(e.head)
		if e.rob.flags[idx]&fDone == 0 || e.rob.doneCycle[idx] > e.now {
			return
		}
		e.retireEntry(idx)
		e.rob.flags[idx] &^= fValid
		if e.head++; e.head == e.rob.size() {
			e.head = 0
		}
		e.count--
	}
}

func (e *Engine) retireEntry(idx int32) {
	e.stats.Uops++
	e.cycleRetired++
	switch uop.Kind(e.rob.kind[idx]) {
	case uop.Load:
		e.retireLoad(idx)
	case uop.STA:
		e.stats.Stores++
		e.mob.flags[e.mobGet(e.rob.u[idx].StoreID)] |= mStaRetired
	case uop.STD:
		pos := e.mobGet(e.rob.u[idx].StoreID)
		e.mob.flags[pos] |= mStdRetired
		if e.cfg.Barrier != nil && e.mob.flags[pos]&mViolated == 0 {
			e.cfg.Barrier.RecordClean(e.mob.ip[pos])
		}
		e.mobPrune()
	case uop.Branch:
		e.stats.Branches++
	}
}

func (e *Engine) retireLoad(idx int32) {
	r := &e.rob
	f := r.flags[idx]
	e.stats.Loads++
	switch r.level[idx] {
	case cache.L1:
		e.stats.L1Hits++
	case cache.L2:
		e.stats.L1Misses++
	default:
		e.stats.L1Misses++
		e.stats.L2Misses++
	}

	// Figure 1 classification bookkeeping.
	c := &e.stats.Class
	c.Loads++
	conflicting := f&fConflicting != 0
	colliding := f&fColliding != 0
	predColl := r.pred[idx].Colliding
	switch {
	case !conflicting:
		c.NotConflicting++
	case colliding && predColl:
		c.ACPC++
	case colliding && !predColl:
		c.ACPNC++
	case !colliding && predColl:
		c.ANCPC++
	default:
		c.ANCPNC++
	}

	// Predictor training: the measurement tally stays engine-side, the
	// predictors themselves learn through the policy seam.
	actualHit := f&fActualHit != 0
	e.stats.HM.Record(actualHit, f&fPredHit != 0)
	ev := TrainEvent{
		IP: r.u[idx].IP, Addr: r.u[idx].Addr, Now: e.now,
		Colliding: colliding, Distance: int(r.collDist[idx]),
		Hit: actualHit, Level: r.level[idx],
	}
	if p := e.defPol; p != nil {
		p.TrainRetire(ev)
	} else {
		e.policy.TrainRetire(ev)
	}
	if e.cfg.OnLoadRetire != nil {
		e.cfg.OnLoadRetire(LoadEvent{
			IP: r.u[idx].IP, Addr: r.u[idx].Addr,
			Colliding: colliding, Distance: int(r.collDist[idx]),
			Hit: actualHit, Conflicting: conflicting,
		})
	}
}
