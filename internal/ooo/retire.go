package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/uop"
)

// Retire stage: drains up to RetireWidth completed uops per cycle from the
// ROB head in program order, finalizes the figure statistics, prunes the
// MOB, and feeds every retired load back through the speculation policy's
// training hook.

func (e *Engine) retire() {
	for n := 0; n < e.cfg.RetireWidth && e.count > 0; n++ {
		idx := e.head
		en := &e.rob[idx]
		if !en.done || en.doneCycle > e.now {
			return
		}
		e.retireEntry(en)
		en.valid = false
		e.head = (e.head + 1) % len(e.rob)
		e.count--
	}
}

func (e *Engine) retireEntry(en *entry) {
	e.stats.Uops++
	e.cycleRetired++
	switch en.u.Kind {
	case uop.Load:
		e.retireLoad(en)
	case uop.STA:
		e.stats.Stores++
		e.mobGet(en.u.StoreID).staRetired = true
	case uop.STD:
		rec := e.mobGet(en.u.StoreID)
		rec.stdRetired = true
		if e.cfg.Barrier != nil && !rec.violated {
			e.cfg.Barrier.RecordClean(rec.ip)
		}
		e.mobPrune()
	case uop.Branch:
		e.stats.Branches++
	}
}

func (e *Engine) retireLoad(en *entry) {
	e.stats.Loads++
	switch en.level {
	case cache.L1:
		e.stats.L1Hits++
	case cache.L2:
		e.stats.L1Misses++
	default:
		e.stats.L1Misses++
		e.stats.L2Misses++
	}

	// Figure 1 classification bookkeeping.
	c := &e.stats.Class
	c.Loads++
	predColl := en.pred.Colliding
	switch {
	case !en.conflicting:
		c.NotConflicting++
	case en.colliding && predColl:
		c.ACPC++
	case en.colliding && !predColl:
		c.ACPNC++
	case !en.colliding && predColl:
		c.ANCPC++
	default:
		c.ANCPNC++
	}

	// Predictor training: the measurement tally stays engine-side, the
	// predictors themselves learn through the policy seam.
	e.stats.HM.Record(en.actualHit, en.predHit)
	e.policy.TrainRetire(TrainEvent{
		IP: en.u.IP, Addr: en.u.Addr, Now: e.now,
		Colliding: en.colliding, Distance: en.collDist,
		Hit: en.actualHit, Level: en.level,
	})
	if e.cfg.OnLoadRetire != nil {
		e.cfg.OnLoadRetire(LoadEvent{
			IP: en.u.IP, Addr: en.u.Addr,
			Colliding: en.colliding, Distance: en.collDist,
			Hit: en.actualHit, Conflicting: en.conflicting,
		})
	}
}
