package ooo

import (
	"testing"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// ---- banked-cache policies ----

// bankHeavyTrace issues pairs of independent loads to the same bank each
// round, so same-cycle bank conflicts are common.
func bankHeavyTrace(n int) []uop.UOp {
	var us []uop.UOp
	for i := 0; i < n; i++ {
		line := uint64(0x10000 + (i%64)*128) // even lines → all bank 0
		us = append(us,
			uop.UOp{IP: 0x400000, Kind: uop.Load, Dst: 8, Addr: line, Size: 8},
			uop.UOp{IP: 0x400004, Kind: uop.Load, Dst: 9, Addr: line + 8, Size: 8},
			uop.UOp{IP: 0x400008, Kind: uop.IntALU, Dst: 10, Src1: 8, Src2: 9},
		)
	}
	return us
}

func bankConfig(policy BankPolicy, pred bankpred.Predictor) Config {
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Opportunistic
	cfg.BankPolicy = policy
	cfg.Banking = cache.DefaultBanking()
	cfg.BankPredictor = pred
	cfg.BankMispredictPenalty = 8
	return cfg
}

func TestBankConventionalConflicts(t *testing.T) {
	us := bankHeavyTrace(300)
	e := NewEngine(bankConfig(BankConventional, nil), newSliceSource(us))
	st := e.Run(len(us))
	if st.BankConflicts < 100 {
		t.Fatalf("expected frequent bank conflicts, got %d", st.BankConflicts)
	}
	ideal := NewEngine(bankConfig(BankOff, nil), newSliceSource(bankHeavyTrace(300))).Run(len(us))
	if st.IPC() > ideal.IPC() {
		t.Fatalf("banked (%.3f) cannot beat ideal multi-ported (%.3f)", st.IPC(), ideal.IPC())
	}
}

func TestBankSlicedDuplicatesUnpredicted(t *testing.T) {
	us := bankHeavyTrace(300)
	// No predictor: every load abstains and is duplicated to all pipes.
	e := NewEngine(bankConfig(BankSliced, nil), newSliceSource(us))
	st := e.Run(len(us))
	if st.BankDuplicates < 300 {
		t.Fatalf("unpredicted sliced loads must duplicate, got %d", st.BankDuplicates)
	}
	if st.BankMispredicts != 0 {
		t.Fatalf("abstaining predictor cannot mispredict, got %d", st.BankMispredicts)
	}
}

func TestBankSlicedPredictorLearns(t *testing.T) {
	us := bankHeavyTrace(600)
	e := NewEngine(bankConfig(BankSliced, bankpred.NewPredictorC()), newSliceSource(us))
	st := e.Run(len(us))
	// The two static loads have fixed banks; once warm, the predictor steers
	// them with few mispredictions and few duplications.
	if st.BankMispredicts > 100 {
		t.Fatalf("fixed-bank loads mispredicted %d times", st.BankMispredicts)
	}
}

func TestBankPredictiveAvoidsStalls(t *testing.T) {
	conv := NewEngine(bankConfig(BankConventional, nil), newSliceSource(bankHeavyTrace(500)))
	convStats := conv.Run(1500)
	pred := NewEngine(bankConfig(BankPredictive, bankpred.NewPredictorC()), newSliceSource(bankHeavyTrace(500)))
	predStats := pred.Run(1500)
	if predStats.BankConflicts > convStats.BankConflicts {
		t.Fatalf("prediction-guided scheduling should not increase conflicts: %d vs %d",
			predStats.BankConflicts, convStats.BankConflicts)
	}
}

func TestBankPolicyString(t *testing.T) {
	want := map[BankPolicy]string{
		BankOff: "ideal", BankConventional: "conventional",
		BankPredictive: "predict-sched", BankSliced: "sliced",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d = %q want %q", p, p.String(), w)
		}
	}
}

// ---- exclusive distance semantics ----

// distanceTrace: two stores (far ready-fast, near slow) and a load colliding
// with the FAR store only. Exclusive should learn distance 2 and stop
// waiting for the near store.
func distanceTrace(n int) []uop.UOp {
	var us []uop.UOp
	var id int64
	for i := 0; i < n; i++ {
		// Far store: collides with the load; its data arrives after a short
		// Complex chain, so the instantly-ready load sees it incomplete.
		us = append(us, uop.UOp{IP: 0x3ffff0, Kind: uop.Complex, Dst: 6})
		id++
		us = append(us,
			uop.UOp{IP: 0x400000, Kind: uop.STA, Addr: 0x3000, Size: 8, StoreID: id},
			uop.UOp{IP: 0x400004, Kind: uop.STD, StoreID: id, Src1: 6})
		// Near store: different address, much slower STA and STD.
		us = append(us,
			uop.UOp{IP: 0x400010, Kind: uop.Complex, Dst: 7},
			uop.UOp{IP: 0x400014, Kind: uop.Complex, Dst: 7, Src1: 7},
			uop.UOp{IP: 0x400016, Kind: uop.Complex, Dst: 7, Src1: 7})
		id++
		us = append(us,
			uop.UOp{IP: 0x400018, Kind: uop.STA, Addr: 0x4000, Size: 8, StoreID: id, Src1: 7},
			uop.UOp{IP: 0x40001c, Kind: uop.STD, StoreID: id, Src1: 7})
		// The load collides with the far store (distance 2).
		us = append(us, uop.UOp{IP: 0x400020, Kind: uop.Load, Dst: 8, Addr: 0x3000, Size: 8})
		for j := 0; j < 3; j++ {
			us = append(us, uop.UOp{IP: 0x400030 + uint64(j)*4, Kind: uop.IntALU, Dst: 8, Src1: 8})
		}
	}
	return us
}

func TestExclusiveBypassesNearStores(t *testing.T) {
	run := func(scheme memdep.Scheme) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		us := distanceTrace(200)
		return NewEngine(cfg, newSliceSource(us)).Run(1500)
	}
	incl := run(memdep.Inclusive)
	excl := run(memdep.Exclusive)
	// Inclusive waits for the slow near store too; Exclusive (distance 2)
	// bypasses it.
	if excl.IPC() <= incl.IPC() {
		t.Fatalf("exclusive IPC %.3f should beat inclusive %.3f on distance-2 collisions",
			excl.IPC(), incl.IPC())
	}
}

func TestStoreSetsAsScheduler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Inclusive
	cfg.CHT = memdep.NewStoreSets(4096)
	us := collisionTrace(150)
	st := NewEngine(cfg, newSliceSource(us)).Run(len(us))
	if st.Collisions > 25 {
		t.Fatalf("store-sets should learn to hold colliding loads: %d collisions", st.Collisions)
	}
}

// ---- hit-miss penalties ----

func TestAHPMDelaysDependents(t *testing.T) {
	// A predictor that always predicts miss on actually-hitting loads must
	// cost cycles versus always-hit on a hit-only trace.
	// A serial load→compute→load chain: every load's latency (including the
	// AH-PM hit-indication delay) lands on the critical path.
	var us []uop.UOp
	for i := 0; i < 50; i++ {
		us = append(us, uop.UOp{IP: 0x400000, Kind: uop.Load, Dst: 8, Src1: 8, Addr: 0x1000, Size: 8})
		for j := 0; j < 4; j++ {
			us = append(us, uop.UOp{IP: 0x400010 + uint64(j)*4, Kind: uop.IntALU, Dst: 8, Src1: 8})
		}
	}
	run := func(h hitmiss.Predictor) Stats {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Opportunistic
		cfg.HMP = h
		// Neutralize miss-side penalties so the cold first miss costs both
		// configurations the same and only the AH-PM delay differs.
		cfg.MissRecoveryBubble = 0
		cfg.MissReplayPenalty = 0
		cfg.MissReplayUops = 0
		return NewEngine(cfg, newSliceSource(us)).Run(len(us))
	}
	good := run(nil) // always-hit is right on this trace
	bad := run(alwaysMiss{})
	if bad.Cycles <= good.Cycles {
		t.Fatalf("AH-PM mispredictions (%d cycles) must cost more than AH-PH (%d)",
			bad.Cycles, good.Cycles)
	}
	if bad.HM.AHPM == 0 {
		t.Fatal("always-miss predictor produced no AH-PM events")
	}
}

type alwaysMiss struct{}

func (alwaysMiss) PredictHit(uint64, uint64, int64) bool { return false }
func (alwaysMiss) Update(uint64, uint64, int64, bool)    {}
func (alwaysMiss) Reset()                                {}
func (alwaysMiss) Name() string                          { return "always-miss" }

func TestMissRecoveryBubbleCosts(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupSpecFP95, "swim")
	run := func(bubble int) float64 {
		cfg := DefaultConfig()
		cfg.Scheme = memdep.Perfect
		cfg.MissRecoveryBubble = bubble
		cfg.WarmupUops = 10000
		return NewEngine(cfg, trace.New(p)).Run(60000).IPC()
	}
	if with, without := run(10), run(0); with >= without {
		t.Fatalf("miss bubbles (%f) must cost IPC vs none (%f)", with, without)
	}
}

func TestDynamicMissesDetected(t *testing.T) {
	// Two loads to the same cold line in quick succession: the second is a
	// dynamic miss (fill in flight), so a perfect HMP must classify both as
	// misses and nothing as AM-PH.
	us := []uop.UOp{
		{IP: 0x400000, Kind: uop.Load, Dst: 8, Addr: 0x9000, Size: 8},
		{IP: 0x400004, Kind: uop.Load, Dst: 9, Addr: 0x9008, Size: 8},
	}
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Opportunistic
	cfg.HMP = &hitmiss.Perfect{}
	st := NewEngine(cfg, newSliceSource(us)).Run(2)
	if st.HM.AMPH != 0 {
		t.Fatalf("oracle HMP suffered %d AM-PH (dynamic miss not anticipated)", st.HM.AMPH)
	}
	if st.HM.Misses() < 2 {
		t.Fatalf("expected both loads to miss (second dynamically), got %d", st.HM.Misses())
	}
}

// ---- engine invariants on real traces ----

func TestInvariantsAcrossSchemes(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupJava, "jack")
	for _, s := range memdep.Schemes() {
		cfg := DefaultConfig()
		cfg.Scheme = s
		if s.UsesCHT() {
			cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		}
		st := NewEngine(cfg, trace.New(p)).Run(40000)
		c := st.Class
		if c.NotConflicting+c.ANCPC+c.ANCPNC+c.ACPC+c.ACPNC != c.Loads {
			t.Fatalf("%v: classification buckets do not sum to loads", s)
		}
		if st.HM.Loads() != st.Loads {
			t.Fatalf("%v: HM tally %d != loads %d", s, st.HM.Loads(), st.Loads)
		}
		if st.L1Hits+st.L1Misses != st.Loads {
			t.Fatalf("%v: cache tallies do not sum to loads", s)
		}
		if s == memdep.Perfect && st.Collisions != 0 {
			t.Fatalf("perfect scheme collided %d times", st.Collisions)
		}
	}
}

func TestNonCHTSchemesNeverPredictColliding(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupTPC, "tpcc")
	for _, s := range []memdep.Scheme{memdep.Traditional, memdep.Opportunistic, memdep.Perfect} {
		cfg := DefaultConfig()
		cfg.Scheme = s
		st := NewEngine(cfg, trace.New(p)).Run(30000)
		if st.Class.ANCPC != 0 || st.Class.ACPC != 0 {
			t.Fatalf("%v: predicted-colliding buckets nonzero without a CHT", s)
		}
	}
}

func TestLoadEventStreamConsistent(t *testing.T) {
	p, _ := trace.TraceByName(trace.GroupGames, "quake")
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Traditional
	var events, colliding uint64
	cfg.OnLoadRetire = func(ev LoadEvent) {
		events++
		if ev.Colliding {
			colliding++
			if !ev.Conflicting {
				t.Fatal("colliding implies conflicting")
			}
		}
		if ev.Addr == 0 {
			t.Fatal("load event without address")
		}
	}
	st := NewEngine(cfg, trace.New(p)).Run(40000)
	if events != st.Loads {
		t.Fatalf("events %d != retired loads %d", events, st.Loads)
	}
	if colliding != st.Class.AC() {
		t.Fatalf("colliding events %d != AC %d", colliding, st.Class.AC())
	}
}

func TestRetireIsProgramOrder(t *testing.T) {
	// Retire order is program order by construction of the ROB; verify via
	// the event stream being sorted by IP-recurrence... we check sequence
	// monotonicity using the MOB invariant instead: every run must retire
	// exactly the requested uop count without livelock.
	p, _ := trace.TraceByName(trace.GroupSysmark95, "s95c")
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Exclusive
	cfg.CHT = memdep.NewCombinedCHT(1024, 4, 4096, true)
	st := NewEngine(cfg, trace.New(p)).Run(50000)
	if st.Uops < 50000 {
		t.Fatalf("retired %d", st.Uops)
	}
}

func TestWindowSweepMonotoneClassification(t *testing.T) {
	// Figure 6's invariant on a single trace: a wider window can only see
	// more in-flight stores, so the not-conflicting share must not grow.
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "wd")
	prev := -1.0
	for _, w := range []int{8, 32, 128} {
		cfg := DefaultConfig()
		cfg.Window = w
		cfg.WarmupUops = 10000
		st := NewEngine(cfg, trace.New(p)).Run(60000)
		nc := st.Class.FracOfLoads(st.Class.NotConflicting)
		if prev >= 0 && nc > prev+0.02 {
			t.Fatalf("no-conflict share grew with window: %.3f -> %.3f", prev, nc)
		}
		prev = nc
	}
}

func TestMOBStaysBounded(t *testing.T) {
	// The MOB must prune retired stores: after a long run its footprint is
	// bounded by the in-flight window, not the trace length.
	p, _ := trace.TraceByName(trace.GroupSysmark95, "s95a")
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Exclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	e := NewEngine(cfg, trace.New(p))
	e.Run(120000)
	if e.mob.capacity() > cfg.RenamePool {
		t.Fatalf("MOB grew to %d entries (window is %d)", e.mob.capacity(), cfg.RenamePool)
	}
}

func TestPendingCollisionsDrain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = memdep.Opportunistic
	e := NewEngine(cfg, newSliceSource(collisionTrace(100)))
	e.Run(900)
	if len(e.pendingColl) > 4 {
		t.Fatalf("%d unresolved collisions left parked", len(e.pendingColl))
	}
}
