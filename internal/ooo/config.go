// Package ooo implements the simulated machine of paper §3.1: a general
// out-of-order engine with a detailed memory hierarchy, driven by a trace of
// uops. It is where the three prediction techniques plug in: the memory
// ordering scheme and CHT govern when loads may dispatch relative to stores,
// the hit-miss predictor sets the latency dependents are scheduled for, and
// (as an extension) a bank predictor steers loads to cache banks.
package ooo

import (
	"fmt"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/uop"
)

// Config is the machine configuration. DefaultConfig reproduces the baseline
// of §3.1.
type Config struct {
	// FetchWidth is the number of uops fetched and renamed per cycle (6).
	FetchWidth int
	// RetireWidth is the number of uops retired per cycle (6).
	RetireWidth int
	// RenamePool is the renamer register pool / instruction window (128).
	RenamePool int
	// Window is the scheduling-window (reservation station) size; the paper
	// models 8–128 with a 32-entry baseline.
	Window int

	// Execution units (baseline: 2 integer, 2 memory, 1 FP, 2 complex).
	// STDPorts bounds store-data uops per cycle; P6-style machines give the
	// store-data path its own port.
	IntUnits, MemUnits, FPUnits, ComplexUnits, STDPorts int

	// Scheme is the memory reference ordering method.
	Scheme memdep.Scheme
	// CHT is the collision predictor for the Postponing/Inclusive/Exclusive
	// schemes; ignored (may be nil) for the others.
	CHT memdep.Predictor
	// HMP is the hit-miss predictor; nil means the always-hit behavior of
	// current processors.
	HMP hitmiss.Predictor

	// DistanceForwarding enables the §2.1 extension of the Exclusive scheme:
	// the predicted collision distance identifies the colliding store, so a
	// predicted-colliding load takes the store's data directly from the
	// store queue when the STD completes (ForwardLatency cycles) instead of
	// re-reading the cache — "the minimal distance may also provide a simple
	// way of performing load-store pairing, enabling data value forwarding."
	// Only meaningful with Scheme == Exclusive.
	DistanceForwarding bool
	// ForwardLatency is the store-queue forwarding latency (cycles).
	ForwardLatency int

	// Barrier, when set, layers a [Hess95] Store Barrier Cache on top of the
	// ordering scheme: loads may not pass an in-flight store whose barrier
	// counter is set. Pair it with the Opportunistic scheme to model the
	// original design, the prior art §1.1 compares the CHT against.
	Barrier *memdep.StoreBarrier

	// UseTimingHMP wraps the configured HMP with the outstanding-miss-queue
	// timing enhancement of §2.2.
	UseTimingHMP bool

	// Hier and Lat describe the memory hierarchy and its latencies.
	Hier cache.HierarchyConfig
	Lat  cache.Latencies

	// CollisionPenalty is the extra delay on a load that was wrongly ordered
	// with a colliding store (8 cycles, §3.1).
	CollisionPenalty int
	// MissReplayPenalty is the recovery cost when dependents were scheduled
	// for a hit but the load missed (the AM-PH replay).
	MissReplayPenalty int
	// FrontEndRefill is the fetch bubble after a mispredicted branch
	// resolves.
	FrontEndRefill int
	// CollisionReplayUops is the number of dependent uops re-executed (and
	// re-charged to the integer ports) per collision, on top of the memory
	// port the load itself re-consumes. Re-execution bandwidth is one of the
	// costs §1.1 attributes to wrong memory ordering.
	CollisionReplayUops int
	// MissReplayUops is the number of speculatively issued dependents
	// re-charged per AM-PH load (the replay §2.2 describes: "up to 5
	// instructions may have started scheduling/execution").
	MissReplayUops int
	// MissRecoveryBubble stalls dispatch for this many cycles when a load
	// predicted to hit actually misses (AM-PH): the speculatively issued
	// dependents must be squashed and re-scheduled, and "the recovery
	// process is not immediate" (§2.2). A caught miss (AM-PM) costs nothing,
	// which is where hit-miss prediction earns its speedup in Figure 11.
	MissRecoveryBubble int
	// CollisionRecoveryBubble stalls dispatch for this many cycles when a
	// memory-ordering violation is detected: the scheduler must identify and
	// re-sequence the wrongly advanced load's dependence tree, and "the
	// recovery process is not immediate" (§2.2). This is what makes wrong
	// ordering expensive enough that the Opportunistic scheme loses to the
	// predictor-based ones, as in Figure 7.
	CollisionRecoveryBubble int

	// Unit latencies.
	LatIntALU, LatComplex, LatFPU, LatBranch, LatSTA, LatSTD int

	// WarmupUops are simulated before statistics are collected, letting
	// caches and predictors reach steady state.
	WarmupUops int

	// OnLoadRetire, when set, is invoked for every retired load with its
	// observed behavior. Statistical experiments (e.g. the CHT sweep of
	// Figure 9) tap this stream to evaluate many predictor configurations
	// in a single machine pass.
	OnLoadRetire func(LoadEvent)

	// OnMemoryLoad, when set, is invoked when a load goes (or is predicted
	// to go) all the way to memory: once at dispatch when the predictor
	// anticipated the miss (predicted=true), or at miss-detection time when
	// it did not (predicted=false). remaining is the load's outstanding
	// latency at that point. The §2.2 multithreading study
	// (internal/smt) uses this to gate thread switches.
	OnMemoryLoad func(remaining int64, predicted bool)

	// NewPolicy, when set, replaces the built-in speculation policy
	// assembled from Scheme/CHT/HMP/BankPredictor/BankPolicy with a custom
	// SpeculationPolicy — the seam through which a new scheme plugs into the
	// pipeline without touching stage code. The constructor receives the
	// engine-owned hierarchy and miss queue; wrap DefaultPolicy(cfg, deps)
	// to override a single decision.
	NewPolicy func(PolicyDeps) SpeculationPolicy

	// PolicyKey canonically describes NewPolicy's product for the
	// simulation runner's memo cache and engine pool. Setting it is a
	// promise that the constructed policy is deterministic and fully
	// determined by this description plus the rest of the configuration
	// (no hidden state, no ambient inputs); the runner then memoizes and
	// pools such configurations exactly like built-in ones. A config with
	// NewPolicy set and PolicyKey empty runs unmemoized; PolicyKey without
	// NewPolicy is rejected by Validate. Policies that additionally
	// implement PolicyResetter get engine reuse on top of memoization;
	// non-resettable ones fall back to fresh engine builds (visible in the
	// runner's EngineBuilds counter).
	PolicyKey string

	// NaiveSchedule selects the retained reference scheduler: the original
	// per-cycle full-window readiness walk, without the event-driven wakeup
	// lists and idle-cycle fast-forward of ready.go. It produces identical
	// results and exists for verification and debugging (the differential
	// property test runs both and compares Stats); leave it false for
	// performance.
	NaiveSchedule bool

	// LegacyAliasRename pins rename to the original per-engine alias-table
	// producer resolution even when the source publishes the precomputed
	// dependence side-car (see frontend.go). It produces identical results
	// and exists as the differential oracle for the side-car path (the
	// rename differential test runs both and compares Stats); leave it
	// false for performance.
	LegacyAliasRename bool

	// Banking configures the multi-banked L1 extension; BankPolicy selects
	// how the scheduler uses it (see bank.go). Zero value disables banking.
	Banking cache.Banking
	// BankPolicy selects the banked-cache dispatch policy.
	BankPolicy BankPolicy
	// BankPredictor steers loads under BankPredictive/BankSliced (may be
	// nil, in which case every load is unpredicted).
	BankPredictor bankpred.Predictor
	// BankMispredictPenalty is the re-execution cost of a wrong-bank load in
	// the sliced pipeline.
	BankMispredictPenalty int
	// BankDualSchedLatency is the extra load latency of the
	// BankDualScheduled organization's second-level scheduler.
	BankDualSchedLatency int
}

// DefaultConfig returns the baseline machine of §3.1.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  6,
		RetireWidth: 6,
		RenamePool:  128,
		Window:      32,

		IntUnits: 2, MemUnits: 2, FPUnits: 1, ComplexUnits: 2, STDPorts: 2,

		Scheme: memdep.Traditional,

		Hier: cache.DefaultHierarchyConfig(),
		Lat:  cache.DefaultLatencies(),

		CollisionPenalty:  8,
		MissReplayPenalty: 10,
		FrontEndRefill:    3,

		CollisionReplayUops: 4,
		MissReplayUops:      5,

		CollisionRecoveryBubble: 8,
		MissRecoveryBubble:      10,

		BankDualSchedLatency: 2,
		ForwardLatency:       3,

		LatIntALU: 1, LatComplex: 4, LatFPU: 4, LatBranch: 1, LatSTA: 1, LatSTD: 1,

		WarmupUops: 0,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.FetchWidth <= 0 || c.RetireWidth <= 0:
		return fmt.Errorf("ooo: non-positive front-end widths")
	case c.RenamePool <= 0 || c.Window <= 0:
		return fmt.Errorf("ooo: non-positive window sizes")
	case c.Window > c.RenamePool:
		return fmt.Errorf("ooo: scheduling window %d exceeds rename pool %d", c.Window, c.RenamePool)
	case c.IntUnits <= 0 || c.MemUnits <= 0 || c.FPUnits <= 0 || c.ComplexUnits <= 0 || c.STDPorts <= 0:
		return fmt.Errorf("ooo: every execution-unit count must be positive")
	case c.NewPolicy == nil && c.Scheme.UsesCHT() && c.CHT == nil:
		return fmt.Errorf("ooo: scheme %v requires a CHT", c.Scheme)
	case c.NewPolicy == nil && c.PolicyKey != "":
		return fmt.Errorf("ooo: PolicyKey %q set without NewPolicy", c.PolicyKey)
	case c.CollisionPenalty < 0 || c.MissReplayPenalty < 0 || c.FrontEndRefill < 0:
		return fmt.Errorf("ooo: negative penalty")
	case c.MissRecoveryBubble < 0 || c.CollisionRecoveryBubble < 0:
		return fmt.Errorf("ooo: negative recovery bubble")
	case c.CollisionReplayUops < 0 || c.MissReplayUops < 0:
		return fmt.Errorf("ooo: negative replay uop count")
	case c.BankMispredictPenalty < 0 || c.BankDualSchedLatency < 0:
		return fmt.Errorf("ooo: negative bank penalty")
	case c.ForwardLatency < 0:
		return fmt.Errorf("ooo: negative forward latency")
	}
	// L1I carries no timing (traces arrive pre-fetched) but an explicitly
	// configured geometry must still be coherent; the zero value means "not
	// modelled" and is accepted.
	if c.Hier.L1I != (cache.Config{}) {
		if err := c.Hier.L1I.Validate(); err != nil {
			return err
		}
	}
	if err := c.Hier.L1D.Validate(); err != nil {
		return err
	}
	return c.Hier.L2.Validate()
}

// latencyOf returns the fixed execution latency of a non-load uop kind.
func (c Config) latencyOf(k uop.Kind) int {
	switch k {
	case uop.IntALU, uop.Nop:
		return c.LatIntALU
	case uop.Complex:
		return c.LatComplex
	case uop.FPU:
		return c.LatFPU
	case uop.Branch:
		return c.LatBranch
	case uop.STA:
		return c.LatSTA
	case uop.STD:
		return c.LatSTD
	default:
		panic("ooo: load latency is dynamic")
	}
}
