package ooo

import (
	"testing"

	"loadsched/internal/trace"
)

// BenchmarkFetchRename isolates the front-end rename/producer-resolution
// path — the code the dependence side-car rewrites — from the rest of the
// pipeline: it drives fetchRename directly against a shared-recording
// cursor and, whenever the window fills, drains it with a bulk slot flush
// that preserves the rename-time invariants (store watermark, architectural
// producers) without paying for dispatch/execute/retire. The sidecar and
// legacy sub-benchmarks differ only in Config.LegacyAliasRename, so their
// ratio is the producer-resolution speedup in isolation.
func BenchmarkFetchRename(b *testing.B) {
	prof := trace.Profile{Name: "bench-fetch-rename", Seed: 7}
	for _, mode := range []struct {
		name   string
		legacy bool
	}{
		{"sidecar", false},
		{"legacy", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Window, cfg.RenamePool = 1024, 1024
			cfg.LegacyAliasRename = mode.legacy
			e := NewEngine(cfg, trace.Replay(prof))
			if mode.legacy == (e.depSrc != nil) {
				b.Fatalf("legacy=%v but depSrc=%v", mode.legacy, e.depSrc != nil)
			}
			// drain empties the window in bulk. Clearing every slot's flags
			// retires the in-flight population as far as both rename paths can
			// observe (alias-table hits fail their fValid guard; side-car
			// deltas exceed the zeroed count), and sliding the MOB ring
			// forward keeps lastStoreID — the legacy store watermark — at the
			// value in-order retirement would have left. The youngest few
			// records stay live so a store split across the drain (STA before,
			// STD after) still finds its ring record.
			drain := func() {
				r := &e.rob
				for i := range r.flags {
					r.flags[i] = 0
					r.waitHead[i] = -1
					r.nwaiting[i] = 0
				}
				e.head, e.count, e.rsCount = 0, 0, 0
				e.readyList = e.readyList[:0]
				e.wakeQ = e.wakeQ[:0]
				if keep := 64; e.mob.length > keep {
					slide := e.mob.length - keep
					e.mob.start = e.mobIdx(slide)
					e.mob.first += int64(slide)
					e.mob.length = keep
				}
				e.pendingColl = e.pendingColl[:0]
			}
			// The measured loop cycles over a fixed prefix of the shared
			// recording: restarting the stream every epoch keeps any
			// iteration count inside the shared (decoded, side-car-built)
			// chunks instead of spilling into private tail generation, which
			// would swamp rename with generator cost.
			resetStream := func() {
				drain()
				e.setSource(trace.Replay(prof))
				e.mob.first, e.mob.length, e.mob.start = 1, 0, 0
				e.staDoneTo, e.allDoneTo = 1, 1
			}
			const stepsPerEpoch = 32000 // ~192K uops, well inside the cap
			steps := 0
			step := func() {
				steps++
				if steps%stepsPerEpoch == 0 {
					resetStream()
				}
				e.now++
				e.awaitingBranch, e.resumeAt = false, 0
				if e.count+e.cfg.FetchWidth > e.rob.size() {
					drain()
				}
				e.fetchRename()
			}
			// Warm one full epoch (chunk decode + side-car build + engine
			// steady state) before measuring.
			for i := 0; i < stepsPerEpoch; i++ {
				step()
			}
			start := e.renameAge
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			b.StopTimer()
			if renamed := e.renameAge - start; renamed > 0 {
				b.ReportMetric(float64(renamed)/float64(b.N), "uops/op")
			}
		})
	}
}
