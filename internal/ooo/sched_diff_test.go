package ooo

import (
	"fmt"
	"math/rand"
	"testing"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/trace"
)

// Differential property test for the event-driven scheduling core: the
// wakeup-list scheduler plus idle-cycle fast-forward (the default) and the
// retained naive full-window walk (Config.NaiveSchedule) must agree exactly
// — same Stats, same cycle count, same CPI stack — on randomized workloads
// across every ordering scheme, window size and speculation feature.

// diffCase is one randomized machine+workload configuration.
type diffCase struct {
	name  string
	prof  trace.Profile
	build func() Config
}

// diffProfiles returns short synthetic workloads with varied memory
// behavior (collision rates, miss rates, branch bias) under different seeds.
func diffProfiles(rng *rand.Rand, n int) []trace.Profile {
	out := make([]trace.Profile, n)
	for i := range out {
		out[i] = trace.Profile{
			Name:          fmt.Sprintf("diff-%d", i),
			Seed:          rng.Int63(),
			SlowStoreFrac: 0.1 + 0.6*rng.Float64(),
			SlowAddrFrac:  0.1 + 0.7*rng.Float64(),
			LoadFrac:      0.15 + 0.25*rng.Float64(),
			StoreFrac:     0.08 + 0.12*rng.Float64(),
			ChaseFrac:     0.05 + 0.4*rng.Float64(),
			// Small working sets keep miss behavior varied at short lengths.
			ChaseWorkingSet:  16 << uint(10+rng.Intn(3)),
			StreamWorkingSet: 32 << 10,
			BranchTakenBias:  0.3 + 0.5*rng.Float64(),
		}
	}
	return out
}

// diffConfig builds a randomized machine configuration exercising every
// scheduler-relevant feature: all six ordering schemes, window/pool sizes,
// port counts, hit-miss predictors (incl. timing-enhanced), recovery
// bubbles (incl. zero), distance forwarding, store barriers and banking.
func diffConfig(rng *rand.Rand) func() Config {
	seed := rng.Int63()
	return func() Config {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		schemes := memdep.Schemes()
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		if cfg.Scheme.UsesCHT() {
			cfg.CHT = memdep.NewFullCHT(256, 2, 2, true)
		}
		cfg.Window = []int{8, 16, 32, 64}[rng.Intn(4)]
		cfg.RenamePool = cfg.Window * (1 + rng.Intn(3))
		cfg.FetchWidth = 1 + rng.Intn(6)
		cfg.RetireWidth = 1 + rng.Intn(6)
		cfg.IntUnits = 1 + rng.Intn(2)
		cfg.MemUnits = 1 + rng.Intn(2)
		cfg.STDPorts = 1 + rng.Intn(2)
		switch rng.Intn(4) {
		case 1:
			cfg.HMP = hitmiss.NewLocal()
		case 2:
			cfg.HMP = hitmiss.NewChooser()
			cfg.UseTimingHMP = true
		case 3:
			cfg.HMP = &hitmiss.Perfect{}
		}
		cfg.CollisionRecoveryBubble = rng.Intn(12)
		cfg.MissRecoveryBubble = rng.Intn(12)
		cfg.CollisionPenalty = rng.Intn(10)
		cfg.MissReplayPenalty = rng.Intn(12)
		cfg.FrontEndRefill = rng.Intn(5)
		if cfg.Scheme == memdep.Exclusive && rng.Intn(2) == 0 {
			cfg.DistanceForwarding = true
		}
		if rng.Intn(4) == 0 {
			cfg.Barrier = memdep.NewStoreBarrier(256)
		}
		if rng.Intn(3) == 0 {
			cfg.Banking = cache.DefaultBanking()
			cfg.BankPolicy = []BankPolicy{
				BankConventional, BankPredictive, BankSliced, BankDualScheduled,
			}[rng.Intn(4)]
			if cfg.BankPolicy == BankPredictive || cfg.BankPolicy == BankSliced {
				cfg.BankPredictor = bankpred.NewPredictorC()
			}
		}
		return cfg
	}
}

// TestEventSchedulerMatchesNaive is the differential property test pinning
// the event-driven core to the reference walk.
func TestEventSchedulerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1ff))
	profiles := diffProfiles(rng, 6)

	var cases []diffCase
	for i := 0; i < 24; i++ {
		cases = append(cases, diffCase{
			name:  fmt.Sprintf("random-%d", i),
			prof:  profiles[rng.Intn(len(profiles))],
			build: diffConfig(rng),
		})
	}
	// Fixed corner cases the random draw may miss.
	cases = append(cases,
		diffCase{"zero-bubbles", profiles[0], func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Opportunistic
			cfg.CollisionRecoveryBubble = 0
			cfg.MissRecoveryBubble = 0
			cfg.FrontEndRefill = 0
			return cfg
		}},
		diffCase{"tiny-machine", profiles[1], func() Config {
			cfg := DefaultConfig()
			cfg.FetchWidth, cfg.RetireWidth = 1, 1
			cfg.Window, cfg.RenamePool = 8, 8
			cfg.IntUnits, cfg.MemUnits, cfg.FPUnits, cfg.ComplexUnits, cfg.STDPorts = 1, 1, 1, 1, 1
			return cfg
		}},
		diffCase{"perfect-oracle", profiles[2], func() Config {
			cfg := DefaultConfig()
			cfg.Scheme = memdep.Perfect
			cfg.HMP = &hitmiss.Perfect{}
			return cfg
		}},
	)

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const warmup, uops = 1000, 4000
			run := func(naive bool) Stats {
				cfg := tc.build()
				cfg.WarmupUops = warmup
				cfg.NaiveSchedule = naive
				return NewEngine(cfg, trace.New(tc.prof)).Run(uops)
			}
			event, naive := run(false), run(true)
			if event != naive {
				t.Errorf("event-driven and naive schedulers diverged\nevent: %+v\nnaive: %+v", event, naive)
			}
			if got, want := event.CPI.Total(), event.Cycles; got != want {
				t.Errorf("event CPI stack sums to %d, want Cycles=%d", got, want)
			}
		})
	}
}
