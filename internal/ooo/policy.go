package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
)

// SpeculationPolicy is the single seam through which every load-speculation
// decision reaches the pipeline. The engine consults it at three points —
// rename (collision prediction), schedule (ordering and bank steering) and
// execute (latency/level prediction) — and feeds every retired load back
// through TrainRetire. The three predictor families of the paper (memdep
// CHT schemes, hitmiss predictors, bankpred steering) are adapted onto it by
// DefaultPolicy; a new scheme is a new implementation of this interface
// (installed via Config.NewPolicy), not a cycle-loop edit.
//
// Implementations must be deterministic: the engine calls each method at
// fixed points of the cycle and records the answers in figure statistics
// that are required to be byte-identical across runs.
type SpeculationPolicy interface {
	// PredictCollision is consulted once per load at rename time; its
	// Prediction drives the ordering decision and the Figure 1/5/6
	// classification buckets.
	PredictCollision(ip uint64) memdep.Prediction

	// AllowOrdering decides at schedule time whether a ready load may
	// dispatch ahead of the older stores visible in mob. Returning false
	// holds the load in the scheduling window for this cycle.
	AllowOrdering(ld *LoadView, mob MOBView) bool

	// BeginCycle resets any per-cycle steering state (bank port claims)
	// before the scheduler walks the window.
	BeginCycle()

	// AdmitBank steers an ordering-approved load to a cache bank. The
	// decision's Admit=false holds the load; stat events and extra latency
	// ride back in the decision for the engine to apply.
	AdmitBank(ld *LoadView) BankDecision

	// PredictLevel returns the hierarchy level the scheduler assumes the
	// load is serviced from; dependents are scheduled for that latency.
	PredictLevel(ip, addr uint64, now int64) cache.Level

	// Oracle reports that PredictLevel is a perfect predictor which must be
	// granted knowledge of the actual outcome (including in-flight fills the
	// directory probe cannot see). The engine then overrides the prediction
	// with the observed level before any penalty accounting.
	Oracle() bool

	// TrainRetire feeds a retired load's observed behavior back to the
	// policy's predictors.
	TrainRetire(ev TrainEvent)
}

// LoadView is the read-only slice of a load's state a policy decision sees.
// It is handed to policies by pointer purely to keep the per-decision calls
// copy-free; the view is stack-owned by the scheduler and valid only for
// the duration of the call — policies must not retain or mutate it.
type LoadView struct {
	// IP and Addr identify the access.
	IP, Addr uint64
	// IPHash is uop.HashIP(IP), precomputed by the trace layer's dependence
	// side-car (or at rename on the legacy path) so table-indexing policies
	// need not fold the 64-bit IP themselves.
	IPHash uint32
	// Size is the access width in bytes.
	Size int
	// OlderStores is the id of the youngest store older than this load;
	// combined with MOBView.FirstStore it bounds the stores the load could
	// conflict with.
	OlderStores int64
	// Pred is the collision prediction made for this load at rename.
	Pred memdep.Prediction
}

// MOBView is the read-only view of the memory-order buffer an ordering
// decision may consult. Store ids are dense and increase in program order.
type MOBView interface {
	// FirstStore returns the oldest in-flight store id; ids below it have
	// fully retired and cannot conflict.
	FirstStore() int64
	// StoresComplete reports whether every in-window store with id ≤ maxID
	// has dispatched its STA (and, when withSTD, its STD). A dispatched
	// half's completion time is known to the scheduler, so "dispatched" is
	// the point at which the ambiguity disappears.
	StoresComplete(maxID int64, withSTD bool) bool
	// OverlapIncomplete reports whether any in-window store with id ≤ maxID
	// overlaps [addr, addr+size) and has not completed both halves — the
	// oracle disambiguation query.
	OverlapIncomplete(maxID int64, addr uint64, size int) bool
}

// BankDecision is a policy's answer to AdmitBank.
type BankDecision struct {
	// Admit grants the load its cache access this cycle; false holds it in
	// the window without burning an issue slot.
	Admit bool
	// Delay is extra load latency imposed by the banking organization (the
	// dual scheduler's pipeline stage, or a wrong-pipe flush).
	Delay int64
	// Conflict, Mispredict and Duplicate are stat events the engine tallies
	// into Stats.BankConflicts / BankMispredicts / BankDuplicates.
	Conflict, Mispredict, Duplicate bool
}

// TrainEvent is the retire-time feedback for one load.
type TrainEvent struct {
	// IP and Addr identify the access.
	IP, Addr uint64
	// Now is the retire cycle (history-based predictors key on it).
	Now int64
	// Colliding and Distance are the load's actual collision behavior.
	Colliding bool
	Distance  int
	// Hit and Level are the actual data-cache outcome.
	Hit   bool
	Level cache.Level
}

// PolicyResetter is the optional interface a SpeculationPolicy implements to
// support engine reuse: Reset must restore the policy's construction state
// (predictor tables, histories, per-cycle claims) without invalidating the
// PolicyDeps it was built with. Engine.Reset refuses to recycle an engine
// whose policy lacks it. The built-in DefaultPolicy implements it; custom
// policies that carry no state can embed a no-op Reset to opt in.
type PolicyResetter interface {
	Reset()
}

// PolicyDeps are the engine-owned components a policy may consult: the
// simulated hierarchy (for perfect predictors probing cache state) and the
// outstanding-miss queue (for the §2.2 timing enhancement).
type PolicyDeps struct {
	Hier  *cache.Hierarchy
	MissQ *cache.MissQueue
}

// DefaultPolicy adapts the configuration's predictor stack — ordering
// Scheme+CHT, hit-miss predictor, bank predictor+policy — onto the
// SpeculationPolicy seam. It reproduces the paper's §3.1 machine exactly;
// custom policies can wrap it to override a single decision.
func DefaultPolicy(cfg Config, deps PolicyDeps) SpeculationPolicy {
	p := &defaultPolicy{
		scheme: cfg.Scheme,
		cht:    cfg.CHT,
		hmp:    cfg.HMP,
		bank:   newBankState(cfg),
	}
	if p.hmp == nil {
		p.hmp = hitmiss.AlwaysHit{}
	}
	if pp, ok := p.hmp.(*hitmiss.Perfect); ok {
		if pp.Hierarchy == nil {
			pp.Hierarchy = deps.Hier
		}
		p.oracle = true
	}
	if pp, ok := p.hmp.(*hitmiss.PerfectLevel); ok {
		if pp.Hierarchy == nil {
			pp.Hierarchy = deps.Hier
		}
		p.oracle = true
	}
	if cfg.UseTimingHMP {
		p.hmp = hitmiss.NewTiming(p.hmp, deps.MissQ)
	}
	return p
}

// defaultPolicy is the built-in adapter behind DefaultPolicy.
type defaultPolicy struct {
	scheme memdep.Scheme
	cht    memdep.Predictor
	hmp    hitmiss.Predictor
	oracle bool
	bank   *bankState
}

func (p *defaultPolicy) PredictCollision(ip uint64) memdep.Prediction {
	if p.scheme.UsesCHT() {
		return p.cht.Lookup(ip)
	}
	return memdep.Prediction{}
}

// AllowOrdering applies the six schemes of §3.1.
func (p *defaultPolicy) AllowOrdering(ld *LoadView, mob MOBView) bool {
	switch p.scheme {
	case memdep.Traditional:
		return mob.StoresComplete(ld.OlderStores, false)
	case memdep.Opportunistic:
		return true
	case memdep.Postponing:
		if !mob.StoresComplete(ld.OlderStores, false) {
			return false
		}
		if ld.Pred.Colliding {
			return mob.StoresComplete(ld.OlderStores, true)
		}
		return true
	case memdep.Inclusive:
		if ld.Pred.Colliding {
			return mob.StoresComplete(ld.OlderStores, true)
		}
		return true
	case memdep.Exclusive:
		if ld.Pred.Colliding {
			// Wait only for stores at the predicted distance or farther.
			maxID := ld.OlderStores
			if d := ld.Pred.Distance; d != memdep.NoDistance {
				if d < 0 {
					// A negative distance carries no usable store identity;
					// computing maxID from it could overflow int64, so treat
					// it like NoDistance and wait for every older store.
				} else if maxID = ld.OlderStores - int64(d) + 1; maxID < mob.FirstStore()-1 {
					// An over-long distance points below the oldest in-flight
					// store: nothing to wait for. Clamp instead of handing
					// StoresComplete a far-negative (or, after predictor
					// overflow, huge positive) bound to walk.
					maxID = mob.FirstStore() - 1
				}
			}
			return mob.StoresComplete(maxID, true)
		}
		return true
	default: // Perfect
		return !mob.OverlapIncomplete(ld.OlderStores, ld.Addr, ld.Size)
	}
}

func (p *defaultPolicy) BeginCycle() { p.bank.begin() }

func (p *defaultPolicy) AdmitBank(ld *LoadView) BankDecision { return p.bank.admit(ld) }

func (p *defaultPolicy) PredictLevel(ip, addr uint64, now int64) cache.Level {
	if lp, ok := p.hmp.(hitmiss.LevelPredictor); ok {
		return lp.PredictLevel(ip, addr, now)
	}
	if p.hmp.PredictHit(ip, addr, now) {
		return cache.L1
	}
	return cache.L2
}

func (p *defaultPolicy) Oracle() bool { return p.oracle }

// Reset implements PolicyResetter: every predictor table returns to
// construction state in place. The Timing wrapper's queue is the
// engine-owned miss queue, which Engine.Reset also resets — the double
// reset is idempotent.
func (p *defaultPolicy) Reset() {
	if p.cht != nil {
		p.cht.Reset()
	}
	p.hmp.Reset()
	p.bank.reset()
}

func (p *defaultPolicy) TrainRetire(ev TrainEvent) {
	if p.scheme.UsesCHT() {
		p.cht.Record(ev.IP, ev.Colliding, ev.Distance)
	}
	if lp, ok := p.hmp.(hitmiss.LevelPredictor); ok {
		lp.UpdateLevel(ev.IP, ev.Addr, ev.Now, ev.Level)
	} else {
		p.hmp.Update(ev.IP, ev.Addr, ev.Now, ev.Hit)
	}
	p.bank.train(ev.IP, ev.Addr)
}
