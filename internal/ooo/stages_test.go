package ooo

import (
	"testing"

	"loadsched/internal/uop"
)

// Stage-isolation tests: each pins down one stage-file behavior through the
// engine's observable statistics (plus white-box state where the behavior is
// internal, like MOB occupancy).

// TestFrontEndBranchRefill checks the fetch stage's mispredict handling: a
// mispredicted branch must stop fetch until it resolves plus the refill
// bubble, which the CPI stack surfaces as front-end cycles.
func TestFrontEndBranchRefill(t *testing.T) {
	const branches = 50
	var us []uop.UOp
	for i := 0; i < branches; i++ {
		us = append(us, uop.UOp{IP: 0x400000 + uint64(i%16)*4, Kind: uop.Branch, Mispredicted: true})
	}
	cfg := testConfig()
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(branches)
	if st.BranchMispredicts != branches {
		t.Fatalf("BranchMispredicts = %d, want %d", st.BranchMispredicts, branches)
	}
	// Every branch costs at least resolve (LatBranch) + refill cycles of
	// stopped fetch; back-to-back mispredicts serialize completely.
	min := int64(branches * (cfg.LatBranch + cfg.FrontEndRefill))
	if st.Cycles < min {
		t.Fatalf("cycles = %d, want >= %d (mispredicts must serialize fetch)", st.Cycles, min)
	}
	if st.CPI.Frontend == 0 {
		t.Fatalf("CPI.Frontend = 0; refill cycles with an empty window must be attributed to the front end")
	}
}

// TestSchedulerPortUsageResetsPerCycle checks the schedule stage re-arms its
// per-cycle port counters: N independent single-port FPU uops must stream at
// one per cycle, not stall after the first.
func TestSchedulerPortUsageResetsPerCycle(t *testing.T) {
	const n = 400
	var us []uop.UOp
	for i := 0; i < n; i++ {
		us = append(us, uop.UOp{IP: 0x400000 + uint64(i%8)*4, Kind: uop.FPU, Dst: uop.Reg(1 + i%4)})
	}
	cfg := testConfig()
	cfg.FPUnits = 1
	e := NewEngine(cfg, newSliceSource(us))
	st := e.Run(n)
	if st.Uops < n {
		t.Fatalf("retired %d uops, want >= %d", st.Uops, n)
	}
	// One FPU port serves one uop per cycle; if the usage counter were not
	// reset each cycle the run could not finish anywhere near n cycles.
	if st.Cycles < n {
		t.Fatalf("cycles = %d < %d: more than one uop per cycle through a single port", st.Cycles, n)
	}
	if st.Cycles > n+n/4 {
		t.Fatalf("cycles = %d, want ≈%d: port counter not re-armed per cycle?", st.Cycles, n)
	}
	if st.CPI.PortContention == 0 {
		t.Fatalf("CPI.PortContention = 0; a saturated single port must show up in the stack")
	}
}

// TestMOBPrunedAtRetire checks the memory stage drops fully retired stores:
// a long store-heavy stream must keep the MOB bounded by the in-flight
// window, not grow with the trace.
func TestMOBPrunedAtRetire(t *testing.T) {
	src := &storeStream{}
	cfg := testConfig()
	e := NewEngine(cfg, src)
	st := e.Run(6000)
	if st.Stores == 0 {
		t.Fatalf("no stores retired")
	}
	if e.mob.first == 0 {
		t.Fatalf("mob.first = 0: retired stores were never pruned")
	}
	// Only in-flight stores may remain; the rename pool bounds those.
	if e.mob.capacity() > cfg.RenamePool {
		t.Fatalf("MOB holds %d records after %d uops, want <= %d in-flight",
			e.mob.capacity(), st.Uops, cfg.RenamePool)
	}
}

// storeStream emits an endless stream of independent stores with filler ALU
// uops.
type storeStream struct {
	seq int64
	id  int64
}

func (s *storeStream) Next() uop.UOp {
	u := uop.UOp{Seq: s.seq, IP: 0x500000 + uint64(s.seq%32)*4}
	switch s.seq % 4 {
	case 0:
		s.id++
		u.Kind, u.Addr, u.Size, u.StoreID = uop.STA, 0x8000+uint64(s.id%64)*8, 8, s.id
	case 1:
		u.Kind, u.StoreID = uop.STD, s.id
	default:
		u.Kind, u.Dst = uop.IntALU, uop.Reg(2+s.seq%4)
	}
	s.seq++
	return u
}
