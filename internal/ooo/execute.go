package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
)

// Execute stage (loads): performs the cache access of a dispatching load,
// applies the policy's latency speculation (hit-miss / level prediction),
// charges the mis-speculation penalties of §2.2, and detects ordering
// violations against older overlapping stores by walking the MOB's flat
// flag/address arrays.

// executeLoad performs the cache access, hit-miss prediction accounting and
// collision detection for the dispatching load in slot idx.
func (e *Engine) executeLoad(idx int32) {
	r := &e.rob
	r.flags[idx] = r.flags[idx]&^fInRS | fDispatched
	e.rsCount--
	r.dispCycle[idx] = e.now
	addr, size := r.u[idx].Addr, int(r.u[idx].Size)

	// Latency prediction must precede the access (the perfect predictor
	// probes current cache state). Level-capable policies refine the binary
	// hit/miss to the servicing level (§2.2 "for all levels").
	var predLevel cache.Level
	if p := e.defPol; p != nil {
		predLevel = p.PredictLevel(r.u[idx].IP, addr, e.now)
	} else {
		predLevel = e.policy.PredictLevel(r.u[idx].IP, addr, e.now)
	}
	predHit := predLevel == cache.L1
	level := e.hier.Access(addr)
	r.level[idx] = level
	actualHit := level == cache.L1

	actualLat := e.cfg.Lat.Of(level)
	// Dynamic miss: the line's fill is still in flight (the cache model
	// fills eagerly, so the directory says hit, but the data has not
	// arrived). The load waits out the remaining fill time — and only the
	// timing-enhanced predictor can anticipate it (§2.2).
	dynamicMiss := false
	e.missq.Advance(e.now)
	if ready, ok := e.missq.ReadyAt(addr); ok && ready > e.now {
		actualHit = false
		dynamicMiss = true
		if rem := int(ready-e.now) + e.cfg.Lat.L1; rem > actualLat {
			actualLat = rem
		}
	}
	if e.oracle {
		predHit = actualHit
		predLevel = level
		if dynamicMiss {
			predLevel = cache.L2 // any non-L1 value: the oracle is exact below
		}
	}
	if predHit {
		r.flags[idx] |= fPredHit
	}
	if actualHit {
		r.flags[idx] |= fActualHit
	}
	predLat := e.cfg.Lat.Of(predLevel)
	var cacheDone int64
	switch {
	case actualHit && predHit: // AH-PH
		cacheDone = e.now + int64(actualLat)
	case actualHit && !predHit: // AH-PM: wait for the hit indication
		cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
	case !actualHit && predHit: // AM-PH: dependents replay
		cacheDone = e.now + int64(actualLat+e.cfg.MissReplayPenalty)
		e.replayIntDebt += e.cfg.MissReplayUops
		if e.cfg.MissRecoveryBubble > 0 {
			// The miss is discovered when the hit indication arrives; the
			// squash-and-reschedule bubble lands then.
			e.missDetections = append(e.missDetections, e.now+int64(e.cfg.Lat.HitIndication))
		}
	default: // AM-PM: dependents scheduled for the predicted level's latency
		cacheDone = e.now + int64(actualLat)
		switch {
		case dynamicMiss || e.oracle:
			// The MSHR (or the oracle) supplies the exact arrival time.
		case actualLat > predLat:
			// Serviced deeper than scheduled (e.g. predicted L2, went to
			// memory): the dependents scheduled for predLat replay.
			cacheDone += int64(e.cfg.MissReplayPenalty)
		case actualLat < predLat:
			// Serviced shallower than scheduled: dependents sleep until the
			// early indication wakes them.
			cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
		}
	}
	cacheDone += r.bankDelay[idx]
	r.cacheDone[idx] = cacheDone
	if !actualHit {
		e.missq.RecordMiss(addr, e.now+int64(actualLat))
	}

	if e.cfg.OnMemoryLoad != nil && level == cache.Memory && !dynamicMiss {
		if predLevel == cache.Memory {
			// The predictor anticipated the full miss at dispatch.
			e.cfg.OnMemoryLoad(cacheDone-e.now, true)
		} else {
			// Discovered only when the hit indication arrives.
			rem := cacheDone - e.now - int64(e.cfg.Lat.HitIndication)
			if rem < 0 {
				rem = 0
			}
			e.cfg.OnMemoryLoad(rem, false)
		}
	}

	// Collision detection: the youngest older overlapping store whose data
	// is not complete at dispatch forces the paper's collision penalty.
	matchID, matchPos := int64(-1), -1
	for id := r.olderStores[idx]; id >= e.mob.first; id-- {
		pos := e.mobGet(id)
		if pos < 0 || e.mob.flags[pos]&mStaSeen == 0 {
			continue
		}
		if overlap(e.mob.addr[pos], int(e.mob.size[pos]), addr, size) {
			matchID, matchPos = id, pos
			break
		}
	}
	if matchPos >= 0 && e.mob.flags[matchPos]&mStdExec == 0 {
		// Ordering violation: the matching store's data has not even been
		// scheduled. The load is parked until the STD executes; detection of
		// the violation then costs a recovery bubble and replay bandwidth.
		r.flags[idx] |= fCollided
		e.stats.Collisions++
		r.waitStore[idx] = matchID
		e.pendingColl = append(e.pendingColl, idx)
		if e.cfg.Barrier != nil {
			e.mob.flags[matchPos] |= mViolated
			e.cfg.Barrier.RecordViolation(e.mob.ip[matchPos])
		}
		return
	}
	r.flags[idx] |= fDone
	done := cacheDone
	if matchPos >= 0 && e.mob.stdExecCyc[matchPos] >= e.now {
		// The data is in flight with a known completion time: plain
		// store-to-load forwarding, one extra cycle, no penalty.
		if fwd := e.mob.stdExecCyc[matchPos] + 1; fwd > done {
			done = fwd
		}
	}
	if e.cfg.DistanceForwarding && e.cfg.Scheme == memdep.Exclusive &&
		r.pred[idx].Colliding && r.pred[idx].Distance != memdep.NoDistance && matchPos >= 0 {
		// Load-store pairing through the predicted distance: when the
		// predicted distance names the matching store, the load's data comes
		// from the store queue at ForwardLatency instead of the cache.
		if d := int(r.olderStores[idx] - matchID + 1); d == r.pred[idx].Distance {
			fwd := e.mob.stdExecCyc[matchPos] + int64(e.cfg.ForwardLatency)
			if fwd < e.now+int64(e.cfg.ForwardLatency) {
				fwd = e.now + int64(e.cfg.ForwardLatency)
			}
			if fwd < done {
				done = fwd
				e.stats.Forwards++
			}
		}
	}
	// doneCycle is final only after the forwarding adjustments above; the
	// collided path returns early and wakes from finishCollidedLoad instead.
	r.doneCycle[idx] = done
	e.wakeDependents(idx)
}
