package ooo

import (
	"loadsched/internal/cache"
	"loadsched/internal/memdep"
)

// Execute stage (loads): performs the cache access of a dispatching load,
// applies the policy's latency speculation (hit-miss / level prediction),
// charges the mis-speculation penalties of §2.2, and detects ordering
// violations against older overlapping stores.

// executeLoad performs the cache access, hit-miss prediction accounting and
// collision detection for a dispatching load.
func (e *Engine) executeLoad(idx int32, en *entry) {
	en.dispatched = true
	en.inRS = false
	e.rsCount--
	en.dispCycle = e.now

	// Latency prediction must precede the access (the perfect predictor
	// probes current cache state). Level-capable policies refine the binary
	// hit/miss to the servicing level (§2.2 "for all levels").
	predLevel := e.policy.PredictLevel(en.u.IP, en.u.Addr, e.now)
	en.predHit = predLevel == cache.L1
	en.level = e.hier.Access(en.u.Addr)
	en.actualHit = en.level == cache.L1

	actualLat := e.cfg.Lat.Of(en.level)
	// Dynamic miss: the line's fill is still in flight (the cache model
	// fills eagerly, so the directory says hit, but the data has not
	// arrived). The load waits out the remaining fill time — and only the
	// timing-enhanced predictor can anticipate it (§2.2).
	dynamicMiss := false
	e.missq.Advance(e.now)
	if ready, ok := e.missq.ReadyAt(en.u.Addr); ok && ready > e.now {
		en.actualHit = false
		dynamicMiss = true
		if rem := int(ready-e.now) + e.cfg.Lat.L1; rem > actualLat {
			actualLat = rem
		}
	}
	if e.oracle {
		en.predHit = en.actualHit
		predLevel = en.level
		if dynamicMiss {
			predLevel = cache.L2 // any non-L1 value: the oracle is exact below
		}
	}
	predLat := e.cfg.Lat.Of(predLevel)
	switch {
	case en.actualHit && en.predHit: // AH-PH
		en.cacheDone = e.now + int64(actualLat)
	case en.actualHit && !en.predHit: // AH-PM: wait for the hit indication
		en.cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
	case !en.actualHit && en.predHit: // AM-PH: dependents replay
		en.cacheDone = e.now + int64(actualLat+e.cfg.MissReplayPenalty)
		e.replayIntDebt += e.cfg.MissReplayUops
		if e.cfg.MissRecoveryBubble > 0 {
			// The miss is discovered when the hit indication arrives; the
			// squash-and-reschedule bubble lands then.
			e.missDetections = append(e.missDetections, e.now+int64(e.cfg.Lat.HitIndication))
		}
	default: // AM-PM: dependents scheduled for the predicted level's latency
		en.cacheDone = e.now + int64(actualLat)
		switch {
		case dynamicMiss || e.oracle:
			// The MSHR (or the oracle) supplies the exact arrival time.
		case actualLat > predLat:
			// Serviced deeper than scheduled (e.g. predicted L2, went to
			// memory): the dependents scheduled for predLat replay.
			en.cacheDone += int64(e.cfg.MissReplayPenalty)
		case actualLat < predLat:
			// Serviced shallower than scheduled: dependents sleep until the
			// early indication wakes them.
			en.cacheDone = e.now + int64(actualLat+e.cfg.Lat.HitIndication)
		}
	}
	en.cacheDone += en.bankDelay
	if !en.actualHit {
		e.missq.RecordMiss(en.u.Addr, e.now+int64(actualLat))
	}

	if e.cfg.OnMemoryLoad != nil && en.level == cache.Memory && !dynamicMiss {
		if predLevel == cache.Memory {
			// The predictor anticipated the full miss at dispatch.
			e.cfg.OnMemoryLoad(en.cacheDone-e.now, true)
		} else {
			// Discovered only when the hit indication arrives.
			rem := en.cacheDone - e.now - int64(e.cfg.Lat.HitIndication)
			if rem < 0 {
				rem = 0
			}
			e.cfg.OnMemoryLoad(rem, false)
		}
	}

	// Collision detection: the youngest older overlapping store whose data
	// is not complete at dispatch forces the paper's collision penalty.
	var match *storeRec
	for id := en.olderStores; id >= e.mobFirst; id-- {
		rec := e.mobGet(id)
		if rec == nil || !rec.staSeen {
			continue
		}
		if overlap(rec.addr, rec.size, en.u.Addr, int(en.u.Size)) {
			match = rec
			break
		}
	}
	if match != nil && !match.stdExec {
		// Ordering violation: the matching store's data has not even been
		// scheduled. The load is parked until the STD executes; detection of
		// the violation then costs a recovery bubble and replay bandwidth.
		en.collided = true
		e.stats.Collisions++
		en.waitStore = match.id
		e.pendingColl = append(e.pendingColl, idx)
		if e.cfg.Barrier != nil {
			match.violated = true
			e.cfg.Barrier.RecordViolation(match.ip)
		}
		return
	}
	en.done = true
	en.doneCycle = en.cacheDone
	if match != nil && match.stdExecCyc >= e.now {
		// The data is in flight with a known completion time: plain
		// store-to-load forwarding, one extra cycle, no penalty.
		if fwd := match.stdExecCyc + 1; fwd > en.doneCycle {
			en.doneCycle = fwd
		}
	}
	if e.cfg.DistanceForwarding && e.cfg.Scheme == memdep.Exclusive &&
		en.pred.Colliding && en.pred.Distance != memdep.NoDistance && match != nil {
		// Load-store pairing through the predicted distance: when the
		// predicted distance names the matching store, the load's data comes
		// from the store queue at ForwardLatency instead of the cache.
		if d := int(en.olderStores - match.id + 1); d == en.pred.Distance {
			fwd := match.stdExecCyc + int64(e.cfg.ForwardLatency)
			if fwd < e.now+int64(e.cfg.ForwardLatency) {
				fwd = e.now + int64(e.cfg.ForwardLatency)
			}
			if fwd < en.doneCycle {
				en.doneCycle = fwd
				e.stats.Forwards++
			}
		}
	}
	// doneCycle is final only after the forwarding adjustments above; the
	// collided path returns early and wakes from finishCollidedLoad instead.
	e.wakeDependents(en)
}
