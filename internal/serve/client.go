package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"loadsched/internal/results"
)

// Admission-retry policy: a 429 from the server means the bounded queue is
// momentarily full, which a sweep driver should ride out rather than die
// on. The client retries the submission, sleeping the server's Retry-After
// hint (capped — the hint is advisory, and an absurd value must not hang
// the CLI) or an exponential fallback when the hint is absent or garbled.
const (
	clientMaxRetries    = 4
	clientBaseRetryWait = 100 * time.Millisecond
	clientMaxRetryWait  = 2 * time.Second
)

// Client submits jobs to a loadsched serve endpoint and decodes the NDJSON
// stream. The zero value is not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
	// retries/sleep are the admission-retry knobs, fields so tests can
	// count attempts without wall-clock sleeps.
	retries int
	sleep   func(time.Duration)
}

// NewClient returns a client for the server's base URL ("host:port" is
// accepted and normalized to http://host:port). The client streams — record
// callbacks fire as lines arrive, not after the job completes — so no
// request timeout is imposed; cancel via the server or process instead.
func NewClient(base string) *Client {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: base, http: &http.Client{}, retries: clientMaxRetries, sleep: time.Sleep}
}

// retryWait picks the pause before retrying a 429: the server's Retry-After
// seconds when parseable (capped at clientMaxRetryWait), else exponential
// backoff from clientBaseRetryWait.
func retryWait(header string, attempt int) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > clientMaxRetryWait {
			d = clientMaxRetryWait
		}
		return d
	}
	d := clientBaseRetryWait << attempt
	if d > clientMaxRetryWait {
		d = clientMaxRetryWait
	}
	return d
}

// Do submits one job and invokes onRecord for each streamed record in job
// order. It returns the done-line counters on success; a server-reported
// job failure, a mid-stream disconnect, and a submission still rejected
// after the 429 retry budget are all errors.
func (c *Client) Do(job Job, onRecord func(results.Record) error) (*results.RunnerCounters, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return nil, fmt.Errorf("serve client: encoding job: %w", err)
	}
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		resp, err = c.http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("serve client: %w", err)
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.retries {
			break
		}
		hint := resp.Header.Get("Retry-After")
		resp.Body.Close()
		c.sleep(retryWait(hint, attempt))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			return nil, fmt.Errorf("serve client: server busy after %d retries (%s); retry after %ss",
				c.retries, e.Error, resp.Header.Get("Retry-After"))
		}
		return nil, fmt.Errorf("serve client: %s", e.Error)
	}

	// The stream is line-framed JSON; a record line can carry a whole
	// figure's rows, so the scanner buffer is generous.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line Line
		if err := json.Unmarshal(raw, &line); err != nil {
			return nil, fmt.Errorf("serve client: bad stream line: %w", err)
		}
		switch {
		case line.Error != "":
			return nil, fmt.Errorf("serve client: job failed: %s", line.Error)
		case line.Done != nil:
			rc := line.Done.Runner
			return &rc, nil
		case line.Record != nil:
			rec, err := results.DecodeRecord(line.Record)
			if err != nil {
				return nil, fmt.Errorf("serve client: decoding record: %w", err)
			}
			if onRecord != nil {
				if err := onRecord(rec); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve client: reading stream: %w", err)
	}
	return nil, fmt.Errorf("serve client: stream ended without a done line (server died mid-job?)")
}
