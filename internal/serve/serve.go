// Package serve puts an HTTP job API in front of the simulation pool: the
// first step from single-process tool to shared simulation service. A
// loadsched serve process accepts figure/sweep/run jobs as JSON, executes
// them on the process-wide memo cache (optionally backed by the persistent
// result store, so a warm second sweep performs zero simulations), and
// streams results/v1 records back chunk-by-chunk as they are produced.
//
// Protocol (POST /v1/jobs):
//
//	request  — a Job: {"command":"figure","figures":["7"],"options":{...}}
//	response — application/x-ndjson, one Line per line:
//	             {"record": <results/v1 record>}   (repeated, in job order)
//	             {"error": "..."}                  (terminal, on failure)
//	             {"done": {"runner": <counters>}}  (terminal, on success)
//
// Each job runs on its own runner.Pool sharing the server-wide cache, so
// the done-line counters are per-job: a client can prove a warm run
// performed zero simulations. Back-pressure is a bounded admission queue —
// jobs beyond the executing + queued capacity are rejected with 429 and a
// Retry-After header rather than piling onto the process.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"loadsched/internal/experiments"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/trace"
)

// defaultSweepGroup mirrors the CLI's -group default for sweep jobs that
// omit one.
const defaultSweepGroup = trace.GroupSysmarkNT

// Job is one simulation request. Command selects the work: "figure" (the
// Figures list), "all" (every paper figure), "cpistack", "tournament", or
// "sweep" (Sweep kind + Group). Options scale it exactly as the CLI flags
// do; Uops must be positive and Warmup may be -1 for an explicitly empty
// warmup region.
type Job struct {
	Command string          `json:"command"`
	Figures []string        `json:"figures,omitempty"`
	Sweep   string          `json:"sweep,omitempty"`
	Group   string          `json:"group,omitempty"`
	Options results.Options `json:"options"`
}

// Line is one NDJSON message of a job's response stream.
type Line struct {
	// Record is one results/v1 record, in job order.
	Record json.RawMessage `json:"record,omitempty"`
	// Error terminates the stream on failure (it may follow records).
	Error string `json:"error,omitempty"`
	// Done terminates the stream on success.
	Done *Done `json:"done,omitempty"`
}

// Done is the success trailer: per-job pool counters (plus process-wide
// store totals), so clients can verify cache behavior — e.g. that a warm
// sweep simulated nothing.
type Done struct {
	Runner results.RunnerCounters `json:"runner"`
}

// Config parameterizes a Server.
type Config struct {
	// Workers bounds each job's simulation concurrency (0 = GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds simultaneously executing jobs (default 2).
	MaxConcurrent int
	// QueueDepth bounds jobs waiting behind the executing ones (default 8).
	// A job arriving when the queue is full is rejected with 429.
	QueueDepth int
	// Cache is the memo cache jobs share; nil selects the process-wide
	// shared cache. Attach a store to it for persistence.
	Cache *runner.Cache
	// Logf, when non-nil, receives one line per accepted job and per
	// rejection (the operational log).
	Logf func(format string, args ...any)
}

// Server executes jobs over HTTP. Construct with New.
type Server struct {
	cfg Config
	// slots is the admission bound (executing + queued); running bounds
	// actual execution. Both are counting semaphores.
	slots   chan struct{}
	running chan struct{}
	// exec runs one validated job, emitting records as they are produced.
	// It is a field so tests can substitute a controllable executor.
	exec func(j Job, pool *runner.Pool, emit func(results.Record) error) error
}

// New returns a Server for the configuration.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	} else if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	s := &Server{
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		running: make(chan struct{}, cfg.MaxConcurrent),
	}
	s.exec = runJob
	return s
}

// Handler returns the HTTP handler: POST /v1/jobs plus /healthz and
// /v1/status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleStatus reports cache/store occupancy — ops visibility, not part of
// the job protocol.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	cache := s.cache()
	st := struct {
		CacheEntries int          `json:"cache_entries"`
		Queued       int          `json:"queued"`
		Running      int          `json:"running"`
		Store        *storeStatus `json:"store,omitempty"`
	}{
		CacheEntries: cache.Len(),
		Queued:       len(s.slots) - len(s.running),
		Running:      len(s.running),
	}
	if disk := cache.Store(); disk != nil {
		c := disk.Counters()
		st.Store = &storeStatus{Dir: disk.Dir(), Hits: c.Hits, Misses: c.Misses,
			Corrupt: c.Corrupt, Writes: c.Writes, WriteErrors: c.WriteErrors}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

type storeStatus struct {
	Dir         string `json:"dir"`
	Hits        int64  `json:"hits"`
	Misses      int64  `json:"misses"`
	Corrupt     int64  `json:"corrupt"`
	Writes      int64  `json:"writes"`
	WriteErrors int64  `json:"write_errors"`
}

func (s *Server) cache() *runner.Cache {
	if s.cfg.Cache != nil {
		return s.cfg.Cache
	}
	return runner.Shared()
}

// httpError writes a JSON error body with the status code.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a job to /v1/jobs")
		return
	}
	var job Job
	if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job: %v", err)
		return
	}
	if err := Validate(job); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Admission: executing + queued jobs are bounded; beyond that the
	// client is told when to come back rather than silently parked.
	select {
	case s.slots <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.logf("serve: job %s rejected: queue full", job.Command)
		httpError(w, http.StatusTooManyRequests, "job queue full; retry later")
		return
	}
	defer func() { <-s.slots }()
	select {
	case s.running <- struct{}{}:
	case <-r.Context().Done():
		return
	}
	defer func() { <-s.running }()

	s.logf("serve: job %s figures=%v sweep=%s uops=%d start", job.Command, job.Figures, job.Sweep, job.Options.Uops)
	start := time.Now()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(rec results.Record) error {
		raw, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if err := enc.Encode(Line{Record: raw}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	pool := runner.NewIsolated(s.cfg.Workers, s.cache())
	err := s.run(job, pool, emit)
	if err != nil {
		s.logf("serve: job %s failed after %s: %v", job.Command, time.Since(start).Round(time.Millisecond), err)
		enc.Encode(Line{Error: err.Error()})
		return
	}
	c := Counters(pool)
	s.logf("serve: job %s done in %s (%s)", job.Command, time.Since(start).Round(time.Millisecond), c)
	enc.Encode(Line{Done: &Done{Runner: c}})
	if flusher != nil {
		flusher.Flush()
	}
}

// run executes the job's executor with panic isolation: a panicking
// simulation must take down the job, not the server.
func (s *Server) run(job Job, pool *runner.Pool, emit func(results.Record) error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job panicked: %v", p)
		}
	}()
	return s.exec(job, pool, emit)
}

// Validate checks a job before admission: known command, known figures and
// sweep kind, sane options.
func Validate(j Job) error {
	if j.Options.Uops <= 0 {
		return fmt.Errorf("serve: job needs positive options.uops, got %d", j.Options.Uops)
	}
	switch j.Command {
	case "figure":
		if len(j.Figures) == 0 {
			return fmt.Errorf("serve: figure job names no figures")
		}
		for _, f := range j.Figures {
			if !knownFigure(f) {
				return fmt.Errorf("serve: unknown figure %q (want 5-12)", f)
			}
		}
	case "all", "cpistack", "tournament":
	case "sweep":
		ok := false
		for _, k := range experiments.SweepKinds {
			if j.Sweep == k {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("serve: unknown sweep %q (want one of %v)", j.Sweep, experiments.SweepKinds)
		}
	default:
		return fmt.Errorf("serve: unknown command %q (want figure | all | sweep | cpistack | tournament)", j.Command)
	}
	return nil
}

func knownFigure(f string) bool {
	switch f {
	case "5", "6", "7", "8", "9", "10", "11", "12":
		return true
	}
	return false
}

// runJob is the real executor: it resolves the job to experiment runs and
// emits each record as soon as it is complete, which is what lets large
// multi-figure jobs stream instead of buffering.
func runJob(j Job, pool *runner.Pool, emit func(results.Record) error) error {
	o := experiments.Options{
		Uops:           j.Options.Uops,
		Warmup:         j.Options.Warmup,
		TracesPerGroup: j.Options.TracesPerGroup,
		Pool:           pool,
	}
	one := func(id string) error {
		rec, err := experiments.FigureRecord(id, o)
		if err != nil {
			return err
		}
		return emit(rec)
	}
	switch j.Command {
	case "figure":
		for _, f := range j.Figures {
			if err := one("fig" + f); err != nil {
				return err
			}
		}
	case "all":
		for _, id := range experiments.FigureIDs {
			if err := one(id); err != nil {
				return err
			}
		}
	case "cpistack", "tournament":
		return one(j.Command)
	case "sweep":
		group := j.Group
		if group == "" {
			group = defaultSweepGroup
		}
		rec, err := experiments.SweepRecord(j.Sweep, group, o)
		if err != nil {
			return err
		}
		return emit(rec)
	default:
		return fmt.Errorf("serve: unknown command %q", j.Command)
	}
	return nil
}

// Counters snapshots a pool's counters in the results-envelope form, folding
// in the persistent store's totals when the pool's cache is store-backed.
// This is the one conversion both the CLI's -v path and the serve done-line
// use.
func Counters(pool *runner.Pool) results.RunnerCounters {
	c := pool.Counters()
	rc := results.RunnerCounters{
		Jobs: c.Jobs, Simulated: c.Simulated, MemoHits: c.MemoHits,
		DiskHits: c.DiskHits, Coalesced: c.Coalesced, Uncached: c.Uncached,
		MapTasks:     c.MapTasks,
		EngineBuilds: c.EngineBuilds, EngineReuses: c.EngineReuses,
		SimMillis:    float64(c.SimTime) / float64(time.Millisecond),
		CacheEntries: pool.CacheLen(),
	}
	if dc, ok := pool.DiskCounters(); ok {
		rc.StoreHits = dc.Hits
		rc.StoreWrites = dc.Writes
		rc.StoreCorrupt = dc.Corrupt
	}
	return rc
}
