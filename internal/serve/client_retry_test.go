package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loadsched/internal/results"
)

// fake429Server answers the first busy submissions with 429 + Retry-After,
// then streams a done line.
func fake429Server(t *testing.T, busy int32, retryAfter string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= busy {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "job queue full; retry later"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = json.NewEncoder(w).Encode(Line{Done: &Done{Runner: results.RunnerCounters{Jobs: 1}}})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestClientRetries429 pins the admission-retry behavior: a momentarily
// full queue is ridden out (sleeping the Retry-After hint) and the job
// succeeds on a later attempt.
func TestClientRetries429(t *testing.T) {
	srv, calls := fake429Server(t, 2, "1")
	c := NewClient(srv.URL)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	rc, err := c.Do(Job{Command: "figure", Figures: []string{"5"}}, nil)
	if err != nil {
		t.Fatalf("Do after transient 429s: %v", err)
	}
	if rc == nil || rc.Jobs != 1 {
		t.Fatalf("done counters not returned: %+v", rc)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d submissions, want 3 (2 rejected + 1 accepted)", got)
	}
	if len(slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d != time.Second {
			t.Errorf("sleep %d = %v, want the 1s Retry-After hint", i, d)
		}
	}
}

// TestClientRetryBudgetExhausted pins the failure mode: a persistently
// full server still errors, after exactly the retry budget.
func TestClientRetryBudgetExhausted(t *testing.T) {
	srv, calls := fake429Server(t, 1<<30, "0")
	c := NewClient(srv.URL)
	c.sleep = func(time.Duration) {}
	_, err := c.Do(Job{Command: "figure", Figures: []string{"5"}}, nil)
	if err == nil {
		t.Fatal("Do succeeded against a permanently busy server")
	}
	if !strings.Contains(err.Error(), "server busy") {
		t.Fatalf("error should report the busy rejection, got: %v", err)
	}
	if got := calls.Load(); got != clientMaxRetries+1 {
		t.Fatalf("server saw %d submissions, want %d (initial + %d retries)",
			got, clientMaxRetries+1, clientMaxRetries)
	}
}

// TestRetryWait pins the backoff arithmetic: hints are honored but capped,
// and garbled hints fall back to bounded exponential waits.
func TestRetryWait(t *testing.T) {
	cases := []struct {
		header  string
		attempt int
		want    time.Duration
	}{
		{"1", 0, time.Second},
		{"0", 3, 0},
		{"3600", 0, clientMaxRetryWait},      // absurd hint capped
		{"", 0, clientBaseRetryWait},         // no hint: exponential
		{"soon", 1, 2 * clientBaseRetryWait}, // garbled hint: exponential
		{"-5", 9, clientMaxRetryWait},        // negative hint: exponential, capped
	}
	for _, tc := range cases {
		if got := retryWait(tc.header, tc.attempt); got != tc.want {
			t.Errorf("retryWait(%q, %d) = %v, want %v", tc.header, tc.attempt, got, tc.want)
		}
	}
}
