package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"loadsched/internal/experiments"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/store"
)

// tinyOptions keeps test jobs fast: one trace per group, short runs.
func tinyOptions() results.Options {
	return results.Options{Uops: 6_000, Warmup: 1_500, TracesPerGroup: 1}
}

// newTestServer returns a server over an isolated cache (so tests do not
// pollute the process-wide one) and its httptest host.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = runner.NewCache()
	}
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func TestServeStreamMatchesDirectComputation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	client := NewClient(hs.URL)

	var got []results.Record
	rc, err := client.Do(Job{Command: "sweep", Sweep: "chtsize", Options: tinyOptions()},
		func(rec results.Record) error { got = append(got, rec); return nil })
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("streamed %d records, want 1", len(got))
	}
	if rc == nil || rc.Simulated == 0 {
		t.Fatalf("done counters %+v: cold job should have simulated", rc)
	}

	// The same job computed directly must marshal byte-identically to the
	// streamed record: that equivalence is what makes -remote transparent.
	o := experiments.Options{Uops: 6_000, Warmup: 1_500, TracesPerGroup: 1,
		Pool: runner.NewIsolated(2, runner.NewCache())}
	want, err := experiments.SweepRecord("chtsize", defaultSweepGroup, o)
	if err != nil {
		t.Fatalf("SweepRecord: %v", err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got[0])
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("streamed record differs from direct computation:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

func TestServeSecondJobZeroSimulations(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	client := NewClient(hs.URL)
	job := Job{Command: "figure", Figures: []string{"7"}, Options: tinyOptions()}

	cold, err := client.Do(job, nil)
	if err != nil {
		t.Fatalf("cold job: %v", err)
	}
	if cold.Simulated == 0 {
		t.Fatalf("cold job simulated nothing: %+v", cold)
	}
	warm, err := client.Do(job, nil)
	if err != nil {
		t.Fatalf("warm job: %v", err)
	}
	// Per-job pools over the shared cache: the warm job's own counters must
	// show every simulation avoided.
	if warm.Simulated != 0 {
		t.Fatalf("warm job simulated %d jobs, want 0 (%+v)", warm.Simulated, warm)
	}
	if warm.MemoHits == 0 {
		t.Fatalf("warm job reports no memo hits: %+v", warm)
	}
}

func TestServeRestartOnSameStoreServesDiskHits(t *testing.T) {
	dir := t.TempDir()
	job := Job{Command: "sweep", Sweep: "chtsize", Options: tinyOptions()}

	openCache := func() *runner.Cache {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		c := runner.NewCache()
		c.SetStore(st)
		return c
	}

	// First server lifetime: cold, populates the store.
	_, hs1 := newTestServer(t, Config{Workers: 2, Cache: openCache()})
	var run1 bytes.Buffer
	rc1, err := NewClient(hs1.URL).Do(job, func(rec results.Record) error {
		raw, _ := json.Marshal(rec)
		run1.Write(raw)
		return nil
	})
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if rc1.Simulated == 0 || rc1.StoreWrites == 0 {
		t.Fatalf("first run should simulate and write the store: %+v", rc1)
	}
	hs1.Close()

	// Second server lifetime: fresh process state, same store directory.
	// Everything must come off disk — zero simulations — and the streamed
	// records must be byte-identical.
	_, hs2 := newTestServer(t, Config{Workers: 2, Cache: openCache()})
	var run2 bytes.Buffer
	rc2, err := NewClient(hs2.URL).Do(job, func(rec results.Record) error {
		raw, _ := json.Marshal(rec)
		run2.Write(raw)
		return nil
	})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if rc2.Simulated != 0 {
		t.Fatalf("restarted server simulated %d jobs, want 0 (%+v)", rc2.Simulated, rc2)
	}
	if rc2.DiskHits == 0 {
		t.Fatalf("restarted server reports no disk hits: %+v", rc2)
	}
	if !bytes.Equal(run1.Bytes(), run2.Bytes()) {
		t.Fatalf("warm-store records differ from cold records")
	}
}

func TestServeQueueFullRejectsWith429(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, MaxConcurrent: 1, QueueDepth: 1})
	// Controllable executor: jobs block until released, no simulation runs.
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	s.exec = func(j Job, pool *runner.Pool, emit func(results.Record) error) error {
		started <- struct{}{}
		<-block
		return nil
	}

	jobBody, _ := json.Marshal(Job{Command: "cpistack", Options: tinyOptions()})

	// First job executes (wait until its executor runs), second occupies the
	// single queue slot, third must bounce. The two in-flight submissions
	// run on goroutines because accepted jobs stream: the POST does not
	// return until the executor finishes.
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(jobBody))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	defer wg.Wait()
	defer close(block) // unblock the held jobs, THEN wait for the goroutines
	<-started          // the executing job is inside exec; the other is queued or arriving

	// The queue slot may take a moment to be claimed; poll until the third
	// submission is rejected.
	var resp *http.Response
	for i := 0; ; i++ {
		var err error
		resp, err = http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(jobBody))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		resp.Body.Close()
		if i > 100 {
			t.Fatalf("third job was never rejected")
		}
	}
	defer resp.Body.Close()
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("429 response missing Retry-After header")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("429 body should carry a JSON error, got err=%v body=%q", err, e.Error)
	}
}

func TestServeValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{"command":`},
		{"unknown command", `{"command":"meltdown","options":{"uops":1000}}`},
		{"zero uops", `{"command":"all","options":{"uops":0}}`},
		{"figure without figures", `{"command":"figure","options":{"uops":1000}}`},
		{"unknown figure", `{"command":"figure","figures":["99"],"options":{"uops":1000}}`},
		{"unknown sweep", `{"command":"sweep","sweep":"entropy","options":{"uops":1000}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("post: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

func TestServeJobPanicBecomesStreamError(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	s.exec = func(j Job, pool *runner.Pool, emit func(results.Record) error) error {
		panic("engine exploded")
	}
	_, err := NewClient(hs.URL).Do(Job{Command: "all", Options: tinyOptions()}, nil)
	if err == nil || !strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("want a stream error carrying the panic, got %v", err)
	}
}

func TestServeStatusAndHealth(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cache := runner.NewCache()
	cache.SetStore(st)
	_, hs := newTestServer(t, Config{Cache: cache})

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v status=%v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(hs.URL + "/v1/status")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var got struct {
		CacheEntries int `json:"cache_entries"`
		Store        *struct {
			Dir string `json:"dir"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if got.Store == nil || got.Store.Dir != dir {
		t.Fatalf("status store = %+v, want dir %s", got.Store, dir)
	}
}

func TestCountersFoldsStoreTotals(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cache := runner.NewCache()
	cache.SetStore(st)
	pool := runner.NewIsolated(1, cache)
	rc := Counters(pool)
	if rc.Jobs != 0 {
		t.Fatalf("fresh pool counters: %+v", rc)
	}
	// Store totals surface even before any job runs (all zero here) without
	// tripping the conversion.
	if rc.StoreHits != 0 || rc.StoreWrites != 0 {
		t.Fatalf("unexpected store totals: %+v", rc)
	}
	if s := fmt.Sprint(rc); s == "" {
		t.Fatal("counters should stringify")
	}
}
