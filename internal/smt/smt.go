// Package smt models the multithreading use of hit-miss prediction that
// §2.2 proposes: "the prediction may be used to govern a thread switch if a
// load is predicted to miss the L2 cache, and suffer the large latency of
// accessing main memory."
//
// The model is coarse-grained (switch-on-event) multithreading: one thread
// owns the pipeline at a time; when its load goes to main memory the
// machine switches to another ready thread, hiding the memory latency. The
// quality of the switch decision is exactly what the HMP buys:
//
//   - With a level predictor, the miss is known at dispatch and the switch
//     happens immediately.
//   - Without one (today's always-hit scheduling), the miss is discovered
//     only when the hit indication arrives, so the pipeline has already
//     wasted the detection window speculating down the stalled thread.
//
// Each thread is a full ooo.Engine over its own trace; the coordinator
// interleaves their cycles and charges a fixed switch penalty. Throughput
// is aggregate retired uops per global cycle.
package smt

import (
	"fmt"

	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// Config parameterizes the multithreaded machine.
type Config struct {
	// Threads are the per-thread workloads.
	Threads []trace.Profile
	// SwitchPenalty is the pipeline bubble charged on every thread switch.
	SwitchPenalty int
	// UseLevelHMP gates switches on a two-stage level predictor; false
	// models the always-hit machine that discovers misses late.
	UseLevelHMP bool
	// PerfectHMP uses the oracle level predictor instead of the two-stage
	// one (upper bound).
	PerfectHMP bool
	// Engine is the per-thread machine configuration template; nil takes the
	// §3.1 defaults. The struct is copied per thread, but any predictor
	// *instances* set in it (CHT, HMP, Barrier, BankPredictor) would be
	// shared across threads — leave them nil and let the per-thread fields
	// below choose predictors, or accept the aliasing deliberately.
	Engine *ooo.Config
}

// Result is the multithreaded run's outcome.
type Result struct {
	// Cycles is the global cycle count.
	Cycles int64
	// Uops is the aggregate retired uop count.
	Uops uint64
	// Switches counts thread switches taken.
	Switches uint64
	// SwitchesPredicted counts switches triggered at dispatch by the
	// predictor (vs. late, at miss detection).
	SwitchesPredicted uint64
}

// IPC returns aggregate uops per global cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Uops) / float64(r.Cycles)
}

type thread struct {
	engine *ooo.Engine
	// blockedFor counts remaining global cycles of the thread's memory
	// stall (0 = runnable).
	blockedFor int64
	// pendingBlock is set by the engine callback during a step.
	pendingBlock int64
	predicted    bool
}

// Machine is the coarse-grained multithreaded coordinator.
type Machine struct {
	cfg     Config
	threads []*thread
	active  int
}

// New builds the machine; it panics on an empty thread set (static
// configuration, as elsewhere in this codebase).
func New(cfg Config) *Machine {
	if len(cfg.Threads) == 0 {
		panic("smt: no threads")
	}
	if cfg.SwitchPenalty == 0 {
		cfg.SwitchPenalty = 4
	}
	m := &Machine{cfg: cfg}
	for _, p := range cfg.Threads {
		th := &thread{}
		ecfg := ooo.DefaultConfig()
		if cfg.Engine != nil {
			ecfg = *cfg.Engine
		}
		if ecfg.Scheme.UsesCHT() && ecfg.CHT == nil {
			ecfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		}
		switch {
		case cfg.PerfectHMP:
			ecfg.HMP = &hitmiss.PerfectLevel{}
		case cfg.UseLevelHMP:
			ecfg.HMP = hitmiss.NewTwoStage()
		}
		ecfg.OnMemoryLoad = func(remaining int64, predicted bool) {
			// Gate: without an HMP only detected (late) misses can trigger a
			// switch; with one, predicted misses switch immediately.
			if th.pendingBlock == 0 && remaining > th.pendingBlock {
				th.pendingBlock = remaining
				th.predicted = predicted
			}
		}
		th.engine = ooo.NewEngine(ecfg, trace.New(p))
		m.threads = append(m.threads, th)
	}
	return m
}

// Run executes until totalUops retire across all threads.
func (m *Machine) Run(totalUops int) Result {
	var res Result
	target := uint64(totalUops)
	guard := int64(totalUops)*1000 + 1_000_000
	for res.Uops < target {
		res.Cycles++
		if res.Cycles > guard {
			panic(fmt.Sprintf("smt: livelock at %d uops", res.Uops))
		}
		// Age the blocked threads.
		for _, th := range m.threads {
			if th.blockedFor > 0 {
				th.blockedFor--
			}
		}
		act := m.threads[m.active]
		if act.blockedFor > 0 {
			// The active thread is stalled; switching pays off only when the
			// remaining stall exceeds the switch bubble.
			if act.blockedFor > int64(m.cfg.SwitchPenalty) {
				if next := m.nextRunnable(); next >= 0 && next != m.active {
					m.switchTo(next, &res)
				}
			}
			continue // idle cycle (switch bubble or no runnable thread)
		}
		before := act.engine.Retired()
		act.engine.StepCycle()
		res.Uops += act.engine.Retired() - before
		if act.pendingBlock > 0 {
			// A memory load was signalled this cycle: block the thread and
			// switch away if the stall outlasts the bubble and anyone else
			// can run.
			act.blockedFor = act.pendingBlock
			act.pendingBlock = 0
			if act.blockedFor > int64(m.cfg.SwitchPenalty) {
				if next := m.nextRunnable(); next >= 0 && next != m.active {
					m.switchTo(next, &res)
					if act.predicted {
						res.SwitchesPredicted++
					}
				}
			}
		}
	}
	return res
}

// nextRunnable returns a runnable thread index (round-robin from the active
// one), or -1.
func (m *Machine) nextRunnable() int {
	n := len(m.threads)
	for i := 1; i <= n; i++ {
		c := (m.active + i) % n
		if m.threads[c].blockedFor == 0 {
			return c
		}
	}
	return -1
}

// switchTo charges the switch penalty by blocking the incoming thread for
// the bubble, then activates it.
func (m *Machine) switchTo(next int, res *Result) {
	res.Switches++
	m.threads[next].blockedFor += int64(m.cfg.SwitchPenalty)
	m.active = next
}
