package smt

import (
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// missHeavy returns TPC profiles — large irregular working sets with many
// memory-level misses, the workload §2.2's thread-switching idea targets.
func missHeavy(n int) []trace.Profile {
	g, _ := trace.GroupByName(trace.GroupTPC)
	var out []trace.Profile
	for i := 0; i < n; i++ {
		p := g.Traces[i%len(g.Traces)]
		p.Seed += int64(i) * 1237 // distinct streams per thread
		out = append(out, p)
	}
	return out
}

func engineCfg() *ooo.Config {
	cfg := ooo.DefaultConfig()
	cfg.Scheme = memdep.Perfect
	return &cfg
}

func TestSingleThreadMatchesEngine(t *testing.T) {
	ps := missHeavy(1)
	m := New(Config{Threads: ps, Engine: engineCfg()})
	res := m.Run(40000)
	if res.Switches != 0 {
		t.Fatalf("one thread cannot switch, got %d", res.Switches)
	}
	if res.IPC() <= 0 {
		t.Fatal("no progress")
	}
}

func TestTwoThreadsHideMemoryLatency(t *testing.T) {
	single := New(Config{Threads: missHeavy(1), Engine: engineCfg(), UseLevelHMP: true}).Run(40000)
	dual := New(Config{Threads: missHeavy(2), Engine: engineCfg(), UseLevelHMP: true}).Run(40000)
	if dual.Switches == 0 {
		t.Fatal("miss-heavy dual-thread run never switched")
	}
	if dual.IPC() <= single.IPC() {
		t.Fatalf("two threads (%.3f IPC) should outrun one (%.3f) by hiding memory latency",
			dual.IPC(), single.IPC())
	}
}

func TestPredictedSwitchesBeatDetectedOnes(t *testing.T) {
	// The §2.2 claim: gating switches on the predictor switches earlier
	// (at dispatch) than waiting for the miss indication.
	base := New(Config{Threads: missHeavy(2), Engine: engineCfg()}).Run(60000)
	hmp := New(Config{Threads: missHeavy(2), Engine: engineCfg(), UseLevelHMP: true}).Run(60000)
	perfect := New(Config{Threads: missHeavy(2), Engine: engineCfg(), PerfectHMP: true}).Run(60000)
	if hmp.SwitchesPredicted == 0 {
		t.Fatal("level predictor triggered no predicted switches")
	}
	if base.SwitchesPredicted != 0 {
		t.Fatalf("always-hit machine cannot predict switches, got %d", base.SwitchesPredicted)
	}
	if perfect.IPC() < base.IPC()*0.98 {
		t.Fatalf("perfect-gated switching (%.3f) should not lose to detection-gated (%.3f)",
			perfect.IPC(), base.IPC())
	}
}

func TestSwitchPenaltyMatters(t *testing.T) {
	cheap := New(Config{Threads: missHeavy(2), Engine: engineCfg(), UseLevelHMP: true, SwitchPenalty: 1}).Run(40000)
	dear := New(Config{Threads: missHeavy(2), Engine: engineCfg(), UseLevelHMP: true, SwitchPenalty: 40}).Run(40000)
	if dear.IPC() > cheap.IPC() {
		t.Fatalf("a 40-cycle switch bubble (%.3f) cannot beat a 1-cycle one (%.3f)",
			dear.IPC(), cheap.IPC())
	}
}

func TestFourThreads(t *testing.T) {
	res := New(Config{Threads: missHeavy(4), Engine: engineCfg(), UseLevelHMP: true}).Run(60000)
	if res.IPC() <= 0 || res.Switches == 0 {
		t.Fatalf("four-thread run degenerate: %+v", res)
	}
}

func TestNoThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{})
}

func TestResultIPCZeroCycles(t *testing.T) {
	var r Result
	if r.IPC() != 0 {
		t.Fatal("zero-cycle IPC must be 0")
	}
}
