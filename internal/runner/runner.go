// Package runner executes independent trace-driven simulations on a bounded
// worker pool with deterministic, order-preserving result collection, plus a
// keyed memoization cache so identical (machine, trace, length) runs — most
// notably the Traditional baseline shared by every figure and sweep — are
// simulated exactly once per process.
//
// Determinism: each simulation is a pure function of its Job (the engine,
// trace generator and predictors share no mutable state across instances),
// so executing a job list on 1 worker or N workers yields identical result
// slices; only wall-clock time changes. The experiment drivers build their
// tables from those slices in job order, which keeps rendered output
// byte-identical across -j settings.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"loadsched/internal/ooo"
	"loadsched/internal/store"
	"loadsched/internal/trace"
)

// Job is one simulation request: a machine configuration, a synthetic
// workload, and the measured/warmup lengths.
type Job struct {
	// Build constructs the machine configuration. It is called exactly once
	// per executed job and MUST return a freshly built Config: predictors
	// (CHT, HMP, bank predictor) are stateful and trained during the run,
	// and the engine itself patches oracle predictors in place, so a Config
	// may never be shared between executions.
	Build func() ooo.Config
	// Profile is the synthetic workload to simulate.
	Profile trace.Profile
	// Uops is the measured length; Warmup is the unmeasured prefix. The
	// runner owns Config.WarmupUops — any value set by Build is overwritten
	// with Warmup.
	Uops, Warmup int
}

// Pool is a bounded-concurrency simulation executor. The zero value is not
// usable; construct with New or NewIsolated.
type Pool struct {
	workers int
	cache   *Cache
	engines enginePool
	m       metrics
}

// enginePool recycles built engines across a pool's jobs, keyed by the
// canonical machine description (the same key memoization uses, so a free
// engine is guaranteed to match the requesting configuration exactly —
// including the warmup length, which the description's WarmupUops field
// pins). Only describable configurations are pooled: describability rules
// out observation callbacks whose closures an engine could go stale
// against, and covers custom policies only when a PolicyKey names them.
// Reuse additionally requires the policy to implement PolicyResetter (the
// built-in one does; described custom policies opt in); a parked engine
// whose policy refuses Reset is discarded and the job builds fresh, which
// the EngineBuilds counter surfaces. Free lists are bounded by worker
// concurrency — an engine is either running a job or parked here.
type enginePool struct {
	mu   sync.Mutex
	free map[string][]*ooo.Engine
}

// take pops a parked engine for the machine description, or returns nil.
func (ep *enginePool) take(desc string) *ooo.Engine {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	l := ep.free[desc]
	if len(l) == 0 {
		return nil
	}
	e := l[len(l)-1]
	ep.free[desc] = l[:len(l)-1]
	return e
}

// put parks a finished engine for reuse.
func (ep *enginePool) put(desc string, e *ooo.Engine) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.free == nil {
		ep.free = map[string][]*ooo.Engine{}
	}
	ep.free[desc] = append(ep.free[desc], e)
}

// Counters is a point-in-time snapshot of a pool's observability counters:
// what the pool actually did, as opposed to what it was asked for. Jobs
// splits into Simulated + MemoHits + DiskHits + Coalesced (Uncached jobs
// are the subset of Simulated that ran outside the cache);
// SimTime is wall time spent inside simulations summed over jobs, so it
// exceeds elapsed time when workers overlap. The counts other than Jobs and
// MapTasks can vary with timing (a concurrent duplicate lands as MemoHits
// or Coalesced depending on who wins the race), which is why they surface
// only through explicit observability paths (-v), never in deterministic
// output.
type Counters struct {
	// Jobs is the number of simulations requested through Do.
	Jobs int64
	// Simulated jobs actually ran an engine (memo misses plus Uncached).
	Simulated int64
	// MemoHits were served from a completed in-memory cache entry.
	MemoHits int64
	// DiskHits were served from the persistent result store (no simulation
	// ran in this or any process; see Cache.SetStore).
	DiskHits int64
	// Coalesced waited on an identical in-flight simulation (single-flight).
	Coalesced int64
	// Uncached ran outside the cache: non-describable configs.
	Uncached int64
	// MapTasks counts fan-out units dispatched through Map. Run submits one
	// task per batch unit (a group of same-workload jobs stepped in
	// lockstep), so for Run job lists this counts units, not jobs.
	MapTasks int64
	// EngineBuilds and EngineReuses split the executed describable
	// simulations by whether a fresh engine was constructed or a pooled one
	// was Reset and reused.
	EngineBuilds, EngineReuses int64
	// SimTime is wall time spent inside simulations, summed over Do calls
	// and batch units; it exceeds elapsed time when workers overlap.
	SimTime time.Duration
}

// metrics is the pool-internal atomic counter block behind Counters.
type metrics struct {
	jobs, simulated, memoHits, diskHits, coalesced, uncached, mapTasks, simNanos atomic.Int64
	engineBuilds, engineReuses                                                   atomic.Int64
}

// Counters snapshots the pool's observability counters.
func (p *Pool) Counters() Counters {
	return Counters{
		Jobs:         p.m.jobs.Load(),
		Simulated:    p.m.simulated.Load(),
		MemoHits:     p.m.memoHits.Load(),
		DiskHits:     p.m.diskHits.Load(),
		Coalesced:    p.m.coalesced.Load(),
		Uncached:     p.m.uncached.Load(),
		MapTasks:     p.m.mapTasks.Load(),
		EngineBuilds: p.m.engineBuilds.Load(),
		EngineReuses: p.m.engineReuses.Load(),
		SimTime:      time.Duration(p.m.simNanos.Load()),
	}
}

// CacheLen reports the pool's memo cache size (0 for cache-free pools).
func (p *Pool) CacheLen() int {
	if p.cache == nil {
		return 0
	}
	return p.cache.Len()
}

// DiskCounters snapshots the persistent store's counters when the pool's
// cache is store-backed. The numbers are store-wide (the store is typically
// shared process-wide), unlike the per-pool Counters.
func (p *Pool) DiskCounters() (store.Counters, bool) {
	if p.cache == nil {
		return store.Counters{}, false
	}
	s := p.cache.Store()
	if s == nil {
		return store.Counters{}, false
	}
	return s.Counters(), true
}

// New returns a pool with the given concurrency bound that memoizes on the
// process-wide shared cache. workers <= 0 selects GOMAXPROCS; workers == 1
// executes jobs serially on the calling goroutine.
func New(workers int) *Pool {
	return &Pool{workers: workers, cache: shared}
}

// NewIsolated returns a pool with its own cache (or none, when cache is
// nil — every job then simulates from scratch). Benchmarks and determinism
// tests use isolated pools so runs do not share results through the
// process-wide cache.
func NewIsolated(workers int, cache *Cache) *Pool {
	return &Pool{workers: workers, cache: cache}
}

// Workers resolves the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Do executes one job, through the memoization cache when the job's
// configuration is describable (see ConfigKey). Describable jobs also run on
// pooled engines — the machine description doubles as the reuse key — so the
// steady-state cost of one more simulation is CPU, not allocation.
func (p *Pool) Do(j Job) ooo.Stats {
	p.m.jobs.Add(1)
	cfg := j.Build()
	cfg.WarmupUops = j.Warmup
	desc, describable := ConfigKey(cfg)
	run := func() ooo.Stats {
		start := time.Now()
		var st ooo.Stats
		if describable {
			st = p.runPooled(desc, cfg, j)
		} else {
			st = ooo.NewEngine(cfg, trace.Replay(j.Profile)).Run(j.Uops)
		}
		p.m.simNanos.Add(time.Since(start).Nanoseconds())
		p.m.simulated.Add(1)
		return st
	}
	if p.cache == nil || !describable {
		p.m.uncached.Add(1)
		return run()
	}
	st, how := p.cache.do(Key{Machine: desc, Profile: j.Profile, Uops: j.Uops, Warmup: j.Warmup}, run)
	switch how {
	case memoHit:
		p.m.memoHits.Add(1)
	case diskHit:
		p.m.diskHits.Add(1)
	case coalesced:
		p.m.coalesced.Add(1)
	}
	return st
}

// runPooled executes one describable simulation on a recycled engine when
// one is parked for the machine description, building (and afterwards
// parking) a fresh one otherwise. The Reset-refused fallback is real for
// described custom policies that do not implement PolicyResetter: every
// such job builds a fresh engine, visible as EngineBuilds with zero
// EngineReuses for that configuration.
func (p *Pool) runPooled(desc string, cfg ooo.Config, j Job) ooo.Stats {
	e := p.engines.take(desc)
	if e == nil || !e.Reset(trace.Replay(j.Profile)) {
		e = ooo.NewEngine(cfg, trace.Replay(j.Profile))
		p.m.engineBuilds.Add(1)
	} else {
		p.m.engineReuses.Add(1)
	}
	st := e.Run(j.Uops)
	p.engines.put(desc, e)
	return st
}

// Run executes every job and returns their statistics in job order,
// regardless of completion order. Identical jobs (equal keys) are simulated
// once and share the result. Run delegates to RunBatch, so jobs sharing a
// workload execute in lockstep over the shared recording; results are
// identical to submitting each job through Do.
func (p *Pool) Run(jobs []Job) []ooo.Stats {
	return p.RunBatch(jobs)
}

// Map evaluates fn(0..n-1) on the pool's workers and returns the results in
// index order. It is the generic fan-out primitive behind Pool.Run, used
// directly by experiments whose unit of work is not a plain engine run
// (event-stream capture, statistical predictor replays).
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	p.m.mapTasks.Add(int64(n))
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
