// Package runner executes independent trace-driven simulations on a bounded
// worker pool with deterministic, order-preserving result collection, plus a
// keyed memoization cache so identical (machine, trace, length) runs — most
// notably the Traditional baseline shared by every figure and sweep — are
// simulated exactly once per process.
//
// Determinism: each simulation is a pure function of its Job (the engine,
// trace generator and predictors share no mutable state across instances),
// so executing a job list on 1 worker or N workers yields identical result
// slices; only wall-clock time changes. The experiment drivers build their
// tables from those slices in job order, which keeps rendered output
// byte-identical across -j settings.
package runner

import (
	"runtime"
	"sync"

	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// Job is one simulation request: a machine configuration, a synthetic
// workload, and the measured/warmup lengths.
type Job struct {
	// Build constructs the machine configuration. It is called exactly once
	// per executed job and MUST return a freshly built Config: predictors
	// (CHT, HMP, bank predictor) are stateful and trained during the run,
	// and the engine itself patches oracle predictors in place, so a Config
	// may never be shared between executions.
	Build func() ooo.Config
	// Profile is the synthetic workload to simulate.
	Profile trace.Profile
	// Uops is the measured length; Warmup is the unmeasured prefix. The
	// runner owns Config.WarmupUops — any value set by Build is overwritten
	// with Warmup.
	Uops, Warmup int
}

// simulate runs the job's simulation from scratch.
func (j Job) simulate() ooo.Stats {
	cfg := j.Build()
	cfg.WarmupUops = j.Warmup
	return ooo.NewEngine(cfg, trace.New(j.Profile)).Run(j.Uops)
}

// Pool is a bounded-concurrency simulation executor. The zero value is not
// usable; construct with New or NewIsolated.
type Pool struct {
	workers int
	cache   *Cache
}

// New returns a pool with the given concurrency bound that memoizes on the
// process-wide shared cache. workers <= 0 selects GOMAXPROCS; workers == 1
// executes jobs serially on the calling goroutine.
func New(workers int) *Pool {
	return &Pool{workers: workers, cache: shared}
}

// NewIsolated returns a pool with its own cache (or none, when cache is
// nil — every job then simulates from scratch). Benchmarks and determinism
// tests use isolated pools so runs do not share results through the
// process-wide cache.
func NewIsolated(workers int, cache *Cache) *Pool {
	return &Pool{workers: workers, cache: cache}
}

// Workers resolves the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p.workers > 0 {
		return p.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Do executes one job, through the memoization cache when the job's
// configuration is describable (see ConfigKey).
func (p *Pool) Do(j Job) ooo.Stats {
	cfg := j.Build()
	cfg.WarmupUops = j.Warmup
	run := func() ooo.Stats { return ooo.NewEngine(cfg, trace.New(j.Profile)).Run(j.Uops) }
	if p.cache == nil {
		return run()
	}
	desc, ok := ConfigKey(cfg)
	if !ok {
		return run()
	}
	return p.cache.Do(Key{Machine: desc, Profile: j.Profile, Uops: j.Uops, Warmup: j.Warmup}, run)
}

// Run executes every job and returns their statistics in job order,
// regardless of completion order. Identical jobs (equal keys) are simulated
// once and share the result.
func (p *Pool) Run(jobs []Job) []ooo.Stats {
	return Map(p, len(jobs), func(i int) ooo.Stats { return p.Do(jobs[i]) })
}

// Map evaluates fn(0..n-1) on the pool's workers and returns the results in
// index order. It is the generic fan-out primitive behind Pool.Run, used
// directly by experiments whose unit of work is not a plain engine run
// (event-stream capture, statistical predictor replays).
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	w := p.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
