package runner

import (
	"fmt"
	"sync"

	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// Key identifies one simulation for memoization: a canonical machine
// description plus the full workload identity. trace.Profile is a pure value
// struct (equal profiles generate identical traces), so the key is
// comparable and collision-free by construction.
type Key struct {
	Machine      string
	Profile      trace.Profile
	Uops, Warmup int
}

// Describer is implemented by predictors whose behavior is fully determined
// by their construction parameters. Describe returns a canonical description
// used in memo keys, or "" when this particular instance carries state the
// description cannot capture (which disables memoization for configs holding
// it).
type Describer interface {
	Describe() string
}

// ConfigKey derives the canonical machine description of a configuration,
// or ok=false when the configuration is not memoizable: it carries
// observation callbacks (whose side effects a cached result would not
// replay), a predictor that does not describe itself, or a custom policy
// without a PolicyKey.
func ConfigKey(cfg ooo.Config) (key string, ok bool) {
	if cfg.OnLoadRetire != nil || cfg.OnMemoryLoad != nil {
		return "", false
	}
	// A custom speculation policy participates in memoization only when the
	// configuration names its product canonically via PolicyKey — the
	// author's promise that the constructed policy is deterministic and
	// fully determined by that description plus the rest of the config.
	// Undescribed custom policies run uncached, as before.
	policy := "-"
	if cfg.NewPolicy != nil {
		if cfg.PolicyKey == "" {
			return "", false
		}
		policy = cfg.PolicyKey
	}
	cht, ok := describe(cfg.CHT == nil, cfg.CHT)
	if !ok {
		return "", false
	}
	hmp, ok := describe(cfg.HMP == nil, cfg.HMP)
	if !ok {
		return "", false
	}
	bar, ok := describe(cfg.Barrier == nil, cfg.Barrier)
	if !ok {
		return "", false
	}
	bp, ok := describe(cfg.BankPredictor == nil, cfg.BankPredictor)
	if !ok {
		return "", false
	}
	// Scalar fields (including the Hier/Lat/Banking value structs) print
	// canonically once the interface, pointer and callback fields are
	// cleared; new scalar knobs are picked up automatically.
	flat := cfg
	flat.CHT, flat.HMP, flat.Barrier, flat.BankPredictor = nil, nil, nil, nil
	flat.OnLoadRetire, flat.OnMemoryLoad, flat.NewPolicy = nil, nil, nil
	flat.PolicyKey = "" // carried by the policy= component below
	return fmt.Sprintf("%+v|cht=%s|hmp=%s|barrier=%s|bank=%s|policy=%s",
		flat, cht, hmp, bar, bp, policy), true
}

// describe resolves one pluggable component to its canonical description.
func describe(isNil bool, x any) (string, bool) {
	if isNil {
		return "-", true
	}
	d, ok := x.(Describer)
	if !ok {
		return "", false
	}
	s := d.Describe()
	return s, s != ""
}

// Cache memoizes simulation results by Key with single-flight semantics:
// concurrent requests for the same key block until the first computes it.
// It is safe for concurrent use and only ever grows; entries are small
// (ooo.Stats values), and the number of distinct (machine, trace, length)
// combinations a process explores bounds its size.
type Cache struct {
	mu sync.Mutex
	m  map[Key]*cacheEntry
}

type cacheEntry struct {
	done  chan struct{}
	stats ooo.Stats
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[Key]*cacheEntry{}} }

// shared is the process-wide cache used by pools from New.
var shared = NewCache()

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// outcome classifies how Cache.do served a request, for the pool's
// observability counters.
type outcome int

const (
	// computed: this caller ran the simulation (a memo miss).
	computed outcome = iota
	// memoHit: a completed entry was already present.
	memoHit
	// coalesced: an identical computation was in flight; this caller
	// blocked on it instead of duplicating the work (single-flight).
	coalesced
)

// Do returns the memoized result for k, computing it with compute on the
// first request. compute runs at most once per key for the cache's lifetime.
func (c *Cache) Do(k Key, compute func() ooo.Stats) ooo.Stats {
	st, _ := c.do(k, compute)
	return st
}

// do is Do plus the outcome classification.
func (c *Cache) do(k Key, compute func() ooo.Stats) (ooo.Stats, outcome) {
	c.mu.Lock()
	e, hit := c.m[k]
	if hit {
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.stats, memoHit
		default:
		}
		<-e.done
		return e.stats, coalesced
	}
	e = &cacheEntry{done: make(chan struct{})}
	c.m[k] = e
	c.mu.Unlock()
	defer close(e.done)
	e.stats = compute()
	return e.stats, computed
}

// Len reports the number of memoized simulations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
