package runner

import (
	"encoding/json"
	"fmt"
	"sync"

	"loadsched/internal/ooo"
	"loadsched/internal/store"
	"loadsched/internal/trace"
)

// Key identifies one simulation for memoization: a canonical machine
// description plus the full workload identity. trace.Profile is a pure value
// struct (equal profiles generate identical traces), so the key is
// comparable and collision-free by construction.
type Key struct {
	Machine      string
	Profile      trace.Profile
	Uops, Warmup int
}

// Describer is implemented by predictors whose behavior is fully determined
// by their construction parameters. Describe returns a canonical description
// used in memo keys, or "" when this particular instance carries state the
// description cannot capture (which disables memoization for configs holding
// it).
type Describer interface {
	Describe() string
}

// ConfigKey derives the canonical machine description of a configuration,
// or ok=false when the configuration is not memoizable: it carries
// observation callbacks (whose side effects a cached result would not
// replay), a predictor that does not describe itself, or a custom policy
// without a PolicyKey.
func ConfigKey(cfg ooo.Config) (key string, ok bool) {
	if cfg.OnLoadRetire != nil || cfg.OnMemoryLoad != nil {
		return "", false
	}
	// A custom speculation policy participates in memoization only when the
	// configuration names its product canonically via PolicyKey — the
	// author's promise that the constructed policy is deterministic and
	// fully determined by that description plus the rest of the config.
	// Undescribed custom policies run uncached, as before.
	policy := "-"
	if cfg.NewPolicy != nil {
		if cfg.PolicyKey == "" {
			return "", false
		}
		policy = cfg.PolicyKey
	}
	cht, ok := describe(cfg.CHT == nil, cfg.CHT)
	if !ok {
		return "", false
	}
	hmp, ok := describe(cfg.HMP == nil, cfg.HMP)
	if !ok {
		return "", false
	}
	bar, ok := describe(cfg.Barrier == nil, cfg.Barrier)
	if !ok {
		return "", false
	}
	bp, ok := describe(cfg.BankPredictor == nil, cfg.BankPredictor)
	if !ok {
		return "", false
	}
	// Scalar fields (including the Hier/Lat/Banking value structs) print
	// canonically once the interface, pointer and callback fields are
	// cleared; new scalar knobs are picked up automatically.
	flat := cfg
	flat.CHT, flat.HMP, flat.Barrier, flat.BankPredictor = nil, nil, nil, nil
	flat.OnLoadRetire, flat.OnMemoryLoad, flat.NewPolicy = nil, nil, nil
	flat.PolicyKey = "" // carried by the policy= component below
	return fmt.Sprintf("%+v|cht=%s|hmp=%s|barrier=%s|bank=%s|policy=%s",
		flat, cht, hmp, bar, bp, policy), true
}

// describe resolves one pluggable component to its canonical description.
func describe(isNil bool, x any) (string, bool) {
	if isNil {
		return "-", true
	}
	d, ok := x.(Describer)
	if !ok {
		return "", false
	}
	s := d.Describe()
	return s, s != ""
}

// Cache memoizes simulation results by Key with single-flight semantics:
// concurrent requests for the same key block until the first computes it.
// It is safe for concurrent use and only ever grows; entries are small
// (ooo.Stats values), and the number of distinct (machine, trace, length)
// combinations a process explores bounds its size.
//
// A cache can additionally be backed by a persistent second level (see
// SetStore): lookups then go memory → disk → compute, with single-flight
// preserved across all three — concurrent requests for one key perform at
// most one disk read or one simulation between them, and a computed result
// is written through so later processes start warm.
type Cache struct {
	mu   sync.Mutex
	m    map[Key]*cacheEntry
	disk *store.Store
}

// cacheEntry is one key's slot. done closes when the in-flight resolution
// finishes; valid then says whether stats carries a real result. An entry
// that resolves invalid (the compute panicked) is removed from the map
// before done closes, so waiters and later requests retry instead of
// consuming zero-value statistics.
type cacheEntry struct {
	done  chan struct{}
	stats ooo.Stats
	valid bool
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[Key]*cacheEntry{}} }

// SetStore attaches a persistent second-level store (nil detaches). Results
// already memoized in memory are not flushed; new computations write
// through. Call it before the cache is in use — typically right after
// NewCache, or at CLI startup for the shared cache.
func (c *Cache) SetStore(s *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disk = s
}

// Store returns the attached second-level store, or nil.
func (c *Cache) Store() *store.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// shared is the process-wide cache used by pools from New.
var shared = NewCache()

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// outcome classifies how Cache.do served a request, for the pool's
// observability counters.
type outcome int

const (
	// computed: this caller ran the simulation (a miss on every level).
	computed outcome = iota
	// memoHit: a completed in-memory entry was already present.
	memoHit
	// coalesced: an identical computation was in flight; this caller
	// blocked on it instead of duplicating the work (single-flight).
	coalesced
	// diskHit: the persistent store served the result; no simulation ran.
	diskHit
)

// Do returns the memoized result for k, computing it with compute on the
// first request. compute runs at most once per key for the cache's lifetime
// — unless it panics, in which case the key's slot is released and a later
// (or concurrently waiting) request runs compute again.
func (c *Cache) Do(k Key, compute func() ooo.Stats) ooo.Stats {
	st, _ := c.do(k, compute)
	return st
}

// do is Do plus the outcome classification, built on acquire: claim the
// key's slot, compute, release. If compute panics, the deferred abandoning
// release removes the entry from the map BEFORE closing done — waiters
// observe an invalid entry and retry (the first of them re-runs compute)
// while this caller's panic propagates.
func (c *Cache) do(k Key, compute func() ooo.Stats) (ooo.Stats, outcome) {
	st, how, release := c.acquire(k)
	if release == nil {
		return st, how
	}
	published := false
	defer func() {
		if !published {
			release(ooo.Stats{}, false)
		}
	}()
	st = compute()
	published = true
	release(st, true)
	return st, computed
}

// acquire claims or resolves the slot for k. Three outcomes:
//
//   - release == nil, how ∈ {memoHit, coalesced, diskHit}: the result is
//     already resolved (possibly after blocking on an in-flight owner) and
//     returned directly.
//   - release != nil: this caller now OWNS the key. It must run the
//     simulation itself and call release exactly once — release(st, true)
//     publishes the result (write-through to disk included) and wakes
//     waiters; release(_, false) abandons the claim, deleting the entry
//     before closing done so waiters compete to re-claim instead of
//     consuming zero values. The returned how is computed.
//
// Callers that may hold several claims at once (the batch runner steps many
// owned engines in lockstep) MUST NOT acquire one key twice from the same
// goroutine: the second acquire would block on the first claim's unpublished
// entry forever. Dedup by Key before acquiring.
func (c *Cache) acquire(k Key) (ooo.Stats, outcome, func(ooo.Stats, bool)) {
	for {
		c.mu.Lock()
		if e, hit := c.m[k]; hit {
			c.mu.Unlock()
			how := coalesced
			select {
			case <-e.done:
				how = memoHit
			default:
				<-e.done
			}
			if !e.valid {
				// The in-flight resolution was abandoned and the slot
				// released; compete to claim it again rather than serving
				// zero values.
				continue
			}
			return e.stats, how, nil
		}
		e := &cacheEntry{done: make(chan struct{})}
		c.m[k] = e
		disk := c.disk
		c.mu.Unlock()
		if disk != nil {
			if st, ok := diskGet(disk, k); ok {
				e.stats, e.valid = st, true
				close(e.done)
				return st, diskHit, nil
			}
		}
		release := func(st ooo.Stats, ok bool) {
			if ok {
				e.stats, e.valid = st, true
			}
			if !e.valid {
				c.mu.Lock()
				delete(c.m, k)
				c.mu.Unlock()
			} else if disk != nil && ok {
				// Best effort: a failed write-through degrades persistence,
				// not correctness, and the store's WriteErrors counter
				// surfaces it.
				diskPut(disk, k, st)
			}
			close(e.done)
		}
		return ooo.Stats{}, computed, release
	}
}

// storeKeyVersion names the serialized-statistics schema inside store keys.
// Bumping it (when ooo.Stats changes shape) orphans old entries as misses
// instead of decoding them into the wrong fields.
const storeKeyVersion = "loadsched.stats/v1"

// StoreKey derives the canonical persistent-store key for a memo key: the
// stats schema version plus the printed key struct. Key.Machine is already
// the canonical machine description and trace.Profile is a pure value
// struct, so the printed form is deterministic across processes.
func StoreKey(k Key) string {
	return fmt.Sprintf("%s|%+v", storeKeyVersion, k)
}

// diskGet loads and decodes one persisted result. Undecodable payloads are
// treated as misses (the frame was intact, so this only happens if a future
// schema slipped past the key version — recompute, then overwrite).
func diskGet(s *store.Store, k Key) (ooo.Stats, bool) {
	payload, ok := s.Get(StoreKey(k))
	if !ok {
		return ooo.Stats{}, false
	}
	var st ooo.Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return ooo.Stats{}, false
	}
	return st, true
}

// diskPut persists one computed result (best effort).
func diskPut(s *store.Store, k Key, st ooo.Stats) {
	payload, err := json.Marshal(st)
	if err != nil {
		return
	}
	s.Put(StoreKey(k), payload)
}

// Len reports the number of memoized simulations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
