package runner

import (
	"sync"
	"sync/atomic"
	"testing"

	"loadsched/internal/cache"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

func testProfile(t *testing.T) trace.Profile {
	t.Helper()
	p, ok := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	if !ok {
		t.Fatal("SysmarkNT/ex missing")
	}
	return p
}

func testJob(t *testing.T, scheme memdep.Scheme) Job {
	return Job{
		Build: func() ooo.Config {
			cfg := ooo.DefaultConfig()
			cfg.Scheme = scheme
			if scheme.UsesCHT() {
				cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			}
			return cfg
		},
		Profile: testProfile(t),
		Uops:    5_000,
		Warmup:  1_000,
	}
}

func TestMapOrderPreserving(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := NewIsolated(workers, nil)
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(NewIsolated(4, nil), 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("Map over zero items returned %v", got)
	}
}

// TestCacheSingleFlight hammers one key from many goroutines and requires
// the compute function to run exactly once, with every caller seeing its
// result. Run under -race this also proves the cache is race-free.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	k := Key{Machine: "m", Uops: 1, Warmup: 0}
	var calls atomic.Int32
	want := ooo.Stats{Cycles: 42, Uops: 99}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := c.Do(k, func() ooo.Stats {
				calls.Add(1)
				return want
			})
			if got != want {
				t.Errorf("got %+v, want %+v", got, want)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheDistinctKeys checks keys do not collide across the fields.
func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache()
	keys := []Key{
		{Machine: "a", Uops: 1},
		{Machine: "b", Uops: 1},
		{Machine: "a", Uops: 2},
		{Machine: "a", Uops: 1, Warmup: 7},
	}
	for i, k := range keys {
		c.Do(k, func() ooo.Stats { return ooo.Stats{Cycles: int64(i)} })
	}
	if c.Len() != len(keys) {
		t.Fatalf("cache holds %d entries, want %d", c.Len(), len(keys))
	}
	for i, k := range keys {
		got := c.Do(k, func() ooo.Stats { t.Error("recompute"); return ooo.Stats{} })
		if got.Cycles != int64(i) {
			t.Fatalf("key %d returned cycles %d", i, got.Cycles)
		}
	}
}

// TestPoolMemoizesIdenticalJobs submits the same describable job many times
// concurrently and requires exactly one simulation.
func TestPoolMemoizesIdenticalJobs(t *testing.T) {
	var builds atomic.Int32
	p := NewIsolated(8, NewCache())
	job := testJob(t, memdep.Traditional)
	inner := job.Build
	job.Build = func() ooo.Config { builds.Add(1); return inner() }
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = job
	}
	sts := p.Run(jobs)
	for i := 1; i < len(sts); i++ {
		if sts[i] != sts[0] {
			t.Fatalf("job %d diverged from job 0", i)
		}
	}
	// Build runs once per Do for keying; the single-flight cache must keep
	// the simulation count at one (asserted via cache length below), so
	// Build never runs more than once per submitted job.
	if n := builds.Load(); n > int32(len(jobs)) {
		t.Fatalf("Build called %d times for %d identical jobs", n, len(jobs))
	}
	if p.cache.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", p.cache.Len())
	}
}

// TestPoolDeterministicAcrossWorkers runs the same job list serially and on
// many workers (isolated caches) and requires identical result slices.
func TestPoolDeterministicAcrossWorkers(t *testing.T) {
	schemes := memdep.Schemes()
	mkJobs := func() []Job {
		jobs := make([]Job, 0, len(schemes)*2)
		for _, s := range schemes {
			jobs = append(jobs, testJob(t, s), testJob(t, s))
		}
		return jobs
	}
	serial := NewIsolated(1, NewCache()).Run(mkJobs())
	for _, workers := range []int{2, 8} {
		par := NewIsolated(workers, NewCache()).Run(mkJobs())
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: job %d diverged", workers, i)
			}
		}
	}
}

// TestConfigKeyCallbacksNotMemoizable: jobs observing per-load events must
// never share memoized results.
func TestConfigKeyCallbacksNotMemoizable(t *testing.T) {
	cfg := ooo.DefaultConfig()
	if _, ok := ConfigKey(cfg); !ok {
		t.Fatal("default config must be memoizable")
	}
	cb := cfg
	cb.OnLoadRetire = func(ooo.LoadEvent) {}
	if _, ok := ConfigKey(cb); ok {
		t.Fatal("OnLoadRetire config must not be memoizable")
	}
	cb = cfg
	cb.OnMemoryLoad = func(int64, bool) {}
	if _, ok := ConfigKey(cb); ok {
		t.Fatal("OnMemoryLoad config must not be memoizable")
	}
	cb = cfg
	cb.NewPolicy = func(ooo.PolicyDeps) ooo.SpeculationPolicy { return nil }
	if _, ok := ConfigKey(cb); ok {
		t.Fatal("undescribed custom-policy config must not be memoizable")
	}
}

// TestConfigKeyDescribedPolicy: a custom policy named by PolicyKey is
// memoizable, keys apart from the built-in policy and from other policy
// keys, and the description survives the scalar flattening.
func TestConfigKeyDescribedPolicy(t *testing.T) {
	cfg := ooo.DefaultConfig()
	base, ok := ConfigKey(cfg)
	if !ok {
		t.Fatal("default config must be memoizable")
	}
	mk := func(key string) string {
		c := cfg
		c.NewPolicy = func(d ooo.PolicyDeps) ooo.SpeculationPolicy {
			return ooo.DefaultPolicy(c, d)
		}
		c.PolicyKey = key
		k, ok := ConfigKey(c)
		if !ok {
			t.Fatalf("described custom policy %q must be memoizable", key)
		}
		return k
	}
	a, b := mk("zoo/a"), mk("zoo/b")
	if a == base || b == base {
		t.Fatal("described custom policy shares a key with the built-in policy")
	}
	if a == b {
		t.Fatal("distinct policy keys collide")
	}
}

// TestConfigKeyDistinguishesMachines: distinct machines must key apart, and
// the key must reflect predictor geometry, not just presence.
func TestConfigKeyDistinguishesMachines(t *testing.T) {
	mk := func(mut func(*ooo.Config)) string {
		cfg := ooo.DefaultConfig()
		mut(&cfg)
		k, ok := ConfigKey(cfg)
		if !ok {
			t.Fatalf("config not memoizable: %+v", cfg)
		}
		return k
	}
	seen := map[string]string{}
	for name, mut := range map[string]func(*ooo.Config){
		"default":  func(c *ooo.Config) {},
		"window64": func(c *ooo.Config) { c.Window = 64 },
		"excl2k": func(c *ooo.Config) {
			c.Scheme = memdep.Exclusive
			c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
		},
		"excl512": func(c *ooo.Config) {
			c.Scheme = memdep.Exclusive
			c.CHT = memdep.NewFullCHT(512, 4, 2, true)
		},
		"hmp": func(c *ooo.Config) { c.HMP = hitmiss.NewLocal() },
	} {
		k := mk(mut)
		if prev, dup := seen[k]; dup {
			t.Fatalf("configs %q and %q share key %q", name, prev, k)
		}
		seen[k] = name
	}
}

// TestConfigKeyPresetPerfectHMPNotMemoizable: a Perfect HMP with a pre-wired
// hierarchy is external state the key cannot name.
func TestConfigKeyPresetPerfectHMPNotMemoizable(t *testing.T) {
	cfg := ooo.DefaultConfig()
	cfg.HMP = &hitmiss.Perfect{}
	if _, ok := ConfigKey(cfg); !ok {
		t.Fatal("fresh Perfect HMP must be memoizable")
	}
	pre := &hitmiss.Perfect{Hierarchy: cache.NewHierarchy(cache.DefaultHierarchyConfig())}
	cfg.HMP = pre
	if _, ok := ConfigKey(cfg); ok {
		t.Fatal("pre-wired Perfect HMP must not be memoizable")
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := NewIsolated(3, nil).Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("GOMAXPROCS pool resolved %d workers", w)
	}
}

func TestSharedCacheProcessWide(t *testing.T) {
	a, b := New(1), New(4)
	if a.cache != b.cache {
		t.Fatal("New pools must share the process-wide cache")
	}
	if a.cache == nil {
		t.Fatal("shared cache is nil")
	}
}

// guard: Key must stay comparable (it is a map key).
var _ = map[Key]bool{}

// TestPoolCounters pins the observability contract: identical jobs on one
// pool yield Jobs submissions but one simulation, with the remainder split
// between memo hits and coalesces; an uncacheable job lands in Uncached.
func TestPoolCounters(t *testing.T) {
	p := NewIsolated(4, NewCache())
	job := testJob(t, memdep.Traditional)

	const n = 6
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = job
	}
	p.Run(jobs)

	c := p.Counters()
	if c.Jobs != n {
		t.Fatalf("Jobs = %d, want %d", c.Jobs, n)
	}
	if c.Simulated != 1 {
		t.Fatalf("Simulated = %d, want 1 (memoized)", c.Simulated)
	}
	// The 5 non-simulating submissions split between memo hits and
	// single-flight coalesces depending on scheduling; the total is fixed.
	if c.MemoHits+c.Coalesced != n-1 {
		t.Fatalf("MemoHits(%d)+Coalesced(%d) = %d, want %d",
			c.MemoHits, c.Coalesced, c.MemoHits+c.Coalesced, n-1)
	}
	if c.Uncached != 0 {
		t.Fatalf("Uncached = %d, want 0", c.Uncached)
	}
	// Pool.Run batches same-workload jobs into lockstep units of
	// ceil(jobs/workers) and dispatches one Map task per unit: 6 identical
	// jobs on 4 workers form 3 units of 2.
	if c.MapTasks != 3 {
		t.Fatalf("MapTasks = %d, want 3", c.MapTasks)
	}
	if c.SimTime <= 0 {
		t.Fatalf("SimTime = %v, want > 0", c.SimTime)
	}
	if p.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", p.CacheLen())
	}

	// A callback-carrying job is not describable and must run uncached.
	uj := job
	uj.Build = func() ooo.Config {
		cfg := job.Build()
		cfg.OnLoadRetire = func(ooo.LoadEvent) {}
		return cfg
	}
	p.Do(uj)
	c = p.Counters()
	if c.Uncached != 1 {
		t.Fatalf("Uncached = %d after callback job, want 1", c.Uncached)
	}
	if c.Jobs != n+1 || c.Simulated != 2 {
		t.Fatalf("after callback job: Jobs = %d, Simulated = %d, want %d and 2",
			c.Jobs, c.Simulated, n+1)
	}
}

// resettablePolicy is a described custom policy that opts into engine
// reuse. Interface embedding does not promote the concrete Reset, so the
// wrapper forwards it explicitly.
type resettablePolicy struct{ ooo.SpeculationPolicy }

func (p resettablePolicy) Reset() { p.SpeculationPolicy.(ooo.PolicyResetter).Reset() }

// opaquePolicy is a described custom policy without Reset: memoizable, but
// every execution must build a fresh engine.
type opaquePolicy struct{ ooo.SpeculationPolicy }

// customJob builds a Job whose config installs a wrapped DefaultPolicy under
// the given PolicyKey.
func customJob(t *testing.T, p trace.Profile, key string, resettable bool) Job {
	t.Helper()
	return Job{
		Build: func() ooo.Config {
			cfg := ooo.DefaultConfig()
			base := cfg
			cfg.PolicyKey = key
			cfg.NewPolicy = func(d ooo.PolicyDeps) ooo.SpeculationPolicy {
				inner := ooo.DefaultPolicy(base, d)
				if resettable {
					return resettablePolicy{inner}
				}
				return opaquePolicy{inner}
			}
			return cfg
		},
		Profile: p,
		Uops:    5_000,
		Warmup:  1_000,
	}
}

// TestPoolCustomPolicyMemoized: the ISSUE 6 regression — submitting the same
// described custom-policy config twice runs one simulation and lands the
// second in MemoHits, and its result matches the equivalent built-in config.
func TestPoolCustomPolicyMemoized(t *testing.T) {
	p := NewIsolated(1, NewCache())
	job := customJob(t, testProfile(t), "wrap/default", true)
	first := p.Do(job)
	second := p.Do(job)
	if first != second {
		t.Fatal("memoized custom-policy result diverged")
	}
	c := p.Counters()
	if c.Simulated != 1 {
		t.Fatalf("Simulated = %d, want 1", c.Simulated)
	}
	if c.MemoHits != 1 {
		t.Fatalf("MemoHits = %d, want 1", c.MemoHits)
	}
	if c.Uncached != 0 {
		t.Fatalf("Uncached = %d, want 0", c.Uncached)
	}
	// The wrapper adds no behavior, so the built-in policy must agree —
	// proving the custom path simulates the same machine it describes.
	if builtin := p.Do(testJob(t, memdep.Traditional)); builtin != first {
		t.Fatalf("wrapped DefaultPolicy stats %+v != built-in %+v", first, builtin)
	}
}

// TestPoolCustomPolicyEngineReuse: distinct traces on one described
// resettable custom policy share pooled engines (reuse count > 0), while a
// non-resettable policy is surfaced via EngineBuilds instead of silently
// degrading.
func TestPoolCustomPolicyEngineReuse(t *testing.T) {
	var a, b trace.Profile
	for _, g := range trace.Groups() {
		if len(g.Traces) >= 2 {
			a, b = g.Traces[0], g.Traces[1]
			break
		}
	}
	if a.Name == "" || b.Name == "" {
		t.Fatal("no trace group with two members")
	}

	p := NewIsolated(1, NewCache())
	p.Do(customJob(t, a, "wrap/default", true))
	p.Do(customJob(t, b, "wrap/default", true))
	c := p.Counters()
	if c.EngineBuilds != 1 || c.EngineReuses != 1 {
		t.Fatalf("resettable policy: EngineBuilds = %d, EngineReuses = %d, want 1 and 1",
			c.EngineBuilds, c.EngineReuses)
	}

	p = NewIsolated(1, NewCache())
	p.Do(customJob(t, a, "wrap/opaque", false))
	p.Do(customJob(t, b, "wrap/opaque", false))
	c = p.Counters()
	if c.EngineBuilds != 2 || c.EngineReuses != 0 {
		t.Fatalf("opaque policy: EngineBuilds = %d, EngineReuses = %d, want 2 and 0",
			c.EngineBuilds, c.EngineReuses)
	}
}

// TestPoolCountersNilCache: a cacheless pool counts every job as uncached.
func TestPoolCountersNilCache(t *testing.T) {
	p := NewIsolated(2, nil)
	p.Do(testJob(t, memdep.Traditional))
	c := p.Counters()
	if c.Jobs != 1 || c.Simulated != 1 || c.Uncached != 1 || c.MemoHits != 0 {
		t.Fatalf("counters = %+v", c)
	}
	if p.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d on cacheless pool", p.CacheLen())
	}
}

// TestLockstepWindowingMatchesSolo forces the windowed-lockstep stepping
// path — which production constants reserve for jobs longer than one window
// — onto small jobs by shrinking the window, and asserts the interleaved
// results are identical to solo runs. Mixed schemes keep the engines
// retiring at different rates so the laggard/limit logic actually engages;
// one job is deliberately shorter so a slot finishes and detaches while its
// unit mates continue.
func TestLockstepWindowingMatchesSolo(t *testing.T) {
	oldWindow, oldStride := batchWindowUops, batchStepStride
	batchWindowUops, batchStepStride = 512, 64
	defer func() { batchWindowUops, batchStepStride = oldWindow, oldStride }()

	schemes := []memdep.Scheme{
		memdep.Traditional, memdep.Perfect, memdep.Opportunistic,
		memdep.Traditional, memdep.Exclusive,
	}
	var jobs []Job
	for i, s := range schemes {
		j := testJob(t, s)
		if i == 3 {
			j.Uops = 1_200 // finishes rounds before its unit mates
		}
		jobs = append(jobs, j)
	}
	var solo []ooo.Stats
	for _, j := range jobs {
		cfg := j.Build()
		cfg.WarmupUops = j.Warmup
		solo = append(solo, ooo.NewEngine(cfg, trace.Replay(j.Profile)).Run(j.Uops))
	}
	got := NewIsolated(1, nil).RunBatch(jobs) // one unit holds all five slots
	for i := range jobs {
		if got[i] != solo[i] {
			t.Errorf("job %d (%v): lockstep stats diverge from solo\n got %+v\nwant %+v",
				i, schemes[i], got[i], solo[i])
		}
	}
}
