package runner

import (
	"time"

	"loadsched/internal/ooo"
	"loadsched/internal/trace"
)

// Batched lockstep execution. A sweep's job list is mostly many machine
// configurations over few workloads, and every engine replaying one
// trace.Profile reads the same materialized recording. Stepping those
// engines one full run at a time streams the whole recording through the
// data cache once per engine; stepping them in lockstep over a shared
// window reads each stretch of the recording once and fans it out to every
// engine in the unit while it is still resident. The recording's static
// dependence side-car rides the same sharing: it is built once per chunk at
// record time and every engine's cursor hands out read-only views of it
// (Cursor.NextBatchRef), so the per-uop rename links are computed once for
// the whole unit, not once per engine.
// Variables rather than constants only so the lockstep differential test
// can shrink them to force windowing on small jobs.
var (
	// batchWindowUops bounds how far the unit's engines may spread through
	// the shared recording: no engine's cursor runs more than one window
	// past the slowest engine's cursor. The window is deliberately coarse —
	// each engine carries its own cache model and predictor tables, so a
	// tight interleave would evict that per-engine state every switch for
	// no locality gain; the window only needs to cap how much of the
	// recording is live at once. It is a whole number of trace chunks, so a
	// window spans exactly that many decoded chunk views (an engine's fetch
	// buffer can hold a few dozen uops past its cursor, which the chunk
	// granularity dwarfs). A unit whose jobs all fit inside one window
	// skips lockstep entirely and runs sequentially (see stepSlots).
	batchWindowUops = 16 * trace.ChunkUops
	// batchStepStride is the retirement quantum handed to Engine.StepRun
	// inside a window — one trace chunk, coarse for the same reason, while
	// still letting a finished engine surface between strides.
	batchStepStride = trace.ChunkUops
)

// batchSlot is one simulation a unit owes: the job it answers and the
// machine to build for it, the engine and cursor while attached (the
// cursor is held separately because the window logic keys off Cursor.Pos),
// and — for cache-owned slots — the pending release claim plus any in-unit
// duplicate submissions riding the result. Engines attach lazily, right
// before a slot steps, and detach back to the reuse pool the moment it
// finishes, so sequential slots of one machine shape share one engine.
type batchSlot struct {
	job       int
	uops      int
	demand    int
	cfg       ooo.Config
	profile   trace.Profile
	desc      string
	pooled    bool
	eng       *ooo.Engine
	cur       *trace.Cursor
	done      bool
	stats     ooo.Stats
	release   func(ooo.Stats, bool)
	followers []int
}

// attach gives the slot its cursor and an engine, reviving a parked engine
// of the same machine shape when one is free.
func (p *Pool) attach(s *batchSlot) {
	s.cur = trace.Replay(s.profile)
	if s.pooled {
		if s.eng = p.engines.take(s.desc); s.eng == nil || !s.eng.Reset(s.cur) {
			s.eng = ooo.NewEngine(s.cfg, s.cur)
			p.m.engineBuilds.Add(1)
		} else {
			p.m.engineReuses.Add(1)
		}
		return
	}
	s.eng = ooo.NewEngine(s.cfg, s.cur)
}

// detach parks the finished slot's engine for reuse.
func (p *Pool) detach(s *batchSlot) {
	if s.pooled {
		p.engines.put(s.desc, s.eng)
	}
	s.eng, s.cur = nil, nil
}

// RunBatch executes every job and returns their statistics in job order.
// Jobs are grouped by Profile into units of bounded size; each unit runs as
// one Map task that steps its engines in lockstep over the profile's shared
// recording. Results are identical to running each job alone: an engine's
// simulation is a pure function of its job, and StepRun chunking does not
// enter into it. Identical describable jobs (equal keys) are simulated once
// and share the result, exactly as under Do.
func (p *Pool) RunBatch(jobs []Job) []ooo.Stats {
	out := make([]ooo.Stats, len(jobs))
	units := batchUnits(jobs, p.Workers())
	Map(p, len(units), func(u int) struct{} {
		p.runUnit(jobs, units[u], out)
		return struct{}{}
	})
	return out
}

// batchUnits groups job indexes by Profile in first-seen order and chunks
// each group into units. The unit size balances cache locality (more
// engines per window read the recording fewer times) against parallelism
// (units are the Map scheduling grain): ceil(total/workers), clamped to
// [1, 16].
func batchUnits(jobs []Job, workers int) [][]int {
	size := (len(jobs) + workers - 1) / workers
	if size > 16 {
		size = 16
	}
	if size < 1 {
		size = 1
	}
	var order []trace.Profile
	groups := map[trace.Profile][]int{}
	for i, j := range jobs {
		if _, seen := groups[j.Profile]; !seen {
			order = append(order, j.Profile)
		}
		groups[j.Profile] = append(groups[j.Profile], i)
	}
	var units [][]int
	for _, prof := range order {
		idxs := groups[prof]
		for len(idxs) > size {
			units = append(units, idxs[:size])
			idxs = idxs[size:]
		}
		if len(idxs) > 0 {
			units = append(units, idxs)
		}
	}
	return units
}

// runUnit resolves one unit: each job is served from the cache when it can
// be, deduplicated against an identical in-unit owner, or given an engine
// slot; the slots then step together and publish.
func (p *Pool) runUnit(jobs []Job, idxs []int, out []ooo.Stats) {
	start := time.Now()
	slots := make([]*batchSlot, 0, len(idxs))
	owners := map[Key]*batchSlot{}
	// If stepping panics, abandon every still-unreleased claim so waiters
	// on other goroutines re-claim instead of hanging on our entries.
	defer func() {
		for _, s := range slots {
			if s.release != nil {
				s.release(ooo.Stats{}, false)
			}
		}
	}()
	for _, i := range idxs {
		j := jobs[i]
		p.m.jobs.Add(1)
		cfg := j.Build()
		cfg.WarmupUops = j.Warmup
		desc, describable := ConfigKey(cfg)
		var release func(ooo.Stats, bool)
		if p.cache == nil || !describable {
			p.m.uncached.Add(1)
		} else {
			k := Key{Machine: desc, Profile: j.Profile, Uops: j.Uops, Warmup: j.Warmup}
			if own, dup := owners[k]; dup {
				// An identical job already owns a slot in this unit.
				// Acquiring again would block on our own unpublished claim;
				// ride the owner's slot instead.
				own.followers = append(own.followers, i)
				p.m.coalesced.Add(1)
				continue
			}
			st, how, rel := p.cache.acquire(k)
			if rel == nil {
				out[i] = st
				switch how {
				case memoHit:
					p.m.memoHits.Add(1)
				case diskHit:
					p.m.diskHits.Add(1)
				case coalesced:
					p.m.coalesced.Add(1)
				}
				continue
			}
			release = rel
		}
		s := &batchSlot{
			job: i, uops: j.Uops, demand: j.Uops + j.Warmup,
			cfg: cfg, profile: j.Profile, desc: desc, pooled: describable,
			release: release,
		}
		if release != nil {
			owners[Key{Machine: desc, Profile: j.Profile, Uops: j.Uops, Warmup: j.Warmup}] = s
		}
		slots = append(slots, s)
	}
	p.stepSlots(slots)
	for _, s := range slots {
		out[s.job] = s.stats
		for _, f := range s.followers {
			out[f] = s.stats
		}
		if s.release != nil {
			s.release(s.stats, true)
			s.release = nil
		}
		p.m.simulated.Add(1)
	}
	p.m.simNanos.Add(time.Since(start).Nanoseconds())
}

// stepSlots advances a unit's simulations to completion. A unit whose jobs
// all fit inside one window has nothing to interleave — lockstep would run
// the slots back-to-back anyway, just with every engine resident at once —
// so it runs them strictly sequentially, each slot detaching its engine
// before the next attaches; a run of same-shape slots then recycles a
// single engine, exactly as the unbatched path did. Longer jobs run
// windowed lockstep: each round picks the laggard cursor's position,
// extends it by one window, and steps every live engine up to that limit.
// Engines retire and stall independently — a short job finishes (EndRun)
// and detaches while its unit mates continue, and a stalled engine only
// gates the others through the window bound, never cycle by cycle.
func (p *Pool) stepSlots(slots []*batchSlot) {
	lockstep := len(slots) > 1
	if lockstep {
		longest := 0
		for _, s := range slots {
			if s.demand > longest {
				longest = s.demand
			}
		}
		lockstep = longest > batchWindowUops
	}
	if !lockstep {
		for _, s := range slots {
			p.attach(s)
			s.stats = s.eng.Run(s.uops)
			s.done = true
			p.detach(s)
		}
		return
	}
	for _, s := range slots {
		p.attach(s)
		s.eng.BeginRun(s.uops)
	}
	for active := len(slots); active > 0; {
		minPos := -1
		for _, s := range slots {
			if s.done {
				continue
			}
			if pos := s.cur.Pos(); minPos < 0 || pos < minPos {
				minPos = pos
			}
		}
		limit := minPos + batchWindowUops
		for _, s := range slots {
			if s.done {
				continue
			}
			for !s.done && s.cur.Pos() < limit {
				s.done = s.eng.StepRun(batchStepStride)
			}
			if s.done {
				s.stats = s.eng.EndRun()
				p.detach(s)
				active--
			}
		}
	}
}
