package runner

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/store"
)

// TestCachePanicDoesNotPoison is the regression test for the memo-cache
// poisoning bug: a panic inside compute used to close the entry's done
// channel with zero-value stats still in it and leave the entry in the map
// forever, so every later request for the key silently got garbage. The fix
// removes the entry before publishing, so the panic propagates to the
// panicking caller and a later request recomputes. (This test fails against
// the pre-fix Cache.do: the second Do would return zero stats without
// calling compute.)
func TestCachePanicDoesNotPoison(t *testing.T) {
	c := NewCache()
	k := Key{Machine: "m", Uops: 1}
	panicked := func() {
		defer func() {
			if recover() == nil {
				t.Fatal("compute's panic did not propagate to the caller")
			}
		}()
		c.Do(k, func() ooo.Stats { panic("engine blew up") })
	}
	panicked()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after a panicked compute, want 0", c.Len())
	}
	var calls atomic.Int32
	want := ooo.Stats{Cycles: 42, Uops: 7}
	got := c.Do(k, func() ooo.Stats { calls.Add(1); return want })
	if got != want {
		t.Fatalf("retry after panic returned %+v, want %+v", got, want)
	}
	if calls.Load() != 1 {
		t.Fatalf("retry compute ran %d times, want 1", calls.Load())
	}
}

// TestCachePanicWakesCoalescedWaiters pins the concurrent half of the fix:
// callers coalesced onto an in-flight computation that panics must be woken
// and retry (exactly one of them recomputing), not be handed zero-value
// stats from the dead entry.
func TestCachePanicWakesCoalescedWaiters(t *testing.T) {
	c := NewCache()
	k := Key{Machine: "m", Uops: 1}
	inCompute := make(chan struct{})
	release := make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		defer func() { recover() }()
		c.Do(k, func() ooo.Stats {
			close(inCompute)
			<-release
			panic("engine blew up mid-flight")
		})
	}()
	<-inCompute // the entry is now in the map; waiters below will coalesce

	const waiters = 8
	want := ooo.Stats{Cycles: 42, Uops: 7}
	var retryCalls atomic.Int32
	var wg sync.WaitGroup
	results := make([]ooo.Stats, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do(k, func() ooo.Stats {
				retryCalls.Add(1)
				return want
			})
		}(i)
	}
	close(release)
	<-ownerDone
	wg.Wait()
	for i, st := range results {
		if st != want {
			t.Fatalf("waiter %d got %+v, want %+v (poisoned entry served)", i, st, want)
		}
	}
	if n := retryCalls.Load(); n != 1 {
		t.Fatalf("retry compute ran %d times, want exactly 1 (single-flight across the retry)", n)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheDiskLayerWarmReopen proves persistence: a fresh cache (a new
// process, in effect) over the same store directory serves every key from
// disk without computing.
func TestCacheDiskLayerWarmReopen(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCache()
	c1.SetStore(st1)
	keys := []Key{
		{Machine: "a", Uops: 100},
		{Machine: "b", Uops: 100},
		{Machine: "a", Uops: 200, Warmup: 10},
	}
	for i, k := range keys {
		want := ooo.Stats{Cycles: int64(100 + i), Uops: uint64(i)}
		if got, how := c1.do(k, func() ooo.Stats { return want }); got != want || how != computed {
			t.Fatalf("cold do(%d) = %+v, %d", i, got, how)
		}
	}
	if sc := st1.Counters(); sc.Writes != int64(len(keys)) {
		t.Fatalf("store writes = %d, want %d", sc.Writes, len(keys))
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewCache()
	c2.SetStore(st2)
	for i, k := range keys {
		want := ooo.Stats{Cycles: int64(100 + i), Uops: uint64(i)}
		got, how := c2.do(k, func() ooo.Stats {
			t.Errorf("key %d recomputed despite a warm store", i)
			return ooo.Stats{}
		})
		if got != want {
			t.Fatalf("warm do(%d) = %+v, want %+v", i, got, want)
		}
		if how != diskHit {
			t.Fatalf("warm do(%d) outcome = %d, want diskHit", i, how)
		}
	}
	// Disk hits populate the in-memory level: a third lookup is a memo hit.
	if _, how := c2.do(keys[0], func() ooo.Stats { return ooo.Stats{} }); how != memoHit {
		t.Fatalf("second warm lookup outcome = %d, want memoHit", how)
	}
}

// TestCacheDiskSingleFlight hammers one key through a store-backed cache:
// memory → disk → compute must still perform exactly one computation and
// one store write between all callers. Run under -race this also proves the
// layered path is race-free.
func TestCacheDiskSingleFlight(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetStore(st)
	k := Key{Machine: "m", Uops: 1}
	want := ooo.Stats{Cycles: 42}
	var calls atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := c.Do(k, func() ooo.Stats { calls.Add(1); return want }); got != want {
				t.Errorf("got %+v, want %+v", got, want)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if sc := st.Counters(); sc.Writes != 1 {
		t.Fatalf("store writes = %d, want 1", sc.Writes)
	}
}

// TestCacheDiskCorruptEntryRecomputes: a corrupted persisted entry must
// degrade to a recompute (and a rewrite), never to wrong data.
func TestCacheDiskCorruptEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	st, _ := store.Open(dir)
	c := NewCache()
	c.SetStore(st)
	k := Key{Machine: "m", Uops: 1}
	want := ooo.Stats{Cycles: 42}
	c.Do(k, func() ooo.Stats { return want })

	// Truncate the persisted entry, then look it up through a fresh cache.
	path := st.Path(StoreKey(k))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := store.Open(dir)
	c2 := NewCache()
	c2.SetStore(st2)
	var calls atomic.Int32
	got, how := c2.do(k, func() ooo.Stats { calls.Add(1); return want })
	if got != want || how != computed || calls.Load() != 1 {
		t.Fatalf("corrupt entry: got %+v, outcome %d, calls %d; want recompute", got, how, calls.Load())
	}
	if sc := st2.Counters(); sc.Corrupt != 1 || sc.Writes != 1 {
		t.Fatalf("store counters = %+v; want 1 corrupt, 1 rewrite", sc)
	}
	// The rewrite healed the entry.
	st3, _ := store.Open(dir)
	c3 := NewCache()
	c3.SetStore(st3)
	if got, how := c3.do(k, func() ooo.Stats { t.Error("recompute"); return ooo.Stats{} }); got != want || how != diskHit {
		t.Fatalf("healed entry: got %+v, outcome %d; want disk hit", got, how)
	}
}

// TestPoolWarmStoreZeroSimulations is the end-to-end warm-store contract on
// real simulations: a pool over a fresh cache backed by a populated store
// performs zero simulations and reproduces the cold run's statistics
// exactly, with the DiskHits counter proving where results came from.
func TestPoolWarmStoreZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	jobs := []Job{testJob(t, memdep.Traditional), testJob(t, memdep.Inclusive), testJob(t, memdep.Traditional)}

	st1, _ := store.Open(dir)
	c1 := NewCache()
	c1.SetStore(st1)
	cold := NewIsolated(2, c1)
	coldStats := cold.Run(jobs)
	if c := cold.Counters(); c.Simulated != 2 {
		t.Fatalf("cold run simulated %d jobs, want 2 (one per distinct key)", c.Simulated)
	}

	st2, _ := store.Open(dir)
	c2 := NewCache()
	c2.SetStore(st2)
	warm := NewIsolated(2, c2)
	warmStats := warm.Run(jobs)
	c := warm.Counters()
	if c.Simulated != 0 {
		t.Fatalf("warm run simulated %d jobs, want 0", c.Simulated)
	}
	if c.DiskHits != 2 {
		t.Fatalf("warm run disk hits = %d, want 2", c.DiskHits)
	}
	// The repeated Traditional job lands as a memo hit or (depending on
	// timing) coalesces onto the in-flight disk lookup.
	if c.MemoHits+c.Coalesced != 1 {
		t.Fatalf("warm run memo+coalesced = %d+%d, want 1 between them", c.MemoHits, c.Coalesced)
	}
	for i := range coldStats {
		if warmStats[i] != coldStats[i] {
			t.Fatalf("job %d: warm stats %+v diverge from cold %+v", i, warmStats[i], coldStats[i])
		}
	}
	if dc, ok := warm.DiskCounters(); !ok || dc.Hits != 2 {
		t.Fatalf("DiskCounters = %+v, %v; want 2 hits", dc, ok)
	}
}
