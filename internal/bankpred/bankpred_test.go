package bankpred

import (
	"math"
	"math/rand"
	"testing"

	"loadsched/internal/cache"
)

func allBankPredictors() map[string]Predictor {
	return map[string]Predictor{
		"A":      NewPredictorA(),
		"B":      NewPredictorB(),
		"C":      NewPredictorC(),
		"Addr":   NewAddrBank(cache.DefaultBanking()),
		"perbit": NewPerBit(1),
	}
}

func TestLearnsFixedBankLoads(t *testing.T) {
	for name, p := range allBankPredictors() {
		// Predict-then-update per load, in stream order, as the scheduler
		// would: global-history components need the same history at query
		// and train time.
		ip0, ip1 := uint64(0x400100), uint64(0x400200)
		for i := 0; i < 300; i++ {
			p.Update(ip0, 0)
			p.Update(ip1, 1)
		}
		correct, predicted := 0, 0
		probe := func(ip uint64, want int) {
			if b, ok := p.Predict(ip); ok {
				predicted++
				if b == want {
					correct++
				}
			}
			p.Update(ip, want)
		}
		for i := 0; i < 100; i++ {
			probe(ip0, 0)
			probe(ip1, 1)
		}
		if predicted < 150 {
			t.Errorf("%s: predicted only %d/200 fixed-bank loads", name, predicted)
		}
		if predicted > 0 && correct < predicted*98/100 {
			t.Errorf("%s: accuracy %d/%d on fixed-bank loads", name, correct, predicted)
		}
	}
}

func TestAbstainsOnRandomBanks(t *testing.T) {
	// A load with a random bank must mostly abstain (or at least not be
	// confidently wrong) — abstention is what keeps accuracy high.
	for name, p := range allBankPredictors() {
		if name == "Addr" {
			continue // exercised separately with real addresses
		}
		rng := rand.New(rand.NewSource(3))
		ip := uint64(0x400300)
		predicted := 0
		for i := 0; i < 1000; i++ {
			if _, ok := p.Predict(ip); ok && i > 100 {
				predicted++
			}
			p.Update(ip, rng.Intn(2))
		}
		if predicted > 600 {
			t.Errorf("%s: predicted %d/900 random-bank loads (should abstain more)", name, predicted)
		}
	}
}

func TestAddrBankFollowsStride(t *testing.T) {
	banking := cache.DefaultBanking()
	a := NewAddrBank(banking)
	ip := uint64(0x400100)
	// Stride 64: the bank alternates every access; only an address predictor
	// can track this exactly.
	for i := 0; i < 20; i++ {
		a.UpdateAddr(ip, uint64(0x10000+i*64))
	}
	correct, predicted := 0, 0
	for i := 20; i < 120; i++ {
		addr := uint64(0x10000 + i*64)
		if b, ok := a.Predict(ip); ok {
			predicted++
			if b == banking.BankOf(addr) {
				correct++
			}
		}
		a.UpdateAddr(ip, addr)
	}
	if predicted < 90 {
		t.Fatalf("addr predictor abstained too much: %d/100", predicted)
	}
	if correct != predicted {
		t.Fatalf("addr predictor wrong on steady stride: %d/%d", correct, predicted)
	}
}

func TestPerBitFourBanks(t *testing.T) {
	p := NewPerBit(2)
	ips := []uint64{0x400100, 0x400200, 0x400300, 0x400400}
	for i := 0; i < 400; i++ {
		for b, ip := range ips {
			p.Update(ip, b)
		}
	}
	// Predict each load in stream position (immediately before its update)
	// so global history matches training.
	correct, predicted := 0, 0
	for i := 0; i < 50; i++ {
		for b, ip := range ips {
			if got, ok := p.Predict(ip); ok {
				predicted++
				if got == b {
					correct++
				}
			}
			p.Update(ip, b)
		}
	}
	if predicted < 150 {
		t.Fatalf("per-bit predictor abstained too much: %d/200", predicted)
	}
	if correct < predicted*95/100 {
		t.Fatalf("per-bit accuracy %d/%d", correct, predicted)
	}
}

func TestPerBitBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerBit(0)
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.Record(true, true)
	s.Record(true, true)
	s.Record(true, false)
	s.Record(false, false)
	if s.Total != 4 || s.Predicted() != 3 || s.Correct != 2 || s.Wrong != 1 {
		t.Fatalf("tallies wrong: %+v", s)
	}
	if s.Rate() != 0.75 {
		t.Fatalf("rate = %v", s.Rate())
	}
	if math.Abs(s.Accuracy()-2.0/3.0) > 1e-12 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
	if s.R() != 2 {
		t.Fatalf("R = %v", s.R())
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Total != 8 || sum.Correct != 4 {
		t.Fatal("Add broken")
	}
}

func TestStatsEdgeCases(t *testing.T) {
	var s Stats
	if s.Rate() != 0 || s.Accuracy() != 0 || s.R() != 0 {
		t.Fatal("empty stats must be zero")
	}
	s.Record(true, true)
	if s.R() != 1 { // no wrongs: R clamps to Correct
		t.Fatalf("R with no wrongs = %v", s.R())
	}
}

func TestMetricProperties(t *testing.T) {
	// At penalty 0 the metric equals (almost exactly) the prediction rate
	// scaled by R/(R+1)·... — for large R it approaches P. This is how the
	// paper reads prediction rate off Figure 12.
	if m := Metric(0.7, 1000, 0); math.Abs(m-0.7) > 0.01 {
		t.Fatalf("metric at penalty 0 with huge R = %v, want ≈ rate 0.7", m)
	}
	// Perfect predictor: rate 1, no wrongs → metric 1 at any penalty.
	if m := Metric(1.0, 1e9, 5); math.Abs(m-1.0) > 0.01 {
		t.Fatalf("perfect predictor metric = %v", m)
	}
	// The metric must decrease with penalty.
	prev := math.Inf(1)
	for pen := 0.0; pen <= 10; pen++ {
		m := Metric(0.5, 30, pen)
		if m >= prev {
			t.Fatalf("metric not decreasing at penalty %v", pen)
		}
		prev = m
	}
	// A more accurate predictor (larger R) degrades more slowly.
	slopeLow := Metric(0.5, 10, 0) - Metric(0.5, 10, 5)
	slopeHigh := Metric(0.5, 100, 0) - Metric(0.5, 100, 5)
	if slopeHigh >= slopeLow {
		t.Fatalf("higher accuracy should flatten the slope: %v vs %v", slopeHigh, slopeLow)
	}
	if Metric(0.5, 0, 3) != 0 {
		t.Fatal("zero R must give zero metric")
	}
}

func TestStatsMetricConsistency(t *testing.T) {
	s := Stats{Total: 100, Correct: 49, Wrong: 1}
	if math.Abs(s.Metric(2)-Metric(0.5, 49, 2)) > 1e-12 {
		t.Fatal("Stats.Metric must match the standalone formula")
	}
}

func TestResetAll(t *testing.T) {
	for name, p := range allBankPredictors() {
		for i := 0; i < 200; i++ {
			p.Update(0x400100, 1)
		}
		p.Reset()
		if b, ok := p.Predict(0x400100); ok && b == 1 {
			t.Errorf("%s: still predicts after Reset", name)
		}
	}
}

func TestNames(t *testing.T) {
	for _, p := range allBankPredictors() {
		if p.Name() == "" {
			t.Error("empty predictor name")
		}
	}
}
