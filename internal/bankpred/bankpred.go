// Package bankpred implements the paper's third contribution: cache-bank
// prediction (§2.3). Knowing a load's bank before scheduling lets the
// scheduler avoid co-issuing conflicting loads to a multi-banked cache, and
// enables the sliced memory pipeline (single-bank pipes with no crossbar).
//
// With two banks the bank bit is a binary outcome, so the paper adapts its
// binary-predictor kit. The package provides the paper's predictors A, B and
// C (chooser combinations of local/gshare/gskew/bimodal components with
// confidence policies), the address-predictor-based bank predictor
// ([Beke99]), a per-bit scaler for more than two banks, and the evaluation
// metric of §4.3.
package bankpred

import (
	"loadsched/internal/addrpred"
	"loadsched/internal/cache"
	"loadsched/internal/predict"
)

// Predictor predicts the bank a load will access, or abstains. Abstaining
// loads are dispatched to all banks (duplication), which the paper's metric
// treats as neither gain nor penalty.
type Predictor interface {
	// Predict returns the predicted bank and whether a (confident)
	// prediction is made at all.
	Predict(ip uint64) (bank int, ok bool)
	// Update trains with the actual bank.
	Update(ip uint64, bank int)
	// Reset clears state.
	Reset()
	// Name identifies the configuration.
	Name() string
}

// binaryBank adapts a weighted, confidence-gated vote of binary component
// predictors to 2-bank prediction: "taken" means bank 1. Each component's
// vote is weighted by weight×confidence, so an unconfident component
// contributes nothing; the predictor abstains unless the absolute signed sum
// reaches minMargin. This realizes the §2.3 policies "a different weight
// assigned according to the confidence level" plus a prediction threshold.
type binaryBank struct {
	comps   []predict.Binary
	weights []int
	name    string
	// minMargin is the minimum |confidence-weighted vote sum| required to
	// predict; raising it trades prediction rate for accuracy, the knob
	// §2.3 discusses.
	minMargin int
}

// Predict implements Predictor.
func (b *binaryBank) Predict(ip uint64) (int, bool) {
	sum := 0
	for i, c := range b.comps {
		p := c.Predict(ip)
		v := b.weights[i] * p.Confidence
		if p.Taken {
			sum += v
		} else {
			sum -= v
		}
	}
	abs := sum
	if abs < 0 {
		abs = -abs
	}
	if abs < b.minMargin {
		return 0, false
	}
	if sum > 0 {
		return 1, true
	}
	return 0, true
}

// Update implements Predictor.
func (b *binaryBank) Update(ip uint64, bank int) {
	for _, c := range b.comps {
		c.Update(ip, bank == 1)
	}
}

// Reset implements Predictor.
func (b *binaryBank) Reset() {
	for _, c := range b.comps {
		c.Reset()
	}
}

// Name implements Predictor.
func (b *binaryBank) Name() string { return b.name }

// Component geometries from §4.3 (3-bit counters give the confidence
// resolution the gating needs; the storage budget stays under 2KB):
//
//	Local  - 512 entries (untagged), 8-bit history (0.5KB)
//	Gshare - 11-bit history (0.5KB)
//	GSkew  - 17-bit history, 3 tables of 1024 entries (0.75KB)
//	Bimodal - 2K entries
func newLocalComp() predict.Binary   { return predict.NewLocal(9, 8, 3) }
func newGShareComp() predict.Binary  { return predict.NewGShare(11, 11, 3) }
func newGSkewComp() predict.Binary   { return predict.NewGSkew(10, 17, 3) }
func newLocal4Comp() predict.Binary  { return predict.NewLocal(9, 8, 4) }
func newGShare4Comp() predict.Binary { return predict.NewGShare(11, 11, 4) }
func newBimodalComp() predict.Binary { return predict.NewBimodal(11, 4) }

// NewPredictorA is the paper's Predictor A: local + gshare + gskew with a
// confidence-weighted vote. Typical SpecINT operating point: ≈50% prediction
// rate at ≈97% accuracy.
func NewPredictorA() Predictor {
	return &binaryBank{
		comps:     []predict.Binary{newLocalComp(), newGShareComp(), newGSkewComp()},
		weights:   []int{1, 1, 1},
		name:      "A:local+gshare+gskew",
		minMargin: 8,
	}
}

// NewPredictorB is the paper's Predictor B: local + gshare + bimodal.
// Typical operating point: ≈50% rate at ≈98% accuracy (the most accurate
// chooser, at the lowest rate).
func NewPredictorB() Predictor {
	return &binaryBank{
		// 4-bit counters: the deeper confidence range lets B trade more
		// rate for accuracy than A can (its paper role).
		comps:     []predict.Binary{newLocal4Comp(), newGShare4Comp(), newBimodalComp()},
		weights:   []int{1, 1, 1},
		name:      "B:local+gshare+bimodal",
		minMargin: 20,
	}
}

// NewPredictorC is the paper's Predictor C: local + 2×gshare + gskew (the
// gshare vote carries double weight). Typical operating point: ≈70% rate at
// ≈97% accuracy — the high-rate configuration suited to the sliced pipe.
func NewPredictorC() Predictor {
	return &binaryBank{
		comps:     []predict.Binary{newLocalComp(), newGShareComp(), newGSkewComp()},
		weights:   []int{1, 2, 1},
		name:      "C:local+2*gshare+gskew",
		minMargin: 8,
	}
}

// AddrBank predicts the bank from a predicted effective address ([Beke99]):
// the bank is just one bit of the address, so a confident address prediction
// is a confident bank prediction. Typical operating point: ≈70% rate at
// ≈98% accuracy.
type AddrBank struct {
	ap      *addrpred.Predictor
	banking cache.Banking
}

// NewAddrBank builds the address-predictor-based bank predictor.
func NewAddrBank(banking cache.Banking) *AddrBank {
	ap := addrpred.New(2048, 4)
	ap.ConfThreshold = 3 // saturated stride only: [Beke99]'s ≈70%/98% point
	return &AddrBank{ap: ap, banking: banking}
}

// Predict implements Predictor.
func (a *AddrBank) Predict(ip uint64) (int, bool) {
	pr := a.ap.Predict(ip)
	if !pr.Confident {
		return 0, false
	}
	return a.banking.BankOf(pr.Addr), true
}

// UpdateAddr trains with the actual effective address (richer than the bank
// alone; the bank evaluator calls this when it has the address).
func (a *AddrBank) UpdateAddr(ip, addr uint64) { a.ap.Update(ip, addr) }

// Update implements Predictor; with only the bank available it synthesizes a
// line-granular address, which preserves the bank bit.
func (a *AddrBank) Update(ip uint64, bank int) {
	a.ap.Update(ip, uint64(bank*a.banking.LineBytes))
}

// Reset implements Predictor.
func (a *AddrBank) Reset() { a.ap.Reset() }

// Name implements Predictor.
func (a *AddrBank) Name() string { return "Addr" }
