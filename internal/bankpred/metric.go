package bankpred

// Stats accumulates a bank predictor's statistical performance over a load
// stream: the prediction rate P (how many loads get a prediction) and the
// accuracy (how many predictions are correct). These are the two factors
// §4.3 identifies.
type Stats struct {
	// Total is the number of loads seen.
	Total uint64
	// Correct and Wrong partition the predicted loads.
	Correct, Wrong uint64
}

// Predicted returns the number of loads that received a prediction.
func (s *Stats) Predicted() uint64 { return s.Correct + s.Wrong }

// Rate returns P, the fraction of loads predicted.
func (s *Stats) Rate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Predicted()) / float64(s.Total)
}

// Accuracy returns the fraction of predictions that were correct.
func (s *Stats) Accuracy() float64 {
	if s.Predicted() == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predicted())
}

// R returns the correct:wrong ratio of §4.3 (>> 1 for a useful predictor).
func (s *Stats) R() float64 {
	if s.Wrong == 0 {
		if s.Correct == 0 {
			return 0
		}
		return float64(s.Correct) // effectively infinite; avoid Inf in reports
	}
	return float64(s.Correct) / float64(s.Wrong)
}

// Record tallies one load.
func (s *Stats) Record(predicted, correct bool) {
	s.Total++
	if !predicted {
		return
	}
	if correct {
		s.Correct++
	} else {
		s.Wrong++
	}
}

// Add accumulates another tally.
func (s *Stats) Add(o Stats) {
	s.Total += o.Total
	s.Correct += o.Correct
	s.Wrong += o.Wrong
}

// Metric evaluates the paper's relative-performance metric (§4.3) at a given
// misprediction penalty, using the exact derivation rather than the
// approximation:
//
//	LoadExecutionTime = (1−P) + P·(0.5·R + Penalty)/(R+1)
//	GainPerLoad       = 1 − LoadExecutionTime
//	Metric            = GainPerLoad / 0.5
//
// A perfect two-bank predictor scores 1 (ideal dual porting); 0 means no
// improvement over a single-ported cache; negative values mean mispredictions
// cost more than banking gains.
func (s *Stats) Metric(penalty float64) float64 {
	return Metric(s.Rate(), s.R(), penalty)
}

// Metric is the standalone form of the §4.3 formula for a prediction rate
// p, correct:wrong ratio r, and misprediction penalty (in load-execution
// units).
func Metric(p, r, penalty float64) float64 {
	if r <= 0 {
		return 0
	}
	loadTime := (1 - p) + p*(0.5*r+penalty)/(r+1)
	gain := 1 - loadTime
	return gain / 0.5
}
