package bankpred

import (
	"fmt"

	"loadsched/internal/predict"
)

// PerBit scales binary bank prediction to 2^n banks, as §2.3 sketches: each
// bit of the bank ID is predicted independently with its own confidence; if
// any bit is unconfident the load abstains (and would be sent to the banks
// matching the confident bits — modelled here as full abstention, the
// conservative accounting).
type PerBit struct {
	bits []*binaryBank
}

// NewPerBit builds an n-bit (2^n-bank) predictor; each bit gets its own
// local+gshare+gskew chooser.
func NewPerBit(bankBits int) *PerBit {
	if bankBits <= 0 {
		panic(fmt.Sprintf("bankpred: bankBits %d must be positive", bankBits))
	}
	p := &PerBit{}
	for i := 0; i < bankBits; i++ {
		p.bits = append(p.bits, &binaryBank{
			comps:     []predict.Binary{newLocalComp(), newGShareComp(), newGSkewComp()},
			weights:   []int{1, 1, 1},
			minMargin: 4,
		})
	}
	return p
}

// key decorrelates the per-bit tables so bit i of one load does not train
// bit j of another.
func (p *PerBit) key(ip uint64, bit int) uint64 { return ip ^ uint64(bit)<<40 }

// Predict implements Predictor.
func (p *PerBit) Predict(ip uint64) (int, bool) {
	bank := 0
	for i, b := range p.bits {
		bit, ok := b.Predict(p.key(ip, i))
		if !ok {
			return 0, false
		}
		bank |= bit << i
	}
	return bank, true
}

// Update implements Predictor.
func (p *PerBit) Update(ip uint64, bank int) {
	for i, b := range p.bits {
		bit := 0
		if bank&(1<<i) != 0 {
			bit = 1
		}
		b.Update(p.key(ip, i), bit)
	}
}

// Reset implements Predictor.
func (p *PerBit) Reset() {
	for _, b := range p.bits {
		b.Reset()
	}
}

// Name implements Predictor.
func (p *PerBit) Name() string { return fmt.Sprintf("perbit-%dbanks", 1<<len(p.bits)) }
