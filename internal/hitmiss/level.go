package hitmiss

import (
	"loadsched/internal/cache"
	"loadsched/internal/predict"
)

// LevelPredictor refines hit-miss prediction to the full hierarchy ("for
// the first level only or for all levels", §2.2): instead of a binary L1
// hit/miss, it predicts which level will service the load. Knowing that a
// load will miss L2 lets the scheduler wake dependents at the memory
// latency — and, in a multithreaded machine, is the signal §2.2 proposes
// for switching threads.
//
// A LevelPredictor still implements Predictor (PredictHit == predicted
// level is L1), so it drops into every existing configuration; the engine
// additionally consults PredictLevel when available.
type LevelPredictor interface {
	Predictor
	// PredictLevel returns the predicted servicing level.
	PredictLevel(ip, addr uint64, now int64) cache.Level
	// UpdateLevel trains with the actual level.
	UpdateLevel(ip, addr uint64, now int64, level cache.Level)
}

// TwoStage is a cascaded level predictor: one binary predictor decides
// L1-hit vs miss (exactly the §2.2 local predictor), and a second, smaller
// one decides — for predicted misses — whether the L2 will also miss.
// Misses of the second stage are rarer still, so its table can be small.
type TwoStage struct {
	l1 predict.Binary // taken = L1 miss
	l2 predict.Binary // taken = L2 miss (given an L1 miss)
}

// NewTwoStage builds the cascaded predictor with the paper's local L1
// stage and a 512-entry local L2 stage.
func NewTwoStage() *TwoStage {
	return &TwoStage{
		l1: predict.NewLocal(11, 8, 2).WithInit(0),
		l2: predict.NewLocal(9, 6, 2).WithInit(0),
	}
}

// PredictLevel implements LevelPredictor.
func (t *TwoStage) PredictLevel(ip, _ uint64, _ int64) cache.Level {
	if !t.l1.Predict(ip).Taken {
		return cache.L1
	}
	if !t.l2.Predict(ip).Taken {
		return cache.L2
	}
	return cache.Memory
}

// PredictHit implements Predictor.
func (t *TwoStage) PredictHit(ip, addr uint64, now int64) bool {
	return t.PredictLevel(ip, addr, now) == cache.L1
}

// UpdateLevel implements LevelPredictor. The second stage trains only on
// actual L1 misses — the population it predicts over.
func (t *TwoStage) UpdateLevel(ip, _ uint64, _ int64, level cache.Level) {
	t.l1.Update(ip, level != cache.L1)
	if level != cache.L1 {
		t.l2.Update(ip, level == cache.Memory)
	}
}

// Update implements Predictor; without level information a miss is assumed
// to have been serviced by L2.
func (t *TwoStage) Update(ip, addr uint64, now int64, hit bool) {
	if hit {
		t.UpdateLevel(ip, addr, now, cache.L1)
	} else {
		t.UpdateLevel(ip, addr, now, cache.L2)
	}
}

// Reset implements Predictor.
func (t *TwoStage) Reset() {
	t.l1.Reset()
	t.l2.Reset()
}

// Name implements Predictor.
func (t *TwoStage) Name() string { return "two-stage" }

// PerfectLevel is the oracle level predictor.
type PerfectLevel struct {
	// Hierarchy is the simulated data hierarchy (wired by the engine when
	// nil).
	Hierarchy *cache.Hierarchy
}

// PredictLevel implements LevelPredictor.
func (p *PerfectLevel) PredictLevel(_, addr uint64, _ int64) cache.Level {
	return p.Hierarchy.Probe(addr)
}

// PredictHit implements Predictor.
func (p *PerfectLevel) PredictHit(ip, addr uint64, now int64) bool {
	return p.PredictLevel(ip, addr, now) == cache.L1
}

// UpdateLevel implements LevelPredictor.
func (p *PerfectLevel) UpdateLevel(uint64, uint64, int64, cache.Level) {}

// Update implements Predictor.
func (p *PerfectLevel) Update(uint64, uint64, int64, bool) {}

// Reset implements Predictor.
func (p *PerfectLevel) Reset() {}

// Name implements Predictor.
func (p *PerfectLevel) Name() string { return "perfect-level" }
