// Package hitmiss implements the paper's second contribution: data-cache
// hit-miss prediction (§2.2). Predicting each load's L1 outcome lets the
// scheduler wake dependents at the actual data-ready time instead of
// speculating an L1 hit and replaying on every miss.
//
// The two configurations the paper evaluates are provided — the adapted
// local predictor (2048-entry tagless, 8-outcome history) and the hybrid
// chooser (local-512 + gshare-11 + gskew-20, majority vote) — plus the
// always-hit baseline of current processors, a perfect oracle, and the
// timing enhancement that consults the outstanding-miss queue.
package hitmiss

import (
	"fmt"

	"loadsched/internal/cache"
	"loadsched/internal/predict"
)

// Predictor predicts whether a load will hit the first-level data cache.
// ip is the load's instruction pointer; addr and now are provided for
// timing- and address-based predictors and ignored by history-only ones.
type Predictor interface {
	// PredictHit returns true if the load is predicted to hit L1.
	PredictHit(ip, addr uint64, now int64) bool
	// Update trains the predictor with the actual outcome.
	Update(ip, addr uint64, now int64, hit bool)
	// Reset clears all state.
	Reset()
	// Name identifies the configuration.
	Name() string
}

// AlwaysHit is today's implicit predictor: every load is scheduled as an L1
// hit, and every miss replays its dependents. It is the baseline of
// Figure 11.
type AlwaysHit struct{}

// PredictHit implements Predictor.
func (AlwaysHit) PredictHit(uint64, uint64, int64) bool { return true }

// Update implements Predictor.
func (AlwaysHit) Update(uint64, uint64, int64, bool) {}

// Reset implements Predictor.
func (AlwaysHit) Reset() {}

// Name implements Predictor.
func (AlwaysHit) Name() string { return "always-hit" }

// Describe canonically identifies the predictor for the simulation runner's
// memo keys.
func (AlwaysHit) Describe() string { return "always-hit" }

// binaryAdapter adapts a predict.Binary (which predicts "taken") to hit-miss
// prediction. The binary outcome is MISS (the rare event), so an unwarmed
// table defaults to predicting hits. desc canonically records the wrapped
// predictor's construction geometry for memo keys.
type binaryAdapter struct {
	bin  predict.Binary
	name string
	desc string
}

// PredictHit implements Predictor.
func (a *binaryAdapter) PredictHit(ip, _ uint64, _ int64) bool {
	return !a.bin.Predict(ip).Taken
}

// Update implements Predictor.
func (a *binaryAdapter) Update(ip, _ uint64, _ int64, hit bool) {
	a.bin.Update(ip, !hit)
}

// Reset implements Predictor.
func (a *binaryAdapter) Reset() { a.bin.Reset() }

// Name implements Predictor.
func (a *binaryAdapter) Name() string { return a.name }

// Describe canonically identifies a freshly built predictor for memo keys.
func (a *binaryAdapter) Describe() string { return a.desc }

// NewLocal returns the paper's local hit-miss predictor: a tagless table of
// 2048 entries recording the 8-outcome hit/miss history of each load (~2KB).
func NewLocal() Predictor {
	return &binaryAdapter{bin: predict.NewLocal(11, 8, 2).WithInit(0), name: "local",
		desc: "local(11,8,2)"}
}

// NewLocalSized returns a local predictor with explicit geometry, for
// sensitivity sweeps.
func NewLocalSized(indexBits, historyLen uint) Predictor {
	return &binaryAdapter{bin: predict.NewLocal(indexBits, historyLen, 2).WithInit(0), name: "local-sized",
		desc: fmt.Sprintf("local(%d,%d,2)", indexBits, historyLen)}
}

// NewChooser returns the paper's hybrid predictor: a 512-entry local
// component plus two global components — a gshare over an 11-load history
// and a gskew with 3 tables of 1K entries over a 20-load history (total
// < 2KB). The components vote by majority, and a miss is predicted only when
// the per-load local component is among the miss voters: the majority acts
// as the confidence mechanism §2.2 describes, cutting the AH-PM false alarms
// the local-only predictor suffers.
func NewChooser() Predictor {
	return &chooser{
		local:  predict.NewLocal(9, 8, 2).WithInit(0),
		gshare: predict.NewGShare(11, 11, 2).WithInit(0),
		gskew:  predict.NewGSkew(10, 20, 2).WithInit(0),
	}
}

// chooser is the hybrid HMP of §2.2.
type chooser struct {
	local  *predict.Local
	gshare *predict.GShare
	gskew  *predict.GSkew
}

// PredictHit implements Predictor.
func (c *chooser) PredictHit(ip, _ uint64, _ int64) bool {
	lm := c.local.Predict(ip).Taken // taken = miss
	gm := c.gshare.Predict(ip).Taken
	km := c.gskew.Predict(ip).Taken
	votes := 0
	for _, v := range []bool{lm, gm, km} {
		if v {
			votes++
		}
	}
	// Miss needs a majority that includes the local component; global-only
	// agreement is too often table pollution.
	return !(votes >= 2 && lm)
}

// Update implements Predictor.
func (c *chooser) Update(ip, _ uint64, _ int64, hit bool) {
	c.local.Update(ip, !hit)
	c.gshare.Update(ip, !hit)
	c.gskew.Update(ip, !hit)
}

// Reset implements Predictor.
func (c *chooser) Reset() {
	c.local.Reset()
	c.gshare.Reset()
	c.gskew.Reset()
}

// Name implements Predictor.
func (c *chooser) Name() string { return "chooser" }

// Describe canonically identifies the fixed-geometry chooser for memo keys.
func (c *chooser) Describe() string { return "chooser(l9/8,g11/11,k10/20)" }

// Perfect is the oracle predictor: it probes the actual cache state at
// prediction time. Its speedup bounds what any real HMP can deliver
// (Figure 11's "Perfect" bars).
type Perfect struct {
	// Hierarchy is the data hierarchy the engine simulates.
	Hierarchy *cache.Hierarchy
}

// PredictHit implements Predictor.
func (p *Perfect) PredictHit(_, addr uint64, _ int64) bool {
	return p.Hierarchy.Probe(addr) == cache.L1
}

// Update implements Predictor.
func (p *Perfect) Update(uint64, uint64, int64, bool) {}

// Reset implements Predictor.
func (p *Perfect) Reset() {}

// Name implements Predictor.
func (p *Perfect) Name() string { return "perfect" }

// Describe canonically identifies the oracle for memo keys. A Perfect with
// a pre-wired external hierarchy observes state the description cannot
// capture, so it returns "" (not memoizable); the common engine-injected
// form (Hierarchy left nil) is fully determined by the run itself.
func (p *Perfect) Describe() string {
	if p.Hierarchy != nil {
		return ""
	}
	return "perfect"
}

// Outcomes tallies loads into the four hit-miss prediction categories of
// §2.2.
type Outcomes struct {
	// AHPH: actual hit, predicted hit — today's common case, no effect.
	AHPH uint64
	// AHPM: actual hit, predicted miss — dependents needlessly delayed.
	AHPM uint64
	// AMPH: actual miss, predicted hit — the expensive replay case.
	AMPH uint64
	// AMPM: actual miss, predicted miss — a caught miss, the win.
	AMPM uint64
}

// Loads returns the number of classified loads.
func (o *Outcomes) Loads() uint64 { return o.AHPH + o.AHPM + o.AMPH + o.AMPM }

// Misses returns all actual misses (the traditional method's mispredictions).
func (o *Outcomes) Misses() uint64 { return o.AMPH + o.AMPM }

// Record tallies one load.
func (o *Outcomes) Record(actualHit, predictedHit bool) {
	switch {
	case actualHit && predictedHit:
		o.AHPH++
	case actualHit && !predictedHit:
		o.AHPM++
	case !actualHit && predictedHit:
		o.AMPH++
	default:
		o.AMPM++
	}
}

// Add accumulates another tally.
func (o *Outcomes) Add(x Outcomes) {
	o.AHPH += x.AHPH
	o.AHPM += x.AHPM
	o.AMPH += x.AMPH
	o.AMPM += x.AMPM
}

// Frac returns n as a fraction of all loads (the unit of Figure 10).
func (o *Outcomes) Frac(n uint64) float64 {
	if o.Loads() == 0 {
		return 0
	}
	return float64(n) / float64(o.Loads())
}
