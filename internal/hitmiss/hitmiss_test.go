package hitmiss

import (
	"math/rand"
	"testing"

	"loadsched/internal/cache"
)

func TestAlwaysHit(t *testing.T) {
	p := AlwaysHit{}
	if !p.PredictHit(1, 2, 3) {
		t.Fatal("AlwaysHit must predict hit")
	}
	p.Update(1, 2, 3, false) // must not panic
	if p.Name() != "always-hit" {
		t.Fatal("name")
	}
}

func TestLocalDefaultsToHit(t *testing.T) {
	p := NewLocal()
	if !p.PredictHit(0x400100, 0, 0) {
		t.Fatal("unwarmed predictor must default to hit (the >95% case)")
	}
}

func TestLocalLearnsAlwaysMissLoad(t *testing.T) {
	p := NewLocal()
	ip := uint64(0x400100)
	for i := 0; i < 20; i++ {
		p.Update(ip, 0, 0, false)
	}
	if p.PredictHit(ip, 0, 0) {
		t.Fatal("load that always misses must be predicted miss")
	}
	// And a different load is unaffected.
	if !p.PredictHit(0x500100, 0, 0) {
		t.Fatal("other loads must still default to hit")
	}
}

func TestLocalLearnsPeriodicMissPattern(t *testing.T) {
	// A streaming load misses every 8th access (64B line / 8B stride). The
	// 8-deep local history must catch most of these.
	p := NewLocal()
	ip := uint64(0x400100)
	step := 0
	outcome := func() bool { return step%8 != 0 } // hit except every 8th
	for i := 0; i < 400; i++ {
		p.Update(ip, 0, 0, outcome())
		step++
	}
	correct, total := 0, 0
	for i := 0; i < 400; i++ {
		if p.PredictHit(ip, 0, 0) == outcome() {
			correct++
		}
		total++
		p.Update(ip, 0, 0, outcome())
		step++
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("local accuracy on period-8 miss pattern = %.3f", acc)
	}
}

func TestChooserLearns(t *testing.T) {
	p := NewChooser()
	missIP, hitIP := uint64(0x400100), uint64(0x400200)
	for i := 0; i < 200; i++ {
		p.Update(missIP, 0, 0, false)
		p.Update(hitIP, 0, 0, true)
	}
	if p.PredictHit(missIP, 0, 0) {
		t.Fatal("chooser should predict miss for an always-missing load")
	}
	if !p.PredictHit(hitIP, 0, 0) {
		t.Fatal("chooser should predict hit for an always-hitting load")
	}
}

func TestChooserMoreConservativeThanLocal(t *testing.T) {
	// On a noisy load (30% misses, random), the chooser's majority vote
	// should produce fewer miss predictions (fewer AH-PM) than local alone —
	// the paper's stated motivation for the hybrid.
	rng := rand.New(rand.NewSource(11))
	local, chooser := NewLocal(), NewChooser()
	ip := uint64(0x400100)
	localPM, chooserPM, hits := 0, 0, 0
	for i := 0; i < 5000; i++ {
		hit := rng.Float64() > 0.3
		if hit {
			hits++
			if !local.PredictHit(ip, 0, 0) {
				localPM++
			}
			if !chooser.PredictHit(ip, 0, 0) {
				chooserPM++
			}
		}
		local.Update(ip, 0, 0, hit)
		chooser.Update(ip, 0, 0, hit)
	}
	if chooserPM > localPM {
		t.Fatalf("chooser AH-PM (%d) should not exceed local AH-PM (%d) on noise", chooserPM, localPM)
	}
}

func TestPerfectOracle(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	p := &Perfect{Hierarchy: h}
	if p.PredictHit(0, 0x4000, 0) {
		t.Fatal("cold line must be predicted miss")
	}
	h.Access(0x4000)
	if !p.PredictHit(0, 0x4000, 0) {
		t.Fatal("resident line must be predicted hit")
	}
}

func TestTimingDynamicMiss(t *testing.T) {
	q := cache.NewMissQueue(8)
	tp := NewTiming(AlwaysHit{}, q)
	// A fill for line 0x8000 is in flight until cycle 100.
	q.RecordMiss(0x8000, 100)
	if tp.PredictHit(0x400100, 0x8010, 50) {
		t.Fatal("access to an outstanding line must be predicted miss")
	}
	// After the fill completes it is recently serviced → hit.
	if !tp.PredictHit(0x400100, 0x8010, 150) {
		t.Fatal("recently serviced line must be predicted hit")
	}
	// Unrelated lines defer to the base predictor (always-hit).
	if !tp.PredictHit(0x400100, 0xF000, 50) {
		t.Fatal("unknown line must defer to base")
	}
}

func TestTimingOverridesHistory(t *testing.T) {
	q := cache.NewMissQueue(8)
	base := NewLocal()
	ip := uint64(0x400100)
	for i := 0; i < 20; i++ {
		base.Update(ip, 0, 0, false) // history says miss
	}
	tp := NewTiming(base, q)
	q.RecordMiss(0x8000, 100)
	q.Advance(150)
	if !tp.PredictHit(ip, 0x8000, 160) {
		t.Fatal("recently-serviced must override a miss history")
	}
}

func TestTimingResetAndName(t *testing.T) {
	q := cache.NewMissQueue(8)
	tp := NewTiming(NewLocal(), q)
	if tp.Name() != "local+timing" {
		t.Fatalf("name = %q", tp.Name())
	}
	q.RecordMiss(0x8000, 100)
	tp.Reset()
	if q.Outstanding(0x8000, 50) {
		t.Fatal("Reset must clear the queue")
	}
}

func TestOutcomesAccounting(t *testing.T) {
	var o Outcomes
	o.Record(true, true)
	o.Record(true, false)
	o.Record(false, true)
	o.Record(false, false)
	o.Record(false, false)
	if o.AHPH != 1 || o.AHPM != 1 || o.AMPH != 1 || o.AMPM != 2 {
		t.Fatalf("tallies wrong: %+v", o)
	}
	if o.Loads() != 5 || o.Misses() != 3 {
		t.Fatalf("derived counts wrong: loads=%d misses=%d", o.Loads(), o.Misses())
	}
	if o.Frac(o.Misses()) != 0.6 {
		t.Fatalf("Frac = %v", o.Frac(o.Misses()))
	}
	var sum Outcomes
	sum.Add(o)
	sum.Add(o)
	if sum.Loads() != 10 {
		t.Fatal("Add broken")
	}
	var empty Outcomes
	if empty.Frac(3) != 0 {
		t.Fatal("empty Frac must be 0")
	}
}

func TestResetClearsLearning(t *testing.T) {
	for _, p := range []Predictor{NewLocal(), NewChooser()} {
		ip := uint64(0x400100)
		for i := 0; i < 50; i++ {
			p.Update(ip, 0, 0, false)
		}
		if p.PredictHit(ip, 0, 0) {
			t.Fatalf("%s: did not learn", p.Name())
		}
		p.Reset()
		if !p.PredictHit(ip, 0, 0) {
			t.Fatalf("%s: Reset did not restore hit default", p.Name())
		}
	}
}
