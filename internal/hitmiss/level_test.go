package hitmiss

import (
	"testing"

	"loadsched/internal/cache"
)

func TestTwoStageDefaultsToL1(t *testing.T) {
	p := NewTwoStage()
	if p.PredictLevel(0x400100, 0, 0) != cache.L1 {
		t.Fatal("unwarmed two-stage must predict L1")
	}
	if !p.PredictHit(0x400100, 0, 0) {
		t.Fatal("PredictHit must agree with PredictLevel")
	}
}

func TestTwoStageLearnsL2Misses(t *testing.T) {
	p := NewTwoStage()
	ip := uint64(0x400100)
	for i := 0; i < 30; i++ {
		p.UpdateLevel(ip, 0, 0, cache.Memory)
	}
	if p.PredictLevel(ip, 0, 0) != cache.Memory {
		t.Fatalf("load always missing L2 predicted %v", p.PredictLevel(ip, 0, 0))
	}
	// A load that misses L1 but hits L2.
	ip2 := uint64(0x400200)
	for i := 0; i < 30; i++ {
		p.UpdateLevel(ip2, 0, 0, cache.L2)
	}
	if p.PredictLevel(ip2, 0, 0) != cache.L2 {
		t.Fatalf("L2-hitting load predicted %v", p.PredictLevel(ip2, 0, 0))
	}
}

func TestTwoStageBinaryUpdateCompatible(t *testing.T) {
	p := NewTwoStage()
	ip := uint64(0x400100)
	for i := 0; i < 20; i++ {
		p.Update(ip, 0, 0, false) // binary miss → assume L2
	}
	if p.PredictLevel(ip, 0, 0) != cache.L2 {
		t.Fatalf("binary-trained miss should predict L2, got %v", p.PredictLevel(ip, 0, 0))
	}
	p.Reset()
	if p.PredictLevel(ip, 0, 0) != cache.L1 {
		t.Fatal("Reset must restore L1 default")
	}
}

func TestTwoStageSecondStageIsolated(t *testing.T) {
	// L2-stage training must not corrupt loads that always hit L1.
	p := NewTwoStage()
	hitIP, missIP := uint64(0x400300), uint64(0x400400)
	for i := 0; i < 50; i++ {
		p.UpdateLevel(hitIP, 0, 0, cache.L1)
		p.UpdateLevel(missIP, 0, 0, cache.Memory)
	}
	if p.PredictLevel(hitIP, 0, 0) != cache.L1 {
		t.Fatal("hitting load corrupted by second stage")
	}
}

func TestPerfectLevelOracle(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	p := &PerfectLevel{Hierarchy: h}
	if p.PredictLevel(0, 0x7000, 0) != cache.Memory {
		t.Fatal("cold line is a memory access")
	}
	h.Access(0x7000)
	if p.PredictLevel(0, 0x7000, 0) != cache.L1 {
		t.Fatal("resident line is an L1 hit")
	}
	if p.Name() != "perfect-level" || NewTwoStage().Name() != "two-stage" {
		t.Fatal("names")
	}
}
