package hitmiss

import "loadsched/internal/cache"

// Timing wraps a base predictor with the paper's timing enhancement (§2.2):
// dynamic misses and just-serviced lines override the history prediction.
//
//   - If the accessed line has a fill in flight (it sits in the outstanding
//     miss queue), the load will also miss — predict miss regardless of
//     history.
//   - If the line completed a fill recently (recently-serviced buffer), the
//     load will almost surely hit — predict hit.
//   - Otherwise defer to the base predictor.
//
// The engine owns the MissQueue and feeds it actual miss events; Timing only
// consults it.
type Timing struct {
	// Base is the underlying history predictor.
	Base Predictor
	// Queue is the outstanding-miss queue (MSHR) plus recently-serviced
	// buffer maintained by the execution engine.
	Queue *cache.MissQueue
}

// NewTiming wraps base with timing information from queue.
func NewTiming(base Predictor, queue *cache.MissQueue) *Timing {
	return &Timing{Base: base, Queue: queue}
}

// PredictHit implements Predictor.
func (t *Timing) PredictHit(ip, addr uint64, now int64) bool {
	t.Queue.Advance(now)
	if t.Queue.Outstanding(addr, now) {
		return false // dynamic miss: the line is still being fetched
	}
	if t.Queue.RecentlyServiced(addr, now) {
		return true // the line just arrived
	}
	return t.Base.PredictHit(ip, addr, now)
}

// Update implements Predictor. Only the history component trains; the queue
// is maintained by the engine from actual miss traffic.
func (t *Timing) Update(ip, addr uint64, now int64, hit bool) {
	t.Base.Update(ip, addr, now, hit)
}

// Reset implements Predictor.
func (t *Timing) Reset() {
	t.Base.Reset()
	t.Queue.Reset()
}

// Name implements Predictor.
func (t *Timing) Name() string { return t.Base.Name() + "+timing" }
