// Package addrpred implements a correlated load-address predictor in the
// spirit of Bekerman et al. [Beke99] ("Correlated Load-Address Predictor",
// ISCA-26), which the paper adapts for bank prediction: predicting the
// load's effective address trivially yields its bank bit.
//
// The implementation keeps, per static load, the last observed address, the
// last stride, and a confidence counter that rises while the stride repeats.
// Stack and global loads (constant address, stride 0) and streaming loads
// (constant stride) predict with high confidence; pointer-chasing loads
// never become confident and abstain. That yields the [Beke99] operating
// point the paper quotes: ≈70% of loads predicted with ≈98% accuracy.
package addrpred

import "loadsched/internal/predict"

// entry is one predictor row.
type entry struct {
	tag      uint64
	valid    bool
	lastAddr uint64
	stride   int64
	conf     predict.SatCounter
	lru      uint64
}

// Prediction is a predicted effective address.
type Prediction struct {
	// Addr is the predicted address (last + stride).
	Addr uint64
	// Confident reports whether the stride has repeated enough for the
	// prediction to be trusted.
	Confident bool
	// Hit reports whether the load had a table entry at all.
	Hit bool
}

// Predictor is a set-associative last-address + stride predictor. The ways
// of all sets live in one flat backing slice (set s occupies
// entries[s*ways : (s+1)*ways]) so building a predictor is a single
// allocation and resetting it never regrows the heap.
type Predictor struct {
	entries []entry
	numSets int
	ways    int
	tick    uint64
	// ConfThreshold is the confidence level at which predictions are
	// reported Confident (counter value, 0..3).
	ConfThreshold uint8
}

// New builds a predictor with the given entry count (power of two when
// divided by ways) and associativity.
func New(entries, ways int) *Predictor {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("addrpred: bad geometry")
	}
	return &Predictor{
		entries: make([]entry, entries), numSets: entries / ways,
		ways: ways, ConfThreshold: 2,
	}
}

func (p *Predictor) index(ip uint64) (uint64, uint64) {
	v := ip >> 2
	return v % uint64(p.numSets), v / uint64(p.numSets)
}

// set returns the ways of one set as a sub-slice of the flat backing array.
func (p *Predictor) set(s uint64) []entry {
	return p.entries[int(s)*p.ways : int(s+1)*p.ways]
}

func (p *Predictor) find(ip uint64) *entry {
	set, tag := p.index(ip)
	ways := p.set(set)
	for i := range ways {
		e := &ways[i]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// Predict returns the address prediction for the load at ip.
func (p *Predictor) Predict(ip uint64) Prediction {
	e := p.find(ip)
	if e == nil {
		return Prediction{}
	}
	return Prediction{
		Addr:      uint64(int64(e.lastAddr) + e.stride),
		Confident: e.conf.Value() >= p.ConfThreshold,
		Hit:       true,
	}
}

// Update trains the predictor with the load's actual address.
func (p *Predictor) Update(ip, addr uint64) {
	e := p.find(ip)
	if e == nil {
		set, tag := p.index(ip)
		ways := p.set(set)
		victim := 0
		for i := range ways {
			if !ways[i].valid {
				victim = i
				break
			}
			if ways[i].lru < ways[victim].lru {
				victim = i
			}
		}
		p.tick++
		ways[victim] = entry{
			tag: tag, valid: true, lastAddr: addr,
			conf: predict.NewSatCounter(2), lru: p.tick,
		}
		return
	}
	p.tick++
	e.lru = p.tick
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride {
		e.conf.Inc()
	} else {
		// A broken stride costs two: drop confidence fast so irregular
		// loads abstain.
		e.conf.Dec()
		e.conf.Dec()
		e.stride = stride
	}
	e.lastAddr = addr
}

// Reset clears the table in place, LRU clock included.
func (p *Predictor) Reset() {
	clear(p.entries)
	p.tick = 0
}
