// Package addrpred implements a correlated load-address predictor in the
// spirit of Bekerman et al. [Beke99] ("Correlated Load-Address Predictor",
// ISCA-26), which the paper adapts for bank prediction: predicting the
// load's effective address trivially yields its bank bit.
//
// The implementation keeps, per static load, the last observed address, the
// last stride, and a confidence counter that rises while the stride repeats.
// Stack and global loads (constant address, stride 0) and streaming loads
// (constant stride) predict with high confidence; pointer-chasing loads
// never become confident and abstain. That yields the [Beke99] operating
// point the paper quotes: ≈70% of loads predicted with ≈98% accuracy.
package addrpred

// confMax is the saturation value of the 2-bit per-row confidence counter.
const confMax = 3

// confInit is the counter's initial (weakly-unconfident) value.
const confInit = 1

// Prediction is a predicted effective address.
type Prediction struct {
	// Addr is the predicted address (last + stride).
	Addr uint64
	// Confident reports whether the stride has repeated enough for the
	// prediction to be trusted.
	Confident bool
	// Hit reports whether the load had a table entry at all.
	Hit bool
}

// Predictor is a set-associative last-address + stride predictor in
// structure-of-arrays layout: each row field is its own flat slice, with
// set s's ways occupying indexes [s*ways, (s+1)*ways). A lookup walks the
// set's slice of the dense tag/valid arrays without touching address or
// stride state, and building or resetting the predictor never regrows the
// heap.
type Predictor struct {
	tag      []uint64
	valid    []bool
	lastAddr []uint64
	stride   []int64
	conf     []uint8
	lru      []uint64

	numSets int
	ways    int
	tick    uint64
	// ConfThreshold is the confidence level at which predictions are
	// reported Confident (counter value, 0..3).
	ConfThreshold uint8
}

// New builds a predictor with the given entry count (power of two when
// divided by ways) and associativity.
func New(entries, ways int) *Predictor {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("addrpred: bad geometry")
	}
	return &Predictor{
		tag:      make([]uint64, entries),
		valid:    make([]bool, entries),
		lastAddr: make([]uint64, entries),
		stride:   make([]int64, entries),
		conf:     make([]uint8, entries),
		lru:      make([]uint64, entries),
		numSets:  entries / ways,
		ways:     ways, ConfThreshold: 2,
	}
}

func (p *Predictor) index(ip uint64) (uint64, uint64) {
	v := ip >> 2
	return v % uint64(p.numSets), v / uint64(p.numSets)
}

// find returns the row index holding ip, or -1.
func (p *Predictor) find(ip uint64) int {
	set, tag := p.index(ip)
	base := int(set) * p.ways
	for i := base; i < base+p.ways; i++ {
		if p.valid[i] && p.tag[i] == tag {
			return i
		}
	}
	return -1
}

// Predict returns the address prediction for the load at ip.
func (p *Predictor) Predict(ip uint64) Prediction {
	i := p.find(ip)
	if i < 0 {
		return Prediction{}
	}
	return Prediction{
		Addr:      uint64(int64(p.lastAddr[i]) + p.stride[i]),
		Confident: p.conf[i] >= p.ConfThreshold,
		Hit:       true,
	}
}

// Update trains the predictor with the load's actual address.
func (p *Predictor) Update(ip, addr uint64) {
	i := p.find(ip)
	if i < 0 {
		set, tag := p.index(ip)
		base := int(set) * p.ways
		victim := base
		for w := base; w < base+p.ways; w++ {
			if !p.valid[w] {
				victim = w
				break
			}
			if p.lru[w] < p.lru[victim] {
				victim = w
			}
		}
		p.tick++
		p.tag[victim] = tag
		p.valid[victim] = true
		p.lastAddr[victim] = addr
		p.stride[victim] = 0
		p.conf[victim] = confInit
		p.lru[victim] = p.tick
		return
	}
	p.tick++
	p.lru[i] = p.tick
	stride := int64(addr) - int64(p.lastAddr[i])
	if stride == p.stride[i] {
		if p.conf[i] < confMax {
			p.conf[i]++
		}
	} else {
		// A broken stride costs two: drop confidence fast so irregular
		// loads abstain.
		if p.conf[i] > 2 {
			p.conf[i] -= 2
		} else {
			p.conf[i] = 0
		}
		p.stride[i] = stride
	}
	p.lastAddr[i] = addr
}

// Reset clears the table in place, LRU clock included.
func (p *Predictor) Reset() {
	clear(p.tag)
	clear(p.valid)
	clear(p.lastAddr)
	clear(p.stride)
	clear(p.conf)
	clear(p.lru)
	p.tick = 0
}
