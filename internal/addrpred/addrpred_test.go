package addrpred

import (
	"math/rand"
	"testing"
)

func TestColdMiss(t *testing.T) {
	p := New(256, 4)
	pr := p.Predict(0x400100)
	if pr.Hit || pr.Confident {
		t.Fatal("cold table must not predict")
	}
}

func TestConstantAddress(t *testing.T) {
	p := New(256, 4)
	ip, addr := uint64(0x400100), uint64(0x7fff0010)
	for i := 0; i < 5; i++ {
		p.Update(ip, addr)
	}
	pr := p.Predict(ip)
	if !pr.Confident || pr.Addr != addr {
		t.Fatalf("constant-address load not predicted: %+v", pr)
	}
}

func TestStride(t *testing.T) {
	p := New(256, 4)
	ip := uint64(0x400100)
	for i := 0; i < 6; i++ {
		p.Update(ip, uint64(0x1000+i*8))
	}
	pr := p.Predict(ip)
	if !pr.Confident {
		t.Fatal("steady stride must be confident")
	}
	if pr.Addr != 0x1000+6*8 {
		t.Fatalf("predicted %#x want %#x", pr.Addr, 0x1000+6*8)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(256, 4)
	ip := uint64(0x400100)
	for i := 0; i < 6; i++ {
		p.Update(ip, uint64(0x10000-i*16))
	}
	pr := p.Predict(ip)
	if !pr.Confident || pr.Addr != uint64(0x10000-6*16) {
		t.Fatalf("negative stride mispredicted: %+v", pr)
	}
}

func TestIrregularLoadAbstains(t *testing.T) {
	p := New(256, 4)
	rng := rand.New(rand.NewSource(5))
	ip := uint64(0x400100)
	confident := 0
	for i := 0; i < 200; i++ {
		if p.Predict(ip).Confident {
			confident++
		}
		p.Update(ip, uint64(rng.Intn(1<<20)))
	}
	if confident > 10 {
		t.Fatalf("random-address load was confident %d/200 times", confident)
	}
}

func TestStrideChangeRelearns(t *testing.T) {
	p := New(256, 4)
	ip := uint64(0x400100)
	for i := 0; i < 8; i++ {
		p.Update(ip, uint64(0x1000+i*8))
	}
	// Switch to stride 64 from a new base.
	base := uint64(0x9000)
	for i := 0; i < 8; i++ {
		p.Update(ip, base+uint64(i*64))
	}
	pr := p.Predict(ip)
	if !pr.Confident || pr.Addr != base+8*64 {
		t.Fatalf("did not relearn new stride: %+v", pr)
	}
}

func TestEvictionLRU(t *testing.T) {
	p := New(2, 2) // one set, two ways
	a, b, c := uint64(4), uint64(8), uint64(12)
	p.Update(a, 0x100)
	p.Update(b, 0x200)
	p.Update(a, 0x100) // refresh a
	p.Update(c, 0x300) // evicts b
	if !p.Predict(a).Hit || !p.Predict(c).Hit {
		t.Fatal("resident entries lost")
	}
	if p.Predict(b).Hit {
		t.Fatal("LRU entry should be gone")
	}
}

func TestReset(t *testing.T) {
	p := New(256, 4)
	p.Update(0x400100, 0x1000)
	p.Reset()
	if p.Predict(0x400100).Hit {
		t.Fatal("Reset must clear")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10, 3)
}
