package cache

// Banking describes the multi-banked organization of the L1 data cache
// (paper §2.3). Banks are line-interleaved: bank = bits of the line address.
type Banking struct {
	// Banks is the number of banks (power of two; the paper studies 2).
	Banks int
	// LineBytes is the interleaving granularity (the cache line size).
	LineBytes int
}

// DefaultBanking is the two-bank, 64-byte-interleaved configuration the
// paper evaluates.
func DefaultBanking() Banking { return Banking{Banks: 2, LineBytes: 64} }

// BankOf returns the bank servicing addr.
func (b Banking) BankOf(addr uint64) int {
	line := addr / uint64(b.LineBytes)
	return int(line % uint64(b.Banks))
}

// BankBits returns log2(Banks).
func (b Banking) BankBits() int {
	n := 0
	for 1<<n < b.Banks {
		n++
	}
	return n
}

// ConflictTracker counts bank conflicts among the loads dispatched in one
// cycle. The scheduler calls Begin at the start of a cycle and Dispatch for
// every memory access it issues; Dispatch reports whether the access
// conflicts with an earlier access to the same bank this cycle.
type ConflictTracker struct {
	banking Banking
	used    []bool

	// Conflicts counts same-cycle same-bank collisions since construction.
	Conflicts uint64
	// Accesses counts all dispatched accesses.
	Accesses uint64
}

// NewConflictTracker builds a tracker for the banking scheme.
func NewConflictTracker(b Banking) *ConflictTracker {
	return &ConflictTracker{banking: b, used: make([]bool, b.Banks)}
}

// Begin starts a new cycle.
func (t *ConflictTracker) Begin() {
	for i := range t.used {
		t.used[i] = false
	}
}

// Dispatch registers an access to addr in the current cycle and reports
// whether it conflicts with a prior same-cycle access to the same bank.
func (t *ConflictTracker) Dispatch(addr uint64) bool {
	t.Accesses++
	bank := t.banking.BankOf(addr)
	if t.used[bank] {
		t.Conflicts++
		return true
	}
	t.used[bank] = true
	return false
}

// BankFree reports whether the given bank is still unused this cycle.
func (t *ConflictTracker) BankFree(bank int) bool { return !t.used[bank] }

// Reset restores construction state in place: per-cycle claims and the
// conflict/access tallies.
func (t *ConflictTracker) Reset() {
	t.Begin()
	t.Conflicts, t.Accesses = 0, 0
}
