package cache

// Level identifies where in the hierarchy a load's data was found.
type Level int

const (
	// L1 means the access hit the first-level data cache.
	L1 Level = iota
	// L2 means the access missed L1 but hit the unified second-level cache.
	L2
	// Memory means the access missed both cache levels.
	Memory
)

// String names the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "mem"
	}
}

// Latencies holds the load-to-use latency, in cycles after dispatch, for each
// hierarchy level. The paper's deep-pipe example (Fig 3): an L1 hit executes
// with a latency of 8 cycles after scheduling (2 RF + 1 AGU + 5 cache) and an
// L1-miss/L2-hit takes 15.
type Latencies struct {
	L1, L2, Memory int
	// HitIndication is the number of cycles after dispatch at which the
	// hit/miss outcome becomes known (5 in the paper's example). An AH-PM
	// load's dependents wait for this indication before dispatching.
	HitIndication int
}

// DefaultLatencies mirrors the paper's pipeline example with a 60-cycle
// memory access.
func DefaultLatencies() Latencies {
	return Latencies{L1: 8, L2: 15, Memory: 60, HitIndication: 5}
}

// Of returns the latency for a level.
func (l Latencies) Of(level Level) int {
	switch level {
	case L1:
		return l.L1
	case L2:
		return l.L2
	default:
		return l.Memory
	}
}

// HierarchyConfig configures the cache levels. L1I is geometry only: the
// instruction cache carries no timing (traces arrive pre-fetched), but its
// configuration is validated alongside L1D/L2 so a machine description with
// an impossible front-end geometry is rejected rather than silently
// ignored. A zero L1I means "not modelled" and skips validation.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
}

// DefaultHierarchyConfig is the machine of §3.1: 16K L1I, 16K L1D and 256K
// unified L2, 4-way, 64-byte lines.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L1D: Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L2:  Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 4},
	}
}

// Hierarchy is the two-level data hierarchy. Access semantics are inclusive:
// an L1 miss that hits L2 fills L1; a full miss fills both.
type Hierarchy struct {
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{l1d: New(cfg.L1D), l2: New(cfg.L2)}
}

// L1D exposes the first-level data cache.
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L2 exposes the unified second level.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Access performs a data access and returns the level that serviced it,
// updating both caches' contents and statistics.
func (h *Hierarchy) Access(addr uint64) Level {
	if h.l1d.Access(addr) {
		return L1
	}
	if h.l2.Access(addr) {
		return L2
	}
	return Memory
}

// Probe returns the level that would service addr without changing any
// state. It is the oracle used by perfect hit-miss prediction.
func (h *Hierarchy) Probe(addr uint64) Level {
	if h.l1d.Contains(addr) {
		return L1
	}
	if h.l2.Contains(addr) {
		return L2
	}
	return Memory
}

// Flush empties both levels.
func (h *Hierarchy) Flush() {
	h.l1d.Flush()
	h.l2.Flush()
}

// Reset restores both levels to construction state in place. The Hierarchy
// value itself survives, so policies holding a pointer to it (the perfect
// predictors) stay valid across engine reuse.
func (h *Hierarchy) Reset() {
	h.l1d.Reset()
	h.l2.Reset()
}
