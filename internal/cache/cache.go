// Package cache models the memory hierarchy of the simulated machine: set
// associative caches, a two-level hierarchy (16K L1I, 16K L1D, 256K unified
// L2, 4-way, 64-byte lines — paper §3.1), a multi-banked L1 data cache, an
// outstanding-miss queue (MSHR) and a recently-serviced buffer. The last two
// support the hit-miss predictor's timing enhancement (paper §2.2).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Ways is the set associativity.
	Ways int
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by way size %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

type line struct {
	tag   uint64
	valid bool
	// lru is a per-set timestamp; larger is more recent.
	lru uint64
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// presence only (no data), which is all a timing simulator needs. The ways
// of all sets live in one flat backing slice (set s occupies
// lines[s*Ways : (s+1)*Ways]) so building a cache is a single allocation and
// resetting it never regrows the heap.
type Cache struct {
	cfg      Config
	lines    []line
	lineBits uint
	setMask  uint64
	tick     uint64

	// Hits and Misses count Access results since the last ResetStats.
	Hits, Misses uint64
}

// New builds a cache; it panics on invalid geometry (configurations are
// static in this codebase, so an error return would only be rethrown).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	c.lineBits = uint(log2(cfg.LineBytes))
	c.setMask = uint64(cfg.Sets() - 1)
	c.lines = make([]line, cfg.Sets()*cfg.Ways)
	return c
}

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineBits
	return lineAddr & c.setMask, lineAddr >> uint(log2(c.cfg.Sets()))
}

// set returns the ways of one set as a sub-slice of the flat backing array.
func (c *Cache) set(s uint64) []line {
	w := c.cfg.Ways
	return c.lines[int(s)*w : int(s+1)*w]
}

// Contains reports whether addr's line is present, without touching LRU or
// statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if l := &ways[i]; l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr; on a miss the line is filled (possibly evicting the
// LRU way). It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	set, tag := c.index(addr)
	ways := c.set(set)
	victim := 0
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			l.lru = c.tick
			c.Hits++
			return true
		}
		if !ways[victim].valid {
			continue // keep first invalid way as victim
		}
		if !l.valid || l.lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = line{tag: tag, valid: true, lru: c.tick}
	c.Misses++
	return false
}

// Touch fills addr's line without counting statistics (used for warmup and
// for prefetch-like fills).
func (c *Cache) Touch(addr uint64) {
	h, m := c.Hits, c.Misses
	c.Access(addr)
	c.Hits, c.Misses = h, m
}

// Invalidate removes addr's line if present.
func (c *Cache) Invalidate(addr uint64) {
	set, tag := c.index(addr)
	ways := c.set(set)
	for i := range ways {
		if l := &ways[i]; l.valid && l.tag == tag {
			l.valid = false
		}
	}
}

// Flush invalidates every line.
func (c *Cache) Flush() {
	clear(c.lines)
}

// ResetStats zeroes the hit/miss counters.
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }

// Reset restores construction state in place — contents, LRU clock and
// statistics — without reallocating the line array, so one cache can back
// many simulation runs.
func (c *Cache) Reset() {
	c.Flush()
	c.tick = 0
	c.ResetStats()
}

// MissRate returns Misses/(Hits+Misses), or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}
