package cache

// MissQueue models the outstanding-miss queue (MSHR file) plus the small
// "recently serviced" buffer the paper suggests for the hit-miss predictor's
// timing enhancement (§2.2): if a load accesses a line that is currently
// being fetched it will also miss (a dynamic miss); if the line was serviced
// recently it will most likely hit.
type MissQueue struct {
	capacity int
	// entries maps a line address to the cycle its fill completes.
	entries map[uint64]int64
	// order is the FIFO of line addresses for capacity eviction.
	order []uint64
	// minReady is a lower bound on the earliest completion among entries
	// (stale-low is fine; it only costs one redundant walk). Advance is
	// called once per load execution and the queue is usually either empty
	// or all in-flight, so the bound turns the common call into a compare.
	minReady int64

	// serviced is a ring of recently completed fills.
	serviced    []servicedLine
	servicedPos int
	// ServicedWindow is how many cycles after a fill a line is considered
	// "recently serviced".
	ServicedWindow int64
}

type servicedLine struct {
	line    uint64
	readyAt int64
	valid   bool
}

// NewMissQueue builds a queue of the given capacity with a recently-serviced
// ring of the same size and a default 200-cycle serviced window.
func NewMissQueue(capacity int) *MissQueue {
	if capacity <= 0 {
		capacity = 8
	}
	return &MissQueue{
		capacity:       capacity,
		entries:        make(map[uint64]int64, capacity),
		serviced:       make([]servicedLine, capacity),
		ServicedWindow: 200,
	}
}

func lineAddr(addr uint64) uint64 { return addr &^ 63 }

// RecordMiss registers that addr's line started a fill completing at readyAt.
// If the queue is full the oldest entry is retired to the serviced ring.
func (q *MissQueue) RecordMiss(addr uint64, readyAt int64) {
	line := lineAddr(addr)
	if _, ok := q.entries[line]; ok {
		return // secondary miss merges into the existing entry
	}
	if len(q.order) >= q.capacity {
		// Shift in place rather than re-slicing: advancing the slice start
		// would creep along the backing array and force append to reallocate.
		oldest := q.order[0]
		copy(q.order, q.order[1:])
		q.order = q.order[:len(q.order)-1]
		q.retire(oldest, q.entries[oldest])
		delete(q.entries, oldest)
	}
	if len(q.order) == 0 || readyAt < q.minReady {
		q.minReady = readyAt
	}
	q.entries[line] = readyAt
	q.order = append(q.order, line)
}

func (q *MissQueue) retire(line uint64, readyAt int64) {
	q.serviced[q.servicedPos] = servicedLine{line: line, readyAt: readyAt, valid: true}
	q.servicedPos = (q.servicedPos + 1) % len(q.serviced)
}

// Advance retires all fills that completed at or before now into the
// serviced ring. Call once per prediction with the current cycle.
func (q *MissQueue) Advance(now int64) {
	if len(q.order) == 0 || now < q.minReady {
		return // nothing in flight can have completed yet
	}
	kept := q.order[:0]
	const maxInt64 = 1<<63 - 1
	min := int64(maxInt64)
	for _, line := range q.order {
		ready := q.entries[line]
		if ready <= now {
			q.retire(line, ready)
			delete(q.entries, line)
			continue
		}
		if ready < min {
			min = ready
		}
		kept = append(kept, line)
	}
	q.order = kept
	q.minReady = min
}

// Outstanding reports whether addr's line has a fill in flight at cycle now:
// a load to it will dynamically miss.
func (q *MissQueue) Outstanding(addr uint64, now int64) bool {
	if len(q.order) == 0 {
		return false
	}
	ready, ok := q.entries[lineAddr(addr)]
	return ok && ready > now
}

// ReadyAt returns the completion cycle of addr's in-flight fill, if any.
func (q *MissQueue) ReadyAt(addr uint64) (int64, bool) {
	if len(q.order) == 0 {
		return 0, false
	}
	ready, ok := q.entries[lineAddr(addr)]
	return ready, ok
}

// RecentlyServiced reports whether addr's line completed a fill within
// ServicedWindow cycles before now: a load to it will almost surely hit.
func (q *MissQueue) RecentlyServiced(addr uint64, now int64) bool {
	line := lineAddr(addr)
	for _, s := range q.serviced {
		if s.valid && s.line == line && s.readyAt <= now && now-s.readyAt <= q.ServicedWindow {
			return true
		}
	}
	return false
}

// Len returns the number of in-flight misses.
func (q *MissQueue) Len() int { return len(q.order) }

// Reset clears all state in place — the entry map, FIFO and serviced ring
// keep their storage, so a reset queue is reusable without regrowing the
// heap.
func (q *MissQueue) Reset() {
	clear(q.entries)
	q.order = q.order[:0]
	for i := range q.serviced {
		q.serviced[i] = servicedLine{}
	}
	q.servicedPos = 0
}
