package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}) // 8 sets
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 4},
		{SizeBytes: 16 << 10, LineBytes: 48, Ways: 4},
		{SizeBytes: 1000, LineBytes: 64, Ways: 4},
		{SizeBytes: 64 * 4 * 3, LineBytes: 64, Ways: 4}, // 3 sets: not power of two
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on invalid geometry")
		}
	}()
	New(Config{SizeBytes: 100, LineBytes: 64, Ways: 4})
}

func TestAccessMissThenHit(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access should hit")
	}
	if !c.Access(0x1038) {
		t.Fatal("same-line access should hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache() // 2-way
	// Three distinct tags mapping to set 0 (set stride = 8 sets * 64B = 512B).
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Contains(a) {
		t.Fatal("a (MRU) should survive")
	}
	if c.Contains(b) {
		t.Fatal("b (LRU) should have been evicted")
	}
	if !c.Contains(d) {
		t.Fatal("d should be present")
	}
}

func TestContainsIsPure(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.Access(512)
	// Probing a must not refresh its LRU position.
	c.Contains(0)
	c.Contains(0)
	c.Access(0)    // now a really is MRU
	c.Access(1024) // evict LRU=b
	if c.Contains(512) {
		t.Fatal("contains should not have refreshed b")
	}
	h, m := c.Hits, c.Misses
	c.Contains(0)
	if c.Hits != h || c.Misses != m {
		t.Fatal("Contains must not count statistics")
	}
}

func TestTouchDoesNotCount(t *testing.T) {
	c := smallCache()
	c.Touch(0x40)
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("Touch must not count statistics")
	}
	if !c.Contains(0x40) {
		t.Fatal("Touch must fill the line")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := smallCache()
	c.Access(0x40)
	c.Access(0x80)
	c.Invalidate(0x40)
	if c.Contains(0x40) {
		t.Fatal("invalidated line still present")
	}
	if !c.Contains(0x80) {
		t.Fatal("other line lost on Invalidate")
	}
	c.Flush()
	if c.Contains(0x80) {
		t.Fatal("line present after Flush")
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache()
	if c.MissRate() != 0 {
		t.Fatal("empty cache miss rate should be 0")
	}
	c.Access(0x40) // miss
	c.Access(0x40) // hit
	c.Access(0x40) // hit
	c.Access(0xF000)
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
	c.ResetStats()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestPropertyContainsAfterAccess(t *testing.T) {
	f := func(addrs []uint64) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(a)
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOccupancyBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := smallCache()
		live := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			a := uint64(rng.Intn(1 << 16))
			c.Access(a)
			live[a&^63] = true
		}
		// Count present lines among all touched; must not exceed capacity.
		present := 0
		for l := range live {
			if c.Contains(l) {
				present++
			}
		}
		return present <= c.Config().Sets()*c.Config().Ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set smaller than one way per set, accessed repeatedly, must
	// produce only cold misses.
	c := smallCache()
	lines := make([]uint64, 8) // one line per set
	for i := range lines {
		lines[i] = uint64(i * 64)
	}
	for pass := 0; pass < 10; pass++ {
		for _, l := range lines {
			c.Access(l)
		}
	}
	if c.Misses != uint64(len(lines)) {
		t.Fatalf("misses = %d, want %d cold misses only", c.Misses, len(lines))
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if lvl := h.Access(0x1000); lvl != Memory {
		t.Fatalf("cold access level = %v, want mem", lvl)
	}
	if lvl := h.Access(0x1000); lvl != L1 {
		t.Fatalf("second access level = %v, want L1", lvl)
	}
	// Evict from L1 but not L2: walk addresses mapping to the same L1 set.
	// L1: 16K 4-way 64B → 64 sets; set stride = 64*64 = 4096.
	for i := 1; i <= 8; i++ {
		h.Access(uint64(0x1000 + i*4096))
	}
	if h.L1D().Contains(0x1000) {
		t.Fatal("0x1000 should have been evicted from L1")
	}
	if lvl := h.Access(0x1000); lvl != L2 {
		t.Fatalf("level after L1 eviction = %v, want L2", lvl)
	}
}

func TestHierarchyProbePure(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if lvl := h.Probe(0x2000); lvl != Memory {
		t.Fatalf("probe of absent line = %v", lvl)
	}
	if h.L1D().Contains(0x2000) || h.L2().Contains(0x2000) {
		t.Fatal("Probe must not fill")
	}
	h.Access(0x2000)
	if lvl := h.Probe(0x2000); lvl != L1 {
		t.Fatalf("probe after access = %v, want L1", lvl)
	}
}

func TestLatencies(t *testing.T) {
	l := DefaultLatencies()
	if l.Of(L1) != 8 || l.Of(L2) != 15 || l.Of(Memory) != 60 {
		t.Fatalf("default latencies wrong: %+v", l)
	}
	if L1.String() != "L1" || L2.String() != "L2" || Memory.String() != "mem" {
		t.Fatal("level names wrong")
	}
}

func TestBanking(t *testing.T) {
	b := DefaultBanking()
	if b.BankOf(0) != 0 || b.BankOf(63) != 0 {
		t.Fatal("first line must be bank 0")
	}
	if b.BankOf(64) != 1 || b.BankOf(127) != 1 {
		t.Fatal("second line must be bank 1")
	}
	if b.BankOf(128) != 0 {
		t.Fatal("third line must wrap to bank 0")
	}
	if b.BankBits() != 1 {
		t.Fatalf("2 banks need 1 bit, got %d", b.BankBits())
	}
	four := Banking{Banks: 4, LineBytes: 64}
	if four.BankBits() != 2 {
		t.Fatal("4 banks need 2 bits")
	}
}

func TestConflictTracker(t *testing.T) {
	tr := NewConflictTracker(DefaultBanking())
	tr.Begin()
	if tr.Dispatch(0) {
		t.Fatal("first access to bank 0 should not conflict")
	}
	if tr.Dispatch(64) {
		t.Fatal("access to bank 1 should not conflict")
	}
	if !tr.Dispatch(128) {
		t.Fatal("second access to bank 0 must conflict")
	}
	if tr.Conflicts != 1 || tr.Accesses != 3 {
		t.Fatalf("stats %d/%d want 1/3", tr.Conflicts, tr.Accesses)
	}
	tr.Begin()
	if tr.Dispatch(0) {
		t.Fatal("new cycle must clear bank usage")
	}
	if tr.BankFree(0) {
		t.Fatal("bank 0 was just used")
	}
	if !tr.BankFree(1) {
		t.Fatal("bank 1 is free")
	}
}

func TestMissQueueOutstanding(t *testing.T) {
	q := NewMissQueue(4)
	q.RecordMiss(0x1000, 50)
	if !q.Outstanding(0x1010, 10) {
		t.Fatal("same-line access during fill must be outstanding")
	}
	if q.Outstanding(0x1000, 50) {
		t.Fatal("at readyAt the fill has completed")
	}
	if q.Outstanding(0x2000, 10) {
		t.Fatal("different line must not be outstanding")
	}
}

func TestMissQueueSecondaryMissMerges(t *testing.T) {
	q := NewMissQueue(4)
	q.RecordMiss(0x1000, 50)
	q.RecordMiss(0x1008, 90) // same line: must merge, keeping readyAt=50
	if q.Len() != 1 {
		t.Fatalf("len=%d want 1", q.Len())
	}
	if q.Outstanding(0x1000, 60) {
		t.Fatal("merged entry must keep the original fill time")
	}
}

func TestMissQueueRecentlyServiced(t *testing.T) {
	q := NewMissQueue(4)
	q.RecordMiss(0x1000, 50)
	q.Advance(60)
	if q.Len() != 0 {
		t.Fatal("completed fill must leave the queue")
	}
	if !q.RecentlyServiced(0x1000, 100) {
		t.Fatal("line serviced 50 cycles ago should be recent")
	}
	if q.RecentlyServiced(0x1000, 50+q.ServicedWindow+1) {
		t.Fatal("line outside the window should not be recent")
	}
}

func TestMissQueueCapacityEviction(t *testing.T) {
	q := NewMissQueue(2)
	q.RecordMiss(0x1000, 100)
	q.RecordMiss(0x2000, 100)
	q.RecordMiss(0x3000, 100) // evicts 0x1000
	if q.Len() != 2 {
		t.Fatalf("len=%d want 2", q.Len())
	}
	if q.Outstanding(0x1000, 10) {
		t.Fatal("evicted entry must not be outstanding")
	}
	if !q.Outstanding(0x3000, 10) {
		t.Fatal("newest entry must be outstanding")
	}
}

func TestMissQueueReset(t *testing.T) {
	q := NewMissQueue(2)
	q.RecordMiss(0x1000, 100)
	q.Advance(200)
	q.RecordMiss(0x2000, 300)
	q.Reset()
	if q.Len() != 0 || q.Outstanding(0x2000, 10) || q.RecentlyServiced(0x1000, 210) {
		t.Fatal("Reset must clear all state")
	}
}

func TestFourBankTracker(t *testing.T) {
	b := Banking{Banks: 4, LineBytes: 64}
	tr := NewConflictTracker(b)
	tr.Begin()
	for i := 0; i < 4; i++ {
		if tr.Dispatch(uint64(i * 64)) {
			t.Fatalf("bank %d first access conflicted", i)
		}
	}
	if !tr.Dispatch(0) {
		t.Fatal("fifth access must conflict somewhere")
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	h.Access(0x1000)
	h.Access(0x1000)
	h.Flush()
	if h.Probe(0x1000) != Memory {
		t.Fatal("Flush must empty both levels")
	}
}

func TestLatenciesHitIndication(t *testing.T) {
	l := DefaultLatencies()
	if l.HitIndication <= 0 || l.HitIndication >= l.L1 {
		t.Fatalf("hit indication %d should be positive and below the L1 latency", l.HitIndication)
	}
}

func TestMissQueueAdvanceKeepsPending(t *testing.T) {
	q := NewMissQueue(4)
	q.RecordMiss(0x1000, 100)
	q.RecordMiss(0x2000, 50)
	q.Advance(60)
	if !q.Outstanding(0x1000, 60) {
		t.Fatal("pending fill dropped by Advance")
	}
	if q.Outstanding(0x2000, 60) {
		t.Fatal("completed fill still outstanding")
	}
	if !q.RecentlyServiced(0x2000, 70) {
		t.Fatal("completed fill not in serviced ring")
	}
}
