package trace

import (
	"testing"

	"loadsched/internal/uop"
)

// TestPackedChunkRoundTrip pins the codec: generator uops packed chunk by
// chunk, marshaled to the file payload form, unmarshaled and decoded, must
// reproduce the stream exactly.
func TestPackedChunkRoundTrip(t *testing.T) {
	p := Profile{Name: "packed-rt", Seed: 21}
	want := Collect(p, 3*ChunkUops/2) // one full chunk + one partial
	for off := 0; off < len(want); off += ChunkUops {
		end := off + ChunkUops
		if end > len(want) {
			end = len(want)
		}
		us := want[off:end]
		payload := packUops(us).marshal(nil)
		var c packedChunk
		if err := unmarshalChunk(payload, &c, ChunkUops); err != nil {
			t.Fatalf("unmarshal chunk at %d: %v", off, err)
		}
		v, err := c.decodeChunk()
		if err != nil {
			t.Fatalf("decode chunk at %d: %v", off, err)
		}
		if v.Len() != len(us) {
			t.Fatalf("chunk at %d: decoded %d uops, want %d", off, v.Len(), len(us))
		}
		for i, w := range us {
			if got := v.UOp(i); got != w {
				t.Fatalf("uop %d: got %+v want %+v", off+i, got, w)
			}
		}
	}
}

// TestPackedNonDenseSeq exercises the explicit-Seq stream: monotonic but
// gapped Seq values (as an imported trace might carry) must round-trip.
func TestPackedNonDenseSeq(t *testing.T) {
	us := Collect(Profile{Name: "packed-gap", Seed: 5}, 100)
	for i := range us {
		us[i].Seq = int64(i) * 7 // monotonic, non-dense
	}
	payload := packUops(us).marshal(nil)
	var c packedChunk
	if err := unmarshalChunk(payload, &c, ChunkUops); err != nil {
		t.Fatal(err)
	}
	if c.dense {
		t.Fatal("gapped Seq chunk marked dense")
	}
	v, err := c.decodeChunk()
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range us {
		if got := v.UOp(i); got != w {
			t.Fatalf("uop %d: got %+v want %+v", i, got, w)
		}
	}
}

// TestUnmarshalChunkRejectsCorruption feeds the payload parser mangled
// inputs; every one must error rather than panic or mis-decode.
func TestUnmarshalChunkRejectsCorruption(t *testing.T) {
	us := Collect(Profile{Name: "packed-bad", Seed: 9}, 256)
	good := packUops(us).marshal(nil)
	check := func(name string, payload []byte) {
		t.Helper()
		var c packedChunk
		err := unmarshalChunk(payload, &c, ChunkUops)
		if err == nil {
			var v ChunkView
			err = c.decode(&v)
		}
		if err == nil {
			t.Errorf("%s: corrupt payload accepted", name)
		}
	}
	check("empty", nil)
	check("truncated half", good[:len(good)/2])
	check("truncated one byte", good[:len(good)-1])
	trailing := append(append([]byte{}, good...), 0)
	check("trailing byte", trailing)
	// Exhaustive single-byte corruption: every offset flipped to 0xff must
	// either error out or decode cleanly (a base varint's value changing is
	// legitimate) — never panic. Kind and flag columns specifically must
	// reject 0xff, which the spot checks above rely on.
	mangled := append([]byte{}, good...)
	for i := range mangled {
		save := mangled[i]
		mangled[i] = 0xff
		var c packedChunk
		if err := unmarshalChunk(mangled, &c, ChunkUops); err == nil {
			var v ChunkView
			_ = c.decode(&v)
		}
		mangled[i] = save
	}
}

// TestRecordingPackedDensity pins the tentpole target: the shared
// recording must cost at most 16 bytes per uop (it packs to ~9 in
// practice, versus 64 for the old []uop.UOp buffer).
func TestRecordingPackedDensity(t *testing.T) {
	p := Profile{Name: "packed-density", Seed: 33}
	c := Replay(p)
	const n = 16 * ChunkUops
	for i := 0; i < n; i++ {
		c.Next()
	}
	r := Materialize(p)
	if r.Len() < n {
		t.Fatalf("recording holds %d uops, want at least %d", r.Len(), n)
	}
	perUop := float64(r.PackedBytes()) / float64(r.Len())
	if perUop > 16 {
		t.Fatalf("recording costs %.2f bytes/uop, want <= 16", perUop)
	}
	t.Logf("recording density: %.2f bytes/uop over %d uops", perUop, r.Len())
}

// TestCursorNextBatchMatchesNext pins the bulk path to the scalar one,
// including ragged batch sizes across chunk boundaries and the private
// recycled view past the sharing cap.
func TestCursorNextBatchMatchesNext(t *testing.T) {
	defer func(old int) { maxSharedUops = old }(maxSharedUops)
	maxSharedUops = 2 * ChunkUops

	p := Profile{Name: "packed-batch", Seed: 44}
	scalar, bulk := Replay(p), Replay(p)
	total := 5 * ChunkUops // crosses the cap into the recycled private view
	sizes := []int{1, 3, 64, 100, ChunkUops, ChunkUops + 9}
	buf := make([]uop.UOp, ChunkUops+9)
	for consumed, si := 0, 0; consumed < total; si++ {
		dst := buf[:sizes[si%len(sizes)]]
		n := bulk.NextBatch(dst)
		if n <= 0 {
			t.Fatalf("NextBatch returned %d for dst of %d", n, len(dst))
		}
		for i := 0; i < n; i++ {
			want := scalar.Next()
			if dst[i] != want {
				t.Fatalf("uop %d: bulk %+v, scalar %+v", consumed+i, dst[i], want)
			}
		}
		consumed += n
		if got := bulk.Pos(); got != consumed {
			t.Fatalf("Pos() = %d after %d uops", got, consumed)
		}
	}
}
