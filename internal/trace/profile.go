// Package trace synthesizes dynamic uop streams that stand in for the
// proprietary IA-32 traces of the paper (§3: SpecInt95, SpecFP95, SysmarkNT,
// Sysmark95, Games, Java, TPC; 30M instructions each).
//
// The generator builds a synthetic static program — functions with
// prologue/epilogue register save/restore, loop bodies, call sites that pass
// parameters through the stack, global scalars, streaming arrays and
// pointer-chased heaps — and then walks it, emitting uops. Because the
// program is static, every dynamic load recurs at a fixed instruction
// pointer with a characteristic behavior, which is precisely the property
// the paper's history-based predictors (collision history tables, hit-miss
// predictors, bank predictors) exploit. Collisions, cache misses and bank
// accesses are not labeled; they emerge from the generated address streams
// when the simulator replays them.
package trace

// Profile parameterizes one synthetic workload. The preset profiles in
// groups.go are calibrated so that the distributions the paper reports
// (≈10% colliding loads, >95% L1 hits, FP most predictable, "Other" least)
// hold on the default machine.
type Profile struct {
	// Name labels the trace.
	Name string
	// Seed drives all randomness; equal profiles generate identical traces.
	Seed int64

	// NumFuncs is the number of synthetic functions in the program.
	NumFuncs int
	// MeanBlockLen is the mean number of non-memory uops per basic block.
	MeanBlockLen int
	// MeanLoopIters is the mean loop trip count of a function body.
	MeanLoopIters int
	// MaxCallDepth bounds the synthetic call stack.
	MaxCallDepth int
	// CallFrac is the probability that a body block contains a call site.
	CallFrac float64
	// MeanParams is the mean number of stack-passed parameters per call;
	// caller stores and callee loads of these are the paper's "push/load
	// parameter pairs", the dominant source of colliding loads.
	MeanParams int
	// MeanSaves is the mean number of register save/restore pairs per
	// function (prologue stores, epilogue loads). Restores collide only when
	// the function body fits in the scheduling window, which produces the
	// window-size dependence of Figure 6.
	MeanSaves int
	// LocalVarFrac is the probability that a block stores a local variable a
	// nearby block reloads (short-distance store→load pairs).
	LocalVarFrac float64
	// SlowStoreFrac is the probability that a store's data (STD) source is a
	// recently computed, still in-flight value rather than a long-ready
	// register. Stores with slow data are unresolved when nearby loads
	// schedule, so this knob directly controls the colliding-load fraction
	// (≈10% of loads in the paper).
	SlowStoreFrac float64
	// SlowAddrFrac is the probability that a body store's address (STA)
	// source is still in flight (pointer arithmetic rather than an
	// sp-relative slot). Unresolved STAs are what make loads *conflicting*
	// (≈60-70%% of loads in the paper), forcing Traditional scheduling to
	// hold them back.
	SlowAddrFrac float64

	// LoadFrac and StoreFrac set the memory share of body uops. Stores emit
	// an STA+STD pair.
	LoadFrac, StoreFrac float64
	// FPFrac, ComplexFrac, BranchExtraFrac split the non-memory body uops;
	// the rest are single-cycle integer ALU ops. (Each block additionally
	// ends in one branch.)
	FPFrac, ComplexFrac, BranchExtraFrac float64

	// StreamFrac, ChaseFrac, GlobalFrac classify body loads (the remainder
	// are frame/stack loads). Streams are strided array walks; chases are
	// pseudo-random pointer dereferences; globals are a small hot scalar set.
	StreamFrac, ChaseFrac, GlobalFrac float64
	// NumStreams is the number of distinct stream arrays.
	NumStreams int
	// StreamStride is the byte stride of stream walks; one miss every
	// 64/StreamStride accesses once the array exceeds L1.
	StreamStride int
	// StreamWorkingSet is the byte size of each stream array.
	StreamWorkingSet int
	// ChaseWorkingSet is the byte size of the pointer-chased region; the
	// fraction of it that exceeds L1 determines the unpredictable miss rate.
	ChaseWorkingSet int
	// NumGlobals is the number of distinct hot global scalars.
	NumGlobals int

	// BranchTakenBias is the probability a non-loop branch is taken.
	BranchTakenBias float64
	// UopsPerInstr approximates the uop expansion factor (x86 ≈ 1.3); used
	// only to convert instruction budgets to uop budgets.
	UopsPerInstr float64
}

// withDefaults fills zero fields with sane values so hand-built profiles in
// tests stay terse.
func (p Profile) withDefaults() Profile {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&p.NumFuncs, 24)
	def(&p.MeanBlockLen, 6)
	def(&p.MeanLoopIters, 12)
	def(&p.MaxCallDepth, 4)
	deff(&p.CallFrac, 0.3)
	def(&p.MeanParams, 2)
	def(&p.MeanSaves, 2)
	deff(&p.LocalVarFrac, 0.3)
	deff(&p.SlowStoreFrac, 0.35)
	deff(&p.SlowAddrFrac, 0.5)
	deff(&p.LoadFrac, 0.28)
	deff(&p.StoreFrac, 0.12)
	deff(&p.FPFrac, 0.05)
	deff(&p.ComplexFrac, 0.05)
	deff(&p.StreamFrac, 0.25)
	deff(&p.ChaseFrac, 0.15)
	deff(&p.GlobalFrac, 0.25)
	def(&p.NumStreams, 4)
	def(&p.StreamStride, 8)
	def(&p.StreamWorkingSet, 128<<10)
	def(&p.ChaseWorkingSet, 64<<10)
	def(&p.NumGlobals, 64)
	deff(&p.BranchTakenBias, 0.6)
	deff(&p.UopsPerInstr, 1.3)
	return p
}
