package trace

import (
	"sync"
	"sync/atomic"

	"loadsched/internal/uop"
)

// Shared trace materialization. Every experiment sweep replays the same
// deterministic uop stream through many machine configurations, and the
// naive approach pays one full generator run (program build, RNG walk,
// branch-predictor model) per configuration. Materialize records each
// profile's stream once per process; Replay hands out lightweight cursors
// over it, so N configs per figure pay one generation instead of N.
//
// The recording is stored as sealed packed chunks (see packed.go), about
// 9 bytes/uop instead of the 40 bytes/uop a []uop.UOp costs. Cursors never
// read the packed form directly: each chunk is decoded once, on first
// demand, into an immutable ChunkView — a flat uop slice — that every
// cursor replays by plain indexing. The decoded views are a cache bounded
// by the same cap as the packed chunks, so steady-state replay touches no
// allocator at all.
//
// Concurrency model, per-chunk: the chunk list only ever grows, and sealed
// chunks are immutable. The generator appends whole chunks under
// Recording.mu and publishes the extended list through an atomic snapshot;
// readers walk their own snapshot lock-free and take the lock only to
// generate a chunk that does not exist yet. Decoded views publish by
// compare-and-swap into a fixed slot array — racing decoders do redundant
// work, but exactly one view wins and the losers adopt it, so a view, once
// observed, is permanent and immutable.

// maxSharedUops bounds the per-profile recording (a variable so tests can
// shrink it). At the default 1<<20 the packed chunks top out around 9 MB
// and the decoded views around 40 MB; a cursor that runs past the cap
// falls back to a private generator feeding a recycled private chunk view
// — paying one status-quo generation for that outlier run instead of
// growing the shared buffers without bound.
var maxSharedUops = 1 << 20

var (
	recordingsMu sync.Mutex
	recordings   = map[Profile]*Recording{}
)

// Recording is one profile's process-wide recorded uop stream.
type Recording struct {
	prof Profile
	// maxChunks is the recording's chunk cap, frozen at Materialize time
	// (so tests that shrink maxSharedUops only affect recordings they
	// create): floor(maxSharedUops/ChunkUops), at least 1.
	maxChunks int

	mu     sync.Mutex
	gen    *Generator
	sealed []*packedChunk // generated so far; guarded by mu
	// depGen shadows gen: it observes every generated uop so that carries
	// holds, for each chunk, the analyzer state at that chunk's start —
	// the carry a lazy side-car build resumes from. Both guarded by mu.
	depGen  depAnalyzer
	carries []depAnalyzer // analyzer snapshot at each chunk's start

	chunks  atomic.Value                // []*packedChunk: published prefix of sealed
	views   []atomic.Pointer[ChunkView] // decoded-chunk cache, one slot per chunk
	deps    []atomic.Pointer[DepChunk]  // side-car cache, one slot per chunk
	packed  atomic.Int64                // total payload bytes across sealed chunks
	sidecar atomic.Int64                // total side-car bytes across built DepChunks
}

// Materialize returns the process-wide recording for p, creating it (empty)
// on first use. Equal profiles — after defaulting, matching the runner's
// memo-cache key semantics — share one recording.
func Materialize(p Profile) *Recording {
	p = p.withDefaults()
	recordingsMu.Lock()
	defer recordingsMu.Unlock()
	if r, ok := recordings[p]; ok {
		return r
	}
	mc := maxSharedUops / ChunkUops
	if mc < 1 {
		mc = 1
	}
	r := &Recording{prof: p, maxChunks: mc, gen: New(p)}
	r.chunks.Store([]*packedChunk(nil))
	r.views = make([]atomic.Pointer[ChunkView], mc)
	r.deps = make([]atomic.Pointer[DepChunk], mc)
	r.carries = make([]depAnalyzer, mc)
	recordings[p] = r
	return r
}

// chunk returns sealed chunk ci (ci < maxChunks), generating up to it if
// needed. One lock round generates a whole chunk, so racing cursors on a
// cold recording amortize the lock over ChunkUops uops.
func (r *Recording) chunk(ci int) *packedChunk {
	if cs := r.chunks.Load().([]*packedChunk); ci < len(cs) {
		return cs[ci]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.sealed
	for len(cs) <= ci {
		var e chunkEncoder
		e.begin()
		r.carries[len(cs)] = r.depGen
		for i := 0; i < ChunkUops; i++ {
			u := r.gen.Next()
			e.add(u)
			r.depGen.observe(&u)
		}
		c := e.seal()
		r.packed.Add(int64(c.packedBytes()))
		cs = append(cs, c)
	}
	r.sealed = cs
	r.chunks.Store(cs[:len(cs):len(cs)])
	return cs[ci]
}

// view returns the decoded form of chunk ci, decoding and publishing it on
// first demand. Published views are immutable and live for the process —
// the cache is bounded by maxChunks, and permanence is what keeps the
// replay hot path allocation-free.
func (r *Recording) view(ci int) *ChunkView {
	if v := r.views[ci].Load(); v != nil {
		return v
	}
	v, err := r.chunk(ci).decodeChunk()
	if err != nil {
		// Sealed chunks came out of our own encoder; a decode failure is a
		// codec bug, not an input condition.
		panic("trace: recorded chunk failed to decode: " + err.Error())
	}
	if r.views[ci].CompareAndSwap(nil, v) {
		return v
	}
	return r.views[ci].Load()
}

// dep returns the dependence side-car for chunk ci, building and publishing
// it on first demand. Like views, published side-cars are immutable and
// permanent: recordings are append-only, so a chunk's dependence links can
// never be invalidated. Racing builders do redundant work; one wins the CAS
// and the losers adopt its result.
func (r *Recording) dep(ci int) *DepChunk {
	if d := r.deps[ci].Load(); d != nil {
		return d
	}
	v := r.view(ci) // ensures the chunk exists, so carries[ci] is written
	r.mu.Lock()
	an := r.carries[ci]
	r.mu.Unlock()
	d := &DepChunk{Deps: make([]uop.Dep, len(v.us))}
	d.BaseStore = an.buildInto(d.Deps, v.us)
	if r.deps[ci].CompareAndSwap(nil, d) {
		r.sidecar.Add(int64(len(d.Deps)) * depSize)
		return d
	}
	return r.deps[ci].Load()
}

// Len reports how many uops have been recorded so far. Shared chunks are
// always full, so the length is a whole number of chunks.
func (r *Recording) Len() int {
	return len(r.chunks.Load().([]*packedChunk)) * ChunkUops
}

// PackedBytes reports the recording's payload footprint in bytes — the
// packed columns and delta streams, excluding the decoded-view cache.
func (r *Recording) PackedBytes() int64 { return r.packed.Load() }

// SidecarBytes reports the footprint of the dependence side-cars built so
// far (12 bytes per uop per built chunk).
func (r *Recording) SidecarBytes() int64 { return r.sidecar.Load() }

// Cursor replays a recording from the start. It implements the engine's
// Source (and its bulk extension, NextBatch). Cursors are cheap — one
// small allocation, no generation state — and independent; a cursor is not
// safe for concurrent use by multiple goroutines, but any number of
// cursors may run concurrently over one recording.
type Cursor struct {
	rec *Recording
	// us is the current decoded chunk's uop slice, held directly (not via
	// the view) so Next is an index, an increment and one length check —
	// nil before the first advance, which a fresh cursor trips exactly like
	// a chunk boundary.
	us   []uop.UOp
	base int // stream position of us[0]
	i    int // next index within us
	// deps mirrors us entry for entry with the chunk's dependence
	// side-car; depBase is the store base its LastStore deltas are
	// relative to (-1: invalid, consumers fall back). Wired on every
	// advance — shared chunks adopt the CAS-published DepChunk, the tail
	// rebuilds into a private buffer per refill.
	deps    []uop.Dep
	depBase int64
	// tail streams the portion beyond the sharing cap from a private
	// generator through priv, a recycled single-owner chunk view; both are
	// nil until the cap is crossed. tailAn replays the shared prefix's
	// dependence state so private side-cars continue seamlessly, and
	// privDeps is the recycled side-car buffer paired with priv.
	tail     *Generator
	priv     *ChunkView
	tailAn   *depAnalyzer
	privDeps []uop.Dep
}

// Replay returns a cursor over p's shared recording.
func Replay(p Profile) *Cursor {
	return &Cursor{rec: Materialize(p)}
}

// Next emits the next uop of the recorded stream; like Generator.Next it
// never ends.
func (c *Cursor) Next() uop.UOp {
	if c.i == len(c.us) {
		c.advance()
	}
	u := c.us[c.i]
	c.i++
	return u
}

// NextBatch fills dst from the current decoded chunk and reports how many
// uops it wrote (at least 1 for a nonempty dst). It never crosses a chunk
// boundary in one call, so the copy is a straight memmove.
func (c *Cursor) NextBatch(dst []uop.UOp) int {
	if len(dst) == 0 {
		return 0
	}
	if c.i == len(c.us) {
		c.advance()
	}
	n := copy(dst, c.us[c.i:])
	c.i += n
	return n
}

// NextBatchDeps is NextBatch plus the dependence side-car: it fills deps in
// lockstep with dst (deps must be at least as long as the returned count;
// callers size it like dst) and returns the store base the batch's
// Dep.LastStore deltas are relative to, -1 if the chunk's side-car store
// deltas are invalid. Like NextBatch it never crosses a chunk boundary, so
// one base covers the whole batch.
func (c *Cursor) NextBatchDeps(dst []uop.UOp, deps []uop.Dep) (int, int64) {
	if len(dst) == 0 {
		return 0, 0
	}
	if c.i == len(c.us) {
		c.advance()
	}
	n := copy(dst, c.us[c.i:])
	if m := copy(deps, c.deps[c.i:c.i+n]); m < n {
		n = m
	}
	c.i += n
	return n, c.depBase
}

// NextBatchRef returns the remainder of the current decoded chunk as direct
// views — the uops, their side-car entries in lockstep, and the store base
// the batch's Dep.LastStore deltas are relative to — consuming it all. The
// slices stay valid until the next call on this cursor and must be treated
// as read-only: shared recording chunks back them for every consumer at
// once. This is the engine fetch path's refill seam (ooo.DepBatchSource);
// handing out chunk storage in place replaces the per-batch double copy of
// NextBatchDeps.
func (c *Cursor) NextBatchRef() ([]uop.UOp, []uop.Dep, int64) {
	if c.i == len(c.us) {
		c.advance()
	}
	us, deps := c.us[c.i:], c.deps[c.i:]
	c.i = len(c.us)
	return us, deps, c.depBase
}

// Pos reports how many uops the cursor has consumed so far. Batch drivers
// (runner.RunBatch) use it to keep a group of engines inside one shared
// window of the recording.
func (c *Cursor) Pos() int { return c.base + c.i }

// advance moves the cursor onto the decoded view holding position Pos().
// Views are whole chunks, so Pos() is chunk-aligned here.
func (c *Cursor) advance() {
	pos := c.base + c.i
	c.base, c.i = pos, 0
	if ci := pos >> chunkShift; ci < c.rec.maxChunks {
		c.us = c.rec.view(ci).us
		dc := c.rec.dep(ci)
		c.deps, c.depBase = dc.Deps, dc.BaseStore
		return
	}
	c.advanceTail()
}

// advanceTail serves positions past the sharing cap: regenerate privately,
// skip the shared prefix — one status-quo generation, only for runs long
// enough to blow the cap — and refill a single recycled private view chunk
// by chunk, so the overflow costs O(ChunkUops) memory however far it runs.
func (c *Cursor) advanceTail() {
	if c.tail == nil {
		c.tail = New(c.rec.prof)
		c.tailAn = &depAnalyzer{}
		for i := 0; i < c.base; i++ {
			u := c.tail.Next()
			c.tailAn.observe(&u)
		}
		c.priv = newOwnedView()
		c.privDeps = make([]uop.Dep, ChunkUops)
	}
	fillView(c.priv, c.tail)
	c.us = c.priv.us
	c.depBase = c.tailAn.buildInto(c.privDeps[:len(c.us)], c.us)
	c.deps = c.privDeps[:len(c.us)]
}

// newOwnedView allocates a private view with chunk-sized backing storage.
func newOwnedView() *ChunkView {
	v := &ChunkView{}
	v.grow(ChunkUops)
	return v
}

// fillView refills an owned view with the generator's next ChunkUops uops.
func fillView(v *ChunkView, g *Generator) {
	us := v.grow(ChunkUops)
	for i := range us {
		us[i] = g.Next()
	}
}
