package trace

import (
	"sync"
	"sync/atomic"

	"loadsched/internal/uop"
)

// Shared trace materialization. Every experiment sweep replays the same
// deterministic uop stream through many machine configurations, and the
// naive approach pays one full generator run (program build, RNG walk,
// branch-predictor model) per configuration. Materialize records each
// profile's stream once per process into an append-only buffer; Replay
// hands out lightweight cursors over it, so N configs per figure pay one
// generation instead of N.
//
// Concurrency model: the buffer only ever grows, and grown prefixes are
// immutable. Writers extend it under Recording.mu and publish the new
// length through an atomic snapshot; readers iterate their own snapshot
// lock-free and refresh it (or trigger growth) only when they run off the
// end. Appending in place beyond a published snapshot's length is safe
// because no reader indexes past its snapshot.

// maxSharedUops bounds the per-profile recording (a variable so tests can
// shrink it). At the default 1<<20 a recording tops out around 60 MB; a
// cursor that runs past the cap falls back to a private generator — paying
// one status-quo generation for that outlier run instead of growing the
// shared buffer without bound.
var maxSharedUops = 1 << 20

// minRecordingChunk is the smallest growth step, so cursors racing up a
// cold buffer don't take the lock per uop.
const minRecordingChunk = 1 << 12

var (
	recordingsMu sync.Mutex
	recordings   = map[Profile]*Recording{}
)

// Recording is one profile's process-wide recorded uop stream.
type Recording struct {
	prof Profile

	mu   sync.Mutex
	gen  *Generator
	full []uop.UOp    // generated so far; guarded by mu
	buf  atomic.Value // []uop.UOp: immutable published prefix of full
}

// Materialize returns the process-wide recording for p, creating it (empty)
// on first use. Equal profiles — after defaulting, matching the runner's
// memo-cache key semantics — share one recording.
func Materialize(p Profile) *Recording {
	p = p.withDefaults()
	recordingsMu.Lock()
	defer recordingsMu.Unlock()
	if r, ok := recordings[p]; ok {
		return r
	}
	r := &Recording{prof: p, gen: New(p)}
	r.buf.Store([]uop.UOp(nil))
	recordings[p] = r
	return r
}

// atLeast grows the recording to at least n uops (n <= maxSharedUops) and
// returns the current buffer.
func (r *Recording) atLeast(n int) []uop.UOp {
	if buf := r.buf.Load().([]uop.UOp); len(buf) >= n {
		return buf
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.full
	if len(cur) < n {
		// Grow in doubling chunks so the lock and the atomic publish are
		// amortized over many uops.
		target := n
		if t := 2 * len(cur); t > target {
			target = t
		}
		if target < minRecordingChunk {
			target = minRecordingChunk
		}
		if target > maxSharedUops {
			target = maxSharedUops
		}
		if target < n {
			target = n
		}
		for len(cur) < target {
			cur = append(cur, r.gen.Next())
		}
		r.full = cur
		r.buf.Store(cur[:len(cur):len(cur)])
	}
	return r.full
}

// Len reports how many uops have been recorded so far.
func (r *Recording) Len() int { return len(r.buf.Load().([]uop.UOp)) }

// Cursor replays a recording from the start. It implements the engine's
// Source. Cursors are cheap (no generation state) and independent; they are
// not safe for concurrent use by multiple goroutines, but any number of
// cursors may run concurrently over one recording.
type Cursor struct {
	rec *Recording
	buf []uop.UOp
	pos int
	// tail streams the portion beyond maxSharedUops from a private
	// generator (nil until the cap is crossed); tailN counts the uops it
	// has emitted, so Pos keeps reporting total consumption.
	tail  *Generator
	tailN int
}

// Replay returns a cursor over p's shared recording.
func Replay(p Profile) *Cursor {
	r := Materialize(p)
	return &Cursor{rec: r, buf: r.buf.Load().([]uop.UOp)}
}

// Next emits the next uop of the recorded stream; like Generator.Next it
// never ends.
func (c *Cursor) Next() uop.UOp {
	if c.pos < len(c.buf) {
		u := c.buf[c.pos]
		c.pos++
		return u
	}
	return c.nextSlow()
}

// Pos reports how many uops the cursor has consumed so far. Batch drivers
// (runner.RunBatch) use it to keep a group of engines inside one shared
// window of the recording.
func (c *Cursor) Pos() int { return c.pos + c.tailN }

func (c *Cursor) nextSlow() uop.UOp {
	if c.tail != nil {
		c.tailN++
		return c.tail.Next()
	}
	if c.pos >= maxSharedUops {
		// Past the sharing cap: regenerate privately and skip the shared
		// prefix. Costs one generator run — exactly the pre-sharing status
		// quo — and only for runs long enough to blow the cap.
		g := New(c.rec.prof)
		for i := 0; i < c.pos; i++ {
			g.Next()
		}
		c.tail = g
		c.tailN++
		return g.Next()
	}
	c.buf = c.rec.atLeast(c.pos + 1)
	u := c.buf[c.pos]
	c.pos++
	return u
}
