package trace

import (
	"math"
	"math/rand"

	"loadsched/internal/uop"
)

// Memory layout of the synthetic address space.
const (
	stackBase  = uint64(0x7fff_0000) // stack grows down from here
	globalBase = uint64(0x0060_0000)
	streamBase = uint64(0x1000_0000)
	streamSpan = uint64(0x0100_0000) // address span reserved per stream
	chaseBase  = uint64(0x4000_0000)
	codeBase   = uint64(0x0040_0000)
	funcSpan   = uint64(0x1000) // code bytes reserved per function
	wordSize   = 8
)

// memClass is the address-stream family of a static memory uop.
type memClass uint8

const (
	mcNone   memClass = iota
	mcFrame           // current stack frame (saves, restores, locals)
	mcParam           // outgoing (stores) / incoming (loads) parameter slots
	mcGlobal          // hot global scalar
	mcStream          // strided array walk
	mcChase           // pseudo-random pointer dereference
)

// staticUOp is one uop of the static program. Dynamic fields (address,
// sequence number) are synthesized at emission time.
type staticUOp struct {
	ip         uint64
	kind       uop.Kind
	dst        uop.Reg
	src1, src2 uop.Reg
	mem        memClass
	// off is the frame offset (mcFrame/mcParam) or global index (mcGlobal).
	off int
	// stream is the array id for mcStream.
	stream int
	// cursor is this static uop's private stream cursor: each stream access
	// site walks its own strided sequence, so its miss pattern (one miss per
	// cache line) is periodic per IP — the behavior local hit-miss history
	// predictors learn.
	cursor int
	// loopBranch marks the body's back-edge branch.
	loopBranch bool
	// callBranch marks an always-taken call transfer.
	callBranch bool
	// takenBias is this static branch's probability of being taken. Most
	// static branches are strongly biased (as in real code); a minority are
	// hard data-dependent branches.
	takenBias float64
}

// callSite is a call at the end of a block: parameter stores, then the
// transfer.
type callSite struct {
	callee      int
	paramStores []staticUOp // STA/STD pairs, one per parameter
	transfer    staticUOp
}

// block is a straight-line run of uops ending in a branch, optionally with a
// call site before the branch.
type block struct {
	uops   []staticUOp
	call   *callSite
	branch staticUOp
}

// function is one synthetic function.
type function struct {
	id        int
	frameSize int
	numParams int
	numSaves  int
	meanIters int
	// prologue: incoming-parameter loads then save stores.
	prologue []staticUOp
	body     []block
	// epilogue: restore loads then return branch.
	epilogue []staticUOp
}

// program is the static program a Generator walks.
type program struct {
	prof  Profile
	funcs []*function
	// hotWeights biases top-level function selection (80/20-ish reuse).
	hotWeights []float64
	// numStreamCursors is the number of private stream cursors allocated.
	numStreamCursors int
}

// ipAllocator hands out unique static instruction pointers per function.
type ipAllocator struct {
	next uint64
}

func (a *ipAllocator) take() uint64 {
	ip := a.next
	a.next += 4
	return ip
}

// regAllocator assigns destination registers round-robin inside a function
// and picks sources from recently written registers, creating short
// dependency chains like compiled code.
type regAllocator struct {
	rng    *rand.Rand
	base   uop.Reg
	width  int
	next   int
	recent []uop.Reg
	// slowRecent holds destinations of long-latency producers (loads, FP,
	// complex); sources drawn from it stay in flight long enough to delay
	// store resolution, which is what creates memory ambiguity.
	slowRecent []uop.Reg
}

func newRegAllocator(rng *rand.Rand, fid int) *regAllocator {
	return &regAllocator{
		rng:   rng,
		base:  uop.Reg(8 + (fid%3)*16),
		width: 16,
	}
}

func (r *regAllocator) dest() uop.Reg {
	d := r.base + uop.Reg(r.next%r.width)
	r.next++
	r.recent = append(r.recent, d)
	if len(r.recent) > 8 {
		r.recent = r.recent[1:]
	}
	return d
}

func (r *regAllocator) source() uop.Reg {
	if len(r.recent) == 0 || r.rng.Float64() < 0.2 {
		return r.base + uop.Reg(r.rng.Intn(r.width))
	}
	return r.recent[r.rng.Intn(len(r.recent))]
}

// noteSlow records a long-latency producer's destination.
func (r *regAllocator) noteSlow(d uop.Reg) {
	r.slowRecent = append(r.slowRecent, d)
	if len(r.slowRecent) > 6 {
		r.slowRecent = r.slowRecent[1:]
	}
}

// slowSource prefers a register produced by a load/FP/complex op, so the
// consumer resolves late.
func (r *regAllocator) slowSource() uop.Reg {
	if len(r.slowRecent) > 0 {
		return r.slowRecent[r.rng.Intn(len(r.slowRecent))]
	}
	return r.source()
}

// buildProgram constructs the static program for a profile. All choices are
// driven by the profile's seed, so identical profiles build identical
// programs.
func buildProgram(p Profile) *program {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &program{prof: p}
	prog.funcs = make([]*function, p.NumFuncs)
	// Build callees first (calls only go to higher ids), so call sites can
	// size their parameter stores to the callee's signature.
	// Functions are packed back to back in the code segment (as a linker
	// would lay them out); 0x1000-aligned spans would make every function's
	// k-th uop alias into the same predictor set regardless of table size.
	ips := &ipAllocator{next: codeBase}
	cursors := 0
	for fid := p.NumFuncs - 1; fid >= 0; fid-- {
		prog.funcs[fid] = buildFunction(p, rng, fid, prog.funcs, &cursors, ips)
	}
	prog.numStreamCursors = cursors
	// Zipf-ish top-level weights (exponent 0.5): hot functions dominate but
	// the tail still executes, so the dynamic stream exercises enough static
	// loads to pressure small prediction tables (as the paper's IA-32 traces
	// do in Figure 9).
	prog.hotWeights = make([]float64, p.NumFuncs)
	for i := range prog.hotWeights {
		prog.hotWeights[i] = 1.0 / math.Sqrt(float64(i+1))
	}
	return prog
}

// meanDraw returns a positive integer near mean (uniform in [1, 2*mean-1]).
func meanDraw(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	return 1 + rng.Intn(2*mean-1)
}

func buildFunction(p Profile, rng *rand.Rand, fid int, funcs []*function, cursors *int, ips *ipAllocator) *function {
	regs := newRegAllocator(rng, fid)
	f := &function{
		id:        fid,
		numParams: rng.Intn(p.MeanParams*2 + 1),
		numSaves:  rng.Intn(p.MeanSaves*2 + 1),
		meanIters: meanDraw(rng, p.MeanLoopIters),
	}
	// Leaf functions (high ids) are shorter: they model the small callees
	// whose save/restore pairs actually collide.
	leafness := float64(fid) / float64(p.NumFuncs)
	nBlocks := 1 + rng.Intn(3)
	if leafness > 0.6 {
		nBlocks = 1
		f.meanIters = 1 + rng.Intn(3)
	}
	// Frame: saves + locals + incoming params.
	numLocals := 2 + rng.Intn(6)
	f.frameSize = (f.numSaves + numLocals + f.numParams + 2) * wordSize

	// Prologue: load incoming params (they sit at the top of the frame),
	// then save registers below them.
	for j := 0; j < f.numParams; j++ {
		f.prologue = append(f.prologue, staticUOp{
			ip: ips.take(), kind: uop.Load, dst: regs.dest(),
			mem: mcParam, off: f.paramOffset(j),
		})
	}
	for s := 0; s < f.numSaves; s++ {
		// Saved registers hold caller values that are long ready, so the
		// save stores resolve immediately.
		off := f.saveOffset(s)
		f.prologue = append(f.prologue,
			staticUOp{ip: ips.take(), kind: uop.STA, mem: mcFrame, off: off},
			staticUOp{ip: ips.take(), kind: uop.STD, mem: mcFrame, off: off},
		)
	}

	// Body blocks.
	localSlots := make([]int, 0, numLocals)
	for l := 0; l < numLocals; l++ {
		localSlots = append(localSlots, (f.numSaves+l)*wordSize)
	}
	for b := 0; b < nBlocks; b++ {
		f.body = append(f.body, buildBlock(p, rng, f, ips, regs, localSlots, b == nBlocks-1, leafness, funcs, cursors))
	}

	// Epilogue: restore loads mirror the prologue saves, then return.
	for s := 0; s < f.numSaves; s++ {
		f.epilogue = append(f.epilogue, staticUOp{
			ip: ips.take(), kind: uop.Load, dst: regs.dest(),
			mem: mcFrame, off: f.saveOffset(s),
		})
	}
	f.epilogue = append(f.epilogue, staticUOp{
		ip: ips.take(), kind: uop.Branch, callBranch: true,
	})
	return f
}

// saveOffset is the frame offset of save/restore slot s.
func (f *function) saveOffset(s int) int { return s * wordSize }

// padOffset is a frame slot no store ever writes (the frame's "+2" pad
// words): loads of it can conflict with unresolved stores but never collide.
func (f *function) padOffset(k int) int { return f.frameSize - (f.numParams+1+k+1)*wordSize }

// paramOffset is the frame offset of incoming parameter j (top of frame).
func (f *function) paramOffset(j int) int { return f.frameSize - (j+1)*wordSize }

func buildBlock(p Profile, rng *rand.Rand, f *function, ips *ipAllocator, regs *regAllocator, localSlots []int, last bool, leafness float64, funcs []*function, cursors *int) block {
	var blk block
	n := meanDraw(rng, p.MeanBlockLen)
	// Recent local-variable stores this block can pair a reload with.
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < p.LoadFrac:
			blk.uops = append(blk.uops, buildLoad(p, rng, f, ips, regs, localSlots, cursors))
		case r < p.LoadFrac+p.StoreFrac:
			off := localSlots[rng.Intn(len(localSlots))]
			mem, st := memClass(mcFrame), 0
			cr := rng.Float64()
			switch {
			case cr < 0.15:
				mem, off = mcGlobal, rng.Intn(p.NumGlobals)
			case cr < 0.3:
				mem, st = mcStream, rng.Intn(p.NumStreams)
			}
			cursor := 0
			if mem == mcStream {
				cursor = *cursors
				*cursors++
			}
			var staSrc, stdSrc uop.Reg
			if rng.Float64() < p.SlowAddrFrac {
				staSrc = regs.slowSource() // pointer-computed address
			}
			if rng.Float64() < p.SlowStoreFrac {
				stdSrc = regs.slowSource() // a just-computed local value
			}
			blk.uops = append(blk.uops,
				staticUOp{ip: ips.take(), kind: uop.STA, mem: mem, off: off, stream: st, cursor: cursor, src1: staSrc},
				staticUOp{ip: ips.take(), kind: uop.STD, mem: mem, off: off, stream: st, cursor: cursor, src1: stdSrc},
			)
		case r < p.LoadFrac+p.StoreFrac+p.FPFrac:
			d := regs.dest()
			regs.noteSlow(d)
			blk.uops = append(blk.uops, staticUOp{
				ip: ips.take(), kind: uop.FPU, dst: d, src1: regs.source(), src2: regs.source(),
			})
		case r < p.LoadFrac+p.StoreFrac+p.FPFrac+p.ComplexFrac:
			d := regs.dest()
			regs.noteSlow(d)
			blk.uops = append(blk.uops, staticUOp{
				ip: ips.take(), kind: uop.Complex, dst: d, src1: regs.source(), src2: regs.source(),
			})
		default:
			blk.uops = append(blk.uops, staticUOp{
				ip: ips.take(), kind: uop.IntALU, dst: regs.dest(), src1: regs.source(), src2: regs.source(),
			})
		}
	}
	// Call site: only to deeper (higher-id) functions, never from the very
	// last function, and more likely in non-leaf code.
	if f.id+1 < p.NumFuncs && rng.Float64() < p.CallFrac*(1.2-leafness) {
		calleeID := f.id + 1 + rng.Intn(p.NumFuncs-f.id-1)
		callee := funcs[calleeID]
		cs := &callSite{callee: calleeID}
		// Parameter stores write the callee's incoming-param slots. The STD
		// data source is a recently produced value, so an in-flight producer
		// (e.g. a load) delays store resolution — the mechanism behind truly
		// colliding parameter loads.
		for j := 0; j < callee.numParams; j++ {
			off := callee.paramOffset(j)
			var src uop.Reg
			if rng.Float64() < p.SlowStoreFrac {
				src = regs.slowSource() // freshly computed argument
			}
			cs.paramStores = append(cs.paramStores,
				staticUOp{ip: ips.take(), kind: uop.STA, mem: mcParam, off: off},
				staticUOp{ip: ips.take(), kind: uop.STD, mem: mcParam, off: off, src1: src},
			)
		}
		cs.transfer = staticUOp{ip: ips.take(), kind: uop.Branch, callBranch: true}
		blk.call = cs
	}
	blk.branch = staticUOp{
		ip: ips.take(), kind: uop.Branch, loopBranch: last, src1: regs.source(),
		takenBias: drawBranchBias(p, rng),
	}
	return blk
}

// drawBranchBias assigns a static branch its taken probability: most
// branches are strongly biased one way (easily predicted), a minority are
// hard data-dependent branches near 50/50.
func drawBranchBias(p Profile, rng *rand.Rand) float64 {
	if rng.Float64() < 0.06 {
		return 0.25 + 0.5*rng.Float64() // hard data-dependent branch
	}
	if rng.Float64() < p.BranchTakenBias {
		return 0.985
	}
	return 0.015
}

func buildLoad(p Profile, rng *rand.Rand, f *function, ips *ipAllocator, regs *regAllocator, localSlots []int, cursors *int) staticUOp {
	d := regs.dest()
	regs.noteSlow(d)
	u := staticUOp{ip: ips.take(), kind: uop.Load, dst: d, src1: regs.source()}
	r := rng.Float64()
	switch {
	case r < p.StreamFrac:
		u.mem, u.stream = mcStream, rng.Intn(p.NumStreams)
		u.cursor = *cursors
		*cursors++
	case r < p.StreamFrac+p.ChaseFrac:
		u.mem = mcChase
	case r < p.StreamFrac+p.ChaseFrac+p.GlobalFrac:
		u.mem, u.off = mcGlobal, rng.Intn(p.NumGlobals)
	default:
		// Frame load: with probability LocalVarFrac it reloads a
		// local-variable slot nearby stores write (a potential collision);
		// otherwise it reads a never-stored pad slot — ambiguous against
		// unresolved STAs but never actually colliding.
		u.mem = mcFrame
		if rng.Float64() < p.LocalVarFrac {
			u.off = localSlots[rng.Intn(len(localSlots))]
		} else {
			u.off = f.padOffset(rng.Intn(2))
		}
	}
	return u
}
