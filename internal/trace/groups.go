package trace

import "fmt"

// Group is one of the paper's seven trace groups.
type Group struct {
	// Name is the paper's group label.
	Name string
	// Traces are the individual workloads (the paper used 46 traces total).
	Traces []Profile
}

// Paper group names.
const (
	GroupSpecInt95 = "SpecInt95"
	GroupSpecFP95  = "SpecFP95"
	GroupSysmarkNT = "SysmarkNT"
	GroupSysmark95 = "Sysmark95"
	GroupGames     = "Games"
	GroupJava      = "Java"
	GroupTPC       = "TPC"
)

// base profiles per group. Each group's parameters are calibrated so that
// the published distributions hold: SpecFP has regular strided misses (most
// predictable), SpecInt and the Sysmarks are call-heavy with ≈10% colliding
// loads, Games/Java/TPC ("Other") have irregular pointer-chasing behavior
// (least predictable). Individual traces take the base with a per-trace seed
// and mild parameter jitter.
func baseProfile(group string) Profile {
	switch group {
	case GroupSpecInt95:
		return Profile{
			NumFuncs: 168, MeanBlockLen: 6, MeanLoopIters: 10, MaxCallDepth: 5,
			CallFrac: 0.4, MeanParams: 2, MeanSaves: 2,
			LocalVarFrac: 0.08, SlowStoreFrac: 0.2, SlowAddrFrac: 0.38,
			LoadFrac: 0.28, StoreFrac: 0.12, FPFrac: 0.01, ComplexFrac: 0.04,
			StreamFrac: 0.1, ChaseFrac: 0.06, GlobalFrac: 0.34,
			NumStreams: 3, StreamStride: 8, StreamWorkingSet: 64 << 10,
			ChaseWorkingSet: 18 << 10, NumGlobals: 64,
			BranchTakenBias: 0.62,
		}
	case GroupSpecFP95:
		return Profile{
			NumFuncs: 96, MeanBlockLen: 9, MeanLoopIters: 40, MaxCallDepth: 3,
			CallFrac: 0.15, MeanParams: 1, MeanSaves: 1,
			LocalVarFrac: 0.2, SlowStoreFrac: 0.35, SlowAddrFrac: 0.38,
			LoadFrac: 0.3, StoreFrac: 0.1, FPFrac: 0.25, ComplexFrac: 0.03,
			StreamFrac: 0.2, ChaseFrac: 0.01, GlobalFrac: 0.4,
			NumStreams: 6, StreamStride: 8, StreamWorkingSet: 192 << 10,
			ChaseWorkingSet: 8 << 10, NumGlobals: 48,
			BranchTakenBias: 0.8,
		}
	case GroupSysmarkNT:
		return Profile{
			NumFuncs: 216, MeanBlockLen: 5, MeanLoopIters: 8, MaxCallDepth: 6,
			CallFrac: 0.45, MeanParams: 2, MeanSaves: 2,
			LocalVarFrac: 0.08, SlowStoreFrac: 0.18, SlowAddrFrac: 0.35,
			LoadFrac: 0.27, StoreFrac: 0.14, FPFrac: 0.01, ComplexFrac: 0.05,
			StreamFrac: 0.08, ChaseFrac: 0.04, GlobalFrac: 0.38,
			NumStreams: 3, StreamStride: 8, StreamWorkingSet: 48 << 10,
			ChaseWorkingSet: 18 << 10, NumGlobals: 96,
			BranchTakenBias: 0.6,
		}
	case GroupSysmark95:
		return Profile{
			NumFuncs: 192, MeanBlockLen: 5, MeanLoopIters: 9, MaxCallDepth: 5,
			CallFrac: 0.4, MeanParams: 2, MeanSaves: 2,
			LocalVarFrac: 0.08, SlowStoreFrac: 0.18, SlowAddrFrac: 0.38,
			LoadFrac: 0.27, StoreFrac: 0.13, FPFrac: 0.02, ComplexFrac: 0.05,
			StreamFrac: 0.12, ChaseFrac: 0.1, GlobalFrac: 0.32,
			NumStreams: 3, StreamStride: 16, StreamWorkingSet: 14 << 10,
			ChaseWorkingSet: 20 << 10, NumGlobals: 80,
			BranchTakenBias: 0.6,
		}
	case GroupGames:
		return Profile{
			NumFuncs: 144, MeanBlockLen: 7, MeanLoopIters: 14, MaxCallDepth: 4,
			CallFrac: 0.3, MeanParams: 2, MeanSaves: 1,
			LocalVarFrac: 0.1, SlowStoreFrac: 0.25, SlowAddrFrac: 0.4,
			LoadFrac: 0.29, StoreFrac: 0.11, FPFrac: 0.12, ComplexFrac: 0.06,
			StreamFrac: 0.15, ChaseFrac: 0.22, GlobalFrac: 0.22,
			NumStreams: 4, StreamStride: 12, StreamWorkingSet: 16 << 10,
			ChaseWorkingSet: 18 << 10, NumGlobals: 64,
			BranchTakenBias: 0.65,
		}
	case GroupJava:
		return Profile{
			NumFuncs: 240, MeanBlockLen: 4, MeanLoopIters: 6, MaxCallDepth: 7,
			CallFrac: 0.5, MeanParams: 2, MeanSaves: 2,
			LocalVarFrac: 0.09, SlowStoreFrac: 0.19, SlowAddrFrac: 0.35,
			LoadFrac: 0.3, StoreFrac: 0.13, FPFrac: 0.01, ComplexFrac: 0.04,
			StreamFrac: 0.1, ChaseFrac: 0.15, GlobalFrac: 0.28,
			NumStreams: 2, StreamStride: 16, StreamWorkingSet: 12 << 10,
			ChaseWorkingSet: 20 << 10, NumGlobals: 96,
			BranchTakenBias: 0.6,
		}
	case GroupTPC:
		return Profile{
			NumFuncs: 192, MeanBlockLen: 6, MeanLoopIters: 10, MaxCallDepth: 5,
			CallFrac: 0.4, MeanParams: 2, MeanSaves: 2,
			LocalVarFrac: 0.1, SlowStoreFrac: 0.24, SlowAddrFrac: 0.42,
			LoadFrac: 0.28, StoreFrac: 0.12, FPFrac: 0.01, ComplexFrac: 0.05,
			StreamFrac: 0.12, ChaseFrac: 0.15, GlobalFrac: 0.26,
			NumStreams: 3, StreamStride: 24, StreamWorkingSet: 14 << 10,
			ChaseWorkingSet: 20 << 10, NumGlobals: 96,
			BranchTakenBias: 0.58,
		}
	default:
		panic(fmt.Sprintf("trace: unknown group %q", group))
	}
}

// traceNames per group, following the paper where it names traces (the NT
// traces of Figure 7: cd ex fl pd pm pp wd wp) and the benchmark suites'
// well-known member names otherwise.
var traceNames = map[string][]string{
	GroupSpecInt95: {"compress", "gcc", "go", "ijpeg", "xlisp", "m88ksim", "perl", "vortex"},
	GroupSpecFP95:  {"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"},
	GroupSysmarkNT: {"cd", "ex", "fl", "pd", "pm", "pp", "wd", "wp"},
	GroupSysmark95: {"s95a", "s95b", "s95c", "s95d", "s95e", "s95f", "s95g", "s95h"},
	GroupGames:     {"quake", "descent", "flightsim", "monster", "pod"},
	GroupJava:      {"jack", "javac", "jess", "raytrace", "db"},
	GroupTPC:       {"tpcc", "tpcd"},
}

// GroupNames lists the seven groups in the paper's order.
func GroupNames() []string {
	return []string{
		GroupSpecInt95, GroupSpecFP95, GroupSysmarkNT, GroupSysmark95,
		GroupGames, GroupJava, GroupTPC,
	}
}

// Groups returns all seven trace groups with their member traces.
func Groups() []Group {
	names := GroupNames()
	out := make([]Group, 0, len(names))
	for _, n := range names {
		g, _ := GroupByName(n)
		out = append(out, g)
	}
	return out
}

// GroupByName returns the named group.
func GroupByName(name string) (Group, bool) {
	members, ok := traceNames[name]
	if !ok {
		return Group{}, false
	}
	g := Group{Name: name}
	for i, tn := range members {
		p := baseProfile(name).withDefaults()
		p.Name = tn
		p.Seed = groupSeed(name) + int64(i)*7919
		// Mild per-trace jitter so members differ without leaving the
		// group's characteristic band.
		jitterProfile(&p, p.Seed)
		g.Traces = append(g.Traces, p)
	}
	return g, true
}

// TraceByName returns a single trace profile as "Group/name".
func TraceByName(group, name string) (Profile, bool) {
	g, ok := GroupByName(group)
	if !ok {
		return Profile{}, false
	}
	for _, t := range g.Traces {
		if t.Name == name {
			return t, true
		}
	}
	return Profile{}, false
}

func groupSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}

// jitterProfile perturbs a few shape parameters deterministically (±25%) so
// traces within a group are distinct workloads.
func jitterProfile(p *Profile, seed int64) {
	s := uint64(seed)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return 0.75 + 0.5*float64(s%1000)/1000.0
	}
	p.MeanLoopIters = max(1, int(float64(p.MeanLoopIters)*next()))
	p.MeanBlockLen = max(2, int(float64(p.MeanBlockLen)*next()))
	p.StreamWorkingSet = max(4096, int(float64(p.StreamWorkingSet)*next()))
	p.ChaseWorkingSet = max(4096, int(float64(p.ChaseWorkingSet)*next()))
	p.CallFrac *= next()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
