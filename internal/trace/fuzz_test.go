package trace

import (
	"bytes"
	"testing"
)

// FuzzReader hardens the trace-file parser against corrupt input: it must
// either return an error or produce a reader whose records all have valid
// kinds — never panic or hang.
func FuzzReader(f *testing.F) {
	// Seed with a real trace and a few mutations.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(Profile{Name: "seed", Seed: 1}), 64); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:20])
	f.Add([]byte("LSUT"))
	f.Add([]byte{})
	trunc := append([]byte{}, good...)
	trunc[4] = 2
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rd.Len() <= 0 {
			t.Fatal("reader with no records must be an error")
		}
		// Drain a bounded number of uops, covering at least one wrap.
		n := rd.Len()*2 + 4
		if n > 4096 {
			n = 4096
		}
		prev := int64(-1)
		for i := 0; i < n; i++ {
			u := rd.Next()
			if u.Seq <= prev {
				t.Fatalf("Seq regressed: %d after %d", u.Seq, prev)
			}
			prev = u.Seq
		}
	})
}

// FuzzGeneratorProfile hardens generator construction against odd profile
// values: any profile that survives withDefaults must generate without
// panicking.
func FuzzGeneratorProfile(f *testing.F) {
	f.Add(int64(1), 4, 2, 3, 0.2, 0.1)
	f.Add(int64(99), 64, 12, 1, 0.5, 0.4)
	f.Fuzz(func(t *testing.T, seed int64, funcs, blockLen, depth int, loadFrac, storeFrac float64) {
		if funcs < 1 || funcs > 128 || blockLen < 1 || blockLen > 32 || depth < 1 || depth > 12 {
			t.Skip()
		}
		if loadFrac < 0 || storeFrac < 0 || loadFrac+storeFrac > 0.9 {
			t.Skip()
		}
		p := Profile{
			Name: "fuzz", Seed: seed,
			NumFuncs: funcs, MeanBlockLen: blockLen, MaxCallDepth: depth,
			LoadFrac: loadFrac, StoreFrac: storeFrac,
		}
		g := New(p)
		for i := 0; i < 2000; i++ {
			u := g.Next()
			if u.Seq != int64(i) {
				t.Fatalf("Seq %d at position %d", u.Seq, i)
			}
		}
	})
}
