package trace

import (
	"bytes"
	"testing"

	"loadsched/internal/uop"
)

// fuzzTraceSeeds builds the shared corpus: well-formed traces in both file
// versions plus structural mutations (truncation, version relabeling, CRC
// damage) that exercise every rejection path.
func fuzzTraceSeeds(f *testing.F) {
	f.Helper()
	var v2, v1 bytes.Buffer
	if err := WriteTrace(&v2, New(Profile{Name: "seed", Seed: 1}), 64); err != nil {
		f.Fatal(err)
	}
	if err := WriteTraceV1(&v1, New(Profile{Name: "seed", Seed: 1}), 64); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:20])
	f.Add(v2.Bytes()[:len(v2.Bytes())-3]) // truncated mid-CRC
	f.Add([]byte("LSUT"))
	f.Add([]byte{})
	relabel := append([]byte{}, v1.Bytes()...)
	relabel[4] = 2 // v1 body labeled v2: chunk framing garbage
	f.Add(relabel)
	crc := append([]byte{}, v2.Bytes()...)
	crc[len(crc)-10] ^= 0x40 // damage inside the last chunk's payload/CRC
	f.Add(crc)
}

// fuzzCheckUops drains a bounded number of uops from any source, asserting
// the invariant both readers promise on accepted files: strictly increasing
// Seq, across at least one wrap.
func fuzzCheckUops(t *testing.T, length int, next func() uop.UOp) {
	n := length*2 + 4
	if n > 4096 {
		n = 4096
	}
	prev := int64(-1)
	for i := 0; i < n; i++ {
		u := next()
		if u.Seq <= prev {
			t.Fatalf("Seq regressed: %d after %d", u.Seq, prev)
		}
		prev = u.Seq
	}
}

// FuzzReader hardens the in-RAM trace-file parser against corrupt input: it
// must either return an error or produce a reader whose records all have
// valid kinds and monotonic Seq — never panic or hang.
func FuzzReader(f *testing.F) {
	fuzzTraceSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if rd.Len() <= 0 {
			t.Fatal("reader with no records must be an error")
		}
		fuzzCheckUops(t, rd.Len(), rd.Next)
	})
}

// FuzzStreamReader holds the constant-memory reader to the same contract as
// the in-RAM one, and additionally requires the two to agree on whether an
// input is acceptable at all.
func FuzzStreamReader(f *testing.F) {
	fuzzTraceSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, serr := NewStreamReader(bytes.NewReader(data))
		rd, rerr := NewReader(bytes.NewReader(data))
		if (serr == nil) != (rerr == nil) {
			t.Fatalf("readers disagree: stream err %v, in-RAM err %v", serr, rerr)
		}
		if serr != nil {
			return
		}
		defer sr.Close()
		if sr.Uops() != int64(rd.Len()) {
			t.Fatalf("stream sees %d uops, in-RAM %d", sr.Uops(), rd.Len())
		}
		fuzzCheckUops(t, rd.Len(), func() uop.UOp {
			want, got := rd.Next(), sr.Next()
			if got != want {
				t.Fatalf("streams diverge: %+v vs %+v", got, want)
			}
			return got
		})
	})
}

// FuzzGeneratorProfile hardens generator construction against odd profile
// values: any profile that survives withDefaults must generate without
// panicking.
func FuzzGeneratorProfile(f *testing.F) {
	f.Add(int64(1), 4, 2, 3, 0.2, 0.1)
	f.Add(int64(99), 64, 12, 1, 0.5, 0.4)
	f.Fuzz(func(t *testing.T, seed int64, funcs, blockLen, depth int, loadFrac, storeFrac float64) {
		if funcs < 1 || funcs > 128 || blockLen < 1 || blockLen > 32 || depth < 1 || depth > 12 {
			t.Skip()
		}
		if loadFrac < 0 || storeFrac < 0 || loadFrac+storeFrac > 0.9 {
			t.Skip()
		}
		p := Profile{
			Name: "fuzz", Seed: seed,
			NumFuncs: funcs, MeanBlockLen: blockLen, MaxCallDepth: depth,
			LoadFrac: loadFrac, StoreFrac: storeFrac,
		}
		g := New(p)
		for i := 0; i < 2000; i++ {
			u := g.Next()
			if u.Seq != int64(i) {
				t.Fatalf("Seq %d at position %d", u.Seq, i)
			}
		}
	})
}
