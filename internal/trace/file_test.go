package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"loadsched/internal/uop"
)

func TestWriteReadRoundTrip(t *testing.T) {
	p := testProfile()
	want := Collect(p, 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(p), 5000); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != 5000 {
		t.Fatalf("len = %d", rd.Len())
	}
	for i, w := range want {
		got := rd.Next()
		if got != w {
			t.Fatalf("record %d: got %+v want %+v", i, got, w)
		}
	}
}

func TestReaderWrapsAround(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(p), 1000); err != nil {
		t.Fatal(err)
	}
	rd, _ := NewReader(&buf)
	var prevSeq int64 = -1
	lastStore := map[int64]uop.Kind{}
	for i := 0; i < 3500; i++ {
		u := rd.Next()
		if u.Seq <= prevSeq {
			t.Fatalf("Seq not strictly increasing across wrap: %d after %d", u.Seq, prevSeq)
		}
		prevSeq = u.Seq
		if u.Kind == uop.STA {
			if k, seen := lastStore[u.StoreID]; seen && k == uop.STA {
				t.Fatalf("StoreID %d reused for a second STA across wraps", u.StoreID)
			}
			lastStore[u.StoreID] = uop.STA
		}
	}
}

func TestTraceFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.lsut")
	p := testProfile()
	if err := WriteTraceFile(path, p, 2000); err != nil {
		t.Fatal(err)
	}
	rd, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Len() != 2000 {
		t.Fatalf("len = %d", rd.Len())
	}
	want := Collect(p, 2000)
	for i := range want {
		if got := rd.Next(); got != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("XXXXxxxxxxxxxxxxxxxx"),
		"short":     append([]byte("LSUT\x01\x00\x00\x00"), 10, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReaderRejectsBadVersionAndKind(t *testing.T) {
	p := testProfile()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(p), 4); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	bad := append([]byte{}, data...)
	bad[4] = 99 // version
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	bad = append([]byte{}, data...)
	bad[16+32] = 200 // first record's kind
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("bad kind accepted")
	}
}
