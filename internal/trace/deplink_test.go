package trace

import (
	"path/filepath"
	"testing"
	"unsafe"

	"loadsched/internal/uop"
)

// refDeps recomputes one uop's side-car entry from the absolute stream
// history — the brute-force ground truth the streaming analyzer must match.
type refDeps struct {
	pos       int64
	lastWrite [uop.MaxArchRegs]int64 // position+1; 0 = none
	storeMax  int64
}

func (r *refDeps) expect(u *uop.UOp) (src1, src2 uint16, lastStore int64) {
	back := func(reg uop.Reg) uint16 {
		if lw := r.lastWrite[reg]; lw != 0 {
			if d := r.pos - lw + 1; d < uop.DepSaturated {
				return uint16(d)
			}
			return uop.DepSaturated
		}
		return 0
	}
	src1, src2, lastStore = back(u.Src1), back(u.Src2), r.storeMax
	if u.Dst != uop.NoReg {
		r.lastWrite[u.Dst] = r.pos + 1
	}
	if u.StoreID > r.storeMax {
		r.storeMax = u.StoreID
	}
	r.pos++
	return
}

// TestCursorDepsMatchGroundTruth pins NextBatchDeps — producer deltas, IP
// hashes and absolute last-store ids — to a brute-force recomputation over
// the whole stream, across chunk boundaries and past the sharing cap into
// the recycled private tail view.
func TestCursorDepsMatchGroundTruth(t *testing.T) {
	defer func(old int) { maxSharedUops = old }(maxSharedUops)
	maxSharedUops = 2 * ChunkUops

	p := Profile{Name: "deplink-truth", Seed: 91}
	c := Replay(p)
	var ref refDeps
	total := 5 * ChunkUops // crosses the cap into the private tail
	buf := make([]uop.UOp, 150)
	deps := make([]uop.Dep, 150)
	for consumed := 0; consumed < total; {
		n, base := c.NextBatchDeps(buf, deps)
		if n <= 0 {
			t.Fatalf("NextBatchDeps returned %d", n)
		}
		if base < 0 {
			t.Fatalf("store base invalid at uop %d; generator ids are dense", consumed)
		}
		for i := 0; i < n; i++ {
			u, d := &buf[i], &deps[i]
			s1, s2, ls := ref.expect(u)
			if d.Src1Back != s1 || d.Src2Back != s2 {
				t.Fatalf("uop %d: producer deltas (%d,%d), want (%d,%d)",
					consumed+i, d.Src1Back, d.Src2Back, s1, s2)
			}
			if got := base + int64(d.LastStore); got != ls {
				t.Fatalf("uop %d: last store %d (base %d + %d), want %d",
					consumed+i, got, base, d.LastStore, ls)
			}
			if d.IPHash != uop.HashIP(u.IP) {
				t.Fatalf("uop %d: IPHash %#x, want %#x", consumed+i, d.IPHash, uop.HashIP(u.IP))
			}
		}
		consumed += n
	}
}

// TestCursorDepsMatchAcrossConsumers checks that a deps-consuming cursor
// and a plain Next cursor observe the same uop stream (the side-car rides
// along without perturbing replay) and that two cursors — one of which
// forced the shared side-car build — see identical deps.
func TestCursorDepsMatchAcrossConsumers(t *testing.T) {
	p := Profile{Name: "deplink-share", Seed: 92}
	a, b, scalar := Replay(p), Replay(p), Replay(p)
	buf := make([]uop.UOp, 200)
	deps := make([]uop.Dep, 200)
	buf2 := make([]uop.UOp, 200)
	deps2 := make([]uop.Dep, 200)
	for consumed := 0; consumed < 3*ChunkUops; {
		n, base := a.NextBatchDeps(buf, deps)
		for done := 0; done < n; {
			m, base2 := b.NextBatchDeps(buf2[:n-done], deps2)
			if base2 != base {
				t.Fatalf("store bases diverged: %d vs %d", base2, base)
			}
			for i := 0; i < m; i++ {
				if deps2[i] != deps[done+i] {
					t.Fatalf("uop %d: deps diverged between cursors", consumed+done+i)
				}
			}
			done += m
		}
		for i := 0; i < n; i++ {
			if want := scalar.Next(); buf[i] != want {
				t.Fatalf("uop %d: deps cursor perturbs the uop stream", consumed+i)
			}
		}
		consumed += n
	}
	if Materialize(p).SidecarBytes() == 0 {
		t.Fatal("shared side-car bytes not accounted")
	}
}

// TestStreamReaderDepsMatchGroundTruth pins the streaming file replay's
// side-car across wrap-around: register deltas keep reaching through the
// wrap (the analyzer's alias state persists, matching the renamer), store
// bases are renumbered per pass, and the reported metrics move.
func TestStreamReaderDepsMatchGroundTruth(t *testing.T) {
	p := Profile{Name: "deplink-stream", Seed: 93}
	path := filepath.Join(t.TempDir(), "deps.trace")
	const fileUops = ChunkUops + ChunkUops/2
	if err := WriteTraceFile(path, p, fileUops); err != nil {
		t.Fatal(err)
	}
	r, err := StreamTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var ref refDeps
	buf := make([]uop.UOp, 130)
	deps := make([]uop.Dep, 130)
	total := 3*fileUops + ChunkUops/4 // several wraps
	for consumed := 0; consumed < total; {
		n, base := r.NextBatchDeps(buf, deps)
		if n <= 0 {
			t.Fatalf("NextBatchDeps returned %d", n)
		}
		if base < 0 {
			t.Fatalf("store base invalid at uop %d", consumed)
		}
		for i := 0; i < n; i++ {
			s1, s2, ls := ref.expect(&buf[i])
			if deps[i].Src1Back != s1 || deps[i].Src2Back != s2 {
				t.Fatalf("uop %d: producer deltas (%d,%d), want (%d,%d)",
					consumed+i, deps[i].Src1Back, deps[i].Src2Back, s1, s2)
			}
			if got := base + int64(deps[i].LastStore); got != ls {
				t.Fatalf("uop %d: last store %d, want %d", consumed+i, got, ls)
			}
		}
		consumed += n
	}
	if r.SidecarBytes() == 0 || r.SidecarBuildNanos() < 0 {
		t.Fatalf("side-car metrics missing: bytes=%d nanos=%d", r.SidecarBytes(), r.SidecarBuildNanos())
	}
}

// TestRecordingSidecarDensity pins the side-car's memory cost alongside the
// packed-chunk density: exactly 12 bytes per uop of built chunk, and the
// Dep struct itself must stay at 12 bytes — it is the unit the accounting
// and the ~30%-of-view overhead story are based on.
func TestRecordingSidecarDensity(t *testing.T) {
	if sz := unsafe.Sizeof(uop.Dep{}); int64(sz) != depSize {
		t.Fatalf("uop.Dep is %d bytes, accounting assumes %d", sz, depSize)
	}
	p := Profile{Name: "sidecar-density", Seed: 94}
	c := Replay(p)
	buf := make([]uop.UOp, 256)
	deps := make([]uop.Dep, 256)
	const n = 4 * ChunkUops
	for consumed := 0; consumed < n; {
		m, _ := c.NextBatchDeps(buf, deps)
		consumed += m
	}
	r := Materialize(p)
	built := r.SidecarBytes()
	if built < int64(n)*depSize {
		t.Fatalf("side-car bytes %d, want at least %d", built, int64(n)*depSize)
	}
	perUop := float64(built) / float64(r.Len())
	if perUop > 12 {
		t.Fatalf("side-car costs %.2f bytes/uop, want <= 12", perUop)
	}
	t.Logf("side-car density: %.2f bytes/uop over %d uops", perUop, r.Len())
}
