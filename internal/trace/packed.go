package trace

import (
	"encoding/binary"
	"fmt"

	"loadsched/internal/uop"
)

// Packed trace chunks. A materialized recording used to hold []uop.UOp at
// ~64 bytes per uop — mostly zero padding and slowly-varying u64 fields —
// which tops out near 60 MB at the sharing cap, far larger than any cache
// level the replay loop could hope to stay in. The durable representation
// is instead a sequence of fixed-population packed chunks in
// structure-of-arrays form:
//
//   - kind/dst/src1/src2/size/flags: one byte column each (flags packs
//     Taken and Mispredicted bits plus presence bits for Addr/StoreID)
//   - IP: zigzag varint deltas, one per uop (IPs walk a small program, so
//     deltas are short)
//   - Addr: zigzag varint deltas between consecutive *nonzero* addresses —
//     only uops whose flag byte has pfHasAddr contribute, so Nop/ALU uops
//     don't thrash the delta context
//   - StoreID: likewise, only under pfHasStore (StoreIDs are dense per
//     store, so the common delta is 1 → one byte)
//   - Seq: implicit from position when the chunk is dense (generator and
//     file traces always are); an explicit delta stream otherwise
//
// Synthetic traces pack to ~9 bytes/uop — about 7× smaller than the old
// slice. Each chunk also carries the absolute base values of its first uop,
// so chunks decode independently of one another; that independence is what
// lets the file reader and the shared recording stream or drop decoded
// chunks at will.
//
// A decoded chunk is a ChunkView: a flat []uop.UOp, materialized once per
// chunk so replay stays a plain slice copy. Views over shared recordings
// are immutable once published; streaming readers recycle a private view.

const (
	chunkShift = 12
	// ChunkUops is the fixed population of a full packed chunk (the last
	// chunk of a file may be shorter). Replay cursors, the engine's bulk
	// fetch path, and the runner's lockstep windows all align to it.
	ChunkUops = 1 << chunkShift
)

// Flag-column bits. Bits 0 and 1 match the v1 file format's flag byte;
// bits 2 and 3 exist only in the packed form and mark which uops carry a
// nonzero Addr / StoreID (and thus consume a delta from the corresponding
// stream).
const (
	pfTaken        = 1 << 0
	pfMispredicted = 1 << 1
	pfHasAddr      = 1 << 2
	pfHasStore     = 1 << 3
)

// packedChunk is the durable form of up to ChunkUops consecutive uops.
type packedChunk struct {
	n     int
	dense bool // Seq values are baseSeq, baseSeq+1, ... (seqd empty)

	// Absolute values of the first uop's fields (baseAddr/baseStore: of the
	// first uop with the corresponding presence bit; 0 if none), so the
	// chunk decodes without any earlier chunk's context.
	baseSeq   int64
	baseIP    uint64
	baseAddr  uint64
	baseStore int64

	kinds, dsts, src1s, src2s, sizes, flags []byte

	ipd   []byte // zigzag varint deltas, n-1 entries (first uop is baseIP)
	addrd []byte // zigzag varint deltas between consecutive pfHasAddr uops
	sidd  []byte // zigzag varint deltas between consecutive pfHasStore uops
	seqd  []byte // zigzag varint deltas, n-1 entries; nil when dense
}

// packedBytes is the chunk's in-memory footprint in payload bytes — what
// "bytes per uop" measures.
func (c *packedChunk) packedBytes() int {
	return len(c.kinds) + len(c.dsts) + len(c.src1s) + len(c.src2s) +
		len(c.sizes) + len(c.flags) +
		len(c.ipd) + len(c.addrd) + len(c.sidd) + len(c.seqd)
}

// chunkEncoder packs a uop stream chunk by chunk. begin/add/seal; the
// encoder owns no chunk memory after seal.
type chunkEncoder struct {
	c                 *packedChunk
	prevSeq           int64
	prevIP            uint64
	prevAddr          uint64
	prevStore         int64
	sawAddr, sawStore bool
}

func (e *chunkEncoder) begin() {
	e.c = &packedChunk{dense: true}
	e.sawAddr, e.sawStore = false, false
}

func (e *chunkEncoder) add(u uop.UOp) {
	c := e.c
	var f byte
	if u.Taken {
		f |= pfTaken
	}
	if u.Mispredicted {
		f |= pfMispredicted
	}
	if u.Addr != 0 {
		f |= pfHasAddr
	}
	if u.StoreID != 0 {
		f |= pfHasStore
	}
	c.kinds = append(c.kinds, byte(u.Kind))
	c.dsts = append(c.dsts, byte(u.Dst))
	c.src1s = append(c.src1s, byte(u.Src1))
	c.src2s = append(c.src2s, byte(u.Src2))
	c.sizes = append(c.sizes, u.Size)
	c.flags = append(c.flags, f)
	if c.n == 0 {
		c.baseSeq, c.baseIP = u.Seq, u.IP
	} else {
		c.seqd = appendZigzag(c.seqd, u.Seq-e.prevSeq)
		c.ipd = appendZigzag(c.ipd, int64(u.IP-e.prevIP))
		if u.Seq != c.baseSeq+int64(c.n) {
			c.dense = false
		}
	}
	e.prevSeq, e.prevIP = u.Seq, u.IP
	if u.Addr != 0 {
		if !e.sawAddr {
			c.baseAddr, e.sawAddr = u.Addr, true
		} else {
			c.addrd = appendZigzag(c.addrd, int64(u.Addr-e.prevAddr))
		}
		e.prevAddr = u.Addr
	}
	if u.StoreID != 0 {
		if !e.sawStore {
			c.baseStore, e.sawStore = u.StoreID, true
		} else {
			c.sidd = appendZigzag(c.sidd, u.StoreID-e.prevStore)
		}
		e.prevStore = u.StoreID
	}
	c.n++
}

// seal finishes the chunk: a dense chunk drops its redundant seq stream.
func (e *chunkEncoder) seal() *packedChunk {
	c := e.c
	if c.dense {
		c.seqd = nil
	}
	e.c = nil
	return c
}

// packUops is the one-shot form: packs len(us) uops (≤ ChunkUops) into a
// sealed chunk.
func packUops(us []uop.UOp) *packedChunk {
	var e chunkEncoder
	e.begin()
	for _, u := range us {
		e.add(u)
	}
	return e.seal()
}

// ChunkView is one decoded chunk: a flat []uop.UOp ready for the replay
// hot path. Replay is a straight slice copy — a per-uop column gather
// measures ~9× slower than copying a flat record, so decoding pays the
// gather exactly once per chunk (amortized across every cursor and every
// configuration that replays the chunk) and the steady state touches only
// the flat form. Views published on a shared recording are immutable;
// streaming readers recycle a private view through buf.
type ChunkView struct {
	us  []uop.UOp // decoded uops, buf[:n]
	buf []uop.UOp // backing storage, reused across decodes
}

// Len reports the view's uop population.
func (v *ChunkView) Len() int { return len(v.us) }

// UOp returns uop i of the view. i must be in [0, Len()).
func (v *ChunkView) UOp(i int) uop.UOp { return v.us[i] }

// grow readies the view's backing storage for n uops.
func (v *ChunkView) grow(n int) []uop.UOp {
	if cap(v.buf) < n {
		v.buf = make([]uop.UOp, n)
	}
	v.us = v.buf[:n]
	return v.us
}

// decode expands c into v, reusing v's backing storage when it is large
// enough. Nothing in the decoded view aliases c or the payload it was
// unmarshaled from, so callers may recycle payload buffers immediately.
func (c *packedChunk) decode(v *ChunkView) error {
	n := c.n
	us := v.grow(n)
	kinds := c.kinds[:n]
	dsts := c.dsts[:n]
	src1s := c.src1s[:n]
	src2s := c.src2s[:n]
	sizes := c.sizes[:n]
	flags := c.flags[:n]
	seq0 := c.baseSeq
	for i := range us {
		f := flags[i]
		us[i] = uop.UOp{
			Seq:          seq0 + int64(i),
			Kind:         uop.Kind(kinds[i]),
			Dst:          uop.Reg(dsts[i]),
			Src1:         uop.Reg(src1s[i]),
			Src2:         uop.Reg(src2s[i]),
			Size:         sizes[i],
			Taken:        f&pfTaken != 0,
			Mispredicted: f&pfMispredicted != 0,
		}
	}

	ip := c.baseIP
	p := c.ipd
	us[0].IP = ip
	for i := 1; i < n; i++ {
		d, k := readZigzag(p)
		if k <= 0 {
			return fmt.Errorf("trace: chunk ip stream truncated at uop %d", i)
		}
		p = p[k:]
		ip += uint64(d)
		us[i].IP = ip
	}
	if len(p) != 0 {
		return fmt.Errorf("trace: chunk ip stream has %d trailing bytes", len(p))
	}

	if !c.dense {
		seq := c.baseSeq
		p = c.seqd
		for i := 1; i < n; i++ {
			d, k := readZigzag(p)
			if k <= 0 {
				return fmt.Errorf("trace: chunk seq stream truncated at uop %d", i)
			}
			p = p[k:]
			seq += d
			us[i].Seq = seq
		}
		if len(p) != 0 {
			return fmt.Errorf("trace: chunk seq stream has %d trailing bytes", len(p))
		}
	}

	addr, first := c.baseAddr, true
	p = c.addrd
	for i := 0; i < n; i++ {
		if flags[i]&pfHasAddr == 0 {
			continue
		}
		if first {
			first = false
		} else {
			d, k := readZigzag(p)
			if k <= 0 {
				return fmt.Errorf("trace: chunk addr stream truncated at uop %d", i)
			}
			p = p[k:]
			addr += uint64(d)
		}
		if addr == 0 {
			return fmt.Errorf("trace: chunk addr stream decodes to 0 under a presence flag at uop %d", i)
		}
		us[i].Addr = addr
	}
	if len(p) != 0 {
		return fmt.Errorf("trace: chunk addr stream has %d trailing bytes", len(p))
	}

	sid, first := c.baseStore, true
	p = c.sidd
	for i := 0; i < n; i++ {
		if flags[i]&pfHasStore == 0 {
			continue
		}
		if first {
			first = false
		} else {
			d, k := readZigzag(p)
			if k <= 0 {
				return fmt.Errorf("trace: chunk store stream truncated at uop %d", i)
			}
			p = p[k:]
			sid += d
		}
		if sid == 0 {
			return fmt.Errorf("trace: chunk store stream decodes to 0 under a presence flag at uop %d", i)
		}
		us[i].StoreID = sid
	}
	if len(p) != 0 {
		return fmt.Errorf("trace: chunk store stream has %d trailing bytes", len(p))
	}
	return nil
}

// decodeChunk is decode into a fresh view (shared-recording publication).
func (c *packedChunk) decodeChunk() (*ChunkView, error) {
	v := &ChunkView{}
	if err := c.decode(v); err != nil {
		return nil, err
	}
	return v, nil
}

// marshal serializes the chunk as a file-v2 payload:
//
//	zigzag baseSeq | uvarint baseIP | uvarint baseAddr | zigzag baseStore
//	u8 chunkFlags (bit0 dense) | uvarint n
//	kinds[n] dsts[n] src1s[n] src2s[n] sizes[n] flags[n]
//	uvarint len(ipd)   | ipd
//	uvarint len(addrd) | addrd
//	uvarint len(sidd)  | sidd
//	uvarint len(seqd)  | seqd          (only when not dense)
func (c *packedChunk) marshal(dst []byte) []byte {
	dst = appendZigzag(dst, c.baseSeq)
	dst = binary.AppendUvarint(dst, c.baseIP)
	dst = binary.AppendUvarint(dst, c.baseAddr)
	dst = appendZigzag(dst, c.baseStore)
	var cf byte
	if c.dense {
		cf |= 1
	}
	dst = append(dst, cf)
	dst = binary.AppendUvarint(dst, uint64(c.n))
	dst = append(dst, c.kinds...)
	dst = append(dst, c.dsts...)
	dst = append(dst, c.src1s...)
	dst = append(dst, c.src2s...)
	dst = append(dst, c.sizes...)
	dst = append(dst, c.flags...)
	for _, s := range [][]byte{c.ipd, c.addrd, c.sidd} {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	if !c.dense {
		dst = binary.AppendUvarint(dst, uint64(len(c.seqd)))
		dst = append(dst, c.seqd...)
	}
	return dst
}

// unmarshalChunk parses a file-v2 payload into c. The chunk's byte columns
// and delta streams alias payload. maxN bounds the accepted population
// (ChunkUops for files).
func unmarshalChunk(payload []byte, c *packedChunk, maxN int) error {
	p := payload
	var err error
	if c.baseSeq, p, err = takeZigzag(p, "baseSeq"); err != nil {
		return err
	}
	if c.baseIP, p, err = takeUvarint(p, "baseIP"); err != nil {
		return err
	}
	if c.baseAddr, p, err = takeUvarint(p, "baseAddr"); err != nil {
		return err
	}
	if c.baseStore, p, err = takeZigzag(p, "baseStore"); err != nil {
		return err
	}
	if len(p) < 1 {
		return fmt.Errorf("trace: chunk payload truncated at flags")
	}
	cf := p[0]
	p = p[1:]
	if cf&^1 != 0 {
		return fmt.Errorf("trace: chunk has unknown flag bits %#x", cf)
	}
	c.dense = cf&1 != 0
	nu, p, err := takeUvarint(p, "n")
	if err != nil {
		return err
	}
	if nu == 0 || nu > uint64(maxN) {
		return fmt.Errorf("trace: chunk population %d out of range (1..%d)", nu, maxN)
	}
	n := int(nu)
	c.n = n
	if len(p) < 6*n {
		return fmt.Errorf("trace: chunk payload truncated in byte columns (%d < %d)", len(p), 6*n)
	}
	c.kinds, p = p[:n:n], p[n:]
	c.dsts, p = p[:n:n], p[n:]
	c.src1s, p = p[:n:n], p[n:]
	c.src2s, p = p[:n:n], p[n:]
	c.sizes, p = p[:n:n], p[n:]
	c.flags, p = p[:n:n], p[n:]
	for i := 0; i < n; i++ {
		if int(c.kinds[i]) >= uop.NumKinds {
			return fmt.Errorf("trace: chunk uop %d has invalid kind %d", i, c.kinds[i])
		}
		if c.flags[i]&^(pfTaken|pfMispredicted|pfHasAddr|pfHasStore) != 0 {
			return fmt.Errorf("trace: chunk uop %d has unknown flag bits %#x", i, c.flags[i])
		}
	}
	streams := []*[]byte{&c.ipd, &c.addrd, &c.sidd}
	c.seqd = nil
	if !c.dense {
		streams = append(streams, &c.seqd)
	}
	for _, s := range streams {
		lu, rest, err := takeUvarint(p, "stream length")
		if err != nil {
			return err
		}
		if lu > uint64(len(rest)) {
			return fmt.Errorf("trace: chunk stream length %d exceeds remaining payload %d", lu, len(rest))
		}
		*s, p = rest[:lu:lu], rest[lu:]
	}
	if len(p) != 0 {
		return fmt.Errorf("trace: chunk payload has %d trailing bytes", len(p))
	}
	return nil
}

// Varint helpers: unsigned little-endian base-128 via encoding/binary,
// zigzag-mapped for signed deltas.

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

func readZigzag(b []byte) (int64, int) {
	u, k := binary.Uvarint(b)
	return int64(u>>1) ^ -int64(u&1), k
}

func takeUvarint(p []byte, what string) (uint64, []byte, error) {
	u, k := binary.Uvarint(p)
	if k <= 0 {
		return 0, nil, fmt.Errorf("trace: chunk payload truncated at %s", what)
	}
	return u, p[k:], nil
}

func takeZigzag(p []byte, what string) (int64, []byte, error) {
	u, rest, err := takeUvarint(p, what)
	if err != nil {
		return 0, nil, err
	}
	return int64(u>>1) ^ -int64(u&1), rest, nil
}
