package trace

import "loadsched/internal/uop"

// Static dependence side-car. Which uop produces a source register, and
// which store is the youngest one older than a load, are properties of the
// uop stream alone — no machine configuration changes them. Yet every
// engine in a sweep re-derives them per uop through its private alias
// tables and MOB bookkeeping. The side-car hoists that analysis to the
// trace layer: one depAnalyzer pass per chunk, at decode time, produces a
// []uop.Dep that every engine replaying the chunk consumes by plain
// indexing (see internal/ooo frontend.go for the consumer contract).
//
// All producer references are backward stream-position deltas, so they are
// invariant under the Seq/StoreID renumbering that file replay applies when
// a finite trace wraps, and under where in the stream the chunk sits.
// Store references are deltas against a per-batch base so they fit a
// uint16 even though absolute store IDs grow without bound.

// depSize is the in-memory footprint of one side-car entry, used for the
// bytes/uop accounting surfaced by `trace info` and Recording.SidecarBytes.
const depSize = int64(12)

// DepChunk is one chunk's published side-car: a Dep per uop plus the store
// base its LastStore deltas are relative to. BaseStore is -1 when the
// chunk's store IDs could not be delta-encoded (a gap wider than a uint16,
// which dense generator/file IDs never produce); consumers then fall back
// to their own store tracking for the whole chunk.
type DepChunk struct {
	Deps      []uop.Dep
	BaseStore int64
}

// depAnalyzer derives the side-car in one forward pass. It carries across
// chunk boundaries: lastWrite and pos persist for the whole stream (and, in
// file replay, across wraps — producers can reach back through a wrap
// exactly like the renamer's alias tables do), while storeMax is snapshot
// per batch to form each batch's delta base.
type depAnalyzer struct {
	// pos is the stream position of the next uop to observe.
	pos int64
	// lastWrite[r] is 1 + the position of the youngest writer of register
	// r, 0 if none yet. The +1 bias makes the zero value "no producer",
	// and slot 0 (NoReg) is never written, so NoReg sources resolve to
	// delta 0 with no special case.
	lastWrite [uop.MaxArchRegs]int64
	// storeMax is the largest StoreID observed so far. It is absolute for
	// the whole stream: file replay renumbers each chunk in place before
	// the analyzer observes it, so wraps never reset it.
	storeMax int64
}

// observe advances the analyzer past u without emitting a Dep — used to
// replay a stream prefix (private tail cursors) purely for its carry state.
func (a *depAnalyzer) observe(u *uop.UOp) {
	if u.Dst != uop.NoReg {
		a.lastWrite[u.Dst] = a.pos + 1
	}
	if u.StoreID > a.storeMax {
		a.storeMax = u.StoreID
	}
	a.pos++
}

// backRef returns the producer delta for source register r as seen from
// the current position: 0 for no producer, else the saturated distance to
// its youngest prior writer.
func (a *depAnalyzer) backRef(r uop.Reg) uint16 {
	lw := a.lastWrite[r]
	if lw == 0 {
		return 0
	}
	if d := a.pos - lw + 1; d < uop.DepSaturated {
		return uint16(d)
	}
	return uop.DepSaturated
}

// buildInto fills dst[:len(us)] with the side-car for us, advancing the
// analyzer past every uop, and returns the batch's store base: LastStore
// deltas are relative to it, or -1 if any delta overflowed (the analyzer
// still advances fully, so carry state stays correct for later batches).
func (a *depAnalyzer) buildInto(dst []uop.Dep, us []uop.UOp) int64 {
	base := a.storeMax
	ok := true
	for i := range us {
		u := &us[i]
		d := &dst[i]
		d.IPHash = uop.HashIP(u.IP)
		d.Src1Back = a.backRef(u.Src1)
		d.Src2Back = a.backRef(u.Src2)
		ls := a.storeMax - base
		if ls > uop.DepSaturated {
			ok = false
			ls = 0
		}
		d.LastStore = uint16(ls)
		a.observe(u)
	}
	if !ok {
		return -1
	}
	return base
}
