package trace

import (
	"sync"
	"testing"
)

// TestReplayMatchesGenerator pins the shared recording to the generator: a
// cursor must emit the exact stream a fresh generator would.
func TestReplayMatchesGenerator(t *testing.T) {
	p := Profile{Name: "replay-eq", Seed: 42}
	g := New(p)
	c := Replay(p)
	for i := 0; i < 20000; i++ {
		want, got := g.Next(), c.Next()
		if got != want {
			t.Fatalf("uop %d: replay %+v, generator %+v", i, got, want)
		}
	}
}

// TestReplayCursorsIndependent checks that cursors do not share position:
// interleaved readers each see the stream from the start.
func TestReplayCursorsIndependent(t *testing.T) {
	p := Profile{Name: "replay-indep", Seed: 7}
	a, b := Replay(p), Replay(p)
	// Advance a past b, then check b still replays from its own position.
	for i := 0; i < 500; i++ {
		a.Next()
	}
	g := New(p)
	for i := 0; i < 1000; i++ {
		want := g.Next()
		if got := b.Next(); got != want {
			t.Fatalf("uop %d: cursor b %+v, want %+v", i, got, want)
		}
	}
}

// TestReplaySharesRecording checks the point of the exercise: two cursors
// over one profile share a single recording, generated once.
func TestReplaySharesRecording(t *testing.T) {
	p := Profile{Name: "replay-shared", Seed: 11}
	a := Replay(p)
	for i := 0; i < 3000; i++ {
		a.Next()
	}
	r := Materialize(p)
	n := r.Len()
	if n < 3000 {
		t.Fatalf("recording holds %d uops after 3000 reads", n)
	}
	b := Replay(p)
	for i := 0; i < 3000; i++ {
		b.Next()
	}
	if got := r.Len(); got != n {
		t.Fatalf("second cursor grew the recording: %d -> %d uops", n, got)
	}
}

// TestReplayBeyondCap checks the fallback: a cursor that outruns
// maxSharedUops switches to a private generator with no seam in the stream,
// and the shared recording stops growing at the cap.
func TestReplayBeyondCap(t *testing.T) {
	defer func(old int) { maxSharedUops = old }(maxSharedUops)
	maxSharedUops = 1 << 12

	p := Profile{Name: "replay-cap", Seed: 99}
	g := New(p)
	c := Replay(p)
	total := maxSharedUops * 3
	for i := 0; i < total; i++ {
		want, got := g.Next(), c.Next()
		if got != want {
			t.Fatalf("uop %d (cap %d): replay %+v, generator %+v", i, maxSharedUops, got, want)
		}
	}
	if n := Materialize(p).Len(); n > maxSharedUops {
		t.Fatalf("recording grew to %d uops past the cap %d", n, maxSharedUops)
	}
}

// TestReplayConcurrent hammers one recording from many goroutines; run
// under -race this checks the lock-free snapshot protocol.
func TestReplayConcurrent(t *testing.T) {
	p := Profile{Name: "replay-conc", Seed: 3}
	want := Collect(p, 8000)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := Replay(p)
			for i, u := range want {
				if got := c.Next(); got != u {
					errs <- "stream diverged at uop " + string(rune('0'+i%10))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
