package trace

import (
	"testing"

	"loadsched/internal/uop"
)

func testProfile() Profile {
	return Profile{Name: "test", Seed: 1}.withDefaults()
}

func TestDeterminism(t *testing.T) {
	a := Collect(testProfile(), 5000)
	b := Collect(testProfile(), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("uop %d differs between identical generators:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestSeqDense(t *testing.T) {
	us := Collect(testProfile(), 1000)
	for i, u := range us {
		if u.Seq != int64(i) {
			t.Fatalf("uop %d has Seq=%d", i, u.Seq)
		}
	}
}

func TestSTAAlwaysPrecedesSTD(t *testing.T) {
	us := Collect(testProfile(), 20000)
	staSeen := map[int64]bool{}
	stdSeen := map[int64]bool{}
	for _, u := range us {
		switch u.Kind {
		case uop.STA:
			if staSeen[u.StoreID] || stdSeen[u.StoreID] {
				t.Fatalf("duplicate or out-of-order STA for store %d", u.StoreID)
			}
			staSeen[u.StoreID] = true
		case uop.STD:
			if !staSeen[u.StoreID] {
				t.Fatalf("STD for store %d before its STA", u.StoreID)
			}
			if stdSeen[u.StoreID] {
				t.Fatalf("duplicate STD for store %d", u.StoreID)
			}
			stdSeen[u.StoreID] = true
		}
	}
	if len(staSeen) == 0 {
		t.Fatal("trace contains no stores")
	}
	// Every STA in the middle of the trace should have a matching STD.
	missing := 0
	for id := range staSeen {
		if !stdSeen[id] {
			missing++
		}
	}
	if missing > 2 { // the trace may end between an STA and its STD
		t.Fatalf("%d STAs lack a matching STD", missing)
	}
}

func TestMemoryUopsHaveAddresses(t *testing.T) {
	us := Collect(testProfile(), 20000)
	for _, u := range us {
		if u.HasMemAddr() && u.Addr == 0 {
			t.Fatalf("memory uop without address: %v", u)
		}
		if !u.HasMemAddr() && u.Addr != 0 {
			t.Fatalf("non-memory uop with address: %v", u)
		}
	}
}

func TestInstructionMixPlausible(t *testing.T) {
	us := Collect(testProfile(), 100000)
	counts := map[uop.Kind]int{}
	for _, u := range us {
		counts[u.Kind]++
	}
	n := float64(len(us))
	loadFrac := float64(counts[uop.Load]) / n
	storeFrac := float64(counts[uop.STA]) / n
	branchFrac := float64(counts[uop.Branch]) / n
	if loadFrac < 0.1 || loadFrac > 0.45 {
		t.Errorf("load fraction %.3f outside [0.1, 0.45]", loadFrac)
	}
	if storeFrac < 0.03 || storeFrac > 0.3 {
		t.Errorf("store fraction %.3f outside [0.03, 0.3]", storeFrac)
	}
	if branchFrac < 0.05 || branchFrac > 0.35 {
		t.Errorf("branch fraction %.3f outside [0.05, 0.35]", branchFrac)
	}
	if counts[uop.STA] != counts[uop.STD] && abs(counts[uop.STA]-counts[uop.STD]) > 1 {
		t.Errorf("STA count %d != STD count %d", counts[uop.STA], counts[uop.STD])
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLoadsRecur(t *testing.T) {
	// History-based prediction requires static loads to recur: the number of
	// distinct load IPs must be far smaller than the number of dynamic loads.
	us := Collect(testProfile(), 100000)
	ips := map[uint64]int{}
	loads := 0
	for _, u := range us {
		if u.Kind == uop.Load {
			ips[u.IP]++
			loads++
		}
	}
	if len(ips) == 0 {
		t.Fatal("no loads")
	}
	meanRecurrence := float64(loads) / float64(len(ips))
	if meanRecurrence < 20 {
		t.Errorf("mean load recurrence %.1f too low for history predictors", meanRecurrence)
	}
}

func TestStoreLoadPairsExist(t *testing.T) {
	// Parameter passing and local-variable traffic must create store→load
	// pairs at short dynamic distances — the raw material for collisions.
	us := Collect(testProfile(), 50000)
	lastStoreSeq := map[uint64]int64{} // addr → seq of last STA
	pairs := 0
	for _, u := range us {
		switch u.Kind {
		case uop.STA:
			lastStoreSeq[u.Addr] = u.Seq
		case uop.Load:
			if s, ok := lastStoreSeq[u.Addr]; ok && u.Seq-s < 64 {
				pairs++
			}
		}
	}
	if pairs < 100 {
		t.Errorf("only %d short-distance store→load pairs in 50k uops", pairs)
	}
}

func TestBranchMispredictRatePlausible(t *testing.T) {
	us := Collect(testProfile(), 100000)
	branches, mispredicts := 0, 0
	for _, u := range us {
		if u.Kind == uop.Branch {
			branches++
			if u.Mispredicted {
				mispredicts++
			}
		}
	}
	rate := float64(mispredicts) / float64(branches)
	if rate < 0.001 || rate > 0.25 {
		t.Errorf("branch mispredict rate %.3f outside [0.001, 0.25]", rate)
	}
}

func TestStackAddressesBelowBase(t *testing.T) {
	us := Collect(testProfile(), 20000)
	for _, u := range us {
		if u.HasMemAddr() && u.Addr > stackBase {
			t.Fatalf("address above stack base: %v", u)
		}
	}
}

func TestGroups(t *testing.T) {
	gs := Groups()
	if len(gs) != 7 {
		t.Fatalf("expected 7 groups, got %d", len(gs))
	}
	wantSizes := map[string]int{
		GroupSpecInt95: 8, GroupSpecFP95: 10, GroupSysmarkNT: 8,
		GroupSysmark95: 8, GroupGames: 5, GroupJava: 5, GroupTPC: 2,
	}
	total := 0
	for _, g := range gs {
		if len(g.Traces) != wantSizes[g.Name] {
			t.Errorf("group %s has %d traces, want %d", g.Name, len(g.Traces), wantSizes[g.Name])
		}
		total += len(g.Traces)
		seen := map[int64]bool{}
		for _, tr := range g.Traces {
			if tr.Name == "" {
				t.Errorf("group %s has unnamed trace", g.Name)
			}
			if seen[tr.Seed] {
				t.Errorf("group %s has duplicate seed %d", g.Name, tr.Seed)
			}
			seen[tr.Seed] = true
		}
	}
	if total != 46 {
		t.Errorf("total traces = %d, want 46 as in the paper", total)
	}
}

func TestGroupByName(t *testing.T) {
	if _, ok := GroupByName("NoSuchGroup"); ok {
		t.Fatal("unknown group should not resolve")
	}
	g, ok := GroupByName(GroupSysmarkNT)
	if !ok || g.Name != GroupSysmarkNT {
		t.Fatal("SysmarkNT should resolve")
	}
	want := []string{"cd", "ex", "fl", "pd", "pm", "pp", "wd", "wp"}
	for i, tr := range g.Traces {
		if tr.Name != want[i] {
			t.Errorf("NT trace %d = %q, want %q (paper Fig 7 names)", i, tr.Name, want[i])
		}
	}
}

func TestTraceByName(t *testing.T) {
	p, ok := TraceByName(GroupSpecInt95, "gcc")
	if !ok || p.Name != "gcc" {
		t.Fatal("SpecInt95/gcc should resolve")
	}
	if _, ok := TraceByName(GroupSpecInt95, "nope"); ok {
		t.Fatal("unknown trace should not resolve")
	}
}

func TestGroupTracesDiffer(t *testing.T) {
	g, _ := GroupByName(GroupSpecInt95)
	a := Collect(g.Traces[0], 2000)
	b := Collect(g.Traces[1], 2000)
	same := 0
	for i := range a {
		if a[i].IP == b[i].IP && a[i].Kind == b[i].Kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("two traces of a group are identical")
	}
}

func TestGroupCharacteristics(t *testing.T) {
	// SpecFP must have a larger stream share and fewer calls than SysmarkNT;
	// this is what makes FP misses more predictable in Fig 10.
	fp := baseProfile(GroupSpecFP95)
	nt := baseProfile(GroupSysmarkNT)
	if fp.StreamFrac <= nt.StreamFrac {
		t.Error("SpecFP should stream more than SysmarkNT")
	}
	if fp.CallFrac >= nt.CallFrac {
		t.Error("SysmarkNT should call more than SpecFP")
	}
	tpc := baseProfile(GroupTPC)
	if tpc.ChaseWorkingSet <= nt.ChaseWorkingSet {
		t.Error("TPC should have a larger irregular working set than NT")
	}
}

func TestCallDepthBounded(t *testing.T) {
	p := testProfile()
	p.MaxCallDepth = 3
	g := New(p)
	maxDepth := 0
	for i := 0; i < 50000; i++ {
		g.Next()
		if d := len(g.stack); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth > 3 {
		t.Fatalf("call depth %d exceeds MaxCallDepth 3", maxDepth)
	}
}

func TestWithDefaultsFillsEverything(t *testing.T) {
	p := Profile{}.withDefaults()
	if p.NumFuncs == 0 || p.LoadFrac == 0 || p.StreamWorkingSet == 0 || p.UopsPerInstr == 0 {
		t.Fatalf("withDefaults left zero fields: %+v", p)
	}
}
