package trace

import (
	"math/rand"

	"loadsched/internal/predict"
	"loadsched/internal/uop"
)

// Generator walks the synthetic static program and emits the dynamic uop
// stream. Generators are deterministic: two generators built from the same
// profile emit identical streams, which lets experiments replay a trace
// through many predictor configurations.
type Generator struct {
	prog *program
	rng  *rand.Rand

	seq      int64
	storeSeq int64

	streamPos []uint64
	stack     []*frameState
	topCum    []float64

	// front-end branch predictor model: decides the Mispredicted flag on
	// conditional branches.
	bpred *predict.GShare
}

// frame-stage values.
const (
	stPrologue = iota
	stBody
	stEpilogue
)

type frameState struct {
	fn *function
	sp uint64
	// stage is stPrologue, stBody or stEpilogue.
	stage int
	// idx indexes the prologue/epilogue sequence, or the block uop list.
	idx int
	// blockIdx and iter track the body loop.
	blockIdx, iter, iters int
	// callIdx indexes the pending call's parameter stores; callDone marks
	// that the callee has returned and the block branch is next.
	callIdx  int
	inCall   bool
	callDone bool
}

// New builds a generator for the profile.
func New(p Profile) *Generator {
	p = p.withDefaults()
	prog := buildProgram(p)
	g := &Generator{
		prog:      prog,
		rng:       rand.New(rand.NewSource(p.Seed ^ 0x5eed_d15c)),
		streamPos: make([]uint64, prog.numStreamCursors),
		bpred:     predict.NewGShare(12, 10, 2),
	}
	// Decorrelate the private cursors' starting lines.
	for i := range g.streamPos {
		g.streamPos[i] = uint64(i) * 4096
	}
	g.topCum = make([]float64, len(prog.hotWeights))
	sum := 0.0
	for i, w := range prog.hotWeights {
		sum += w
		g.topCum[i] = sum
	}
	return g
}

// Profile returns the (defaulted) profile the generator runs.
func (g *Generator) Profile() Profile { return g.prog.prof }

// Next emits the next dynamic uop. It never ends; callers bound the length.
func (g *Generator) Next() uop.UOp {
	for {
		if len(g.stack) == 0 {
			g.pushTopLevel()
		}
		f := g.stack[len(g.stack)-1]
		u, ok := g.step(f)
		if ok {
			u.Seq = g.seq
			g.seq++
			return u
		}
	}
}

// pushTopLevel starts a new invocation of a hot function at stack depth 0.
func (g *Generator) pushTopLevel() {
	r := g.rng.Float64() * g.topCum[len(g.topCum)-1]
	fid := 0
	for i, c := range g.topCum {
		if r <= c {
			fid = i
			break
		}
	}
	g.push(g.prog.funcs[fid], stackBase)
}

func (g *Generator) push(fn *function, callerSP uint64) {
	// Trip counts are mostly fixed per static loop (their exits are then
	// learnable history patterns, as in real code); a small fraction of
	// invocations run one extra or one fewer iteration.
	iters := fn.meanIters
	switch r := g.rng.Float64(); {
	case r < 0.05 && iters > 1:
		iters--
	case r < 0.10:
		iters++
	}
	g.stack = append(g.stack, &frameState{
		fn:    fn,
		sp:    callerSP - uint64(fn.frameSize),
		iters: iters,
	})
}

// step advances one frame's program counter, possibly emitting a uop. It
// returns ok=false when it performed a control action (push/pop) instead.
func (g *Generator) step(f *frameState) (uop.UOp, bool) {
	switch f.stage {
	case stPrologue:
		if f.idx < len(f.fn.prologue) {
			u := g.materialize(&f.fn.prologue[f.idx], f)
			f.idx++
			return u, true
		}
		f.stage, f.idx = stBody, 0
		if len(f.fn.body) == 0 {
			f.stage = stEpilogue
		}
		return uop.UOp{}, false

	case stBody:
		blk := &f.fn.body[f.blockIdx]
		if f.idx < len(blk.uops) {
			u := g.materialize(&blk.uops[f.idx], f)
			f.idx++
			return u, true
		}
		if blk.call != nil && !f.callDone {
			callee := g.prog.funcs[blk.call.callee]
			if len(g.stack) >= g.prog.prof.MaxCallDepth {
				f.callDone = true // depth limit: elide the call entirely
				return uop.UOp{}, false
			}
			if f.callIdx < len(blk.call.paramStores) {
				su := &blk.call.paramStores[f.callIdx]
				u := g.materializeParamStore(su, f, callee)
				f.callIdx++
				return u, true
			}
			if !f.inCall {
				// Emit the transfer and enter the callee.
				u := g.materialize(&blk.call.transfer, f)
				f.inCall = true
				g.push(callee, f.sp)
				return u, true
			}
			// The callee returned (pop brought us back here).
			f.inCall, f.callDone = false, true
			return uop.UOp{}, false
		}
		// Block branch, then advance the loop.
		u := g.materializeBranch(&blk.branch, f)
		f.idx, f.callIdx, f.callDone = 0, 0, false
		if f.blockIdx+1 < len(f.fn.body) {
			f.blockIdx++
		} else if f.iter+1 < f.iters {
			f.iter++
			f.blockIdx = 0
		} else {
			f.stage, f.idx = stEpilogue, 0
		}
		return u, true

	default: // stEpilogue
		if f.idx < len(f.fn.epilogue) {
			u := g.materialize(&f.fn.epilogue[f.idx], f)
			f.idx++
			return u, true
		}
		g.stack = g.stack[:len(g.stack)-1]
		return uop.UOp{}, false
	}
}

// materialize turns a static uop into a dynamic one, synthesizing addresses
// and store ids.
func (g *Generator) materialize(su *staticUOp, f *frameState) uop.UOp {
	u := uop.UOp{
		IP:   su.ip,
		Kind: su.kind,
		Dst:  su.dst,
		Src1: su.src1,
		Src2: su.src2,
		Size: wordSize,
	}
	switch su.kind {
	case uop.Load, uop.STA:
		u.Addr = g.address(su, f)
	case uop.Branch:
		u.Taken = true // call/return transfers; conditionals use materializeBranch
	}
	if su.kind == uop.STA {
		g.storeSeq++
		u.StoreID = g.storeSeq
	}
	if su.kind == uop.STD {
		u.StoreID = g.storeSeq // the STD immediately follows its STA
	}
	return u
}

// materializeParamStore emits an outgoing-parameter store half; its address
// lies in the callee's (not yet pushed) frame.
func (g *Generator) materializeParamStore(su *staticUOp, f *frameState, callee *function) uop.UOp {
	u := g.materialize(su, f)
	if su.kind == uop.STA {
		calleeSP := f.sp - uint64(callee.frameSize)
		u.Addr = calleeSP + uint64(su.off)
	}
	return u
}

// materializeBranch resolves a conditional branch's direction and models the
// front-end predictor to set the Mispredicted flag.
func (g *Generator) materializeBranch(su *staticUOp, f *frameState) uop.UOp {
	u := uop.UOp{IP: su.ip, Kind: uop.Branch, Src1: su.src1}
	if su.loopBranch {
		u.Taken = f.iter+1 < f.iters
	} else {
		u.Taken = g.rng.Float64() < su.takenBias
	}
	pred := g.bpred.Predict(su.ip)
	u.Mispredicted = pred.Taken != u.Taken
	g.bpred.Update(su.ip, u.Taken)
	return u
}

// address synthesizes the effective address of a memory uop.
func (g *Generator) address(su *staticUOp, f *frameState) uint64 {
	p := &g.prog.prof
	switch su.mem {
	case mcFrame, mcParam:
		return f.sp + uint64(su.off)
	case mcGlobal:
		return globalBase + uint64(su.off)*wordSize
	case mcStream:
		ws := uint64(p.StreamWorkingSet)
		pos := g.streamPos[su.cursor]
		if su.kind == uop.Load {
			g.streamPos[su.cursor] = pos + uint64(p.StreamStride)
		}
		return streamBase + uint64(su.stream)*streamSpan + pos%ws
	case mcChase:
		lines := p.ChaseWorkingSet / 64
		return chaseBase + uint64(g.rng.Intn(lines))*64 + uint64(g.rng.Intn(8))*wordSize
	default:
		return 0
	}
}

// Collect generates the first n uops of a profile's trace.
func Collect(p Profile, n int) []uop.UOp {
	g := New(p)
	out := make([]uop.UOp, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
