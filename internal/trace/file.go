package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"loadsched/internal/uop"
)

// Binary trace-file format, for recording synthetic traces once and
// replaying them across tools (or importing externally produced uop
// streams):
//
//	header:  magic "LSUT" | u16 version | u16 reserved | u64 count
//	record:  u64 seq | u64 ip | u64 addr | u64 storeID
//	         u8 kind | u8 dst | u8 src1 | u8 src2 | u8 size | u8 flags
//	flags:   bit0 taken, bit1 mispredicted
//
// Records are fixed-size (38 bytes) and little-endian.

const (
	fileMagic   = "LSUT"
	fileVersion = 1
	recordSize  = 8*4 + 6
)

// WriteTrace serializes n uops from src to w.
func WriteTrace(w io.Writer, src Source, n int) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	copy(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := 0; i < n; i++ {
		u := src.Next()
		binary.LittleEndian.PutUint64(rec[0:8], uint64(u.Seq))
		binary.LittleEndian.PutUint64(rec[8:16], u.IP)
		binary.LittleEndian.PutUint64(rec[16:24], u.Addr)
		binary.LittleEndian.PutUint64(rec[24:32], uint64(u.StoreID))
		rec[32] = byte(u.Kind)
		rec[33] = byte(u.Dst)
		rec[34] = byte(u.Src1)
		rec[35] = byte(u.Src2)
		rec[36] = u.Size
		var flags byte
		if u.Taken {
			flags |= 1
		}
		if u.Mispredicted {
			flags |= 2
		}
		rec[37] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Source is the uop supplier interface (satisfied by *Generator and
// *Reader).
type Source interface {
	Next() uop.UOp
}

// WriteTraceFile records n uops of a profile's trace into path.
func WriteTraceFile(path string, p Profile, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteTrace(f, New(p), n); err != nil {
		return err
	}
	return f.Sync()
}

// Reader replays a recorded trace. Next wraps around at the end (renumbering
// Seq and StoreID monotonically) so the reader satisfies the engine's
// unbounded Source contract; Len reports the recorded length.
type Reader struct {
	uops []uop.UOp
	pos  int
	// wrap offsets keep Seq/StoreID strictly increasing across loops.
	seqBase, storeBase int64
	lastStoreID        int64
}

// NewReader parses a recorded trace from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[0:4]) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	const maxCount = 1 << 31
	if count == 0 || count > maxCount {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	rd := &Reader{uops: make([]uop.UOp, 0, count)}
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		u := uop.UOp{
			Seq:     int64(binary.LittleEndian.Uint64(rec[0:8])),
			IP:      binary.LittleEndian.Uint64(rec[8:16]),
			Addr:    binary.LittleEndian.Uint64(rec[16:24]),
			StoreID: int64(binary.LittleEndian.Uint64(rec[24:32])),
			Kind:    uop.Kind(rec[32]),
			Dst:     uop.Reg(rec[33]),
			Src1:    uop.Reg(rec[34]),
			Src2:    uop.Reg(rec[35]),
			Size:    rec[36],
		}
		u.Taken = rec[37]&1 != 0
		u.Mispredicted = rec[37]&2 != 0
		if int(u.Kind) >= uop.NumKinds {
			return nil, fmt.Errorf("trace: record %d has invalid kind %d", i, u.Kind)
		}
		rd.uops = append(rd.uops, u)
		if u.StoreID > rd.lastStoreID {
			rd.lastStoreID = u.StoreID
		}
	}
	return rd, nil
}

// ReadTraceFile parses a recorded trace from path.
func ReadTraceFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewReader(f)
}

// Len returns the number of recorded uops.
func (r *Reader) Len() int { return len(r.uops) }

// Next implements Source, wrapping around with renumbered Seq/StoreID.
func (r *Reader) Next() uop.UOp {
	if r.pos == len(r.uops) {
		r.pos = 0
		last := r.uops[len(r.uops)-1]
		r.seqBase += last.Seq + 1
		r.storeBase += r.lastStoreID
	}
	u := r.uops[r.pos]
	r.pos++
	u.Seq += r.seqBase
	if u.StoreID != 0 {
		u.StoreID += r.storeBase
	}
	return u
}
