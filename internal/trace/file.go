package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"loadsched/internal/uop"
)

// Binary trace-file format, for recording synthetic traces once and
// replaying them across tools (or importing externally produced uop
// streams). Both versions share the header:
//
//	header:  magic "LSUT" | u16 version | u16 reserved | u64 count
//
// Version 1 (legacy, still decodable) is a flat array of fixed-size
// little-endian records:
//
//	record:  u64 seq | u64 ip | u64 addr | u64 storeID
//	         u8 kind | u8 dst | u8 src1 | u8 src2 | u8 size | u8 flags
//	flags:   bit0 taken, bit1 mispredicted
//
// Version 2 (default) stores the stream as packed chunks (see packed.go) of
// up to ChunkUops uops, each independently decodable and integrity-checked:
//
//	chunk:   u32 n | u32 payloadLen | payload | u32 crc32c(payload)
//	payload: packedChunk marshal form (columns + varint delta streams)
//
// Chunking is what buys bounded-memory replay: StreamReader decodes one
// chunk at a time through recycled buffers, so replaying a file costs
// O(ChunkUops) memory regardless of count. The per-chunk CRC-32C
// (Castagnoli, matching the result store's framing) localizes corruption
// to the chunk that suffered it.
//
// Uop Seq values must be strictly increasing within a file — both readers
// reject violations, because wrap-around renumbering (and the engine's
// program order) depend on it.

const (
	fileMagic     = "LSUT"
	fileVersionV1 = 1
	fileVersionV2 = 2
	recordSize    = 8*4 + 6 // v1 record
	frameSize     = 8       // v2 chunk frame: u32 n | u32 payloadLen
)

var fileCRC = crc32.MakeTable(crc32.Castagnoli)

// maxChunkPayload bounds an n-uop chunk payload: six byte columns plus
// four delta streams of ≤10-byte varints plus bases and length prefixes.
func maxChunkPayload(n int) int { return 46*n + 128 }

func writeHeader(w io.Writer, version uint16, count uint64) error {
	var hdr [16]byte
	copy(hdr[0:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint64(hdr[8:16], count)
	_, err := w.Write(hdr[:])
	return err
}

// WriteTrace serializes n uops from src to w in the current (v2, chunked)
// format.
func WriteTrace(w io.Writer, src Source, n int) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, fileVersionV2, uint64(n)); err != nil {
		return err
	}
	var e chunkEncoder
	var payload []byte
	var frame [frameSize]byte
	var crc [4]byte
	for done := 0; done < n; {
		m := ChunkUops
		if n-done < m {
			m = n - done
		}
		e.begin()
		for i := 0; i < m; i++ {
			e.add(src.Next())
		}
		payload = e.seal().marshal(payload[:0])
		binary.LittleEndian.PutUint32(frame[0:4], uint32(m))
		binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, fileCRC))
		if _, err := bw.Write(frame[:]); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
		if _, err := bw.Write(crc[:]); err != nil {
			return err
		}
		done += m
	}
	return bw.Flush()
}

// WriteTraceV1 serializes n uops from src to w in the legacy flat-record
// format, for tools that predate v2.
func WriteTraceV1(w io.Writer, src Source, n int) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, fileVersionV1, uint64(n)); err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := 0; i < n; i++ {
		u := src.Next()
		binary.LittleEndian.PutUint64(rec[0:8], uint64(u.Seq))
		binary.LittleEndian.PutUint64(rec[8:16], u.IP)
		binary.LittleEndian.PutUint64(rec[16:24], u.Addr)
		binary.LittleEndian.PutUint64(rec[24:32], uint64(u.StoreID))
		rec[32] = byte(u.Kind)
		rec[33] = byte(u.Dst)
		rec[34] = byte(u.Src1)
		rec[35] = byte(u.Src2)
		rec[36] = u.Size
		var flags byte
		if u.Taken {
			flags |= 1
		}
		if u.Mispredicted {
			flags |= 2
		}
		rec[37] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Source is the uop supplier interface (satisfied by *Generator, *Reader,
// *StreamReader and *Cursor).
type Source interface {
	Next() uop.UOp
}

// WriteTraceFile records n uops of a profile's trace into path (v2 format).
func WriteTraceFile(path string, p Profile, n int) error {
	return writeTraceFileWith(path, p, n, WriteTrace)
}

// WriteTraceFileV1 is WriteTraceFile in the legacy v1 format.
func WriteTraceFileV1(path string, p Profile, n int) error {
	return writeTraceFileWith(path, p, n, WriteTraceV1)
}

func writeTraceFileWith(path string, p Profile, n int, write func(io.Writer, Source, int) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f, New(p), n); err != nil {
		return err
	}
	return f.Sync()
}

// Reader replays a recorded trace fully materialized in memory. Next wraps
// around at the end (renumbering Seq and StoreID monotonically) so the
// reader satisfies the engine's unbounded Source contract; Len reports the
// recorded length. For large files prefer StreamReader, which replays in
// constant memory.
type Reader struct {
	uops []uop.UOp
	pos  int
	// wrap offsets keep Seq/StoreID strictly increasing across loops.
	seqBase, storeBase int64
	lastStoreID        int64
}

func parseHeader(hdr [16]byte) (version uint16, count uint64, err error) {
	if string(hdr[0:4]) != fileMagic {
		return 0, 0, fmt.Errorf("trace: bad magic %q", hdr[0:4])
	}
	version = binary.LittleEndian.Uint16(hdr[4:6])
	if version != fileVersionV1 && version != fileVersionV2 {
		return 0, 0, fmt.Errorf("trace: unsupported version %d", version)
	}
	count = binary.LittleEndian.Uint64(hdr[8:16])
	const maxCount = 1 << 31
	if count == 0 || count > maxCount {
		return 0, 0, fmt.Errorf("trace: implausible record count %d", count)
	}
	return version, count, nil
}

// NewReader parses a recorded trace (either format version) from r.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	version, count, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	// The header count is still unverified here: preallocating it wholesale
	// would let a 16-byte file demand gigabytes. Seed a bounded capacity and
	// let append grow as records actually arrive.
	pre := count
	if pre > 1<<16 {
		pre = 1 << 16
	}
	rd := &Reader{uops: make([]uop.UOp, 0, pre)}
	add := func(u uop.UOp, i uint64) error {
		if int(u.Kind) >= uop.NumKinds {
			return fmt.Errorf("trace: record %d has invalid kind %d", i, u.Kind)
		}
		if len(rd.uops) > 0 && u.Seq <= rd.uops[len(rd.uops)-1].Seq {
			return fmt.Errorf("trace: record %d breaks Seq monotonicity (%d after %d)",
				i, u.Seq, rd.uops[len(rd.uops)-1].Seq)
		}
		rd.uops = append(rd.uops, u)
		if u.StoreID > rd.lastStoreID {
			rd.lastStoreID = u.StoreID
		}
		return nil
	}
	if version == fileVersionV1 {
		var rec [recordSize]byte
		for i := uint64(0); i < count; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
			}
			if err := add(decodeV1Record(rec), i); err != nil {
				return nil, err
			}
		}
		return rd, nil
	}
	var payload []byte
	var c packedChunk
	var v ChunkView
	for total := uint64(0); total < count; {
		n, err := readChunkFrame(br, &payload, &c, &v, count-total)
		if err != nil {
			return nil, fmt.Errorf("trace: chunk at uop %d: %w", total, err)
		}
		for i := 0; i < n; i++ {
			if err := add(v.UOp(i), total+uint64(i)); err != nil {
				return nil, err
			}
		}
		total += uint64(n)
	}
	return rd, nil
}

func decodeV1Record(rec [recordSize]byte) uop.UOp {
	u := uop.UOp{
		Seq:     int64(binary.LittleEndian.Uint64(rec[0:8])),
		IP:      binary.LittleEndian.Uint64(rec[8:16]),
		Addr:    binary.LittleEndian.Uint64(rec[16:24]),
		StoreID: int64(binary.LittleEndian.Uint64(rec[24:32])),
		Kind:    uop.Kind(rec[32]),
		Dst:     uop.Reg(rec[33]),
		Src1:    uop.Reg(rec[34]),
		Src2:    uop.Reg(rec[35]),
		Size:    rec[36],
	}
	u.Taken = rec[37]&1 != 0
	u.Mispredicted = rec[37]&2 != 0
	return u
}

// readChunkFrame reads and verifies one v2 chunk (frame, payload, CRC) from
// r into the caller's recycled payload buffer, then unmarshals and decodes
// it through c into v. remaining caps the accepted population; the returned
// n is the chunk's uop count.
func readChunkFrame(r io.Reader, payload *[]byte, c *packedChunk, v *ChunkView, remaining uint64) (int, error) {
	var frame [frameSize]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return 0, fmt.Errorf("truncated frame: %w", err)
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	plen := binary.LittleEndian.Uint32(frame[4:8])
	if n == 0 || n > ChunkUops {
		return 0, fmt.Errorf("population %d out of range (1..%d)", n, ChunkUops)
	}
	if uint64(n) > remaining {
		return 0, fmt.Errorf("population %d exceeds the %d uops the header still promises", n, remaining)
	}
	if int(plen) > maxChunkPayload(int(n)) {
		return 0, fmt.Errorf("payload length %d implausible for %d uops", plen, n)
	}
	if cap(*payload) < int(plen)+4 {
		*payload = make([]byte, plen+4)
	}
	buf := (*payload)[:plen+4]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, fmt.Errorf("truncated payload: %w", err)
	}
	body, sum := buf[:plen], binary.LittleEndian.Uint32(buf[plen:])
	if got := crc32.Checksum(body, fileCRC); got != sum {
		return 0, fmt.Errorf("crc mismatch (stored %#x, computed %#x)", sum, got)
	}
	if err := unmarshalChunk(body, c, ChunkUops); err != nil {
		return 0, err
	}
	if c.n != int(n) {
		return 0, fmt.Errorf("frame population %d disagrees with payload population %d", n, c.n)
	}
	if err := c.decode(v); err != nil {
		return 0, err
	}
	return int(n), nil
}

// ReadTraceFile parses a recorded trace from path into memory.
func ReadTraceFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewReader(f)
}

// Len returns the number of recorded uops.
func (r *Reader) Len() int { return len(r.uops) }

// Next implements Source, wrapping around with renumbered Seq/StoreID.
func (r *Reader) Next() uop.UOp {
	if r.pos == len(r.uops) {
		r.pos = 0
		last := r.uops[len(r.uops)-1]
		r.seqBase += last.Seq + 1
		r.storeBase += r.lastStoreID
	}
	u := r.uops[r.pos]
	r.pos++
	u.Seq += r.seqBase
	if u.StoreID != 0 {
		u.StoreID += r.storeBase
	}
	return u
}

// StreamReader replays a recorded trace in constant memory: one decoded
// chunk is resident at a time, recycled through a single payload buffer
// and view, so replaying a billion-uop file costs the same RSS as a
// thousand-uop one. Construction validates the whole file — structure,
// CRCs, kinds, Seq monotonicity — in one bounded-memory pass, so Next
// (which has no error to return under the Source contract) can only fail
// on an I/O fault, which panics. Like Reader, Next wraps around at the end
// with renumbered Seq/StoreID. Not safe for concurrent use.
type StreamReader struct {
	rs        io.ReadSeeker
	br        *bufio.Reader // over rs; reset by rewind
	closer    io.Closer
	version   uint16
	count     int64
	dataStart int64

	// Recycled chunk ring: payload and pc back the current decoded view for
	// v2; v1 records are read straight into view's owned columns.
	payload []byte
	pc      packedChunk
	view    ChunkView
	viewPos int

	// Dependence side-car, rebuilt per recycled chunk during replay (never
	// during the open-time scan, which must not advance the analyzer). The
	// analyzer's register state carries across wraps — exactly like the
	// renamer's alias tables, a producer can reach back through a wrap —
	// while its store counter restarts with the raw IDs at each rewind.
	// deps is one recycled buffer, so side-car replay stays constant-RSS.
	an       depAnalyzer
	deps     []uop.Dep
	depBase  int64 // absolute store base for the current chunk's deltas
	depUops  int64 // uops whose side-car has been built (across wraps)
	depNanos int64 // cumulative side-car build time

	passUops           int64 // uops consumed from the file this pass
	seqBase, storeBase int64
	wrapSeq, wrapStore int64 // per-pass offsets, fixed by the open-time scan

	// Metadata collected by the open-time scan (for trace info).
	chunks       int64
	payloadBytes int64
}

// NewStreamReader opens a streaming replay over rs (either format
// version). rs must remain valid for the reader's lifetime.
func NewStreamReader(rs io.ReadSeeker) (*StreamReader, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(rs, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	version, count, err := parseHeader(hdr)
	if err != nil {
		return nil, err
	}
	r := &StreamReader{rs: rs, br: bufio.NewReader(rs), version: version, count: int64(count), dataStart: 16}
	if err := r.scan(); err != nil {
		return nil, err
	}
	if err := r.rewind(); err != nil {
		return nil, err
	}
	return r, nil
}

// StreamTraceFile opens path for constant-memory replay. Close releases
// the file handle.
func StreamTraceFile(path string) (*StreamReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewStreamReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// scan is the open-time validation pass: it streams every chunk through
// the recycled buffers exactly as replay will, verifying structure, CRCs,
// kinds and Seq monotonicity, and collects the wrap offsets (last Seq,
// max StoreID) and the metadata trace info reports.
func (r *StreamReader) scan() error {
	prevSeq := int64(math.MinInt64)
	var maxStore int64
	for total := int64(0); total < r.count; {
		n, err := r.readChunk(total)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			u := r.view.UOp(i)
			if int(u.Kind) >= uop.NumKinds {
				return fmt.Errorf("trace: record %d has invalid kind %d", total+int64(i), u.Kind)
			}
			if u.Seq <= prevSeq {
				return fmt.Errorf("trace: record %d breaks Seq monotonicity (%d after %d)",
					total+int64(i), u.Seq, prevSeq)
			}
			prevSeq = u.Seq
			if u.StoreID > maxStore {
				maxStore = u.StoreID
			}
		}
		total += int64(n)
		r.chunks++
	}
	r.wrapSeq, r.wrapStore = prevSeq+1, maxStore
	return nil
}

// readChunk loads the next chunk of the file into the recycled view. For
// v1 that is up to ChunkUops flat records; for v2 one framed chunk.
func (r *StreamReader) readChunk(consumed int64) (int, error) {
	if r.version == fileVersionV1 {
		n := r.count - consumed
		if n > ChunkUops {
			n = ChunkUops
		}
		us := r.view.grow(int(n))
		var rec [recordSize]byte
		for i := range us {
			if _, err := io.ReadFull(r.br, rec[:]); err != nil {
				return 0, fmt.Errorf("trace: truncated at record %d: %w", consumed+int64(i), err)
			}
			us[i] = decodeV1Record(rec)
		}
		r.payloadBytes += n * recordSize
		return int(n), nil
	}
	n, err := readChunkFrame(r.br, &r.payload, &r.pc, &r.view, uint64(r.count-consumed))
	if err != nil {
		return 0, fmt.Errorf("trace: chunk at uop %d: %w", consumed, err)
	}
	r.payloadBytes += int64(r.pc.packedBytes())
	return n, nil
}

// rewind seeks back to the first chunk and resets the pass state.
func (r *StreamReader) rewind() error {
	if _, err := r.rs.Seek(r.dataStart, io.SeekStart); err != nil {
		return fmt.Errorf("trace: rewind: %w", err)
	}
	r.br.Reset(r.rs)
	r.passUops, r.viewPos = 0, 0
	r.view.us = nil
	// The analyzer's state carries across the wrap untouched: nextChunk
	// renumbers each decoded chunk in place before the analyzer observes
	// it, so register reach-through and the absolute store watermark both
	// continue seamlessly into the next pass.
	return nil
}

// Uops reports the recorded length.
func (r *StreamReader) Uops() int64 { return r.count }

// Version reports the file's format version.
func (r *StreamReader) Version() int { return int(r.version) }

// Chunks reports how many v2 chunks the file holds (0 for v1).
func (r *StreamReader) Chunks() int64 {
	if r.version == fileVersionV1 {
		return 0
	}
	return r.chunks
}

// PayloadBytes reports the file's record payload size: v2 chunk payloads
// excluding framing, or v1 record bytes.
func (r *StreamReader) PayloadBytes() int64 { return r.payloadBytes }

// Close releases the underlying file when the reader owns one.
func (r *StreamReader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Next implements Source, wrapping around with renumbered Seq/StoreID. The
// file was fully validated at open; an I/O fault mid-replay panics.
func (r *StreamReader) Next() uop.UOp {
	if r.viewPos == len(r.view.us) {
		r.nextChunk()
	}
	u := r.view.us[r.viewPos]
	r.viewPos++
	return u
}

// NextBatch fills dst from the current decoded chunk (never crossing a
// chunk boundary) and reports how many uops it wrote.
func (r *StreamReader) NextBatch(dst []uop.UOp) int {
	if len(dst) == 0 {
		return 0
	}
	if r.viewPos == len(r.view.us) {
		r.nextChunk()
	}
	n := copy(dst, r.view.us[r.viewPos:])
	r.viewPos += n
	return n
}

func (r *StreamReader) nextChunk() {
	if r.passUops == r.count {
		if err := r.rewind(); err != nil {
			panic(err.Error())
		}
		r.seqBase += r.wrapSeq
		r.storeBase += r.wrapStore
	}
	n, err := r.readChunk(r.passUops)
	if err != nil {
		// The open-time scan proved the file well-formed; only an
		// environmental I/O failure lands here.
		panic(err.Error())
	}
	r.passUops += int64(n)
	r.viewPos = 0
	// Renumber the chunk in place, once per decode: readChunk decodes
	// fresh bytes into the reused view each pass, so folding the wrap
	// bases here lets every consumer path — including NextBatchRef's
	// zero-copy views — read final uops with no per-batch fixup. The
	// first pass (both bases zero) skips the loop.
	if r.seqBase != 0 || r.storeBase != 0 {
		for j := 0; j < n; j++ {
			r.view.us[j].Seq += r.seqBase
			if r.view.us[j].StoreID != 0 {
				r.view.us[j].StoreID += r.storeBase
			}
		}
	}
	// Build the chunk's side-car unconditionally: the analyzer must observe
	// every replayed uop to keep its carry correct whatever mix of Next and
	// NextBatchDeps the consumer uses, and emitting the links costs barely
	// more than observing. The uops are already renumbered, so the
	// analyzer's store watermark — and with it the returned base — is
	// absolute across wraps.
	if cap(r.deps) < n {
		r.deps = make([]uop.Dep, ChunkUops)
	}
	start := time.Now()
	r.depBase = r.an.buildInto(r.deps[:n], r.view.us[:n])
	r.depNanos += time.Since(start).Nanoseconds()
	r.depUops += int64(n)
}

// NextBatchDeps is NextBatch plus the chunk's dependence side-car (see
// Cursor.NextBatchDeps for the contract). The chunk is renumbered in place
// at decode time, so uops and deps are both straight copies.
func (r *StreamReader) NextBatchDeps(dst []uop.UOp, deps []uop.Dep) (int, int64) {
	if len(dst) == 0 {
		return 0, 0
	}
	if r.viewPos == len(r.view.us) {
		r.nextChunk()
	}
	n := copy(dst, r.view.us[r.viewPos:])
	if m := copy(deps, r.deps[r.viewPos:r.viewPos+n]); m < n {
		n = m
	}
	r.viewPos += n
	return n, r.depBase
}

// NextBatchRef returns the remainder of the current decoded chunk as direct
// views (see Cursor.NextBatchRef for the contract): the reader renumbers
// and side-car-builds each chunk once at decode, so the views are final and
// stay valid until the next call on this reader.
func (r *StreamReader) NextBatchRef() ([]uop.UOp, []uop.Dep, int64) {
	if r.viewPos == len(r.view.us) {
		r.nextChunk()
	}
	n := len(r.view.us)
	us, deps := r.view.us[r.viewPos:n], r.deps[r.viewPos:n]
	r.viewPos = n
	return us, deps, r.depBase
}

// SidecarBytes reports the cumulative side-car footprint built during
// replay so far (12 bytes per replayed uop; the resident buffer is one
// recycled chunk's worth).
func (r *StreamReader) SidecarBytes() int64 { return r.depUops * depSize }

// SidecarBuildNanos reports the cumulative time spent building side-cars
// during replay.
func (r *StreamReader) SidecarBuildNanos() int64 { return r.depNanos }

// FileInfo summarizes a trace file for `loadsched trace info`.
type FileInfo struct {
	Version      int
	Uops         int64
	Chunks       int64 // v2 only; 0 for v1
	PayloadBytes int64 // v2 chunk payloads / v1 record bytes, sans framing
	FileBytes    int64
	KindCounts   [uop.NumKinds]int64
	// SidecarBytes and SidecarBuildNanos describe the dependence side-car
	// a full replay of the file builds (one chunk resident at a time).
	SidecarBytes      int64
	SidecarBuildNanos int64
}

// BytesPerUop is the payload density — the headline the packed format is
// judged on.
func (fi *FileInfo) BytesPerUop() float64 {
	if fi.Uops == 0 {
		return 0
	}
	return float64(fi.PayloadBytes) / float64(fi.Uops)
}

// SidecarBytesPerUop is the side-car density a replay pays on top of the
// decoded view.
func (fi *FileInfo) SidecarBytesPerUop() float64 {
	if fi.Uops == 0 {
		return 0
	}
	return float64(fi.SidecarBytes) / float64(fi.Uops)
}

// InspectTraceFile validates path and reports its shape without ever
// materializing the trace (constant memory, like StreamReader).
func InspectTraceFile(path string) (*FileInfo, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	r, err := StreamTraceFile(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	fi := &FileInfo{
		Version:      r.Version(),
		Uops:         r.Uops(),
		Chunks:       r.Chunks(),
		PayloadBytes: r.PayloadBytes(),
		FileBytes:    st.Size(),
	}
	for i := int64(0); i < fi.Uops; i++ {
		fi.KindCounts[r.Next().Kind]++
	}
	fi.SidecarBytes = r.SidecarBytes()
	fi.SidecarBuildNanos = r.SidecarBuildNanos()
	return fi, nil
}
