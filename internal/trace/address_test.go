package trace

import (
	"testing"
	"testing/quick"

	"loadsched/internal/uop"
)

// TestParamStoresMatchParamLoads verifies the paper's "push/load parameter
// pairs" idiom end to end: outgoing parameter stores must be read by the
// callee's incoming parameter loads at exactly the same addresses, within a
// short dynamic distance.
func TestParamStoresMatchParamLoads(t *testing.T) {
	p := Profile{Name: "pm", Seed: 11, CallFrac: 0.6, MeanParams: 2}.withDefaults()
	us := Collect(p, 60000)
	// For every STA, look ahead a short distance for a load to that address.
	matched, stores := 0, 0
	byAddr := map[uint64]int64{}
	for _, u := range us {
		switch u.Kind {
		case uop.STA:
			stores++
			byAddr[u.Addr] = u.Seq
		case uop.Load:
			if s, ok := byAddr[u.Addr]; ok && u.Seq-s <= 96 {
				matched++
				delete(byAddr, u.Addr)
			}
		}
	}
	if stores == 0 {
		t.Fatal("no stores")
	}
	frac := float64(matched) / float64(stores)
	if frac < 0.2 {
		t.Fatalf("only %.1f%% of stores are reloaded nearby (need parameter/local traffic)", 100*frac)
	}
}

// TestStreamLoadsPeriodicPerIP verifies the property the hit-miss local
// predictor depends on: a stream load site's accesses advance by a fixed
// stride, so its cache-line crossings are periodic.
func TestStreamLoadsPeriodicPerIP(t *testing.T) {
	p := Profile{Name: "st", Seed: 3, StreamFrac: 0.6, ChaseFrac: 0, GlobalFrac: 0.1}.withDefaults()
	us := Collect(p, 80000)
	// Find the stream load site with the most dynamic instances.
	perIP := map[uint64][]uint64{}
	for _, u := range us {
		if u.Kind == uop.Load && u.Addr >= streamBase && u.Addr < chaseBase {
			perIP[u.IP] = append(perIP[u.IP], u.Addr)
		}
	}
	var best uint64
	for ip, addrs := range perIP {
		if len(addrs) > len(perIP[best]) {
			best = ip
		}
	}
	addrs := perIP[best]
	if len(addrs) < 32 {
		t.Skip("stream site recurred too rarely in this window")
	}
	strideCount := map[int64]int{}
	for i := 1; i < len(addrs); i++ {
		strideCount[int64(addrs[i])-int64(addrs[i-1])]++
	}
	// The dominant stride must cover almost all steps (wrap-around is the
	// exception).
	dominant := 0
	for _, c := range strideCount {
		if c > dominant {
			dominant = c
		}
	}
	if float64(dominant)/float64(len(addrs)-1) < 0.95 {
		t.Fatalf("stream site stride not stable: %v", strideCount)
	}
}

// TestFrameAddressDiscipline: frame accesses stay within the owning frame —
// below the stack base and above the deepest callee frame.
func TestFrameAddressDiscipline(t *testing.T) {
	p := testProfile()
	g := New(p)
	minSP := stackBase
	for i := 0; i < 60000; i++ {
		u := g.Next()
		if !u.HasMemAddr() || u.Addr > stackBase || u.Addr < stackBase-(1<<24) {
			continue // non-stack access
		}
		if u.Addr > stackBase {
			t.Fatalf("stack access above base: %v", u)
		}
		if u.Addr < minSP {
			minSP = u.Addr
		}
	}
	if stackBase-minSP > 1<<20 {
		t.Fatalf("stack grew unboundedly: %#x below base", stackBase-minSP)
	}
}

// TestAddressRegionsDisjoint: the four address-stream families live in
// disjoint regions, so collisions only arise from intended idioms.
func TestAddressRegionsDisjoint(t *testing.T) {
	regions := []struct {
		name   string
		lo, hi uint64
	}{
		{"globals", globalBase, globalBase + 1<<20},
		{"streams", streamBase, chaseBase},
		{"chase", chaseBase, chaseBase + 1<<28},
		{"stack", stackBase - 1<<24, stackBase},
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("regions %s and %s overlap", a.name, b.name)
			}
		}
	}
	us := Collect(testProfile(), 40000)
	for _, u := range us {
		if !u.HasMemAddr() {
			continue
		}
		in := false
		for _, r := range regions {
			if u.Addr >= r.lo && u.Addr < r.hi {
				in = true
				break
			}
		}
		if !in {
			t.Fatalf("address %#x outside every region (%v)", u.Addr, u)
		}
	}
}

// TestPropertySeedsIndependent: different seeds generate different streams
// while each remains internally deterministic.
func TestPropertySeedsIndependent(t *testing.T) {
	f := func(seed1, seed2 int64) bool {
		if seed1 == seed2 {
			return true
		}
		p1 := Profile{Name: "a", Seed: seed1}.withDefaults()
		p2 := Profile{Name: "a", Seed: seed2}.withDefaults()
		a1, a2 := Collect(p1, 300), Collect(p2, 300)
		same := 0
		for i := range a1 {
			if a1[i].IP == a2[i].IP {
				same++
			}
		}
		return same < len(a1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreIDsDense: store ids are dense and strictly increasing in program
// order — the engine's MOB indexes on that.
func TestStoreIDsDense(t *testing.T) {
	us := Collect(testProfile(), 50000)
	var last int64
	for _, u := range us {
		if u.Kind == uop.STA {
			if u.StoreID != last+1 {
				t.Fatalf("store id %d after %d", u.StoreID, last)
			}
			last = u.StoreID
		}
	}
	if last == 0 {
		t.Fatal("no stores")
	}
}

// TestGeneratorProfileEcho ensures Profile() reflects applied defaults.
func TestGeneratorProfileEcho(t *testing.T) {
	g := New(Profile{Name: "x", Seed: 1})
	p := g.Profile()
	if p.NumFuncs == 0 || p.LoadFrac == 0 {
		t.Fatal("Profile() should return the defaulted profile")
	}
}
