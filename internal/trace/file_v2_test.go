package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"loadsched/internal/uop"
)

// TestV1V2CrossDecode pins cross-version equivalence: the same stream
// written in both formats must replay identically through both readers,
// across wrap-around renumbering too.
func TestV1V2CrossDecode(t *testing.T) {
	p := Profile{Name: "xdec", Seed: 17}
	const n = ChunkUops + 700 // full chunk + short tail chunk
	var v1, v2 bytes.Buffer
	if err := WriteTraceV1(&v1, New(p), n); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&v2, New(p), n); err != nil {
		t.Fatal(err)
	}
	r1, err := NewReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("v1 reader: %v", err)
	}
	r2, err := NewReader(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatalf("v2 reader: %v", err)
	}
	if r1.Len() != n || r2.Len() != n {
		t.Fatalf("lengths %d/%d, want %d", r1.Len(), r2.Len(), n)
	}
	for i := 0; i < 5*n/2; i++ { // crosses two wraps
		a, b := r1.Next(), r2.Next()
		if a != b {
			t.Fatalf("uop %d: v1 %+v, v2 %+v", i, a, b)
		}
	}
}

// TestStreamReaderMatchesReader pins the constant-memory path to the
// in-RAM one for both format versions, including wrap renumbering.
func TestStreamReaderMatchesReader(t *testing.T) {
	p := Profile{Name: "stream-eq", Seed: 23}
	const n = 2*ChunkUops + 123
	for _, tc := range []struct {
		name  string
		write func(path string) error
	}{
		{"v2", func(path string) error { return WriteTraceFile(path, p, n) }},
		{"v1", func(path string) error { return WriteTraceFileV1(path, p, n) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.lsut")
			if err := tc.write(path); err != nil {
				t.Fatal(err)
			}
			rd, err := ReadTraceFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := StreamTraceFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sr.Close()
			if sr.Uops() != n {
				t.Fatalf("stream length %d, want %d", sr.Uops(), n)
			}
			for i := 0; i < 5*n/2; i++ {
				want, got := rd.Next(), sr.Next()
				if got != want {
					t.Fatalf("uop %d: stream %+v, reader %+v", i, got, want)
				}
			}
		})
	}
}

// TestStreamReaderNextBatch pins the stream reader's bulk path to its
// scalar path across chunk boundaries and a wrap.
func TestStreamReaderNextBatch(t *testing.T) {
	p := Profile{Name: "stream-batch", Seed: 29}
	const n = ChunkUops + 50
	path := filepath.Join(t.TempDir(), "t.lsut")
	if err := WriteTraceFile(path, p, n); err != nil {
		t.Fatal(err)
	}
	scalar, err := StreamTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer scalar.Close()
	bulk, err := StreamTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()
	total := 2*n + 7
	batch := make([]uop.UOp, 100)
	for consumed := 0; consumed < total; {
		m := bulk.NextBatch(batch)
		if m <= 0 {
			t.Fatalf("NextBatch returned %d", m)
		}
		for i := 0; i < m; i++ {
			want := scalar.Next()
			if batch[i] != want {
				t.Fatalf("uop %d: bulk %+v, scalar %+v", consumed+i, batch[i], want)
			}
		}
		consumed += m
	}
}

// TestV2RejectsCorruptCRC flips one payload byte of a valid v2 file; both
// readers must refuse the file and name the CRC.
func TestV2RejectsCorruptCRC(t *testing.T) {
	p := Profile{Name: "crc", Seed: 31}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(p), 600); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Header is 16 bytes, frame 8; corrupt a byte well inside the first
	// chunk's payload.
	data[16+8+40] ^= 0x01
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Error("NewReader accepted a corrupt-CRC file")
	}
	if _, err := NewStreamReader(bytes.NewReader(data)); err == nil {
		t.Error("NewStreamReader accepted a corrupt-CRC file")
	}
}

// TestV2RejectsTruncation cuts a valid v2 file at every structural
// boundary class; both readers must error, never hang or panic.
func TestV2RejectsTruncation(t *testing.T) {
	p := Profile{Name: "trunc2", Seed: 37}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, New(p), ChunkUops+100); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cuts := []int{15, 16, 20, 23, 100, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		short := data[:cut]
		if _, err := NewReader(bytes.NewReader(short)); err == nil {
			t.Errorf("NewReader accepted file truncated at %d", cut)
		}
		if _, err := NewStreamReader(bytes.NewReader(short)); err == nil {
			t.Errorf("NewStreamReader accepted file truncated at %d", cut)
		}
	}
}

// TestV2RejectsNonMonotonicSeq: both readers depend on strictly increasing
// Seq for wrap renumbering and reject files that violate it.
func TestV2RejectsNonMonotonicSeq(t *testing.T) {
	us := Collect(Profile{Name: "mono", Seed: 41}, 100)
	us[40].Seq = us[39].Seq // duplicate
	src := &sliceSource{us: us}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, src, len(us)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("NewReader accepted non-monotonic Seq")
	}
	if _, err := NewStreamReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("NewStreamReader accepted non-monotonic Seq")
	}
}

type sliceSource struct {
	us  []uop.UOp
	pos int
}

func (s *sliceSource) Next() uop.UOp {
	u := s.us[s.pos%len(s.us)]
	s.pos++
	return u
}

// TestInspectTraceFile pins the trace-info metadata: counts, chunking,
// and the packed density the format is judged on.
func TestInspectTraceFile(t *testing.T) {
	p := Profile{Name: "inspect", Seed: 43}
	const n = 2*ChunkUops + 10
	path := filepath.Join(t.TempDir(), "t.lsut")
	if err := WriteTraceFile(path, p, n); err != nil {
		t.Fatal(err)
	}
	fi, err := InspectTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Version != 2 || fi.Uops != n || fi.Chunks != 3 {
		t.Fatalf("version/uops/chunks = %d/%d/%d, want 2/%d/3", fi.Version, fi.Uops, fi.Chunks, n)
	}
	if bpu := fi.BytesPerUop(); bpu <= 0 || bpu > 16 {
		t.Fatalf("bytes/uop = %.2f, want (0, 16]", bpu)
	}
	var kinds int64
	for _, k := range fi.KindCounts {
		kinds += k
	}
	if kinds != n {
		t.Fatalf("kind counts sum to %d, want %d", kinds, n)
	}
	st, _ := os.Stat(path)
	if fi.FileBytes != st.Size() {
		t.Fatalf("FileBytes %d, stat %d", fi.FileBytes, st.Size())
	}
}

// TestStreamReplayConstantRSS is the bounded-memory regression test: a
// file-backed trace larger than the in-process sharing cap must replay
// through the stream reader with heap growth bounded by the chunk ring,
// not the trace length (2.4M uops ≈ 150 MB decoded would fail loudly).
func TestStreamReplayConstantRSS(t *testing.T) {
	p := Profile{Name: "rss", Seed: 47}
	total := 2*maxSharedUops + 5*ChunkUops/2 // > the shared cap, ragged tail
	path := filepath.Join(t.TempDir(), "big.lsut")
	if err := WriteTraceFile(path, p, total); err != nil {
		t.Fatal(err)
	}
	sr, err := StreamTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Uops() != int64(total) {
		t.Fatalf("stream length %d, want %d", sr.Uops(), total)
	}

	// Warm one chunk so lazily allocated ring buffers exist, then measure.
	for i := 0; i < ChunkUops; i++ {
		sr.Next()
	}
	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	before := heap()
	for i := ChunkUops; i < total+ChunkUops; i++ { // full pass + wrap
		sr.Next()
	}
	after := heap()
	grew := int64(after) - int64(before)
	// The live set is one payload buffer + one decoded view (~200 KiB);
	// allow generous slack for runtime noise, but an O(trace) replay
	// (tens of MB) must fail.
	const bound = 4 << 20
	if grew > bound {
		t.Fatalf("heap grew %d bytes replaying %d uops, want <= %d (O(chunk ring))", grew, total, bound)
	}
	t.Logf("heap growth over %d uops: %d bytes", total, grew)
}
