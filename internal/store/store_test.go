package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, payload := "machine|trace|uops=100", []byte(`{"Cycles":42}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 || c.Corrupt != 0 {
		t.Fatalf("counters = %+v; want 1 hit, 1 miss, 1 write, 0 corrupt", c)
	}
}

func TestEmptyPayloadAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.Put("k", nil); err != nil {
		t.Fatal(err)
	}
	// A different Store over the same directory sees the entry: persistence
	// is the whole point.
	s2, _ := Open(dir)
	got, ok := s2.Get("k")
	if !ok || len(got) != 0 {
		t.Fatalf("reopened Get = %q, %v; want empty payload, true", got, ok)
	}
}

func TestDistinctKeysDoNotAlias(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("key b hit key a's entry")
	}
	got, ok := s.Get("a")
	if !ok || string(got) != "payload-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
}

// corruptions enumerates the on-disk failure modes that must degrade to a
// miss (with the corrupt counter advanced and the bad file removed), never
// to wrong data or a crash.
func TestCorruptEntriesDegradeToMisses(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(data []byte) []byte
	}{
		{"truncated header", func(d []byte) []byte { return d[:headerSize-2] }},
		{"truncated payload", func(d []byte) []byte { return d[:len(d)-3] }},
		{"empty file", func(d []byte) []byte { return nil }},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"payload bit flip", func(d []byte) []byte { d[len(d)-1] ^= 0x40; return d }},
		{"key bit flip", func(d []byte) []byte { d[headerSize] ^= 0x01; return d }},
		{"length overflow", func(d []byte) []byte { d[8] = 0xff; return d }},
		{"trailing garbage", func(d []byte) []byte { return append(d, 0xaa) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			key := "the-key"
			if err := s.Put(key, []byte("the-payload")); err != nil {
				t.Fatal(err)
			}
			path := s.Path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupted entry served as a hit: %q", got)
			}
			c := s.Counters()
			if c.Corrupt != 1 || c.Misses != 1 {
				t.Fatalf("counters = %+v; want 1 corrupt, 1 miss", c)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupted entry not removed: stat err = %v", err)
			}
			// The degradation path ends in recompute-and-rewrite; prove the
			// slot is usable again.
			if err := s.Put(key, []byte("the-payload")); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || string(got) != "the-payload" {
				t.Fatalf("rewrite after corruption failed: %q, %v", got, ok)
			}
		})
	}
}

// A foreign complete entry at the right path (e.g. a hash collision, or a
// file copied between shards) must be rejected by the embedded-key check.
func TestForeignEntryRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put("other-key", []byte("other-payload")); err != nil {
		t.Fatal(err)
	}
	src, _ := os.ReadFile(s.Path("other-key"))
	if err := os.MkdirAll(filepath.Dir(s.Path("key")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path("key"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key"); ok {
		t.Fatalf("foreign entry served as a hit: %q", got)
	}
}

func TestConcurrentWriters(t *testing.T) {
	s, _ := Open(t.TempDir())
	const (
		writers = 8
		keys    = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				payload := []byte(fmt.Sprintf("payload-%d", k))
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put(%s): %v", key, err)
				}
				if got, ok := s.Get(key); ok && string(got) != string(payload) {
					t.Errorf("Get(%s) observed torn entry %q", key, got)
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		got, ok := s.Get(key)
		if !ok || string(got) != fmt.Sprintf("payload-%d", k) {
			t.Fatalf("after concurrent writers, Get(%s) = %q, %v", key, got, ok)
		}
	}
	if s.Counters().Corrupt != 0 {
		t.Fatalf("concurrent writers produced corrupt reads: %+v", s.Counters())
	}
}

func TestLenCountsEntries(t *testing.T) {
	s, _ := Open(t.TempDir())
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
}

func TestOpenRejectsUnusableDir(t *testing.T) {
	// A regular file where the store directory should be.
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open over a regular file succeeded")
	}
}
