// Package store is a content-addressed, disk-backed result store: the
// persistent second level under the runner's in-process memo cache.
//
// Keys are arbitrary canonical strings (the runner uses the machine
// description plus the trace-profile identity); the store addresses entries
// by the SHA-256 of the key, sharded into two-hex-character subdirectories.
// Each entry file carries a framed record — magic, key length, payload
// length, a CRC-32C over key and payload, then the key and payload bytes —
// so a truncated, corrupted or foreign file is always classified as a miss,
// never surfaced as data and never an error: the caller recomputes and
// rewrites. Writes go through a temp file plus rename, so concurrent
// writers on one key are safe (readers observe either no entry or one
// complete entry; last writer wins, and writers of the same key write the
// same bytes by the caller's purity contract).
//
// The store never invalidates by itself: a key is expected to name its
// value forever (the runner versions its keys, so schema changes orphan old
// entries as misses rather than misreading them).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
)

// magic identifies a store entry file and its framing version. Bump the
// trailing digit if the frame layout ever changes.
var magic = [4]byte{'L', 'S', 'R', '1'}

// headerSize is the fixed frame prefix: magic, key length, payload length,
// CRC-32C of key+payload.
const headerSize = 4 + 4 + 4 + 4

// castagnoli is the CRC-32C table (the polynomial with hardware support).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Counters is a point-in-time snapshot of a store's observability counters.
// Corrupt entries (bad magic, short file, checksum or key mismatch) are
// counted and also reported as misses: every Get is exactly a hit or a miss.
type Counters struct {
	// Hits and Misses classify Get calls.
	Hits, Misses int64
	// Corrupt counts Get calls that found an entry file but rejected it
	// (truncation, checksum mismatch, foreign key). Each is also a miss.
	Corrupt int64
	// Writes counts entries persisted; WriteErrors counts Put calls that
	// failed to persist (disk full, permissions).
	Writes, WriteErrors int64
}

// Store is a content-addressed blob store rooted at one directory. It is
// safe for concurrent use by any number of processes sharing the directory.
type Store struct {
	dir                                       string
	hits, misses, corrupt, writes, writeFails atomic.Int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Counters snapshots the store's observability counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits: s.hits.Load(), Misses: s.misses.Load(), Corrupt: s.corrupt.Load(),
		Writes: s.writes.Load(), WriteErrors: s.writeFails.Load(),
	}
}

// Path returns the entry file an entry for key lives at (whether or not it
// exists): <dir>/<hh>/<sha256-hex>, sharded on the first hash byte.
func (s *Store) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(s.dir, h[:2], h)
}

// Get returns the payload stored for key. Missing, truncated and corrupted
// entries all report ok=false — the caller recomputes; corrupted files are
// additionally removed (best effort) so the rewrite starts clean.
func (s *Store) Get(key string) (payload []byte, ok bool) {
	path := s.Path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		// Any unreadable entry is a miss; only a readable-but-invalid one
		// counts as corruption.
		s.misses.Add(1)
		return nil, false
	}
	payload, ok = decodeFrame(data, key)
	if !ok {
		s.corrupt.Add(1)
		s.misses.Add(1)
		os.Remove(path)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// Put persists payload under key, atomically replacing any previous entry.
func (s *Store) Put(key string, payload []byte) error {
	path := s.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.writeFails.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	// Write-to-temp plus rename keeps the entry atomic: concurrent readers
	// see the old complete entry or the new one, never a partial write.
	f, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		s.writeFails.Add(1)
		return fmt.Errorf("store: put: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(encodeFrame(key, payload))
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		s.writeFails.Add(1)
		return fmt.Errorf("store: put: %w", werr)
	}
	s.writes.Add(1)
	return nil
}

// Len walks the store and counts complete-looking entry files (any name
// except in-flight temp files). It is an ops/debugging helper, not a hot
// path.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && d.Name()[0] != '.' {
			n++
		}
		return nil
	})
	return n
}

// encodeFrame assembles one entry file's bytes.
func encodeFrame(key string, payload []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(payload))
	copy(buf[0:4], magic[:])
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], payload)
	crc := crc32.Checksum(buf[headerSize:], castagnoli)
	binary.BigEndian.PutUint32(buf[12:16], crc)
	return buf
}

// decodeFrame validates one entry file against the framing contract and the
// expected key, returning the payload. Every violation — short header,
// wrong magic, lengths that disagree with the file size, checksum mismatch,
// or an entry recorded for a different key (a hash collision or a misplaced
// file) — reports ok=false.
func decodeFrame(data []byte, key string) (payload []byte, ok bool) {
	if len(data) < headerSize || string(data[0:4]) != string(magic[:]) {
		return nil, false
	}
	keyLen := binary.BigEndian.Uint32(data[4:8])
	payLen := binary.BigEndian.Uint32(data[8:12])
	want := binary.BigEndian.Uint32(data[12:16])
	if uint64(headerSize)+uint64(keyLen)+uint64(payLen) != uint64(len(data)) {
		return nil, false
	}
	if crc32.Checksum(data[headerSize:], castagnoli) != want {
		return nil, false
	}
	if string(data[headerSize:headerSize+int(keyLen)]) != key {
		return nil, false
	}
	return data[headerSize+int(keyLen):], true
}
