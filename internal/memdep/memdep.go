// Package memdep implements the paper's first and primary contribution:
// speculative memory disambiguation through collision prediction (§2.1).
//
// Instead of predicting exact load–store pairs, a Collision History Table
// (CHT) predicts a single property of each load: will it collide with *any*
// older, not-yet-executed store in the scheduling window? Predicted
// non-colliding loads are advanced ahead of all stores; predicted colliding
// loads are held back. The exclusive variant additionally learns the minimal
// store-distance to the colliding store, letting a colliding load bypass the
// closer, unrelated stores.
//
// The package provides the four CHT organizations of Figure 2 (Full,
// Implicit-predictor, Tagless, Combined) and the six memory-ordering schemes
// of §3.1 (Traditional, Opportunistic, Postponing, Inclusive, Exclusive,
// Perfect) as a scheme enum the scheduler interprets.
package memdep

import "fmt"

// Scheme is one of the six memory reference ordering methods of §3.1.
type Scheme int

const (
	// Traditional: each load waits for all older STAs, but can advance ahead
	// of STDs; a wrong load–STD ordering adds a collision penalty. This is
	// the P6 baseline all speedups are measured against.
	Traditional Scheme = iota
	// Opportunistic: every load is assumed non-colliding and advanced as
	// much as possible; actual collisions wait for the colliding STA/STD and
	// add the collision penalty.
	Opportunistic
	// Postponing: loads wait for all older STAs (as Traditional) and a CHT
	// postpones predicted-colliding loads until all older STDs execute.
	Postponing
	// Inclusive: a CHT predicts colliding loads, which wait for ALL older
	// stores; predicted non-colliding loads advance ahead of everything.
	Inclusive
	// Exclusive: the CHT also predicts the collision distance; a predicted
	// colliding load waits only for stores at that distance or farther.
	Exclusive
	// Perfect: oracle disambiguation — loads wait exactly for the stores
	// they truly depend on.
	Perfect
)

var schemeNames = [...]string{
	Traditional:   "Traditional",
	Opportunistic: "Opportunistic",
	Postponing:    "Postponing",
	Inclusive:     "Inclusive",
	Exclusive:     "Exclusive",
	Perfect:       "Perfect",
}

// String names the scheme as the paper does.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Schemes lists all six ordering schemes in the paper's order.
func Schemes() []Scheme {
	return []Scheme{Traditional, Opportunistic, Postponing, Inclusive, Exclusive, Perfect}
}

// UsesCHT reports whether the scheme consults a collision predictor.
func (s Scheme) UsesCHT() bool {
	return s == Postponing || s == Inclusive || s == Exclusive
}

// NoDistance marks a prediction without usable distance information: the
// load must be treated as colliding with every older store.
const NoDistance = 0

// Prediction is a collision prediction for one load.
type Prediction struct {
	// Colliding predicts whether the load will collide with an older
	// in-flight store.
	Colliding bool
	// Distance is the predicted minimal store-distance to the colliding
	// store (1 = the closest older store). NoDistance means unknown: wait
	// for all older stores. Only exclusive predictors produce distances.
	Distance int
}

// Predictor is a collision history table. Lookup happens at rename; Record
// happens at load retire with the observed truth.
type Predictor interface {
	// Lookup predicts whether the load at ip collides.
	Lookup(ip uint64) Prediction
	// Record trains the table: collided is the load's actual status, and
	// distance the observed store-distance (NoDistance when not colliding).
	Record(ip uint64, collided bool, distance int)
	// Reset clears the table.
	Reset()
	// Name identifies the configuration for reports.
	Name() string
}

// Classification tallies dynamic loads into the taxonomy of Figure 1.
// NotConflicting + AC + ANC = all loads; the four predicted sub-buckets
// partition the conflicting loads.
type Classification struct {
	// Loads is the total number of classified dynamic loads.
	Loads uint64
	// NotConflicting loads had no older unresolved STA at schedule time.
	NotConflicting uint64
	// ANCPC / ANCPNC: actually-non-colliding, predicted colliding (lost
	// opportunity) / predicted non-colliding (correct).
	ANCPC, ANCPNC uint64
	// ACPC / ACPNC: actually-colliding, predicted colliding (correct) /
	// predicted non-colliding (full re-execution penalty).
	ACPC, ACPNC uint64
}

// AC returns all actually-colliding loads.
func (c *Classification) AC() uint64 { return c.ACPC + c.ACPNC }

// ANC returns all conflicting but non-colliding loads.
func (c *Classification) ANC() uint64 { return c.ANCPC + c.ANCPNC }

// Conflicting returns all loads with an unresolved older STA at schedule
// time.
func (c *Classification) Conflicting() uint64 { return c.AC() + c.ANC() }

// Add accumulates another classification.
func (c *Classification) Add(o Classification) {
	c.Loads += o.Loads
	c.NotConflicting += o.NotConflicting
	c.ANCPC += o.ANCPC
	c.ANCPNC += o.ANCPNC
	c.ACPC += o.ACPC
	c.ACPNC += o.ACPNC
}

// FracOfLoads returns n as a fraction of all classified loads.
func (c *Classification) FracOfLoads(n uint64) float64 {
	if c.Loads == 0 {
		return 0
	}
	return float64(n) / float64(c.Loads)
}

// FracOfConflicting returns n as a fraction of conflicting loads (the
// denominator of Figure 9).
func (c *Classification) FracOfConflicting(n uint64) float64 {
	d := c.Conflicting()
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
