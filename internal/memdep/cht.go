package memdep

import (
	"fmt"

	"loadsched/internal/predict"
)

// chtEntry is one way of a tagged CHT set.
type chtEntry struct {
	tag      uint64
	valid    bool
	lru      uint64
	counter  predict.SatCounter
	distance int
}

// tagTable is the shared set-associative, LRU-replaced table under the
// tagged CHT variants. It is indexed by load instruction-pointer bits, as
// the paper's tables are. The ways of all sets live in one flat backing
// slice (set s occupies entries[s*ways : (s+1)*ways]) so building a table is
// a single allocation and clearing it never regrows the heap. The backing
// slice is allocated lazily, on the first entry insertion: figure sweeps
// construct a predictor per job just to derive the machine description, and
// when the runner's memo cache or engine pool answers the job no machine is
// ever built from it — deferring the table (the dominant per-job
// allocation) makes such discarded predictors cost a few words.
type tagTable struct {
	entries []chtEntry
	numSets int
	ways    int
	tick    uint64
}

func newTagTable(entries, ways int) *tagTable {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic(fmt.Sprintf("memdep: bad table geometry entries=%d ways=%d", entries, ways))
	}
	numSets := entries / ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("memdep: set count %d not a power of two", numSets))
	}
	return &tagTable{numSets: numSets, ways: ways}
}

func (t *tagTable) index(ip uint64) (set, tag uint64) {
	v := ip >> 2 // uops are 4-byte aligned in the synthetic ISA
	return v % uint64(t.numSets), v / uint64(t.numSets)
}

// set returns the ways of one set as a sub-slice of the flat backing array.
func (t *tagTable) set(s uint64) []chtEntry {
	return t.entries[int(s)*t.ways : int(s+1)*t.ways]
}

// find returns the entry for ip or nil, refreshing LRU on touch. An
// untouched (never-allocated) table holds nothing.
func (t *tagTable) find(ip uint64, touch bool) *chtEntry {
	if t.entries == nil {
		return nil
	}
	set, tag := t.index(ip)
	ways := t.set(set)
	for i := range ways {
		e := &ways[i]
		if e.valid && e.tag == tag {
			if touch {
				t.tick++
				e.lru = t.tick
			}
			return e
		}
	}
	return nil
}

// allocate returns ip's entry, creating it (evicting LRU) if absent.
func (t *tagTable) allocate(ip uint64) *chtEntry {
	if e := t.find(ip, true); e != nil {
		return e
	}
	if t.entries == nil {
		t.entries = make([]chtEntry, t.numSets*t.ways)
	}
	set, tag := t.index(ip)
	ways := t.set(set)
	victim := 0
	for i := range ways {
		e := &ways[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < ways[victim].lru {
			victim = i
		}
	}
	t.tick++
	ways[victim] = chtEntry{tag: tag, valid: true, lru: t.tick}
	return &ways[victim]
}

// clear restores construction state in place, LRU clock included.
func (t *tagTable) clear() {
	clear(t.entries)
	t.tick = 0
}

// mergeDistance folds a newly observed collision distance into an entry,
// converging on the minimal safe distance as §2.1 describes.
func mergeDistance(cur, observed int) int {
	if observed == NoDistance {
		return cur
	}
	if cur == NoDistance || observed < cur {
		return observed
	}
	return cur
}

// FullCHT is the Full CHT of Figure 2: tagged, a saturating-counter
// collision predictor per entry, and optionally a collision distance. A new
// entry is allocated only when a load actually collides for the first time
// (the allocation policy §2.1 suggests), so the table holds colliding and
// formerly-colliding loads.
type FullCHT struct {
	table         *tagTable
	entries, ways int
	counterBits   uint
	trackDistance bool
}

// NewFullCHT builds a Full CHT. The paper's reference configuration is 2K
// entries, 4-way, 2-bit counters.
func NewFullCHT(entries, ways int, counterBits uint, trackDistance bool) *FullCHT {
	return &FullCHT{
		table: newTagTable(entries, ways), entries: entries, ways: ways,
		counterBits: counterBits, trackDistance: trackDistance,
	}
}

// Lookup implements Predictor. A load absent from the table is predicted
// non-colliding (the default for never-colliding loads).
func (c *FullCHT) Lookup(ip uint64) Prediction {
	e := c.table.find(ip, false)
	if e == nil {
		return Prediction{}
	}
	p := Prediction{Colliding: e.counter.Taken()}
	if p.Colliding && c.trackDistance {
		p.Distance = e.distance
	}
	return p
}

// Record implements Predictor: allocation only on an actual collision,
// counter training on every retire of a resident load.
func (c *FullCHT) Record(ip uint64, collided bool, distance int) {
	e := c.table.find(ip, true)
	if e == nil {
		if !collided {
			return
		}
		e = c.table.allocate(ip)
		e.counter = predict.NewSatCounter(c.counterBits)
	}
	e.counter.Train(collided)
	if collided && c.trackDistance {
		e.distance = mergeDistance(e.distance, distance)
	}
}

// Reset implements Predictor.
func (c *FullCHT) Reset() { c.table.clear() }

// Name implements Predictor.
func (c *FullCHT) Name() string { return fmt.Sprintf("full-%d", c.entries) }

// Describe canonically identifies a freshly built table for the simulation
// runner's memo keys: the construction parameters fully determine behavior.
func (c *FullCHT) Describe() string {
	return fmt.Sprintf("full(%d,%d,%d,%t)", c.entries, c.ways, c.counterBits, c.trackDistance)
}

// ImplicitCHT is the Implicit-predictor CHT: tag-only and sticky. Presence
// in the table *is* the colliding prediction, so the predictor costs zero
// state bits beyond the tags. Once a load collides it stays predicted
// colliding until its entry is replaced (or the table is cyclically cleared,
// the [Chry98] remedy available through ClearInterval).
type ImplicitCHT struct {
	table         *tagTable
	entries, ways int
	trackDistance bool

	// ClearInterval, when positive, clears the whole table every that many
	// Record calls, letting loads whose behavior changed become
	// non-colliding again.
	ClearInterval int
	records       int
}

// NewImplicitCHT builds a tag-only sticky CHT.
func NewImplicitCHT(entries, ways int, trackDistance bool) *ImplicitCHT {
	return &ImplicitCHT{table: newTagTable(entries, ways), entries: entries, ways: ways, trackDistance: trackDistance}
}

// Lookup implements Predictor: a tag match means colliding.
func (c *ImplicitCHT) Lookup(ip uint64) Prediction {
	e := c.table.find(ip, false)
	if e == nil {
		return Prediction{}
	}
	p := Prediction{Colliding: true}
	if c.trackDistance {
		p.Distance = e.distance
	}
	return p
}

// Record implements Predictor: colliding loads allocate (sticky); retires of
// non-colliding loads leave the table untouched.
func (c *ImplicitCHT) Record(ip uint64, collided bool, distance int) {
	c.records++
	if c.ClearInterval > 0 && c.records%c.ClearInterval == 0 {
		c.table.clear()
	}
	if !collided {
		return
	}
	e := c.table.allocate(ip)
	if c.trackDistance {
		e.distance = mergeDistance(e.distance, distance)
	}
}

// Reset implements Predictor.
func (c *ImplicitCHT) Reset() { c.table.clear(); c.records = 0 }

// Name implements Predictor.
func (c *ImplicitCHT) Name() string { return fmt.Sprintf("tagged-%d", c.entries) }

// Describe canonically identifies a freshly built table for memo keys.
func (c *ImplicitCHT) Describe() string {
	return fmt.Sprintf("tagged(%d,%d,%t,clear=%d)", c.entries, c.ways, c.trackDistance, c.ClearInterval)
}

// TaglessCHT is the tagless, direct-mapped CHT: an array of 1-bit counters
// indexed by instruction-pointer bits. Its tiny entries buy many entries but
// suffer aliasing between loads that share an index.
type TaglessCHT struct {
	counters      []predict.SatCounter
	distances     []int
	entries       int
	counterBits   uint
	trackDistance bool
}

// NewTaglessCHT builds a tagless CHT with the given (power-of-two) entry
// count; the paper sweeps 2K–32K 1-bit entries. Like the tagged tables,
// the counter arrays materialize on first use, so predictors built only to
// describe a memoized job cost a few words.
func NewTaglessCHT(entries int, counterBits uint, trackDistance bool) *TaglessCHT {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("memdep: tagless entries %d not a power of two", entries))
	}
	return &TaglessCHT{entries: entries, counterBits: counterBits, trackDistance: trackDistance}
}

func (c *TaglessCHT) index(ip uint64) uint64 { return (ip >> 2) % uint64(c.entries) }

// ensure materializes the counter arrays at construction state.
func (c *TaglessCHT) ensure() {
	if c.counters != nil {
		return
	}
	c.counters = make([]predict.SatCounter, c.entries)
	c.distances = make([]int, c.entries)
	init := predict.NewSatCounter(c.counterBits)
	for i := range c.counters {
		c.counters[i] = init
	}
}

// Lookup implements Predictor.
func (c *TaglessCHT) Lookup(ip uint64) Prediction {
	c.ensure()
	i := c.index(ip)
	p := Prediction{Colliding: c.counters[i].Taken()}
	if p.Colliding && c.trackDistance {
		p.Distance = c.distances[i]
	}
	return p
}

// Record implements Predictor.
func (c *TaglessCHT) Record(ip uint64, collided bool, distance int) {
	c.ensure()
	i := c.index(ip)
	c.counters[i].Train(collided)
	if collided && c.trackDistance {
		c.distances[i] = mergeDistance(c.distances[i], distance)
	}
}

// Reset implements Predictor. The arrays, once materialized, are
// reinitialized in place, so a reset table is reusable without regrowing
// the heap; an untouched table stays unmaterialized.
func (c *TaglessCHT) Reset() {
	if c.counters == nil {
		return
	}
	init := predict.NewSatCounter(c.counterBits)
	for i := range c.counters {
		c.counters[i] = init
	}
	clear(c.distances)
}

// Name implements Predictor.
func (c *TaglessCHT) Name() string { return fmt.Sprintf("tagless-%d", c.entries) }

// Describe canonically identifies a freshly built table for memo keys.
func (c *TaglessCHT) Describe() string {
	return fmt.Sprintf("tagless(%d,%d,%t)", c.entries, c.counterBits, c.trackDistance)
}

// CombinedCHT couples an Implicit-predictor CHT with a Tagless CHT ("best of
// both worlds", §2.1): a load is predicted non-colliding only when there is
// no tag match AND the tagless state is non-colliding. This maximizes AC-PC
// at the cost of more ANC-PC.
type CombinedCHT struct {
	tagged  *ImplicitCHT
	tagless *TaglessCHT
}

// NewCombinedCHT builds the combination; the paper pairs the swept
// tagged-only sizes with a fixed 4K-entry tagless table.
func NewCombinedCHT(taggedEntries, ways, taglessEntries int, trackDistance bool) *CombinedCHT {
	return &CombinedCHT{
		tagged:  NewImplicitCHT(taggedEntries, ways, trackDistance),
		tagless: NewTaglessCHT(taglessEntries, 1, trackDistance),
	}
}

// Lookup implements Predictor.
func (c *CombinedCHT) Lookup(ip uint64) Prediction {
	pt := c.tagged.Lookup(ip)
	if pt.Colliding {
		return pt
	}
	return c.tagless.Lookup(ip)
}

// Record implements Predictor.
func (c *CombinedCHT) Record(ip uint64, collided bool, distance int) {
	c.tagged.Record(ip, collided, distance)
	c.tagless.Record(ip, collided, distance)
}

// Reset implements Predictor.
func (c *CombinedCHT) Reset() { c.tagged.Reset(); c.tagless.Reset() }

// Name implements Predictor.
func (c *CombinedCHT) Name() string { return fmt.Sprintf("combined-%d", c.tagged.entries) }

// Describe canonically identifies a freshly built table for memo keys.
func (c *CombinedCHT) Describe() string {
	return "combined(" + c.tagged.Describe() + "," + c.tagless.Describe() + ")"
}

// AlwaysColliding predicts every load colliding; with the Inclusive scheme
// it degenerates to waiting for all stores, a useful lower-bound baseline.
type AlwaysColliding struct{}

// Lookup implements Predictor.
func (AlwaysColliding) Lookup(uint64) Prediction { return Prediction{Colliding: true} }

// Record implements Predictor.
func (AlwaysColliding) Record(uint64, bool, int) {}

// Reset implements Predictor.
func (AlwaysColliding) Reset() {}

// Name implements Predictor.
func (AlwaysColliding) Name() string { return "always-colliding" }

// Describe canonically identifies the predictor for memo keys.
func (AlwaysColliding) Describe() string { return "always-colliding" }

// NeverColliding predicts every load non-colliding; with the Inclusive
// scheme it reproduces the Opportunistic scheme.
type NeverColliding struct{}

// Lookup implements Predictor.
func (NeverColliding) Lookup(uint64) Prediction { return Prediction{} }

// Record implements Predictor.
func (NeverColliding) Record(uint64, bool, int) {}

// Reset implements Predictor.
func (NeverColliding) Reset() {}

// Name implements Predictor.
func (NeverColliding) Name() string { return "never-colliding" }

// Describe canonically identifies the predictor for memo keys.
func (NeverColliding) Describe() string { return "never-colliding" }
