package memdep

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSchemeString(t *testing.T) {
	want := map[Scheme]string{
		Traditional:   "Traditional",
		Opportunistic: "Opportunistic",
		Postponing:    "Postponing",
		Inclusive:     "Inclusive",
		Exclusive:     "Exclusive",
		Perfect:       "Perfect",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q want %q", s, s.String(), w)
		}
	}
	if len(Schemes()) != 6 {
		t.Fatal("paper defines six ordering schemes")
	}
}

func TestSchemeUsesCHT(t *testing.T) {
	for _, s := range []Scheme{Postponing, Inclusive, Exclusive} {
		if !s.UsesCHT() {
			t.Errorf("%v should use a CHT", s)
		}
	}
	for _, s := range []Scheme{Traditional, Opportunistic, Perfect} {
		if s.UsesCHT() {
			t.Errorf("%v should not use a CHT", s)
		}
	}
}

func allPredictors() map[string]Predictor {
	return map[string]Predictor{
		"full":     NewFullCHT(256, 4, 2, true),
		"implicit": NewImplicitCHT(256, 4, true),
		"tagless":  NewTaglessCHT(1024, 1, true),
		"combined": NewCombinedCHT(256, 4, 1024, true),
	}
}

func TestDefaultPredictionNonColliding(t *testing.T) {
	for name, p := range allPredictors() {
		if p.Lookup(0x400100).Colliding {
			t.Errorf("%s: empty table must predict non-colliding", name)
		}
	}
}

func TestLearnCollidingLoad(t *testing.T) {
	for name, p := range allPredictors() {
		p.Record(0x400100, true, 3)
		p.Record(0x400100, true, 3)
		got := p.Lookup(0x400100)
		if !got.Colliding {
			t.Errorf("%s: load that collided twice must be predicted colliding", name)
		}
		if got.Distance != 3 {
			t.Errorf("%s: distance = %d want 3", name, got.Distance)
		}
	}
}

func TestDistanceConvergesToMinimum(t *testing.T) {
	for name, p := range allPredictors() {
		p.Record(0x400100, true, 9)
		p.Record(0x400100, true, 4)
		p.Record(0x400100, true, 7)
		if d := p.Lookup(0x400100).Distance; d != 4 {
			t.Errorf("%s: distance = %d, want minimum 4", name, d)
		}
	}
}

func TestFullCHTAllocatesOnlyOnCollision(t *testing.T) {
	c := NewFullCHT(256, 4, 2, false)
	for i := 0; i < 100; i++ {
		c.Record(uint64(0x400000+i*4), false, NoDistance)
	}
	// The table must still be empty: a colliding load maps to an empty way.
	if c.table.find(0x400000, false) != nil {
		t.Fatal("non-colliding retires must not allocate entries")
	}
}

func TestFullCHTForgetsChangedBehavior(t *testing.T) {
	// The Full CHT's counter lets a load change from colliding back to
	// non-colliding — the property the paper credits it for (fewest ANC-PC).
	c := NewFullCHT(256, 4, 2, false)
	ip := uint64(0x400100)
	for i := 0; i < 4; i++ {
		c.Record(ip, true, 1)
	}
	if !c.Lookup(ip).Colliding {
		t.Fatal("should predict colliding after collisions")
	}
	for i := 0; i < 4; i++ {
		c.Record(ip, false, NoDistance)
	}
	if c.Lookup(ip).Colliding {
		t.Fatal("2-bit counter should unlearn after repeated non-collisions")
	}
}

func TestImplicitCHTIsSticky(t *testing.T) {
	c := NewImplicitCHT(256, 4, false)
	ip := uint64(0x400100)
	c.Record(ip, true, 1)
	for i := 0; i < 100; i++ {
		c.Record(ip, false, NoDistance)
	}
	if !c.Lookup(ip).Colliding {
		t.Fatal("tag-only predictor must stay colliding (sticky)")
	}
}

func TestImplicitCHTCyclicClearing(t *testing.T) {
	c := NewImplicitCHT(256, 4, false)
	c.ClearInterval = 10
	c.Record(0x400100, true, 1)
	for i := 0; i < 10; i++ {
		c.Record(0x400200, false, NoDistance)
	}
	if c.Lookup(0x400100).Colliding {
		t.Fatal("cyclic clearing should have dropped the sticky entry")
	}
}

func TestTaglessAliasing(t *testing.T) {
	c := NewTaglessCHT(16, 1, false)
	// Two IPs 16 entries apart share an index (ip>>2 mod 16).
	a, b := uint64(0x1000), uint64(0x1000+16*4)
	c.Record(a, true, 1)
	if !c.Lookup(b).Colliding {
		t.Fatal("aliased IP should see the colliding state (interference)")
	}
	big := NewTaglessCHT(1<<16, 1, false)
	big.Record(a, true, 1)
	if big.Lookup(b).Colliding {
		t.Fatal("a large table must separate these IPs")
	}
}

func TestCombinedSemantics(t *testing.T) {
	c := NewCombinedCHT(256, 4, 1024, false)
	ipTagged := uint64(0x400100)
	c.tagged.Record(ipTagged, true, NoDistance)
	if !c.Lookup(ipTagged).Colliding {
		t.Fatal("tag match must predict colliding")
	}
	ipTagless := uint64(0x800000)
	c.tagless.Record(ipTagless, true, NoDistance)
	if !c.Lookup(ipTagless).Colliding {
		t.Fatal("tagless colliding state must predict colliding")
	}
	// 0x900004 aliases with neither recorded IP in the 1024-entry tagless
	// table (index 1 vs 0) nor the tagged table.
	if c.Lookup(0x900004).Colliding {
		t.Fatal("no tag match and tagless non-colliding → non-colliding")
	}
}

func TestTableEviction(t *testing.T) {
	c := NewImplicitCHT(8, 2, false) // 4 sets × 2 ways
	// Fill one set (IPs congruent mod 4 after >>2) beyond capacity.
	ips := []uint64{0x10 << 2, 0x20 << 2, 0x30 << 2, 0x40 << 2}
	for _, ip := range ips[:3] {
		c.Record(ip<<2|0, true, 1) // shift to land in same set
	}
	_ = ips
	// Direct check with explicit same-set addresses: set = (ip>>2) % 4.
	a := uint64(4 * 4)  // index 4 → set 0
	b := uint64(8 * 4)  // index 8 → set 0
	d := uint64(12 * 4) // index 12 → set 0
	c2 := NewImplicitCHT(8, 2, false)
	c2.Record(a, true, 1)
	c2.Record(b, true, 1)
	c2.Record(a, true, 1) // refresh a
	c2.Record(d, true, 1) // evicts b (LRU)
	if !c2.Lookup(a).Colliding || !c2.Lookup(d).Colliding {
		t.Fatal("resident entries lost")
	}
	if c2.Lookup(b).Colliding {
		t.Fatal("LRU entry should have been evicted")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { newTagTable(100, 3) },
		func() { newTagTable(0, 1) },
		func() { NewTaglessCHT(1000, 1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on bad geometry")
				}
			}()
			f()
		}()
	}
}

func TestStaticPredictors(t *testing.T) {
	if !(AlwaysColliding{}).Lookup(1).Colliding {
		t.Fatal("AlwaysColliding")
	}
	if (NeverColliding{}).Lookup(1).Colliding {
		t.Fatal("NeverColliding")
	}
}

func TestReset(t *testing.T) {
	for name, p := range allPredictors() {
		p.Record(0x400100, true, 1)
		p.Reset()
		if p.Lookup(0x400100).Colliding {
			t.Errorf("%s: Reset did not clear the table", name)
		}
	}
}

func TestClassificationAccounting(t *testing.T) {
	c := Classification{Loads: 100, NotConflicting: 30, ANCPNC: 50, ANCPC: 8, ACPC: 9, ACPNC: 3}
	if c.AC() != 12 || c.ANC() != 58 || c.Conflicting() != 70 {
		t.Fatalf("derived counts wrong: AC=%d ANC=%d Conf=%d", c.AC(), c.ANC(), c.Conflicting())
	}
	if got := c.FracOfLoads(c.AC()); got != 0.12 {
		t.Fatalf("FracOfLoads = %v", got)
	}
	if got := c.FracOfConflicting(c.ACPC); got != 9.0/70.0 {
		t.Fatalf("FracOfConflicting = %v", got)
	}
	var sum Classification
	sum.Add(c)
	sum.Add(c)
	if sum.Loads != 200 || sum.AC() != 24 {
		t.Fatal("Add does not accumulate")
	}
	var empty Classification
	if empty.FracOfLoads(1) != 0 || empty.FracOfConflicting(1) != 0 {
		t.Fatal("empty classification fractions must be 0")
	}
}

func TestPropertyStickyNeverUnlearns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewImplicitCHT(1024, 4, false)
		collided := map[uint64]bool{}
		for i := 0; i < 300; i++ {
			ip := uint64(rng.Intn(64)) * 4
			co := rng.Intn(4) == 0
			c.Record(ip, co, 1)
			if co {
				collided[ip] = true
			}
		}
		// With a table far larger than the IP set there are no evictions, so
		// every load that ever collided must be predicted colliding.
		for ip := range collided {
			if !c.Lookup(ip).Colliding {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCombinedAtLeastAsCollidingAsParts(t *testing.T) {
	// The combined predictor's colliding set is the union of its parts: it
	// can never predict non-colliding when the tagged part has a match.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCombinedCHT(512, 4, 2048, false)
		for i := 0; i < 500; i++ {
			ip := uint64(rng.Intn(128)) * 4
			c.Record(ip, rng.Intn(3) == 0, 1)
		}
		for i := 0; i < 128; i++ {
			ip := uint64(i) * 4
			if c.tagged.Lookup(ip).Colliding && !c.Lookup(ip).Colliding {
				return false
			}
			if c.tagless.Lookup(ip).Colliding && !c.Lookup(ip).Colliding {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistanceNeverIncreases(t *testing.T) {
	// The exclusive predictor's safety rests on the distance converging to
	// the minimum observed: once learned, it must never move farther out.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, p := range []Predictor{
			NewFullCHT(256, 4, 2, true),
			NewImplicitCHT(256, 4, true),
		} {
			ip := uint64(0x400100)
			min := 1 << 30
			for i := 0; i < 100; i++ {
				d := 1 + rng.Intn(20)
				p.Record(ip, true, d)
				if d < min {
					min = d
				}
				if got := p.Lookup(ip).Distance; got != min {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFullCHTCounterHysteresis(t *testing.T) {
	// With a 2-bit counter, one contrary outcome never flips a saturated
	// prediction — the hysteresis that keeps the Full CHT stable.
	c := NewFullCHT(256, 4, 2, false)
	ip := uint64(0x400100)
	for i := 0; i < 4; i++ {
		c.Record(ip, true, 1)
	}
	c.Record(ip, false, NoDistance)
	if !c.Lookup(ip).Colliding {
		t.Fatal("one non-collision flipped a saturated counter")
	}
	c.Record(ip, false, NoDistance)
	c.Record(ip, false, NoDistance)
	if c.Lookup(ip).Colliding {
		t.Fatal("three non-collisions should unlearn")
	}
}
