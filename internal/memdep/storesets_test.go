package memdep

import "testing"

func TestStoreSetsDefaultsNonColliding(t *testing.T) {
	s := NewStoreSets(1024)
	if s.Lookup(0x400100).Colliding {
		t.Fatal("empty SSIT must predict non-colliding")
	}
}

func TestStoreSetsLearnsAndKeepsDistance(t *testing.T) {
	s := NewStoreSets(1024)
	s.Record(0x400100, true, 5)
	p := s.Lookup(0x400100)
	if !p.Colliding || p.Distance != 5 {
		t.Fatalf("prediction = %+v", p)
	}
	s.Record(0x400100, true, 2)
	s.Record(0x400100, true, 9)
	if d := s.Lookup(0x400100).Distance; d != 2 {
		t.Fatalf("distance = %d, want minimum 2", d)
	}
}

func TestStoreSetsSticky(t *testing.T) {
	s := NewStoreSets(1024)
	s.Record(0x400100, true, 1)
	for i := 0; i < 50; i++ {
		s.Record(0x400100, false, NoDistance)
	}
	if !s.Lookup(0x400100).Colliding {
		t.Fatal("store-set membership is sticky until cleared")
	}
	s.Reset()
	if s.Lookup(0x400100).Colliding {
		t.Fatal("Reset must clear sets")
	}
}

func TestStoreSetsDistinctSets(t *testing.T) {
	s := NewStoreSets(1024)
	s.Record(0x400100, true, 1)
	s.Record(0x400200, true, 1)
	if s.ssit[s.index(0x400100)] == s.ssit[s.index(0x400200)] {
		t.Fatal("independent loads should get distinct set IDs")
	}
}

func TestStoreSetsAliasing(t *testing.T) {
	s := NewStoreSets(16)
	a := uint64(0x40)     // index 16
	b := a + uint64(16*4) // same index mod 16
	s.Record(a, true, 3)
	if !s.Lookup(b).Colliding {
		t.Fatal("aliased IPs share an SSIT entry")
	}
}

func TestStoreSetsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStoreSets(100)
}
