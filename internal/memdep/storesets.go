package memdep

import "fmt"

// StoreSets is a simplified store-set predictor in the spirit of Chrysos and
// Emer [Chry98], included as the comparison baseline the paper positions its
// CHT against ("similar to [Chry98] but much more cost effective").
//
// Two tables: the SSIT (store-set ID table) maps instruction pointers — of
// both loads and stores — to a store-set ID; the LFST-like side here is
// reduced to what the paper's framework needs, a per-load colliding
// prediction plus a distance. A load whose IP maps to a valid store set is
// predicted colliding; its distance converges like the CHT's. Memory
// violations assign the load and its store to a common set (store-set
// merging is approximated by always steering toward the lower set ID, as in
// the original).
//
// Within this repository's simulator the scheduler consumes only the
// Predictor interface, so StoreSets plugs into the Inclusive/Exclusive
// schemes exactly like a CHT — which is also how the paper frames the
// comparison: same scheduling mechanism, different (and more expensive)
// prediction structure.
type StoreSets struct {
	ssit     []int32 // IP-indexed store-set IDs; -1 = none
	distance []int
	entries  int
	nextSet  int32
}

// NewStoreSets builds a store-set predictor with 2^k SSIT entries.
func NewStoreSets(entries int) *StoreSets {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("memdep: storesets entries %d not a power of two", entries))
	}
	s := &StoreSets{entries: entries}
	s.Reset()
	return s
}

func (s *StoreSets) index(ip uint64) int { return int((ip >> 2) % uint64(s.entries)) }

// Lookup implements Predictor.
func (s *StoreSets) Lookup(ip uint64) Prediction {
	i := s.index(ip)
	if s.ssit[i] < 0 {
		return Prediction{}
	}
	return Prediction{Colliding: true, Distance: s.distance[i]}
}

// Record implements Predictor. A collision allocates (or keeps) the load's
// store set; the observed distance converges to the minimum. Non-colliding
// retires leave the SSIT untouched (store sets are cleared cyclically in the
// original; callers can Reset periodically for the same effect).
func (s *StoreSets) Record(ip uint64, collided bool, distance int) {
	if !collided {
		return
	}
	i := s.index(ip)
	if s.ssit[i] < 0 {
		s.ssit[i] = s.nextSet
		s.nextSet++
	}
	s.distance[i] = mergeDistance(s.distance[i], distance)
}

// Reset implements Predictor. The tables are allocated once and
// reinitialized in place, so a reset predictor is reusable without regrowing
// the heap.
func (s *StoreSets) Reset() {
	if s.ssit == nil {
		s.ssit = make([]int32, s.entries)
		s.distance = make([]int, s.entries)
	}
	for i := range s.ssit {
		s.ssit[i] = -1
	}
	clear(s.distance)
	s.nextSet = 0
}

// Name implements Predictor.
func (s *StoreSets) Name() string { return fmt.Sprintf("storesets-%d", s.entries) }
