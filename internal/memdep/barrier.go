package memdep

import "fmt"

// StoreBarrier is the Store Barrier Cache of Hesson, LeBlanc and Ciavaglia
// [Hess95], the industrial prior art the paper positions the CHT against
// ("our mechanism is in a sense similar to [Hess95] yet more refined, since
// it deals with specific loads").
//
// The original predicts on the *store* side: each store that caused an
// ordering violation increments a saturating counter; when a store with a
// set counter is fetched, all following loads are delayed until the store
// executes. Because the barrier is keyed by store IP rather than load IP,
// one misbehaving store penalizes every load behind it — the imprecision
// the CHT removes.
//
// BarrierScheduler adapts the idea to this simulator's scheduling
// interface: the engine consults ShouldBarrier for each renamed store and,
// while any barriered store is in flight, holds all younger loads (see
// ooo.Config.Barrier).
type StoreBarrier struct {
	entries  int
	counters []uint8
	// Threshold is the counter value at which a store becomes a barrier.
	Threshold uint8
	// Max saturates the counter.
	Max uint8
}

// NewStoreBarrier builds a barrier cache with 2^k entries.
func NewStoreBarrier(entries int) *StoreBarrier {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("memdep: barrier entries %d not a power of two", entries))
	}
	return &StoreBarrier{
		entries:   entries,
		counters:  make([]uint8, entries),
		Threshold: 2,
		Max:       3,
	}
}

func (b *StoreBarrier) index(storeIP uint64) int { return int((storeIP >> 2) % uint64(b.entries)) }

// Describe canonically identifies a freshly built barrier cache for the
// simulation runner's memo keys.
func (b *StoreBarrier) Describe() string {
	return fmt.Sprintf("barrier(%d,%d,%d)", b.entries, b.Threshold, b.Max)
}

// ShouldBarrier reports whether the store at storeIP must act as a barrier
// (all following loads wait until it completes).
func (b *StoreBarrier) ShouldBarrier(storeIP uint64) bool {
	return b.counters[b.index(storeIP)] >= b.Threshold
}

// RecordViolation bumps the store's counter after it participated in an
// ordering violation.
func (b *StoreBarrier) RecordViolation(storeIP uint64) {
	i := b.index(storeIP)
	if b.counters[i] < b.Max {
		b.counters[i]++
	}
}

// RecordClean decays the store's counter after a violation-free execution,
// as [Hess95] does ("if the store did not cause a violation the counter is
// decremented").
func (b *StoreBarrier) RecordClean(storeIP uint64) {
	i := b.index(storeIP)
	if b.counters[i] > 0 {
		b.counters[i]--
	}
}

// Reset clears all counters.
func (b *StoreBarrier) Reset() {
	for i := range b.counters {
		b.counters[i] = 0
	}
}

// Name identifies the configuration.
func (b *StoreBarrier) Name() string { return fmt.Sprintf("store-barrier-%d", b.entries) }
