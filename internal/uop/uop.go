// Package uop defines the micro-operation (uop) model used throughout the
// simulator. It mirrors the P6-style decomposition described in the paper:
// most IA-32 instructions decode into one uop, while a store decodes into a
// STA (store address) uop and a STD (store data) uop, linked by a StoreID.
package uop

import "fmt"

// Kind identifies the execution class of a uop. The class determines which
// execution port can service it and its base latency.
type Kind uint8

const (
	// Nop occupies front-end bandwidth but no execution resources.
	Nop Kind = iota
	// IntALU is a single-cycle integer operation.
	IntALU
	// Complex is a multi-cycle integer operation (multiply, divide, shuffles).
	Complex
	// FPU is a floating-point operation.
	FPU
	// Branch is a conditional or unconditional control transfer.
	Branch
	// Load reads memory. Loads are the subject of the paper.
	Load
	// STA computes a store's address. A load may not bypass an unresolved STA
	// under the Traditional ordering scheme.
	STA
	// STD produces a store's data. A load that consumes the data of an
	// incomplete same-address STD collides and pays the collision penalty.
	STD

	numKinds
)

// NumKinds is the number of distinct uop kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	Nop:     "nop",
	IntALU:  "alu",
	Complex: "cplx",
	FPU:     "fp",
	Branch:  "br",
	Load:    "ld",
	STA:     "sta",
	STD:     "std",
}

// String returns the short mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the uop accesses the memory pipeline (Load or STA).
// STD uses a store-data port internally but does not address memory.
func (k Kind) IsMem() bool { return k == Load || k == STA }

// IsStorePart reports whether the uop is one half of a store.
func (k Kind) IsStorePart() bool { return k == STA || k == STD }

// Reg names an architectural register. Register 0 means "none": no source
// dependency or no destination. The synthetic ISA has a flat integer/FP
// register file; the renamer does not care about banks.
type Reg uint8

// NoReg is the absent-register sentinel.
const NoReg Reg = 0

// MaxArchRegs bounds the architectural register namespace of the synthetic
// traces (1..MaxArchRegs-1 usable, 0 reserved for NoReg).
const MaxArchRegs = 64

// UOp is one dynamic micro-operation in a trace. Fields that do not apply to
// a kind are zero (e.g. Addr for IntALU). The wide fields lead and the byte
// fields trail so the struct packs to 40 bytes — uops are copied on every
// fetch, trace replay and recording step, so the layout is hot.
type UOp struct {
	// Seq is the dynamic sequence number, dense from 0 within a trace.
	Seq int64
	// IP is the static instruction pointer of the uop. All history-based
	// predictors in the paper index on the load's IP, so recurrence of IPs
	// is what makes prediction possible.
	IP uint64
	// Addr is the effective memory address for Load and STA uops.
	Addr uint64
	// StoreID links the STA and STD halves of one store. Zero for non-store
	// uops; IDs are dense from 1 within a trace.
	StoreID int64
	// Kind is the execution class.
	Kind Kind
	// Dst is the destination register (NoReg if none).
	Dst Reg
	// Src1 and Src2 are source registers (NoReg if unused).
	Src1, Src2 Reg
	// Size is the access size in bytes for memory uops (default 4 or 8).
	Size uint8
	// Taken is the resolved direction for Branch uops.
	Taken bool
	// Mispredicted marks branches the front-end predictor got wrong; the
	// generator resolves this against the modelled front-end predictor so
	// the timing model can charge a refill bubble.
	Mispredicted bool
}

// Dep is one uop's entry in the static dependence side-car: the part of
// register renaming and store ordering that is a pure function of the uop
// stream, precomputed once per trace chunk and shared by every machine
// configuration replaying it (the same observation that makes Moshovos-style
// dependence prediction work — dependences are stable stream properties).
// All references are stream-position deltas, which are invariant under the
// Seq/StoreID renumbering replay sources apply when a finite trace wraps.
//
// The struct packs to 12 bytes; the side-car rides next to the 40-byte uop
// itself, so a chunk's side-car costs ~30% of its decoded view.
type Dep struct {
	// IPHash is HashIP(IP), precomputed so predictor-indexing policies can
	// fold a 64-bit IP without rehashing per configuration.
	IPHash uint32
	// Src1Back and Src2Back give each source register's producer as a
	// backward stream-position delta: the producer of SrcN is the uop
	// DepSrcNBack positions earlier in the stream. 0 means no in-trace
	// producer (NoReg source, or no prior writer); DepSaturated means the
	// true delta is DepSaturated or larger — callers must treat any delta
	// at or beyond their in-flight window as already-retired, which is
	// exact as long as the window holds fewer than DepSaturated uops.
	Src1Back, Src2Back uint16
	// LastStore gives, for loads, the youngest store preceding this uop as
	// a delta over the side-car batch's store base: the absolute id is
	// base + LastStore, where the base is reported alongside the batch. A
	// batch whose ids would overflow the delta reports an invalid base and
	// consumers fall back to their own store tracking.
	LastStore uint16
}

// DepSaturated is the saturation value of the Src1Back/Src2Back deltas.
const DepSaturated = 1<<16 - 1

// HashIP folds an instruction pointer to the 32-bit value carried in
// Dep.IPHash: the word-aligned IP (low bits dropped, as every history-based
// predictor in the paper does) with its high half XOR-folded in, so IPs
// beyond 4 GiB still contribute entropy.
func HashIP(ip uint64) uint32 {
	v := ip >> 2
	return uint32(v) ^ uint32(v>>32)
}

// HasMemAddr reports whether Addr is meaningful for this uop.
func (u *UOp) HasMemAddr() bool { return u.Kind == Load || u.Kind == STA }

// CacheLine returns the 64-byte cache line address of the uop's access.
func (u *UOp) CacheLine() uint64 { return u.Addr &^ 63 }

// String renders a compact single-line description, for debugging and logs.
func (u *UOp) String() string {
	switch u.Kind {
	case Load:
		return fmt.Sprintf("%d: %s r%d <- [%#x] @%#x", u.Seq, u.Kind, u.Dst, u.Addr, u.IP)
	case STA:
		return fmt.Sprintf("%d: %s#%d [%#x] @%#x", u.Seq, u.Kind, u.StoreID, u.Addr, u.IP)
	case STD:
		return fmt.Sprintf("%d: %s#%d r%d @%#x", u.Seq, u.Kind, u.StoreID, u.Src1, u.IP)
	case Branch:
		dir := "nt"
		if u.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%d: %s %s @%#x", u.Seq, u.Kind, dir, u.IP)
	default:
		return fmt.Sprintf("%d: %s r%d <- r%d,r%d @%#x", u.Seq, u.Kind, u.Dst, u.Src1, u.Src2, u.IP)
	}
}
