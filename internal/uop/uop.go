// Package uop defines the micro-operation (uop) model used throughout the
// simulator. It mirrors the P6-style decomposition described in the paper:
// most IA-32 instructions decode into one uop, while a store decodes into a
// STA (store address) uop and a STD (store data) uop, linked by a StoreID.
package uop

import "fmt"

// Kind identifies the execution class of a uop. The class determines which
// execution port can service it and its base latency.
type Kind uint8

const (
	// Nop occupies front-end bandwidth but no execution resources.
	Nop Kind = iota
	// IntALU is a single-cycle integer operation.
	IntALU
	// Complex is a multi-cycle integer operation (multiply, divide, shuffles).
	Complex
	// FPU is a floating-point operation.
	FPU
	// Branch is a conditional or unconditional control transfer.
	Branch
	// Load reads memory. Loads are the subject of the paper.
	Load
	// STA computes a store's address. A load may not bypass an unresolved STA
	// under the Traditional ordering scheme.
	STA
	// STD produces a store's data. A load that consumes the data of an
	// incomplete same-address STD collides and pays the collision penalty.
	STD

	numKinds
)

// NumKinds is the number of distinct uop kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	Nop:     "nop",
	IntALU:  "alu",
	Complex: "cplx",
	FPU:     "fp",
	Branch:  "br",
	Load:    "ld",
	STA:     "sta",
	STD:     "std",
}

// String returns the short mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMem reports whether the uop accesses the memory pipeline (Load or STA).
// STD uses a store-data port internally but does not address memory.
func (k Kind) IsMem() bool { return k == Load || k == STA }

// IsStorePart reports whether the uop is one half of a store.
func (k Kind) IsStorePart() bool { return k == STA || k == STD }

// Reg names an architectural register. Register 0 means "none": no source
// dependency or no destination. The synthetic ISA has a flat integer/FP
// register file; the renamer does not care about banks.
type Reg uint8

// NoReg is the absent-register sentinel.
const NoReg Reg = 0

// MaxArchRegs bounds the architectural register namespace of the synthetic
// traces (1..MaxArchRegs-1 usable, 0 reserved for NoReg).
const MaxArchRegs = 64

// UOp is one dynamic micro-operation in a trace. Fields that do not apply to
// a kind are zero (e.g. Addr for IntALU). The wide fields lead and the byte
// fields trail so the struct packs to 40 bytes — uops are copied on every
// fetch, trace replay and recording step, so the layout is hot.
type UOp struct {
	// Seq is the dynamic sequence number, dense from 0 within a trace.
	Seq int64
	// IP is the static instruction pointer of the uop. All history-based
	// predictors in the paper index on the load's IP, so recurrence of IPs
	// is what makes prediction possible.
	IP uint64
	// Addr is the effective memory address for Load and STA uops.
	Addr uint64
	// StoreID links the STA and STD halves of one store. Zero for non-store
	// uops; IDs are dense from 1 within a trace.
	StoreID int64
	// Kind is the execution class.
	Kind Kind
	// Dst is the destination register (NoReg if none).
	Dst Reg
	// Src1 and Src2 are source registers (NoReg if unused).
	Src1, Src2 Reg
	// Size is the access size in bytes for memory uops (default 4 or 8).
	Size uint8
	// Taken is the resolved direction for Branch uops.
	Taken bool
	// Mispredicted marks branches the front-end predictor got wrong; the
	// generator resolves this against the modelled front-end predictor so
	// the timing model can charge a refill bubble.
	Mispredicted bool
}

// HasMemAddr reports whether Addr is meaningful for this uop.
func (u *UOp) HasMemAddr() bool { return u.Kind == Load || u.Kind == STA }

// CacheLine returns the 64-byte cache line address of the uop's access.
func (u *UOp) CacheLine() uint64 { return u.Addr &^ 63 }

// String renders a compact single-line description, for debugging and logs.
func (u *UOp) String() string {
	switch u.Kind {
	case Load:
		return fmt.Sprintf("%d: %s r%d <- [%#x] @%#x", u.Seq, u.Kind, u.Dst, u.Addr, u.IP)
	case STA:
		return fmt.Sprintf("%d: %s#%d [%#x] @%#x", u.Seq, u.Kind, u.StoreID, u.Addr, u.IP)
	case STD:
		return fmt.Sprintf("%d: %s#%d r%d @%#x", u.Seq, u.Kind, u.StoreID, u.Src1, u.IP)
	case Branch:
		dir := "nt"
		if u.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%d: %s %s @%#x", u.Seq, u.Kind, dir, u.IP)
	default:
		return fmt.Sprintf("%d: %s r%d <- r%d,r%d @%#x", u.Seq, u.Kind, u.Dst, u.Src1, u.Src2, u.IP)
	}
}
