package uop

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Nop: "nop", IntALU: "alu", Complex: "cplx", FPU: "fp",
		Branch: "br", Load: "ld", STA: "sta", STD: "std",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q want %q", k, k.String(), w)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range kind = %q", got)
	}
}

func TestKindClasses(t *testing.T) {
	if !Load.IsMem() || !STA.IsMem() {
		t.Error("Load and STA address memory")
	}
	if STD.IsMem() || IntALU.IsMem() {
		t.Error("STD and ALU do not address memory")
	}
	if !STA.IsStorePart() || !STD.IsStorePart() {
		t.Error("STA/STD are store parts")
	}
	if Load.IsStorePart() {
		t.Error("Load is not a store part")
	}
}

func TestHasMemAddr(t *testing.T) {
	ld := UOp{Kind: Load, Addr: 0x1000}
	if !ld.HasMemAddr() {
		t.Error("load has a memory address")
	}
	std := UOp{Kind: STD}
	if std.HasMemAddr() {
		t.Error("STD has no address")
	}
}

func TestCacheLine(t *testing.T) {
	u := UOp{Kind: Load, Addr: 0x1234}
	if u.CacheLine() != 0x1200 {
		t.Fatalf("line = %#x", u.CacheLine())
	}
	u.Addr = 0x1240
	if u.CacheLine() != 0x1240 {
		t.Fatalf("aligned line = %#x", u.CacheLine())
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		u    UOp
		want string
	}{
		{UOp{Seq: 1, Kind: Load, Dst: 3, Addr: 0x10, IP: 0x400000}, "ld"},
		{UOp{Seq: 2, Kind: STA, StoreID: 7, Addr: 0x20}, "sta#7"},
		{UOp{Seq: 3, Kind: STD, StoreID: 7, Src1: 4}, "std#7"},
		{UOp{Seq: 4, Kind: Branch, Taken: true}, "br t"},
		{UOp{Seq: 5, Kind: Branch, Taken: false}, "br nt"},
		{UOp{Seq: 6, Kind: IntALU, Dst: 1, Src1: 2, Src2: 3}, "alu"},
	}
	for _, c := range cases {
		if got := c.u.String(); !strings.Contains(got, c.want) {
			t.Errorf("String() = %q, want substring %q", got, c.want)
		}
	}
}

func TestConstants(t *testing.T) {
	if NoReg != 0 {
		t.Error("NoReg must be the zero register")
	}
	if NumKinds != 8 {
		t.Errorf("NumKinds = %d", NumKinds)
	}
	if MaxArchRegs < 64 {
		t.Errorf("MaxArchRegs = %d too small for the synthetic ISA", MaxArchRegs)
	}
}
