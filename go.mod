module loadsched

go 1.22
