// Benchmark harness: one BenchmarkFigN per table/figure of the paper's
// evaluation — each run regenerates the figure's data on a reduced workload
// and reports the headline quantity as a custom metric — plus throughput
// microbenchmarks for the simulator's substrates.
//
//	go test -bench=Fig -benchmem            # the paper's figures
//	go test -bench=. -benchmem              # everything
package loadsched

import (
	"testing"

	"loadsched/internal/bankpred"
	"loadsched/internal/cache"
	"loadsched/internal/experiments"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/runner"
	"loadsched/internal/smt"
	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// benchOptions keeps the per-iteration cost of figure benchmarks bounded.
// The pool is isolated and cache-free so every iteration measures full
// simulation cost: on the shared process-wide cache, iterations after the
// first would be memo hits.
func benchOptions() experiments.Options {
	return experiments.Options{Uops: 30_000, Warmup: 8_000, TracesPerGroup: 2,
		Pool: runner.NewIsolated(0, nil)}
}

func BenchmarkFig5Classification(b *testing.B) {
	o := benchOptions()
	var ac float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5(o)
		var total memdep.Classification
		for _, r := range rows {
			total.Add(r.Class)
		}
		ac = total.FracOfLoads(total.AC())
	}
	b.ReportMetric(100*ac, "AC%")
}

func BenchmarkFig6WindowSweep(b *testing.B) {
	o := benchOptions()
	var growth float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6(o)
		first, last := rows[0].Class, rows[len(rows)-1].Class
		growth = last.FracOfLoads(last.AC()) - first.FracOfLoads(first.AC())
	}
	b.ReportMetric(100*growth, "AC-growth-pp")
}

func BenchmarkFig7OrderingSchemes(b *testing.B) {
	o := benchOptions()
	var perfect float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(o)
		perfect = r.Average(memdep.Perfect)
	}
	b.ReportMetric(perfect, "perfect-speedup")
}

func BenchmarkFig8MachineConfigs(b *testing.B) {
	o := experiments.Options{Uops: 20_000, Warmup: 6_000, TracesPerGroup: 1,
		Pool: runner.NewIsolated(0, nil)}
	var wide float64
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig8(o)
		for _, c := range cells {
			if c.Group == trace.GroupSysmarkNT &&
				c.Machine == experiments.Fig8Machines[2] && c.Scheme == memdep.Exclusive {
				wide = c.Speedup
			}
		}
	}
	b.ReportMetric(wide, "EU4MEM2-exclusive-speedup")
}

func BenchmarkFig9CHTSweep(b *testing.B) {
	o := benchOptions()
	var acpnc float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(o)
		for _, r := range rows {
			if r.Kind == "combined" && r.Entries == 2048 {
				acpnc = r.Class.FracOfLoads(r.Class.ACPNC)
			}
		}
	}
	b.ReportMetric(100*acpnc, "combined2K-ACPNC%")
}

func BenchmarkFig10HitMissStats(b *testing.B) {
	o := benchOptions()
	var caught float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig10(o)
		for _, r := range rows {
			if r.Group == trace.GroupSpecFP95 && r.Local.Misses() > 0 {
				caught = float64(r.Local.AMPM) / float64(r.Local.Misses())
			}
		}
	}
	b.ReportMetric(100*caught, "FP-caught%")
}

func BenchmarkFig11HitMissSpeedup(b *testing.B) {
	o := experiments.Options{Uops: 25_000, Warmup: 8_000, TracesPerGroup: 2,
		Pool: runner.NewIsolated(0, nil)}
	var perfect float64
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig11(o)
		for _, c := range cells {
			if c.Group == trace.GroupSpecInt95 && c.Predictor == "perfect" {
				perfect = c.Speedup
			}
		}
	}
	b.ReportMetric(perfect, "perfectHMP-speedup")
}

func BenchmarkFig12BankMetric(b *testing.B) {
	o := benchOptions()
	var m float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(o)
		for _, r := range rows {
			if r.Group == trace.GroupSpecInt95 && r.Predictor == "Addr" {
				m = r.Metric(5)
			}
		}
	}
	b.ReportMetric(m, "addr-metric-p5")
}

// BenchmarkTournament measures the policy-zoo race end-to-end: every
// participant (built-in + internal/policies zoo) over every trace group.
// The cache-free isolated pool makes each iteration pay full simulation
// cost, so zoo-policy slowdowns (a heavier PredictLevel, a slower training
// rule) gate through bench-compare like engine regressions do.
func BenchmarkTournament(b *testing.B) {
	o := benchOptions()
	var winner float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Tournament(o)
		for _, r := range rows {
			if r.Group == trace.GroupSysmarkNT && r.Rank == 1 {
				winner = r.Speedup
			}
		}
	}
	b.ReportMetric(winner, "NT-winner-speedup")
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationCHTKinds compares the four CHT organizations end-to-end
// under the Inclusive scheme.
func BenchmarkAblationCHTKinds(b *testing.B) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "pp")
	for _, tc := range []struct {
		name string
		make func() memdep.Predictor
	}{
		{"full2K", func() memdep.Predictor { return memdep.NewFullCHT(2048, 4, 2, true) }},
		{"tagless4K", func() memdep.Predictor { return memdep.NewTaglessCHT(4096, 1, false) }},
		{"tagged2K", func() memdep.Predictor { return memdep.NewImplicitCHT(2048, 4, false) }},
		{"combined2K", func() memdep.Predictor { return memdep.NewCombinedCHT(2048, 4, 4096, false) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig()
				cfg.Scheme = memdep.Inclusive
				cfg.CHT = tc.make()
				cfg.WarmupUops = 8_000
				ipc = ooo.NewEngine(cfg, trace.New(p)).Run(30_000).IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationCyclicClearing measures the [Chry98]-style cyclic
// clearing remedy for the sticky tagged-only CHT.
func BenchmarkAblationCyclicClearing(b *testing.B) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "pp")
	for _, tc := range []struct {
		name     string
		interval int
	}{{"never", 0}, {"every100K", 100_000}, {"every20K", 20_000}} {
		b.Run(tc.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cht := memdep.NewImplicitCHT(2048, 4, false)
				cht.ClearInterval = tc.interval
				cfg := ooo.DefaultConfig()
				cfg.Scheme = memdep.Inclusive
				cfg.CHT = cht
				cfg.WarmupUops = 8_000
				ipc = ooo.NewEngine(cfg, trace.New(p)).Run(30_000).IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationBankPolicies compares the memory-pipeline organizations
// of Figure 4 end-to-end (the paper evaluates bank prediction statistically;
// this is the integration DESIGN.md adds).
func BenchmarkAblationBankPolicies(b *testing.B) {
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "vortex")
	for _, tc := range []struct {
		name   string
		policy ooo.BankPolicy
		pred   func() bankpred.Predictor
	}{
		{"ideal", ooo.BankOff, nil},
		{"conventional", ooo.BankConventional, nil},
		{"predictive", ooo.BankPredictive, func() bankpred.Predictor { return bankpred.NewPredictorC() }},
		{"sliced", ooo.BankSliced, func() bankpred.Predictor { return bankpred.NewAddrBank(cache.DefaultBanking()) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := ooo.DefaultConfig()
				cfg.Scheme = memdep.Perfect
				cfg.BankPolicy = tc.policy
				cfg.Banking = cache.DefaultBanking()
				cfg.BankMispredictPenalty = 8
				if tc.pred != nil {
					cfg.BankPredictor = tc.pred()
				}
				cfg.WarmupUops = 8_000
				ipc = ooo.NewEngine(cfg, trace.New(p)).Run(30_000).IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// BenchmarkAblationSMTSwitching measures the §2.2 multithreading use case:
// thread-switch gating by miss detection vs the level predictor vs the
// oracle, on memory-bound threads.
func BenchmarkAblationSMTSwitching(b *testing.B) {
	threads := func(n int) []trace.Profile {
		g, _ := trace.GroupByName(trace.GroupTPC)
		var out []trace.Profile
		for i := 0; i < n; i++ {
			p := g.Traces[i%len(g.Traces)]
			p.Seed += int64(i) * 7919
			out = append(out, p)
		}
		return out
	}
	ecfg := ooo.DefaultConfig()
	ecfg.Scheme = memdep.Perfect
	for _, tc := range []struct {
		name           string
		level, perfect bool
	}{{"detect", false, false}, {"levelHMP", true, false}, {"oracle", false, true}} {
		b.Run(tc.name, func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				m := smt.New(smt.Config{
					Threads: threads(2), Engine: &ecfg,
					UseLevelHMP: tc.level, PerfectHMP: tc.perfect,
				})
				ipc = m.Run(40_000).IPC()
			}
			b.ReportMetric(ipc, "IPC")
		})
	}
}

// --- substrate microbenchmarks ---

func BenchmarkEngineThroughput(b *testing.B) {
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	cfg := ooo.DefaultConfig()
	cfg.Scheme = memdep.Exclusive
	cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	e := ooo.NewEngine(cfg, trace.New(p))
	b.ResetTimer()
	e.Run(b.N) // retire exactly b.N uops
	b.ReportMetric(float64(b.N), "uops")
}

func BenchmarkTraceGeneration(b *testing.B) {
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "gcc")
	g := trace.New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkEngineCycle measures the event-driven scheduling core on the
// baseline machine. Each iteration retires a fixed uop chunk on a primed
// engine, so the numbers are steady-state per-chunk costs even under count
// based -benchtime (the bench-json snapshot runs 2x). The simulated
// cycles-per-uop is reported so throughput changes stay attributable (same
// CPI + fewer ns = faster scheduler, not a different machine).
func BenchmarkEngineCycle(b *testing.B) {
	const chunk = 5_000
	p, _ := trace.TraceByName(trace.GroupSysmarkNT, "ex")
	cfg := ooo.DefaultConfig()
	e := ooo.NewEngine(cfg, trace.Replay(p))
	e.Run(chunk) // prime: fill the pipeline, caches and ready structures
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(chunk)
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Now())/float64(e.Retired()), "cycles/uop")
	b.ReportMetric(chunk, "uops/op")
}

// BenchmarkTraceReplay measures the shared-recording cursor next to
// BenchmarkTraceGeneration: the steady-state cost once the profile is
// materialized, which is what every simulation job after the first pays.
// Each iteration replays one fixed-size chunk from the start.
func BenchmarkTraceReplay(b *testing.B) {
	const chunk = 4_096
	p, _ := trace.TraceByName(trace.GroupSpecInt95, "gcc")
	c := trace.Replay(p)
	for i := 0; i < chunk; i++ {
		c.Next() // warm the shared recording past the growth steps
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := trace.Replay(p)
		for j := 0; j < chunk; j++ {
			c.Next()
		}
	}
	b.ReportMetric(chunk, "uops/op")
}

func BenchmarkCacheAccess(b *testing.B) {
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*64) % (1 << 20))
	}
}

func BenchmarkCHTLookup(b *testing.B) {
	cht := memdep.NewFullCHT(2048, 4, 2, true)
	for i := 0; i < 4096; i++ {
		cht.Record(uint64(i*4), i%7 == 0, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cht.Lookup(uint64(i%4096) * 4)
	}
}

func BenchmarkHMPLocalPredict(b *testing.B) {
	p := hitmiss.NewLocal()
	for i := 0; i < 4096; i++ {
		p.Update(uint64(i*4), 0, 0, i%16 != 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.PredictHit(uint64(i%4096)*4, 0, 0)
	}
}

func BenchmarkBankPredictorC(b *testing.B) {
	p := bankpred.NewPredictorC()
	for i := 0; i < 4096; i++ {
		p.Update(uint64(i*4), i%2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(i%4096) * 4)
	}
}

// BenchmarkFacadeRun measures the facade in repeated use: the first
// iteration simulates, the rest hit the process-wide memoization cache, so
// the steady-state ns/op is the cache-lookup path the facade now ships with.
func BenchmarkFacadeRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Workload{Uops: 20_000, Warmup: 5_000},
			Machine{Scheme: Inclusive, HMP: HMPLocal})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerMultiFigure measures the tentpole win end-to-end: Figures
// 5–8 back to back, the workload of `loadsched all`. "serial" is the
// pre-runner behavior (one worker, no memoization — every job simulates).
// "parallel" uses all cores and a fresh per-iteration cache, so the
// Traditional baseline shared by the four figures is simulated once; on a
// single core the cache alone wins, on ≥4 cores the pool multiplies it.
func BenchmarkRunnerMultiFigure(b *testing.B) {
	figures := func(o experiments.Options) {
		experiments.Fig5(o)
		experiments.Fig6(o)
		experiments.Fig7(o)
		experiments.Fig8(o)
	}
	base := experiments.Options{Uops: 20_000, Warmup: 5_000, TracesPerGroup: 2}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := base
			o.Pool = runner.NewIsolated(1, nil)
			figures(o)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := base
			o.Pool = runner.NewIsolated(0, runner.NewCache())
			figures(o)
		}
	})
}

// guard against dead-code elimination of uop helpers in benches above.
var _ = uop.Load
