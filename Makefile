# Development targets. `make verify` is the PR gate: build, gofmt, vet, the
# full test suite under the race detector, and a determinism spot-check that
# a parallel figure run (-j 8) renders byte-identically to a serial one
# (-j 1) in both table and JSON formats.

GO ?= go

# Benchmark knobs: the selection and iteration count feed bench-json and
# bench-compare; BENCH_THRESHOLD is the regression gate in percent.
# BENCHCOUNT repeats each benchmark and benchjson keeps every metric's
# minimum across repeats; the minimum-of-3 default is what makes the
# bench-compare gate usable on machines with noisy neighbours, where a
# single draw can swing ±10% or more.
BENCH ?= Fig|EngineCycle|TraceReplay|Tournament|FetchRename
BENCHTIME ?= 10x
BENCHCOUNT ?= 3
BENCH_OUT ?= BENCH_results.json
# The gate must clear the machine's same-tree noise floor: back-to-back
# bench-json runs of one unchanged tree on a 1-vCPU shared host differ by
# up to ~15% on the shortest benchmarks even with the min-of-3 settings
# above, so a tighter threshold flags identical code.
BENCH_THRESHOLD ?= 20

# profile: which figure the `make profile` target captures, and where the
# pprof data lands.
PROFILE_FIG ?= 8
PROFILE_DIR ?= /tmp

.PHONY: all build test vet fmt-check lint race verify bench bench-json bench-compare determinism serve-smoke cover profile clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@echo "fmt-check: OK"

# lint: the static-analysis gate — gofmt formatting plus every go vet
# analyzer. The repo is dependency-free by policy, so the gate uses only
# the toolchain's own analyzers (no staticcheck/golangci-lint binaries to
# install or version-pin); CI runs this as its own job.
lint: fmt-check vet
	@echo "lint: OK"

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=RunnerMultiFigure -benchtime=3x -run='^$$'

# bench-json: run the figure + scheduler-core benchmarks and snapshot their
# metrics as structured JSON, so the perf trajectory has machine-readable
# data points. -p 1 keeps the two package test binaries from running
# concurrently, which would corrupt each other's timings.
bench-json:
	$(GO) build -o /tmp/loadsched-benchjson ./cmd/benchjson
	$(GO) test -p 1 -bench='$(BENCH)' -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) -benchmem -run='^$$' . ./internal/ooo | /tmp/loadsched-benchjson -o $(BENCH_OUT)

# bench-compare: run the benchmarks fresh and diff them against the
# committed baseline; exits non-zero on a regression beyond
# BENCH_THRESHOLD percent.
bench-compare:
	$(GO) build -o /tmp/loadsched-benchdiff ./cmd/benchdiff
	$(MAKE) bench-json BENCH_OUT=/tmp/loadsched-bench-new.json
	/tmp/loadsched-benchdiff -threshold $(BENCH_THRESHOLD) BENCH_results.json /tmp/loadsched-bench-new.json

# determinism: neither the CLI's figure tables nor its JSON records may
# depend on the worker count.
determinism: build
	$(GO) build -o /tmp/loadsched-determinism ./cmd/loadsched
	/tmp/loadsched-determinism all -quick -j 1 > /tmp/loadsched-j1.txt
	/tmp/loadsched-determinism all -quick -j 8 > /tmp/loadsched-j8.txt
	cmp /tmp/loadsched-j1.txt /tmp/loadsched-j8.txt
	/tmp/loadsched-determinism all -quick -format json -j 1 > /tmp/loadsched-j1.json
	/tmp/loadsched-determinism all -quick -format json -j 8 > /tmp/loadsched-j8.json
	cmp /tmp/loadsched-j1.json /tmp/loadsched-j8.json
	@echo "determinism: -j1 and -j8 outputs are byte-identical (table and json)"

# serve-smoke: end-to-end check of `loadsched serve` + the persistent
# result store — remote output must be byte-identical to a local run, and a
# server restarted on a warm store must answer the same sweep with zero
# simulations (see scripts/serve-smoke.sh).
serve-smoke:
	sh scripts/serve-smoke.sh

verify: build fmt-check vet race determinism
	@echo "verify: OK"

# profile: capture cpu and allocation pprof data for one figure run
# (PROFILE_FIG, default Figure 8 — the heaviest sweep) through the CLI's
# -cpuprofile/-memprofile flags. Inspect with
# `go tool pprof /tmp/loadsched-fig8-cpu.pprof` (top, list, web) — the mem
# profile is what verifies the steady state allocates nothing per simulation.
profile: build
	$(GO) build -o /tmp/loadsched-profile ./cmd/loadsched
	/tmp/loadsched-profile figure $(PROFILE_FIG) -quick \
		-cpuprofile $(PROFILE_DIR)/loadsched-fig$(PROFILE_FIG)-cpu.pprof \
		-memprofile $(PROFILE_DIR)/loadsched-fig$(PROFILE_FIG)-mem.pprof \
		> /dev/null
	@echo "profile: wrote $(PROFILE_DIR)/loadsched-fig$(PROFILE_FIG)-{cpu,mem}.pprof"

# cover: run the test suite with coverage; the go tool prints the
# per-package percentages and the last line below is the repo total. The
# profile lands in /tmp for drill-down with
# `go tool cover -html=/tmp/loadsched-cover.out`.
cover:
	$(GO) test -short -coverprofile=/tmp/loadsched-cover.out -covermode=atomic ./...
	@$(GO) tool cover -func=/tmp/loadsched-cover.out | tail -1

clean:
	rm -f /tmp/loadsched-determinism /tmp/loadsched-benchjson \
		/tmp/loadsched-benchdiff /tmp/loadsched-bench-new.json \
		/tmp/loadsched-j1.txt /tmp/loadsched-j8.txt \
		/tmp/loadsched-j1.json /tmp/loadsched-j8.json
