# Development targets. `make verify` is the PR gate: build, vet, the full
# test suite under the race detector, and a determinism spot-check that a
# parallel figure run (-j 8) renders byte-identically to a serial one (-j 1).

GO ?= go

.PHONY: all build test vet race verify bench determinism clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=RunnerMultiFigure -benchtime=3x -run='^$$'

# determinism: the CLI's figure tables must not depend on the worker count.
determinism: build
	$(GO) build -o /tmp/loadsched-determinism ./cmd/loadsched
	/tmp/loadsched-determinism all -quick -j 1 > /tmp/loadsched-j1.txt
	/tmp/loadsched-determinism all -quick -j 8 > /tmp/loadsched-j8.txt
	cmp /tmp/loadsched-j1.txt /tmp/loadsched-j8.txt
	@echo "determinism: -j1 and -j8 outputs are byte-identical"

verify: build vet race determinism
	@echo "verify: OK"

clean:
	rm -f /tmp/loadsched-determinism /tmp/loadsched-j1.txt /tmp/loadsched-j8.txt
