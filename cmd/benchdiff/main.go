// Command benchdiff compares two benchjson snapshots (loadsched.bench/v1)
// and prints per-benchmark deltas for ns/op, B/op and allocs/op. It exits
// non-zero when any compared metric regressed by more than -threshold
// percent, which is what lets `make bench-compare` gate a change against
// the committed BENCH_results.json baseline:
//
//	benchdiff -threshold 10 BENCH_results.json /tmp/new.json
//
// Positive deltas are regressions (more time, more bytes, more
// allocations); negative deltas are improvements. Benchmarks present in
// only one snapshot are reported but never gate. A final summary line
// prints the geometric-mean ns/op delta across all compared benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
)

// Benchmark and Snapshot mirror cmd/benchjson's emitted layout. Unknown
// fields (e.g. snapshots written before meta existed) are simply ignored.
type Benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type Meta struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Commit     string `json:"commit"`
	Dirty      bool   `json:"dirty"`
}

type Snapshot struct {
	Schema     string      `json:"schema"`
	Meta       Meta        `json:"meta"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// comparedUnits are the metrics diffed and gated, in display order. Custom
// b.ReportMetric units are workload descriptors (speedups, rates), not
// costs, so they are not gated.
var comparedUnits = []string{"ns/op", "B/op", "allocs/op"}

func main() {
	threshold := flag.Float64("threshold", 10,
		"regression gate: exit non-zero when a metric grows by more than this percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldSnap, newSnap := load(flag.Arg(0)), load(flag.Arg(1))
	noteMetaDrift(oldSnap, newSnap)

	rep := compare(oldSnap, newSnap, *threshold)
	fmt.Printf("%-40s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range rep.Rows {
		mark := ""
		if r.Regressed {
			mark = " REGRESSED"
		}
		fmt.Printf("%-40s %-12s %14.1f %14.1f %+8.1f%%%s\n",
			r.Name, r.Unit, r.Old, r.New, r.Delta, mark)
	}
	for _, name := range rep.Added {
		fmt.Printf("%-40s %-12s %14s %14s %9s\n", name, "-", "(absent)", "-", "new")
	}
	for _, name := range rep.Removed {
		fmt.Printf("%-40s %-12s %14s %14s %9s\n", name, "-", "-", "(absent)", "gone")
	}
	if pct, n := rep.NsGeoMeanDelta(); n > 0 {
		fmt.Printf("geomean ns/op delta: %+.1f%% over %d benchmarks\n", pct, n)
	}
	if len(rep.Added) > 0 || len(rep.Removed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: note: %d benchmark(s) only in new, %d only in old — not gated\n",
			len(rep.Added), len(rep.Removed))
	}
	if rep.AnyRegressed() {
		fmt.Fprintf(os.Stderr, "benchdiff: regression beyond %.1f%% threshold\n", *threshold)
		os.Exit(1)
	}
}

// Row is one gated metric comparison.
type Row struct {
	Name, Unit string
	Old, New   float64
	Delta      float64
	Regressed  bool
}

// Report is the structured outcome of comparing two snapshots: the metric
// rows for benchmarks present in both, plus the names present in only one
// side (Added = only in new, Removed = only in old), sorted. One-sided
// benchmarks are reported, never gated — there is nothing to compare.
type Report struct {
	Rows           []Row
	Added, Removed []string
}

// NsGeoMeanDelta summarizes the whole comparison in one number: the
// geometric mean of new/old ns/op ratios across every benchmark compared,
// as a percent change (positive = slower overall), plus how many
// benchmarks entered the mean. The geometric mean weights a 2× speedup on
// a microsecond bench and on a second-long sweep equally, which is the
// right aggregate for "did this change make the suite faster". Benchmarks
// with a non-positive side are excluded (count 0 when none qualify).
func (r Report) NsGeoMeanDelta() (pct float64, count int) {
	logSum := 0.0
	for _, row := range r.Rows {
		if row.Unit != "ns/op" || row.Old <= 0 || row.New <= 0 {
			continue
		}
		logSum += math.Log(row.New / row.Old)
		count++
	}
	if count == 0 {
		return 0, 0
	}
	return (math.Exp(logSum/float64(count)) - 1) * 100, count
}

// AnyRegressed reports whether any row crossed the threshold.
func (r Report) AnyRegressed() bool {
	for _, row := range r.Rows {
		if row.Regressed {
			return true
		}
	}
	return false
}

// compare diffs the gated units of every benchmark common to both snapshots
// and collects the one-sided names.
func compare(oldSnap, newSnap Snapshot, threshold float64) Report {
	oldBy := indexByName(oldSnap)
	newBy := indexByName(newSnap)
	var rep Report
	for _, name := range unionNames(oldBy, newBy) {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		switch {
		case !inOld:
			rep.Added = append(rep.Added, name)
			continue
		case !inNew:
			rep.Removed = append(rep.Removed, name)
			continue
		}
		for _, unit := range comparedUnits {
			ov, okOld := o.Metrics[unit]
			nv, okNew := n.Metrics[unit]
			if !okOld || !okNew {
				continue // e.g. old run without -benchmem
			}
			pct := delta(ov, nv)
			rep.Rows = append(rep.Rows, Row{
				Name: name, Unit: unit, Old: ov, New: nv,
				Delta: pct, Regressed: pct > threshold,
			})
		}
	}
	return rep
}

// delta returns the percent change old -> new (positive = regression).
func delta(old, new float64) float64 {
	switch {
	case old == new:
		return 0
	case old == 0:
		// Growth from zero: infinite in percent terms; report 100% per unit
		// grown so the gate still sees it.
		return 100 * new
	}
	return (new - old) / old * 100
}

func load(path string) Snapshot {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		fail("parsing %s: %v", path, err)
	}
	if len(s.Benchmarks) == 0 {
		fail("%s holds no benchmarks", path)
	}
	return s
}

// noteMetaDrift warns when the two snapshots come from visibly different
// environments; the numbers still print, the reader just knows they are
// apples and oranges.
func noteMetaDrift(a, b Snapshot) {
	if a.Meta.GoVersion != "" && b.Meta.GoVersion != "" && a.Meta.GoVersion != b.Meta.GoVersion {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: go versions differ (%s vs %s)\n",
			a.Meta.GoVersion, b.Meta.GoVersion)
	}
	if a.Meta.GOMAXPROCS != 0 && b.Meta.GOMAXPROCS != 0 && a.Meta.GOMAXPROCS != b.Meta.GOMAXPROCS {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: GOMAXPROCS differ (%d vs %d)\n",
			a.Meta.GOMAXPROCS, b.Meta.GOMAXPROCS)
	}
	if a.Meta.Dirty {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: old snapshot was taken on a dirty working tree (commit %s)\n",
			a.Meta.Commit)
	}
	if b.Meta.Dirty {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: new snapshot was taken on a dirty working tree (commit %s)\n",
			b.Meta.Commit)
	}
}

func indexByName(s Snapshot) map[string]Benchmark {
	m := make(map[string]Benchmark, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		m[b.Name] = b
	}
	return m
}

func unionNames(a, b map[string]Benchmark) []string {
	seen := map[string]bool{}
	var names []string
	for n := range a {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range b {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", a...)
	os.Exit(2)
}
