package main

import "testing"

func TestDelta(t *testing.T) {
	for _, tc := range []struct {
		old, new, want float64
	}{
		{100, 100, 0},
		{100, 150, 50},
		{200, 100, -50},
		{100, 90, -10},
		{0, 0, 0},
		{0, 3, 300}, // growth from zero still gates
	} {
		if got := delta(tc.old, tc.new); got != tc.want {
			t.Errorf("delta(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}

func TestUnionNamesSortedAndDeduped(t *testing.T) {
	a := map[string]Benchmark{"Fig7": {}, "Fig5": {}}
	b := map[string]Benchmark{"Fig5": {}, "Fig6": {}}
	got := unionNames(a, b)
	want := []string{"Fig5", "Fig6", "Fig7"}
	if len(got) != len(want) {
		t.Fatalf("unionNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unionNames = %v, want %v", got, want)
		}
	}
}
