package main

import (
	"reflect"
	"testing"
)

func TestDelta(t *testing.T) {
	for _, tc := range []struct {
		old, new, want float64
	}{
		{100, 100, 0},
		{100, 150, 50},
		{200, 100, -50},
		{100, 90, -10},
		{0, 0, 0},
		{0, 3, 300}, // growth from zero still gates
	} {
		if got := delta(tc.old, tc.new); got != tc.want {
			t.Errorf("delta(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}

func TestCompareOneSidedBenchmarks(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{
		{Name: "Fig5", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 50}},
		{Name: "Gone", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "AlsoGone", Metrics: map[string]float64{"ns/op": 10}},
	}}
	newSnap := Snapshot{Benchmarks: []Benchmark{
		{Name: "Fig5", Metrics: map[string]float64{"ns/op": 105, "allocs/op": 20}},
		{Name: "Fresh", Metrics: map[string]float64{"ns/op": 999999}},
	}}
	rep := compare(oldSnap, newSnap, 10)

	if want := []string{"Fresh"}; !reflect.DeepEqual(rep.Added, want) {
		t.Errorf("Added = %v, want %v", rep.Added, want)
	}
	if want := []string{"AlsoGone", "Gone"}; !reflect.DeepEqual(rep.Removed, want) {
		t.Errorf("Removed = %v, want %v", rep.Removed, want)
	}
	// One-sided benchmarks must never gate, however large their metrics.
	if rep.AnyRegressed() {
		t.Error("one-sided benchmarks regressed the gate")
	}
	// Only the common benchmark produces rows, one per shared gated unit.
	if len(rep.Rows) != 2 {
		t.Fatalf("Rows = %+v, want 2 rows for Fig5", rep.Rows)
	}
	for _, r := range rep.Rows {
		if r.Name != "Fig5" {
			t.Errorf("row for %q, want only Fig5 rows", r.Name)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	oldSnap := Snapshot{Benchmarks: []Benchmark{
		{Name: "Fig8", Metrics: map[string]float64{"ns/op": 100}},
	}}
	newSnap := Snapshot{Benchmarks: []Benchmark{
		{Name: "Fig8", Metrics: map[string]float64{"ns/op": 150}},
	}}
	if rep := compare(oldSnap, newSnap, 10); !rep.AnyRegressed() {
		t.Error("50%% ns/op growth not flagged at 10%% threshold")
	}
	if rep := compare(oldSnap, newSnap, 60); rep.AnyRegressed() {
		t.Error("50%% ns/op growth flagged at 60%% threshold")
	}
}

func TestUnionNamesSortedAndDeduped(t *testing.T) {
	a := map[string]Benchmark{"Fig7": {}, "Fig5": {}}
	b := map[string]Benchmark{"Fig5": {}, "Fig6": {}}
	got := unionNames(a, b)
	want := []string{"Fig5", "Fig6", "Fig7"}
	if len(got) != len(want) {
		t.Fatalf("unionNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unionNames = %v, want %v", got, want)
		}
	}
}

func TestNsGeoMeanDelta(t *testing.T) {
	// A 2x regression and a 2x improvement cancel exactly under the
	// geometric mean; B/op rows and non-positive sides never enter.
	rep := Report{Rows: []Row{
		{Name: "A", Unit: "ns/op", Old: 100, New: 200},
		{Name: "B", Unit: "ns/op", Old: 200, New: 100},
		{Name: "C", Unit: "B/op", Old: 10, New: 1000},
		{Name: "D", Unit: "ns/op", Old: 0, New: 50},
	}}
	pct, n := rep.NsGeoMeanDelta()
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	if pct < -1e-9 || pct > 1e-9 {
		t.Errorf("pct = %v, want 0 (2x up and 2x down cancel)", pct)
	}

	// Uniform halving reports -50%.
	rep = Report{Rows: []Row{
		{Name: "A", Unit: "ns/op", Old: 100, New: 50},
		{Name: "B", Unit: "ns/op", Old: 80, New: 40},
	}}
	pct, n = rep.NsGeoMeanDelta()
	if n != 2 || pct > -49.999 || pct < -50.001 {
		t.Errorf("pct, n = %v, %d, want -50%% over 2", pct, n)
	}

	// No qualifying rows: count 0.
	if _, n := (Report{}).NsGeoMeanDelta(); n != 0 {
		t.Errorf("empty report count = %d, want 0", n)
	}
}
