package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteResultFile(t *testing.T) {
	dir := t.TempDir()

	t.Run("writes and reports the path", func(t *testing.T) {
		path, err := writeResultFile(filepath.Join(dir, "out"), "fig7.json", []byte("{}"))
		if err != nil {
			t.Fatalf("writeResultFile: %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != "{}" {
			t.Fatalf("read back %q, err %v", got, err)
		}
	})

	t.Run("directory creation failure surfaces", func(t *testing.T) {
		// A plain file where the output directory should go: MkdirAll fails.
		blocker := filepath.Join(dir, "blocker")
		if err := os.WriteFile(blocker, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := writeResultFile(blocker, "fig7.json", []byte("{}")); err == nil {
			t.Fatal("writing under a file path should fail")
		}
	})

	t.Run("create failure surfaces", func(t *testing.T) {
		// The result "file" name collides with an existing subdirectory:
		// os.Create fails, and the error must reach the caller rather than
		// leaving a silently-missing result.
		out := filepath.Join(dir, "out2")
		if err := os.MkdirAll(filepath.Join(out, "fig7.json"), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := writeResultFile(out, "fig7.json", []byte("{}")); err == nil {
			t.Fatal("creating over a directory should fail")
		}
	})
}
