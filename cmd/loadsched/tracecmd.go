package main

import (
	"flag"
	"fmt"

	"loadsched/internal/trace"
	"loadsched/internal/uop"
)

// runTraceCmd implements `loadsched trace <record|info>`: the trace-file
// toolbox. `trace record` serializes a synthetic trace (v2 packed-chunk
// format by default, -v1 for the legacy flat format); `trace info`
// validates a file — structure, per-chunk CRCs, Seq monotonicity — and
// reports its shape and packing density without materializing it.
func runTraceCmd(args []string) {
	if len(args) < 1 {
		fatal("trace: missing subcommand (record | info)")
	}
	switch args[0] {
	case "record":
		runTraceRecord(args[1:])
	case "info":
		runTraceInfo(args[1:])
	default:
		fatal("trace: unknown subcommand %q (want record | info)", args[0])
	}
}

func runTraceRecord(args []string) {
	fs := flag.NewFlagSet("trace record", flag.ExitOnError)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	traceName := fs.String("trace", "ex", "trace name")
	n := fs.Int("n", 300_000, "uops to record")
	out := fs.String("o", "", "output file (required)")
	v1 := fs.Bool("v1", false, "write the legacy flat v1 format")
	_ = fs.Parse(args)
	if *out == "" {
		fatal("trace record: -o <file> is required")
	}
	p, ok := trace.TraceByName(*group, *traceName)
	if !ok {
		fatal("unknown trace %s/%s", *group, *traceName)
	}
	write, version := trace.WriteTraceFile, 2
	if *v1 {
		write, version = trace.WriteTraceFileV1, 1
	}
	if err := write(*out, p, *n); err != nil {
		fatal("trace record: %v", err)
	}
	fmt.Printf("recorded %d uops of %s/%s to %s (format v%d)\n", *n, *group, *traceName, *out, version)
}

func runTraceInfo(args []string) {
	fs := flag.NewFlagSet("trace info", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fatal("trace info: exactly one file argument is required")
	}
	path := fs.Arg(0)
	fi, err := trace.InspectTraceFile(path)
	if err != nil {
		fatal("trace info: %v", err)
	}
	fmt.Printf("file:        %s\n", path)
	fmt.Printf("version:     %d\n", fi.Version)
	fmt.Printf("uops:        %d\n", fi.Uops)
	if fi.Version >= 2 {
		fmt.Printf("chunks:      %d (up to %d uops each, CRC-32C checked)\n", fi.Chunks, trace.ChunkUops)
	}
	fmt.Printf("payload:     %d bytes (%.2f bytes/uop)\n", fi.PayloadBytes, fi.BytesPerUop())
	fmt.Printf("file size:   %d bytes\n", fi.FileBytes)
	fmt.Printf("side-car:    %d bytes (%.2f bytes/uop), built in %.2f ms\n",
		fi.SidecarBytes, fi.SidecarBytesPerUop(), float64(fi.SidecarBuildNanos)/1e6)
	fmt.Printf("kinds:")
	for k, n := range fi.KindCounts {
		if n == 0 {
			continue
		}
		fmt.Printf("  %s %d (%.1f%%)", uop.Kind(k), n, 100*float64(n)/float64(fi.Uops))
	}
	fmt.Println()
}
