package main

import (
	"flag"
	"fmt"
	"os"

	"loadsched/internal/experiments"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/serve"
	"loadsched/internal/trace"
)

// runSweep implements `loadsched sweep <kind>`: sensitivity sweeps beyond
// the paper's figures — window size, collision penalty, CHT size — useful
// for exploring the design space the paper's constants sit in. The sweep
// logic itself lives in experiments.SweepTable so `loadsched serve` runs
// the identical computation.
func runSweep(args []string) {
	if len(args) < 1 {
		fatal("sweep: missing kind (window | penalty | chtsize | bankpolicies)")
	}
	kind := args[0]
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	o := optionFlags(fs)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	quick := fs.Bool("quick", false, "small fast preset")
	op := outputFlags(fs)
	_ = fs.Parse(args[1:])
	if *quick {
		applyQuick(o)
	}
	if op.remote != "" {
		runRemote(op, serve.Job{Command: "sweep", Sweep: kind, Group: *group}, "sweep "+kind, o)
		return
	}
	op.attachStore()
	stop := op.startProfiling()
	defer stop()

	pool := runner.New(o.Workers)
	o.Pool = pool
	t, err := experiments.SweepTable(kind, *group, *o)
	if err != nil {
		fatal("%v", err)
	}
	switch op.format {
	case "table":
		if op.out != "" {
			writeOut(op.out, "sweep-"+kind+".txt", []byte(t.String()))
		} else {
			t.Render(os.Stdout)
		}
	case "json", "csv":
		// Sweeps emit table-shaped records: positional string cells under
		// the rendered table's column names.
		rec := results.NewTable("sweep-"+kind, t.Title, t.Note,
			results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
			t.Columns, t.Rows)
		report := results.NewReport("sweep "+kind, rec.Options, []results.Record{rec})
		if op.verbose {
			rc := runnerCounters(pool)
			report.Runner = &rc
		}
		if err := report.Validate(); err != nil {
			fatal("internal: %v", err)
		}
		emitReport(report, op)
	default:
		fatal("unknown format %q (want table | json | csv)", op.format)
	}
	if op.verbose {
		fmt.Fprintln(os.Stderr, runnerCounters(pool))
	}
}

// runRecord implements `loadsched record`: serialize a synthetic trace.
func runRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	traceName := fs.String("trace", "ex", "trace name")
	n := fs.Int("n", 300_000, "uops to record")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		fatal("record: -o <file> is required")
	}
	p, ok := trace.TraceByName(*group, *traceName)
	if !ok {
		fatal("unknown trace %s/%s", *group, *traceName)
	}
	if err := trace.WriteTraceFile(*out, p, *n); err != nil {
		fatal("record: %v", err)
	}
	fmt.Printf("recorded %d uops of %s/%s to %s\n", *n, *group, *traceName, *out)
}

// runReplay implements `loadsched replay`: simulate a recorded trace file.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	file := fs.String("f", "", "trace file (required)")
	scheme := fs.String("scheme", "traditional", "memory ordering scheme")
	window := fs.Int("window", 32, "scheduling window entries")
	warmup := fs.Int("warmup", 40_000, "warmup uops")
	uops := fs.Int("uops", 0, "measured uops (default: file length - warmup)")
	_ = fs.Parse(args)
	if *file == "" {
		fatal("replay: -f <file> is required")
	}
	// Stream the file instead of materializing it: replay memory stays
	// O(one decoded chunk) no matter how long the trace is.
	rd, err := trace.StreamTraceFile(*file)
	if err != nil {
		fatal("replay: %v", err)
	}
	defer rd.Close()
	cfg := ooo.DefaultConfig()
	cfg.Window = *window
	cfg.WarmupUops = *warmup
	var ok bool
	cfg.Scheme, ok = parseScheme(*scheme)
	if !ok {
		fatal("unknown scheme %q", *scheme)
	}
	if cfg.Scheme.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	n := *uops
	if n <= 0 {
		n = int(rd.Uops()) - *warmup
		if n <= 0 {
			fatal("replay: trace shorter than warmup")
		}
	}
	st := ooo.NewEngine(cfg, rd).Run(n)
	printRunStats("file", *file, cfg, st)
}
