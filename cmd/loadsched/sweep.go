package main

import (
	"flag"
	"fmt"
	"os"

	"loadsched/internal/experiments"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

// runSweep implements `loadsched sweep <kind>`: sensitivity sweeps beyond
// the paper's figures — window size, collision penalty, CHT size — useful
// for exploring the design space the paper's constants sit in.
func runSweep(args []string) {
	if len(args) < 1 {
		fatal("sweep: missing kind (window | penalty | chtsize | bankpolicies)")
	}
	kind := args[0]
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	o := optionFlags(fs)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	quick := fs.Bool("quick", false, "small fast preset")
	op := outputFlags(fs)
	_ = fs.Parse(args[1:])
	if *quick {
		applyQuick(o)
	}
	stop := op.startProfiling()
	defer stop()

	g, ok := trace.GroupByName(*group)
	if !ok {
		fatal("unknown group %q", *group)
	}
	traces := g.Traces
	if o.TracesPerGroup > 0 && o.TracesPerGroup < len(traces) {
		traces = traces[:o.TracesPerGroup]
	}

	// run executes one machine point over every trace concurrently (the
	// shared cache reuses any point an earlier row already simulated) and
	// geo-means the IPCs. mut must be a pure config mutation: it is re-run
	// for every trace.
	pool := runner.New(o.Workers)
	o.Pool = pool
	run := func(mut func(*ooo.Config)) float64 {
		jobs := make([]runner.Job, len(traces))
		for i, p := range traces {
			jobs[i] = runner.Job{
				Build: func() ooo.Config {
					cfg := ooo.DefaultConfig()
					mut(&cfg)
					return cfg
				},
				Profile: p,
				Uops:    o.Uops,
				Warmup:  o.EffectiveWarmup(),
			}
		}
		sts := pool.Run(jobs)
		ipc := make([]float64, len(sts))
		for i, st := range sts {
			ipc[i] = st.IPC()
		}
		m, dropped := stats.GeoMeanCounted(ipc)
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "loadsched: sweep %s: %d of %d traces produced non-positive IPC, excluded from the mean\n",
				kind, dropped, len(ipc))
		}
		return m
	}

	var t stats.Table
	switch kind {
	case "window":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — IPC vs scheduling window (%s)", *group),
			Columns: []string{"window", "Traditional", "Exclusive", "Perfect", "Excl speedup"},
		}
		for _, w := range []int{8, 16, 32, 64, 128} {
			trad := run(func(c *ooo.Config) { c.Window = w })
			excl := run(func(c *ooo.Config) {
				c.Window = w
				c.Scheme = memdep.Exclusive
				c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
			})
			perf := run(func(c *ooo.Config) { c.Window = w; c.Scheme = memdep.Perfect })
			t.AddRow(fmt.Sprintf("%d", w), stats.F3(trad), stats.F3(excl), stats.F3(perf),
				stats.F3(excl/trad))
		}
	case "penalty":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — ordering-scheme speedup vs collision penalty (%s)", *group),
			Note:    "the paper's constant is 8 cycles (§3.1)",
			Columns: []string{"penalty", "Opportunistic", "Inclusive", "Perfect"},
		}
		for _, pen := range []int{0, 4, 8, 16, 32} {
			base := run(func(c *ooo.Config) { c.CollisionPenalty = pen })
			row := []string{fmt.Sprintf("%d", pen)}
			for _, s := range []memdep.Scheme{memdep.Opportunistic, memdep.Inclusive, memdep.Perfect} {
				v := run(func(c *ooo.Config) {
					c.CollisionPenalty = pen
					c.Scheme = s
					if s.UsesCHT() {
						c.CHT = memdep.NewFullCHT(2048, 4, 2, true)
					}
				})
				row = append(row, stats.F3(v/base))
			}
			t.AddRow(row...)
		}
	case "chtsize":
		t = stats.Table{
			Title:   fmt.Sprintf("Sweep — Inclusive-scheme speedup vs Full-CHT size (%s)", *group),
			Columns: []string{"entries", "speedup"},
		}
		base := run(func(c *ooo.Config) {})
		for _, n := range []int{128, 256, 512, 1024, 2048, 4096} {
			v := run(func(c *ooo.Config) {
				c.Scheme = memdep.Inclusive
				c.CHT = memdep.NewFullCHT(n, 4, 2, true)
			})
			t.AddRow(fmt.Sprintf("%d", n), stats.F3(v/base))
		}
	case "bankpolicies":
		t = experiments.BankPoliciesTable(experiments.BankPolicies(*o))
	default:
		fatal("unknown sweep %q (want window | penalty | chtsize | bankpolicies)", kind)
	}
	switch op.format {
	case "table":
		if op.out != "" {
			writeOut(op.out, "sweep-"+kind+".txt", []byte(t.String()))
		} else {
			t.Render(os.Stdout)
		}
	case "json", "csv":
		// Sweeps emit table-shaped records: positional string cells under
		// the rendered table's column names.
		rec := results.NewTable("sweep-"+kind, t.Title, t.Note,
			results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
			t.Columns, t.Rows)
		report := results.NewReport("sweep "+kind, rec.Options, []results.Record{rec})
		if op.verbose {
			rc := runnerCounters(pool)
			report.Runner = &rc
		}
		if err := report.Validate(); err != nil {
			fatal("internal: %v", err)
		}
		emitReport(report, op)
	default:
		fatal("unknown format %q (want table | json | csv)", op.format)
	}
	if op.verbose {
		fmt.Fprintln(os.Stderr, runnerCounters(pool))
	}
}

// runRecord implements `loadsched record`: serialize a synthetic trace.
func runRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	traceName := fs.String("trace", "ex", "trace name")
	n := fs.Int("n", 300_000, "uops to record")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		fatal("record: -o <file> is required")
	}
	p, ok := trace.TraceByName(*group, *traceName)
	if !ok {
		fatal("unknown trace %s/%s", *group, *traceName)
	}
	if err := trace.WriteTraceFile(*out, p, *n); err != nil {
		fatal("record: %v", err)
	}
	fmt.Printf("recorded %d uops of %s/%s to %s\n", *n, *group, *traceName, *out)
}

// runReplay implements `loadsched replay`: simulate a recorded trace file.
func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	file := fs.String("f", "", "trace file (required)")
	scheme := fs.String("scheme", "traditional", "memory ordering scheme")
	window := fs.Int("window", 32, "scheduling window entries")
	warmup := fs.Int("warmup", 40_000, "warmup uops")
	uops := fs.Int("uops", 0, "measured uops (default: file length - warmup)")
	_ = fs.Parse(args)
	if *file == "" {
		fatal("replay: -f <file> is required")
	}
	rd, err := trace.ReadTraceFile(*file)
	if err != nil {
		fatal("replay: %v", err)
	}
	cfg := ooo.DefaultConfig()
	cfg.Window = *window
	cfg.WarmupUops = *warmup
	var ok bool
	cfg.Scheme, ok = parseScheme(*scheme)
	if !ok {
		fatal("unknown scheme %q", *scheme)
	}
	if cfg.Scheme.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	n := *uops
	if n <= 0 {
		n = rd.Len() - *warmup
		if n <= 0 {
			fatal("replay: trace shorter than warmup")
		}
	}
	st := ooo.NewEngine(cfg, rd).Run(n)
	printRunStats("file", *file, cfg, st)
}
