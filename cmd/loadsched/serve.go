package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loadsched/internal/experiments"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/serve"
	"loadsched/internal/store"
)

// attachStore opens the persistent result store named by -store and layers
// it under the process-wide memo cache as the second-level result cache
// (memory → disk → compute). No-op without -store.
func (op *outputOptions) attachStore() {
	if op.store == "" {
		return
	}
	s, err := store.Open(op.store)
	if err != nil {
		fatal("store: %v", err)
	}
	runner.Shared().SetStore(s)
}

// runServe implements `loadsched serve`: an HTTP job API over the
// simulation pool. See internal/serve for the protocol.
func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8023", "listen address")
	storeDir := fs.String("store", "", "persistent result store directory (optional)")
	workers := fs.Int("j", 0, "concurrent simulations per job (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "concurrently executing jobs")
	queue := fs.Int("queue", 8, "jobs queued behind the executing ones before 429")
	_ = fs.Parse(args)

	if *storeDir != "" {
		s, err := store.Open(*storeDir)
		if err != nil {
			fatal("serve: %v", err)
		}
		runner.Shared().SetStore(s)
		fmt.Fprintf(os.Stderr, "loadsched serve: result store at %s (%d entries)\n", s.Dir(), s.Len())
	}
	srv := serve.New(serve.Config{
		Workers:       *workers,
		MaxConcurrent: *jobs,
		QueueDepth:    *queue,
		Logf:          func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("serve: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "loadsched serve: listening on http://%s\n", ln.Addr())

	// Graceful shutdown: stop accepting, let streaming jobs finish (bounded).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "loadsched serve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal("serve: %v", err)
	}
}

// runRemote submits a job to the -remote serve endpoint and re-emits the
// streamed records through the same formatting path local runs use, so a
// remote `-format json` run is byte-identical to the local one. The server's
// per-job counters replace the local pool's in -v output — that is how a
// client proves a warm store run simulated nothing.
func runRemote(op *outputOptions, job serve.Job, command string, o *experiments.Options) {
	if op.format != "json" && op.format != "csv" {
		fatal("-remote requires -format json or csv (tables render locally; ask for json)")
	}
	job.Options = results.Options{Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup}
	var recs []results.Record
	rc, err := serve.NewClient(op.remote).Do(job, func(rec results.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		fatal("%v", err)
	}
	report := results.NewReport(command, job.Options, recs)
	if op.verbose {
		report.Runner = rc
	}
	if err := report.Validate(); err != nil {
		fatal("internal: %v", err)
	}
	emitReport(report, op)
	if op.verbose {
		fmt.Fprintln(os.Stderr, *rc)
	}
}
