// Command loadsched reproduces the evaluation of "Speculation Techniques for
// Improving Load Related Instruction Scheduling" (Yoaz, Erez, Ronen,
// Jourdan; ISCA 1999) on synthetic workloads.
//
// Usage:
//
//	loadsched figure <5|6|7|8|9|10|11|12> [flags]   reproduce one paper figure
//	loadsched all [flags]                           reproduce every figure
//	loadsched run [flags]                           one simulation, full stats
//	loadsched traces                                list the trace groups
//
// Flags (figure/all/run):
//
//	-uops N     measured uops per trace (default 200000)
//	-warmup N   warmup uops per trace (default 40000, -1 = none)
//	-traces N   traces per group (default all)
//	-quick      small preset (60K uops, 2 traces/group)
//	-j N        concurrent simulations (default GOMAXPROCS, 1 = serial);
//	            output is byte-identical for every setting
//
// Flags (run):
//
//	-group G -trace T   workload (default SysmarkNT/ex)
//	-scheme S           ordering scheme (traditional opportunistic postponing
//	                    inclusive exclusive perfect)
//	-window N           scheduling window size
//	-hmp P              hit-miss predictor (none local chooser perfect)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"loadsched/internal/experiments"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "figure":
		if len(args) < 1 {
			fatal("figure: missing number (5-12)")
		}
		runFigures([]string{args[0]}, args[1:])
	case "all":
		runFigures([]string{"5", "6", "7", "8", "9", "10", "11", "12"}, args)
	case "run":
		runSingle(args)
	case "sweep":
		runSweep(args)
	case "record":
		runRecord(args)
	case "replay":
		runReplay(args)
	case "traces":
		listTraces()
	case "help", "-h", "--help":
		usage()
	default:
		fatal("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `loadsched — ISCA'99 load-scheduling speculation reproduction
commands:
  figure <5..12> [flags]  reproduce one paper figure
  all [flags]             reproduce all figures
  run [flags]             single simulation with full statistics
  sweep <kind> [flags]    sensitivity sweeps: window | penalty | chtsize
  record -o f [flags]     serialize a synthetic trace to a file
  replay -f f [flags]     simulate a recorded trace file
  traces                  list trace groups and members
run 'loadsched <cmd> -h' style flags: -uops -warmup -traces -quick -j;
'run' also takes -group -trace -scheme -window -hmp`)
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "loadsched: "+format+"\n", a...)
	os.Exit(1)
}

func optionFlags(fs *flag.FlagSet) *experiments.Options {
	o := experiments.DefaultOptions()
	fs.IntVar(&o.Uops, "uops", o.Uops, "measured uops per trace")
	fs.IntVar(&o.Warmup, "warmup", o.Warmup, "warmup uops per trace (-1 = none)")
	fs.IntVar(&o.TracesPerGroup, "traces", o.TracesPerGroup, "traces per group (0 = all)")
	fs.IntVar(&o.Workers, "j", o.Workers, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	return &o
}

// applyQuick replaces the options with the quick preset while preserving the
// flags (like -j) the preset does not cover.
func applyQuick(o *experiments.Options) {
	workers := o.Workers
	*o = experiments.Quick()
	o.Workers = workers
}

func runFigures(figs []string, args []string) {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	o := optionFlags(fs)
	quick := fs.Bool("quick", false, "small fast preset")
	chart := fs.Bool("chart", false, "also render bar charts")
	_ = fs.Parse(args)
	if *quick {
		applyQuick(o)
	}
	for _, f := range figs {
		tbl, ch := figureTable(f, *o)
		tbl.Render(os.Stdout)
		if *chart && ch != nil {
			fmt.Println()
			ch.Render(os.Stdout)
		}
		fmt.Println()
	}
}

func figureTable(f string, o experiments.Options) (stats.Table, *stats.BarChart) {
	switch f {
	case "5":
		rows := experiments.Fig5(o)
		return experiments.Fig5Table(rows), experiments.Fig5Chart(rows)
	case "6":
		rows := experiments.Fig6(o)
		return experiments.Fig6Table(rows), experiments.Fig6Chart(rows)
	case "7":
		r := experiments.Fig7(o)
		return experiments.Fig7Table(r), experiments.Fig7Chart(r)
	case "8":
		return experiments.Fig8Table(experiments.Fig8(o)), nil
	case "9":
		return experiments.Fig9Table(experiments.Fig9(o)), nil
	case "10":
		return experiments.Fig10Table(experiments.Fig10(o)), nil
	case "11":
		cells := experiments.Fig11(o)
		return experiments.Fig11Table(cells), experiments.Fig11Chart(cells)
	case "12":
		rows := experiments.Fig12(o)
		return experiments.Fig12Table(rows), experiments.Fig12Chart(rows, 5)
	default:
		fatal("unknown figure %q (want 5-12)", f)
		panic("unreachable")
	}
}

func runSingle(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := optionFlags(fs)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	traceName := fs.String("trace", "ex", "trace name within the group")
	scheme := fs.String("scheme", "traditional", "memory ordering scheme")
	window := fs.Int("window", 32, "scheduling window entries")
	hmp := fs.String("hmp", "none", "hit-miss predictor: none local chooser perfect")
	_ = fs.Parse(args)

	p, ok := trace.TraceByName(*group, *traceName)
	if !ok {
		fatal("unknown trace %s/%s (see 'loadsched traces')", *group, *traceName)
	}
	cfg := ooo.DefaultConfig()
	cfg.Window = *window
	cfg.WarmupUops = o.EffectiveWarmup()
	cfg.Scheme, ok = parseScheme(*scheme)
	if !ok {
		fatal("unknown scheme %q", *scheme)
	}
	if cfg.Scheme.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	switch *hmp {
	case "none":
	case "local":
		cfg.HMP = hitmiss.NewLocal()
	case "chooser":
		cfg.HMP = hitmiss.NewChooser()
	case "perfect":
		cfg.HMP = &hitmiss.Perfect{}
	default:
		fatal("unknown hmp %q", *hmp)
	}

	e := ooo.NewEngine(cfg, trace.New(p))
	st := e.Run(o.Uops)
	printRunStats(*group, *traceName, cfg, st)
}

func parseScheme(s string) (memdep.Scheme, bool) {
	for _, sc := range memdep.Schemes() {
		if strings.EqualFold(sc.String(), s) {
			return sc, true
		}
	}
	return 0, false
}

func printRunStats(group, name string, cfg ooo.Config, st ooo.Stats) {
	label := group + "/" + name
	if group == "file" {
		label = name
	}
	fmt.Printf("%s  scheme=%v window=%d\n", label, cfg.Scheme, cfg.Window)
	fmt.Printf("  cycles=%d uops=%d IPC=%.3f\n", st.Cycles, st.Uops, st.IPC())
	fmt.Printf("  loads=%d stores=%d branches=%d (mispredicted %d)\n",
		st.Loads, st.Stores, st.Branches, st.BranchMispredicts)
	c := st.Class
	fmt.Printf("  classification: AC=%s ANC=%s no-conflict=%s\n",
		stats.Pct(c.FracOfLoads(c.AC())), stats.Pct(c.FracOfLoads(c.ANC())),
		stats.Pct(c.FracOfLoads(c.NotConflicting)))
	fmt.Printf("  collisions=%d  L1 miss=%s  L2 miss=%d\n",
		st.Collisions, stats.Pct(st.L1MissRate()), st.L2Misses)
	hm := st.HM
	fmt.Printf("  hit-miss: AH-PH=%d AH-PM=%d AM-PH=%d AM-PM=%d\n",
		hm.AHPH, hm.AHPM, hm.AMPH, hm.AMPM)
}

func listTraces() {
	for _, g := range trace.Groups() {
		fmt.Printf("%s (%d traces):", g.Name, len(g.Traces))
		for _, t := range g.Traces {
			fmt.Printf(" %s", t.Name)
		}
		fmt.Println()
	}
}
