// Command loadsched reproduces the evaluation of "Speculation Techniques for
// Improving Load Related Instruction Scheduling" (Yoaz, Erez, Ronen,
// Jourdan; ISCA 1999) on synthetic workloads.
//
// Usage:
//
//	loadsched figure <5|6|7|8|9|10|11|12> [flags]   reproduce one paper figure
//	loadsched all [flags]                           reproduce every figure
//	loadsched run [flags]                           one simulation, full stats
//	loadsched cpistack [flags]                      per-group CPI stack view
//	loadsched tournament [flags]                    race the policy zoo per group
//	loadsched serve [flags]                         HTTP job API over the pool
//	loadsched traces                                list the trace groups
//
// Flags (figure/all/run/sweep):
//
//	-uops N     measured uops per trace (default 200000)
//	-warmup N   warmup uops per trace (default 40000, -1 = none)
//	-traces N   traces per group (default all)
//	-quick      small preset (60K uops, 2 traces/group)
//	-j N        concurrent simulations (default GOMAXPROCS, 1 = serial);
//	            output is byte-identical for every setting
//	-format F   output format: table (default) | json | csv; json/csv emit
//	            versioned records (schema loadsched.results/v1)
//	-out DIR    write one result file per figure into DIR instead of stdout
//	-v          print a runner observability summary (jobs, memo hits,
//	            coalesces, disk hits, sim wall time) to stderr; with
//	            -format json the counters also ride in the report envelope
//	-store DIR  layer a persistent content-addressed result store under the
//	            memo cache: results survive the process and later runs load
//	            them instead of simulating
//	-remote A   submit the job to a running `loadsched serve` at address A
//	            (requires -format json or csv); records stream back and are
//	            re-emitted byte-identically to a local run
//	-cpuprofile/-memprofile/-trace F   write pprof / execution-trace data
//
// Flags (run):
//
//	-group G -trace T   workload (default SysmarkNT/ex)
//	-scheme S           ordering scheme (traditional opportunistic postponing
//	                    inclusive exclusive perfect)
//	-window N           scheduling window size
//	-hmp P              hit-miss predictor (none local chooser perfect)
//	-json               print the run's statistics as JSON
//	-exectrace F        execution trace (run's -trace names the workload)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"

	"loadsched/internal/experiments"
	"loadsched/internal/hitmiss"
	"loadsched/internal/memdep"
	"loadsched/internal/ooo"
	"loadsched/internal/results"
	"loadsched/internal/runner"
	"loadsched/internal/serve"
	"loadsched/internal/stats"
	"loadsched/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "figure":
		if len(args) < 1 {
			fatal("figure: missing number (5-12)")
		}
		runFigures([]string{args[0]}, args[1:])
	case "all":
		runFigures([]string{"5", "6", "7", "8", "9", "10", "11", "12"}, args)
	case "run":
		runSingle(args)
	case "sweep":
		runSweep(args)
	case "cpistack":
		runCPIStack(args)
	case "tournament":
		runTournament(args)
	case "serve":
		runServe(args)
	case "trace":
		runTraceCmd(args)
	case "record":
		runRecord(args)
	case "replay":
		runReplay(args)
	case "traces":
		listTraces()
	case "help", "-h", "--help":
		usage()
	default:
		fatal("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `loadsched — ISCA'99 load-scheduling speculation reproduction
commands:
  figure <5..12> [flags]  reproduce one paper figure
  all [flags]             reproduce all figures
  run [flags]             single simulation with full statistics
  sweep <kind> [flags]    sensitivity sweeps: window | penalty | chtsize
  cpistack [flags]        attribute every cycle to a stall cause per group
  tournament [flags]      race the related-work policy zoo per trace group
  serve [flags]           HTTP job API: -addr -store -j -jobs -queue
  trace record|info       trace-file toolbox: write (v2/v1), validate, inspect
  record -o f [flags]     serialize a synthetic trace to a file (= trace record)
  replay -f f [flags]     simulate a recorded trace file (streamed, constant RSS)
  traces                  list trace groups and members
run 'loadsched <cmd> -h' style flags: -uops -warmup -traces -quick -j
plus -format table|json|csv, -out DIR, -v, -cpuprofile -memprofile -trace;
-store DIR layers a persistent result store under the memo cache;
-remote ADDR submits the job to a running 'loadsched serve' instead;
'run' also takes -group -trace -scheme -window -hmp -json (and -exectrace
in place of -trace for execution tracing)`)
}

func fatal(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "loadsched: "+format+"\n", a...)
	os.Exit(1)
}

func optionFlags(fs *flag.FlagSet) *experiments.Options {
	o := experiments.DefaultOptions()
	fs.IntVar(&o.Uops, "uops", o.Uops, "measured uops per trace")
	fs.IntVar(&o.Warmup, "warmup", o.Warmup, "warmup uops per trace (-1 = none)")
	fs.IntVar(&o.TracesPerGroup, "traces", o.TracesPerGroup, "traces per group (0 = all)")
	fs.IntVar(&o.Workers, "j", o.Workers, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	return &o
}

// applyQuick replaces the options with the quick preset while preserving the
// flags (like -j) and wiring (the pool) the preset does not cover.
func applyQuick(o *experiments.Options) {
	workers, pool := o.Workers, o.Pool
	*o = experiments.Quick()
	o.Workers, o.Pool = workers, pool
}

// outputOptions are the observability and emission flags shared by the
// figure, all and sweep commands.
type outputOptions struct {
	format     string
	out        string
	verbose    bool
	store      string
	remote     string
	cpuprofile string
	memprofile string
	traceFile  string
}

func outputFlags(fs *flag.FlagSet) *outputOptions {
	op := &outputOptions{}
	fs.StringVar(&op.format, "format", "table", "output format: table | json | csv")
	fs.StringVar(&op.out, "out", "", "write one result file per figure into this directory")
	fs.BoolVar(&op.verbose, "v", false, "print a runner observability summary to stderr")
	fs.StringVar(&op.store, "store", "", "persistent result store directory (disk-backed second-level cache)")
	fs.StringVar(&op.remote, "remote", "", "submit the job to a `loadsched serve` address instead of simulating locally")
	op.profileFlags(fs, "trace")
	return op
}

// profileFlags registers just the profiling flags. The execution-trace flag
// name is a parameter because `run` already uses -trace for its workload
// trace name and registers -exectrace instead.
func (op *outputOptions) profileFlags(fs *flag.FlagSet, traceFlag string) {
	fs.StringVar(&op.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&op.memprofile, "memprofile", "", "write an allocation profile to this file")
	fs.StringVar(&op.traceFile, traceFlag, "", "write a runtime execution trace to this file")
}

// startProfiling starts the requested pprof/trace collectors and returns the
// function that stops them and writes the profiles out. Stops check the
// file Close errors: a profile truncated by a close-time flush failure
// looks valid to pprof until deep into analysis, so it must fail loudly
// here instead.
func (op *outputOptions) startProfiling() func() {
	var stops []func()
	if op.cpuprofile != "" {
		f, err := os.Create(op.cpuprofile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal("cpuprofile: %v", err)
			}
		})
	}
	if op.traceFile != "" {
		f, err := os.Create(op.traceFile)
		if err != nil {
			fatal("trace: %v", err)
		}
		if err := rtrace.Start(f); err != nil {
			fatal("trace: %v", err)
		}
		stops = append(stops, func() {
			rtrace.Stop()
			if err := f.Close(); err != nil {
				fatal("trace: %v", err)
			}
		})
	}
	if op.memprofile != "" {
		path := op.memprofile
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fatal("memprofile: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal("memprofile: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("memprofile: %v", err)
			}
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
}

// runnerCounters converts a pool's counter snapshot to the JSON envelope
// form, for both the -v summary and the report's Runner field. The
// conversion lives in serve (the done-line uses the identical one).
func runnerCounters(pool *runner.Pool) results.RunnerCounters {
	return serve.Counters(pool)
}

func runFigures(figs []string, args []string) {
	fs := flag.NewFlagSet("figure", flag.ExitOnError)
	o := optionFlags(fs)
	quick := fs.Bool("quick", false, "small fast preset")
	chart := fs.Bool("chart", false, "also render bar charts (table format)")
	op := outputFlags(fs)
	_ = fs.Parse(args)
	if *quick {
		applyQuick(o)
	}
	if op.remote != "" {
		job := serve.Job{Command: "figure", Figures: figs}
		command := "figure " + strings.Join(figs, " ")
		if len(figs) == 8 {
			job = serve.Job{Command: "all"}
			command = "all"
		}
		runRemote(op, job, command, o)
		return
	}
	op.attachStore()
	// One pool for the whole invocation, so the -v counters aggregate every
	// figure's jobs (drivers would otherwise each resolve a fresh pool).
	pool := runner.New(o.Workers)
	o.Pool = pool
	stop := op.startProfiling()
	defer stop()

	switch op.format {
	case "table":
		for _, f := range figs {
			tbl, ch, _ := figureData(f, *o)
			if op.out != "" {
				text := tbl.String()
				if *chart && ch != nil {
					text += "\n" + ch.String()
				}
				writeOut(op.out, "fig"+f+".txt", []byte(text))
				continue
			}
			tbl.Render(os.Stdout)
			if *chart && ch != nil {
				fmt.Println()
				ch.Render(os.Stdout)
			}
			fmt.Println()
		}
	case "json", "csv":
		recs := make([]results.Record, 0, len(figs))
		for _, f := range figs {
			_, _, rec := figureData(f, *o)
			recs = append(recs, rec)
		}
		command := "figure " + strings.Join(figs, " ")
		if len(figs) == 8 {
			command = "all"
		}
		report := results.NewReport(command, results.Options{
			Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup}, recs)
		if op.verbose {
			rc := runnerCounters(pool)
			report.Runner = &rc
		}
		if err := report.Validate(); err != nil {
			fatal("internal: %v", err)
		}
		emitReport(report, op)
	default:
		fatal("unknown format %q (want table | json | csv)", op.format)
	}
	if op.verbose {
		fmt.Fprintln(os.Stderr, runnerCounters(pool))
	}
}

// emitReport writes a validated report to stdout, or one file per record
// into -out DIR.
func emitReport(report results.Report, op *outputOptions) {
	if op.out == "" {
		var err error
		if op.format == "json" {
			err = results.WriteJSON(os.Stdout, report)
		} else {
			err = results.WriteReportCSV(os.Stdout, report)
		}
		if err != nil {
			fatal("emit: %v", err)
		}
		return
	}
	for _, rec := range report.Records {
		var b strings.Builder
		var err error
		if op.format == "json" {
			// Per-figure files carry the full envelope so each file is
			// independently consumable.
			one := report
			one.Records = []results.Record{rec}
			err = results.WriteJSON(&b, one)
		} else {
			err = results.WriteCSV(&b, rec)
		}
		if err != nil {
			fatal("emit %s: %v", rec.ID, err)
		}
		writeOut(op.out, rec.ID+"."+op.format, []byte(b.String()))
	}
}

// writeOut writes one output file under dir, creating the directory, and
// exits through fatal on any failure.
func writeOut(dir, name string, data []byte) {
	path, err := writeResultFile(dir, name, data)
	if err != nil {
		fatal("out: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

// writeResultFile writes one result file under dir and reports write AND
// close errors. Result files are the tool's product; a close-time flush
// failure (full disk, remote filesystem) silently truncates them if only
// the write is checked.
func writeResultFile(dir, name string, data []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("closing %s: %w", path, err)
	}
	return path, nil
}

// figureData runs one figure and derives every view — table, chart and
// structured record — from the same rows, so the driver executes once.
func figureData(f string, o experiments.Options) (stats.Table, *stats.BarChart, results.Record) {
	switch f {
	case "5":
		rows := experiments.Fig5(o)
		return experiments.Fig5Table(rows), experiments.Fig5Chart(rows), experiments.Fig5Record(o, rows)
	case "6":
		rows := experiments.Fig6(o)
		return experiments.Fig6Table(rows), experiments.Fig6Chart(rows), experiments.Fig6Record(o, rows)
	case "7":
		r := experiments.Fig7(o)
		return experiments.Fig7Table(r), experiments.Fig7Chart(r), experiments.Fig7Record(o, r)
	case "8":
		cells := experiments.Fig8(o)
		return experiments.Fig8Table(cells), nil, experiments.Fig8Record(o, cells)
	case "9":
		rows := experiments.Fig9(o)
		return experiments.Fig9Table(rows), nil, experiments.Fig9Record(o, rows)
	case "10":
		rows := experiments.Fig10(o)
		return experiments.Fig10Table(rows), nil, experiments.Fig10Record(o, rows)
	case "11":
		cells := experiments.Fig11(o)
		return experiments.Fig11Table(cells), experiments.Fig11Chart(cells), experiments.Fig11Record(o, cells)
	case "12":
		rows := experiments.Fig12(o)
		return experiments.Fig12Table(rows), experiments.Fig12Chart(rows, 5), experiments.Fig12Record(o, rows)
	default:
		fatal("unknown figure %q (want 5-12)", f)
		panic("unreachable")
	}
}

// runCPIStack reproduces the CPI-stack view: every simulated cycle of each
// trace group attributed to a stall cause, contrasting the Traditional
// baseline against the Inclusive CHT scheme.
func runCPIStack(args []string) {
	fs := flag.NewFlagSet("cpistack", flag.ExitOnError)
	o := optionFlags(fs)
	quick := fs.Bool("quick", false, "small fast preset")
	op := outputFlags(fs)
	_ = fs.Parse(args)
	if *quick {
		applyQuick(o)
	}
	if op.remote != "" {
		runRemote(op, serve.Job{Command: "cpistack"}, "cpistack", o)
		return
	}
	op.attachStore()
	pool := runner.New(o.Workers)
	o.Pool = pool
	stop := op.startProfiling()
	defer stop()

	rows := experiments.CPIStacks(*o)
	switch op.format {
	case "table":
		tbl := experiments.CPIStackTable(rows)
		if op.out != "" {
			writeOut(op.out, "cpistack.txt", []byte(tbl.String()))
			break
		}
		tbl.Render(os.Stdout)
	case "json", "csv":
		rec := experiments.CPIStackRecord(*o, rows)
		report := results.NewReport("cpistack", results.Options{
			Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
			[]results.Record{rec})
		if op.verbose {
			rc := runnerCounters(pool)
			report.Runner = &rc
		}
		if err := report.Validate(); err != nil {
			fatal("internal: %v", err)
		}
		emitReport(report, op)
	default:
		fatal("unknown format %q (want table | json | csv)", op.format)
	}
	if op.verbose {
		fmt.Fprintln(os.Stderr, runnerCounters(pool))
	}
}

// runTournament races the built-in policy against the internal/policies
// zoo on every trace group, ranked on CPI, with each row's cycle
// attribution showing where a policy's prediction moved the stall time.
func runTournament(args []string) {
	fs := flag.NewFlagSet("tournament", flag.ExitOnError)
	o := optionFlags(fs)
	quick := fs.Bool("quick", false, "small fast preset")
	op := outputFlags(fs)
	_ = fs.Parse(args)
	if *quick {
		applyQuick(o)
	}
	if op.remote != "" {
		runRemote(op, serve.Job{Command: "tournament"}, "tournament", o)
		return
	}
	op.attachStore()
	pool := runner.New(o.Workers)
	o.Pool = pool
	stop := op.startProfiling()
	defer stop()

	rows := experiments.Tournament(*o)
	switch op.format {
	case "table":
		tbl := experiments.TournamentTable(rows)
		if op.out != "" {
			writeOut(op.out, "tournament.txt", []byte(tbl.String()))
			break
		}
		tbl.Render(os.Stdout)
	case "json", "csv":
		rec := experiments.TournamentRecord(*o, rows)
		report := results.NewReport("tournament", results.Options{
			Uops: o.Uops, Warmup: o.Warmup, TracesPerGroup: o.TracesPerGroup},
			[]results.Record{rec})
		if op.verbose {
			rc := runnerCounters(pool)
			report.Runner = &rc
		}
		if err := report.Validate(); err != nil {
			fatal("internal: %v", err)
		}
		emitReport(report, op)
	default:
		fatal("unknown format %q (want table | json | csv)", op.format)
	}
	if op.verbose {
		fmt.Fprintln(os.Stderr, runnerCounters(pool))
	}
}

func runSingle(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	o := optionFlags(fs)
	group := fs.String("group", trace.GroupSysmarkNT, "trace group")
	traceName := fs.String("trace", "ex", "trace name within the group")
	scheme := fs.String("scheme", "traditional", "memory ordering scheme")
	window := fs.Int("window", 32, "scheduling window entries")
	hmp := fs.String("hmp", "none", "hit-miss predictor: none local chooser perfect")
	asJSON := fs.Bool("json", false, "print the statistics as JSON")
	op := &outputOptions{}
	op.profileFlags(fs, "exectrace")
	_ = fs.Parse(args)

	p, ok := trace.TraceByName(*group, *traceName)
	if !ok {
		fatal("unknown trace %s/%s (see 'loadsched traces')", *group, *traceName)
	}
	cfg := ooo.DefaultConfig()
	cfg.Window = *window
	cfg.WarmupUops = o.EffectiveWarmup()
	cfg.Scheme, ok = parseScheme(*scheme)
	if !ok {
		fatal("unknown scheme %q", *scheme)
	}
	if cfg.Scheme.UsesCHT() {
		cfg.CHT = memdep.NewFullCHT(2048, 4, 2, true)
	}
	switch *hmp {
	case "none":
	case "local":
		cfg.HMP = hitmiss.NewLocal()
	case "chooser":
		cfg.HMP = hitmiss.NewChooser()
	case "perfect":
		cfg.HMP = &hitmiss.Perfect{}
	default:
		fatal("unknown hmp %q", *hmp)
	}

	stop := op.startProfiling()
	defer stop()
	e := ooo.NewEngine(cfg, trace.Replay(p))
	st := e.Run(o.Uops)
	if *asJSON {
		printRunJSON(*group, *traceName, cfg, st)
		return
	}
	printRunStats(*group, *traceName, cfg, st)
}

func parseScheme(s string) (memdep.Scheme, bool) {
	for _, sc := range memdep.Schemes() {
		if strings.EqualFold(sc.String(), s) {
			return sc, true
		}
	}
	return 0, false
}

// printRunJSON emits one run's full statistics as JSON — the single-run
// counterpart of the figure records (raw ooo.Stats, not a results record).
func printRunJSON(group, name string, cfg ooo.Config, st ooo.Stats) {
	env := struct {
		Schema string    `json:"schema"`
		Group  string    `json:"group"`
		Trace  string    `json:"trace"`
		Scheme string    `json:"scheme"`
		Window int       `json:"window"`
		IPC    float64   `json:"ipc"`
		Stats  ooo.Stats `json:"stats"`
	}{results.SchemaVersion, group, name, cfg.Scheme.String(), cfg.Window, st.IPC(), st}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		fatal("json: %v", err)
	}
}

func printRunStats(group, name string, cfg ooo.Config, st ooo.Stats) {
	label := group + "/" + name
	if group == "file" {
		label = name
	}
	fmt.Printf("%s  scheme=%v window=%d\n", label, cfg.Scheme, cfg.Window)
	fmt.Printf("  cycles=%d uops=%d IPC=%.3f\n", st.Cycles, st.Uops, st.IPC())
	fmt.Printf("  loads=%d stores=%d branches=%d (mispredicted %d)\n",
		st.Loads, st.Stores, st.Branches, st.BranchMispredicts)
	c := st.Class
	fmt.Printf("  classification: AC=%s ANC=%s no-conflict=%s\n",
		stats.Pct(c.FracOfLoads(c.AC())), stats.Pct(c.FracOfLoads(c.ANC())),
		stats.Pct(c.FracOfLoads(c.NotConflicting)))
	fmt.Printf("  collisions=%d  L1 miss=%s  L2 miss=%d\n",
		st.Collisions, stats.Pct(st.L1MissRate()), st.L2Misses)
	hm := st.HM
	fmt.Printf("  hit-miss: AH-PH=%d AH-PM=%d AM-PH=%d AM-PM=%d\n",
		hm.AHPH, hm.AHPM, hm.AMPH, hm.AMPM)
	cp := st.CPI
	share := func(v int64) string {
		if st.Cycles == 0 {
			return stats.Pct(0)
		}
		return stats.Pct(float64(v) / float64(st.Cycles))
	}
	fmt.Printf("  cpi stack: base=%s frontend=%s window=%s ports=%s ordering=%s\n",
		share(cp.Base), share(cp.Frontend), share(cp.WindowFull),
		share(cp.PortContention), share(cp.OrderingWait))
	fmt.Printf("             bank=%s coll-rec=%s miss-replay=%s data=%s (sum %d/%d cycles)\n",
		share(cp.BankConflict), share(cp.CollisionRecovery), share(cp.MissReplay),
		share(cp.DataStall), cp.Total(), st.Cycles)
}

func listTraces() {
	for _, g := range trace.Groups() {
		fmt.Printf("%s (%d traces):", g.Name, len(g.Traces))
		for _, t := range g.Traces {
			fmt.Printf(" %s", t.Name)
		}
		fmt.Println()
	}
}
