package main

import (
	"runtime"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig5Classification-8   2   123456789 ns/op   12.5 AC%   1024 B/op   3 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if b.Name != "Fig5Classification" || b.Procs != 8 || b.Runs != 2 {
		t.Fatalf("parsed %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 123456789, "AC%": 12.5, "B/op": 1024, "allocs/op": 3,
	} {
		if b.Metrics[unit] != want {
			t.Errorf("metric %q = %v, want %v", unit, b.Metrics[unit], want)
		}
	}
}

func TestParseLineSubBenchmarkNoProcs(t *testing.T) {
	b, ok := parseLine("BenchmarkX/sub 5 10.0 ns/op")
	if !ok {
		t.Fatal("not parsed")
	}
	if b.Name != "X/sub" || b.Procs != 1 || b.Runs != 5 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestCaptureMeta(t *testing.T) {
	m := captureMeta()
	if m.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	if m.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d, want >= 1", m.GOMAXPROCS)
	}
	// In a checkout the commit is a 40-hex hash; elsewhere "unknown". Both
	// are valid — only emptiness would be a bug.
	if m.Commit == "" {
		t.Error("Commit is empty, want a hash or \"unknown\"")
	}
}

func TestPorcelainDirty(t *testing.T) {
	for _, tc := range []struct {
		out  string
		want bool
	}{
		{"", false},
		{"\n", false},
		{"   \n  \n", false},
		{" M internal/ooo/engine.go\n", true},
		{"?? scratch.txt\n", true},
		{"\n M a.go\n", true},
	} {
		if got := porcelainDirty(tc.out); got != tc.want {
			t.Errorf("porcelainDirty(%q) = %v, want %v", tc.out, got, tc.want)
		}
	}
}

func TestParseLineRejectsNonBenchmarks(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	loadsched	1.2s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoMetrics-8 3",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}

func TestMergeTakesMetricMinima(t *testing.T) {
	a, ok := parseLine("BenchmarkEngineCycle-8   10   1500000 ns/op   64 B/op   2 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected first repeat")
	}
	b, ok := parseLine("BenchmarkEngineCycle-8   10   1200000 ns/op   80 B/op   2 allocs/op")
	if !ok {
		t.Fatal("parseLine rejected second repeat")
	}
	merge(&a, b)
	if a.Runs != 20 {
		t.Errorf("Runs = %d, want iteration counts summed to 20", a.Runs)
	}
	if got := a.Metrics["ns/op"]; got != 1200000 {
		t.Errorf("ns/op = %v, want the faster repeat 1200000", got)
	}
	if got := a.Metrics["B/op"]; got != 64 {
		t.Errorf("B/op = %v, want per-metric minimum 64, not the faster repeat's 80", got)
	}
	if got := a.Metrics["allocs/op"]; got != 2 {
		t.Errorf("allocs/op = %v, want 2", got)
	}
}

func TestMergeKeepsOneSidedMetrics(t *testing.T) {
	a, _ := parseLine("BenchmarkFig7-8   2   100 ns/op   1.5 speedup")
	b, _ := parseLine("BenchmarkFig7-8   2   90 ns/op")
	merge(&a, b)
	if got := a.Metrics["speedup"]; got != 1.5 {
		t.Errorf("speedup = %v, want the only measurement 1.5 kept", got)
	}
	if got := a.Metrics["ns/op"]; got != 90 {
		t.Errorf("ns/op = %v, want 90", got)
	}
}
