// Command benchjson converts `go test -bench` text output into a versioned
// JSON snapshot, so the perf trajectory (BENCH_results.json) has structured
// data points. It reads benchmark lines from stdin:
//
//	BenchmarkFig7OrderingSchemes-8   2   123456789 ns/op   1.15 perfect-speedup   12 B/op   3 allocs/op
//
// and writes {schema, benchmarks:[{name, procs, runs, metrics{unit:value}}]}.
//
//	go test -bench=Fig -benchtime=2x -run='^$' -benchmem | benchjson -o BENCH_results.json
//
// Repeated lines for one benchmark (`-count=N`) collapse into a single
// entry holding each metric's minimum. The minimum is the right aggregate
// for a snapshot: scheduler and cache interference only ever inflates a
// measurement, so the smallest repeat is the closest to the code's true
// cost, and comparing minima keeps benchdiff's gate meaningful on noisy
// shared machines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and -P
	// GOMAXPROCS suffix; sub-benchmarks keep their /sub path.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Runs is the iteration count the testing package settled on, summed
	// across -count repetitions.
	Runs int64 `json:"runs"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, or a custom
	// b.ReportMetric unit like "AC%") to its value.
	Metrics map[string]float64 `json:"metrics"`
}

// Meta records the environment a snapshot was taken in, so snapshots from
// different machines or toolchains are comparable (or visibly not).
type Meta struct {
	// GoVersion is runtime.Version() of the benchmarked binary.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the scheduler parallelism during the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Commit is the git HEAD hash at snapshot time ("unknown" outside a
	// checkout).
	Commit string `json:"commit"`
	// Dirty reports uncommitted working-tree changes at snapshot time, so a
	// snapshot whose numbers do not belong to Commit is visibly suspect.
	Dirty bool `json:"dirty"`
}

// Snapshot is the emitted envelope.
type Snapshot struct {
	Schema     string      `json:"schema"`
	Meta       Meta        `json:"meta"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// SchemaVersion names the snapshot layout.
const SchemaVersion = "loadsched.bench/v1"

// captureMeta snapshots the environment. The commit comes from git; any
// failure (no git, not a checkout) degrades to "unknown" rather than
// failing the run.
func captureMeta() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     "unknown",
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if c := strings.TrimSpace(string(out)); c != "" {
			m.Commit = c
			if out, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
				m.Dirty = porcelainDirty(string(out))
			}
		}
	}
	return m
}

// porcelainDirty interprets `git status --porcelain` output: any non-blank
// line is a tracked modification or untracked file, i.e. the working tree no
// longer matches the recorded commit.
func porcelainDirty(out string) bool {
	for _, line := range strings.Split(out, "\n") {
		if strings.TrimSpace(line) != "" {
			return true
		}
	}
	return false
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output file")
	flag.Parse()

	snap := Snapshot{Schema: SchemaVersion, Meta: captureMeta()}
	byName := map[string]int{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, seen := byName[b.Name]; seen {
			merge(&snap.Benchmarks[i], b)
		} else {
			byName[b.Name] = len(snap.Benchmarks)
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
	if len(snap.Benchmarks) == 0 {
		fail("no benchmark lines found on stdin (run `go test -bench=... | benchjson`)")
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fail("encoding: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail("writing %s: %v", *out, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

// merge folds a repeat measurement of the same benchmark into the kept
// entry: each metric takes the minimum of the two runs (a metric present in
// only one repeat is kept as-is), and the iteration counts accumulate.
func merge(into *Benchmark, b Benchmark) {
	into.Runs += b.Runs
	for unit, v := range b.Metrics {
		if kept, ok := into.Metrics[unit]; !ok || v < kept {
			into.Metrics[unit] = v
		}
	}
}

func fail(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", a...)
	os.Exit(1)
}

// parseLine parses one `BenchmarkName-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Procs: 1, Metrics: map[string]float64{}}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			b.Procs = p
			name = name[:i]
		}
	}
	b.Name = name
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Runs = runs
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
